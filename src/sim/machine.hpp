#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/series.hpp"
#include "obs/span.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/fiber.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace mkbas::sim {

class Machine;

/// Thrown into a simulated process (out of a blocking point or on the next
/// kernel entry) when it has been killed. Process bodies generally let it
/// propagate; the machine's fiber wrapper catches it and retires the
/// process.
struct KilledError {};

/// Thrown by personality exit() syscalls to unwind the process body.
struct ProcessExit {
  int code = 0;
};

/// Verdict a message-fault filter returns for one in-flight message. The
/// default (all fields zero) lets the message through untouched. Kernel
/// personalities consult the machine's filter at their send paths, so a
/// fault plan can drop/delay/corrupt traffic on any platform without the
/// kernels knowing who is injecting.
struct MsgFaultAction {
  bool drop = false;         // swallow the message (sender sees success)
  bool corrupt = false;      // flip payload bytes before delivery
  std::uint64_t corrupt_seed = 0;  // deterministic corruption stream
  Duration delay = 0;        // extra in-transit latency to charge/stamp
};

/// Called by kernel send paths with (sender name, receiver name). Must be
/// deterministic for replay: derive randomness from seeds carried in the
/// action, never from wall clock.
using MsgFaultFilter =
    std::function<MsgFaultAction(const std::string& src, const std::string& dst)>;

/// Deterministically flip 1–4 bytes of `data` based on `seed` (splitmix64).
/// No-op for len == 0. Shared by every personality's corrupt-in-transit
/// path so the same seed produces the same damage everywhere.
inline void corrupt_bytes(std::uint8_t* data, std::size_t len,
                          std::uint64_t seed) {
  if (data == nullptr || len == 0) return;
  std::uint64_t x = seed;
  auto next = [&x]() {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  const std::size_t flips = 1 + static_cast<std::size_t>(next() % 4);
  for (std::size_t i = 0; i < flips; ++i) {
    const std::size_t pos = static_cast<std::size_t>(next() % len);
    const auto mask = static_cast<std::uint8_t>(1u << (next() % 8));
    data[pos] ^= mask;
  }
}

enum class ProcState {
  kReady,    // runnable, waiting for the scheduler baton
  kRunning,  // the (single) process currently executing
  kBlocked,  // waiting on IPC / a timer / a personality wait queue
  kZombie,   // body finished; fiber is dead
};

const char* to_string(ProcState s);

/// A simulated process. Its body runs on a user-level fiber (ucontext with
/// a pooled, guard-paged stack); the Machine switches exactly one fiber in
/// at a time, so the interleaving is deterministic and a context switch is
/// a couple hundred nanoseconds of register shuffling instead of an OS
/// futex round-trip.
///
/// Personalities (MINIX / seL4 / Linux kernels) attach their own PCB data
/// keyed by pid and register exit hooks for cleanup.
class Process {
 public:
  int pid() const { return pid_; }
  const std::string& name() const { return name_; }
  int priority() const { return priority_; }
  ProcState state() const { return state_; }
  bool kill_pending() const { return killed_; }
  bool suspended() const { return suspended_; }
  bool crashed() const { return crashed_; }
  const std::string& crash_reason() const { return crash_reason_; }
  const char* block_reason() const { return block_reason_; }

  /// Register cleanup to run (in machine context) when this process exits
  /// or is killed. Hooks run in registration order.
  void add_exit_hook(std::function<void(Process&)> hook) {
    exit_hooks_.push_back(std::move(hook));
  }

 private:
  friend class Machine;

  Process(int pid, std::string name, int priority)
      : pid_(pid), name_(std::move(name)), priority_(priority) {}

  int pid_;
  std::string name_;
  int priority_;
  ProcState state_ = ProcState::kReady;
  bool killed_ = false;
  bool suspended_ = false;
  bool pending_wake_ = false;  // a wakeup arrived while suspended
  bool crashed_ = false;
  std::string crash_reason_;
  const char* block_reason_ = "";
  std::uint64_t wake_seq_ = 0;  // invalidates stale timer wakeups
  Machine* machine_ = nullptr;
  FiberContext fiber_;
  void* stack_ = nullptr;           // pooled stack; recycled on retirement
  std::function<void()> body_;
  std::vector<std::function<void(Process&)>> exit_hooks_;
};

/// Ring-buffer deque of Process* used for the per-priority ready queues.
/// Same FIFO/front semantics as the std::deque it replaces, but backed by
/// one power-of-two vector that only ever grows: a std::deque cycling at
/// steady state frees and reallocates a 512-byte block every 64
/// push/pop crossings, which was the last allocator touch left on the
/// make_ready path (two per delivered message).
class ProcRing {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  void push_back(Process* p) {
    grow_if_full();
    buf_[(head_ + count_) & mask()] = p;
    ++count_;
  }
  void push_front(Process* p) {
    grow_if_full();
    head_ = (head_ + buf_.size() - 1) & mask();
    buf_[head_] = p;
    ++count_;
  }
  Process* front() const { return buf_[head_]; }
  Process* pop_front() {
    Process* p = buf_[head_];
    head_ = (head_ + 1) & mask();
    --count_;
    return p;
  }
  /// Remove the first occurrence of `p`, preserving the order of the
  /// rest (suspend() plucking a ready process). Returns false when absent.
  bool erase(Process* p) {
    for (std::size_t i = 0; i < count_; ++i) {
      if (buf_[(head_ + i) & mask()] != p) continue;
      for (std::size_t j = i; j + 1 < count_; ++j) {
        buf_[(head_ + j) & mask()] = buf_[(head_ + j + 1) & mask()];
      }
      --count_;
      return true;
    }
    return false;
  }

 private:
  std::size_t mask() const { return buf_.size() - 1; }
  void grow_if_full() {
    if (count_ < buf_.size()) return;
    if (buf_.empty()) {
      buf_.resize(8);
      return;
    }
    std::vector<Process*> bigger(buf_.size() * 2);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = buf_[(head_ + i) & mask()];
    }
    head_ = 0;
    buf_ = std::move(bigger);
  }

  std::vector<Process*> buf_;  // power-of-two capacity (or empty)
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

/// The simulated machine: virtual clock, deterministic priority scheduler,
/// timers and the global trace log. One Machine hosts one kernel
/// personality plus the simulated plant and network.
///
/// Execution model: every simulated process is a cooperatively-scheduled
/// fiber hosted on whichever OS thread is driving run()/run_until(). A
/// blocking syscall switches straight to the next ready fiber (or back to
/// the driver when nobody is runnable, so the driver can advance the
/// virtual clock to the next timer). There is no OS-level parallelism
/// inside one machine — exactly one fiber executes at any instant — which
/// both makes the interleaving deterministic and keeps a simulated context
/// switch off the syscall path entirely. Given a fixed seed and spawn
/// order the whole simulation is reproducible.
class Machine {
 public:
  static constexpr int kNumPriorities = 16;
  static constexpr int kDefaultPriority = 7;
  static constexpr int kMaxProcs = 256;  // mirrors MINIX's NR_PROCS scale

  explicit Machine(std::uint64_t seed = 1);
  ~Machine();

  /// Kill every live process and let each unwind on its fiber. Idempotent;
  /// called automatically by the destructor. Kernel personalities call
  /// this from their own destructors so process bodies and exit hooks
  /// never observe a dead kernel object.
  void shutdown();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // ---- Driver API (call from the test / bench / example thread) ----

  /// Create a process whose body starts at the next scheduling opportunity.
  /// Also callable from process context (fork-style spawning).
  /// Returns nullptr when the process table (kMaxProcs) is full.
  Process* spawn(std::string name, std::function<void()> body,
                 int priority = kDefaultPriority);

  /// Run until the machine is fully idle: no runnable process, no pending
  /// timer, no scheduled driver callback. Periodic every() callbacks never
  /// let this return; prefer run_until()/run_for() with them.
  void run();

  /// Run, advancing the virtual clock at most to `t`.
  void run_until(Time t);

  /// Run for `d` more microseconds of virtual time.
  void run_for(Duration d);

  /// Earliest virtual time at which this machine has work to do: now()
  /// when a process is ready to run, the earliest pending timer
  /// otherwise, kTimeNever when fully idle. Lets an external
  /// conservative-sync scheduler (net::Fabric's lookahead engine) advance
  /// machines event-by-event instead of in lockstep epochs.
  Time next_event_time() const;

  /// Schedule a driver callback at virtual time `t` (runs in machine
  /// context while the clock is at `t`; it must not block).
  void at(Time t, std::function<void()> fn);

  /// Schedule a periodic driver callback starting at `start`.
  void every(Time start, Duration period, std::function<void()> fn);

  Time now() const { return now_; }
  TraceLog& trace() { return trace_; }
  const TraceLog& trace() const { return trace_; }
  /// Machine-wide metrics registry. Kernel personalities and scenarios
  /// resolve their handles from it once, at construction time.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  /// Causal span store. Kernel personalities open IPC flow spans here
  /// and propagate SpanContext kernel-side; scenarios open the
  /// sensor/control/actuation scoped spans.
  obs::SpanStore& spans() { return spans_; }
  const obs::SpanStore& spans() const { return spans_; }
  /// Security audit journal: denials and verdicts with causal chains.
  obs::AuditJournal& audit() { return audit_; }
  const obs::AuditJournal& audit() const { return audit_; }
  /// Windowed time-series store (continuous telemetry; bounded rings).
  obs::SeriesStore& series() { return series_; }
  const obs::SeriesStore& series() const { return series_; }
  /// Health monitor: EWMA/CUSUM anomaly detectors over the series feed.
  /// Events land in the audit journal and trip the flight recorder.
  obs::HealthMonitor& health() { return health_; }
  const obs::HealthMonitor& health() const { return health_; }
  /// Always-on flight recorder: snapshots recent telemetry on detector
  /// firings, security denials and fault injections.
  obs::FlightRecorder& flight() { return flight_; }
  const obs::FlightRecorder& flight() const { return flight_; }
  /// Fabric node index, part of the span-id derivation (default 0).
  void set_machine_id(int id) {
    spans_.set_machine(id);
    series_.set_machine(id);
    health_.set_machine(id);
  }
  int machine_id() const { return spans_.machine(); }
  Rng& rng() { return rng_; }
  std::uint64_t context_switches() const { return context_switches_; }
  std::uint64_t kernel_entries() const { return kernel_entries_; }

  /// Virtual CPU cost charged on every kernel entry (default 1us).
  void set_syscall_cost(Duration d) { syscall_cost_ = d; }
  Duration syscall_cost() const { return syscall_cost_; }

  /// Install (or clear, with an empty function) the message-fault filter
  /// that kernel send paths consult. At most one filter is active; the
  /// fault injector owns it for the duration of a campaign.
  void set_msg_filter(MsgFaultFilter f) { msg_filter_ = std::move(f); }
  const MsgFaultFilter& msg_filter() const { return msg_filter_; }

  /// Clock-jitter amplitude: when > 0, every sleep deadline is perturbed
  /// by a uniform offset in [-amplitude, +amplitude] drawn from the
  /// machine RNG. Deterministic for a fixed seed; 0 disables (default).
  void set_clock_jitter(Duration amplitude) { clock_jitter_ = amplitude; }
  Duration clock_jitter() const { return clock_jitter_; }

  std::vector<Process*> live_processes();

  /// Visit every live process in pid order without allocating. The
  /// per-tick scans (fault injector, health sweeps) use this instead of
  /// materialising a fresh vector via live_processes().
  template <typename F>
  void for_each_live(F&& f) {
    const bool locked = in_machine_context();
    Lock lk(mu_, std::defer_lock);
    if (!locked) lk.lock();
    for (auto& up : procs_) {
      if (up->state_ != ProcState::kZombie) f(*up);
    }
  }

  Process* find_process(int pid);
  int live_count() const { return live_count_; }
  bool is_shutting_down() const { return shutting_down_; }

  // ---- Kernel API (call from a process fiber, i.e. inside a syscall) ----

  /// The process currently executing on this thread, or nullptr when called
  /// from the driver context.
  Process* current();

  /// Mark a kernel entry: charges syscall cost, bumps the counter and
  /// raises KilledError if a kill is pending for the caller.
  void enter_kernel();

  /// Block the calling process until someone calls make_ready() on it.
  /// Throws KilledError if the process is killed while blocked.
  void block_current(const char* reason);

  /// Move a blocked process to the ready queue. No-op for non-blocked
  /// processes. Callable from kernel context and from driver callbacks.
  void make_ready(Process* p);

  /// Mark `p` killed. If blocked it becomes runnable and will observe the
  /// kill at its blocking point; otherwise at its next kernel entry.
  void kill(Process* p);

  /// Administratively suspend a non-running process: it will not be
  /// scheduled (wakeups are deferred) until resume(). Kill overrides
  /// suspension. Models seL4 TCB_Suspend.
  void suspend(Process* p);
  void resume(Process* p);

  /// Block the caller until virtual time `t`.
  void sleep_until(Time t);
  void sleep_for(Duration d);

  /// Charge `cpu` microseconds of virtual CPU time to the caller. Fires any
  /// timers that become due; yields if a higher-priority process woke up.
  void charge(Duration cpu);

  /// Voluntarily reschedule (round-robin within the priority level).
  void yield();

 private:
  struct Timer {
    Time when;
    std::uint64_t seq;  // tie-break + stale-wakeup guard
    int pid;            // -1 for driver callbacks
    std::uint64_t wake_seq;
    std::function<void()> fn;  // driver callback (empty for process wakeups)
    Duration period = 0;       // >0 for periodic callbacks

    bool operator>(const Timer& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };

  using Lock = std::unique_lock<std::mutex>;

  void run_locked(Lock& lk, Time limit, bool bounded);
  void schedule_locked();
  void fire_due_timers_locked();
  bool any_ready_locked() const { return ready_bits_ != 0; }
  /// Enqueue a ready process, maintaining the priority bitmap.
  void push_ready_locked(Process* p);
  void push_ready_front_locked(Process* p);
  /// Dequeue the highest-priority ready process (nullptr when none). O(1):
  /// one count-trailing-zeros over the bitmap instead of a queue scan.
  Process* pop_ready_locked();
  /// Give up execution from process fiber `p`: switch to whatever
  /// schedule_locked picked (or back to the driver when nothing is
  /// runnable). Throws KilledError on resumption if `p` was killed.
  void switch_out_locked(Process* p);
  /// Driver side: switch into running_ and take control back when the
  /// fibers have nothing left to do (or the pause deadline fired).
  void switch_to_running_locked();
  /// Recycle the stack of a fiber that finished since the last switch.
  void reap_pending_locked();
  void retire_locked(Process* p, bool crashed, std::string reason);
  void fiber_entry(Process* p);
  static void fiber_trampoline(unsigned hi, unsigned lo);
  Process* spawn_locked(std::string name, std::function<void()> body,
                        int priority);
  void maybe_preempt_locked();
  static bool in_machine_context();

  mutable std::mutex mu_;
  Time now_ = 0;
  Duration syscall_cost_ = 1;
  TraceLog trace_;
  obs::MetricsRegistry metrics_;
  obs::SpanStore spans_;
  obs::AuditJournal audit_;
  obs::SeriesStore series_;
  obs::HealthMonitor health_;
  obs::FlightRecorder flight_;
  obs::Counter ctx_switch_metric_;
  obs::Counter kernel_entry_metric_;
  Rng rng_;
  MsgFaultFilter msg_filter_;
  Duration clock_jitter_ = 0;

  // Stacks outlive procs_ (declared first => destroyed last).
  FiberStackPool stack_pool_;
  FiberContext driver_ctx_;
  Process* pending_reap_ = nullptr;

  std::vector<std::unique_ptr<Process>> procs_;  // index != pid; append-only
  int next_pid_ = 1;
  int live_count_ = 0;
  Process* running_ = nullptr;
  Process* last_scheduled_ = nullptr;
  ProcRing ready_[kNumPriorities];
  // Bit p set <=> ready_[p] is non-empty. Scheduler picks with a single
  // count-trailing-zeros; "anyone ready?" and "anyone more urgent?" are
  // one mask test each instead of a 16-queue scan per context switch.
  std::uint32_t ready_bits_ = 0;
  CalendarQueue<Timer> timers_;
  std::uint64_t timer_seq_ = 0;
  std::uint64_t context_switches_ = 0;
  std::uint64_t kernel_entries_ = 0;
  bool shutting_down_ = false;
  bool shutdown_done_ = false;
  // Set by the run_until() deadline timer so CPU-bound simulations hand
  // the baton back to the driver at the virtual-time limit.
  bool pause_requested_ = false;
};

}  // namespace mkbas::sim
