#include "sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cassert>
#include <cstdio>
#include <cstdlib>

#ifndef __has_feature
#define __has_feature(x) 0
#endif

#if defined(__SANITIZE_ADDRESS__) || __has_feature(address_sanitizer)
#define MKBAS_ASAN 1
#include <sanitizer/common_interface_defs.h>
#else
#define MKBAS_ASAN 0
#endif

#if defined(__SANITIZE_THREAD__) || __has_feature(thread_sanitizer)
#define MKBAS_TSAN 1
#include <sanitizer/tsan_interface.h>
#else
#define MKBAS_TSAN 0
#endif

#if MKBAS_ASAN
#include <pthread.h>
#endif

namespace mkbas::sim {

namespace {

[[noreturn]] void die(const char* what) {
  std::perror(what);
  std::abort();
}

#if MKBAS_ASAN
// Stack bounds of the calling OS thread, resolved once per thread (the
// lookup parses /proc for the main thread; far too slow per switch).
void native_stack_bounds(void** bottom, std::size_t* size) {
  thread_local void* cached_bottom = nullptr;
  thread_local std::size_t cached_size = 0;
  if (cached_bottom == nullptr) {
    pthread_attr_t attr;
    if (pthread_getattr_np(pthread_self(), &attr) != 0) die("pthread_getattr_np");
    pthread_attr_getstack(&attr, &cached_bottom, &cached_size);
    pthread_attr_destroy(&attr);
  }
  *bottom = cached_bottom;
  *size = cached_size;
}
#endif

// Sanitizer bookkeeping around a context switch. `start` runs on the
// outgoing context just before swapcontext; `finish` runs on the incoming
// context just after it gains control (either when its own swapcontext
// returns or at the top of its entry function).
inline void sanitizer_start_switch(FiberContext& from, FiberContext& to,
                                   bool from_terminating) {
#if MKBAS_ASAN
  __sanitizer_start_switch_fiber(from_terminating ? nullptr : &from.asan_fake,
                                 to.stack_bottom, to.stack_size);
#else
  (void)from;
  (void)to;
  (void)from_terminating;
#endif
#if MKBAS_TSAN
  __tsan_switch_to_fiber(to.tsan_fiber, 0);
#endif
}

inline void sanitizer_finish_switch(FiberContext& self) {
#if MKBAS_ASAN
  __sanitizer_finish_switch_fiber(self.asan_fake, nullptr, nullptr);
  self.asan_fake = nullptr;
#else
  (void)self;
#endif
}

}  // namespace

// ---- FiberStackPool ----

FiberStackPool::FiberStackPool(std::size_t usable_bytes) {
  page_ = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  // Round the usable region up to whole pages; one extra page below is the
  // PROT_NONE guard that turns stack overflow into a clean fault.
  usable_ = (usable_bytes + page_ - 1) & ~(page_ - 1);
}

FiberStackPool::~FiberStackPool() {
  for (void* base : slabs_) munmap(base, page_ + usable_);
}

void* FiberStackPool::acquire() {
  if (!free_.empty()) {
    void* bottom = free_.back();
    free_.pop_back();
    return bottom;
  }
  void* base = mmap(nullptr, page_ + usable_, PROT_NONE,
                    MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (base == MAP_FAILED) die("mmap fiber stack");
  void* bottom = static_cast<char*>(base) + page_;
  if (mprotect(bottom, usable_, PROT_READ | PROT_WRITE) != 0) {
    die("mprotect fiber stack");
  }
  slabs_.push_back(base);
  return bottom;
}

void FiberStackPool::release(void* bottom) {
  assert(bottom != nullptr);
  free_.push_back(bottom);
}

// ---- Context switching ----

void fiber_create(FiberContext& f, void* stack_bottom, std::size_t size,
                  FiberEntry entry, void* arg) {
  if (getcontext(&f.uc) != 0) die("getcontext");
  f.uc.uc_stack.ss_sp = stack_bottom;
  f.uc.uc_stack.ss_size = size;
  f.uc.uc_link = nullptr;  // entry must fiber_switch_final, never return
  f.stack_bottom = stack_bottom;
  f.stack_size = size;
  const auto bits = reinterpret_cast<std::uintptr_t>(arg);
  const auto hi = static_cast<unsigned>(bits >> 32);
  const auto lo = static_cast<unsigned>(bits & 0xffffffffu);
  makecontext(&f.uc, reinterpret_cast<void (*)()>(entry), 2, hi, lo);
#if MKBAS_TSAN
  f.tsan_fiber = __tsan_create_fiber(0);
  f.tsan_owned = true;
#endif
}

void fiber_bind_native(FiberContext& f) {
#if MKBAS_ASAN
  native_stack_bounds(&f.stack_bottom, &f.stack_size);
#endif
#if MKBAS_TSAN
  f.tsan_fiber = __tsan_get_current_fiber();
  f.tsan_owned = false;
#endif
  (void)f;
}

void fiber_switch(FiberContext& from, FiberContext& to) {
  sanitizer_start_switch(from, to, /*from_terminating=*/false);
  if (swapcontext(&from.uc, &to.uc) != 0) die("swapcontext");
  // Control has come back to `from`.
  sanitizer_finish_switch(from);
}

void fiber_switch_final(FiberContext& from, FiberContext& to) {
  sanitizer_start_switch(from, to, /*from_terminating=*/true);
  if (swapcontext(&from.uc, &to.uc) != 0) die("swapcontext final");
  std::abort();  // a dead fiber must never be switched back into
}

void fiber_on_entry(FiberContext& self) { sanitizer_finish_switch(self); }

void fiber_destroy(FiberContext& f) {
#if MKBAS_TSAN
  if (f.tsan_owned && f.tsan_fiber != nullptr) {
    __tsan_destroy_fiber(f.tsan_fiber);
    f.tsan_fiber = nullptr;
    f.tsan_owned = false;
  }
#else
  (void)f;
#endif
}

}  // namespace mkbas::sim
