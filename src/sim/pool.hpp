#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace mkbas::sim {

/// Fixed-slot object pool backed by chunked arenas.
///
/// acquire() placement-constructs a T in a recycled slot (LIFO freelist:
/// the hottest slot is the one whose cache lines are still warm) and
/// release() destroys it in place. The arena grows a chunk at a time, so
/// at steady state — churn bounded by the high-water mark — neither call
/// touches the global allocator. Chunks are never returned until the pool
/// dies; objects still live at that point are destroyed then, so a pool
/// can own scheduled-but-never-executed work without leaking.
///
/// Released slots are poisoned with kPoison and re-checked on acquire,
/// which turns use-after-release of pooled objects into a deterministic
/// assert instead of silent corruption (the pool recycles memory that
/// the address sanitizer considers live).
///
/// `max_slots` > 0 bounds the pool: an acquire beyond the bound returns
/// nullptr instead of growing — the caller decides whether exhaustion
/// means shedding load or a fatal error. 0 (default) grows forever.
///
/// Not thread-safe: one pool per owner, like the rest of the simulator's
/// per-machine state.
template <typename T>
class FixedPool {
 public:
  static constexpr unsigned char kPoison = 0xDD;

  explicit FixedPool(std::size_t chunk_slots = 64, std::size_t max_slots = 0)
      : chunk_slots_(chunk_slots == 0 ? 1 : chunk_slots),
        max_slots_(max_slots) {}

  ~FixedPool() {
    for (auto& chunk : chunks_) {
      for (std::size_t i = 0; i < chunk_slots_; ++i) {
        Slot& s = chunk[i];
        if (s.used) reinterpret_cast<T*>(s.storage)->~T();
      }
    }
  }

  FixedPool(const FixedPool&) = delete;
  FixedPool& operator=(const FixedPool&) = delete;

  /// Construct a T in a pooled slot. Returns nullptr only when the pool
  /// is bounded and every slot is live.
  template <typename... Args>
  T* acquire(Args&&... args) {
    if (free_ == nullptr && !grow()) return nullptr;
    Slot* s = free_;
    assert(check_poison(*s) && "pooled slot dirtied while on the freelist");
    free_ = s->next;
    T* obj;
    try {
      obj = new (s->storage) T(std::forward<Args>(args)...);
    } catch (...) {
      s->next = free_;
      free_ = s;
      throw;
    }
    s->used = true;
    ++in_use_;
    if (in_use_ > high_water_) high_water_ = in_use_;
    return obj;
  }

  /// Destroy `p` (which must have come from this pool) and recycle its
  /// slot. The slot's storage is poisoned until the next acquire.
  void release(T* p) {
    assert(p != nullptr);
    Slot* s = slot_of(p);
    assert(s->used && "double release of a pooled object");
    p->~T();
    std::memset(s->storage, kPoison, sizeof(T));
    s->used = false;
    s->next = free_;
    free_ = s;
    --in_use_;
  }

  std::size_t in_use() const { return in_use_; }
  std::size_t capacity() const { return chunks_.size() * chunk_slots_; }
  std::size_t chunk_count() const { return chunks_.size(); }
  std::size_t high_water() const { return high_water_; }
  std::size_t max_slots() const { return max_slots_; }

 private:
  struct Slot {
    Slot* next = nullptr;  // freelist link; lives outside the storage so
                           // a parked slot stays fully poisoned
    bool used = false;
    alignas(T) unsigned char storage[sizeof(T)];
  };

  static Slot* slot_of(T* p) {
    return reinterpret_cast<Slot*>(reinterpret_cast<unsigned char*>(p) -
                                   offsetof(Slot, storage));
  }

  static bool check_poison(const Slot& s) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      if (s.storage[i] != kPoison) return false;
    }
    return true;
  }

  bool grow() {
    if (max_slots_ > 0 && capacity() >= max_slots_) return false;
    auto chunk = std::make_unique<Slot[]>(chunk_slots_);
    for (std::size_t i = 0; i < chunk_slots_; ++i) {
      Slot& s = chunk[i];
      std::memset(s.storage, kPoison, sizeof(T));
      s.next = free_;
      free_ = &s;
    }
    chunks_.push_back(std::move(chunk));
    return true;
  }

  std::size_t chunk_slots_;
  std::size_t max_slots_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  Slot* free_ = nullptr;
  std::size_t in_use_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace mkbas::sim
