#include "sim/machine.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace mkbas::sim {

namespace {
// Per-thread execution context. t_proc points at the simulated process
// whose fiber is currently executing on this OS thread (nullptr in driver
// context); t_in_machine is set while any machine code — driver loop or
// process fiber — runs on this thread, so re-entrant calls (spawn from a
// body, kill from a driver callback) skip the lock.
thread_local Process* t_proc = nullptr;
thread_local bool t_in_machine = false;
}  // namespace

const char* to_string(ProcState s) {
  switch (s) {
    case ProcState::kReady:
      return "ready";
    case ProcState::kRunning:
      return "running";
    case ProcState::kBlocked:
      return "blocked";
    case ProcState::kZombie:
      return "zombie";
  }
  return "?";
}

bool Machine::in_machine_context() { return t_in_machine; }

Machine::Machine(std::uint64_t seed)
    : ctx_switch_metric_(metrics_.counter("sim.context_switches")),
      kernel_entry_metric_(metrics_.counter("sim.kernel_entries")),
      rng_(seed) {
  // Continuous-telemetry wiring: health signals write windowed series
  // and journal anomalies; the flight recorder snapshots recent
  // telemetry on anomalies, security denials and fault injections (the
  // fault injector triggers it directly).
  health_.wire(&series_, &audit_, &spans_);
  flight_.wire(&series_, &spans_, &health_);
  health_.set_on_event([this](const obs::HealthEvent& e) {
    flight_.trigger(
        e.time, "health." + sim::TagRegistry::instance().name(e.signal),
        to_string(e.kind));
  });
  audit_.set_on_record([this](const obs::AuditEntry& e) {
    const std::string& kind = sim::TagRegistry::instance().name(e.kind);
    if (kind.find("deny") == std::string::npos) return;
    flight_.trigger(e.time, "audit." + kind, e.detail);
  });
}

Machine::~Machine() { shutdown(); }

void Machine::shutdown() {
  Lock lk(mu_);
  if (shutdown_done_) return;
  const bool was_in_machine = t_in_machine;
  t_in_machine = true;
  shutting_down_ = true;
  fiber_bind_native(driver_ctx_);
  for (auto& up : procs_) {
    if (up->state_ != ProcState::kZombie) kill(up.get());
  }
  // Give every killed process the fiber so it can observe the kill and
  // unwind. Loop because exit hooks may ready further processes.
  for (;;) {
    schedule_locked();
    if (running_ == nullptr) break;  // nothing ready => all unwound
    switch_to_running_locked();
  }
  t_in_machine = was_in_machine;
  shutdown_done_ = true;
}

// ---- Spawning and the process lifecycle ----

Process* Machine::spawn(std::string name, std::function<void()> body,
                        int priority) {
  if (t_in_machine) return spawn_locked(std::move(name), std::move(body), priority);
  Lock lk(mu_);
  t_in_machine = true;
  Process* p = spawn_locked(std::move(name), std::move(body), priority);
  t_in_machine = false;
  return p;
}

Process* Machine::spawn_locked(std::string name, std::function<void()> body,
                               int priority) {
  if (shutting_down_) return nullptr;
  if (live_count_ >= kMaxProcs) {
    trace_.emit(now_, -1, TraceKind::kProcess, "proc.table_full",
                "spawn of '" + name + "' rejected");
    return nullptr;
  }
  priority = std::clamp(priority, 0, kNumPriorities - 1);
  auto owned = std::unique_ptr<Process>(
      new Process(next_pid_++, std::move(name), priority));
  Process* p = owned.get();
  procs_.push_back(std::move(owned));
  ++live_count_;
  push_ready_locked(p);
  trace_.emit(now_, p->pid_, TraceKind::kProcess, "proc.spawn", p->name_);
  p->machine_ = this;
  p->body_ = std::move(body);
  p->stack_ = stack_pool_.acquire();
  fiber_create(p->fiber_, p->stack_, stack_pool_.usable(),
               &Machine::fiber_trampoline, p);
  return p;
}

void Machine::fiber_trampoline(unsigned hi, unsigned lo) {
  const auto bits =
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  auto* p = reinterpret_cast<Process*>(bits);
  p->machine_->fiber_entry(p);
}

void Machine::fiber_entry(Process* p) {
  fiber_on_entry(p->fiber_);
  t_proc = p;
  reap_pending_locked();
  bool crashed = false;
  std::string reason;
  try {
    // Killed before the first activation: observe it before the body runs,
    // exactly like a baton wait would have.
    if (p->killed_) throw KilledError{};
    p->body_();
  } catch (const KilledError&) {
    // Normal kill path: nothing to record beyond the retirement event.
  } catch (const ProcessExit&) {
    // Voluntary exit via a personality's exit() syscall.
  } catch (const std::exception& e) {
    crashed = true;
    reason = e.what();
  } catch (...) {
    crashed = true;
    reason = "unknown exception";
  }
  retire_locked(p, crashed, std::move(reason));
  p->body_ = nullptr;  // release captured state before the stack goes away
  t_proc = nullptr;
  pending_reap_ = p;  // whoever gains control recycles our stack
  FiberContext& target =
      running_ != nullptr ? running_->fiber_ : driver_ctx_;
  fiber_switch_final(p->fiber_, target);
}

void Machine::retire_locked(Process* p, bool crashed, std::string reason) {
  // Publish the death cause before exit hooks run: kernel personalities
  // distinguish crashes/kills from voluntary exits in their cleanup.
  p->crashed_ = crashed;
  p->crash_reason_ = std::move(reason);
  for (auto& hook : p->exit_hooks_) hook(*p);
  p->exit_hooks_.clear();
  p->state_ = ProcState::kZombie;
  --live_count_;
  // Spans the process left open (it died mid-operation) close as
  // abandoned — the trace keeps the gap a reincarnation bridges.
  spans_.process_gone(p->pid_, now_);
  if (crashed) {
    trace_.emit(now_, p->pid_, TraceKind::kProcess, "proc.crash",
                p->name_ + ": " + p->crash_reason_);
  } else if (p->killed_) {
    trace_.emit(now_, p->pid_, TraceKind::kProcess, "proc.killed", p->name_);
  } else {
    trace_.emit(now_, p->pid_, TraceKind::kProcess, "proc.exit", p->name_);
  }
  if (running_ == p) running_ = nullptr;
  schedule_locked();
}

// ---- Scheduling ----

void Machine::push_ready_locked(Process* p) {
  ready_[p->priority_].push_back(p);
  ready_bits_ |= 1u << p->priority_;
}

void Machine::push_ready_front_locked(Process* p) {
  ready_[p->priority_].push_front(p);
  ready_bits_ |= 1u << p->priority_;
}

Process* Machine::pop_ready_locked() {
  if (ready_bits_ == 0) return nullptr;
  const int pr = std::countr_zero(ready_bits_);
  auto& q = ready_[pr];
  Process* p = q.front();
  q.pop_front();
  if (q.empty()) ready_bits_ &= ~(1u << pr);
  return p;
}

void Machine::schedule_locked() {
  if (running_ != nullptr) return;  // baton already assigned
  Process* p = pop_ready_locked();
  if (p == nullptr) return;
  p->state_ = ProcState::kRunning;
  running_ = p;
  if (p != last_scheduled_) {
    ++context_switches_;
    ctx_switch_metric_.inc();
  }
  last_scheduled_ = p;
}

void Machine::switch_out_locked(Process* p) {
  FiberContext& target =
      running_ != nullptr ? running_->fiber_ : driver_ctx_;
  t_proc = nullptr;
  fiber_switch(p->fiber_, target);
  // Scheduled again: we own execution until the next give-up point.
  t_proc = p;
  reap_pending_locked();
  if (p->killed_) throw KilledError{};
}

void Machine::switch_to_running_locked() {
  fiber_switch(driver_ctx_, running_->fiber_);
  // The fibers handed back: nothing runnable, or the pause deadline fired.
  t_proc = nullptr;
  reap_pending_locked();
}

void Machine::reap_pending_locked() {
  Process* dead = pending_reap_;
  if (dead == nullptr) return;
  pending_reap_ = nullptr;
  fiber_destroy(dead->fiber_);
  stack_pool_.release(dead->stack_);
  dead->stack_ = nullptr;
}

Process* Machine::current() { return t_proc; }

void Machine::enter_kernel() {
  Process* p = t_proc;
  assert(p != nullptr && "enter_kernel outside process context");
  ++kernel_entries_;
  kernel_entry_metric_.inc();
  if (p->killed_) throw KilledError{};
  charge(syscall_cost_);
}

void Machine::block_current(const char* reason) {
  Process* p = t_proc;
  assert(p != nullptr && "block_current outside process context");
  p->state_ = ProcState::kBlocked;
  p->block_reason_ = reason;
  ++p->wake_seq_;
  running_ = nullptr;
  schedule_locked();
  switch_out_locked(p);
}

void Machine::make_ready(Process* p) {
  if (p == nullptr || p->state_ != ProcState::kBlocked) return;
  if (p->suspended_) {
    p->pending_wake_ = true;  // delivered on resume()
    return;
  }
  p->state_ = ProcState::kReady;
  push_ready_locked(p);
  schedule_locked();
}

void Machine::suspend(Process* p) {
  if (p == nullptr || p->state_ == ProcState::kZombie || p->suspended_) {
    return;
  }
  assert(p->state_ != ProcState::kRunning &&
         "cannot suspend the running process");
  p->suspended_ = true;
  if (p->state_ == ProcState::kReady) {
    auto& q = ready_[p->priority_];
    q.erase(p);
    if (q.empty()) ready_bits_ &= ~(1u << p->priority_);
    p->state_ = ProcState::kBlocked;
    p->block_reason_ = "suspended";
    p->pending_wake_ = true;  // it was runnable; resume must requeue it
  }
}

void Machine::resume(Process* p) {
  if (p == nullptr || !p->suspended_) return;
  p->suspended_ = false;
  if (p->pending_wake_) {
    p->pending_wake_ = false;
    make_ready(p);
  }
}

void Machine::kill(Process* p) {
  if (p == nullptr || p->state_ == ProcState::kZombie) return;
  if (t_in_machine) {
    p->killed_ = true;
    p->suspended_ = false;  // kill overrides suspension
    if (p->state_ == ProcState::kBlocked) make_ready(p);
    return;
  }
  Lock lk(mu_);
  t_in_machine = true;
  p->killed_ = true;
  p->suspended_ = false;  // kill overrides suspension
  if (p->state_ == ProcState::kBlocked) make_ready(p);
  // No driver loop is active (we got the lock from outside), so drive the
  // victim — and anything its unwinding readies — to quiescence here. This
  // mirrors the OS-thread implementation, where the woken victim ran as
  // soon as the killer released the lock.
  if (running_ != nullptr) {
    fiber_bind_native(driver_ctx_);
    while (running_ != nullptr) switch_to_running_locked();
  }
  t_in_machine = false;
}

void Machine::yield() {
  Process* p = t_proc;
  assert(p != nullptr && "yield outside process context");
  p->state_ = ProcState::kReady;
  push_ready_locked(p);
  running_ = nullptr;
  schedule_locked();
  switch_out_locked(p);
}

void Machine::maybe_preempt_locked() {
  Process* p = running_;
  if (p == nullptr || p != t_proc) return;
  // Anyone ready at a strictly higher priority? One mask test.
  if ((ready_bits_ & ((1u << p->priority_) - 1)) == 0) return;
  p->state_ = ProcState::kReady;
  push_ready_locked(p);
  running_ = nullptr;
  schedule_locked();
  switch_out_locked(p);
}

// ---- Virtual time ----

void Machine::charge(Duration cpu) {
  assert(t_proc != nullptr && "charge outside process context");
  now_ += cpu;
  fire_due_timers_locked();
  if (pause_requested_ && running_ == t_proc) {
    // The driver's run_until() deadline passed: park ourselves as ready
    // (not blocked) and hand control back without scheduling a successor.
    // Park at the FRONT of the priority queue: the next run_until() must
    // resume exactly where an uninterrupted run would have continued, or
    // the schedule (and its context-switch trail) depends on how finely
    // the driver slices time — lookahead sync drives machines in far
    // smaller steps than the epoch barrier.
    Process* p = t_proc;
    p->state_ = ProcState::kReady;
    push_ready_front_locked(p);
    running_ = nullptr;
    switch_out_locked(p);  // running_ is null => straight to the driver
    return;
  }
  maybe_preempt_locked();
}

void Machine::sleep_until(Time t) {
  Process* p = t_proc;
  assert(p != nullptr && "sleep outside process context");
  if (p->killed_) throw KilledError{};
  if (clock_jitter_ > 0 && t > now_) {
    // Fault-injected clock skew: perturb the deadline by a uniform offset
    // in [-amplitude, +amplitude], never waking before "now". Drawing from
    // the machine RNG keeps replays bit-identical for a fixed seed.
    const auto amp = static_cast<std::uint64_t>(clock_jitter_);
    const auto off =
        static_cast<Duration>(rng_.next_u64() % (2 * amp + 1)) - clock_jitter_;
    t = t + off <= now_ ? now_ + 1 : t + off;
  }
  if (t <= now_) {
    yield();
    return;
  }
  timers_.push(Timer{t, ++timer_seq_, p->pid_, p->wake_seq_ + 1, {}, 0});
  block_current("sleep");
}

void Machine::sleep_for(Duration d) { sleep_until(now_ + d); }

void Machine::fire_due_timers_locked() {
  while (timers_.min_when() <= now_) {
    Timer t = timers_.pop();
    if (t.pid >= 0) {
      Process* p = find_process(t.pid);
      if (p != nullptr && p->state_ == ProcState::kBlocked &&
          p->wake_seq_ == t.wake_seq) {
        make_ready(p);
      }
    } else {
      if (t.fn) t.fn();
      if (t.period > 0 && !shutting_down_) {
        timers_.push(Timer{t.when + t.period, ++timer_seq_, -1, 0,
                           std::move(t.fn), t.period});
      }
    }
  }
}

void Machine::at(Time t, std::function<void()> fn) {
  if (t_in_machine) {
    timers_.push(Timer{t, ++timer_seq_, -1, 0, std::move(fn), 0});
    return;
  }
  Lock lk(mu_);
  timers_.push(Timer{t, ++timer_seq_, -1, 0, std::move(fn), 0});
}

void Machine::every(Time start, Duration period, std::function<void()> fn) {
  assert(period > 0);
  if (t_in_machine) {
    timers_.push(Timer{start, ++timer_seq_, -1, 0, std::move(fn), period});
    return;
  }
  Lock lk(mu_);
  timers_.push(Timer{start, ++timer_seq_, -1, 0, std::move(fn), period});
}

// ---- The driver loop ----

void Machine::run() {
  Lock lk(mu_);
  run_locked(lk, 0, /*bounded=*/false);
}

void Machine::run_until(Time t) {
  Lock lk(mu_);
  run_locked(lk, t, /*bounded=*/true);
}

void Machine::run_for(Duration d) {
  Lock lk(mu_);
  run_locked(lk, now_ + d, /*bounded=*/true);
}

Time Machine::next_event_time() const {
  Lock lk(mu_);
  if (running_ != nullptr || ready_bits_ != 0) return now_;
  if (timers_.empty()) return kTimeNever;
  // A timer can sit at <= now_ (a stale run_until deadline whose run
  // ended early); clamping keeps the contract "never in the past" and
  // the next run_until fires it immediately.
  return std::max(now_, timers_.min_when());
}

void Machine::run_locked(Lock& lk, Time limit, bool bounded) {
  (void)lk;
  t_in_machine = true;
  fiber_bind_native(driver_ctx_);
  if (bounded) {
    if (limit <= now_) {
      t_in_machine = false;
      return;
    }
    // Deadline timer: lets CPU-bound simulations pause at the limit.
    timers_.push(Timer{limit, ++timer_seq_, -1, 0,
                       [this] { pause_requested_ = true; }, 0});
  }
  for (;;) {
    schedule_locked();
    // Fibers hand control back only when nothing is runnable or the pause
    // deadline fired — the same condition the old idle wait asserted.
    if (running_ != nullptr) switch_to_running_locked();
    if (bounded && now_ >= limit) break;
    if (any_ready_locked()) continue;  // a driver callback readied someone
    if (timers_.empty()) {
      if (bounded && now_ < limit) now_ = limit;
      break;
    }
    const Time next = timers_.min_when();
    if (bounded && next > limit) {
      now_ = limit;
      break;
    }
    now_ = std::max(now_, next);
    fire_due_timers_locked();
  }
  pause_requested_ = false;
  t_in_machine = false;
}

// ---- Introspection ----

std::vector<Process*> Machine::live_processes() {
  const bool locked = t_in_machine;
  Lock lk(mu_, std::defer_lock);
  if (!locked) lk.lock();
  std::vector<Process*> out;
  for (auto& up : procs_) {
    if (up->state_ != ProcState::kZombie) out.push_back(up.get());
  }
  return out;
}

Process* Machine::find_process(int pid) {
  // Callers on the driver thread after run() has returned see a quiescent
  // machine; callers in machine context hold the lock. Either way a linear
  // scan over an append-only vector is safe and fast at our scale.
  for (auto& up : procs_) {
    if (up->pid_ == pid) return up.get();
  }
  return nullptr;
}

}  // namespace mkbas::sim
