#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace mkbas::sim {

/// Category of a trace event. Coarse buckets keep filtering cheap; the
/// free-form detail string carries the specifics.
enum class TraceKind {
  kProcess,   // spawn/exit/kill
  kIpc,       // message passing, queues, endpoints
  kSecurity,  // permission decisions (ACM checks, cap checks, mode checks)
  kDevice,    // sensor samples, actuator changes
  kControl,   // control-law decisions (setpoint changes, alarm logic)
  kNetwork,   // simulated HTTP/BACnet traffic
  kAttack,    // attack actions and their observed results
  kFault,     // injected faults (crash/hang/drop/corrupt/stuck/jitter)
};

inline const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kProcess:
      return "proc";
    case TraceKind::kIpc:
      return "ipc";
    case TraceKind::kSecurity:
      return "sec";
    case TraceKind::kDevice:
      return "dev";
    case TraceKind::kControl:
      return "ctl";
    case TraceKind::kNetwork:
      return "net";
    case TraceKind::kAttack:
      return "atk";
    case TraceKind::kFault:
      return "fault";
  }
  return "?";
}

/// Process-wide interner for trace tags ("acm.deny", "mq.send", ...).
///
/// The tag vocabulary is tiny (a few dozen strings) while logs run to
/// millions of events, so events store a 32-bit id and every tag query is
/// an integer compare instead of a strcmp. Interning is idempotent and ids
/// are stable for the life of the process; id 0 is the empty string.
///
/// Everything is defined inline so translation units that only read logs
/// (e.g. the obs trace exporter) need no sim library symbols.
class TagRegistry {
 public:
  static TagRegistry& instance() {
    static TagRegistry reg;
    return reg;
  }

  /// Id for `s`, creating it on first sight.
  std::uint32_t intern(const std::string& s) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    auto id = static_cast<std::uint32_t>(names_.size());
    names_.push_back(s);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Id for `s` if it was ever interned; false otherwise (never allocates —
  /// counting a tag nobody emitted must not grow the table).
  bool try_lookup(const std::string& s, std::uint32_t* id) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = ids_.find(s);
    if (it == ids_.end()) return false;
    *id = it->second;
    return true;
  }

  const std::string& name(std::uint32_t id) const {
    std::lock_guard<std::mutex> lk(mu_);
    return names_[id];
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return names_.size();
  }

 private:
  TagRegistry() {
    names_.emplace_back();  // id 0 == ""
    ids_.emplace(names_.back(), 0u);
  }
  mutable std::mutex mu_;
  std::deque<std::string> names_;  // deque: string_views into it stay valid
  std::unordered_map<std::string, std::uint32_t> ids_;
};

/// One timestamped event in the simulation log. The tag is stored interned;
/// `what()` resolves it back to the string for display and legacy queries.
struct TraceEvent {
  Time time = 0;
  int pid = -1;  // -1 when the event is not attributable to a process
  TraceKind kind = TraceKind::kProcess;
  std::uint32_t tag = 0;  // interned "acm.deny"-style machine tag
  std::string detail;     // human-readable specifics
  double value = 0.0;     // optional numeric payload (setpoints, readings)

  const std::string& what() const { return TagRegistry::instance().name(tag); }
};

/// Event log shared by the machine, kernels, devices and the application
/// processes. Tests and the safety checker query it; benches print slices
/// of it; the obs exporter turns it into a Chrome/Perfetto trace.
///
/// By default the log is unbounded (append-only). set_capacity() switches
/// it into a ring buffer that evicts oldest-first — for long soak runs
/// where only the recent window matters. total_emitted()/dropped() keep
/// exact accounting either way, so denial *counts* remain trustworthy even
/// when the denial *events* have been evicted.
class TraceLog {
 public:
  void emit(TraceEvent ev) {
    ++total_emitted_;
    if (capacity_ > 0 && events_.size() == capacity_) {
      events_.pop_front();
      ++dropped_;
    }
    events_.push_back(std::move(ev));
  }
  void emit(Time time, int pid, TraceKind kind, const std::string& what,
            std::string detail = {}, double value = 0.0) {
    emit(TraceEvent{time, pid, kind, TagRegistry::instance().intern(what),
                    std::move(detail), value});
  }
  /// Hot-path overload for callers that interned the tag once up front.
  void emit(Time time, int pid, TraceKind kind, std::uint32_t tag,
            std::string detail = {}, double value = 0.0) {
    emit(TraceEvent{time, pid, kind, tag, std::move(detail), value});
  }

  const std::deque<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  /// Forget the kept events. They count as dropped, so the invariant
  /// total_emitted() == size() + dropped() survives an exporter that
  /// snapshots and clears while the simulation keeps emitting.
  void clear() {
    dropped_ += events_.size();
    events_.clear();
  }

  /// Append every kept event of `other` to this log (in `other`'s order),
  /// carrying the drop accounting across so the invariant
  /// total_emitted() == size() + dropped() holds for the union. This log's
  /// capacity still applies: merged events can evict (or be evicted) like
  /// any other emit. Merging the same logs in the same order produces an
  /// identical log — the reduction step for per-cell campaign traces.
  void merge_from(const TraceLog& other) {
    if (&other == this) return;
    for (const TraceEvent& ev : other.events_) emit(ev);
    total_emitted_ += other.dropped();
    dropped_ += other.dropped();
  }

  /// 0 = unbounded (default). N > 0 = keep only the newest N events,
  /// evicting oldest-first; an over-full log is trimmed immediately.
  void set_capacity(std::size_t cap) {
    capacity_ = cap;
    while (capacity_ > 0 && events_.size() > capacity_) {
      events_.pop_front();
      ++dropped_;
    }
  }
  std::size_t capacity() const { return capacity_; }
  /// Events evicted (ring buffer) or discarded (clear) since construction.
  std::uint64_t dropped() const { return dropped_; }
  /// Events ever emitted. Invariant: total_emitted() == size() + dropped().
  std::uint64_t total_emitted() const { return total_emitted_; }

  /// All events whose tag equals `what`.
  std::vector<TraceEvent> with_tag(const std::string& what) const;
  std::vector<TraceEvent> with_tag(std::uint32_t tag) const;

  /// Count of events whose tag equals `what`.
  std::size_t count_tag(const std::string& what) const;
  std::size_t count_tag(std::uint32_t tag) const;

  /// First event matching the predicate, or nullptr.
  const TraceEvent* find_first(
      const std::function<bool(const TraceEvent&)>& pred) const;

  /// Render the whole log (or one kind, or one tag) as text, one per line.
  void dump(std::ostream& os) const;
  void dump(std::ostream& os, TraceKind kind) const;
  void dump(std::ostream& os, const std::string& tag) const;

 private:
  std::deque<TraceEvent> events_;
  std::size_t capacity_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t total_emitted_ = 0;
};

}  // namespace mkbas::sim
