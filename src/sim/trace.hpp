#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace mkbas::sim {

/// Category of a trace event. Coarse buckets keep filtering cheap; the
/// free-form detail string carries the specifics.
enum class TraceKind {
  kProcess,   // spawn/exit/kill
  kIpc,       // message passing, queues, endpoints
  kSecurity,  // permission decisions (ACM checks, cap checks, mode checks)
  kDevice,    // sensor samples, actuator changes
  kControl,   // control-law decisions (setpoint changes, alarm logic)
  kNetwork,   // simulated HTTP/BACnet traffic
  kAttack,    // attack actions and their observed results
};

const char* to_string(TraceKind kind);

/// One timestamped event in the simulation log.
struct TraceEvent {
  Time time = 0;
  int pid = -1;  // -1 when the event is not attributable to a process
  TraceKind kind = TraceKind::kProcess;
  std::string what;    // short machine-greppable tag, e.g. "acm.deny"
  std::string detail;  // human-readable specifics
  double value = 0.0;  // optional numeric payload (setpoints, readings)
};

/// Append-only event log shared by the machine, kernels, devices and the
/// application processes. Tests and the safety checker query it; benches
/// print slices of it.
class TraceLog {
 public:
  void emit(TraceEvent ev) { events_.push_back(std::move(ev)); }
  void emit(Time time, int pid, TraceKind kind, std::string what,
            std::string detail = {}, double value = 0.0) {
    events_.push_back(
        {time, pid, kind, std::move(what), std::move(detail), value});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// All events whose tag equals `what`.
  std::vector<TraceEvent> with_tag(const std::string& what) const;

  /// Count of events whose tag equals `what`.
  std::size_t count_tag(const std::string& what) const;

  /// First event matching the predicate, or nullptr.
  const TraceEvent* find_first(
      const std::function<bool(const TraceEvent&)>& pred) const;

  /// Render the whole log (or only one kind) as text, one event per line.
  void dump(std::ostream& os) const;
  void dump(std::ostream& os, TraceKind kind) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace mkbas::sim
