#pragma once

#include <cassert>
#include <charconv>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace mkbas::sim {

/// Category of a trace event. Coarse buckets keep filtering cheap; the
/// free-form detail string carries the specifics.
enum class TraceKind {
  kProcess,   // spawn/exit/kill
  kIpc,       // message passing, queues, endpoints
  kSecurity,  // permission decisions (ACM checks, cap checks, mode checks)
  kDevice,    // sensor samples, actuator changes
  kControl,   // control-law decisions (setpoint changes, alarm logic)
  kNetwork,   // simulated HTTP/BACnet traffic
  kAttack,    // attack actions and their observed results
  kFault,     // injected faults (crash/hang/drop/corrupt/stuck/jitter)
};

inline const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kProcess:
      return "proc";
    case TraceKind::kIpc:
      return "ipc";
    case TraceKind::kSecurity:
      return "sec";
    case TraceKind::kDevice:
      return "dev";
    case TraceKind::kControl:
      return "ctl";
    case TraceKind::kNetwork:
      return "net";
    case TraceKind::kAttack:
      return "atk";
    case TraceKind::kFault:
      return "fault";
  }
  return "?";
}

/// Process-wide interner for trace tags ("acm.deny", "mq.send", ...).
///
/// The tag vocabulary is tiny (a few dozen strings) while logs run to
/// millions of events, so events store a 32-bit id and every tag query is
/// an integer compare instead of a strcmp. Interning is idempotent and ids
/// are stable for the life of the process; id 0 is the empty string.
///
/// Everything is defined inline so translation units that only read logs
/// (e.g. the obs trace exporter) need no sim library symbols.
class TagRegistry {
 public:
  static TagRegistry& instance() {
    static TagRegistry reg;
    return reg;
  }

  /// Id for `s`, creating it on first sight.
  std::uint32_t intern(const std::string& s) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    auto id = static_cast<std::uint32_t>(names_.size());
    names_.push_back(s);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Id for `s` if it was ever interned; false otherwise (never allocates —
  /// counting a tag nobody emitted must not grow the table).
  bool try_lookup(const std::string& s, std::uint32_t* id) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = ids_.find(s);
    if (it == ids_.end()) return false;
    *id = it->second;
    return true;
  }

  const std::string& name(std::uint32_t id) const {
    std::lock_guard<std::mutex> lk(mu_);
    return names_[id];
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return names_.size();
  }

 private:
  TagRegistry() {
    names_.emplace_back();  // id 0 == ""
    ids_.emplace(names_.back(), 0u);
  }
  mutable std::mutex mu_;
  std::deque<std::string> names_;  // deque: string_views into it stay valid
  std::unordered_map<std::string, std::uint32_t> ids_;
};

/// One timestamped event in the simulation log. The tag is stored interned;
/// `what()` resolves it back to the string for display and legacy queries.
struct TraceEvent {
  Time time = 0;
  int pid = -1;  // -1 when the event is not attributable to a process
  TraceKind kind = TraceKind::kProcess;
  std::uint32_t tag = 0;  // interned "acm.deny"-style machine tag
  std::string detail;     // human-readable specifics
  double value = 0.0;     // optional numeric payload (setpoints, readings)

  const std::string& what() const { return TagRegistry::instance().name(tag); }
};

/// Append a decimal integer to `s` without any temporary allocation —
/// the std::to_string-free building block hot emitters use to format a
/// detail string in place inside a recycled event slot.
inline void append_int(std::string& s, std::int64_t v) {
  char tmp[24];
  auto r = std::to_chars(tmp, tmp + sizeof tmp, v);
  s.append(tmp, static_cast<std::size_t>(r.ptr - tmp));
}

class TraceLog;

/// Read-only window over a TraceLog's kept events, oldest first. The log
/// stores events in a slot-recycling ring (see TraceLog), so the kept
/// range is not contiguous in memory; this view presents it in logical
/// order with the deque-ish surface the exporters, the safety checker and
/// the tests always used: range-for, size(), operator[], front(), back().
/// Invalidated, like any snapshot, by the next emit on the log.
class TraceView {
 public:
  class iterator {
   public:
    iterator(const TraceView* v, std::size_t i) : v_(v), i_(i) {}
    const TraceEvent& operator*() const { return (*v_)[i_]; }
    const TraceEvent* operator->() const { return &(*v_)[i_]; }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }
    bool operator==(const iterator& o) const { return i_ == o.i_; }

   private:
    const TraceView* v_;
    std::size_t i_;
  };

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  const TraceEvent& operator[](std::size_t i) const {
    assert(i < count_);
    std::size_t phys = head_ + i;
    if (phys >= ring_) phys -= ring_;
    return buf_[phys];
  }
  const TraceEvent& front() const { return (*this)[0]; }
  const TraceEvent& back() const { return (*this)[count_ - 1]; }
  iterator begin() const { return iterator(this, 0); }
  iterator end() const { return iterator(this, count_); }

 private:
  friend class TraceLog;
  TraceView(const TraceEvent* buf, std::size_t head, std::size_t count,
            std::size_t ring)
      : buf_(buf), head_(head), count_(count), ring_(ring) {}

  const TraceEvent* buf_;
  std::size_t head_;   // physical index of the oldest kept event
  std::size_t count_;  // kept events
  std::size_t ring_;   // physical modulus (buffer length)
};

/// Event log shared by the machine, kernels, devices and the application
/// processes. Tests and the safety checker query it; benches print slices
/// of it; the obs exporter turns it into a Chrome/Perfetto trace.
///
/// By default the log is unbounded (append-only). set_capacity() switches
/// it into a ring buffer that evicts oldest-first — for long soak runs
/// where only the recent window matters. total_emitted()/dropped() keep
/// exact accounting either way, so denial *counts* remain trustworthy even
/// when the denial *events* have been evicted.
///
/// Storage is a slot-recycling vector ring: evicting never destroys the
/// TraceEvent, it hands the slot (and its detail string's capacity) to the
/// incoming event. Hot emitters use emit_slot() and format the detail in
/// place, so a steady-state ring-mode emitter touches the allocator zero
/// times per event.
class TraceLog {
 public:
  /// Append a fresh event and return its slot for in-place formatting.
  /// The slot's header fields are set; `detail` arrives cleared but keeps
  /// whatever capacity the evicted tenant had grown.
  TraceEvent& emit_slot(Time time, int pid, TraceKind kind, std::uint32_t tag,
                        double value = 0.0) {
    ++total_emitted_;
    TraceEvent* ev;
    if (capacity_ > 0 && buf_.size() == capacity_) {
      ev = &buf_[head_];  // recycle the oldest slot in place
      head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
      ++dropped_;
    } else {
      buf_.emplace_back();
      ev = &buf_.back();
    }
    ev->time = time;
    ev->pid = pid;
    ev->kind = kind;
    ev->tag = tag;
    ev->value = value;
    ev->detail.clear();
    return *ev;
  }

  void emit(TraceEvent ev) {
    TraceEvent& slot = emit_slot(ev.time, ev.pid, ev.kind, ev.tag, ev.value);
    slot.detail.assign(ev.detail);  // copy into the slot's retained capacity
  }
  void emit(Time time, int pid, TraceKind kind, const std::string& what,
            const std::string& detail = {}, double value = 0.0) {
    emit_slot(time, pid, kind, TagRegistry::instance().intern(what), value)
        .detail.assign(detail);
  }
  /// Hot-path overload for callers that interned the tag once up front.
  void emit(Time time, int pid, TraceKind kind, std::uint32_t tag,
            const std::string& detail = {}, double value = 0.0) {
    emit_slot(time, pid, kind, tag, value).detail.assign(detail);
  }

  TraceView events() const {
    return TraceView(buf_.data(), head_, size(), buf_.empty() ? 1 : buf_.size());
  }
  std::size_t size() const { return buf_.size(); }
  /// Forget the kept events. They count as dropped, so the invariant
  /// total_emitted() == size() + dropped() survives an exporter that
  /// snapshots and clears while the simulation keeps emitting.
  void clear() {
    dropped_ += size();
    buf_.clear();
    head_ = 0;
  }

  /// Append every kept event of `other` to this log (in `other`'s order),
  /// carrying the drop accounting across so the invariant
  /// total_emitted() == size() + dropped() holds for the union. This log's
  /// capacity still applies: merged events can evict (or be evicted) like
  /// any other emit. Merging the same logs in the same order produces an
  /// identical log — the reduction step for per-cell campaign traces.
  void merge_from(const TraceLog& other) {
    if (&other == this) return;
    for (const TraceEvent& ev : other.events()) emit(ev);
    total_emitted_ += other.dropped();
    dropped_ += other.dropped();
  }

  /// 0 = unbounded (default). N > 0 = keep only the newest N events,
  /// evicting oldest-first; an over-full log is trimmed immediately.
  void set_capacity(std::size_t cap) {
    if (cap > 0 && size() > cap) {
      const std::size_t drop = size() - cap;
      // Cold path: materialise the newest `cap` events in logical order.
      std::vector<TraceEvent> kept;
      kept.reserve(cap);
      TraceView v = events();
      for (std::size_t i = drop; i < v.size(); ++i) kept.push_back(v[i]);
      buf_ = std::move(kept);
      head_ = 0;
      dropped_ += drop;
    } else if (head_ != 0) {
      // Re-linearise so a *larger* capacity keeps appending correctly.
      std::vector<TraceEvent> kept;
      kept.reserve(size());
      for (const TraceEvent& ev : events()) kept.push_back(ev);
      buf_ = std::move(kept);
      head_ = 0;
    }
    capacity_ = cap;
  }
  std::size_t capacity() const { return capacity_; }
  /// Events evicted (ring buffer) or discarded (clear) since construction.
  std::uint64_t dropped() const { return dropped_; }
  /// Events ever emitted. Invariant: total_emitted() == size() + dropped().
  std::uint64_t total_emitted() const { return total_emitted_; }

  /// All events whose tag equals `what`.
  std::vector<TraceEvent> with_tag(const std::string& what) const;
  std::vector<TraceEvent> with_tag(std::uint32_t tag) const;

  /// Count of events whose tag equals `what`.
  std::size_t count_tag(const std::string& what) const;
  std::size_t count_tag(std::uint32_t tag) const;

  /// First event matching the predicate, or nullptr.
  const TraceEvent* find_first(
      const std::function<bool(const TraceEvent&)>& pred) const;

  /// Render the whole log (or one kind, or one tag) as text, one per line.
  void dump(std::ostream& os) const;
  void dump(std::ostream& os, TraceKind kind) const;
  void dump(std::ostream& os, const std::string& tag) const;

 private:
  std::vector<TraceEvent> buf_;  // ring once buf_.size() == capacity_
  std::size_t head_ = 0;         // oldest slot (always 0 while growing)
  std::size_t capacity_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t total_emitted_ = 0;
};

}  // namespace mkbas::sim
