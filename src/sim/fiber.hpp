#pragma once

#include <ucontext.h>

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mkbas::sim {

/// One switchable execution context. Either a real fiber (stack_bottom set,
/// created by fiber_create) or the native context of an OS thread that is
/// about to switch into a fiber (bound by fiber_bind_native). The sanitizer
/// bookkeeping fields let the same code run clean under ASan and TSan.
struct FiberContext {
  ucontext_t uc;
  void* stack_bottom = nullptr;  // nullptr => native thread stack
  std::size_t stack_size = 0;
  void* asan_fake = nullptr;     // ASan fake-stack handle, travels with us
  void* tsan_fiber = nullptr;    // TSan fiber identity
  bool tsan_owned = false;       // we created tsan_fiber and must destroy it
};

/// Freelist of mmap'd fiber stacks. Each stack is `usable()` writable bytes
/// with a PROT_NONE guard page below (stacks grow down), mapped with
/// MAP_NORESERVE so a parked process costs only the pages it actually
/// touched. Released stacks are recycled in LIFO order — a fault campaign
/// that reincarnates a process thousands of times reuses one warm stack
/// instead of paging in a cold one per restart.
class FiberStackPool {
 public:
  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

  explicit FiberStackPool(std::size_t usable_bytes = kDefaultStackBytes);
  ~FiberStackPool();
  FiberStackPool(const FiberStackPool&) = delete;
  FiberStackPool& operator=(const FiberStackPool&) = delete;

  /// Lowest writable address of a stack (guard page sits just below).
  void* acquire();
  void release(void* bottom);

  std::size_t usable() const { return usable_; }
  std::size_t mapped_count() const { return slabs_.size(); }
  std::size_t free_count() const { return free_.size(); }

 private:
  std::size_t usable_ = 0;
  std::size_t page_ = 4096;
  std::vector<void*> slabs_;  // mapping bases (for munmap)
  std::vector<void*> free_;   // recycled usable-bottoms
};

/// Entry signature for makecontext: a pointer split into two unsigned halves
/// (the portable way to smuggle 64 bits through makecontext's int varargs).
using FiberEntry = void (*)(unsigned, unsigned);

/// Prepare `f` to run `entry(hi(arg), lo(arg))` on the given stack. The
/// entry function must never return (it must fiber_switch_final away).
void fiber_create(FiberContext& f, void* stack_bottom, std::size_t size,
                  FiberEntry entry, void* arg);

/// Capture the sanitizer identity of the calling OS thread into `f` so
/// fibers can switch back to it. Call on the driving thread before the
/// first switch of each run; cheap no-op in plain builds.
void fiber_bind_native(FiberContext& f);

/// Switch from `from` (the currently executing context) to `to`. Returns
/// when something later switches back into `from`.
void fiber_switch(FiberContext& from, FiberContext& to);

/// Switch away from a terminating fiber. Its stack may be recycled once the
/// switch has completed (i.e. by the context that receives control).
[[noreturn]] void fiber_switch_final(FiberContext& from, FiberContext& to);

/// Must be the first call inside a fiber entry function (finishes the
/// sanitizer switch protocol for the first activation).
void fiber_on_entry(FiberContext& self);

/// Release sanitizer resources for a dead fiber. Call only after control has
/// left it for good (fiber_switch_final completed), never from the fiber
/// itself.
void fiber_destroy(FiberContext& f);

}  // namespace mkbas::sim
