#pragma once

#include <cstdint>

namespace mkbas::sim {

/// Simulated time, in microseconds since machine boot.
///
/// All of the simulation runs on a virtual clock: the machine advances the
/// clock only when every simulated process is blocked (discrete-event style)
/// or when a syscall explicitly charges CPU time. Using a plain integer type
/// keeps arithmetic exact and the simulation fully deterministic.
using Time = std::int64_t;

/// A span of simulated time, in microseconds.
using Duration = std::int64_t;

constexpr Duration usec(std::int64_t n) { return n; }
constexpr Duration msec(std::int64_t n) { return n * 1000; }
constexpr Duration sec(std::int64_t n) { return n * 1000 * 1000; }
constexpr Duration minutes(std::int64_t n) { return sec(60 * n); }

/// Convert simulated time to floating-point seconds (for physics/reporting).
constexpr double to_seconds(Time t) { return static_cast<double>(t) / 1e6; }

/// Sentinel for "no event scheduled, ever" (Machine::next_event_time).
constexpr Time kTimeNever = INT64_C(0x7fffffffffffffff);

}  // namespace mkbas::sim
