#include "sim/trace.hpp"

#include <ostream>

namespace mkbas::sim {

std::vector<TraceEvent> TraceLog::with_tag(std::uint32_t tag) const {
  std::vector<TraceEvent> out;
  for (const auto& ev : events()) {
    if (ev.tag == tag) out.push_back(ev);
  }
  return out;
}

std::vector<TraceEvent> TraceLog::with_tag(const std::string& what) const {
  std::uint32_t tag = 0;
  if (!TagRegistry::instance().try_lookup(what, &tag)) return {};
  return with_tag(tag);
}

std::size_t TraceLog::count_tag(std::uint32_t tag) const {
  std::size_t n = 0;
  for (const auto& ev : events()) {
    if (ev.tag == tag) ++n;
  }
  return n;
}

std::size_t TraceLog::count_tag(const std::string& what) const {
  std::uint32_t tag = 0;
  if (!TagRegistry::instance().try_lookup(what, &tag)) return 0;
  return count_tag(tag);
}

const TraceEvent* TraceLog::find_first(
    const std::function<bool(const TraceEvent&)>& pred) const {
  for (const auto& ev : events()) {
    if (pred(ev)) return &ev;
  }
  return nullptr;
}

namespace {
void print_event(std::ostream& os, const TraceEvent& ev) {
  os << '[' << ev.time << "us] ";
  if (ev.pid >= 0) {
    os << "pid=" << ev.pid << ' ';
  }
  os << to_string(ev.kind) << ' ' << ev.what();
  if (!ev.detail.empty()) os << " | " << ev.detail;
  os << '\n';
}
}  // namespace

void TraceLog::dump(std::ostream& os) const {
  for (const auto& ev : events()) print_event(os, ev);
}

void TraceLog::dump(std::ostream& os, TraceKind kind) const {
  for (const auto& ev : events()) {
    if (ev.kind == kind) print_event(os, ev);
  }
}

void TraceLog::dump(std::ostream& os, const std::string& tag) const {
  std::uint32_t id = 0;
  if (!TagRegistry::instance().try_lookup(tag, &id)) return;
  for (const auto& ev : events()) {
    if (ev.tag == id) print_event(os, ev);
  }
}

}  // namespace mkbas::sim
