#include "sim/trace.hpp"

#include <ostream>

namespace mkbas::sim {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kProcess:
      return "proc";
    case TraceKind::kIpc:
      return "ipc";
    case TraceKind::kSecurity:
      return "sec";
    case TraceKind::kDevice:
      return "dev";
    case TraceKind::kControl:
      return "ctl";
    case TraceKind::kNetwork:
      return "net";
    case TraceKind::kAttack:
      return "atk";
  }
  return "?";
}

std::vector<TraceEvent> TraceLog::with_tag(const std::string& what) const {
  std::vector<TraceEvent> out;
  for (const auto& ev : events_) {
    if (ev.what == what) out.push_back(ev);
  }
  return out;
}

std::size_t TraceLog::count_tag(const std::string& what) const {
  std::size_t n = 0;
  for (const auto& ev : events_) {
    if (ev.what == what) ++n;
  }
  return n;
}

const TraceEvent* TraceLog::find_first(
    const std::function<bool(const TraceEvent&)>& pred) const {
  for (const auto& ev : events_) {
    if (pred(ev)) return &ev;
  }
  return nullptr;
}

namespace {
void print_event(std::ostream& os, const TraceEvent& ev) {
  os << '[' << ev.time << "us] ";
  if (ev.pid >= 0) {
    os << "pid=" << ev.pid << ' ';
  }
  os << to_string(ev.kind) << ' ' << ev.what;
  if (!ev.detail.empty()) os << " | " << ev.detail;
  os << '\n';
}
}  // namespace

void TraceLog::dump(std::ostream& os) const {
  for (const auto& ev : events_) print_event(os, ev);
}

void TraceLog::dump(std::ostream& os, TraceKind kind) const {
  for (const auto& ev : events_) {
    if (ev.kind == kind) print_event(os, ev);
  }
}

}  // namespace mkbas::sim
