#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace mkbas::sim {

/// Calendar-queue priority queue for virtual-time events (Brown 1988).
///
/// `T` must expose `.when` (Time) and `.seq` (uint64); the pair is unique
/// per entry and orders the queue ascending — the exact total order the
/// old std::priority_queue<Timer> used, so fire order is bit-identical.
///
/// Events hash into power-of-two "day" buckets by `when >> shift`; each
/// bucket keeps its (few) entries sorted descending so the bucket minimum
/// is an O(1) pop_back. The global minimum is cached, which makes top()
/// and min_when() O(1) — Machine::next_event_time() is on the lookahead
/// fabric's per-event path, so that read must not cost a heap walk. After
/// a pop the cache is refilled with the classic calendar scan: walk
/// buckets forward from the popped entry's day; the first entry inside
/// its bucket's current-year window is the new minimum, and a fruitless
/// full lap falls back to a direct sweep over the bucket minima (only
/// happens when every remaining event is at least a year ahead).
///
/// Resizes (count doubled/quartered) rebuild with bucket count ~ count and
/// bucket width ~ the average inter-event gap, both derived purely from
/// the queue contents — no wall-clock sampling, so replays stay exact.
/// At steady state (periodic timers, paced sleeps) the bucket vectors
/// plateau at their high-water capacity and push/pop allocate nothing.
template <typename T>
class CalendarQueue {
 public:
  CalendarQueue() { rebuild(kMinBuckets, kInitialShift); }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  /// Earliest `when` in the queue, kTimeNever when empty. O(1).
  Time min_when() const { return count_ == 0 ? kTimeNever : cached_when_; }

  /// The minimum entry (by (when, seq)). Requires !empty(). O(1).
  const T& top() const {
    assert(count_ > 0);
    return buckets_[cached_bucket_].back();
  }

  void push(T t) {
    if (count_ + 1 > (buckets_.size() << 1)) {
      rebuild_sized(count_ + 1);
    }
    const Time when = t.when;
    const std::uint64_t seq = t.seq;
    insert_entry(std::move(t));
    ++count_;
    if (count_ == 1 || when < cached_when_ ||
        (when == cached_when_ && seq < cached_seq_)) {
      cached_when_ = when;
      cached_seq_ = seq;
      cached_bucket_ = bucket_of(when);
    }
  }

  /// Remove and return the minimum entry.
  T pop() {
    assert(count_ > 0);
    auto& b = buckets_[cached_bucket_];
    T out = std::move(b.back());
    b.pop_back();
    --count_;
    if (count_ < (buckets_.size() >> 2) && buckets_.size() > kMinBuckets) {
      rebuild_sized(count_ == 0 ? 1 : count_);
    } else if (count_ > 0) {
      refill_cache(static_cast<std::uint64_t>(out.when) >> shift_);
    }
    return out;
  }

 private:
  static constexpr std::size_t kMinBuckets = 8;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 16;
  static constexpr unsigned kInitialShift = 10;  // ~1ms buckets
  static constexpr unsigned kMinShift = 4;       // >=16us wide
  static constexpr unsigned kMaxShift = 34;      // <=~17s wide

  std::size_t bucket_of(Time when) const {
    return (static_cast<std::uint64_t>(when) >> shift_) & mask_;
  }

  static bool before(Time wa, std::uint64_t sa, const T& b) {
    return wa != b.when ? wa < b.when : sa < b.seq;
  }

  void insert_entry(T t) {
    auto& b = buckets_[bucket_of(t.when)];
    // Descending order: scan from the back (the bucket minimum) upward,
    // moving left past entries that order before t. Buckets hold a couple
    // of entries, so this linear walk beats a branchy binary search — and
    // most pushes land at an end anyway.
    std::size_t i = b.size();
    while (i > 0 && before(b[i - 1].when, b[i - 1].seq, t)) --i;
    b.insert(b.begin() + static_cast<std::ptrdiff_t>(i), std::move(t));
  }

  /// Recompute the cached minimum after removing it; `start_epoch` is the
  /// absolute day (when >> shift) of the entry just removed, i.e. a lower
  /// bound for every remaining entry's day.
  void refill_cache(std::uint64_t start_epoch) {
    const std::size_t n = buckets_.size();
    for (std::size_t k = 0; k < n; ++k) {
      const std::uint64_t epoch = start_epoch + k;
      const auto& b = buckets_[epoch & mask_];
      if (b.empty()) continue;
      const T& cand = b.back();
      const std::uint64_t window_end = (epoch + 1) << shift_;
      if (static_cast<std::uint64_t>(cand.when) < window_end) {
        cached_when_ = cand.when;
        cached_seq_ = cand.seq;
        cached_bucket_ = epoch & mask_;
        return;
      }
    }
    // Everything left is a full calendar year ahead: direct sweep.
    direct_min_sweep();
  }

  void direct_min_sweep() {
    bool found = false;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      const auto& b = buckets_[i];
      if (b.empty()) continue;
      const T& cand = b.back();
      if (!found || before(cand.when, cand.seq, buckets_[cached_bucket_].back())) {
        cached_when_ = cand.when;
        cached_seq_ = cand.seq;
        cached_bucket_ = i;
        found = true;
      }
    }
    assert(found == (count_ > 0));
  }

  /// Pick geometry for `for_count` entries from the current contents:
  /// bucket count tracks the population, bucket width tracks the average
  /// gap between the earliest and latest pending events.
  void rebuild_sized(std::size_t for_count) {
    std::size_t nbuckets = std::bit_ceil(for_count);
    nbuckets = std::min(std::max(nbuckets, kMinBuckets), kMaxBuckets);
    // Average inter-event gap, from current content only (deterministic).
    Time lo = kTimeNever, hi = 0;
    for (const auto& b : buckets_) {
      for (const auto& t : b) {
        lo = t.when < lo ? t.when : lo;
        hi = t.when > hi ? t.when : hi;
      }
    }
    unsigned shift = kInitialShift;
    if (count_ > 1 && hi > lo) {
      const auto gap = static_cast<std::uint64_t>(hi - lo) / count_;
      shift = static_cast<unsigned>(std::bit_width(gap));
    }
    shift = std::min(std::max(shift, kMinShift), kMaxShift);
    rebuild(nbuckets, shift);
  }

  void rebuild(std::size_t nbuckets, unsigned shift) {
    std::vector<std::vector<T>> old = std::move(buckets_);
    buckets_.assign(nbuckets, {});
    mask_ = nbuckets - 1;
    shift_ = shift;
    for (auto& b : old) {
      for (auto& t : b) insert_entry(std::move(t));
    }
    if (count_ > 0) direct_min_sweep();
  }

  std::vector<std::vector<T>> buckets_;
  std::size_t mask_ = 0;
  unsigned shift_ = kInitialShift;
  std::size_t count_ = 0;
  Time cached_when_ = kTimeNever;
  std::uint64_t cached_seq_ = 0;
  std::size_t cached_bucket_ = 0;
};

}  // namespace mkbas::sim
