#pragma once

#include <cstdint>

namespace mkbas::sim {

/// Deterministic, seedable PRNG (xoshiro256** with a splitmix64 seeder).
///
/// The standard library's distributions are not guaranteed to produce the
/// same sequence across implementations, so the simulator carries its own
/// generator to keep traces reproducible byte-for-byte on any platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection-free Lemire reduction is unnecessary here; modulo bias is
    // negligible for simulation noise, but we still use the high bits.
    return next_u64() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Approximately normal(0, 1) via the sum of 12 uniforms (Irwin-Hall).
  /// Good enough for sensor noise and far cheaper than Box-Muller.
  double next_gaussian() {
    double s = 0.0;
    for (int i = 0; i < 12; ++i) s += next_double();
    return s - 6.0;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace mkbas::sim
