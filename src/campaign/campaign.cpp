#include "campaign/campaign.hpp"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "campaign/pool.hpp"
#include "core/hash.hpp"

namespace mkbas::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One cell, executed on whichever worker thread picked it up. All state
/// is local: the Machine (and with it RNG, registry, trace) is built and
/// torn down inside this call.
CellResult run_cell(const CampaignCell& cell) {
  CellResult res;
  res.name = cell.name;
  res.kind = cell.kind;
  const auto t0 = Clock::now();

  RunOptions opts = cell.opts;
  auto caller_observe = opts.observe;
  opts.observe = [&](sim::Machine& m) {
    if (caller_observe) caller_observe(m);
    // Close trailing rate windows so trailing anomalies are detected
    // before the snapshot; idempotent if the caller already flushed.
    m.health().flush(m.now());
    res.metrics = std::make_unique<obs::MetricsRegistry>();
    res.metrics->merge_from(m.metrics());
    res.metrics_json = m.metrics().to_json();
    res.trace_hash = trace_hash(m.trace());
    res.trace_events = m.trace().total_emitted();
    res.spans = std::make_unique<obs::SpanStore>();
    res.spans->merge_from(m.spans());
    res.audit = std::make_unique<obs::AuditJournal>();
    res.audit->merge_from(m.audit());
    res.spans_json = res.spans->to_json();
    res.audit_json = res.audit->to_json();
    res.series = std::make_unique<obs::SeriesStore>();
    res.series->merge_from(m.series());
    res.health = std::make_unique<obs::HealthMonitor>();
    res.health->merge_from(m.health());
    res.flight = std::make_unique<obs::FlightRecorder>();
    res.flight->merge_from(m.flight());
    res.series_json = res.series->to_json();
    res.health_json = res.health->to_json();
    res.flight_json = res.flight->to_json();
  };

  switch (cell.kind) {
    case CellKind::kBenign:
      res.benign = run_benign(cell.platform, opts);
      break;
    case CellKind::kAttack:
      res.attack =
          run_attack(cell.platform, cell.attack_kind, cell.privilege, opts);
      break;
    case CellKind::kFault:
      res.fault =
          run_fault(cell.platform, cell.plan, opts, cell.spoof_probe_at);
      break;
    case CellKind::kFabric: {
      // The fabric already reduces its machines in node order; the cell
      // snapshot folds the same registries so the campaign-level merge
      // sees one registry per cell, as for every other kind.
      FabricOptions fopts = cell.fabric;
      auto caller_fabric_observe = fopts.observe;
      fopts.observe = [&](net::Fabric& fabric) {
        if (caller_fabric_observe) caller_fabric_observe(fabric);
        res.metrics = std::make_unique<obs::MetricsRegistry>();
        res.spans = std::make_unique<obs::SpanStore>();
        res.audit = std::make_unique<obs::AuditJournal>();
        res.series = std::make_unique<obs::SeriesStore>();
        res.health = std::make_unique<obs::HealthMonitor>();
        res.flight = std::make_unique<obs::FlightRecorder>();
        std::uint64_t events = 0;
        for (std::size_t n = 0; n < fabric.node_count(); ++n) {
          sim::Machine& m = fabric.machine(static_cast<int>(n));
          res.metrics->merge_from(m.metrics());
          res.spans->merge_from(m.spans());
          res.audit->merge_from(m.audit());
          res.series->merge_from(m.series());
          res.health->merge_from(m.health());
          res.flight->merge_from(m.flight());
          events += m.trace().total_emitted();
        }
        res.trace_events = events;
      };
      res.fabric = run_fabric(fopts);
      res.metrics_json = res.fabric.metrics_json;
      res.trace_hash = res.fabric.trace_hash;
      res.spans_json = res.fabric.spans_json;
      res.audit_json = res.fabric.audit_json;
      res.series_json = res.fabric.series_json;
      res.health_json = res.fabric.health_json;
      res.flight_json = res.fabric.flight_json;
      break;
    }
  }
  res.wall_seconds = seconds_since(t0);
  return res;
}

std::string cell_verdict(const CellResult& r) {
  char buf[256];
  switch (r.kind) {
    case CellKind::kBenign:
      std::snprintf(buf, sizeof buf, "samples=%zu final_c=%.6f %s",
                    r.benign.history.size(),
                    r.benign.history.empty()
                        ? 0.0
                        : r.benign.history.back().true_temp_c,
                    r.benign.safety.summary().c_str());
      return buf;
    case CellKind::kAttack:
      std::snprintf(buf, sizeof buf, "%s primitive=%s attempts=%d/%d %s",
                    r.attack.platform_label.c_str(),
                    r.attack.outcome.primitive_succeeded ? "SUCCEEDED"
                                                         : "blocked",
                    r.attack.outcome.successes, r.attack.outcome.attempts,
                    r.attack.safety.summary().c_str());
      return buf;
    case CellKind::kFault:
      std::snprintf(
          buf, sizeof buf,
          "%s recovered=%s mttr_s=%.3f restarts=%d excursion_c=%.3f "
          "faults=%llu spoof=%s",
          r.fault.platform_label.c_str(),
          r.fault.loop_recovered ? "yes" : "no",
          r.fault.mttr < 0 ? -1.0 : sim::to_seconds(r.fault.mttr),
          r.fault.restarts, r.fault.max_excursion_after_fault_c,
          static_cast<unsigned long long>(r.fault.faults_injected),
          !r.fault.web_spoof.attempted
              ? "-"
              : (r.fault.web_spoof.primitive_succeeded ? "SPOOFED"
                                                       : "blocked"));
      return buf;
    case CellKind::kFabric: {
      std::string zones;
      for (const FabricZoneRow& row : r.fabric.rows) {
        if (!zones.empty()) zones += ',';
        zones += std::to_string(row.zone);
        zones += r.fabric.attack == FabricAttack::kNone
                     ? ":-"
                     : (row.attack_delivered ? ":DELIVERED" : ":blocked");
      }
      std::snprintf(
          buf, sizeof buf,
          "zones=%d attack=%s delivered=%llu drops=%llu/%llu/%llu "
          "cov=%llu cov_p99_us=%.0f [%s]",
          r.fabric.zones, to_string(r.fabric.attack),
          static_cast<unsigned long long>(r.fabric.delivered),
          static_cast<unsigned long long>(r.fabric.drop_loss),
          static_cast<unsigned long long>(r.fabric.drop_partition),
          static_cast<unsigned long long>(r.fabric.drop_overflow),
          static_cast<unsigned long long>(r.fabric.cov_count),
          r.fabric.cov_p99_us, zones.c_str());
      return buf;
    }
  }
  return "?";
}

}  // namespace

const char* to_string(CellKind k) {
  switch (k) {
    case CellKind::kBenign:
      return "benign";
    case CellKind::kAttack:
      return "attack";
    case CellKind::kFault:
      return "fault";
    case CellKind::kFabric:
      return "fabric";
  }
  return "?";
}

CampaignResult run_campaign(const std::vector<CampaignCell>& cells,
                            int jobs) {
  CampaignResult out;
  out.jobs = jobs < 1 ? 1 : jobs;
  const auto t0 = Clock::now();

  out.cells.resize(cells.size());
  campaign::WorkStealingPool pool(out.jobs);
  pool.set_profiling(true);
  pool.run(cells.size(), [&](std::size_t i) {
    // Slot i belongs to cell i: completion order never shows through.
    out.cells[i] = run_cell(cells[i]);
  });
  out.steals = pool.steals();
  out.worker_profiles = pool.worker_profiles();
  out.cell_profiles = pool.task_profiles();

  // Reductions walk the slots in cell order — the one order every --jobs
  // value shares — so merged artifacts are byte-identical to sequential.
  obs::MetricsRegistry merged;
  obs::SpanStore merged_spans;
  obs::AuditJournal merged_audit;
  obs::SeriesStore merged_series;
  obs::HealthMonitor merged_health;
  obs::FlightRecorder merged_flight;
  std::uint64_t chain = 14695981039346656037ULL;
  for (const CellResult& r : out.cells) {
    if (r.metrics) merged.merge_from(*r.metrics);
    if (r.spans) merged_spans.merge_from(*r.spans);
    if (r.audit) merged_audit.merge_from(*r.audit);
    if (r.series) merged_series.merge_from(*r.series);
    if (r.health) merged_health.merge_from(*r.health);
    if (r.flight) merged_flight.merge_from(*r.flight);
    chain = fnv1a(hex64(r.trace_hash), chain);
  }
  out.merged_metrics_json = merged.to_json();
  out.merged_trace_hash = chain;
  out.merged_spans_json = merged_spans.to_json();
  out.merged_audit_json = merged_audit.to_json();
  out.merged_series_json = merged_series.to_json();
  out.merged_health_json = merged_health.to_json();
  out.merged_flight_json = merged_flight.to_json();
  out.wall_seconds = seconds_since(t0);
  return out;
}

std::string CampaignResult::summary_json() const {
  // Keys sorted at every level, like every other JSON export.
  std::ostringstream os;
  os << "{\"cells\":[";
  bool first = true;
  for (const auto& r : cells) {
    if (!first) os << ',';
    first = false;
    os << "{\"audit_hash\":\"" << hex64(fnv1a(r.audit_json))
       << "\",\"flight_hash\":\"" << hex64(fnv1a(r.flight_json))
       << "\",\"health_events\":"
       << (r.health ? r.health->events().size() : 0)
       << ",\"health_hash\":\"" << hex64(fnv1a(r.health_json))
       << "\",\"kind\":\"" << to_string(r.kind) << "\",\"metrics_hash\":\""
       << hex64(fnv1a(r.metrics_json)) << "\",\"name\":\""
       << obs::json_escape(r.name) << "\",\"series_hash\":\""
       << hex64(fnv1a(r.series_json)) << "\",\"spans_hash\":\""
       << hex64(fnv1a(r.spans_json)) << "\",\"trace_events\":"
       << r.trace_events << ",\"trace_hash\":\"" << hex64(r.trace_hash)
       << "\",\"verdict\":\"" << obs::json_escape(cell_verdict(r))
       << "\"}";
  }
  os << "],\"merged_audit_hash\":\"" << hex64(fnv1a(merged_audit_json))
     << "\",\"merged_flight_hash\":\"" << hex64(fnv1a(merged_flight_json))
     << "\",\"merged_health_hash\":\"" << hex64(fnv1a(merged_health_json))
     << "\",\"merged_metrics\":" << merged_metrics_json
     << ",\"merged_series_hash\":\"" << hex64(fnv1a(merged_series_json))
     << "\",\"merged_spans_hash\":\"" << hex64(fnv1a(merged_spans_json))
     << "\",\"merged_trace_hash\":\"" << hex64(merged_trace_hash)
     << "\",\"schema_version\":" << obs::kSchemaVersion << "}";
  return os.str();
}

std::string CampaignResult::profile_json() const {
  std::ostringstream os;
  os << "{\"cells\":[";
  for (std::size_t i = 0; i < cell_profiles.size(); ++i) {
    const campaign::TaskProfile& tp = cell_profiles[i];
    if (i > 0) os << ',';
    os << "{\"end_s\":" << obs::json_double(tp.end_seconds)
       << ",\"index\":" << i << ",\"name\":\""
       << obs::json_escape(i < cells.size() ? cells[i].name : "")
       << "\",\"start_s\":" << obs::json_double(tp.start_seconds)
       << ",\"stolen\":" << (tp.stolen ? "true" : "false")
       << ",\"worker\":" << tp.worker << "}";
  }
  os << "],\"jobs\":" << jobs << ",\"schema_version\":"
     << obs::kSchemaVersion << ",\"steals\":" << steals
     << ",\"wall_seconds\":" << obs::json_double(wall_seconds)
     << ",\"workers\":[";
  for (std::size_t w = 0; w < worker_profiles.size(); ++w) {
    const campaign::WorkerProfile& wp = worker_profiles[w];
    if (w > 0) os << ',';
    os << "{\"busy_seconds\":" << obs::json_double(wp.busy_seconds)
       << ",\"executed\":" << wp.executed << ",\"queue_depth\":[";
    for (std::size_t s = 0; s < wp.queue_depth.size(); ++s) {
      if (s > 0) os << ',';
      os << '[' << obs::json_double(wp.queue_depth[s].first) << ','
         << wp.queue_depth[s].second << ']';
    }
    os << "],\"stolen\":" << wp.stolen << ",\"worker\":" << wp.worker
       << "}";
  }
  os << "]}";
  return os.str();
}

std::string CampaignResult::profile_trace_json() const {
  // One Perfetto lane per pool worker, one slice per cell: the
  // campaign's host-time schedule, viewable next to the sim traces.
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const campaign::WorkerProfile& wp : worker_profiles) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << wp.worker
       << ",\"tid\":0,\"args\":{\"name\":\"pool-worker"
       << wp.worker << "\"}}";
  }
  for (std::size_t i = 0; i < cell_profiles.size(); ++i) {
    const campaign::TaskProfile& tp = cell_profiles[i];
    if (tp.worker < 0) continue;
    const double us = 1e6;
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\""
       << obs::json_escape(i < cells.size() ? cells[i].name : "")
       << "\",\"cat\":\"cell\",\"ph\":\"X\",\"ts\":"
       << obs::json_double(tp.start_seconds * us) << ",\"dur\":"
       << obs::json_double(
              (tp.end_seconds - tp.start_seconds) * us < 1.0
                  ? 1.0
                  : (tp.end_seconds - tp.start_seconds) * us)
       << ",\"pid\":" << tp.worker << ",\"tid\":0,\"args\":{\"index\":"
       << i << ",\"stolen\":" << (tp.stolen ? "true" : "false") << "}}";
  }
  os << "]}";
  return os.str();
}

std::vector<CampaignCell> attack_matrix_cells(const RunOptions& base) {
  using attack::AttackKind;
  using attack::Privilege;
  std::vector<CampaignCell> cells;
  const AttackKind kinds[] = {
      AttackKind::kSpoofSensor, AttackKind::kSpoofActuator,
      AttackKind::kKillControl, AttackKind::kForkBomb,
      AttackKind::kCapBruteForce, AttackKind::kIpcFlood};
  const Platform platforms[] = {Platform::kLinux, Platform::kMinix,
                                Platform::kSel4};
  const char* pnames[] = {"linux", "minix", "sel4"};
  // Same nesting as the sequential run_attack_matrix(), so rows (and the
  // rendered table) come out in the same order.
  for (AttackKind kind : kinds) {
    for (std::size_t pi = 0; pi < 3; ++pi) {
      const Platform p = platforms[pi];
      for (Privilege priv : {Privilege::kCodeExec, Privilege::kRoot}) {
        if (p == Platform::kSel4 && priv == Privilege::kRoot) continue;
        CampaignCell c;
        c.name = std::string("attack/") + attack::to_string(kind) + "/" +
                 pnames[pi] + "/" + attack::to_string(priv);
        c.kind = CellKind::kAttack;
        c.platform = p;
        c.attack_kind = kind;
        c.privilege = priv;
        c.opts = base;
        cells.push_back(std::move(c));
      }
      if (p == Platform::kMinix && kind == AttackKind::kForkBomb) {
        CampaignCell c;
        c.name = std::string("attack/") + attack::to_string(kind) +
                 "/minix/code-exec+quota";
        c.kind = CellKind::kAttack;
        c.platform = p;
        c.attack_kind = kind;
        c.privilege = Privilege::kCodeExec;
        c.opts = base;
        c.opts.minix_quotas = true;
        cells.push_back(std::move(c));
      }
    }
  }
  return cells;
}

std::vector<CampaignCell> seed_sweep_cells(Platform platform,
                                           const RunOptions& base,
                                           std::uint64_t first_seed,
                                           int count) {
  std::vector<CampaignCell> cells;
  for (int i = 0; i < count; ++i) {
    CampaignCell c;
    c.kind = CellKind::kBenign;
    c.platform = platform;
    c.opts = base;
    c.opts.seed = first_seed + static_cast<std::uint64_t>(i);
    c.name = std::string("benign/") + to_string(platform) + "/seed" +
             std::to_string(c.opts.seed);
    cells.push_back(std::move(c));
  }
  return cells;
}

std::vector<CampaignCell> fault_campaign_cells(const fault::FaultPlan& plan,
                                               const RunOptions& base,
                                               sim::Time spoof_probe_at) {
  std::vector<CampaignCell> cells;
  const Platform platforms[] = {Platform::kMinix, Platform::kSel4,
                                Platform::kLinux};
  const char* pnames[] = {"minix", "sel4", "linux"};
  for (std::size_t i = 0; i < 3; ++i) {
    CampaignCell c;
    c.name = std::string("fault/") + plan.name() + "/" + pnames[i];
    c.kind = CellKind::kFault;
    c.platform = platforms[i];
    c.opts = base;
    c.plan = plan;
    c.spoof_probe_at = spoof_probe_at;
    cells.push_back(std::move(c));
  }
  return cells;
}

std::vector<AttackRow> attack_rows(const CampaignResult& r) {
  std::vector<AttackRow> rows;
  for (const auto& c : r.cells) {
    if (c.kind == CellKind::kAttack) rows.push_back(c.attack);
  }
  return rows;
}

std::vector<FaultRunResult> fault_rows(const CampaignResult& r) {
  std::vector<FaultRunResult> rows;
  for (const auto& c : r.cells) {
    if (c.kind == CellKind::kFault) rows.push_back(c.fault);
  }
  return rows;
}

std::vector<FabricRunResult> fabric_rows(const CampaignResult& r) {
  std::vector<FabricRunResult> rows;
  for (const auto& c : r.cells) {
    if (c.kind == CellKind::kFabric) rows.push_back(c.fabric);
  }
  return rows;
}

std::vector<CampaignCell> fabric_matrix_cells(int zones,
                                              const FabricOptions& base) {
  std::vector<CampaignCell> cells;
  const FabricAttack attacks[] = {
      FabricAttack::kNone, FabricAttack::kSpoofWrite, FabricAttack::kReplay,
      FabricAttack::kFlood};
  for (FabricAttack a : attacks) {
    CampaignCell c;
    c.kind = CellKind::kFabric;
    c.fabric = base;
    c.fabric.zones = zones;
    c.fabric.attack = a;
    c.name = std::string("fabric/") + to_string(a) + "/z" +
             std::to_string(zones);
    cells.push_back(std::move(c));
  }
  return cells;
}

std::vector<AttackRow> run_attack_matrix(const RunOptions& opts, int jobs) {
  return attack_rows(run_campaign(attack_matrix_cells(opts), jobs));
}

}  // namespace mkbas::core
