#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace mkbas::campaign {

/// Per-worker execution profile for the most recent run() call. Host
/// wall-clock based — diagnostic only; this must never feed any
/// artifact that claims --jobs byte-identity.
struct WorkerProfile {
  int worker = 0;
  std::uint64_t executed = 0;  // tasks this worker ran
  std::uint64_t stolen = 0;    // of which it stole from another queue
  double busy_seconds = 0.0;   // summed task wall time
  /// One (seconds-since-run-start, own-queue depth after dequeue)
  /// sample per task this worker picked up; bounded, oldest kept.
  std::vector<std::pair<double, std::size_t>> queue_depth;
};

/// Per-task wall-time attribution for the most recent run() call,
/// indexed by task index (so campaign cells line up by position).
struct TaskProfile {
  int worker = -1;
  bool stolen = false;
  double start_seconds = 0.0;  // since run() start
  double end_seconds = 0.0;
};

/// Work-stealing pool for embarrassingly parallel index spaces.
///
/// run(n, fn) invokes fn(0) .. fn(n-1) exactly once each across
/// `workers` OS threads. Indices are dealt out in contiguous blocks, one
/// per worker; a worker pops from the *front* of its own deque and, when
/// empty, steals from the *back* of a victim's, so neighbouring (and
/// likely similar-cost) cells stay on one thread while the tail of an
/// uneven distribution is rebalanced automatically.
///
/// Determinism contract: the pool promises nothing about the order in
/// which indices run — callers get determinism by making each fn(i)
/// self-contained (own Machine, own RNG, own registry) and by indexing
/// results, never appending them. The campaign engine relies on exactly
/// that.
///
/// `workers <= 1` executes inline on the calling thread: the sequential
/// baseline is the same code path minus the threads.
class WorkStealingPool {
 public:
  /// Queue-depth samples kept per worker; beyond this, later dequeues
  /// stop sampling (counts keep accumulating).
  static constexpr std::size_t kMaxDepthSamples = 4096;

  explicit WorkStealingPool(int workers);

  /// Run fn over [0, n). Blocks until every index completed. If any fn
  /// throws, the remaining queued indices still run and the *first*
  /// exception (by completion time) is rethrown here.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

  int workers() const { return workers_; }
  /// Indices executed by a worker other than the one they were dealt to,
  /// accumulated across run() calls. Purely diagnostic.
  std::uint64_t steals() const { return steals_.load(); }

  /// Record per-worker / per-task wall-time profiles on the next run().
  void set_profiling(bool on) { profiling_ = on; }
  /// Profiles of the most recent run() (empty unless profiling was on).
  const std::vector<WorkerProfile>& worker_profiles() const {
    return worker_profiles_;
  }
  const std::vector<TaskProfile>& task_profiles() const {
    return task_profiles_;
  }

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::size_t> q;
  };

  bool pop_own(Queue& q, std::size_t* out, std::size_t* depth_after);
  bool steal_any(int self, std::size_t* out);

  int workers_;
  std::deque<Queue> queues_;  // deque: Queue is immovable (mutex)
  std::atomic<std::uint64_t> steals_{0};
  bool profiling_ = false;
  std::vector<WorkerProfile> worker_profiles_;
  std::vector<TaskProfile> task_profiles_;
};

}  // namespace mkbas::campaign
