#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>

namespace mkbas::campaign {

/// Work-stealing pool for embarrassingly parallel index spaces.
///
/// run(n, fn) invokes fn(0) .. fn(n-1) exactly once each across
/// `workers` OS threads. Indices are dealt out in contiguous blocks, one
/// per worker; a worker pops from the *front* of its own deque and, when
/// empty, steals from the *back* of a victim's, so neighbouring (and
/// likely similar-cost) cells stay on one thread while the tail of an
/// uneven distribution is rebalanced automatically.
///
/// Determinism contract: the pool promises nothing about the order in
/// which indices run — callers get determinism by making each fn(i)
/// self-contained (own Machine, own RNG, own registry) and by indexing
/// results, never appending them. The campaign engine relies on exactly
/// that.
///
/// `workers <= 1` executes inline on the calling thread: the sequential
/// baseline is the same code path minus the threads.
class WorkStealingPool {
 public:
  explicit WorkStealingPool(int workers);

  /// Run fn over [0, n). Blocks until every index completed. If any fn
  /// throws, the remaining queued indices still run and the *first*
  /// exception (by completion time) is rethrown here.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

  int workers() const { return workers_; }
  /// Indices executed by a worker other than the one they were dealt to,
  /// accumulated across run() calls. Purely diagnostic.
  std::uint64_t steals() const { return steals_.load(); }

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::size_t> q;
  };

  bool pop_own(Queue& q, std::size_t* out);
  bool steal_any(int self, std::size_t* out);

  int workers_;
  std::deque<Queue> queues_;  // deque: Queue is immovable (mutex)
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace mkbas::campaign
