#pragma once

#include <map>
#include <string>

#include "core/request.hpp"

namespace mkbas::core {

/// What a front-end gets back from one executed ExperimentRequest.
///
/// `artifacts` is the deterministic bundle — a pure function of the
/// request's canonical form, byte-identical however the request was
/// submitted (CLI flags, HTTP body) and however it was parallelized.
/// The daemon caches exactly this map under the request's cell key.
///
/// `table` is the human-readable text the CLI prints; it may carry host
/// wall-clock (campaign headers) and is therefore not part of the
/// bundle. Likewise `volatile_artifacts` (pool profiles): produced on
/// request, never cached.
struct ExperimentResponse {
  int exit_code = 0;
  std::string table;
  std::map<std::string, std::string> artifacts;           // kind name -> JSON
  std::map<std::string, std::string> volatile_artifacts;  // profile exports
};

/// Execute one canonical request — the single dispatcher behind every
/// experiment_runner subcommand and every daemon cache miss. `mask`
/// selects which ArtifactKinds to materialize (artifact_bit()); kinds a
/// mode cannot produce are silently absent from the result map.
/// Throws only what the underlying drivers throw (unknown scenario
/// variants, histogram bound mismatches); the daemon maps that to a 500.
ExperimentResponse run_request(const ExperimentRequest& req, unsigned mask);

/// Materialize what the request's own ArtifactRequest asks for (plus the
/// summary, which the CLI needs for --out and stdout).
ExperimentResponse run_request(const ExperimentRequest& req);

/// Re-render a deterministic metrics JSON artifact (MetricsRegistry
/// to_json bytes) as Prometheus text exposition — the `metrics_prom`
/// artifact. Shares obs::prometheus_render with the daemon's /metrics
/// scrape, so identical metric state yields identical bytes on both
/// paths. Returns "" and fills *err when `metrics_json` does not parse
/// as a metrics export.
std::string prometheus_from_metrics_json(const std::string& metrics_json,
                                         std::string* err);

}  // namespace mkbas::core
