#include "campaign/pool.hpp"

#include <exception>
#include <thread>
#include <vector>

namespace mkbas::campaign {

WorkStealingPool::WorkStealingPool(int workers)
    : workers_(workers < 1 ? 1 : workers), queues_(workers_) {}

bool WorkStealingPool::pop_own(Queue& q, std::size_t* out) {
  std::lock_guard<std::mutex> lk(q.mu);
  if (q.q.empty()) return false;
  *out = q.q.front();
  q.q.pop_front();
  return true;
}

bool WorkStealingPool::steal_any(int self, std::size_t* out) {
  for (int k = 1; k < workers_; ++k) {
    Queue& victim = queues_[static_cast<std::size_t>((self + k) % workers_)];
    std::lock_guard<std::mutex> lk(victim.mu);
    if (victim.q.empty()) continue;
    *out = victim.q.back();
    victim.q.pop_back();
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void WorkStealingPool::run(std::size_t n,
                           const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_ == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Deal contiguous blocks, front-loading the remainder.
  const std::size_t w = static_cast<std::size_t>(workers_);
  const std::size_t base = n / w;
  const std::size_t extra = n % w;
  std::size_t next = 0;
  for (std::size_t i = 0; i < w; ++i) {
    const std::size_t take = base + (i < extra ? 1 : 0);
    std::lock_guard<std::mutex> lk(queues_[i].mu);
    for (std::size_t j = 0; j < take; ++j) queues_[i].q.push_back(next++);
  }

  std::mutex err_mu;
  std::exception_ptr first_error;
  auto worker = [&](int self) {
    std::size_t idx;
    for (;;) {
      if (!pop_own(queues_[static_cast<std::size_t>(self)], &idx) &&
          !steal_any(self, &idx)) {
        // Tasks never enqueue new tasks, so empty-everywhere is final.
        return;
      }
      try {
        fn(idx);
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(w - 1);
  for (int i = 1; i < workers_; ++i) threads.emplace_back(worker, i);
  worker(0);
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mkbas::campaign
