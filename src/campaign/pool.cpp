#include "campaign/pool.hpp"

#include <chrono>
#include <exception>
#include <thread>

namespace mkbas::campaign {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

WorkStealingPool::WorkStealingPool(int workers)
    : workers_(workers < 1 ? 1 : workers), queues_(workers_) {}

bool WorkStealingPool::pop_own(Queue& q, std::size_t* out,
                               std::size_t* depth_after) {
  std::lock_guard<std::mutex> lk(q.mu);
  if (q.q.empty()) return false;
  *out = q.q.front();
  q.q.pop_front();
  *depth_after = q.q.size();
  return true;
}

bool WorkStealingPool::steal_any(int self, std::size_t* out) {
  for (int k = 1; k < workers_; ++k) {
    Queue& victim = queues_[static_cast<std::size_t>((self + k) % workers_)];
    std::lock_guard<std::mutex> lk(victim.mu);
    if (victim.q.empty()) continue;
    *out = victim.q.back();
    victim.q.pop_back();
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void WorkStealingPool::run(std::size_t n,
                           const std::function<void(std::size_t)>& fn) {
  if (n == 0) {
    worker_profiles_.clear();
    task_profiles_.clear();
    return;
  }
  const auto t0 = Clock::now();
  if (profiling_) {
    worker_profiles_.assign(static_cast<std::size_t>(workers_), {});
    for (int i = 0; i < workers_; ++i) {
      worker_profiles_[static_cast<std::size_t>(i)].worker = i;
    }
    task_profiles_.assign(n, {});
  } else {
    worker_profiles_.clear();
    task_profiles_.clear();
  }

  // Each worker writes only its own WorkerProfile slot and the
  // TaskProfile slots of tasks it ran (indices are handed out exactly
  // once), so the profile writes below are race-free without locks.
  auto record = [&](int self, std::size_t idx, bool stolen,
                    std::size_t depth, double start_s, double end_s) {
    if (!profiling_) return;
    WorkerProfile& wp = worker_profiles_[static_cast<std::size_t>(self)];
    ++wp.executed;
    if (stolen) ++wp.stolen;
    wp.busy_seconds += end_s - start_s;
    if (wp.queue_depth.size() < kMaxDepthSamples) {
      wp.queue_depth.emplace_back(start_s, depth);
    }
    TaskProfile& tp = task_profiles_[idx];
    tp.worker = self;
    tp.stolen = stolen;
    tp.start_seconds = start_s;
    tp.end_seconds = end_s;
  };

  if (workers_ == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      const double start_s = profiling_ ? seconds_since(t0) : 0.0;
      fn(i);
      record(0, i, false, n - i - 1, start_s,
             profiling_ ? seconds_since(t0) : 0.0);
    }
    return;
  }

  // Deal contiguous blocks, front-loading the remainder.
  const std::size_t w = static_cast<std::size_t>(workers_);
  const std::size_t base = n / w;
  const std::size_t extra = n % w;
  std::size_t next = 0;
  for (std::size_t i = 0; i < w; ++i) {
    const std::size_t take = base + (i < extra ? 1 : 0);
    std::lock_guard<std::mutex> lk(queues_[i].mu);
    for (std::size_t j = 0; j < take; ++j) queues_[i].q.push_back(next++);
  }

  std::mutex err_mu;
  std::exception_ptr first_error;
  auto worker = [&](int self) {
    std::size_t idx;
    for (;;) {
      std::size_t depth = 0;
      bool stolen = false;
      if (!pop_own(queues_[static_cast<std::size_t>(self)], &idx, &depth)) {
        if (!steal_any(self, &idx)) {
          // Tasks never enqueue new tasks, so empty-everywhere is final.
          return;
        }
        stolen = true;
      }
      const double start_s = profiling_ ? seconds_since(t0) : 0.0;
      try {
        fn(idx);
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      record(self, idx, stolen, depth, start_s,
             profiling_ ? seconds_since(t0) : 0.0);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(w - 1);
  for (int i = 1; i < workers_; ++i) threads.emplace_back(worker, i);
  worker(0);
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mkbas::campaign
