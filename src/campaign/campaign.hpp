#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "campaign/pool.hpp"
#include "core/experiment.hpp"
#include "core/fabric_run.hpp"
#include "core/hash.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/series.hpp"

namespace mkbas::core {

/// The campaign engine: fan a list of independent experiment cells across
/// hardware threads and reduce the results in deterministic cell order.
///
/// A *cell* is one fully specified experiment — (platform, scenario, seed,
/// attack or fault plan) — and executes exactly the way the sequential
/// entry points do: it builds its own sim::Machine, so it owns its RNG,
/// metrics registry and trace log outright. Nothing is shared between
/// in-flight cells (the only cross-thread state is the process-wide trace
/// TagRegistry, whose interning order does not affect exported bytes).
/// run_campaign therefore produces byte-identical results for any --jobs
/// value: cells land in a slot indexed by their position, and every
/// reduction (metrics merge, trace hash, summary JSON) walks the slots in
/// cell order, never in completion order.

enum class CellKind { kBenign, kAttack, kFault, kFabric };

const char* to_string(CellKind k);

/// One schedulable experiment. `opts.observe` still fires (before the
/// engine snapshots the registry), so callers can export per-cell
/// artifacts exactly as they would from the sequential entry points.
struct CampaignCell {
  std::string name;  // unique, deterministic label ("attack/kill/minix/root")
  CellKind kind = CellKind::kBenign;
  Platform platform = Platform::kMinix;
  RunOptions opts;
  // kAttack only:
  attack::AttackKind attack_kind = attack::AttackKind::kSpoofSensor;
  attack::Privilege privilege = attack::Privilege::kCodeExec;
  // kFault only:
  fault::FaultPlan plan;
  sim::Time spoof_probe_at = -1;
  // kFabric only: the whole N-zone building is one cell. `opts` is
  // ignored for these cells; everything lives in `fabric`.
  FabricOptions fabric{};
};

/// What came back from one cell. Exactly one of attack/fault/benign is
/// meaningful (matching `kind`); the observability snapshot is always
/// taken. Move-only because it carries the cell's merged registry.
struct CellResult {
  std::string name;
  CellKind kind = CellKind::kBenign;
  AttackRow attack;
  FaultRunResult fault;
  BenignRun benign;
  FabricRunResult fabric;
  /// Registry snapshot taken while the cell's Machine was still alive.
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::string metrics_json;
  /// Span/audit snapshots (closed spans only — cells quiesce before the
  /// observe hook fires). Fabric cells fold their nodes in node order.
  std::unique_ptr<obs::SpanStore> spans;
  std::unique_ptr<obs::AuditJournal> audit;
  std::string spans_json;
  std::string audit_json;
  /// Windowed series / health events / flight snapshots, flushed at the
  /// cell's end time before the snapshot. Fabric cells fold their nodes
  /// in node order.
  std::unique_ptr<obs::SeriesStore> series;
  std::unique_ptr<obs::HealthMonitor> health;
  std::unique_ptr<obs::FlightRecorder> flight;
  std::string series_json;
  std::string health_json;
  std::string flight_json;
  /// FNV-1a over every trace event rendered as text (names, not interned
  /// ids, so the hash is independent of cross-cell interning order).
  std::uint64_t trace_hash = 0;
  std::uint64_t trace_events = 0;
  /// Host wall-clock for this cell. Diagnostic; never enters summary_json.
  double wall_seconds = 0.0;
};

struct CampaignResult {
  std::vector<CellResult> cells;  // in cell order, regardless of jobs
  int jobs = 1;
  std::uint64_t steals = 0;      // work-stealing pool diagnostic
  double wall_seconds = 0.0;     // host wall-clock for the whole campaign
  /// Per-cell registries folded together in cell order.
  std::string merged_metrics_json;
  /// FNV-1a chain over the per-cell trace hashes, in cell order.
  std::uint64_t merged_trace_hash = 0;
  /// Per-cell span stores / audit journals folded in cell order — the
  /// order-deterministic merge the --jobs identity tests diff.
  std::string merged_spans_json;
  std::string merged_audit_json;
  /// Per-cell series / health / flight artifacts folded in cell order;
  /// same --jobs identity contract as the other merges.
  std::string merged_series_json;
  std::string merged_health_json;
  std::string merged_flight_json;

  /// Pool profile of this campaign's run() (host wall time): per-worker
  /// steal counts, busy time and queue-depth samples, plus per-cell
  /// wall-time attribution aligned with `cells` by index. Diagnostic
  /// only — summary_json never reads it.
  std::vector<campaign::WorkerProfile> worker_profiles;
  std::vector<campaign::TaskProfile> cell_profiles;

  /// Deterministic machine-readable summary: per-cell verdicts and
  /// hashes plus the merged artifacts. Contains no timing and no
  /// jobs-dependent fields — `--jobs 1` and `--jobs N` must produce
  /// byte-identical summaries (the CI determinism gate diffs them).
  std::string summary_json() const;

  /// Pool profile as JSON (jobs, steals, per-worker rows, per-cell
  /// rows). Host wall time throughout — NOT deterministic, never
  /// diffed; the --profile-out artifact.
  std::string profile_json() const;
  /// The same profile as Perfetto/Chrome trace lanes: one track per
  /// worker, one slice per cell (named after the cell), so a campaign's
  /// schedule drops straight into the trace viewer next to the sim
  /// traces.
  std::string profile_trace_json() const;
};

/// Cell builders mirroring the sequential drivers.
std::vector<CampaignCell> attack_matrix_cells(const RunOptions& base = {});
std::vector<CampaignCell> seed_sweep_cells(Platform platform,
                                           const RunOptions& base,
                                           std::uint64_t first_seed,
                                           int count);
std::vector<CampaignCell> fault_campaign_cells(const fault::FaultPlan& plan,
                                               const RunOptions& base = {},
                                               sim::Time spoof_probe_at = -1);

/// One cell per cross-controller network attack (plus the benign
/// baseline), each an N-zone building on the fabric.
std::vector<CampaignCell> fabric_matrix_cells(int zones,
                                              const FabricOptions& base = {});

/// Run every cell (work-stealing across `jobs` threads; `jobs <= 1` runs
/// inline on the calling thread) and reduce in cell order.
CampaignResult run_campaign(const std::vector<CampaignCell>& cells,
                            int jobs = 1);

/// Parallel drop-in for run_attack_matrix(): same rows, same order.
std::vector<AttackRow> run_attack_matrix(const RunOptions& opts, int jobs);

/// Extract the typed rows from a campaign in cell order.
std::vector<AttackRow> attack_rows(const CampaignResult& r);
std::vector<FaultRunResult> fault_rows(const CampaignResult& r);
std::vector<FabricRunResult> fabric_rows(const CampaignResult& r);

}  // namespace mkbas::core
