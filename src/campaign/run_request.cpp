#include "campaign/run_request.hpp"

#include <cstdarg>
#include <cstdio>
#include <sstream>

#include "campaign/campaign.hpp"
#include "core/cli.hpp"
#include "core/hash.hpp"
#include "core/jsonv.hpp"
#include "core/report.hpp"
#include "obs/json.hpp"
#include "obs/prometheus.hpp"
#include "obs/span.hpp"
#include "obs/trace_export.hpp"

namespace mkbas::core {

namespace {

using attack::AttackKind;
using attack::Privilege;

void appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  *out += buf;
}

bool want(unsigned mask, ArtifactKind k) {
  return (mask & artifact_bit(k)) != 0;
}

/// Bits for the per-machine exports a single-machine run can produce.
constexpr unsigned kMachineArtifacts =
    artifact_bit(ArtifactKind::kMetrics) | artifact_bit(ArtifactKind::kTrace) |
    artifact_bit(ArtifactKind::kSpans) | artifact_bit(ArtifactKind::kAudit) |
    artifact_bit(ArtifactKind::kCritical) |
    artifact_bit(ArtifactKind::kSeries) | artifact_bit(ArtifactKind::kHealth) |
    artifact_bit(ArtifactKind::kFlight) |
    artifact_bit(ArtifactKind::kMetricsProm);

/// The RunOptions::observe hook for single-machine modes: snapshot every
/// requested export while the machine is still alive. Same sequence the
/// runner's --*-out flags always used — health flushed first so trailing
/// detector windows land in every export.
std::function<void(sim::Machine&)> machine_observer(
    unsigned mask, std::map<std::string, std::string>* out) {
  if ((mask & kMachineArtifacts) == 0) return {};
  return [mask, out](sim::Machine& m) {
    m.health().flush(m.now());
    if (want(mask, ArtifactKind::kMetrics) ||
        want(mask, ArtifactKind::kMetricsProm)) {
      const std::string mj = metrics_to_json(m);
      if (want(mask, ArtifactKind::kMetrics)) (*out)["metrics"] = mj;
      if (want(mask, ArtifactKind::kMetricsProm)) {
        std::string perr;
        (*out)["metrics_prom"] = prometheus_from_metrics_json(mj, &perr);
      }
    }
    if (want(mask, ArtifactKind::kTrace)) {
      std::ostringstream os;
      obs::write_chrome_trace(os, m.trace());
      (*out)["trace"] = os.str();
    }
    if (want(mask, ArtifactKind::kSpans)) (*out)["spans"] = m.spans().to_json();
    if (want(mask, ArtifactKind::kAudit)) (*out)["audit"] = m.audit().to_json();
    if (want(mask, ArtifactKind::kCritical)) {
      (*out)["critical"] =
          obs::critical_path_json(m.spans(), "sensor.sample", "act.apply");
    }
    if (want(mask, ArtifactKind::kSeries)) {
      (*out)["series"] = m.series().to_json();
    }
    if (want(mask, ArtifactKind::kHealth)) {
      (*out)["health"] = m.health().to_json();
    }
    if (want(mask, ArtifactKind::kFlight)) {
      (*out)["flight"] = m.flight().to_json();
    }
  };
}

RunOptions run_options_from(const ExperimentRequest& req, unsigned mask,
                            std::map<std::string, std::string>* artifacts) {
  RunOptions opts;
  opts.scenario_variant = req.scenario;
  opts.seed = req.seed;
  opts.minix_quotas = req.quota;
  opts.linux_separate_accounts = req.acl;
  opts.observe = machine_observer(mask, artifacts);
  return opts;
}

std::string bool_json(bool b) { return b ? "true" : "false"; }

/// Deterministic one-line JSON for a fabric run (what the CI determinism
/// gate diffs across --jobs / reruns). Keys emitted in sorted order, like
/// every other JSON export in the repo.
std::string fabric_summary_json(const FabricRunResult& r) {
  std::string s = "{\"attack\":\"" + std::string(to_string(r.attack)) +
                  "\",\"audit_hash\":\"" + hex64(fnv1a(r.audit_json)) +
                  "\",\"cov\":" + std::to_string(r.cov_count) +
                  ",\"delivered\":" + std::to_string(r.delivered) +
                  ",\"drop_loss\":" + std::to_string(r.drop_loss) +
                  ",\"drop_overflow\":" + std::to_string(r.drop_overflow) +
                  ",\"drop_partition\":" + std::to_string(r.drop_partition) +
                  ",\"flight_hash\":\"" + hex64(fnv1a(r.flight_json)) +
                  "\",\"health_events\":" + std::to_string(r.health_events) +
                  ",\"health_hash\":\"" + hex64(fnv1a(r.health_json)) +
                  "\",\"metrics_hash\":\"" + hex64(fnv1a(r.metrics_json)) +
                  "\",\"nodes\":" + std::to_string(r.nodes) +
                  ",\"schema_version\":" +
                  std::to_string(obs::kSchemaVersion) + ",\"series_hash\":\"" +
                  hex64(fnv1a(r.series_json)) + "\",\"spans_hash\":\"" +
                  hex64(fnv1a(r.spans_json)) + "\",\"topology\":\"" +
                  r.topology + "\",\"trace_hash\":\"" + hex64(r.trace_hash) +
                  "\",\"zones\":" + std::to_string(r.zones) + "}";
  return s;
}

std::string benign_summary_json(const ExperimentRequest& req,
                                const BenignRun& run) {
  std::string s = "{\"alarm_violation\":" +
                  bool_json(run.safety.alarm_violation) +
                  ",\"context_switches\":" +
                  std::to_string(run.context_switches) +
                  ",\"control_alive\":" + bool_json(run.safety.control_alive) +
                  ",\"final_temp_c\":" +
                  obs::json_double(run.history.back().true_temp_c) +
                  ",\"kernel_entries\":" + std::to_string(run.kernel_entries) +
                  ",\"mode\":\"benign\",\"platform\":\"" +
                  std::string(platform_name(req.platform)) +
                  "\",\"samples\":" + std::to_string(run.history.size()) +
                  ",\"scenario\":\"" + obs::json_escape(req.scenario) +
                  "\",\"schema_version\":" +
                  std::to_string(obs::kSchemaVersion) +
                  ",\"seed\":" + std::to_string(req.seed) + "}";
  return s;
}

std::string attack_row_json(const AttackRow& row) {
  return std::string("{\"attack\":\"") + to_string(row.kind) +
         "\",\"detail\":\"" + obs::json_escape(row.outcome.detail) +
         "\",\"physically_compromised\":" +
         bool_json(row.safety.physically_compromised()) +
         ",\"platform_label\":\"" + obs::json_escape(row.platform_label) +
         "\",\"primitive_succeeded\":" +
         bool_json(row.outcome.primitive_succeeded) + ",\"privilege\":\"" +
         to_string(row.privilege) + "\"}";
}

std::string attack_summary_json(const ExperimentRequest& req,
                                const AttackRow& row) {
  std::string s = "{\"attack\":\"" + std::string(to_string(row.kind)) +
                  "\",\"detail\":\"" + obs::json_escape(row.outcome.detail) +
                  "\",\"mode\":\"attack\",\"physically_compromised\":" +
                  bool_json(row.safety.physically_compromised()) +
                  ",\"platform\":\"" +
                  std::string(platform_name(req.platform)) +
                  "\",\"platform_label\":\"" +
                  obs::json_escape(row.platform_label) +
                  "\",\"primitive_succeeded\":" +
                  bool_json(row.outcome.primitive_succeeded) +
                  ",\"privilege\":\"" + to_string(row.privilege) +
                  "\",\"scenario\":\"" + obs::json_escape(req.scenario) +
                  "\",\"schema_version\":" +
                  std::to_string(obs::kSchemaVersion) +
                  ",\"seed\":" + std::to_string(req.seed) + "}";
  return s;
}

std::string matrix_summary_json(const std::vector<AttackRow>& rows) {
  std::string s = "{\"mode\":\"matrix\",\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i != 0) s += ",";
    s += attack_row_json(rows[i]);
  }
  s += "],\"schema_version\":" + std::to_string(obs::kSchemaVersion) + "}";
  return s;
}

std::string fault_summary_json(const ExperimentRequest& req,
                               const FaultRunResult& res) {
  std::string s =
      "{\"excursion_c\":" +
      obs::json_double(res.max_excursion_after_fault_c) +
      ",\"fault_time_s\":" + obs::json_double(sim::to_seconds(res.fault_time)) +
      ",\"faults_injected\":" + std::to_string(res.faults_injected) +
      ",\"loop_recovered\":" + bool_json(res.loop_recovered) +
      ",\"max_ctl_gap_s\":" + obs::json_double(sim::to_seconds(res.max_ctl_gap)) +
      ",\"mode\":\"fault\",\"mttr_s\":" +
      (res.mttr >= 0 ? obs::json_double(sim::to_seconds(res.mttr))
                     : std::string("-1")) +
      ",\"platform\":\"" + std::string(platform_name(req.platform)) +
      "\",\"platform_label\":\"" + obs::json_escape(res.platform_label) +
      "\",\"probe_attempted\":" + bool_json(res.web_spoof.attempted) +
      ",\"probe_attempts\":" + std::to_string(res.web_spoof.attempts) +
      ",\"probe_succeeded\":" + bool_json(res.web_spoof.primitive_succeeded) +
      ",\"restarts\":" + std::to_string(res.restarts) + ",\"scenario\":\"" +
      obs::json_escape(req.scenario) +
      "\",\"schema_version\":" + std::to_string(obs::kSchemaVersion) +
      ",\"seed\":" + std::to_string(req.seed) + "}";
  return s;
}

ExperimentResponse run_benign_request(const ExperimentRequest& req,
                                      unsigned mask) {
  ExperimentResponse resp;
  const auto run =
      run_benign(req.platform, run_options_from(req, mask, &resp.artifacts));
  appendf(&resp.table, "platform            : %s\n",
          bas::to_string(req.platform));
  appendf(&resp.table, "plant samples       : %zu\n", run.history.size());
  appendf(&resp.table, "final temperature   : %.2f C\n",
          run.history.back().true_temp_c);
  appendf(&resp.table, "context switches    : %llu\n",
          static_cast<unsigned long long>(run.context_switches));
  appendf(&resp.table, "kernel entries      : %llu\n",
          static_cast<unsigned long long>(run.kernel_entries));
  appendf(&resp.table, "alarm property      : %s\n",
          run.safety.alarm_violation ? "VIOLATED" : "held");
  appendf(&resp.table, "control alive       : %s\n",
          run.safety.control_alive ? "yes" : "NO");
  if (want(mask, ArtifactKind::kSummary)) {
    resp.artifacts["summary"] = benign_summary_json(req, run);
  }
  return resp;
}

ExperimentResponse run_attack_request(const ExperimentRequest& req,
                                      unsigned mask) {
  ExperimentResponse resp;
  AttackKind kind;
  (void)parse_attack_kind(req.attack, &kind);  // validate() guaranteed it
  const Privilege priv = req.root ? Privilege::kRoot : Privilege::kCodeExec;
  const auto row = run_attack(req.platform, kind, priv,
                              run_options_from(req, mask, &resp.artifacts));
  appendf(&resp.table, "platform   : %s\n", row.platform_label.c_str());
  appendf(&resp.table, "attack     : %s (%s)\n", to_string(row.kind),
          to_string(row.privilege));
  appendf(&resp.table, "primitive  : %s\n",
          row.outcome.primitive_succeeded ? "SUCCEEDED" : "blocked");
  appendf(&resp.table, "detail     : %s\n", row.outcome.detail.c_str());
  appendf(&resp.table, "physical   : %s\n", row.safety.summary().c_str());
  if (want(mask, ArtifactKind::kSummary)) {
    resp.artifacts["summary"] = attack_summary_json(req, row);
  }
  resp.exit_code = row.safety.physically_compromised() ? 1 : 0;
  return resp;
}

ExperimentResponse run_matrix_request(const ExperimentRequest& req,
                                      unsigned mask) {
  ExperimentResponse resp;
  const auto rows = run_attack_matrix();
  if (req.format == "csv") {
    resp.table = attack_rows_to_csv(rows);
  } else if (req.format == "md") {
    resp.table = attack_rows_to_markdown(rows);
  } else {
    resp.table = format_attack_table(rows);
  }
  if (want(mask, ArtifactKind::kSummary)) {
    resp.artifacts["summary"] = matrix_summary_json(rows);
  }
  return resp;
}

ExperimentResponse run_fault_request(const ExperimentRequest& req,
                                     unsigned mask) {
  // The reference fault campaign (crash the sensor driver at t=30s, the
  // web interface at t=40s) against one platform, with a post-restart
  // sensor-spoof probe of the reincarnated web process.
  ExperimentResponse resp;
  RunOptions opts = run_options_from(req, mask, &resp.artifacts);
  opts.settle = sim::minutes(1);
  opts.post = sim::minutes(6);
  opts.scenario.room.initial_temp_c = opts.scenario.control.initial_setpoint_c;
  const sim::Time probe_at = req.probe ? sim::sec(70) : -1;
  const auto plan = fault::reference_sensor_crash_plan();
  appendf(&resp.table, "plan:\n%s", plan.describe().c_str());
  const auto res = run_fault(req.platform, plan, opts, probe_at);
  appendf(&resp.table, "platform       : %s\n", res.platform_label.c_str());
  appendf(&resp.table, "faults injected: %llu\n",
          static_cast<unsigned long long>(res.faults_injected));
  appendf(&resp.table, "loop recovered : %s\n",
          res.loop_recovered ? "yes" : "NO");
  if (res.mttr >= 0) {
    appendf(&resp.table, "mttr           : %.3f s (virtual)\n",
            sim::to_seconds(res.mttr));
  } else {
    appendf(&resp.table, "mttr           : inf (never recovered)\n");
  }
  appendf(&resp.table, "restarts       : %d\n", res.restarts);
  appendf(&resp.table, "excursion      : %.2f C after the fault\n",
          res.max_excursion_after_fault_c);
  if (res.web_spoof.attempted) {
    appendf(&resp.table, "spoof probe    : %s (%d attempts)\n",
            res.web_spoof.primitive_succeeded ? "SPOOFED" : "blocked",
            res.web_spoof.attempts);
  } else {
    appendf(&resp.table, "spoof probe    : not reached (web interface dead)\n");
  }
  appendf(&resp.table, "physical       : %s\n", res.safety.summary().c_str());
  if (want(mask, ArtifactKind::kSummary)) {
    resp.artifacts["summary"] = fault_summary_json(req, res);
  }
  resp.exit_code = res.loop_recovered ? 0 : 1;
  return resp;
}

ExperimentResponse run_fabric_request(const ExperimentRequest& req,
                                      unsigned mask) {
  ExperimentResponse resp;
  FabricOptions opts;
  opts.zones = req.zones;
  opts.seed = req.seed;
  opts.topology = req.topology;
  opts.floors = req.floors;
  opts.buildings = req.buildings;
  opts.sync = req.sync;
  opts.jobs = req.jobs;
  opts.lite_zones = req.lite;
  (void)parse_fabric_attack(req.attack, &opts.attack);  // validated
  const auto res = run_fabric(opts);
  resp.table = format_fabric_table(res);
  auto put = [&](ArtifactKind k, const std::string& name,
                 const std::string& text) {
    if (want(mask, k)) resp.artifacts[name] = text;
  };
  put(ArtifactKind::kSummary, "summary", fabric_summary_json(res));
  put(ArtifactKind::kMetrics, "metrics", res.metrics_json);
  if (want(mask, ArtifactKind::kMetricsProm)) {
    std::string perr;
    resp.artifacts["metrics_prom"] =
        prometheus_from_metrics_json(res.metrics_json, &perr);
  }
  put(ArtifactKind::kSpans, "spans", res.spans_json);
  put(ArtifactKind::kAudit, "audit", res.audit_json);
  put(ArtifactKind::kCritical, "critical", res.critical_path_json);
  put(ArtifactKind::kSeries, "series", res.series_json);
  put(ArtifactKind::kHealth, "health", res.health_json);
  put(ArtifactKind::kFlight, "flight", res.flight_json);
  return resp;
}

ExperimentResponse run_campaign_request(const ExperimentRequest& req,
                                        unsigned mask) {
  ExperimentResponse resp;
  std::vector<CampaignCell> cells;
  switch (req.mode) {
    case RequestMode::kCampaignMatrix:
      cells = attack_matrix_cells({});
      break;
    case RequestMode::kCampaignSweep:
      cells = seed_sweep_cells(req.platform, {}, 1, req.seeds);
      break;
    case RequestMode::kCampaignFault: {
      RunOptions opts;
      opts.settle = sim::minutes(1);
      opts.post = sim::minutes(6);
      opts.seed = req.seed;
      opts.scenario.room.initial_temp_c =
          opts.scenario.control.initial_setpoint_c;
      cells = fault_campaign_cells(fault::reference_sensor_crash_plan(), opts,
                                   sim::sec(70));
      break;
    }
    default: {
      FabricOptions base;
      base.seed = req.seed;
      cells = fabric_matrix_cells(req.zones, base);
      break;
    }
  }

  const bool profiling = want(mask, ArtifactKind::kProfile) ||
                         want(mask, ArtifactKind::kProfileTrace);
  const auto result = run_campaign(cells, req.jobs);
  appendf(&resp.table, "campaign: %zu cells, --jobs %d, %.2f s wall, "
          "%llu steals\n",
          result.cells.size(), result.jobs, result.wall_seconds,
          static_cast<unsigned long long>(result.steals));
  if (req.mode == RequestMode::kCampaignMatrix) {
    resp.table += format_attack_table(attack_rows(result));
  } else if (req.mode == RequestMode::kCampaignFault) {
    resp.table += format_fault_table(fault_rows(result));
  } else if (req.mode == RequestMode::kCampaignFabric) {
    for (const auto& run : fabric_rows(result)) {
      resp.table += format_fabric_table(run);
    }
  } else {
    for (const auto& c : result.cells) {
      appendf(&resp.table, "%-28s %zu samples, alarm %s\n", c.name.c_str(),
              c.benign.history.size(),
              c.benign.safety.alarm_violation ? "VIOLATED" : "held");
    }
  }

  auto put = [&](ArtifactKind k, const std::string& name,
                 const std::string& text) {
    if (want(mask, k)) resp.artifacts[name] = text;
  };
  put(ArtifactKind::kSummary, "summary", result.summary_json());
  put(ArtifactKind::kMetrics, "metrics", result.merged_metrics_json);
  if (want(mask, ArtifactKind::kMetricsProm)) {
    std::string perr;
    resp.artifacts["metrics_prom"] =
        prometheus_from_metrics_json(result.merged_metrics_json, &perr);
  }
  put(ArtifactKind::kSpans, "spans", result.merged_spans_json);
  put(ArtifactKind::kAudit, "audit", result.merged_audit_json);
  put(ArtifactKind::kSeries, "series", result.merged_series_json);
  put(ArtifactKind::kHealth, "health", result.merged_health_json);
  put(ArtifactKind::kFlight, "flight", result.merged_flight_json);
  // Pool profile: host wall-time, --jobs-dependent by nature — produced
  // only on request and kept out of the deterministic bundle.
  if (profiling) {
    if (want(mask, ArtifactKind::kProfile)) {
      resp.volatile_artifacts["profile"] = result.profile_json();
    }
    if (want(mask, ArtifactKind::kProfileTrace)) {
      resp.volatile_artifacts["profile_trace"] = result.profile_trace_json();
    }
  }
  return resp;
}

}  // namespace

ExperimentResponse run_request(const ExperimentRequest& req, unsigned mask) {
  switch (req.mode) {
    case RequestMode::kBenign: return run_benign_request(req, mask);
    case RequestMode::kAttack: return run_attack_request(req, mask);
    case RequestMode::kMatrix: return run_matrix_request(req, mask);
    case RequestMode::kFault: return run_fault_request(req, mask);
    case RequestMode::kFabric: return run_fabric_request(req, mask);
    case RequestMode::kCampaignMatrix:
    case RequestMode::kCampaignSweep:
    case RequestMode::kCampaignFault:
    case RequestMode::kCampaignFabric:
      return run_campaign_request(req, mask);
  }
  return {};
}

ExperimentResponse run_request(const ExperimentRequest& req) {
  return run_request(req,
                     req.artifacts.mask() | artifact_bit(ArtifactKind::kSummary));
}

std::string prometheus_from_metrics_json(const std::string& metrics_json,
                                         std::string* err) {
  Json doc;
  if (!json_parse(metrics_json, &doc, err)) return "";
  if (!doc.is_object()) {
    *err = "metrics export must be a JSON object";
    return "";
  }
  obs::PromSnapshot snap;
  if (const Json* c = doc.find("counters"); c != nullptr && c->is_object()) {
    for (const auto& [name, v] : c->members) {
      if (!v.is_number() || !v.is_u64()) {
        *err = "'counters." + name + "': expected a non-negative integer";
        return "";
      }
      snap.counters.emplace_back(name, v.as_u64());
    }
  }
  if (const Json* g = doc.find("gauges"); g != nullptr && g->is_object()) {
    for (const auto& [name, v] : g->members) {
      if (!v.is_number()) {
        *err = "'gauges." + name + "': expected a number";
        return "";
      }
      snap.gauges.emplace_back(name, v.number);
    }
  }
  if (const Json* hs = doc.find("histograms");
      hs != nullptr && hs->is_object()) {
    for (const auto& [name, h] : hs->members) {
      if (!h.is_object()) {
        *err = "'histograms." + name + "': expected an object";
        return "";
      }
      obs::PromHistogram ph;
      ph.name = name;
      // The JSON export lists only non-empty buckets; accumulating them
      // in order reproduces exactly the cumulative sequence the live
      // registry renderer computes after its own empty-bucket elision.
      if (const Json* bs = h.find("buckets");
          bs != nullptr && bs->kind == Json::Kind::kArray) {
        std::uint64_t cum = 0;
        for (const Json& b : bs->items) {
          const Json* le = b.find("le");
          const Json* count = b.find("count");
          if (le == nullptr || !le->is_number() || count == nullptr ||
              !count->is_u64()) {
            *err = "'histograms." + name + "': malformed bucket";
            return "";
          }
          cum += count->as_u64();
          ph.bounds.push_back(le->number);
          ph.cumulative.push_back(cum);
        }
      }
      const Json* count = h.find("count");
      const Json* sum = h.find("sum");
      ph.count = count != nullptr && count->is_u64() ? count->as_u64() : 0;
      ph.sum = sum != nullptr && sum->is_number() ? sum->number : 0.0;
      snap.histograms.push_back(std::move(ph));
    }
  }
  return obs::prometheus_render(snap);
}

}  // namespace mkbas::core
