#pragma once

#include <map>

#include "minix/kernel.hpp"

namespace mkbas::minix {

/// Message types of the VM server protocol.
struct VmProtocol {
  static constexpr int kAck = 0;
  static constexpr int kBrk = 1;    // grow the caller's allocation
  static constexpr int kFree = 2;   // shrink it
  static constexpr int kUsage = 3;  // query own usage
};

/// The MINIX virtual-memory server as a user-mode process (§III.A:
/// "process management and virtual memory are implemented as modules
/// running in user space"). Manages a fixed physical pool and enforces
/// the per-ac_id memory quotas from the ACM policy — the generalisation
/// of the paper's "use the ACM to give each system call a quota"
/// (§IV.D.2) from fork to memory.
class VmServer {
 public:
  static constexpr int kVmAcId = 5;
  static constexpr std::size_t kDefaultPoolBytes = 16 << 20;  // 16 MiB

  VmServer(MinixKernel& kernel, std::size_t pool_bytes = kDefaultPoolBytes);

  Endpoint endpoint() const { return ep_; }

  /// Per-ac_id quota; unset = bounded only by the physical pool.
  void set_quota(int ac_id, std::size_t bytes) { quotas_[ac_id] = bytes; }

  std::size_t pool_free() const { return pool_free_; }
  std::size_t usage_of_ac(int ac_id) const {
    const auto it = usage_.find(ac_id);
    return it == usage_.end() ? 0 : it->second;
  }

 private:
  void main();

  MinixKernel& kernel_;
  Endpoint ep_;
  std::size_t pool_free_;
  std::map<int, std::size_t> usage_;   // by ac_id (bombs share their ac)
  std::map<int, std::size_t> quotas_;  // by ac_id
};

/// Client stubs.
class VmClient {
 public:
  VmClient(MinixKernel& kernel, Endpoint vm) : kernel_(kernel), vm_(vm) {}

  /// Request `bytes` more memory; true on success.
  bool brk_grow(std::size_t bytes);
  /// Release `bytes`.
  bool brk_free(std::size_t bytes);
  /// This ac_id's current allocation as the VM server sees it.
  std::size_t usage();

 private:
  MinixKernel& kernel_;
  Endpoint vm_;
};

}  // namespace mkbas::minix
