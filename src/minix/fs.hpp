#pragma once

#include <map>
#include <string>
#include <vector>

#include "minix/kernel.hpp"

namespace mkbas::minix {

/// Message types of the FS server protocol (type 0 is the reserved ack).
struct FsProtocol {
  static constexpr int kAck = 0;
  static constexpr int kOpen = 1;
  static constexpr int kWrite = 2;      // small writes inline in the message
  static constexpr int kRead = 3;       // chunked reads
  static constexpr int kStat = 4;
  static constexpr int kClose = 5;
  static constexpr int kWriteBulk = 6;  // bulk writes via a memory grant
};

/// A MINIX-style file system server running as an ordinary user-mode
/// process ("all other OS functionalities ... are implemented as modules
/// running in user space", §III.A). The temperature control process uses
/// it for its log file; every operation is a kernel-audited message, and
/// bulk data travels through memory grants + safecopy, exactly the VFS
/// pattern of real MINIX 3.
///
/// Ownership: the creator's ac_id owns a file; only the owner may write,
/// anyone whose ACM row reaches the FS may read. (The ACM itself decides
/// who can talk to the FS at all.)
class FsServer {
 public:
  static constexpr int kFsAcId = 4;
  static constexpr std::size_t kInlineChunk = 40;  // payload bytes per msg

  explicit FsServer(MinixKernel& kernel);

  Endpoint endpoint() const { return ep_; }

  /// Test/report introspection (the "disk" contents).
  const std::string* contents(const std::string& path) const;
  std::size_t file_count() const { return files_.size(); }

 private:
  struct File {
    std::string path;
    int owner_ac = -1;
    std::string data;
  };
  struct OpenFile {
    int file_index = -1;
    Endpoint owner;  // process that opened it; fds are not transferable
  };

  void main();
  void reply_status(Endpoint to, int status);

  MinixKernel& kernel_;
  Endpoint ep_;
  std::vector<File> files_;
  std::map<int, OpenFile> open_files_;
  int next_fd_ = 3;
};

/// Client-side stubs wrapping the FS message protocol (the "libc" view).
class FsClient {
 public:
  FsClient(MinixKernel& kernel, Endpoint fs) : kernel_(kernel), fs_(fs) {}

  /// Open (optionally create) a file; returns fd >= 0 or -1.
  int open(const std::string& path, bool create);
  /// Append data, chunked through 40-byte inline messages.
  IpcResult write(int fd, const std::string& data);
  /// Append data in one go through a read grant (MINIX bulk I/O).
  IpcResult write_bulk(int fd, const std::string& data);
  /// Read the whole file (chunked).
  IpcResult read_all(int fd, std::string* out);
  /// File size via stat.
  int stat_size(int fd);
  IpcResult close(int fd);

 private:
  MinixKernel& kernel_;
  Endpoint fs_;
};

}  // namespace mkbas::minix
