#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

namespace mkbas::minix {

/// A MINIX 3 process endpoint: the process slot number concatenated with a
/// generation number (§III.A of the paper). Endpoints are the unit of IPC
/// addressing and are stored in the PCB; the generation number makes stale
/// endpoints to a reused slot detectable.
class Endpoint {
 public:
  static constexpr std::int32_t kSlotBits = 10;
  static constexpr std::int32_t kSlotMask = (1 << kSlotBits) - 1;

  constexpr Endpoint() : value_(kNone) {}
  constexpr explicit Endpoint(std::int32_t raw) : value_(raw) {}
  static constexpr Endpoint make(int slot, int generation) {
    return Endpoint((generation << kSlotBits) | (slot & kSlotMask));
  }

  /// Wildcard source for ipc_receive: accept from anyone.
  static constexpr Endpoint any() { return Endpoint(kAny); }
  /// Invalid / unset endpoint.
  static constexpr Endpoint none() { return Endpoint(kNone); }

  constexpr int slot() const { return value_ & kSlotMask; }
  constexpr int generation() const { return value_ >> kSlotBits; }
  constexpr std::int32_t raw() const { return value_; }
  constexpr bool is_any() const { return value_ == kAny; }
  constexpr bool valid() const { return value_ >= 0; }

  friend constexpr bool operator==(Endpoint a, Endpoint b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(Endpoint a, Endpoint b) {
    return a.value_ != b.value_;
  }

 private:
  static constexpr std::int32_t kAny = -2;
  static constexpr std::int32_t kNone = -1;
  std::int32_t value_;
};

/// The fixed-size MINIX 3 message: a 4-byte source endpoint, a 4-byte
/// message type and a 56-byte payload — 64 bytes total (§III.A).
///
/// m_source is always stamped by the kernel on delivery; whatever a sender
/// writes there is overwritten, which is exactly why identity spoofing
/// fails on this platform (§IV.D.2).
struct Message {
  static constexpr std::size_t kPayloadBytes = 56;

  std::int32_t m_source = Endpoint::none().raw();
  std::int32_t m_type = 0;
  std::array<std::uint8_t, kPayloadBytes> payload{};

  Endpoint source() const { return Endpoint(m_source); }

  // -- typed payload accessors (bounds-checked at compile time) --

  template <typename T>
  void put(std::size_t offset, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(sizeof(T) <= kPayloadBytes);
    if (offset + sizeof(T) > kPayloadBytes) return;
    std::memcpy(payload.data() + offset, &v, sizeof(T));
  }

  template <typename T>
  T get(std::size_t offset) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    if (offset + sizeof(T) <= kPayloadBytes) {
      std::memcpy(&v, payload.data() + offset, sizeof(T));
    }
    return v;
  }

  void put_i32(std::size_t off, std::int32_t v) { put(off, v); }
  std::int32_t get_i32(std::size_t off) const { return get<std::int32_t>(off); }
  void put_f64(std::size_t off, double v) { put(off, v); }
  double get_f64(std::size_t off) const { return get<double>(off); }

  /// Store a short string (truncated to fit, NUL-terminated inside the
  /// payload region starting at `off`).
  void put_str(std::size_t off, const std::string& s) {
    if (off >= kPayloadBytes) return;
    const std::size_t room = kPayloadBytes - off - 1;
    const std::size_t n = std::min(room, s.size());
    std::memcpy(payload.data() + off, s.data(), n);
    payload[off + n] = 0;
  }
  std::string get_str(std::size_t off) const {
    if (off >= kPayloadBytes) return {};
    const auto* begin = reinterpret_cast<const char*>(payload.data() + off);
    const std::size_t room = kPayloadBytes - off;
    return std::string(begin, strnlen(begin, room));
  }
};

static_assert(sizeof(Message) == 64, "MINIX messages are 64 bytes");

/// IPC and PM call results, mirroring the MINIX error vocabulary.
enum class IpcResult {
  kOk = 0,
  kNotAllowed,    // EPERM: denied by the access control matrix
  kDeadSrcDst,    // EDEADSRCDST: peer does not exist / died while blocked
  kBadEndpoint,   // invalid or stale (wrong-generation) endpoint
  kNotReady,      // ENOTREADY: non-blocking send found no waiting receiver
  kQuotaExceeded, // the ACM's syscall quota for the caller is exhausted
  kDeadlock,      // ELOCKED: send would close a rendezvous cycle
};

const char* to_string(IpcResult r);

}  // namespace mkbas::minix
