#include "minix/fs.hpp"

#include <algorithm>

namespace mkbas::minix {

// Payload layouts.
//   open:      str path @0..46, i32 create @48      -> i32 status @0, fd @4
//   write:     i32 fd @0, i32 len @4, bytes @8      -> i32 status @0
//   writebulk: i32 fd @0, i32 grant @4, i32 len @8  -> i32 status @0
//   read:      i32 fd @0, i32 offset @4             -> i32 status @0,
//                                                      i32 len @4, bytes @8
//   stat:      i32 fd @0                            -> i32 status, size @4
//   close:     i32 fd @0                            -> i32 status @0

namespace {
constexpr int kOk = 0;
constexpr int kErrNoEnt = -1;
constexpr int kErrBadFd = -2;
constexpr int kErrPerm = -3;
constexpr int kErrIo = -4;
constexpr std::size_t kPathBytes = 46;
}  // namespace

FsServer::FsServer(MinixKernel& kernel) : kernel_(kernel) {
  ep_ = kernel_.srv_fork2("mfs", kFsAcId, [this] { main(); },
                          /*priority=*/3);
}

const std::string* FsServer::contents(const std::string& path) const {
  for (const auto& f : files_) {
    if (f.path == path) return &f.data;
  }
  return nullptr;
}

void FsServer::reply_status(Endpoint to, int status) {
  Message reply;
  reply.m_type = FsProtocol::kAck;
  reply.put_i32(0, status);
  kernel_.ipc_senda(to, reply);
}

void FsServer::main() {
  for (;;) {
    Message req;
    if (kernel_.ipc_receive(Endpoint::any(), req) != IpcResult::kOk) {
      continue;
    }
    const Endpoint caller = req.source();
    const int caller_ac = kernel_.ac_id_of(caller);

    switch (req.m_type) {
      case FsProtocol::kOpen: {
        const std::string path = req.get_str(0);
        const bool create = req.get_i32(48) != 0;
        int index = -1;
        for (std::size_t i = 0; i < files_.size(); ++i) {
          if (files_[i].path == path) index = static_cast<int>(i);
        }
        if (index < 0) {
          if (!create || path.empty()) {
            reply_status(caller, kErrNoEnt);
            break;
          }
          files_.push_back(File{path, caller_ac, {}});
          index = static_cast<int>(files_.size()) - 1;
        }
        const int fd = next_fd_++;
        open_files_[fd] = OpenFile{index, caller};
        Message reply;
        reply.m_type = FsProtocol::kAck;
        reply.put_i32(0, kOk);
        reply.put_i32(4, fd);
        kernel_.ipc_senda(caller, reply);
        break;
      }
      case FsProtocol::kWrite: {
        const int fd = req.get_i32(0);
        const int len = std::min<int>(req.get_i32(4),
                                      static_cast<int>(kInlineChunk));
        const auto it = open_files_.find(fd);
        if (it == open_files_.end() || it->second.owner != caller) {
          reply_status(caller, kErrBadFd);
          break;
        }
        File& file = files_[static_cast<std::size_t>(it->second.file_index)];
        if (file.owner_ac != caller_ac) {
          reply_status(caller, kErrPerm);
          break;
        }
        if (len > 0) {
          file.data.append(
              reinterpret_cast<const char*>(req.payload.data() + 8),
              static_cast<std::size_t>(len));
        }
        reply_status(caller, kOk);
        break;
      }
      case FsProtocol::kWriteBulk: {
        const int fd = req.get_i32(0);
        const int grant = req.get_i32(4);
        const int len = req.get_i32(8);
        const auto it = open_files_.find(fd);
        if (it == open_files_.end() || it->second.owner != caller) {
          reply_status(caller, kErrBadFd);
          break;
        }
        File& file = files_[static_cast<std::size_t>(it->second.file_index)];
        if (file.owner_ac != caller_ac) {
          reply_status(caller, kErrPerm);
          break;
        }
        if (len < 0 || len > (1 << 20)) {
          reply_status(caller, kErrIo);
          break;
        }
        std::vector<std::uint8_t> buf(static_cast<std::size_t>(len));
        // Bulk data crosses the process boundary via the kernel-checked
        // grant (safecopy), not via messages.
        if (kernel_.safecopy_from(caller, grant, 0, buf.data(),
                                  buf.size()) != IpcResult::kOk) {
          reply_status(caller, kErrIo);
          break;
        }
        file.data.append(reinterpret_cast<const char*>(buf.data()),
                         buf.size());
        reply_status(caller, kOk);
        break;
      }
      case FsProtocol::kRead: {
        const int fd = req.get_i32(0);
        const int offset = req.get_i32(4);
        const auto it = open_files_.find(fd);
        if (it == open_files_.end() || it->second.owner != caller) {
          reply_status(caller, kErrBadFd);
          break;
        }
        const File& file =
            files_[static_cast<std::size_t>(it->second.file_index)];
        Message reply;
        reply.m_type = FsProtocol::kAck;
        if (offset < 0 ||
            static_cast<std::size_t>(offset) > file.data.size()) {
          reply.put_i32(0, kErrIo);
          kernel_.ipc_senda(caller, reply);
          break;
        }
        const std::size_t n = std::min(
            kInlineChunk, file.data.size() - static_cast<std::size_t>(offset));
        reply.put_i32(0, kOk);
        reply.put_i32(4, static_cast<int>(n));
        for (std::size_t i = 0; i < n; ++i) {
          reply.payload[8 + i] = static_cast<std::uint8_t>(
              file.data[static_cast<std::size_t>(offset) + i]);
        }
        kernel_.ipc_senda(caller, reply);
        break;
      }
      case FsProtocol::kStat: {
        const int fd = req.get_i32(0);
        const auto it = open_files_.find(fd);
        Message reply;
        reply.m_type = FsProtocol::kAck;
        if (it == open_files_.end() || it->second.owner != caller) {
          reply.put_i32(0, kErrBadFd);
        } else {
          reply.put_i32(0, kOk);
          reply.put_i32(
              4, static_cast<int>(
                     files_[static_cast<std::size_t>(it->second.file_index)]
                         .data.size()));
        }
        kernel_.ipc_senda(caller, reply);
        break;
      }
      case FsProtocol::kClose: {
        const int fd = req.get_i32(0);
        const auto it = open_files_.find(fd);
        if (it == open_files_.end() || it->second.owner != caller) {
          reply_status(caller, kErrBadFd);
          break;
        }
        open_files_.erase(it);
        reply_status(caller, kOk);
        break;
      }
      default:
        reply_status(caller, kErrIo);
        break;
    }
  }
}

// ---- client stubs ----

int FsClient::open(const std::string& path, bool create) {
  Message m;
  m.m_type = FsProtocol::kOpen;
  m.put_str(0, path.substr(0, kPathBytes));
  m.put_i32(48, create ? 1 : 0);
  if (kernel_.ipc_sendrec(fs_, m) != IpcResult::kOk) return -1;
  if (m.get_i32(0) != kOk) return -1;
  return m.get_i32(4);
}

IpcResult FsClient::write(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t n =
        std::min(FsServer::kInlineChunk, data.size() - off);
    Message m;
    m.m_type = FsProtocol::kWrite;
    m.put_i32(0, fd);
    m.put_i32(4, static_cast<int>(n));
    for (std::size_t i = 0; i < n; ++i) {
      m.payload[8 + i] = static_cast<std::uint8_t>(data[off + i]);
    }
    const IpcResult r = kernel_.ipc_sendrec(fs_, m);
    if (r != IpcResult::kOk) return r;
    if (m.get_i32(0) != kOk) return IpcResult::kNotAllowed;
    off += n;
  }
  return IpcResult::kOk;
}

IpcResult FsClient::write_bulk(int fd, const std::string& data) {
  // Grant the FS read access to our buffer for the duration of the call.
  std::vector<std::uint8_t> buf(data.begin(), data.end());
  const auto grant =
      kernel_.grant_create(fs_, buf.data(), std::max<std::size_t>(buf.size(), 1),
                           {.read = true, .write = false});
  if (grant < 0) return IpcResult::kBadEndpoint;
  Message m;
  m.m_type = FsProtocol::kWriteBulk;
  m.put_i32(0, fd);
  m.put_i32(4, grant);
  m.put_i32(8, static_cast<int>(buf.size()));
  const IpcResult r = kernel_.ipc_sendrec(fs_, m);
  kernel_.grant_revoke(grant);
  if (r != IpcResult::kOk) return r;
  return m.get_i32(0) == kOk ? IpcResult::kOk : IpcResult::kNotAllowed;
}

IpcResult FsClient::read_all(int fd, std::string* out) {
  out->clear();
  for (;;) {
    Message m;
    m.m_type = FsProtocol::kRead;
    m.put_i32(0, fd);
    m.put_i32(4, static_cast<int>(out->size()));
    const IpcResult r = kernel_.ipc_sendrec(fs_, m);
    if (r != IpcResult::kOk) return r;
    if (m.get_i32(0) != kOk) return IpcResult::kNotAllowed;
    const int n = m.get_i32(4);
    if (n <= 0) return IpcResult::kOk;
    out->append(reinterpret_cast<const char*>(m.payload.data() + 8),
                static_cast<std::size_t>(n));
  }
}

int FsClient::stat_size(int fd) {
  Message m;
  m.m_type = FsProtocol::kStat;
  m.put_i32(0, fd);
  if (kernel_.ipc_sendrec(fs_, m) != IpcResult::kOk) return -1;
  if (m.get_i32(0) != kOk) return -1;
  return m.get_i32(4);
}

IpcResult FsClient::close(int fd) {
  Message m;
  m.m_type = FsProtocol::kClose;
  m.put_i32(0, fd);
  const IpcResult r = kernel_.ipc_sendrec(fs_, m);
  if (r != IpcResult::kOk) return r;
  return m.get_i32(0) == kOk ? IpcResult::kOk : IpcResult::kBadEndpoint;
}

}  // namespace mkbas::minix
