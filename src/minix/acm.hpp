#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <unordered_map>
#include <vector>

namespace mkbas::minix {

/// The paper's fine-grained mandatory access control mechanism (§III.B):
/// a matrix indexed by (sender ac_id, receiver ac_id) whose cells are
/// bitmaps over message types. The kernel consults it on every IPC; a
/// cleared bit means the message is dropped with EPERM.
///
/// Message types 0..63 are representable (the paper's example uses 0..3,
/// where type 0 is the reserved acknowledgment). The matrix is compiled
/// into the kernel (here: handed to the MinixKernel constructor) and is
/// immutable from user space — only trusted kernel paths (reincarnation
/// bootstrap) ever extend it at run time.
///
/// Lookup layout, tuned for the per-message hot path:
///  * ac_ids in [0, dense_bound] resolve through a dense
///    (bound+1) x (bound+1) mask array — one multiply + index, no hashing.
///    Every real scenario's ac_ids live here, so the kernel's per-message
///    cost is a single array load.
///  * ids above the bound fall back to the sparse map, fronted by a
///    direct-mapped one-entry-per-sender memo of the last (src, dst) mask
///    probed, so a process hammering one peer pays the hash at most once.
///    Memo entries are invalidated by any policy mutation and by
///    invalidate_ac() (process revocation / reincarnation).
///  * set_dense_bound(-1) disables both fast paths (pure sparse map) —
///    the configuration the T3 space-efficiency bench compares against.
///
/// Beyond the paper's prototype we also carry the ACM extensions the paper
/// proposes as future work: per-process kill permissions (audited by the
/// PM server) and per-process fork quotas (the fork-bomb mitigation from
/// §IV.D.2).
class AcmPolicy {
 public:
  static constexpr int kMaxMessageType = 63;
  /// Default dense range: ac_ids 0..63 (MINIX's NR_SYS_PROCS scale).
  static constexpr int kDefaultDenseBound = 63;

  AcmPolicy() { set_dense_bound(kDefaultDenseBound); }

  /// Allow `src` to send messages of the listed types to `dst`.
  void allow(int src_ac, int dst_ac, std::initializer_list<int> types);
  void allow_mask(int src_ac, int dst_ac, std::uint64_t mask);

  /// True iff the matrix permits (src, dst, m_type).
  bool allowed(int src_ac, int dst_ac, int m_type) const {
    if (m_type < 0 || m_type > kMaxMessageType) return false;
    if (in_dense(src_ac, dst_ac)) {
      const auto n = static_cast<std::size_t>(dense_bound_ + 1);
      return (dense_[static_cast<std::size_t>(src_ac) * n +
                     static_cast<std::size_t>(dst_ac)] >>
              m_type) &
             1ULL;
    }
    return (slow_mask(src_ac, dst_ac) >> m_type) & 1ULL;
  }
  std::uint64_t mask(int src_ac, int dst_ac) const;

  /// PM-audited kill permission: may `src` kill `target`?
  void allow_kill(int src_ac, int target_ac);
  bool kill_allowed(int src_ac, int target_ac) const;

  /// Fork quota (nullopt = unlimited). Enforced by the PM when quotas are
  /// enabled; this is the paper's proposed fork-bomb mitigation.
  void set_fork_quota(int ac_id, int quota);
  std::optional<int> fork_quota(int ac_id) const;

  void set_quotas_enabled(bool on) { quotas_enabled_ = on; }
  bool quotas_enabled() const { return quotas_enabled_; }

  /// Reconfigure the dense fast-path range: ac_ids in [0, max_ac_id] are
  /// served from the dense array. -1 disables the dense path AND the memo
  /// (pure sparse-map lookups). Existing cells are re-projected, so this
  /// may be called at any time.
  void set_dense_bound(int max_ac_id);
  int dense_bound() const { return dense_bound_; }

  /// Drop any memoized lookup involving `ac_id` (as sender or receiver).
  /// Kernel personalities call this when a process with that ac_id dies or
  /// is reincarnated, so a stale memo can never outlive its process.
  void invalidate_ac(int ac_id) const;

  /// Test-only introspection: is there a live memo entry for (src, dst)?
  bool memo_valid(int src_ac, int dst_ac) const;

  /// Number of (src, dst) cells present (for the space-efficiency bench).
  std::size_t cell_count() const { return cells_.size(); }
  /// Footprint of every lookup structure this policy owns: sparse-map
  /// nodes and bucket arrays (sizeof of the actual node value types plus
  /// the two per-node pointers libstdc++ charges), the dense fast-path
  /// array and the memo table.
  std::size_t memory_footprint_bytes() const;

 private:
  static std::uint64_t key(int src, int dst) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 32) |
           static_cast<std::uint32_t>(dst);
  }

  bool in_dense(int src, int dst) const {
    // dense_bound_ must stay signed here: -1 (fast paths disabled) would
    // wrap to UINT32_MAX and admit every id into an empty table. For the
    // ids themselves one unsigned compare suffices — negatives wrap above
    // any sane bound.
    return dense_bound_ >= 0 &&
           static_cast<std::uint32_t>(src) <=
               static_cast<std::uint32_t>(dense_bound_) &&
           static_cast<std::uint32_t>(dst) <=
               static_cast<std::uint32_t>(dense_bound_);
  }

  /// Memo-fronted sparse lookup for ids outside the dense range.
  std::uint64_t slow_mask(int src, int dst) const;
  void invalidate_memo() const;

  struct Memo {
    std::uint64_t key = 0;
    std::uint64_t mask = 0;
    bool valid = false;
  };
  static constexpr std::size_t kMemoSlots = 64;  // direct-mapped by sender

  std::unordered_map<std::uint64_t, std::uint64_t> cells_;
  std::unordered_map<std::uint64_t, bool> kill_;
  std::unordered_map<int, int> fork_quota_;
  int dense_bound_ = -1;
  std::vector<std::uint64_t> dense_;  // (bound+1)^2 masks, row-major
  // Mutable: allowed() is logically const; the memo is a cache. Each
  // kernel personality owns its policy and the simulator's single baton
  // serializes every lookup, so there is no concurrent mutation.
  mutable std::array<Memo, kMemoSlots> memo_{};
  bool quotas_enabled_ = false;
};

/// Dense variant used only by the ACM benchmark (T3) to quantify the
/// paper's "sparse matrix for fast lookup and space efficiency" claim:
/// a full N x N table of bitmaps addressed by ac_id directly.
class DenseAcm {
 public:
  explicit DenseAcm(int max_ac_id)
      : n_(max_ac_id + 1),
        cells_(static_cast<std::size_t>(n_) * n_, 0) {}

  void allow_mask(int src, int dst, std::uint64_t mask) {
    if (src < 0 || dst < 0 || src >= n_ || dst >= n_) return;
    cells_[static_cast<std::size_t>(src) * n_ + dst] |= mask;
  }
  bool allowed(int src, int dst, int m_type) const {
    if (src < 0 || dst < 0 || src >= n_ || dst >= n_) return false;
    if (m_type < 0 || m_type > AcmPolicy::kMaxMessageType) return false;
    return (cells_[static_cast<std::size_t>(src) * n_ + dst] >> m_type) & 1;
  }
  std::size_t memory_footprint_bytes() const {
    return cells_.size() * sizeof(std::uint64_t);
  }

 private:
  int n_;
  std::vector<std::uint64_t> cells_;
};

}  // namespace mkbas::minix
