#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <unordered_map>
#include <vector>

namespace mkbas::minix {

/// The paper's fine-grained mandatory access control mechanism (§III.B):
/// a matrix indexed by (sender ac_id, receiver ac_id) whose cells are
/// bitmaps over message types. The kernel consults it on every IPC; a
/// cleared bit means the message is dropped with EPERM.
///
/// Message types 0..63 are representable (the paper's example uses 0..3,
/// where type 0 is the reserved acknowledgment). The matrix is compiled
/// into the kernel (here: handed to the MinixKernel constructor) and is
/// immutable at run time — user processes have no way to modify it.
///
/// Beyond the paper's prototype we also carry the ACM extensions the paper
/// proposes as future work: per-process kill permissions (audited by the
/// PM server) and per-process fork quotas (the fork-bomb mitigation from
/// §IV.D.2).
class AcmPolicy {
 public:
  static constexpr int kMaxMessageType = 63;

  /// Allow `src` to send messages of the listed types to `dst`.
  void allow(int src_ac, int dst_ac, std::initializer_list<int> types);
  void allow_mask(int src_ac, int dst_ac, std::uint64_t mask);

  /// True iff the matrix permits (src, dst, m_type).
  bool allowed(int src_ac, int dst_ac, int m_type) const;
  std::uint64_t mask(int src_ac, int dst_ac) const;

  /// PM-audited kill permission: may `src` kill `target`?
  void allow_kill(int src_ac, int target_ac);
  bool kill_allowed(int src_ac, int target_ac) const;

  /// Fork quota (nullopt = unlimited). Enforced by the PM when quotas are
  /// enabled; this is the paper's proposed fork-bomb mitigation.
  void set_fork_quota(int ac_id, int quota);
  std::optional<int> fork_quota(int ac_id) const;

  void set_quotas_enabled(bool on) { quotas_enabled_ = on; }
  bool quotas_enabled() const { return quotas_enabled_; }

  /// Number of (src, dst) cells present (for the space-efficiency bench).
  std::size_t cell_count() const { return cells_.size(); }
  std::size_t memory_footprint_bytes() const;

 private:
  static std::uint64_t key(int src, int dst) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 32) |
           static_cast<std::uint32_t>(dst);
  }

  std::unordered_map<std::uint64_t, std::uint64_t> cells_;
  std::unordered_map<std::uint64_t, bool> kill_;
  std::unordered_map<int, int> fork_quota_;
  bool quotas_enabled_ = false;
};

/// Dense variant used only by the ACM benchmark (T3) to quantify the
/// paper's "sparse matrix for fast lookup and space efficiency" claim:
/// a full N x N table of bitmaps addressed by ac_id directly.
class DenseAcm {
 public:
  explicit DenseAcm(int max_ac_id)
      : n_(max_ac_id + 1),
        cells_(static_cast<std::size_t>(n_) * n_, 0) {}

  void allow_mask(int src, int dst, std::uint64_t mask) {
    if (src < 0 || dst < 0 || src >= n_ || dst >= n_) return;
    cells_[static_cast<std::size_t>(src) * n_ + dst] |= mask;
  }
  bool allowed(int src, int dst, int m_type) const {
    if (src < 0 || dst < 0 || src >= n_ || dst >= n_) return false;
    if (m_type < 0 || m_type > AcmPolicy::kMaxMessageType) return false;
    return (cells_[static_cast<std::size_t>(src) * n_ + dst] >> m_type) & 1;
  }
  std::size_t memory_footprint_bytes() const {
    return cells_.size() * sizeof(std::uint64_t);
  }

 private:
  int n_;
  std::vector<std::uint64_t> cells_;
};

}  // namespace mkbas::minix
