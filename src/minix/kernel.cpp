#include "minix/kernel.hpp"

#include <cassert>

namespace mkbas::minix {

const char* to_string(IpcResult r) {
  switch (r) {
    case IpcResult::kOk:
      return "OK";
    case IpcResult::kNotAllowed:
      return "EPERM";
    case IpcResult::kDeadSrcDst:
      return "EDEADSRCDST";
    case IpcResult::kBadEndpoint:
      return "EBADEPT";
    case IpcResult::kNotReady:
      return "ENOTREADY";
    case IpcResult::kQuotaExceeded:
      return "EQUOTA";
    case IpcResult::kDeadlock:
      return "ELOCKED";
  }
  return "?";
}

MinixKernel::MinixKernel(sim::Machine& machine, AcmPolicy policy)
    : machine_(machine), policy_(std::move(policy)), slots_(kNumSlots) {
  auto& mx = machine_.metrics();
  met_.sc_send = mx.counter("minix.syscall.send");
  met_.sc_sendnb = mx.counter("minix.syscall.sendnb");
  met_.sc_receive = mx.counter("minix.syscall.receive");
  met_.sc_nbreceive = mx.counter("minix.syscall.nbreceive");
  met_.sc_sendrec = mx.counter("minix.syscall.sendrec");
  met_.sc_senda = mx.counter("minix.syscall.senda");
  met_.sc_notify = mx.counter("minix.syscall.notify");
  met_.sc_grant = mx.counter("minix.syscall.grant");
  met_.sc_safecopy = mx.counter("minix.syscall.safecopy");
  met_.sc_fork = mx.counter("minix.syscall.fork2");
  met_.sc_kill = mx.counter("minix.syscall.pm_kill");
  met_.sc_exit = mx.counter("minix.syscall.pm_exit");
  met_.acm_allowed = mx.counter("minix.acm.allowed");
  met_.acm_denied = mx.counter("minix.acm.denied");
  met_.kill_denied = mx.counter("minix.acm.kill_denied");
  met_.fork_quota_denied = mx.counter("minix.acm.fork_quota_denied");
  met_.rs_restarts = mx.counter("minix.rs.restarts");
  met_.rs_giveup = mx.counter("minix.rs.giveup");
  met_.ipc_latency = mx.log_histogram("minix.ipc.latency", 4, 1e7);
  met_.rs_mttr = mx.log_histogram("minix.rs.mttr", 4, 1e8);
  // Denial-rate health signal: a handful of scattered probes drifts the
  // CUSUM, a denial storm crosses the surge threshold on the first
  // closed window (no warmup needed).
  obs::DetectorConfig denial_cfg;
  denial_cfg.rate = true;
  denial_cfg.surge = 64.0;
  denial_sig_ = machine_.health().signal("minix.acm.denied", denial_cfg);
  // Span/audit tags are interned once here; the IPC fast path must not
  // touch the registry's string table.
  auto& tags = sim::TagRegistry::instance();
  tag_ipc_span_ = tags.intern("minix.ipc");
  tag_pm_audit_ = tags.intern("pm.audit");
  tag_rs_restart_ = tags.intern("rs.restart");
  tag_note_restart_ = tags.intern("restart");
  tag_acm_allow_ = tags.intern("acm.allow");
  tag_acm_deny_ = tags.intern("acm.deny");
  tag_deliver_ = tags.intern("minix.deliver");
  for (int i = 0; i < kNumSlots; ++i) {
    slots_[i].slot = i;
    slots_[i].generation = 1;
  }
  // The PM server boots first, at high priority, like a real system server.
  pm_ep_ = spawn_internal("pm", kPmAcId, [this] { pm_main(); },
                          /*priority=*/2);
}

// ---- Process table management ----

MinixKernel::Pcb* MinixKernel::lookup_pcb(Endpoint ep) {
  if (!ep.valid()) return nullptr;
  const int slot = ep.slot();
  if (slot < 0 || slot >= kNumSlots) return nullptr;
  Pcb& p = slots_[slot];
  if (!p.live || p.generation != ep.generation()) return nullptr;
  return &p;
}

const MinixKernel::Pcb* MinixKernel::lookup_pcb(Endpoint ep) const {
  return const_cast<MinixKernel*>(this)->lookup_pcb(ep);
}

MinixKernel::Pcb& MinixKernel::current_pcb() {
  sim::Process* proc = machine_.current();
  if (proc == nullptr) {
    throw std::logic_error("MINIX syscall outside process context");
  }
  const auto it = pid_to_slot_.find(proc->pid());
  if (it == pid_to_slot_.end()) {
    throw std::logic_error("caller is not a MINIX process");
  }
  return slots_[it->second];
}

Endpoint MinixKernel::spawn_internal(const std::string& name, int ac_id,
                                     std::function<void()> body,
                                     int priority) {
  int slot = -1;
  for (int i = 0; i < kNumSlots; ++i) {
    if (!slots_[i].live) {
      slot = i;
      break;
    }
  }
  if (slot < 0) {
    machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kProcess,
                          "minix.table_full", name);
    return Endpoint::none();
  }
  Pcb& pcb = slots_[slot];
  if (reincarnation_enabled_ && name != "rs") {
    restart_templates_[name] = RestartTemplate{ac_id, body, priority};
  }
  sim::Process* proc = machine_.spawn(name, std::move(body), priority);
  if (proc == nullptr) return Endpoint::none();
  pcb.live = true;
  pcb.name = name;
  pcb.ac_id = ac_id;
  pcb.proc = proc;
  pcb.wait = Pcb::Wait::kNone;
  pcb.wait_partner = Endpoint::none();
  pcb.user_buf = nullptr;
  pcb.out_span = 0;
  pcb.sender_queue.clear();
  pcb.notify_from.clear();
  pcb.async_in.clear();
  pcb.grants.clear();
  pcb.forks_done = 0;
  pid_to_slot_[proc->pid()] = slot;
  names_[name] = ep_of(pcb);
  proc->add_exit_hook([this, slot](sim::Process&) {
    on_process_gone(slots_[slot]);
  });
  machine_.trace().emit(machine_.now(), proc->pid(), sim::TraceKind::kProcess,
                        "minix.load",
                        name + " ac_id=" + std::to_string(ac_id) +
                            " ep=" + std::to_string(ep_of(pcb).raw()));
  return ep_of(pcb);
}

Endpoint MinixKernel::srv_fork2(const std::string& name, int ac_id,
                                std::function<void()> body, int priority) {
  return spawn_internal(name, ac_id, std::move(body), priority);
}

void MinixKernel::on_process_gone(Pcb& pcb) {
  if (!pcb.live) return;
  const Endpoint dead_ep = ep_of(pcb);

  // Senders blocked on us die with EDEADSRCDST. Their in-flight hop
  // spans close in do_send when they resume and see the failure.
  for (int sender_slot : pcb.sender_queue) {
    Pcb& s = slots_[sender_slot];
    if (s.live && s.wait == Pcb::Wait::kSending &&
        s.wait_partner == dead_ep) {
      s.wait = Pcb::Wait::kNone;
      s.ipc_result = IpcResult::kDeadSrcDst;
      machine_.make_ready(s.proc);
    }
  }
  pcb.sender_queue.clear();

  // Anyone blocked receiving specifically from us, or blocked in a send we
  // never accepted, also unblocks with EDEADSRCDST.
  for (Pcb& other : slots_) {
    if (!other.live || &other == &pcb) continue;
    if (other.wait == Pcb::Wait::kReceiving &&
        other.wait_partner == dead_ep) {
      other.wait = Pcb::Wait::kNone;
      other.ipc_result = IpcResult::kDeadSrcDst;
      machine_.make_ready(other.proc);
    }
    // Drop our slot from other processes' sender queues (we may have been
    // blocked sending to them). Pending notifications are kept: MINIX
    // stores them as a bitmap in the receiver, surviving sender death.
    auto& q = other.sender_queue;
    for (auto it = q.begin(); it != q.end();) {
      it = (*it == pcb.slot) ? q.erase(it) : std::next(it);
    }
  }

  names_.erase(pcb.name);
  if (pcb.proc != nullptr) pid_to_slot_.erase(pcb.proc->pid());
  pcb.grants.clear();  // grants die with their creator

  // Reincarnation (MINIX's self-repairing behaviour): on the abnormal
  // death of a registered system process the kernel notifies PM, which
  // relays to the RS — the same notify chain real MINIX 3 uses.
  if (reincarnation_enabled_ && !machine_.is_shutting_down() &&
      pcb.proc != nullptr &&
      (pcb.proc->kill_pending() || pcb.proc->crashed())) {
    const auto it = restart_templates_.find(pcb.name);
    if (it != restart_templates_.end()) {
      machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kProcess,
                            "rs.death_noticed", pcb.name);
      Message died;
      died.m_type = PmProtocol::kProcDied;
      died.put<std::int64_t>(0, machine_.now());
      died.put_str(8, pcb.name);
      // The death notice continues the trace that was active when the
      // process died (still readable here: exit hooks run before the
      // machine abandons the pid's spans), so the eventual restart
      // chains back to the interrupted operation.
      kernel_notify_pm(died, machine_.spans().current(pcb.proc->pid()));
    }
  }

  // A dead process must not leave a memoized ACM cell behind: its ac_id
  // may be re-issued to a reincarnated successor whose row could later
  // change (the RS bootstrap extends the policy at enable time).
  policy_.invalidate_ac(pcb.ac_id);

  pcb.live = false;
  pcb.proc = nullptr;
  pcb.user_buf = nullptr;
  pcb.out_span = 0;  // the machine abandons the pid's open spans
  ++pcb.generation;  // stale endpoints to this slot now fail to resolve
}

void MinixKernel::enable_reincarnation(sim::Duration restart_delay) {
  if (reincarnation_enabled_) return;
  reincarnation_enabled_ = true;
  default_restart_delay_ = restart_delay;
  // The PM -> RS relay edge is part of the trusted-base policy, installed
  // when the RS boots — user processes still cannot reach the RS.
  policy_.allow(kPmAcId, kRsAcId, {RsProtocol::kRestart});
  rs_ep_ = spawn_internal("rs", kRsAcId, [this] { rs_main(); },
                          /*priority=*/2);
}

void MinixKernel::kernel_notify_pm(const Message& m, obs::SpanContext ctx) {
  Pcb* pm = lookup_pcb(pm_ep_);
  if (pm == nullptr) return;
  Message stamped = m;
  stamped.m_source = Endpoint::none().raw();  // kernel-origin marker
  // Kernel-origin hop: opened on pid -1 so the span is not abandoned
  // along with the process whose death it reports.
  auto& spans = machine_.spans();
  const std::uint64_t span =
      spans.begin_flow(-1, machine_.now(), tag_ipc_span_, ctx);
  if (pm->wait == Pcb::Wait::kReceiving && pm->wait_partner.is_any()) {
    *pm->user_buf = stamped;
    pm->wait = Pcb::Wait::kNone;
    pm->user_buf = nullptr;
    pm->ipc_result = IpcResult::kOk;
    if (span != 0 && pm->proc != nullptr) {
      spans.set_current(pm->proc->pid(), spans.context_of(span));
    }
    spans.end_flow(machine_.now(), span);
    machine_.make_ready(pm->proc);
    return;
  }
  if (pm->async_in.size() >= kAsyncDepth) {  // PM wedged: drop
    spans.end_flow(machine_.now(), span);
    return;
  }
  pm->async_in.push_back(Pcb::AsyncMsg{stamped, machine_.now(), span});
}

void MinixKernel::rs_main() {
  Pcb& self = current_pcb();
  for (;;) {
    Message req;
    const IpcResult r = do_receive(self, Endpoint::any(), req);
    machine_.enter_kernel();
    if (r != IpcResult::kOk) continue;
    if (req.m_type != RsProtocol::kRestart) continue;
    const auto died_at = req.get<std::int64_t>(0);
    const std::string name = req.get_str(8);

    RestartPolicy pol;
    pol.delay = default_restart_delay_;
    const auto pit = restart_policies_.find(name);
    if (pit != restart_policies_.end()) pol = pit->second;

    int& count = restart_counts_[name];
    if (pol.max_restarts >= 0 && count >= pol.max_restarts) {
      met_.rs_giveup.inc();
      machine_.trace().emit(machine_.now(), self.proc->pid(),
                            sim::TraceKind::kProcess, "rs.giveup",
                            name + " after " + std::to_string(count) +
                                " restarts");
      continue;
    }
    auto delay = static_cast<double>(pol.delay);
    for (int i = 0; i < count; ++i) delay *= pol.backoff;
    machine_.sleep_for(static_cast<sim::Duration>(delay));

    // Re-resolve after sleeping: the template map may have changed, and
    // someone else may already have brought the server back.
    const auto it = restart_templates_.find(name);
    if (it == restart_templates_.end()) continue;
    if (lookup(name).valid()) continue;
    const RestartTemplate& t = it->second;
    // The restart is a scoped span annotated "restart". RS's current
    // context is still the relayed death notice, so the span chains
    // back to the trace that was interrupted by the crash — the
    // reincarnated server visibly continues that trace.
    const std::uint64_t rspan = machine_.spans().begin(
        self.proc->pid(), machine_.now(), tag_rs_restart_);
    const Endpoint ep = spawn_internal(name, t.ac_id, t.body, t.priority);
    if (!ep.valid()) {
      machine_.spans().end(self.proc->pid(), machine_.now(), rspan);
      continue;
    }
    ++restarts_;
    ++count;
    met_.rs_restarts.inc();
    met_.rs_mttr.record(static_cast<double>(machine_.now() - died_at));
    machine_.trace().emit(machine_.now(), self.proc->pid(),
                          sim::TraceKind::kProcess, "rs.restart",
                          name + " ac_id=" + std::to_string(t.ac_id),
                          sim::to_seconds(machine_.now() - died_at));
    machine_.spans().end(self.proc->pid(), machine_.now(), rspan,
                         tag_note_restart_);
  }
}

void MinixKernel::kernel_kill(Endpoint target) {
  Pcb* pcb = lookup_pcb(target);
  if (pcb == nullptr || pcb->proc == nullptr) return;
  machine_.kill(pcb->proc);  // exit hook performs on_process_gone()
}

// ---- IPC ----

void MinixKernel::trace_sec(const Pcb& src, const Pcb& dst, int m_type,
                            bool allowed) {
  // Single emission point for acm.allow/acm.deny: the counters below are
  // therefore exactly the trace tag counts, even in ring-buffer mode.
  if (allowed) {
    met_.acm_allowed.inc();
  } else {
    met_.acm_denied.inc();
    denial_sig_.count(machine_.now());
  }
  const int pid = src.proc ? src.proc->pid() : -1;
  // Formatted in place inside the recycled trace slot: the per-message
  // fast path makes no string temporaries and, in ring mode, no
  // allocations at all.
  std::string& d = machine_.trace()
                       .emit_slot(machine_.now(), pid,
                                  sim::TraceKind::kSecurity,
                                  allowed ? tag_acm_allow_ : tag_acm_deny_,
                                  static_cast<double>(m_type))
                       .detail;
  d.append(src.name);
  d.append("(ac");
  sim::append_int(d, src.ac_id);
  d.append(") -> ");
  d.append(dst.name);
  d.append("(ac");
  sim::append_int(d, dst.ac_id);
  d.append(") type=");
  sim::append_int(d, m_type);
  if (!allowed) {
    machine_.audit().record(machine_.now(), machine_.machine_id(), pid,
                            "acm.deny", d, machine_.spans(),
                            machine_.spans().current(pid));
  }
}

bool MinixKernel::would_deadlock(const Pcb& src, const Pcb& first_dst) const {
  // Sending to oneself can never rendezvous.
  if (&first_dst == &src) return true;
  // Follow the chain of blocked senders; a cycle back to src means this
  // send can never complete (MINIX returns ELOCKED).
  const Pcb* cur = &first_dst;
  for (int hops = 0; hops < kNumSlots; ++hops) {
    if (cur->wait != Pcb::Wait::kSending) return false;
    const Pcb* next = lookup_pcb(cur->wait_partner);
    if (next == nullptr) return false;
    if (next == &src) return true;
    cur = next;
  }
  return true;  // over-long chain: treat as a cycle
}

std::uint64_t MinixKernel::begin_ipc_span(const Pcb& src) {
  auto& spans = machine_.spans();
  const int pid = src.proc != nullptr ? src.proc->pid() : -1;
  return spans.begin_flow(pid, machine_.now(), tag_ipc_span_,
                          spans.current(pid));
}

void MinixKernel::finish_ipc_span(std::uint64_t span, const Pcb& to) {
  if (span == 0) return;
  auto& spans = machine_.spans();
  if (to.proc != nullptr) {
    spans.set_current(to.proc->pid(), spans.context_of(span));
  }
  spans.end_flow(machine_.now(), span);
}

void MinixKernel::deliver(Pcb& from, Pcb& to, const Message& m) {
  assert(to.wait == Pcb::Wait::kReceiving && to.user_buf != nullptr);
  met_.ipc_latency.record(
      static_cast<double>(machine_.now() - from.send_start));
  finish_ipc_span(from.out_span, to);
  from.out_span = 0;
  *to.user_buf = m;
  // The kernel stamps the true sender identity; user-supplied m_source is
  // discarded. This is the anti-spoofing property of §IV.D.2.
  to.user_buf->m_source = ep_of(from).raw();
  to.wait = Pcb::Wait::kNone;
  to.user_buf = nullptr;
  to.ipc_result = IpcResult::kOk;
  machine_.make_ready(to.proc);
  std::string& d = machine_.trace()
                       .emit_slot(machine_.now(),
                                  from.proc ? from.proc->pid() : -1,
                                  sim::TraceKind::kIpc, tag_deliver_)
                       .detail;
  d.append(from.name);
  d.append(" -> ");
  d.append(to.name);
  d.append(" type=");
  sim::append_int(d, m.m_type);
}

IpcResult MinixKernel::do_send(Pcb& src, Endpoint dst_ep, Message& m,
                               bool blocking) {
  src.send_start = machine_.now();
  Pcb* dst = lookup_pcb(dst_ep);
  if (dst == nullptr) return IpcResult::kDeadSrcDst;
  if (!policy_.allowed(src.ac_id, dst->ac_id, m.m_type)) {
    trace_sec(src, *dst, m.m_type, /*allowed=*/false);
    return IpcResult::kNotAllowed;
  }
  trace_sec(src, *dst, m.m_type, /*allowed=*/true);

  // Fault injection: the in-transit hook runs after the security check
  // (a dropped message was still a *permitted* message). Drop is silent —
  // the sender believes the send succeeded, as on a lossy wire.
  if (const auto& filt = machine_.msg_filter()) {
    const sim::MsgFaultAction act = filt(src.name, dst->name);
    if (act.drop) return IpcResult::kOk;
    if (act.corrupt) {
      // The parked sender's buffer is the in-flight message in this
      // rendezvous model, so corruption lands there.
      sim::corrupt_bytes(m.payload.data(), m.payload.size(),
                         act.corrupt_seed);
    }
    if (act.delay > 0) {
      machine_.charge(act.delay);
      dst = lookup_pcb(dst_ep);  // the destination may have died meanwhile
      if (dst == nullptr) return IpcResult::kDeadSrcDst;
    }
  }

  // The message hop is a flow span from the send syscall to delivery.
  // Its context travels kernel-side (Pcb::out_span), never in the
  // 64-byte payload, mirroring how m_source is kernel-stamped.
  const std::uint64_t span = begin_ipc_span(src);
  if (dst->wait == Pcb::Wait::kReceiving &&
      (dst->wait_partner.is_any() || dst->wait_partner == ep_of(src))) {
    src.out_span = span;
    deliver(src, *dst, m);
    return IpcResult::kOk;
  }
  if (!blocking) {
    machine_.spans().end_flow(machine_.now(), span);
    return IpcResult::kNotReady;
  }
  if (would_deadlock(src, *dst)) {
    machine_.spans().end_flow(machine_.now(), span);
    return IpcResult::kDeadlock;
  }

  src.wait = Pcb::Wait::kSending;
  src.wait_partner = dst_ep;
  src.user_buf = &m;
  src.ipc_result = IpcResult::kOk;
  src.out_span = span;
  dst->sender_queue.push_back(src.slot);
  machine_.block_current("minix.send");
  src.user_buf = nullptr;
  if (src.out_span != 0) {
    // The send failed (partner died): the hop ends here, undelivered.
    machine_.spans().end_flow(machine_.now(), src.out_span);
    src.out_span = 0;
  }
  return src.ipc_result;
}

IpcResult MinixKernel::do_receive(Pcb& self, Endpoint from, Message& out,
                                  bool blocking) {
  // MINIX delivers pending notifications ahead of queued senders.
  for (auto it = self.notify_from.begin(); it != self.notify_from.end();
       ++it) {
    Pcb& notifier = slots_[*it];
    if (from.is_any() || (notifier.live && from == ep_of(notifier))) {
      out = Message{};
      out.m_type = kNotifyMType;
      out.m_source = notifier.live ? ep_of(notifier).raw()
                                   : Endpoint::none().raw();
      self.notify_from.erase(it);
      return IpcResult::kOk;
    }
  }
  // Queued asynchronous messages come next.
  for (auto it = self.async_in.begin(); it != self.async_in.end(); ++it) {
    if (from.is_any() || from.raw() == it->msg.m_source) {
      out = it->msg;
      met_.ipc_latency.record(
          static_cast<double>(machine_.now() - it->enqueued));
      if (it->span != 0) {
        auto& spans = machine_.spans();
        spans.set_current(self.proc != nullptr ? self.proc->pid() : -1,
                          spans.context_of(it->span));
        spans.end_flow(machine_.now(), it->span);
      }
      self.async_in.erase(it);
      return IpcResult::kOk;
    }
  }
  for (auto it = self.sender_queue.begin(); it != self.sender_queue.end();
       ++it) {
    Pcb& sender = slots_[*it];
    if (!sender.live || sender.wait != Pcb::Wait::kSending) continue;
    if (from.is_any() || from == ep_of(sender)) {
      out = *sender.user_buf;
      out.m_source = ep_of(sender).raw();
      met_.ipc_latency.record(
          static_cast<double>(machine_.now() - sender.send_start));
      finish_ipc_span(sender.out_span, self);
      sender.out_span = 0;
      sender.wait = Pcb::Wait::kNone;
      sender.ipc_result = IpcResult::kOk;
      self.sender_queue.erase(it);
      machine_.make_ready(sender.proc);
      machine_.trace().emit(
          machine_.now(), self.proc ? self.proc->pid() : -1,
          sim::TraceKind::kIpc, "minix.deliver",
          sender.name + " -> " + self.name +
              " type=" + std::to_string(out.m_type));
      return IpcResult::kOk;
    }
  }
  if (!from.is_any() && lookup_pcb(from) == nullptr) {
    return IpcResult::kDeadSrcDst;
  }
  if (!blocking) return IpcResult::kNotReady;
  self.wait = Pcb::Wait::kReceiving;
  self.wait_partner = from;
  self.user_buf = &out;
  self.ipc_result = IpcResult::kOk;
  machine_.block_current("minix.recv");
  self.user_buf = nullptr;
  return self.ipc_result;
}

IpcResult MinixKernel::do_send_async(Pcb& src, Endpoint dst_ep, Message& m) {
  src.send_start = machine_.now();
  Pcb* dst = lookup_pcb(dst_ep);
  if (dst == nullptr) return IpcResult::kDeadSrcDst;
  if (!policy_.allowed(src.ac_id, dst->ac_id, m.m_type)) {
    trace_sec(src, *dst, m.m_type, /*allowed=*/false);
    return IpcResult::kNotAllowed;
  }
  trace_sec(src, *dst, m.m_type, /*allowed=*/true);
  if (const auto& filt = machine_.msg_filter()) {
    const sim::MsgFaultAction act = filt(src.name, dst->name);
    if (act.drop) return IpcResult::kOk;
    if (act.corrupt) {
      sim::corrupt_bytes(m.payload.data(), m.payload.size(),
                         act.corrupt_seed);
    }
    if (act.delay > 0) {
      machine_.charge(act.delay);
      dst = lookup_pcb(dst_ep);
      if (dst == nullptr) return IpcResult::kDeadSrcDst;
    }
  }
  const std::uint64_t span = begin_ipc_span(src);
  if (dst->wait == Pcb::Wait::kReceiving &&
      (dst->wait_partner.is_any() || dst->wait_partner == ep_of(src))) {
    src.out_span = span;
    deliver(src, *dst, m);
    return IpcResult::kOk;
  }
  if (dst->async_in.size() >= kAsyncDepth) {
    machine_.spans().end_flow(machine_.now(), span);
    return IpcResult::kNotReady;
  }
  Message stamped = m;
  stamped.m_source = ep_of(src).raw();
  // The hop span rides in the mailbox entry: an async message may
  // outlive its sender, and delivery must still continue the trace.
  dst->async_in.push_back(Pcb::AsyncMsg{stamped, machine_.now(), span});
  return IpcResult::kOk;
}

IpcResult MinixKernel::ipc_send(Endpoint dst, Message& m) {
  machine_.enter_kernel();
  met_.sc_send.inc();
  return do_send(current_pcb(), dst, m, /*blocking=*/true);
}

IpcResult MinixKernel::ipc_sendnb(Endpoint dst, Message& m) {
  machine_.enter_kernel();
  met_.sc_sendnb.inc();
  return do_send(current_pcb(), dst, m, /*blocking=*/false);
}

IpcResult MinixKernel::ipc_receive(Endpoint src, Message& out) {
  machine_.enter_kernel();
  met_.sc_receive.inc();
  return do_receive(current_pcb(), src, out);
}

IpcResult MinixKernel::ipc_nbreceive(Endpoint src, Message& out) {
  machine_.enter_kernel();
  met_.sc_nbreceive.inc();
  return do_receive(current_pcb(), src, out, /*blocking=*/false);
}

IpcResult MinixKernel::ipc_sendrec(Endpoint dst, Message& m) {
  machine_.enter_kernel();
  met_.sc_sendrec.inc();
  Pcb& self = current_pcb();
  const IpcResult sent = do_send(self, dst, m, /*blocking=*/true);
  if (sent != IpcResult::kOk) return sent;
  return do_receive(self, dst, m);
}

IpcResult MinixKernel::ipc_senda(Endpoint dst, Message& m) {
  machine_.enter_kernel();
  met_.sc_senda.inc();
  return do_send_async(current_pcb(), dst, m);
}

IpcResult MinixKernel::ipc_notify(Endpoint dst) {
  machine_.enter_kernel();
  met_.sc_notify.inc();
  Pcb& self = current_pcb();
  self.send_start = machine_.now();
  Pcb* target = lookup_pcb(dst);
  if (target == nullptr) return IpcResult::kDeadSrcDst;
  if (!policy_.allowed(self.ac_id, target->ac_id, kNotifyMType)) {
    trace_sec(self, *target, kNotifyMType, /*allowed=*/false);
    return IpcResult::kNotAllowed;
  }
  // Notifications carry no span context: MINIX stores them as a single
  // bit in the receiver, so there is no room for causal metadata — the
  // trace deliberately breaks here, modeling the real protocol limit.
  if (target->wait == Pcb::Wait::kReceiving &&
      (target->wait_partner.is_any() ||
       target->wait_partner == ep_of(self))) {
    Message m;
    m.m_type = kNotifyMType;
    deliver(self, *target, m);
    return IpcResult::kOk;
  }
  target->notify_from.insert(self.slot);
  return IpcResult::kOk;
}

// ---- Memory grants ----

MinixKernel::GrantId MinixKernel::grant_create(Endpoint grantee,
                                               std::uint8_t* base,
                                               std::size_t len,
                                               GrantAccess access) {
  machine_.enter_kernel();
  met_.sc_grant.inc();
  if (base == nullptr || len == 0 || lookup_pcb(grantee) == nullptr) {
    return -1;
  }
  Pcb& self = current_pcb();
  const GrantId id = next_grant_id_++;
  self.grants[id] = Pcb::Grant{grantee, base, len, access};
  return id;
}

IpcResult MinixKernel::grant_revoke(GrantId id) {
  machine_.enter_kernel();
  met_.sc_grant.inc();
  return current_pcb().grants.erase(id) != 0 ? IpcResult::kOk
                                             : IpcResult::kBadEndpoint;
}

namespace {
constexpr std::size_t kCopyBytesPerUs = 512;  // simulated copy bandwidth
}

IpcResult MinixKernel::safecopy_from(Endpoint granter, GrantId id,
                                     std::size_t offset, std::uint8_t* dst,
                                     std::size_t len) {
  machine_.enter_kernel();
  met_.sc_safecopy.inc();
  Pcb& self = current_pcb();
  Pcb* owner = lookup_pcb(granter);
  if (owner == nullptr) return IpcResult::kDeadSrcDst;
  const auto it = owner->grants.find(id);
  if (it == owner->grants.end()) return IpcResult::kBadEndpoint;
  const Pcb::Grant& g = it->second;
  if (g.grantee != ep_of(self)) {
    trace_sec(self, *owner, -1, /*allowed=*/false);
    return IpcResult::kNotAllowed;
  }
  if (!g.access.read) return IpcResult::kNotAllowed;
  if (offset > g.len || len > g.len - offset) return IpcResult::kNotAllowed;
  std::memcpy(dst, g.base + offset, len);
  machine_.charge(static_cast<sim::Duration>(len / kCopyBytesPerUs));
  return IpcResult::kOk;
}

IpcResult MinixKernel::safecopy_to(Endpoint granter, GrantId id,
                                   std::size_t offset,
                                   const std::uint8_t* src, std::size_t len) {
  machine_.enter_kernel();
  met_.sc_safecopy.inc();
  Pcb& self = current_pcb();
  Pcb* owner = lookup_pcb(granter);
  if (owner == nullptr) return IpcResult::kDeadSrcDst;
  const auto it = owner->grants.find(id);
  if (it == owner->grants.end()) return IpcResult::kBadEndpoint;
  const Pcb::Grant& g = it->second;
  if (g.grantee != ep_of(self)) {
    trace_sec(self, *owner, -1, /*allowed=*/false);
    return IpcResult::kNotAllowed;
  }
  if (!g.access.write) return IpcResult::kNotAllowed;
  if (offset > g.len || len > g.len - offset) return IpcResult::kNotAllowed;
  std::memcpy(g.base + offset, src, len);
  machine_.charge(static_cast<sim::Duration>(len / kCopyBytesPerUs));
  return IpcResult::kOk;
}

// ---- PM server and PM-mediated calls ----

void MinixKernel::pm_main() {
  Pcb& self = current_pcb();
  for (;;) {
    Message req;
    const IpcResult r = do_receive(self, Endpoint::any(), req);
    machine_.enter_kernel();
    if (r != IpcResult::kOk) continue;
    Pcb* caller = lookup_pcb(req.source());
    if (req.m_type == PmProtocol::kExit) {
      // The caller unwinds itself right after sending, so it may already
      // be gone by the time PM processes the message; log either way.
      machine_.trace().emit(
          machine_.now(), self.proc->pid(), sim::TraceKind::kProcess,
          "pm.exit",
          caller != nullptr ? caller->name
                            : "ep=" + std::to_string(req.m_source));
      continue;
    }
    if (req.m_type == PmProtocol::kProcDied) {
      // Kernel-origin death notice (m_source == none): relay to the RS,
      // which owns the restart policy. Payload passes through unchanged.
      if (rs_ep_.valid()) {
        Message relay = req;
        relay.m_type = RsProtocol::kRestart;
        do_send_async(self, rs_ep_, relay);
      }
      continue;
    }
    if (caller == nullptr) continue;

    Message reply;
    reply.m_type = PmProtocol::kAck;

    switch (req.m_type) {
      case PmProtocol::kFork: {
        const int handle = req.get_i32(0);
        const auto it = pending_forks_.find(handle);
        if (it == pending_forks_.end() ||
            it->second.requester_slot != caller->slot) {
          reply.put_i32(0, static_cast<int>(IpcResult::kBadEndpoint));
          break;
        }
        PendingFork pf = std::move(it->second);
        pending_forks_.erase(it);
        if (ac_sealed_) pf.ac_id = caller->ac_id;
        const auto quota = policy_.fork_quota(caller->ac_id);
        if (policy_.quotas_enabled() && quota.has_value() &&
            forks_by_ac_[caller->ac_id] >= *quota) {
          met_.fork_quota_denied.inc();
          std::string detail = caller->name + " ac" +
                               std::to_string(caller->ac_id) +
                               " exceeded quota " + std::to_string(*quota);
          machine_.trace().emit(machine_.now(), self.proc->pid(),
                                sim::TraceKind::kSecurity,
                                "acm.fork_quota_deny", detail);
          machine_.audit().record(
              machine_.now(), machine_.machine_id(), self.proc->pid(),
              "acm.fork_quota_deny", std::move(detail), machine_.spans(),
              machine_.spans().current(self.proc->pid()));
          reply.put_i32(0, static_cast<int>(IpcResult::kQuotaExceeded));
          break;
        }
        const Endpoint child = spawn_internal(pf.name, pf.ac_id,
                                              std::move(pf.body), pf.priority);
        if (!child.valid()) {
          reply.put_i32(0, static_cast<int>(IpcResult::kDeadSrcDst));
          break;
        }
        ++caller->forks_done;
        ++forks_by_ac_[caller->ac_id];
        reply.put_i32(0, 0);
        reply.put_i32(4, child.raw());
        break;
      }
      case PmProtocol::kKill: {
        // The kill audit is itself a span, so a blocked kill's causal
        // chain reads: originating endpoint -> ipc hop -> pm.audit ->
        // (journal entry with the ACM denial).
        const std::uint64_t audit_span = machine_.spans().begin(
            self.proc->pid(), machine_.now(), tag_pm_audit_);
        const Endpoint target_ep{req.get_i32(0)};
        Pcb* target = lookup_pcb(target_ep);
        if (target == nullptr) {
          reply.put_i32(0, static_cast<int>(IpcResult::kDeadSrcDst));
        } else if (!policy_.kill_allowed(caller->ac_id, target->ac_id)) {
          met_.kill_denied.inc();
          std::string detail = caller->name + "(ac" +
                               std::to_string(caller->ac_id) +
                               ") may not kill " + target->name + "(ac" +
                               std::to_string(target->ac_id) + ")";
          machine_.trace().emit(machine_.now(), self.proc->pid(),
                                sim::TraceKind::kSecurity, "acm.kill_deny",
                                detail);
          machine_.audit().record(
              machine_.now(), machine_.machine_id(), self.proc->pid(),
              "acm.kill_deny", std::move(detail), machine_.spans(),
              machine_.spans().current(self.proc->pid()));
          reply.put_i32(0, static_cast<int>(IpcResult::kNotAllowed));
        } else {
          machine_.trace().emit(machine_.now(), self.proc->pid(),
                                sim::TraceKind::kProcess, "pm.kill",
                                caller->name + " kills " + target->name);
          machine_.audit().record(
              machine_.now(), machine_.machine_id(), self.proc->pid(),
              "pm.kill", caller->name + " kills " + target->name,
              machine_.spans(),
              machine_.spans().current(self.proc->pid()));
          kernel_kill(target_ep);
          reply.put_i32(0, 0);
        }
        machine_.spans().end(self.proc->pid(), machine_.now(), audit_span);
        break;
      }
      default:
        reply.put_i32(0, static_cast<int>(IpcResult::kNotAllowed));
        break;
    }
    // Reply asynchronously through the same audited path: a caller that
    // never receives cannot block PM (asymmetric-trust countermeasure).
    do_send_async(self, ep_of(*caller), reply);
  }
}

ForkResult MinixKernel::fork2(const std::string& name, int ac_id,
                              std::function<void()> body, int priority) {
  machine_.enter_kernel();
  met_.sc_fork.inc();
  Pcb& self = current_pcb();
  const int handle = next_fork_handle_++;
  pending_forks_[handle] =
      PendingFork{name, ac_id, std::move(body), priority, self.slot};
  Message m;
  m.m_type = PmProtocol::kFork;
  m.put_i32(0, handle);
  const IpcResult r = ipc_sendrec(pm_ep_, m);
  if (r != IpcResult::kOk) {
    pending_forks_.erase(handle);
    return {r, Endpoint::none()};
  }
  const int err = m.get_i32(0);
  if (err != 0) return {static_cast<IpcResult>(err), Endpoint::none()};
  return {IpcResult::kOk, Endpoint(m.get_i32(4))};
}

IpcResult MinixKernel::pm_kill(Endpoint target) {
  machine_.enter_kernel();
  met_.sc_kill.inc();
  Message m;
  m.m_type = PmProtocol::kKill;
  m.put_i32(0, target.raw());
  const IpcResult r = ipc_sendrec(pm_ep_, m);
  if (r != IpcResult::kOk) return r;
  const int err = m.get_i32(0);
  return err == 0 ? IpcResult::kOk : static_cast<IpcResult>(err);
}

void MinixKernel::pm_exit(int code) {
  machine_.enter_kernel();
  met_.sc_exit.inc();
  Message m;
  m.m_type = PmProtocol::kExit;
  m.put_i32(0, code);
  do_send(current_pcb(), pm_ep_, m, /*blocking=*/false);
  throw sim::ProcessExit{code};
}

// ---- Introspection ----

Endpoint MinixKernel::self() { return ep_of(current_pcb()); }

Endpoint MinixKernel::lookup(const std::string& name) const {
  const auto it = names_.find(name);
  return it == names_.end() ? Endpoint::none() : it->second;
}

Endpoint MinixKernel::wait_lookup(const std::string& name,
                                  sim::Duration timeout) {
  const sim::Time deadline = machine_.now() + timeout;
  for (;;) {
    const Endpoint ep = lookup(name);
    if (ep.valid()) return ep;
    if (machine_.now() >= deadline) return Endpoint::none();
    machine_.sleep_for(sim::msec(10));
  }
}

int MinixKernel::ac_id_of(Endpoint ep) const {
  const Pcb* pcb = lookup_pcb(ep);
  return pcb == nullptr ? -1 : pcb->ac_id;
}

bool MinixKernel::is_live(Endpoint ep) const {
  return lookup_pcb(ep) != nullptr;
}

}  // namespace mkbas::minix
