#include "minix/acm.hpp"

namespace mkbas::minix {

void AcmPolicy::allow(int src_ac, int dst_ac,
                      std::initializer_list<int> types) {
  std::uint64_t mask = 0;
  for (int t : types) {
    if (t >= 0 && t <= kMaxMessageType) mask |= (1ULL << t);
  }
  allow_mask(src_ac, dst_ac, mask);
}

void AcmPolicy::allow_mask(int src_ac, int dst_ac, std::uint64_t mask) {
  cells_[key(src_ac, dst_ac)] |= mask;
  if (in_dense(src_ac, dst_ac)) {
    const auto n = static_cast<std::size_t>(dense_bound_ + 1);
    dense_[static_cast<std::size_t>(src_ac) * n +
           static_cast<std::size_t>(dst_ac)] |= mask;
  }
  // The mutated cell may be memoized (with the old mask, or as a miss).
  invalidate_memo();
}

std::uint64_t AcmPolicy::slow_mask(int src, int dst) const {
  if (dense_bound_ < 0) {
    // Fast paths disabled: pure sparse lookup (the T3 baseline config).
    const auto it = cells_.find(key(src, dst));
    return it == cells_.end() ? 0 : it->second;
  }
  const std::uint64_t k = key(src, dst);
  Memo& m = memo_[static_cast<std::uint32_t>(src) % kMemoSlots];
  if (m.valid && m.key == k) return m.mask;
  const auto it = cells_.find(k);
  // Misses memoize too: an attacker probing a absent cell pays the hash
  // once, not per message.
  m = Memo{k, it == cells_.end() ? 0 : it->second, true};
  return m.mask;
}

std::uint64_t AcmPolicy::mask(int src_ac, int dst_ac) const {
  if (in_dense(src_ac, dst_ac)) {
    const auto n = static_cast<std::size_t>(dense_bound_ + 1);
    return dense_[static_cast<std::size_t>(src_ac) * n +
                  static_cast<std::size_t>(dst_ac)];
  }
  return slow_mask(src_ac, dst_ac);
}

void AcmPolicy::set_dense_bound(int max_ac_id) {
  dense_bound_ = max_ac_id < 0 ? -1 : max_ac_id;
  if (dense_bound_ < 0) {
    // Actually release the buffer — assign(0) keeps the old capacity,
    // which memory_footprint_bytes() would keep charging.
    std::vector<std::uint64_t>().swap(dense_);
  } else {
    dense_.assign((static_cast<std::size_t>(dense_bound_) + 1) *
                      (static_cast<std::size_t>(dense_bound_) + 1),
                  0);
    dense_.shrink_to_fit();
  }
  // Re-project existing cells into the (re)sized dense table.
  if (dense_bound_ >= 0) {
    const auto n = static_cast<std::size_t>(dense_bound_ + 1);
    for (const auto& [k, m] : cells_) {
      const int src = static_cast<int>(k >> 32);
      const int dst = static_cast<int>(k & 0xFFFFFFFFULL);
      if (in_dense(src, dst)) {
        dense_[static_cast<std::size_t>(src) * n +
               static_cast<std::size_t>(dst)] = m;
      }
    }
  }
  invalidate_memo();
}

void AcmPolicy::invalidate_memo() const {
  for (Memo& m : memo_) m.valid = false;
}

void AcmPolicy::invalidate_ac(int ac_id) const {
  const auto id = static_cast<std::uint32_t>(ac_id);
  for (Memo& m : memo_) {
    if (!m.valid) continue;
    if (static_cast<std::uint32_t>(m.key >> 32) == id ||
        static_cast<std::uint32_t>(m.key & 0xFFFFFFFFULL) == id) {
      m.valid = false;
    }
  }
}

bool AcmPolicy::memo_valid(int src_ac, int dst_ac) const {
  const Memo& m = memo_[static_cast<std::uint32_t>(src_ac) % kMemoSlots];
  return m.valid && m.key == key(src_ac, dst_ac);
}

void AcmPolicy::allow_kill(int src_ac, int target_ac) {
  kill_[key(src_ac, target_ac)] = true;
}

bool AcmPolicy::kill_allowed(int src_ac, int target_ac) const {
  const auto it = kill_.find(key(src_ac, target_ac));
  return it != kill_.end() && it->second;
}

void AcmPolicy::set_fork_quota(int ac_id, int quota) {
  fork_quota_[ac_id] = quota;
}

std::optional<int> AcmPolicy::fork_quota(int ac_id) const {
  const auto it = fork_quota_.find(ac_id);
  if (it == fork_quota_.end()) return std::nullopt;
  return it->second;
}

namespace {

/// Unordered-map footprint from the sizes of the actual node types:
/// libstdc++ stores one value_type per node plus a next pointer (and a
/// cached hash for these key types), reached through a bucket-pointer
/// array. This replaces the old hand-waved per-entry constant.
template <typename Map>
std::size_t map_footprint(const Map& m) {
  const std::size_t per_node =
      sizeof(typename Map::value_type) + sizeof(void*) + sizeof(std::size_t);
  return m.size() * per_node + m.bucket_count() * sizeof(void*);
}

}  // namespace

std::size_t AcmPolicy::memory_footprint_bytes() const {
  return map_footprint(cells_) + map_footprint(kill_) +
         map_footprint(fork_quota_) +
         dense_.capacity() * sizeof(std::uint64_t) +
         sizeof(memo_);
}

}  // namespace mkbas::minix
