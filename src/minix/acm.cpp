#include "minix/acm.hpp"

namespace mkbas::minix {

void AcmPolicy::allow(int src_ac, int dst_ac,
                      std::initializer_list<int> types) {
  std::uint64_t mask = 0;
  for (int t : types) {
    if (t >= 0 && t <= kMaxMessageType) mask |= (1ULL << t);
  }
  allow_mask(src_ac, dst_ac, mask);
}

void AcmPolicy::allow_mask(int src_ac, int dst_ac, std::uint64_t mask) {
  cells_[key(src_ac, dst_ac)] |= mask;
}

bool AcmPolicy::allowed(int src_ac, int dst_ac, int m_type) const {
  if (m_type < 0 || m_type > kMaxMessageType) return false;
  const auto it = cells_.find(key(src_ac, dst_ac));
  if (it == cells_.end()) return false;
  return (it->second >> m_type) & 1ULL;
}

std::uint64_t AcmPolicy::mask(int src_ac, int dst_ac) const {
  const auto it = cells_.find(key(src_ac, dst_ac));
  return it == cells_.end() ? 0 : it->second;
}

void AcmPolicy::allow_kill(int src_ac, int target_ac) {
  kill_[key(src_ac, target_ac)] = true;
}

bool AcmPolicy::kill_allowed(int src_ac, int target_ac) const {
  const auto it = kill_.find(key(src_ac, target_ac));
  return it != kill_.end() && it->second;
}

void AcmPolicy::set_fork_quota(int ac_id, int quota) {
  fork_quota_[ac_id] = quota;
}

std::optional<int> AcmPolicy::fork_quota(int ac_id) const {
  const auto it = fork_quota_.find(ac_id);
  if (it == fork_quota_.end()) return std::nullopt;
  return it->second;
}

std::size_t AcmPolicy::memory_footprint_bytes() const {
  // Hash-map overhead approximated as key + value + bucket pointer per
  // entry; good enough for the space-efficiency comparison in bench T3.
  constexpr std::size_t kPerEntry =
      sizeof(std::uint64_t) * 2 + sizeof(void*);
  return cells_.size() * kPerEntry + kill_.size() * kPerEntry +
         fork_quota_.size() * (sizeof(int) * 2 + sizeof(void*));
}

}  // namespace mkbas::minix
