#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "minix/acm.hpp"
#include "minix/message.hpp"
#include "sim/machine.hpp"

namespace mkbas::minix {

/// Message types of the PM server's protocol. Type 0 is the reserved
/// acknowledgment, exactly as in the paper's Fig. 3.
struct PmProtocol {
  static constexpr int kAck = 0;
  static constexpr int kFork = 1;
  static constexpr int kKill = 2;
  static constexpr int kExit = 3;
  /// Kernel -> PM: a process died abnormally (killed or crashed). Payload:
  /// i64 death time at offset 0, process name string at offset 8.
  static constexpr int kProcDied = 4;
};

/// Message types of the reincarnation server's protocol.
struct RsProtocol {
  /// PM -> RS: restart the named system process. Same payload layout as
  /// PmProtocol::kProcDied.
  static constexpr int kRestart = 5;
};

/// Message type used for kernel notifications (ipc_notify).
inline constexpr int kNotifyMType = 32;

/// Result of a fork2() request.
struct ForkResult {
  IpcResult status = IpcResult::kOk;
  Endpoint child;  // valid only when status == kOk
};

/// The security-enhanced MINIX 3 microkernel personality (§III.A/B).
///
/// Reproduces the paper's design:
///  * fixed 64-byte messages, endpoints = slot|generation held in the PCB;
///  * rendezvous (blocking) send/receive plus non-blocking send and
///    notify, all routed through the kernel;
///  * message-passing primitives exposed to *all* user processes (the
///    paper's first kernel modification);
///  * an `ac_id` field in every PCB, assigned at load time by
///    fork2()/srv_fork2() (the second modification);
///  * the access control matrix checked by the kernel on every IPC (the
///    third modification) — user processes cannot alter it at run time;
///  * a process-management (PM) server running as an ordinary process:
///    fork/kill/exit are messages to PM, and PM audits kill requests (and,
///    with quotas enabled, fork requests) against the ACM policy.
///
/// All syscall entry points must be called from a simulated process
/// context; boot-time helpers (srv_fork2) may also be called from the
/// driver thread before run().
class MinixKernel {
 public:
  static constexpr int kNumSlots = 128;
  static constexpr int kPmAcId = 1;

  MinixKernel(sim::Machine& machine, AcmPolicy policy);

  /// Tears down all simulated processes before kernel state is released:
  /// process bodies and exit hooks capture `this`.
  ~MinixKernel() { machine_.shutdown(); }

  MinixKernel(const MinixKernel&) = delete;
  MinixKernel& operator=(const MinixKernel&) = delete;

  // ---- Boot-time loading (the paper's scenario-process path) ----

  /// Load a server/process with an explicit ac_id. Returns its endpoint,
  /// or Endpoint::none() if the process table is full.
  Endpoint srv_fork2(const std::string& name, int ac_id,
                     std::function<void()> body,
                     int priority = sim::Machine::kDefaultPriority);

  // ---- IPC syscalls (process context) ----

  /// Blocking rendezvous send: returns once the message is delivered.
  IpcResult ipc_send(Endpoint dst, Message& m);

  /// Non-blocking send: delivers only if the destination is already
  /// waiting to receive from us (MINIX ENOTREADY semantics otherwise).
  IpcResult ipc_sendnb(Endpoint dst, Message& m);

  /// Blocking receive from `src` (or Endpoint::any()).
  IpcResult ipc_receive(Endpoint src, Message& out);

  /// Non-blocking receive: returns kNotReady when nothing is pending.
  /// (Models the select/notify polling pattern MINIX servers use; our web
  /// interface polls its mailbox between HTTP requests.)
  IpcResult ipc_nbreceive(Endpoint src, Message& out);

  /// Atomic send-then-receive-reply, the RPC building block.
  IpcResult ipc_sendrec(Endpoint dst, Message& m);

  /// Post a notification; delivered as a kNotifyMType message when the
  /// destination next receives. Never blocks.
  IpcResult ipc_notify(Endpoint dst);

  /// Asynchronous send (MINIX senda): never blocks the sender. Delivered
  /// immediately if the destination is waiting, otherwise queued in the
  /// destination's (bounded) async mailbox. System servers use this for
  /// replies so an untrusted client that never receives cannot block them
  /// — the asymmetric-trust countermeasure of Herder et al. cited in §III.
  IpcResult ipc_senda(Endpoint dst, Message& m);

  // ---- Memory grants (§III.A: "message passing, and memory grants") ----
  //
  // Bulk data that does not fit the 64-byte message travels through
  // kernel-checked grants: the owner grants a specific peer read and/or
  // write access to a specific region, and the peer asks the *kernel* to
  // copy (safecopy). The kernel validates grantee identity, bounds and
  // access mode on every copy; grants die with their creator.

  using GrantId = int;
  struct GrantAccess {
    bool read = false;
    bool write = false;
  };

  /// Create a grant over caller-owned memory for exactly `grantee`.
  /// Returns a grant id (>= 0), or -1 on bad arguments. The caller must
  /// keep the buffer alive until the grant is revoked or it exits.
  GrantId grant_create(Endpoint grantee, std::uint8_t* base, std::size_t len,
                       GrantAccess access);
  IpcResult grant_revoke(GrantId id);

  /// Copy out of a peer's granted region into a local buffer.
  IpcResult safecopy_from(Endpoint granter, GrantId id, std::size_t offset,
                          std::uint8_t* dst, std::size_t len);
  /// Copy a local buffer into a peer's granted region.
  IpcResult safecopy_to(Endpoint granter, GrantId id, std::size_t offset,
                        const std::uint8_t* src, std::size_t len);

  // ---- PM-mediated POSIX-style calls (process context) ----

  /// fork2(): create a child with the given ac_id, via a message to PM.
  /// After seal_ac_assignment(), PM forces the child's ac_id to equal the
  /// caller's — free ac_id choice exists only "during booting period"
  /// (§III.B); otherwise a compromised process could mint trusted
  /// identities for its children.
  ForkResult fork2(const std::string& name, int ac_id,
                   std::function<void()> body,
                   int priority = sim::Machine::kDefaultPriority);

  /// End the boot period: from now on fork2 children inherit the caller's
  /// ac_id regardless of the requested value.
  void seal_ac_assignment() { ac_sealed_ = true; }
  bool ac_sealed() const { return ac_sealed_; }

  // ---- Reincarnation server (MINIX's "self-repairing" behaviour) ----

  static constexpr int kRsAcId = 3;

  /// Per-server restart policy held by the RS. The defaults restart
  /// forever with a fixed delay; backoff > 1 stretches the delay
  /// geometrically with each restart of the same server.
  struct RestartPolicy {
    sim::Duration delay = sim::msec(200);
    int max_restarts = -1;  // -1 = unlimited
    double backoff = 1.0;
  };

  /// Boot the RS: processes loaded afterwards (srv_fork2/fork2) are
  /// re-spawned with the same name/ac_id when they die abnormally
  /// (killed or crashed — voluntary pm_exit is not restarted). The flow
  /// is message-driven like real MINIX 3: the kernel tells PM the process
  /// died (kProcDied), PM relays to RS (kRestart), and RS re-forks via the
  /// same srv_fork2 path — so the reborn process regains its original
  /// ac_id row in the ACM, never a fresh permissive one.
  void enable_reincarnation(sim::Duration restart_delay = sim::msec(200));
  bool reincarnation_enabled() const { return reincarnation_enabled_; }
  int restarts() const { return restarts_; }

  /// Override the RS restart policy for one named server. May be called
  /// before or after the server is loaded.
  void set_restart_policy(const std::string& name, RestartPolicy policy) {
    restart_policies_[name] = policy;
  }

  /// kill(): request PM to terminate `target`. PM audits the request
  /// against the ACM kill policy.
  IpcResult pm_kill(Endpoint target);

  /// exit(): notify PM and unwind the calling process.
  [[noreturn]] void pm_exit(int code);

  // ---- Introspection / name service ----

  Endpoint self();
  Endpoint pm_endpoint() const { return pm_ep_; }
  Endpoint lookup(const std::string& name) const;
  /// Lookup that retries until the target registers (or timeout elapses).
  Endpoint wait_lookup(const std::string& name,
                       sim::Duration timeout = sim::sec(5));
  int ac_id_of(Endpoint ep) const;
  bool is_live(Endpoint ep) const;
  sim::Machine& machine() { return machine_; }
  const AcmPolicy& policy() const { return policy_; }

  /// Kernel-internal kill (what PM invokes after auditing; also used by
  /// tests to model external faults).
  void kernel_kill(Endpoint target);

 private:
  struct Pcb {
    int slot = 0;
    int generation = 0;
    bool live = false;
    std::string name;
    int ac_id = -1;
    sim::Process* proc = nullptr;

    enum class Wait { kNone, kSending, kReceiving } wait = Wait::kNone;
    Endpoint wait_partner = Endpoint::none();
    Message* user_buf = nullptr;
    IpcResult ipc_result = IpcResult::kOk;
    std::deque<int> sender_queue;  // slots blocked sending to us
    std::set<int> notify_from;     // slots with a pending notification
    /// Causal context of the current in-flight send. The 64-byte wire
    /// Message cannot carry it (sizeof(Message) is part of the model),
    /// so it rides kernel-side in the PCB, exactly like m_source: the
    /// kernel stamps it at the send syscall and hands it to the
    /// receiver at delivery. out_span is the open "minix.ipc" flow
    /// span covering send -> deliver (0 = none).
    std::uint64_t out_span = 0;
    /// A queued senda() message (src stamped) plus its enqueue time, so
    /// delivery can charge the true send->deliver latency to the metrics,
    /// plus the flow span opened at the send syscall.
    struct AsyncMsg {
      Message msg;
      sim::Time enqueued = 0;
      std::uint64_t span = 0;
    };
    std::deque<AsyncMsg> async_in;
    sim::Time send_start = 0;  // when the current/last send syscall began
    int forks_done = 0;

    struct Grant {
      Endpoint grantee = Endpoint::none();
      std::uint8_t* base = nullptr;
      std::size_t len = 0;
      GrantAccess access;
    };
    std::unordered_map<int, Grant> grants;
  };

  static constexpr std::size_t kAsyncDepth = 64;

  Endpoint ep_of(const Pcb& p) const {
    return Endpoint::make(p.slot, p.generation);
  }
  Pcb* lookup_pcb(Endpoint ep);
  const Pcb* lookup_pcb(Endpoint ep) const;
  Pcb& current_pcb();
  Endpoint spawn_internal(const std::string& name, int ac_id,
                          std::function<void()> body, int priority);
  void on_process_gone(Pcb& pcb);
  IpcResult do_send(Pcb& src, Endpoint dst_ep, Message& m, bool blocking);
  IpcResult do_send_async(Pcb& src, Endpoint dst_ep, Message& m);
  IpcResult do_receive(Pcb& self, Endpoint from, Message& out,
                       bool blocking = true);
  void deliver(Pcb& from, Pcb& to, const Message& m);
  bool would_deadlock(const Pcb& src, const Pcb& first_dst) const;
  void pm_main();
  void rs_main();
  /// Kernel-crafted notification to PM (m_source = none): deliver
  /// immediately if PM is receiving, else queue in its async mailbox.
  /// `ctx` is the causal context the notice continues (the dying
  /// process's context for kProcDied, so a reincarnation chains back
  /// to the trace that was active at death).
  void kernel_notify_pm(const Message& m, obs::SpanContext ctx = {});
  void trace_sec(const Pcb& src, const Pcb& dst, int m_type, bool allowed);
  /// Open the "minix.ipc" flow span for a send by `src` (parent = the
  /// sender's current context). Returns the span id.
  std::uint64_t begin_ipc_span(const Pcb& src);
  /// Close an ipc flow span at delivery and hand its context to `to`,
  /// so the receiver's subsequent spans chain under the message hop.
  void finish_ipc_span(std::uint64_t span, const Pcb& to);

  /// Handles resolved once at kernel construction; incremented on the IPC
  /// hot path without any string lookups ("minix.*" namespace).
  struct Metrics {
    obs::Counter sc_send, sc_sendnb, sc_receive, sc_nbreceive, sc_sendrec;
    obs::Counter sc_senda, sc_notify, sc_grant, sc_safecopy, sc_fork;
    obs::Counter sc_kill, sc_exit;
    obs::Counter acm_allowed, acm_denied;
    obs::Counter kill_denied, fork_quota_denied;
    obs::Counter rs_restarts, rs_giveup;
    obs::Histogram ipc_latency;  // send->deliver, virtual microseconds
    obs::Histogram rs_mttr;      // death -> respawn, virtual microseconds
  };

  sim::Machine& machine_;
  AcmPolicy policy_;
  Metrics met_;
  obs::HealthSignal denial_sig_;  // rate detector over ACM denials
  /// Span/audit tags interned once at construction (hot paths must not
  /// touch the string table).
  std::uint32_t tag_ipc_span_ = 0;
  std::uint32_t tag_pm_audit_ = 0;
  std::uint32_t tag_rs_restart_ = 0;
  std::uint32_t tag_note_restart_ = 0;
  std::uint32_t tag_acm_allow_ = 0;
  std::uint32_t tag_acm_deny_ = 0;
  std::uint32_t tag_deliver_ = 0;
  std::vector<Pcb> slots_;
  std::unordered_map<int, int> pid_to_slot_;
  std::unordered_map<std::string, Endpoint> names_;
  Endpoint pm_ep_;

  struct PendingFork {
    std::string name;
    int ac_id;
    std::function<void()> body;
    int priority;
    int requester_slot;
  };
  std::unordered_map<int, PendingFork> pending_forks_;
  int next_fork_handle_ = 1;
  int next_grant_id_ = 1;
  // Fork-quota accounting is per ac_id (not per process): otherwise a
  // fork bomb's children would each start with a fresh budget.
  std::unordered_map<int, int> forks_by_ac_;
  bool ac_sealed_ = false;

  struct RestartTemplate {
    int ac_id;
    std::function<void()> body;
    int priority;
  };
  bool reincarnation_enabled_ = false;
  std::unordered_map<std::string, RestartTemplate> restart_templates_;
  std::unordered_map<std::string, RestartPolicy> restart_policies_;
  std::unordered_map<std::string, int> restart_counts_;
  sim::Duration default_restart_delay_ = sim::msec(200);
  Endpoint rs_ep_;
  int restarts_ = 0;
};

}  // namespace mkbas::minix
