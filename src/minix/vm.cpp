#include "minix/vm.hpp"

namespace mkbas::minix {

// Payload layouts:
//   brk/free: i64 bytes @0            -> i32 status @0
//   usage:                            -> i32 status @0, i64 bytes @8

VmServer::VmServer(MinixKernel& kernel, std::size_t pool_bytes)
    : kernel_(kernel), pool_free_(pool_bytes) {
  ep_ = kernel_.srv_fork2("vm", kVmAcId, [this] { main(); },
                          /*priority=*/2);
}

void VmServer::main() {
  for (;;) {
    Message req;
    if (kernel_.ipc_receive(Endpoint::any(), req) != IpcResult::kOk) {
      continue;
    }
    const Endpoint caller = req.source();
    const int ac = kernel_.ac_id_of(caller);
    Message reply;
    reply.m_type = VmProtocol::kAck;

    switch (req.m_type) {
      case VmProtocol::kBrk: {
        const auto bytes =
            static_cast<std::size_t>(req.get<std::int64_t>(0));
        const auto quota_it = quotas_.find(ac);
        if (quota_it != quotas_.end() &&
            usage_[ac] + bytes > quota_it->second) {
          kernel_.machine().trace().emit(
              kernel_.machine().now(), -1, sim::TraceKind::kSecurity,
              "vm.quota_deny",
              "ac" + std::to_string(ac) + " over quota of " +
                  std::to_string(quota_it->second));
          reply.put_i32(0, -1);
          break;
        }
        if (bytes > pool_free_) {
          reply.put_i32(0, -2);  // physical exhaustion
          break;
        }
        pool_free_ -= bytes;
        usage_[ac] += bytes;
        reply.put_i32(0, 0);
        break;
      }
      case VmProtocol::kFree: {
        const auto bytes =
            static_cast<std::size_t>(req.get<std::int64_t>(0));
        const std::size_t freed = std::min(bytes, usage_[ac]);
        usage_[ac] -= freed;
        pool_free_ += freed;
        reply.put_i32(0, 0);
        break;
      }
      case VmProtocol::kUsage: {
        reply.put_i32(0, 0);
        reply.put(8, static_cast<std::int64_t>(usage_[ac]));
        break;
      }
      default:
        reply.put_i32(0, -3);
        break;
    }
    kernel_.ipc_senda(caller, reply);
  }
}

bool VmClient::brk_grow(std::size_t bytes) {
  Message m;
  m.m_type = VmProtocol::kBrk;
  m.put(0, static_cast<std::int64_t>(bytes));
  if (kernel_.ipc_sendrec(vm_, m) != IpcResult::kOk) return false;
  return m.get_i32(0) == 0;
}

bool VmClient::brk_free(std::size_t bytes) {
  Message m;
  m.m_type = VmProtocol::kFree;
  m.put(0, static_cast<std::int64_t>(bytes));
  if (kernel_.ipc_sendrec(vm_, m) != IpcResult::kOk) return false;
  return m.get_i32(0) == 0;
}

std::size_t VmClient::usage() {
  Message m;
  m.m_type = VmProtocol::kUsage;
  if (kernel_.ipc_sendrec(vm_, m) != IpcResult::kOk) return 0;
  return static_cast<std::size_t>(m.get<std::int64_t>(8));
}

}  // namespace mkbas::minix
