#pragma once

#include <memory>
#include <vector>

#include "physics/pressure.hpp"
#include "sim/machine.hpp"
#include "sim/rng.hpp"

namespace mkbas::devices {

/// Differential pressure transmitter (corridor-referenced), as installed
/// at both the lab and the anteroom of a BSL-3 suite. 0.1 Pa resolution
/// with Gaussian noise.
class PressureSensor {
 public:
  enum class Tap { kLab, kAnteroom };

  PressureSensor(const physics::ContainmentModel& model, Tap tap,
                 sim::Rng& rng, double noise_sigma_pa = 0.4)
      : model_(model), tap_(tap), rng_(rng), noise_(noise_sigma_pa) {}

  double read_pa() {
    const double truth = tap_ == Tap::kLab ? model_.lab_pressure_pa()
                                           : model_.anteroom_pressure_pa();
    const double raw = truth + noise_ * rng_.next_gaussian();
    return static_cast<double>(static_cast<long long>(
               raw * 10.0 + (raw >= 0 ? 0.5 : -0.5))) /
           10.0;
  }

 private:
  const physics::ContainmentModel& model_;
  Tap tap_;
  sim::Rng& rng_;
  double noise_;
};

/// Variable-speed exhaust fan (VFD-driven). Speed is a commanded fraction
/// of maximum flow; transitions are recorded for the safety analysis.
class ExhaustFan {
 public:
  struct Transition {
    sim::Time time;
    double speed;
  };

  void set_speed(double speed, sim::Time now) {
    speed = std::clamp(speed, 0.0, 1.0);
    if (speed == speed_) return;
    speed_ = speed;
    transitions_.push_back({now, speed});
  }
  double speed() const { return speed_; }
  const std::vector<Transition>& transitions() const { return transitions_; }

 private:
  double speed_ = 0.0;
  std::vector<Transition> transitions_;
};

/// Electrically latched door. `set_open` models the latch releasing (and
/// the door swinging) — the physical interlock is whatever the controller
/// enforces before commanding it.
class DoorLatch {
 public:
  struct Transition {
    sim::Time time;
    bool open;
  };

  explicit DoorLatch(const char* name) : name_(name) {}

  void set_open(bool open, sim::Time now) {
    if (open == open_) return;
    open_ = open;
    transitions_.push_back({now, open});
  }
  bool is_open() const { return open_; }
  const char* name() const { return name_; }
  const std::vector<Transition>& transitions() const { return transitions_; }

 private:
  const char* name_;
  bool open_ = false;
  std::vector<Transition> transitions_;
};

/// Ground-truth sample of the containment suite.
struct ContainmentSample {
  sim::Time time = 0;
  double lab_pa = 0.0;
  double ante_pa = 0.0;
  double fan_speed = 0.0;
  bool inner_open = false;
  bool outer_open = false;
  bool alarm_on = false;
};

/// Couples the containment physics to the machine clock and records the
/// ground truth that the safety analysis judges.
class ContainmentCoupler {
 public:
  ContainmentCoupler(sim::Machine& machine, physics::ContainmentModel& model,
                     ExhaustFan& fan, DoorLatch& inner, DoorLatch& outer,
                     const bool* alarm_state,
                     sim::Duration step = sim::msec(250)) {
    machine.every(step, step, [&machine, &model, &fan, &inner, &outer,
                               alarm_state, step, this] {
      model.step(step, fan.speed(), inner.is_open(), outer.is_open());
      history_.push_back({machine.now(), model.lab_pressure_pa(),
                          model.anteroom_pressure_pa(), fan.speed(),
                          inner.is_open(), outer.is_open(),
                          alarm_state != nullptr && *alarm_state});
    });
  }

  const std::vector<ContainmentSample>& history() const { return history_; }

 private:
  std::vector<ContainmentSample> history_;
};

}  // namespace mkbas::devices
