#pragma once

#include <string>
#include <vector>

#include "physics/room.hpp"
#include "sim/machine.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace mkbas::devices {

/// A BMP180-style digital temperature sensor attached to the room.
///
/// The real part reports temperature in 0.1 C steps with roughly +/-0.5 C
/// absolute accuracy; we model quantisation plus small Gaussian noise.
/// Only processes holding a pointer to this object can sample it — the
/// personality kernels hand that pointer exclusively to the sensor-driver
/// process, which models MMU-enforced device-register isolation.
class Bmp180Sensor {
 public:
  Bmp180Sensor(const physics::RoomModel& room, sim::Rng& rng,
               double noise_sigma_c = 0.08)
      : room_(room), rng_(rng), noise_sigma_c_(noise_sigma_c) {}

  /// One conversion: true room temperature + noise, quantised to 0.1 C.
  /// A stuck fault pins the output and, crucially, skips the noise draw —
  /// a wedged ADC does not consume entropy, so the machine RNG stream is
  /// identical whether or not the fault window is active elsewhere.
  double read_temperature_c() {
    if (stuck_) return quantize(stuck_c_);
    const double raw = room_.temperature_c() + fault_offset_ +
                       noise_sigma_c_ * rng_.next_gaussian();
    return quantize(raw);
  }

  // ---- Fault-injection hooks (driven by fault::FaultInjector) ----
  void fault_stuck_at(double c) {
    stuck_ = true;
    stuck_c_ = c;
  }
  /// Additive calibration drift, accumulates across calls.
  void add_fault_offset(double dc) { fault_offset_ += dc; }
  void clear_fault() {
    stuck_ = false;
    stuck_c_ = 0.0;
    fault_offset_ = 0.0;
  }
  bool faulted() const { return stuck_ || fault_offset_ != 0.0; }

  static double quantize(double c) {
    return static_cast<double>(static_cast<long long>(c * 10.0 +
                                                      (c >= 0 ? 0.5 : -0.5))) /
           10.0;
  }

 private:
  const physics::RoomModel& room_;
  sim::Rng& rng_;
  double noise_sigma_c_;
  bool stuck_ = false;
  double stuck_c_ = 0.0;
  double fault_offset_ = 0.0;
};

/// Heater (or, as in the paper's testbed, a fan run in reverse) actuator.
/// Tracks every state transition for the safety checker.
class HeaterActuator {
 public:
  struct Transition {
    sim::Time time;
    bool on;
  };

  explicit HeaterActuator(double power_w = 1500.0) : power_w_(power_w) {}

  void set_on(bool on, sim::Time now) {
    if (on == on_) return;
    on_ = on;
    transitions_.push_back({now, on});
  }
  bool is_on() const { return on_; }
  double output_w() const { return on_ ? power_w_ : 0.0; }
  double rated_power_w() const { return power_w_; }

  /// A failed heater stops producing heat regardless of its commanded
  /// state (used by the FIG2 heater-failure experiment).
  void fail() { failed_ = true; }
  void repair() { failed_ = false; }
  bool failed() const { return failed_; }
  double effective_output_w() const { return failed_ ? 0.0 : output_w(); }

  const std::vector<Transition>& transitions() const { return transitions_; }

 private:
  double power_w_;
  bool on_ = false;
  bool failed_ = false;
  std::vector<Transition> transitions_;
};

/// The on-board LED standing in for the alarm actuator.
class AlarmLed {
 public:
  struct Transition {
    sim::Time time;
    bool on;
  };

  void set_on(bool on, sim::Time now) {
    if (on == on_) return;
    on_ = on;
    transitions_.push_back({now, on});
  }
  bool is_on() const { return on_; }
  const std::vector<Transition>& transitions() const { return transitions_; }

 private:
  bool on_ = false;
  std::vector<Transition> transitions_;
};

/// One row of the plant's ground-truth history, sampled by the coupler.
struct PlantSample {
  sim::Time time = 0;
  double true_temp_c = 0.0;
  double outdoor_c = 0.0;
  bool heater_on = false;
  bool alarm_on = false;
};

/// Ties a Machine's virtual clock to the physics: a periodic driver
/// callback integrates the room model against the heater state and records
/// ground truth for the safety checker. This is the "world" the simulated
/// controller actually affects — attacks count as successful only when
/// this history shows a physical consequence.
class PlantCoupler {
 public:
  PlantCoupler(sim::Machine& machine, physics::RoomModel& room,
               HeaterActuator& heater, AlarmLed& alarm,
               sim::Duration step = sim::msec(250))
      : machine_(machine), room_(room), heater_(heater), alarm_(alarm) {
    machine_.every(step, step, [this, step] {
      room_.step(step, heater_.effective_output_w(), machine_.now());
      history_.push_back({machine_.now(), room_.temperature_c(),
                          room_.outdoor_temp_c(machine_.now()),
                          heater_.is_on(), alarm_.is_on()});
    });
  }

  const std::vector<PlantSample>& history() const { return history_; }

 private:
  sim::Machine& machine_;
  physics::RoomModel& room_;
  HeaterActuator& heater_;
  AlarmLed& alarm_;
  std::vector<PlantSample> history_;
};

}  // namespace mkbas::devices
