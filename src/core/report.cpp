#include "core/report.hpp"

#include <sstream>

namespace mkbas::core {

namespace {

/// CSV-escape: quote when the field contains a comma or quote.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string attack_rows_to_csv(const std::vector<AttackRow>& rows) {
  std::ostringstream os;
  os << "attack,privilege,platform,primitive_succeeded,attempts,successes,"
        "physically_compromised,control_alive,temp_excursion,"
        "alarm_violation,spurious_alarm,min_temp_c,max_temp_c,detail\n";
  for (const auto& r : rows) {
    os << attack::to_string(r.kind) << ',' << attack::to_string(r.privilege)
       << ',' << csv_field(r.platform_label) << ','
       << (r.outcome.primitive_succeeded ? 1 : 0) << ','
       << r.outcome.attempts << ',' << r.outcome.successes << ','
       << (r.safety.physically_compromised() ? 1 : 0) << ','
       << (r.safety.control_alive ? 1 : 0) << ','
       << (r.safety.temp_excursion ? 1 : 0) << ','
       << (r.safety.alarm_violation ? 1 : 0) << ','
       << (r.safety.spurious_alarm ? 1 : 0) << ',' << r.safety.min_temp_c
       << ',' << r.safety.max_temp_c << ',' << csv_field(r.outcome.detail)
       << '\n';
  }
  return os.str();
}

std::string attack_rows_to_markdown(const std::vector<AttackRow>& rows) {
  std::ostringstream os;
  os << "| attack | privilege | platform | primitive | physical world |\n"
     << "|---|---|---|---|---|\n";
  for (const auto& r : rows) {
    os << "| " << attack::to_string(r.kind) << " | "
       << attack::to_string(r.privilege) << " | " << r.platform_label
       << " | " << (r.outcome.primitive_succeeded ? "**SUCCEEDED**" : "blocked")
       << " | " << r.safety.summary() << " |\n";
  }
  return os.str();
}

std::string benign_history_to_csv(const BenignRun& run) {
  std::ostringstream os;
  os << "time_s,true_temp_c,outdoor_c,heater_on,alarm_on\n";
  for (const auto& s : run.history) {
    os << sim::to_seconds(s.time) << ',' << s.true_temp_c << ','
       << s.outdoor_c << ',' << (s.heater_on ? 1 : 0) << ','
       << (s.alarm_on ? 1 : 0) << '\n';
  }
  return os.str();
}

std::string metrics_to_json(const sim::Machine& machine) {
  return machine.metrics().to_json();
}

}  // namespace mkbas::core
