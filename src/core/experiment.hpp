#pragma once

#include <functional>
#include <string>
#include <vector>

#include "attack/attacks.hpp"
#include "core/safety.hpp"
#include "net/http.hpp"

namespace mkbas::core {

/// The three platforms of the paper's comparison.
enum class Platform { kMinix, kSel4, kLinux };

const char* to_string(Platform p);

/// Parameters shared by benign and attack runs.
struct RunOptions {
  bas::ScenarioConfig scenario{};
  sim::Duration settle = sim::minutes(12);  // before the compromise
  sim::Duration post = sim::minutes(20);    // after the compromise
  /// Linux only: per-process accounts + queue ACLs (the well-configured
  /// system of the paper's second simulation).
  bool linux_separate_accounts = false;
  /// MINIX only: enable the ACM syscall-quota extension.
  bool minix_quotas = false;
  std::uint64_t seed = 1;
  /// Called with the machine after the run finishes but before teardown —
  /// the hook through which callers snapshot the metrics registry or
  /// export the trace (the scenario and its kernel still exist here).
  std::function<void(sim::Machine&)> observe;
};

/// Result of one benign run (FIG2): ground-truth history plus the served
/// HTTP traffic and kernel statistics.
struct BenignRun {
  Platform platform = Platform::kMinix;
  std::vector<devices::PlantSample> history;
  std::vector<net::HttpExchange> http;
  SafetyReport safety;
  std::uint64_t context_switches = 0;
  std::uint64_t kernel_entries = 0;
};

/// The Fig. 2 workload: settle at the initial setpoint, an operator
/// setpoint step via HTTP at t=10min, a heater hardware failure at
/// t=30min (alarm must fire), repair at t=45min, end at t=60min.
BenignRun run_benign(Platform platform, const RunOptions& opts = {});

/// One row of the §IV.D attack-outcome matrix (bench T1).
struct AttackRow {
  Platform platform = Platform::kMinix;
  std::string platform_label;  // includes config variant
  attack::AttackKind kind = attack::AttackKind::kSpoofSensor;
  attack::Privilege privilege = attack::Privilege::kCodeExec;
  attack::AttackOutcome outcome;
  SafetyReport safety;
};

/// Run a single platform × attack × privilege experiment.
AttackRow run_attack(Platform platform, attack::AttackKind kind,
                     attack::Privilege priv, const RunOptions& opts = {});

/// The full matrix the paper's §IV.D narrative describes, plus the
/// fork-quota ablation rows (paper's proposed future work, implemented).
std::vector<AttackRow> run_attack_matrix(const RunOptions& opts = {});

/// Render rows as the aligned text table bench T1 prints.
std::string format_attack_table(const std::vector<AttackRow>& rows);

}  // namespace mkbas::core
