#pragma once

#include <functional>
#include <string>
#include <vector>

#include "attack/attacks.hpp"
#include "bas/scenario.hpp"
#include "core/safety.hpp"
#include "fault/fault.hpp"
#include "net/http.hpp"

namespace mkbas::core {

/// The three platforms of the paper's comparison. The enum itself lives
/// with the scenario registry; core re-exports it so existing callers
/// keep spelling core::Platform.
using Platform = bas::Platform;
using bas::to_string;

/// Parameters shared by benign and attack runs.
struct RunOptions {
  bas::ScenarioConfig scenario{};
  /// Which registered scenario variant to instantiate ("temp", "uds", ...).
  std::string scenario_variant = "temp";
  sim::Duration settle = sim::minutes(12);  // before the compromise
  sim::Duration post = sim::minutes(20);    // after the compromise
  /// Linux only: per-process accounts + queue ACLs (the well-configured
  /// system of the paper's second simulation).
  bool linux_separate_accounts = false;
  /// MINIX only: enable the ACM syscall-quota extension.
  bool minix_quotas = false;
  std::uint64_t seed = 1;
  /// Called with the machine after the run finishes but before teardown —
  /// the hook through which callers snapshot the metrics registry or
  /// export the trace (the scenario and its kernel still exist here).
  std::function<void(sim::Machine&)> observe;
};

/// Result of one benign run (FIG2): ground-truth history plus the served
/// HTTP traffic and kernel statistics.
struct BenignRun {
  Platform platform = Platform::kMinix;
  std::vector<devices::PlantSample> history;
  std::vector<net::HttpExchange> http;
  SafetyReport safety;
  std::uint64_t context_switches = 0;
  std::uint64_t kernel_entries = 0;
};

/// The Fig. 2 workload: settle at the initial setpoint, an operator
/// setpoint step via HTTP at t=10min, a heater hardware failure at
/// t=30min (alarm must fire), repair at t=45min, end at t=60min.
BenignRun run_benign(Platform platform, const RunOptions& opts = {});

/// One row of the §IV.D attack-outcome matrix (bench T1).
struct AttackRow {
  Platform platform = Platform::kMinix;
  std::string platform_label;  // includes config variant
  attack::AttackKind kind = attack::AttackKind::kSpoofSensor;
  attack::Privilege privilege = attack::Privilege::kCodeExec;
  attack::AttackOutcome outcome;
  SafetyReport safety;
};

/// Run a single platform × attack × privilege experiment.
AttackRow run_attack(Platform platform, attack::AttackKind kind,
                     attack::Privilege priv, const RunOptions& opts = {});

/// The full matrix the paper's §IV.D narrative describes, plus the
/// fork-quota ablation rows (paper's proposed future work, implemented).
std::vector<AttackRow> run_attack_matrix(const RunOptions& opts = {});

/// Render rows as the aligned text table bench T1 prints.
std::string format_attack_table(const std::vector<AttackRow>& rows);

/// Result of one fault-injection campaign: a FaultPlan armed against one
/// platform, with recovery judged from the controller's own trace events
/// and the plant's ground-truth history.
struct FaultRunResult {
  Platform platform = Platform::kMinix;
  std::string platform_label;
  std::vector<devices::PlantSample> history;
  SafetyReport safety;
  /// Earliest injection in the plan; recovery is measured from here.
  sim::Time fault_time = 0;
  /// The control loop was emitting samples again at the end of the run.
  bool loop_recovered = false;
  /// Virtual time from the fault until the loop's longest post-fault
  /// outage ended (-1 when the loop never came back).
  sim::Duration mttr = -1;
  /// Longest gap between consecutive ctl.sample events after the fault.
  sim::Duration max_ctl_gap = 0;
  /// Reincarnation-server / restart-from-spec respawns (always 0 on Linux).
  int restarts = 0;
  std::uint64_t faults_injected = 0;
  /// Worst |true temperature - setpoint| after the fault (control-loop
  /// excursion; the physical cost of the outage).
  double max_excursion_after_fault_c = 0.0;
  /// Outcome of the optional post-fault sensor-spoof probe (attempted is
  /// false when no probe ran — e.g. the web interface stayed dead).
  attack::AttackOutcome web_spoof;
};

/// Run `plan` against one platform. MINIX boots the reincarnation server
/// and seL4/CAmkES the restart-from-spec monitor; the Linux baseline is
/// left as deployed (no recovery mechanism) for contrast. When
/// `spoof_probe_at` >= 0 the web interface is compromised at that time
/// with a code-exec sensor-spoof — if the web process was crashed and
/// reincarnated in between, the probe checks that the restarted process
/// still holds its original *restricted* ACM row (spoofs must stay 0/N).
FaultRunResult run_fault(Platform platform, const fault::FaultPlan& plan,
                         const RunOptions& opts = {},
                         sim::Time spoof_probe_at = -1);

/// Render campaign results as an aligned text table (bench F).
std::string format_fault_table(const std::vector<FaultRunResult>& rows);

}  // namespace mkbas::core
