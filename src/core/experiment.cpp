#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>

namespace mkbas::core {

using attack::AttackKind;
using attack::AttackOutcome;
using attack::Privilege;

namespace {

/// Fold the driver-level knobs (quota ablation, Linux account split) into
/// the ScenarioConfig the registry factories read. Fields a platform does
/// not consult are ignored by its factory, so setting them is harmless.
bas::ScenarioConfig effective_config(Platform platform,
                                     const RunOptions& opts) {
  bas::ScenarioConfig cfg = opts.scenario;
  cfg.enable_quotas = opts.minix_quotas;
  cfg.linux_separate_accounts = opts.linux_separate_accounts;
  (void)platform;
  return cfg;
}

/// Drives the Fig. 2 benign workload against whichever scenario's console
/// and plant are handed in.
void schedule_benign_workload(sim::Machine& m, net::HttpConsole& http,
                              bas::Plant& plant) {
  // Periodic operator status polls.
  m.every(sim::minutes(2), sim::minutes(2), [&m, &http] {
    http.submit(m.now(), {"GET", "/status", ""});
  });
  // Setpoint step at t=10min.
  m.at(sim::minutes(10), [&m, &http] {
    http.submit(m.now(), {"POST", "/setpoint", "value=25.0"});
  });
  // Heater hardware failure at t=30min; the room cools out of band and
  // the alarm must fire within the alarm timeout.
  m.at(sim::minutes(30), [&m, &plant] {
    plant.heater.fail();
    m.trace().emit(m.now(), -1, sim::TraceKind::kDevice, "heater.failed");
  });
  m.at(sim::minutes(45), [&m, &plant] {
    plant.heater.repair();
    m.trace().emit(m.now(), -1, sim::TraceKind::kDevice, "heater.repaired");
  });
}

constexpr sim::Duration kBenignEnd = sim::minutes(60);

}  // namespace

BenignRun run_benign(Platform platform, const RunOptions& opts) {
  BenignRun run;
  run.platform = platform;
  sim::Machine m(opts.seed);

  auto sc = bas::make_scenario(m, platform, opts.scenario_variant,
                               effective_config(platform, opts));
  bas::Plant* plant = sc->plant();
  if (plant == nullptr) {
    throw std::invalid_argument(
        "run_benign: scenario variant has no temperature plant");
  }
  schedule_benign_workload(m, sc->http(), *plant);
  m.run_until(kBenignEnd);
  run.history = plant->coupler->history();
  run.http = sc->http().exchanges();
  run.safety =
      check_safety(run.history, m.trace(), opts.scenario.control, kBenignEnd,
                   opts.scenario.sensor_period);
  run.context_switches = m.context_switches();
  run.kernel_entries = m.kernel_entries();
  if (opts.observe) opts.observe(m);
  return run;
}

AttackRow run_attack(Platform platform, AttackKind kind, Privilege priv,
                     const RunOptions& opts) {
  AttackRow row;
  row.platform = platform;
  row.platform_label = to_string(platform);
  row.kind = kind;
  row.privilege = priv;

  sim::Machine m(opts.seed);
  const sim::Time attack_at = opts.settle;
  const sim::Time run_end = opts.settle + opts.post;

  bas::ScenarioConfig cfg = effective_config(platform, opts);
  if (platform == Platform::kMinix && opts.minix_quotas) {
    row.platform_label += "(quota)";
  }
  if (platform == Platform::kLinux) {
    // A root attacker only makes sense against the well-configured
    // deployment (separate accounts + queue ACLs), §IV.D.2.
    cfg.linux_separate_accounts =
        opts.linux_separate_accounts || priv == Privilege::kRoot;
    if (cfg.linux_separate_accounts) row.platform_label += "(acl)";
  }

  auto sc = bas::make_scenario(m, platform, opts.scenario_variant, cfg);
  sc->arm_attack(attack_at,
                 attack::make_attack(platform, kind, priv, &row.outcome));
  m.run_until(run_end);
  row.safety = check_safety(sc->plant()->coupler->history(), m.trace(),
                            opts.scenario.control, run_end,
                            opts.scenario.sensor_period);
  if (opts.observe) opts.observe(m);
  return row;
}

std::vector<AttackRow> run_attack_matrix(const RunOptions& opts) {
  std::vector<AttackRow> rows;
  const AttackKind kinds[] = {
      AttackKind::kSpoofSensor, AttackKind::kSpoofActuator,
      AttackKind::kKillControl, AttackKind::kForkBomb,
      AttackKind::kCapBruteForce, AttackKind::kIpcFlood};
  const Platform platforms[] = {Platform::kLinux, Platform::kMinix,
                                Platform::kSel4};
  for (AttackKind kind : kinds) {
    for (Platform p : platforms) {
      for (Privilege priv : {Privilege::kCodeExec, Privilege::kRoot}) {
        // Root adds nothing on seL4 (no user concept, §IV.D.3): skip the
        // duplicate run but keep both privilege rows elsewhere.
        if (p == Platform::kSel4 && priv == Privilege::kRoot) continue;
        rows.push_back(run_attack(p, kind, priv, opts));
      }
      // Ablation: the paper's proposed ACM fork quota stops the bomb.
      if (p == Platform::kMinix && kind == AttackKind::kForkBomb) {
        RunOptions quota_opts = opts;
        quota_opts.minix_quotas = true;
        rows.push_back(run_attack(p, kind, Privilege::kCodeExec,
                                  quota_opts));
      }
    }
  }
  return rows;
}

namespace {

/// Shared post-run analysis for fault campaigns: recovery and excursion
/// are judged from the trace and the plant history, identically for all
/// three platforms.
void analyse_fault_run(FaultRunResult& res, sim::Machine& m,
                       bas::Plant& plant, const RunOptions& opts,
                       sim::Time run_end) {
  res.history = plant.coupler->history();
  res.safety = check_safety(res.history, m.trace(), opts.scenario.control,
                            run_end, opts.scenario.sensor_period);
  // The loop counts as recovered when the safety checker still sees it
  // alive at the end of the run (recency of ctl.sample events).
  res.loop_recovered = res.safety.control_alive;

  // MTTR: the longest inter-sample gap ending after the fault is the
  // outage; its end is the moment service was restored. Measuring the
  // gap (instead of "first sample after the fault") is robust against a
  // sample that was already in flight when the fault hit.
  sim::Time prev = -1;
  sim::Time outage_end = -1;
  for (const auto& ev : m.trace().events()) {
    if (ev.what() != "ctl.sample") continue;
    if (prev >= 0 && ev.time > res.fault_time) {
      const sim::Duration gap = ev.time - prev;
      if (gap > res.max_ctl_gap) {
        res.max_ctl_gap = gap;
        outage_end = ev.time;
      }
    }
    prev = ev.time;
  }
  if (res.loop_recovered) {
    res.mttr = outage_end > res.fault_time ? outage_end - res.fault_time : 0;
  }

  const double sp = opts.scenario.control.initial_setpoint_c;
  for (const auto& s : res.history) {
    if (s.time < res.fault_time) continue;
    res.max_excursion_after_fault_c = std::max(
        res.max_excursion_after_fault_c, std::abs(s.true_temp_c - sp));
  }
  if (opts.observe) opts.observe(m);
}

}  // namespace

FaultRunResult run_fault(Platform platform, const fault::FaultPlan& plan,
                         const RunOptions& opts, sim::Time spoof_probe_at) {
  FaultRunResult res;
  res.platform = platform;
  res.platform_label = to_string(platform);

  sim::Machine m(opts.seed);
  res.fault_time = std::numeric_limits<sim::Time>::max();
  for (const auto& ev : plan.events())
    res.fault_time = std::min(res.fault_time, ev.at);
  if (plan.empty()) res.fault_time = 0;
  const sim::Time run_end = opts.settle + opts.post;

  fault::FaultInjector injector(m, plan);

  bas::ScenarioConfig cfg = effective_config(platform, opts);
  switch (platform) {
    case Platform::kMinix:
      cfg.enable_reincarnation = true;  // RS self-healing under test
      res.platform_label += "+RS";
      break;
    case Platform::kSel4:
      cfg.enable_reincarnation = true;  // CAmkES restart-from-spec
      res.platform_label += "+restart";
      break;
    case Platform::kLinux:
      // Deliberately no recovery: a plain deployment has nothing watching
      // the control processes, which is the paper's contrast case.
      break;
  }

  auto sc = bas::make_scenario(m, platform, opts.scenario_variant, cfg);
  injector.register_sensor(&sc->plant()->sensor);
  injector.arm();
  if (spoof_probe_at >= 0) {
    sc->arm_attack(spoof_probe_at,
                   attack::make_attack(platform, AttackKind::kSpoofSensor,
                                       Privilege::kCodeExec, &res.web_spoof));
  }
  m.run_until(run_end);
  res.restarts = sc->restarts();
  analyse_fault_run(res, m, *sc->plant(), opts, run_end);
  res.faults_injected = injector.injected();
  return res;
}

std::string format_fault_table(const std::vector<FaultRunResult>& rows) {
  std::ostringstream os;
  auto pad = [](std::string s, std::size_t w) {
    if (s.size() < w) s.append(w - s.size(), ' ');
    return s;
  };
  os << pad("platform", 22) << pad("recovered", 11) << pad("mttr", 10)
     << pad("restarts", 10) << pad("excursion", 11) << pad("spoof", 8)
     << "physical world\n";
  os << std::string(110, '-') << "\n";
  for (const auto& r : rows) {
    std::ostringstream mttr;
    if (r.mttr < 0) {
      mttr << "inf";
    } else {
      mttr.setf(std::ios::fixed);
      mttr.precision(2);
      mttr << sim::to_seconds(r.mttr) << "s";
    }
    std::ostringstream exc;
    exc.setf(std::ios::fixed);
    exc.precision(2);
    exc << r.max_excursion_after_fault_c << "C";
    // "successes" can count delivered-but-harmless sends (seL4's badged
    // channels); the spoof verdict is the primitive's, not the counter's.
    std::ostringstream spoof;
    if (!r.web_spoof.attempted) {
      spoof << "-";
    } else if (r.web_spoof.primitive_succeeded) {
      spoof << "SPOOFED";
    } else {
      spoof << "blocked";
    }
    os << pad(r.platform_label, 22)
       << pad(r.loop_recovered ? "yes" : "NO", 11) << pad(mttr.str(), 10)
       << pad(std::to_string(r.restarts), 10) << pad(exc.str(), 11)
       << pad(spoof.str(), 8) << r.safety.summary() << "\n";
  }
  return os.str();
}

std::string format_attack_table(const std::vector<AttackRow>& rows) {
  std::ostringstream os;
  auto pad = [](std::string s, std::size_t w) {
    if (s.size() < w) s.append(w - s.size(), ' ');
    return s;
  };
  os << pad("attack", 20) << pad("privilege", 11) << pad("platform", 18)
     << pad("primitive", 11) << pad("physical world", 52) << "\n";
  os << std::string(110, '-') << "\n";
  for (const auto& r : rows) {
    os << pad(attack::to_string(r.kind), 20)
       << pad(attack::to_string(r.privilege), 11)
       << pad(r.platform_label, 18)
       << pad(r.outcome.primitive_succeeded ? "SUCCEEDED" : "blocked", 11)
       << pad(r.safety.summary(), 52) << "\n";
  }
  return os.str();
}

}  // namespace mkbas::core
