#include "core/experiment.hpp"

#include <memory>
#include <sstream>

namespace mkbas::core {

using attack::AttackKind;
using attack::AttackOutcome;
using attack::Privilege;
using bas::LinuxScenario;
using bas::MinixScenario;
using bas::Sel4Scenario;

const char* to_string(Platform p) {
  switch (p) {
    case Platform::kMinix:
      return "MINIX3+ACM";
    case Platform::kSel4:
      return "seL4/CAmkES";
    case Platform::kLinux:
      return "Linux";
  }
  return "?";
}

namespace {

/// Drives the Fig. 2 benign workload against whichever scenario's console
/// and plant are handed in.
void schedule_benign_workload(sim::Machine& m, net::HttpConsole& http,
                              bas::Plant& plant) {
  // Periodic operator status polls.
  m.every(sim::minutes(2), sim::minutes(2), [&m, &http] {
    http.submit(m.now(), {"GET", "/status", ""});
  });
  // Setpoint step at t=10min.
  m.at(sim::minutes(10), [&m, &http] {
    http.submit(m.now(), {"POST", "/setpoint", "value=25.0"});
  });
  // Heater hardware failure at t=30min; the room cools out of band and
  // the alarm must fire within the alarm timeout.
  m.at(sim::minutes(30), [&m, &plant] {
    plant.heater.fail();
    m.trace().emit(m.now(), -1, sim::TraceKind::kDevice, "heater.failed");
  });
  m.at(sim::minutes(45), [&m, &plant] {
    plant.heater.repair();
    m.trace().emit(m.now(), -1, sim::TraceKind::kDevice, "heater.repaired");
  });
}

constexpr sim::Duration kBenignEnd = sim::minutes(60);

}  // namespace

BenignRun run_benign(Platform platform, const RunOptions& opts) {
  BenignRun run;
  run.platform = platform;
  sim::Machine m(opts.seed);

  auto finish = [&](bas::Plant& plant, net::HttpConsole& http) {
    m.run_until(kBenignEnd);
    run.history = plant.coupler->history();
    run.http = http.exchanges();
    run.safety = check_safety(run.history, m.trace(),
                              opts.scenario.control, kBenignEnd,
                              opts.scenario.sensor_period);
    run.context_switches = m.context_switches();
    run.kernel_entries = m.kernel_entries();
    if (opts.observe) opts.observe(m);
  };

  switch (platform) {
    case Platform::kMinix: {
      auto cfg = opts.scenario;
      cfg.enable_quotas = opts.minix_quotas;
      MinixScenario sc(m, cfg);
      schedule_benign_workload(m, sc.http(), sc.plant());
      finish(sc.plant(), sc.http());
      break;
    }
    case Platform::kSel4: {
      Sel4Scenario sc(m, opts.scenario);
      schedule_benign_workload(m, sc.http(), sc.plant());
      finish(sc.plant(), sc.http());
      break;
    }
    case Platform::kLinux: {
      LinuxScenario sc(m, opts.scenario,
                       opts.linux_separate_accounts
                           ? LinuxScenario::Accounts::kSeparate
                           : LinuxScenario::Accounts::kShared);
      schedule_benign_workload(m, sc.http(), sc.plant());
      finish(sc.plant(), sc.http());
      break;
    }
  }
  return run;
}

AttackRow run_attack(Platform platform, AttackKind kind, Privilege priv,
                     const RunOptions& opts) {
  AttackRow row;
  row.platform = platform;
  row.platform_label = to_string(platform);
  row.kind = kind;
  row.privilege = priv;

  sim::Machine m(opts.seed);
  const sim::Time attack_at = opts.settle;
  const sim::Time run_end = opts.settle + opts.post;

  auto finish = [&](bas::Plant& plant) {
    m.run_until(run_end);
    row.safety = check_safety(plant.coupler->history(), m.trace(),
                              opts.scenario.control, run_end,
                              opts.scenario.sensor_period);
    if (opts.observe) opts.observe(m);
  };

  switch (platform) {
    case Platform::kMinix: {
      auto cfg = opts.scenario;
      cfg.enable_quotas = opts.minix_quotas;
      if (opts.minix_quotas) row.platform_label += "(quota)";
      MinixScenario sc(m, cfg);
      sc.arm_web_attack(attack_at,
                        attack::minix_attack(kind, priv, &row.outcome));
      finish(sc.plant());
      break;
    }
    case Platform::kSel4: {
      Sel4Scenario sc(m, opts.scenario);
      sc.arm_web_attack(attack_at,
                        attack::sel4_attack(kind, priv, &row.outcome));
      finish(sc.plant());
      break;
    }
    case Platform::kLinux: {
      const bool separate =
          opts.linux_separate_accounts || priv == Privilege::kRoot;
      if (separate) row.platform_label += "(acl)";
      LinuxScenario sc(m, opts.scenario,
                       separate ? LinuxScenario::Accounts::kSeparate
                                : LinuxScenario::Accounts::kShared);
      sc.arm_web_attack(attack_at,
                        attack::linux_attack(kind, priv, &row.outcome));
      finish(sc.plant());
      break;
    }
  }
  return row;
}

std::vector<AttackRow> run_attack_matrix(const RunOptions& opts) {
  std::vector<AttackRow> rows;
  const AttackKind kinds[] = {
      AttackKind::kSpoofSensor, AttackKind::kSpoofActuator,
      AttackKind::kKillControl, AttackKind::kForkBomb,
      AttackKind::kCapBruteForce, AttackKind::kIpcFlood};
  const Platform platforms[] = {Platform::kLinux, Platform::kMinix,
                                Platform::kSel4};
  for (AttackKind kind : kinds) {
    for (Platform p : platforms) {
      for (Privilege priv : {Privilege::kCodeExec, Privilege::kRoot}) {
        // Root adds nothing on seL4 (no user concept, §IV.D.3): skip the
        // duplicate run but keep both privilege rows elsewhere.
        if (p == Platform::kSel4 && priv == Privilege::kRoot) continue;
        rows.push_back(run_attack(p, kind, priv, opts));
      }
      // Ablation: the paper's proposed ACM fork quota stops the bomb.
      if (p == Platform::kMinix && kind == AttackKind::kForkBomb) {
        RunOptions quota_opts = opts;
        quota_opts.minix_quotas = true;
        rows.push_back(run_attack(p, kind, Privilege::kCodeExec,
                                  quota_opts));
      }
    }
  }
  return rows;
}

std::string format_attack_table(const std::vector<AttackRow>& rows) {
  std::ostringstream os;
  auto pad = [](std::string s, std::size_t w) {
    if (s.size() < w) s.append(w - s.size(), ' ');
    return s;
  };
  os << pad("attack", 20) << pad("privilege", 11) << pad("platform", 18)
     << pad("primitive", 11) << pad("physical world", 52) << "\n";
  os << std::string(110, '-') << "\n";
  for (const auto& r : rows) {
    os << pad(attack::to_string(r.kind), 20)
       << pad(attack::to_string(r.privilege), 11)
       << pad(r.platform_label, 18)
       << pad(r.outcome.primitive_succeeded ? "SUCCEEDED" : "blocked", 11)
       << pad(r.safety.summary(), 52) << "\n";
  }
  return os.str();
}

}  // namespace mkbas::core
