#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace mkbas::core {

/// Machine-readable exports of experiment results, for pasting into
/// papers/dashboards (the text table in experiment.hpp stays the default
/// for terminals).

/// Attack matrix as CSV: header + one row per experiment.
std::string attack_rows_to_csv(const std::vector<AttackRow>& rows);

/// Attack matrix as a GitHub-flavoured markdown table.
std::string attack_rows_to_markdown(const std::vector<AttackRow>& rows);

/// Benign-run plant history as CSV (time_s, temp_c, heater, alarm).
std::string benign_history_to_csv(const BenignRun& run);

/// Snapshot of a machine's metrics registry as JSON (counters, gauges,
/// histograms). Intended for RunOptions::observe hooks and the
/// experiment_runner's --metrics-out flag.
std::string metrics_to_json(const sim::Machine& machine);

}  // namespace mkbas::core
