#include "core/cli.hpp"

#include <cstdlib>

namespace mkbas::core {

bool parse_platform(const std::string& s, bas::Platform* out) {
  if (s == "minix") {
    *out = bas::Platform::kMinix;
  } else if (s == "sel4") {
    *out = bas::Platform::kSel4;
  } else if (s == "linux") {
    *out = bas::Platform::kLinux;
  } else {
    return false;
  }
  return true;
}

bool parse_attack_kind(const std::string& s, attack::AttackKind* out) {
  using attack::AttackKind;
  if (s == "spoof-sensor") {
    *out = AttackKind::kSpoofSensor;
  } else if (s == "spoof-actuator") {
    *out = AttackKind::kSpoofActuator;
  } else if (s == "kill") {
    *out = AttackKind::kKillControl;
  } else if (s == "fork-bomb") {
    *out = AttackKind::kForkBomb;
  } else if (s == "brute-force") {
    *out = AttackKind::kCapBruteForce;
  } else if (s == "flood") {
    *out = AttackKind::kIpcFlood;
  } else {
    return false;
  }
  return true;
}

bool parse_fabric_attack(const std::string& s, FabricAttack* out) {
  if (s == "none") {
    *out = FabricAttack::kNone;
  } else if (s == "spoof-write") {
    *out = FabricAttack::kSpoofWrite;
  } else if (s == "replay") {
    *out = FabricAttack::kReplay;
  } else if (s == "flood") {
    *out = FabricAttack::kFlood;
  } else {
    return false;
  }
  return true;
}

namespace {

/// Artifact-path flags, one per ArtifactKind (same order).
const char* const kArtifactFlags[kArtifactKinds] = {
    "--out",          "--metrics-out",  "--trace-out",   "--trace-spans",
    "--audit-out",    "--critical-out", "--series-out",  "--health-out",
    "--flight-out",   "--metrics-prom-out",
    "--profile-out",  "--profile-trace"};

std::vector<std::string> known_flags() {
  std::vector<std::string> f = {
      "--platform", "--scenario", "--seed",     "--zones", "--jobs",
      "--seeds",    "--topology", "--floors",   "--buildings", "--sync",
      "--lite",     "--attack",   "--root",     "--quota", "--acl",
      "--no-probe", "--csv",      "--md",       "--port",  "--batch",
      "--slow-ms",  "--store-cap", "--no-trace"};
  for (const char* a : kArtifactFlags) f.emplace_back(a);
  return f;
}

}  // namespace

CliArgs parse_cli(int argc, char** argv) {
  CliArgs a;
  auto value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      a.error = std::string(flag) + " needs a value";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool is_artifact_flag = false;
    for (int k = 0; k < kArtifactKinds; ++k) {
      if (arg == kArtifactFlags[k]) {
        const char* v = value(i, kArtifactFlags[k]);
        if (v == nullptr) return a;
        a.artifacts[static_cast<ArtifactKind>(k)] = v;
        is_artifact_flag = true;
        break;
      }
    }
    if (is_artifact_flag) continue;
    if (arg == "--platform") {
      const char* v = value(i, "--platform");
      if (v == nullptr) return a;
      if (!parse_platform(v, &a.platform)) {
        a.error = std::string("unknown platform: ") + v +
                  did_you_mean(v, {"minix", "sel4", "linux"});
        return a;
      }
      a.has_platform = true;
    } else if (arg == "--scenario") {
      const char* v = value(i, "--scenario");
      if (v == nullptr) return a;
      a.scenario = v;
    } else if (arg == "--seed") {
      const char* v = value(i, "--seed");
      if (v == nullptr) return a;
      a.seed = std::strtoull(v, nullptr, 10);
      a.has_seed = true;
    } else if (arg == "--zones") {
      const char* v = value(i, "--zones");
      if (v == nullptr) return a;
      a.zones = std::atoi(v);
    } else if (arg == "--jobs") {
      const char* v = value(i, "--jobs");
      if (v == nullptr) return a;
      a.jobs = std::atoi(v);
    } else if (arg == "--seeds") {
      const char* v = value(i, "--seeds");
      if (v == nullptr) return a;
      a.seeds = std::atoi(v);
    } else if (arg == "--topology") {
      const char* v = value(i, "--topology");
      if (v == nullptr) return a;
      if (!net::parse_topology_kind(v, &a.topology)) {
        a.error = std::string("unknown topology: ") + v +
                  did_you_mean(v, {"flat", "line", "star", "tree", "campus"});
        return a;
      }
    } else if (arg == "--floors") {
      const char* v = value(i, "--floors");
      if (v == nullptr) return a;
      a.floors = std::atoi(v);
    } else if (arg == "--buildings") {
      const char* v = value(i, "--buildings");
      if (v == nullptr) return a;
      a.buildings = std::atoi(v);
    } else if (arg == "--sync") {
      const char* v = value(i, "--sync");
      if (v == nullptr) return a;
      const std::string s = v;
      if (s == "lookahead") {
        a.sync = net::SyncMode::kLookahead;
      } else if (s == "epoch") {
        a.sync = net::SyncMode::kEpoch;
      } else {
        a.error = "unknown sync mode: " + s +
                  did_you_mean(s, {"lookahead", "epoch"});
        return a;
      }
    } else if (arg == "--lite") {
      a.lite = true;
    } else if (arg == "--attack") {
      const char* v = value(i, "--attack");
      if (v == nullptr) return a;
      a.attack = v;
      a.has_attack = true;
    } else if (arg == "--root") {
      a.root = true;
    } else if (arg == "--quota") {
      a.quota = true;
    } else if (arg == "--acl") {
      a.acl = true;
    } else if (arg == "--no-probe") {
      a.no_probe = true;
    } else if (arg == "--csv") {
      a.format = "csv";
    } else if (arg == "--md") {
      a.format = "md";
    } else if (arg == "--port") {
      const char* v = value(i, "--port");
      if (v == nullptr) return a;
      a.port = std::atoi(v);
    } else if (arg == "--batch") {
      const char* v = value(i, "--batch");
      if (v == nullptr) return a;
      a.batch = std::atoi(v);
    } else if (arg == "--slow-ms") {
      const char* v = value(i, "--slow-ms");
      if (v == nullptr) return a;
      a.slow_ms = std::atoi(v);
    } else if (arg == "--store-cap") {
      const char* v = value(i, "--store-cap");
      if (v == nullptr) return a;
      a.store_cap = std::atoi(v);
    } else if (arg == "--no-trace") {
      a.no_trace = true;
    } else if (arg.size() >= 2 && arg[0] == '-' &&
               !(arg[1] >= '0' && arg[1] <= '9')) {
      // Any unrecognized flag — double- or single-dash — is an error.
      // These used to fall silently into `pos` where subcommands ignored
      // them, so typos like --zoned 16 ran the default experiment.
      a.error = "unknown flag: " + arg + did_you_mean(arg, known_flags());
      return a;
    } else if (a.mode.empty()) {
      a.mode = arg;
    } else {
      // Positionals beyond the mode are passed through untouched; only
      // the campaign submode reads them. The legacy spellings ("root",
      // "seed N", bare platform names) are gone — flags only.
      a.pos.push_back(arg);
    }
  }
  return a;
}

}  // namespace mkbas::core
