#include "core/cli.hpp"

#include <cstdlib>

namespace mkbas::core {

bool parse_platform(const std::string& s, bas::Platform* out) {
  if (s == "minix") {
    *out = bas::Platform::kMinix;
  } else if (s == "sel4") {
    *out = bas::Platform::kSel4;
  } else if (s == "linux") {
    *out = bas::Platform::kLinux;
  } else {
    return false;
  }
  return true;
}

bool parse_attack_kind(const std::string& s, attack::AttackKind* out) {
  using attack::AttackKind;
  if (s == "spoof-sensor") {
    *out = AttackKind::kSpoofSensor;
  } else if (s == "spoof-actuator") {
    *out = AttackKind::kSpoofActuator;
  } else if (s == "kill") {
    *out = AttackKind::kKillControl;
  } else if (s == "fork-bomb") {
    *out = AttackKind::kForkBomb;
  } else if (s == "brute-force") {
    *out = AttackKind::kCapBruteForce;
  } else if (s == "flood") {
    *out = AttackKind::kIpcFlood;
  } else {
    return false;
  }
  return true;
}

bool parse_fabric_attack(const std::string& s, FabricAttack* out) {
  if (s == "none") {
    *out = FabricAttack::kNone;
  } else if (s == "spoof-write") {
    *out = FabricAttack::kSpoofWrite;
  } else if (s == "replay") {
    *out = FabricAttack::kReplay;
  } else if (s == "flood") {
    *out = FabricAttack::kFlood;
  } else {
    return false;
  }
  return true;
}

CliArgs parse_cli(int argc, char** argv) {
  CliArgs a;
  auto value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      a.error = std::string(flag) + " needs a value";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--platform") {
      const char* v = value(i, "--platform");
      if (v == nullptr) return a;
      if (!parse_platform(v, &a.platform)) {
        a.error = std::string("unknown platform: ") + v;
        return a;
      }
      a.has_platform = true;
    } else if (arg == "--scenario") {
      const char* v = value(i, "--scenario");
      if (v == nullptr) return a;
      a.scenario = v;
    } else if (arg == "--seed") {
      const char* v = value(i, "--seed");
      if (v == nullptr) return a;
      a.seed = std::strtoull(v, nullptr, 10);
      a.has_seed = true;
    } else if (arg == "--zones") {
      const char* v = value(i, "--zones");
      if (v == nullptr) return a;
      a.zones = std::atoi(v);
    } else if (arg == "--jobs") {
      const char* v = value(i, "--jobs");
      if (v == nullptr) return a;
      a.jobs = std::atoi(v);
    } else if (arg == "--seeds") {
      const char* v = value(i, "--seeds");
      if (v == nullptr) return a;
      a.seeds = std::atoi(v);
    } else if (arg == "--topology") {
      const char* v = value(i, "--topology");
      if (v == nullptr) return a;
      if (!net::parse_topology_kind(v, &a.topology)) {
        a.error = std::string("unknown topology: ") + v;
        return a;
      }
    } else if (arg == "--floors") {
      const char* v = value(i, "--floors");
      if (v == nullptr) return a;
      a.floors = std::atoi(v);
    } else if (arg == "--buildings") {
      const char* v = value(i, "--buildings");
      if (v == nullptr) return a;
      a.buildings = std::atoi(v);
    } else if (arg == "--sync") {
      const char* v = value(i, "--sync");
      if (v == nullptr) return a;
      const std::string s = v;
      if (s == "lookahead") {
        a.sync = net::SyncMode::kLookahead;
      } else if (s == "epoch") {
        a.sync = net::SyncMode::kEpoch;
      } else {
        a.error = "unknown sync mode: " + s;
        return a;
      }
    } else if (arg == "--lite") {
      a.lite = true;
    } else if (arg == "--out") {
      const char* v = value(i, "--out");
      if (v == nullptr) return a;
      a.out = v;
    } else if (arg == "--metrics-out") {
      const char* v = value(i, "--metrics-out");
      if (v == nullptr) return a;
      a.metrics_out = v;
    } else if (arg == "--trace-out") {
      const char* v = value(i, "--trace-out");
      if (v == nullptr) return a;
      a.trace_out = v;
    } else if (arg == "--trace-spans") {
      const char* v = value(i, "--trace-spans");
      if (v == nullptr) return a;
      a.spans_out = v;
    } else if (arg == "--audit-out") {
      const char* v = value(i, "--audit-out");
      if (v == nullptr) return a;
      a.audit_out = v;
    } else if (arg == "--critical-out") {
      const char* v = value(i, "--critical-out");
      if (v == nullptr) return a;
      a.critical_out = v;
    } else if (arg == "--series-out") {
      const char* v = value(i, "--series-out");
      if (v == nullptr) return a;
      a.series_out = v;
    } else if (arg == "--health-out") {
      const char* v = value(i, "--health-out");
      if (v == nullptr) return a;
      a.health_out = v;
    } else if (arg == "--flight-out") {
      const char* v = value(i, "--flight-out");
      if (v == nullptr) return a;
      a.flight_out = v;
    } else if (arg == "--profile-out") {
      const char* v = value(i, "--profile-out");
      if (v == nullptr) return a;
      a.profile_out = v;
    } else if (arg == "--profile-trace") {
      const char* v = value(i, "--profile-trace");
      if (v == nullptr) return a;
      a.profile_trace = v;
    } else if (arg == "--attack") {
      const char* v = value(i, "--attack");
      if (v == nullptr) return a;
      a.attack = v;
      a.has_attack = true;
    } else if (arg == "--root") {
      a.root = true;
    } else if (arg == "--quota") {
      a.quota = true;
    } else if (arg == "--acl") {
      a.acl = true;
    } else if (arg == "--no-probe") {
      a.no_probe = true;
    } else if (arg == "--csv") {
      a.format = "csv";
    } else if (arg == "--md") {
      a.format = "md";
    } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      a.error = "unknown flag: " + arg;
      return a;
    } else if (a.mode.empty()) {
      a.mode = arg;
    } else {
      // Legacy positional spellings keep working.
      if (arg == "root") {
        a.root = true;
      } else if (arg == "quota") {
        a.quota = true;
      } else if (arg == "acl") {
        a.acl = true;
      } else if (arg == "no-probe") {
        a.no_probe = true;
      } else if (arg == "seed" && i + 1 < argc) {
        a.seed = std::strtoull(argv[++i], nullptr, 10);
        a.has_seed = true;
      } else if (arg == "seeds" && i + 1 < argc) {
        a.seeds = std::atoi(argv[++i]);
      } else {
        bas::Platform p;
        if (!a.has_platform && parse_platform(arg, &p)) {
          a.platform = p;
          a.has_platform = true;
        }
        a.pos.push_back(arg);
      }
    }
  }
  return a;
}

}  // namespace mkbas::core
