#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "bas/scenario.hpp"
#include "core/fabric_run.hpp"
#include "net/topology.hpp"

namespace mkbas::core {

struct CliArgs;  // core/cli.hpp — the CLI front-end over this API

/// Every JSON artifact an experiment can materialize. The CLI maps each
/// kind to an output path; the daemon stores the whole bundle under the
/// request's cell key and serves kinds by name. kProfile/kProfileTrace
/// are host-wall-time diagnostics: they are produced on demand but never
/// cached (a cache must only hold deterministic bytes).
enum class ArtifactKind {
  kSummary = 0,  // --out: the mode's machine-readable summary JSON
  kMetrics,      // --metrics-out
  kTrace,        // --trace-out (Chrome trace events)
  kSpans,        // --trace-spans
  kAudit,        // --audit-out
  kCritical,     // --critical-out
  kSeries,       // --series-out
  kHealth,       // --health-out
  kFlight,       // --flight-out
  kMetricsProm,  // --metrics-prom-out (Prometheus text exposition)
  kProfile,      // --profile-out (campaign pool; never cached)
  kProfileTrace, // --profile-trace (campaign pool; never cached)
};
inline constexpr int kArtifactKinds = 12;

const char* to_string(ArtifactKind k);
bool parse_artifact_kind(const std::string& s, ArtifactKind* out);
bool artifact_is_deterministic(ArtifactKind k);

/// Which artifacts a front-end wants, and (CLI only) where each goes.
/// Replaces the dozen separate `*_out` strings CliArgs used to carry:
/// drivers iterate kinds instead of plumbing one field per file.
struct ArtifactRequest {
  std::array<std::string, kArtifactKinds> path{};  // "" = not requested

  std::string& operator[](ArtifactKind k) {
    return path[static_cast<std::size_t>(k)];
  }
  const std::string& operator[](ArtifactKind k) const {
    return path[static_cast<std::size_t>(k)];
  }
  bool wanted(ArtifactKind k) const { return !(*this)[k].empty(); }
  bool any() const;
  /// Bitmask over ArtifactKind for run_request's materialization set.
  unsigned mask() const;
};

/// Bit helpers for the materialization mask.
inline constexpr unsigned artifact_bit(ArtifactKind k) {
  return 1u << static_cast<unsigned>(k);
}
/// Every deterministic kind (what the daemon materializes and caches).
unsigned all_deterministic_artifacts();

/// The experiment modes the runner exposes. Campaign submodes are
/// first-class: "campaign.matrix" is a different computation than
/// "matrix" (it fans the same cells through the pool and additionally
/// merges artifacts), so it gets its own canonical name.
enum class RequestMode {
  kBenign,
  kAttack,
  kMatrix,
  kFault,
  kFabric,
  kCampaignMatrix,
  kCampaignSweep,
  kCampaignFault,
  kCampaignFabric,
};
inline constexpr int kRequestModes = 9;

const char* to_string(RequestMode m);
bool parse_request_mode(const std::string& s, RequestMode* out);

/// The wire spelling of a platform ("minix"/"sel4"/"linux") — what
/// parse_platform accepts and what canonical JSON must therefore emit.
/// bas::to_string() gives the display label ("MINIX3+ACM") instead.
const char* platform_name(bas::Platform p);

/// The canonical experiment request: one plain value type naming every
/// deterministic input of every runner mode. CLI flags and HTTP bodies
/// are both thin adapters onto this struct, so one request has exactly
/// one canonical JSON rendering and one 64-bit cell key — the unit the
/// content-addressable result cache is keyed by.
///
/// Canonical form: `to_canonical_json()` emits ALL canonical fields,
/// sorted by key, defaults included, numbers in their shortest decimal
/// form. Two requests are the same cell iff their canonical JSON (and
/// therefore their FNV-1a cell key) matches.
///
/// Two members are deliberately NOT canonical:
///  * `jobs` — an execution hint. Every artifact in this repo is
///    --jobs byte-invariant (the campaign determinism gates enforce it),
///    so parallelism must not split the cache.
///  * `artifacts` — where a front-end wants files written is a view
///    concern; the computation is the same.
struct ExperimentRequest {
  RequestMode mode = RequestMode::kBenign;
  bas::Platform platform = bas::Platform::kMinix;
  std::string scenario = "temp";   // registered scenario variant
  std::uint64_t seed = 1;
  int zones = 4;                   // fabric / campaign.fabric
  int seeds = 8;                   // campaign.sweep: sweep width
  net::TopologySpec::Kind topology = net::TopologySpec::Kind::kFlat;
  int floors = 1;
  int buildings = 1;
  net::SyncMode sync = net::SyncMode::kLookahead;
  bool lite = false;               // fabric: gateway-only zones
  std::string attack = "none";     // attack kind, mode-dependent grammar
  bool root = false;               // attack: root privilege
  bool quota = false;              // MINIX syscall quotas
  bool acl = false;                // Linux separate accounts + ACLs
  bool probe = true;               // fault: post-restart spoof probe
  std::string format = "table";    // matrix table rendering: table|csv|md

  // ---- execution hints / front-end concerns (not canonical) ----
  int jobs = 1;
  ArtifactRequest artifacts;

  /// All canonical fields, keys sorted, defaults included.
  std::string to_canonical_json() const;
  /// FNV-1a over to_canonical_json(): the cache cell key.
  std::uint64_t cell_key() const;
  std::string cell_key_hex() const;  // 16 hex digits, the URL form

  /// "" when the request names a runnable experiment; otherwise a
  /// field-level message ("'attack': 'kill' is not a fabric attack...").
  std::string validate() const;
};

/// Strict deserialization of a request body. Unknown fields are errors
/// (with a did-you-mean hint), type mismatches name the field, enum
/// fields name the offending value and the accepted set. Absent fields
/// take the documented defaults; validate() runs last. `jobs` is
/// accepted as an execution hint. Returns false and fills *err on any
/// failure; *out is default-initialized in that case.
bool parse_request_json(const std::string& json, ExperimentRequest* out,
                        std::string* err);

/// The CLI adapter: interpret one parsed flag set as a canonical
/// request. Returns false + *err when the combination does not name a
/// runnable experiment (the caller prints usage).
bool request_from_cli(const CliArgs& a, ExperimentRequest* out,
                      std::string* err);

/// "--attack kill" given "kil": nearest candidate within edit distance 3,
/// rendered as " (did you mean '--attack'?)"; empty when nothing close.
std::string did_you_mean(const std::string& word,
                         const std::vector<std::string>& candidates);

}  // namespace mkbas::core
