#pragma once

#include <string>
#include <vector>

#include "bas/control_law.hpp"
#include "devices/devices.hpp"
#include "sim/trace.hpp"

namespace mkbas::core {

/// Verdict of the physical-safety analysis of one run. Judged on *ground
/// truth* (the plant coupler's history), not on what the controller
/// believed — an attack only counts as a physical compromise when the
/// physical world actually misbehaved (§IV.D's criterion: "the critical
/// processes that impact the physical world are not affected").
struct SafetyReport {
  /// The control process was still emitting samples at the end of the run.
  bool control_alive = false;
  /// True temperature stayed far outside the setpoint band for an
  /// extended period after the system had settled.
  bool temp_excursion = false;
  /// The temperature was continuously out of band for longer than the
  /// alarm timeout (plus slack) yet the alarm stayed off — the paper's
  /// "LED showed everything is normal" failure.
  bool alarm_violation = false;
  /// The alarm sounded while the true temperature was comfortably in band
  /// (nuisance alarm driven by forged sensor data).
  bool spurious_alarm = false;

  double min_temp_c = 0.0;
  double max_temp_c = 0.0;
  sim::Duration out_of_band_total = 0;

  bool physically_compromised() const {
    return !control_alive || temp_excursion || alarm_violation ||
           spurious_alarm;
  }
  std::string summary() const;
};

/// Analyse a run. The setpoint timeline is reconstructed from the
/// controller's accepted "ctl.setpoint" trace events; control liveness
/// from the recency of "ctl.sample" events.
SafetyReport check_safety(const std::vector<devices::PlantSample>& history,
                          const sim::TraceLog& trace,
                          const bas::ControlConfig& cfg, sim::Time run_end,
                          sim::Duration sensor_period = sim::sec(1));

}  // namespace mkbas::core
