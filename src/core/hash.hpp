#pragma once

#include <cstdint>
#include <string>

#include "sim/trace.hpp"

namespace mkbas::core {

/// FNV-1a helpers shared by the campaign engine, the fabric driver,
/// benches and tests.
std::uint64_t fnv1a(const std::string& s,
                    std::uint64_t h = 14695981039346656037ULL);

std::string hex64(std::uint64_t v);

/// FNV-1a over every trace event rendered as text. Renders tag *names*,
/// not interned ids: interning order depends on process-wide first-sight
/// order, which parallel execution must not observe.
std::uint64_t trace_hash(const sim::TraceLog& log);

}  // namespace mkbas::core
