#include "core/safety.hpp"

#include <algorithm>
#include <sstream>

namespace mkbas::core {

namespace {

/// Piecewise-constant setpoint reconstructed from the trace.
class SetpointTimeline {
 public:
  SetpointTimeline(const sim::TraceLog& trace, double initial) {
    steps_.push_back({0, initial});
    // Compare interned ids, not strings: this runs over every trace event.
    const auto tag = sim::TagRegistry::instance().intern("ctl.setpoint");
    for (const auto& ev : trace.events()) {
      if (ev.tag == tag) steps_.push_back({ev.time, ev.value});
    }
  }
  double at(sim::Time t) const {
    double sp = steps_.front().second;
    for (const auto& [when, value] : steps_) {
      if (when > t) break;
      sp = value;
    }
    return sp;
  }
  /// Time of the latest setpoint change at or before t.
  sim::Time last_change_before(sim::Time t) const {
    sim::Time r = 0;
    for (const auto& [when, value] : steps_) {
      if (when > t) break;
      r = when;
    }
    return r;
  }

 private:
  std::vector<std::pair<sim::Time, double>> steps_;
};

}  // namespace

SafetyReport check_safety(const std::vector<devices::PlantSample>& history,
                          const sim::TraceLog& trace,
                          const bas::ControlConfig& cfg, sim::Time run_end,
                          sim::Duration sensor_period) {
  SafetyReport report;
  if (history.empty()) return report;

  // --- control liveness: a sample was emitted close to the end ---
  sim::Time last_sample = -1;
  const auto sample_tag = sim::TagRegistry::instance().intern("ctl.sample");
  for (const auto& ev : trace.events()) {
    if (ev.tag == sample_tag) last_sample = ev.time;
  }
  report.control_alive =
      last_sample >= 0 && (run_end - last_sample) <= 5 * sensor_period;

  const SetpointTimeline setpoints(trace, cfg.initial_setpoint_c);

  // Detection margins: generous enough that sensor noise and command
  // latency can never trip them, tight enough that real attacks do.
  const double kExcursionMargin = 1.0;           // beyond the alarm band
  const sim::Duration kExcursionHold = sim::minutes(3);
  const sim::Duration kAlarmSlack = sim::minutes(1);
  const sim::Duration kSpuriousHold = sim::minutes(2);
  const sim::Duration kSettleAllowance = sim::minutes(8);  // after change

  report.min_temp_c = history.front().true_temp_c;
  report.max_temp_c = history.front().true_temp_c;

  // The alarm check requires being out of band *by a margin*: the
  // controller decides on measured (noisy, quantised) temperature, so at
  // the exact band edge true and measured classifications legitimately
  // disagree.
  const double kAlarmMargin = 0.3;

  sim::Time out_since = -1;       // continuous out-of-band (accounting)
  sim::Time out_hard_since = -1;  // out-of-band by margin (alarm check)
  sim::Time far_out_since = -1;   // continuous far-out-of-band
  sim::Time in_band_alarm_since = -1;  // alarm on while in band
  sim::Time prev_t = history.front().time;

  for (const auto& s : history) {
    report.min_temp_c = std::min(report.min_temp_c, s.true_temp_c);
    report.max_temp_c = std::max(report.max_temp_c, s.true_temp_c);
    const double sp = setpoints.at(s.time);
    const double dev = std::abs(s.true_temp_c - sp);
    const bool out = dev > cfg.alarm_tolerance_c;
    const bool far_out = dev > cfg.alarm_tolerance_c + kExcursionMargin;
    const sim::Time since_change = s.time - setpoints.last_change_before(s.time);
    // Settling exemption covers both boot (change at t=0) and operator
    // setpoint steps: the plant legitimately spends time out of band
    // while slewing to a new target.
    const bool settling = since_change < kSettleAllowance;

    if (out) {
      if (out_since < 0) out_since = s.time;
      report.out_of_band_total += s.time - prev_t;
    } else {
      out_since = -1;
    }
    // Alarm property: continuously out of band (by margin) past
    // timeout + slack means the alarm must be on.
    if (dev > cfg.alarm_tolerance_c + kAlarmMargin) {
      if (out_hard_since < 0) out_hard_since = s.time;
      if (!settling &&
          s.time - out_hard_since > cfg.alarm_timeout + kAlarmSlack &&
          !s.alarm_on) {
        report.alarm_violation = true;
      }
    } else {
      out_hard_since = -1;
    }

    if (far_out && !settling) {
      if (far_out_since < 0) far_out_since = s.time;
      if (s.time - far_out_since > kExcursionHold) {
        report.temp_excursion = true;
      }
    } else {
      far_out_since = -1;
    }

    // Spurious alarm: alarm on while comfortably inside the band.
    const bool comfortably_in = dev < cfg.alarm_tolerance_c - 0.3;
    if (s.alarm_on && comfortably_in) {
      if (in_band_alarm_since < 0) in_band_alarm_since = s.time;
      if (s.time - in_band_alarm_since > kSpuriousHold) {
        report.spurious_alarm = true;
      }
    } else {
      in_band_alarm_since = -1;
    }
    prev_t = s.time;
  }
  return report;
}

std::string SafetyReport::summary() const {
  std::ostringstream os;
  os << (physically_compromised() ? "COMPROMISED" : "safe") << " [";
  os << (control_alive ? "ctl-alive" : "CTL-DEAD");
  if (temp_excursion) os << ", TEMP-EXCURSION";
  if (alarm_violation) os << ", ALARM-SILENCED";
  if (spurious_alarm) os << ", SPURIOUS-ALARM";
  char buf[64];
  std::snprintf(buf, sizeof buf, ", temp %.1f..%.1fC", min_temp_c,
                max_temp_c);
  os << buf << "]";
  return os.str();
}

}  // namespace mkbas::core
