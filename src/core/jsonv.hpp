#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mkbas::core {

/// A parsed JSON value. The repo's exporters only ever *emit* JSON (by
/// string concatenation, sorted keys); the experiment-request API is the
/// first consumer that must *read* it — strictly, with positions good
/// enough for field-level error messages. This is a small recursive-
/// descent parser over a plain value type; no allocator tricks, it runs
/// once per HTTP request, never on the simulation hot path.
struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool boolean = false;
  /// Numbers keep both the parsed double and the raw token (`text`), so
  /// 64-bit seeds round-trip exactly instead of through a double.
  double number = 0.0;
  std::string text;  // string value, or the raw number token
  std::vector<std::pair<std::string, Json>> members;  // object, input order
  std::vector<Json> items;                            // array

  bool is_object() const { return kind == Kind::kObject; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_bool() const { return kind == Kind::kBool; }

  /// Object member lookup (first match); nullptr when absent.
  const Json* find(const std::string& key) const;

  /// The raw token is a non-negative integer that fits in 64 bits.
  bool is_u64() const;
  std::uint64_t as_u64() const;  // only valid when is_u64()
};

/// Parse exactly one JSON value (surrounding whitespace allowed; anything
/// after it is an error). Returns false and fills *err — with a byte
/// offset — on malformed input. Strictness notes: no comments, no
/// trailing commas, no NaN/Infinity, duplicate object keys rejected.
bool json_parse(const std::string& in, Json* out, std::string* err);

const char* to_string(Json::Kind k);

}  // namespace mkbas::core
