#include "core/request.hpp"

#include <algorithm>
#include <climits>
#include <vector>

#include "core/cli.hpp"
#include "core/hash.hpp"
#include "core/jsonv.hpp"
#include "obs/json.hpp"

namespace mkbas::core {

namespace {

const char* const kArtifactNames[kArtifactKinds] = {
    "summary", "metrics", "trace",        "spans",   "audit",
    "critical", "series", "health",       "flight",  "metrics_prom",
    "profile",  "profile_trace"};

const char* const kModeNames[kRequestModes] = {
    "benign",          "attack",         "matrix",
    "fault",           "fabric",         "campaign.matrix",
    "campaign.sweep",  "campaign.fault", "campaign.fabric"};

const char* sync_name(net::SyncMode m) {
  return m == net::SyncMode::kEpoch ? "epoch" : "lookahead";
}

bool parse_sync(const std::string& s, net::SyncMode* out) {
  if (s == "lookahead") {
    *out = net::SyncMode::kLookahead;
  } else if (s == "epoch") {
    *out = net::SyncMode::kEpoch;
  } else {
    return false;
  }
  return true;
}

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = up;
    }
  }
  return row[b.size()];
}

}  // namespace

std::string did_you_mean(const std::string& word,
                         const std::vector<std::string>& candidates) {
  std::size_t best = 4;  // suggestions beyond edit distance 3 mislead
  const std::string* pick = nullptr;
  for (const auto& c : candidates) {
    const std::size_t d = edit_distance(word, c);
    if (d < best && d < std::max<std::size_t>(c.size(), 1)) {
      best = d;
      pick = &c;
    }
  }
  if (pick == nullptr) return "";
  return " (did you mean '" + *pick + "'?)";
}

const char* to_string(ArtifactKind k) {
  return kArtifactNames[static_cast<int>(k)];
}

bool parse_artifact_kind(const std::string& s, ArtifactKind* out) {
  for (int i = 0; i < kArtifactKinds; ++i) {
    if (s == kArtifactNames[i]) {
      *out = static_cast<ArtifactKind>(i);
      return true;
    }
  }
  return false;
}

bool artifact_is_deterministic(ArtifactKind k) {
  return k != ArtifactKind::kProfile && k != ArtifactKind::kProfileTrace;
}

bool ArtifactRequest::any() const {
  for (const auto& p : path) {
    if (!p.empty()) return true;
  }
  return false;
}

unsigned ArtifactRequest::mask() const {
  unsigned m = 0;
  for (int i = 0; i < kArtifactKinds; ++i) {
    if (!path[static_cast<std::size_t>(i)].empty()) m |= 1u << i;
  }
  return m;
}

unsigned all_deterministic_artifacts() {
  unsigned m = 0;
  for (int i = 0; i < kArtifactKinds; ++i) {
    if (artifact_is_deterministic(static_cast<ArtifactKind>(i))) m |= 1u << i;
  }
  return m;
}

const char* to_string(RequestMode m) {
  return kModeNames[static_cast<int>(m)];
}

const char* platform_name(bas::Platform p) {
  switch (p) {
    case bas::Platform::kMinix: return "minix";
    case bas::Platform::kSel4: return "sel4";
    case bas::Platform::kLinux: return "linux";
  }
  return "minix";
}

bool parse_request_mode(const std::string& s, RequestMode* out) {
  for (int i = 0; i < kRequestModes; ++i) {
    if (s == kModeNames[i]) {
      *out = static_cast<RequestMode>(i);
      return true;
    }
  }
  return false;
}

std::string ExperimentRequest::to_canonical_json() const {
  // Keys in sorted order, every canonical field present. The bytes of
  // this rendering ARE the cache identity — change it only with a
  // schema_version bump and a migration story for stored keys.
  std::string s = "{";
  s += "\"acl\":" + std::string(acl ? "true" : "false");
  s += ",\"attack\":\"" + obs::json_escape(attack) + "\"";
  s += ",\"buildings\":" + std::to_string(buildings);
  s += ",\"floors\":" + std::to_string(floors);
  s += ",\"format\":\"" + obs::json_escape(format) + "\"";
  s += ",\"lite\":" + std::string(lite ? "true" : "false");
  s += ",\"mode\":\"" + std::string(to_string(mode)) + "\"";
  s += ",\"platform\":\"" + std::string(platform_name(platform)) + "\"";
  s += ",\"probe\":" + std::string(probe ? "true" : "false");
  s += ",\"quota\":" + std::string(quota ? "true" : "false");
  s += ",\"root\":" + std::string(root ? "true" : "false");
  s += ",\"scenario\":\"" + obs::json_escape(scenario) + "\"";
  s += ",\"seed\":" + std::to_string(seed);
  s += ",\"seeds\":" + std::to_string(seeds);
  s += ",\"sync\":\"" + std::string(sync_name(sync)) + "\"";
  s += ",\"topology\":\"" + std::string(net::to_string(topology)) + "\"";
  s += ",\"zones\":" + std::to_string(zones);
  s += "}";
  return s;
}

std::uint64_t ExperimentRequest::cell_key() const {
  return fnv1a(to_canonical_json());
}

std::string ExperimentRequest::cell_key_hex() const {
  return hex64(cell_key());
}

std::string ExperimentRequest::validate() const {
  if (scenario.empty()) return "'scenario': must not be empty";
  if (zones < 1) return "'zones': must be >= 1";
  if (seeds < 1) return "'seeds': must be >= 1";
  if (floors < 1) return "'floors': must be >= 1";
  if (buildings < 1) return "'buildings': must be >= 1";
  if (jobs < 1) return "'jobs': must be >= 1";
  if (format != "table" && format != "csv" && format != "md") {
    return "'format': unknown value '" + format + "' (expected table|csv|md)";
  }
  switch (mode) {
    case RequestMode::kAttack: {
      attack::AttackKind k;
      if (!parse_attack_kind(attack, &k)) {
        return "'attack': unknown value '" + attack +
               "' (expected spoof-sensor|spoof-actuator|kill|fork-bomb|"
               "brute-force|flood)" +
               did_you_mean(attack,
                            {"spoof-sensor", "spoof-actuator", "kill",
                             "fork-bomb", "brute-force", "flood"});
      }
      break;
    }
    case RequestMode::kFabric:
    case RequestMode::kCampaignFabric: {
      FabricAttack f;
      if (!parse_fabric_attack(attack, &f)) {
        return "'attack': unknown value '" + attack +
               "' (expected none|spoof-write|replay|flood)" +
               did_you_mean(attack, {"none", "spoof-write", "replay",
                                     "flood"});
      }
      break;
    }
    default:
      if (attack != "none") {
        return std::string("'attack': mode '") + to_string(mode) +
               "' does not take an attack";
      }
      break;
  }
  return "";
}

namespace {

std::vector<std::string> request_field_names() {
  return {"acl",      "attack", "buildings", "floors", "format", "jobs",
          "lite",     "mode",   "platform",  "probe",  "quota",  "root",
          "scenario", "seed",   "seeds",     "sync",   "topology", "zones"};
}

bool want_bool(const std::string& key, const Json& v, bool* out,
               std::string* err) {
  if (!v.is_bool()) {
    *err = "'" + key + "': expected boolean, got " + to_string(v.kind);
    return false;
  }
  *out = v.boolean;
  return true;
}

bool want_string(const std::string& key, const Json& v, std::string* out,
                 std::string* err) {
  if (!v.is_string()) {
    *err = "'" + key + "': expected string, got " + to_string(v.kind);
    return false;
  }
  *out = v.text;
  return true;
}

bool want_int(const std::string& key, const Json& v, int* out,
              std::string* err) {
  if (!v.is_number() || !v.is_u64() || v.as_u64() > INT_MAX) {
    *err = "'" + key + "': expected a non-negative integer";
    return false;
  }
  *out = static_cast<int>(v.as_u64());
  return true;
}

}  // namespace

bool parse_request_json(const std::string& json, ExperimentRequest* out,
                        std::string* err) {
  *out = ExperimentRequest{};
  Json root;
  if (!json_parse(json, &root, err)) return false;
  if (!root.is_object()) {
    *err = std::string("request must be a JSON object, got ") +
           to_string(root.kind);
    return false;
  }
  ExperimentRequest r;
  for (const auto& [key, v] : root.members) {
    if (key == "mode") {
      std::string s;
      if (!want_string(key, v, &s, err)) return false;
      if (!parse_request_mode(s, &r.mode)) {
        *err = "'mode': unknown value '" + s + "'" +
               did_you_mean(s, std::vector<std::string>(
                                   kModeNames, kModeNames + kRequestModes));
        return false;
      }
    } else if (key == "platform") {
      std::string s;
      if (!want_string(key, v, &s, err)) return false;
      if (!parse_platform(s, &r.platform)) {
        *err = "'platform': unknown value '" + s +
               "' (expected minix|sel4|linux)" +
               did_you_mean(s, {"minix", "sel4", "linux"});
        return false;
      }
    } else if (key == "scenario") {
      if (!want_string(key, v, &r.scenario, err)) return false;
    } else if (key == "seed") {
      if (!v.is_number() || !v.is_u64()) {
        *err = "'seed': expected a non-negative integer";
        return false;
      }
      r.seed = v.as_u64();
    } else if (key == "zones") {
      if (!want_int(key, v, &r.zones, err)) return false;
    } else if (key == "seeds") {
      if (!want_int(key, v, &r.seeds, err)) return false;
    } else if (key == "floors") {
      if (!want_int(key, v, &r.floors, err)) return false;
    } else if (key == "buildings") {
      if (!want_int(key, v, &r.buildings, err)) return false;
    } else if (key == "jobs") {
      if (!want_int(key, v, &r.jobs, err)) return false;
    } else if (key == "topology") {
      std::string s;
      if (!want_string(key, v, &s, err)) return false;
      if (!net::parse_topology_kind(s, &r.topology)) {
        *err = "'topology': unknown value '" + s +
               "' (expected flat|line|star|tree|campus)" +
               did_you_mean(s, {"flat", "line", "star", "tree", "campus"});
        return false;
      }
    } else if (key == "sync") {
      std::string s;
      if (!want_string(key, v, &s, err)) return false;
      if (!parse_sync(s, &r.sync)) {
        *err = "'sync': unknown value '" + s +
               "' (expected lookahead|epoch)" +
               did_you_mean(s, {"lookahead", "epoch"});
        return false;
      }
    } else if (key == "lite") {
      if (!want_bool(key, v, &r.lite, err)) return false;
    } else if (key == "attack") {
      if (!want_string(key, v, &r.attack, err)) return false;
    } else if (key == "root") {
      if (!want_bool(key, v, &r.root, err)) return false;
    } else if (key == "quota") {
      if (!want_bool(key, v, &r.quota, err)) return false;
    } else if (key == "acl") {
      if (!want_bool(key, v, &r.acl, err)) return false;
    } else if (key == "probe") {
      if (!want_bool(key, v, &r.probe, err)) return false;
    } else if (key == "format") {
      if (!want_string(key, v, &r.format, err)) return false;
    } else {
      *err = "unknown field '" + key + "'" +
             did_you_mean(key, request_field_names());
      return false;
    }
  }
  const std::string bad = r.validate();
  if (!bad.empty()) {
    *err = bad;
    return false;
  }
  *out = r;
  return true;
}

bool request_from_cli(const CliArgs& a, ExperimentRequest* out,
                      std::string* err) {
  *out = ExperimentRequest{};
  ExperimentRequest r;
  err->clear();

  const std::string& mode = a.mode;
  if (mode == "benign") {
    r.mode = RequestMode::kBenign;
  } else if (mode == "attack") {
    r.mode = RequestMode::kAttack;
  } else if (mode == "matrix") {
    r.mode = RequestMode::kMatrix;
  } else if (mode == "fault") {
    r.mode = RequestMode::kFault;
  } else if (mode == "fabric") {
    r.mode = RequestMode::kFabric;
  } else if (mode == "campaign") {
    if (a.pos.empty()) {
      *err = "campaign needs a submode: campaign <matrix|sweep|fault|fabric>";
      return false;
    }
    const std::string& what = a.pos[0];
    if (what == "matrix") {
      r.mode = RequestMode::kCampaignMatrix;
    } else if (what == "sweep") {
      r.mode = RequestMode::kCampaignSweep;
    } else if (what == "fault") {
      r.mode = RequestMode::kCampaignFault;
    } else if (what == "fabric") {
      r.mode = RequestMode::kCampaignFabric;
    } else {
      *err = "unknown campaign submode '" + what + "'" +
             did_you_mean(what, {"matrix", "sweep", "fault", "fabric"});
      return false;
    }
  } else {
    *err = "unknown mode '" + mode + "'" +
           did_you_mean(mode, {"benign", "attack", "matrix", "fault",
                               "fabric", "campaign", "serve"});
    return false;
  }

  const bool needs_platform = r.mode == RequestMode::kBenign ||
                              r.mode == RequestMode::kAttack ||
                              r.mode == RequestMode::kFault ||
                              r.mode == RequestMode::kCampaignSweep;
  if (needs_platform && !a.has_platform) {
    *err = std::string("mode '") + to_string(r.mode) +
           "' needs --platform <minix|sel4|linux>";
    return false;
  }
  r.platform = a.platform;
  r.scenario = a.scenario;
  r.seed = a.seed;
  // The reference fault campaign historically pins seed 42; an explicit
  // --seed now overrides it instead of being silently dropped.
  if (r.mode == RequestMode::kCampaignFault && !a.has_seed) r.seed = 42;
  r.zones = a.zones;
  r.seeds = a.seeds;
  r.topology = a.topology;
  r.floors = a.floors;
  r.buildings = a.buildings;
  r.sync = a.sync;
  r.lite = a.lite;
  r.root = a.root;
  r.quota = a.quota;
  r.acl = a.acl;
  r.probe = !a.no_probe;
  r.format = a.format.empty() ? "table" : a.format;
  r.jobs = a.jobs;
  r.artifacts = a.artifacts;

  if (r.mode == RequestMode::kAttack) {
    if (!a.has_attack) {
      *err = "mode 'attack' needs --attack "
             "<spoof-sensor|spoof-actuator|kill|fork-bomb|brute-force|"
             "flood>";
      return false;
    }
    r.attack = a.attack;
  } else if (r.mode == RequestMode::kFabric ||
             r.mode == RequestMode::kCampaignFabric) {
    if (a.has_attack) r.attack = a.attack;
  } else if (a.has_attack) {
    *err = std::string("mode '") + to_string(r.mode) +
           "' does not take --attack";
    return false;
  }

  const std::string bad = r.validate();
  if (!bad.empty()) {
    *err = bad;
    return false;
  }
  *out = r;
  return true;
}

}  // namespace mkbas::core
