#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attack/attacks.hpp"
#include "core/fabric_run.hpp"
#include "core/request.hpp"

namespace mkbas::core {

/// The one flag grammar every experiment_runner subcommand shares:
///
///   --platform <minix|sel4|linux>   --scenario <temp|uds|bsl3>
///   --seed N   --zones N   --jobs N   --seeds N
///   --topology <flat|tree|campus>  --floors N  --buildings N
///   --sync <lookahead|epoch>  --lite
///   --out FILE --metrics-out FILE --trace-out FILE
///   --trace-spans FILE --audit-out FILE --critical-out FILE
///   --series-out FILE --health-out FILE --flight-out FILE
///   --metrics-prom-out FILE --profile-out FILE --profile-trace FILE
///   --attack <name>  --root --quota --acl --no-probe --csv --md
///   --port N --batch N --slow-ms N --store-cap N --no-trace  (serve mode)
///
/// Every option is a flag: positionals beyond the mode (and the
/// campaign submode) are passed through in `pos` untouched, and unknown
/// flags — single- or double-dash — are parse errors with a
/// did-you-mean hint. The legacy positional spellings ("root",
/// "seed N", bare platform names) are gone; spell them as flags.
struct CliArgs {
  std::string mode;                // first positional ("benign", ...)
  std::vector<std::string> pos;    // remaining positionals, in order

  bool has_platform = false;
  bas::Platform platform = bas::Platform::kMinix;
  std::string scenario = "temp";
  std::uint64_t seed = 1;
  bool has_seed = false;
  int zones = 4;
  int jobs = 1;
  int seeds = 8;
  /// Fabric layout (--topology flat|tree|campus; line/star exist for
  /// the sync battery but make little sense from the CLI).
  net::TopologySpec::Kind topology = net::TopologySpec::Kind::kFlat;
  int floors = 1;      // --floors: floor head-ends per building
  int buildings = 1;   // --buildings: independent buildings (campus)
  /// --sync lookahead|epoch: conservative sync engine selection.
  net::SyncMode sync = net::SyncMode::kLookahead;
  bool lite = false;   // --lite: gateway-only zones (city scale)
  /// Requested artifact exports, one path slot per ArtifactKind —
  /// replaces the dozen separate `*_out` string fields. --out fills
  /// kSummary, --metrics-out kMetrics, and so on.
  ArtifactRequest artifacts;
  bool has_attack = false;
  std::string attack;              // raw --attack value
  bool root = false;
  bool quota = false;
  bool acl = false;
  bool no_probe = false;
  std::string format;              // "", "csv" or "md"
  int port = 8080;                 // --port: serve listen port (0 = any)
  int batch = 8;                   // --batch: serve max cells per batch
  /// --slow-ms: serve slow-request forensics threshold (0 = snapshot
  /// every request; useful under test).
  int slow_ms = 250;
  /// --store-cap: serve result-store cell bound (0 = unbounded).
  int store_cap = 0;
  /// --no-trace: disable serve request tracing + SSE event publication.
  bool no_trace = false;

  /// Non-empty when parsing failed; the caller prints usage.
  std::string error;
};

CliArgs parse_cli(int argc, char** argv);

bool parse_platform(const std::string& s, bas::Platform* out);
bool parse_attack_kind(const std::string& s, attack::AttackKind* out);
bool parse_fabric_attack(const std::string& s, FabricAttack* out);

}  // namespace mkbas::core
