#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attack/attacks.hpp"
#include "core/fabric_run.hpp"

namespace mkbas::core {

/// The one flag grammar every experiment_runner subcommand shares:
///
///   --platform <minix|sel4|linux>   --scenario <temp|uds|bsl3>
///   --seed N   --zones N   --jobs N   --seeds N
///   --topology <flat|tree|campus>  --floors N  --buildings N
///   --sync <lookahead|epoch>  --lite
///   --out FILE --metrics-out FILE --trace-out FILE
///   --trace-spans FILE --audit-out FILE --critical-out FILE
///   --series-out FILE --health-out FILE --flight-out FILE
///   --profile-out FILE --profile-trace FILE
///   --attack <name>  --root --quota --acl --no-probe --csv --md
///
/// Legacy positional spellings (platform names, "root", "seed N", ...)
/// still parse: they land in `pos` for the subcommand to interpret, and
/// a positional platform name also fills `platform` so new code can
/// ignore the distinction.
struct CliArgs {
  std::string mode;                // first positional ("benign", ...)
  std::vector<std::string> pos;    // remaining positionals, in order

  bool has_platform = false;
  bas::Platform platform = bas::Platform::kMinix;
  std::string scenario = "temp";
  std::uint64_t seed = 1;
  bool has_seed = false;
  int zones = 4;
  int jobs = 1;
  int seeds = 8;
  /// Fabric layout (--topology flat|tree|campus; line/star exist for
  /// the sync battery but make little sense from the CLI).
  net::TopologySpec::Kind topology = net::TopologySpec::Kind::kFlat;
  int floors = 1;      // --floors: floor head-ends per building
  int buildings = 1;   // --buildings: independent buildings (campus)
  /// --sync lookahead|epoch: conservative sync engine selection.
  net::SyncMode sync = net::SyncMode::kLookahead;
  bool lite = false;   // --lite: gateway-only zones (city scale)
  std::string out;
  std::string metrics_out;
  std::string trace_out;
  std::string spans_out;     // --trace-spans: causal span store JSON
  std::string audit_out;     // --audit-out: security audit journal JSON
  std::string critical_out;  // --critical-out: critical-path analysis JSON
  std::string series_out;    // --series-out: windowed time-series JSON
  std::string health_out;    // --health-out: health events/scores JSON
  std::string flight_out;    // --flight-out: flight-recorder snapshots
  std::string profile_out;   // --profile-out: campaign pool profile JSON
  std::string profile_trace; // --profile-trace: pool profile, Perfetto lanes
  bool has_attack = false;
  std::string attack;              // raw --attack value
  bool root = false;
  bool quota = false;
  bool acl = false;
  bool no_probe = false;
  std::string format;              // "", "csv" or "md"

  /// Non-empty when parsing failed; the caller prints usage.
  std::string error;
};

CliArgs parse_cli(int argc, char** argv);

bool parse_platform(const std::string& s, bas::Platform* out);
bool parse_attack_kind(const std::string& s, attack::AttackKind* out);
bool parse_fabric_attack(const std::string& s, FabricAttack* out);

}  // namespace mkbas::core
