#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bas/scenario.hpp"
#include "net/fabric.hpp"

namespace mkbas::core {

/// Network-level attacks mounted from a compromised zone controller —
/// the cross-controller ports of the paper's §IV.D vocabulary onto the
/// building fabric.
enum class FabricAttack {
  kNone,
  kSpoofWrite,  // forged WriteProperty to every other zone's setpoint
  kReplay,      // re-post captured operator datagrams verbatim
  kFlood,       // saturate the head-end's inbox (DoS)
};

const char* to_string(FabricAttack a);

/// One N-zone building: a supervisory head-end (fabric node 0) plus
/// `zones` zone controllers, each a full scenario on its own machine.
struct FabricOptions {
  int zones = 4;
  std::uint64_t seed = 1;
  sim::Duration duration = sim::minutes(30);
  /// Zone platforms cycle through this list (zone i -> mix[i % size]).
  /// The default mix puts the Linux baseline next to both microkernels so
  /// every run shows the contrast.
  std::vector<bas::Platform> mix = {bas::Platform::kLinux,
                                    bas::Platform::kMinix,
                                    bas::Platform::kSel4};
  FabricAttack attack = FabricAttack::kNone;
  sim::Time attack_at = sim::minutes(10);
  net::LinkProfile link{};
  std::vector<net::PartitionWindow> partitions;
  bas::ScenarioConfig scenario{};
  /// Fabric layout. kFlat keeps the legacy single segment (head-end on
  /// node 0, every zone one hop away). kTree/kCampus build the
  /// hierarchical supervisory plane — zones -> floor head-ends ->
  /// building head-end — with COV traffic batched and averaged at each
  /// tier and a one-way management downlink for setpoint writes.
  net::TopologySpec::Kind topology = net::TopologySpec::Kind::kFlat;
  int floors = 1;     // floor head-ends per building (tree/campus)
  int buildings = 1;  // independent buildings (campus)
  /// Conservative lookahead sync (default) or the legacy lockstep
  /// barrier — byte-identical exports either way.
  net::SyncMode sync = net::SyncMode::kLookahead;
  /// Shard independent buildings across this many pool workers.
  /// Exports are --jobs invariant.
  int jobs = 1;
  /// Gateway-only zones: deterministic synthetic temperatures instead
  /// of a full kernel scenario per zone — the only way 10k zones fit.
  bool lite_zones = false;
  /// Attacker-visible packet capture (Fabric::sent_log); the replay
  /// attack needs it, city-scale benchmarks turn it off.
  bool capture = true;
  /// Fabric-level trace events (fabric.deliver / fabric.drop).
  bool net_trace = true;
  /// Merge per-node artifacts (metrics/spans/series/health/flight JSON)
  /// into the result. Off: scalar fields still populate, the JSON
  /// fields stay empty — city runs skip the 10k-registry merge.
  bool collect = true;
  /// Floor head-ends push their zone-average upstream at this period.
  sim::Duration floor_flush = sim::minutes(1);
  /// Causal span tracing + audit journal (off = the A/B baseline arm).
  bool trace_spans = true;
  /// Ring-buffer capacity for each node's span store; 0 = unbounded.
  std::size_t span_capacity = 0;
  /// Fires before teardown, with every machine still alive.
  std::function<void(net::Fabric&)> observe;
};

/// Per-zone outcome row of the cross-controller attack matrix.
struct FabricZoneRow {
  int zone = 0;
  bas::Platform platform = bas::Platform::kLinux;
  std::string label;      // platform name, "+proxy" when BACnet-guarded
  bool proxied = false;   // microkernel zones sit behind the secure proxy
  /// The attacker's forged value reached the zone controller.
  bool attack_delivered = false;
  double final_setpoint_c = 0.0;
  double final_temp_c = 0.0;
  std::uint64_t proxy_rejected_tag = 0;
  std::uint64_t proxy_rejected_replay = 0;
};

struct FabricRunResult {
  int zones = 0;
  FabricAttack attack = FabricAttack::kNone;
  std::string topology;  // layout name ("flat", "tree", "campus", ...)
  int nodes = 0;         // fabric nodes (head-ends + zones)
  std::vector<FabricZoneRow> rows;  // zone order
  std::uint64_t posted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t drop_loss = 0;
  std::uint64_t drop_partition = 0;
  std::uint64_t drop_overflow = 0;
  std::uint64_t drop_unroutable = 0;
  /// Datagrams still in flight at teardown (conservation check:
  /// posted == delivered + drops + pending).
  std::uint64_t pending = 0;
  /// Deliveries that landed in a node's past — 0 or the sync is broken.
  std::uint64_t causality_violations = 0;
  /// Zone COV samples absorbed (batched) by floor head-ends.
  std::uint64_t floor_covs = 0;
  std::uint64_t cov_count = 0;
  /// p99 end-to-end COV latency, microseconds of virtual time (bucket
  /// upper bound; 0 when no COV arrived).
  double cov_p99_us = 0.0;
  /// Node registries merged in node order.
  std::string metrics_json;
  /// FNV-1a chain over per-node trace hashes, in node order.
  std::uint64_t trace_hash = 0;
  /// Node span stores / audit journals merged in node order (empty JSON
  /// skeletons when opts.trace_spans is off).
  std::string spans_json;
  std::string audit_json;
  /// Telemetry critical path over the merged store: every COV sample's
  /// sensor.sample -> net.link chain decomposed per hop.
  std::string critical_path_json;
  /// Mean end-to-end telemetry latency from the critical path (leaf.end
  /// - root.start averaged over complete chains); 0 when none.
  double sample_e2e_mean_us = 0.0;
  /// Windowed time-series, health events and flight-recorder snapshots
  /// merged in node order (empty skeletons when opts.trace_spans is
  /// off). Health detectors are flushed at opts.duration before the
  /// per-zone verdicts are journaled, so an attack that trips a detector
  /// is visible in the audit journal ahead of its verdict row.
  std::string series_json;
  std::string health_json;
  std::string flight_json;
  /// Kept health events across all nodes (suppressed firings excluded).
  std::uint64_t health_events = 0;
};

/// Build the building, run it, and judge every zone. Deterministic: the
/// result (including metrics_json and trace_hash) is a pure function of
/// opts. Zone machine seeds derive from opts.seed, so one `--seed` value
/// names the whole building's randomness.
FabricRunResult run_fabric(const FabricOptions& opts = {});

/// Aligned text table over the zone rows (the cross-controller attack
/// matrix of EXPERIMENTS.md §H).
std::string format_fabric_table(const FabricRunResult& r);

}  // namespace mkbas::core
