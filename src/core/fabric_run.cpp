#include "core/fabric_run.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "core/hash.hpp"

namespace mkbas::core {

const char* to_string(FabricAttack a) {
  switch (a) {
    case FabricAttack::kNone:
      return "none";
    case FabricAttack::kSpoofWrite:
      return "spoof-write";
    case FabricAttack::kReplay:
      return "replay";
    case FabricAttack::kFlood:
      return "flood";
  }
  return "?";
}

namespace {

constexpr std::uint32_t kConsoleId = 1;
constexpr std::uint32_t kZoneIdBase = 100;
constexpr double kSpoofSetpointC = 35.0;
constexpr std::uint32_t kFloodSrcId = 66;  // deliberately unattached
constexpr sim::Duration kFloodWindow = sim::sec(30);

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  // splitmix64 over the xor — enough to decorrelate derived seeds.
  std::uint64_t x = a ^ (b * 0x9e3779b97f4a7c15ULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Wires a zone's BACnet gateway device to the zone controller: writes to
/// "zone.setpoint" become HTTP POSTs against the controller's web
/// interface, reads of "zone.temp" serve the live room temperature.
class ZoneGateway : public net::PropertyHandler {
 public:
  ZoneGateway(sim::Machine& machine, bas::Scenario& scenario)
      : machine_(machine), scenario_(scenario) {}

  bool write(net::BacnetDevice&, const std::string& prop,
             double v) override {
    if (prop == "zone.setpoint") {
      char body[48];
      std::snprintf(body, sizeof body, "value=%.1f", v);
      scenario_.http().submit(machine_.now(), {"POST", "/setpoint", body});
    }
    return true;  // BACnet itself never vetoes; the proxy layer does
  }

  bool read(net::BacnetDevice&, const std::string& prop,
            double* value) override {
    if (prop != "zone.temp" || scenario_.plant() == nullptr) return false;
    *value = scenario_.plant()->room.temperature_c();
    return true;
  }

 private:
  sim::Machine& machine_;
  bas::Scenario& scenario_;
};

/// p99 as the upper bound of the bucket where the cumulative count
/// crosses 99% (the conventional histogram-quantile estimate).
double histogram_p99(const obs::Histogram& h) {
  const std::uint64_t total = h.count();
  if (total == 0) return 0.0;
  const std::uint64_t target = (total * 99 + 99) / 100;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < h.bounds().size(); ++i) {
    cum += h.bucket_count(i);
    if (cum >= target) return h.bounds()[i];
  }
  return h.bounds().empty() ? 0.0 : h.bounds().back();
}

}  // namespace

FabricRunResult run_fabric(const FabricOptions& opts) {
  if (opts.zones < 1) throw std::invalid_argument("run_fabric: zones < 1");
  if (opts.mix.empty()) throw std::invalid_argument("run_fabric: empty mix");

  FabricRunResult res;
  res.zones = opts.zones;
  res.attack = opts.attack;

  net::Fabric fabric(opts.seed);
  fabric.set_default_link(opts.link);
  for (const net::PartitionWindow& w : opts.partitions) {
    fabric.add_partition(w);
  }

  auto& tags = sim::TagRegistry::instance();
  const std::uint32_t tag_sample = tags.intern("sensor.sample");
  const std::uint32_t tag_op_write = tags.intern("op.setpoint");
  const std::uint32_t tag_subscribe = tags.intern("head.subscribe");
  const std::uint32_t tag_attack =
      tags.intern(std::string("attack.") + to_string(opts.attack));

  auto configure_node = [&opts](sim::Machine& m) {
    m.spans().set_enabled(opts.trace_spans);
    m.audit().set_enabled(opts.trace_spans);
    m.spans().set_capacity(opts.span_capacity);
    // The series/health/flight stack rides the same observability knob:
    // the trace-off arm stays the clean A/B baseline.
    m.series().set_enabled(opts.trace_spans);
    m.health().set_enabled(opts.trace_spans);
    m.flight().set_enabled(opts.trace_spans);
  };

  // Node 0: the supervisory head-end. Zone z lives on node z + 1.
  fabric.add_node(mix64(opts.seed, 0));
  configure_node(fabric.machine(0));
  net::BacnetDevice console(kConsoleId, "head-end");
  fabric.attach(0, console);

  struct Zone {
    bas::Platform platform;
    bool proxied;
    std::uint64_t key;
    std::unique_ptr<bas::Scenario> scenario;
    std::unique_ptr<ZoneGateway> handler;
    std::unique_ptr<net::BacnetDevice> gateway;
    std::unique_ptr<net::SecureProxy> proxy;
    std::uint64_t op_sequence = 0;
  };
  std::vector<Zone> zones(opts.zones);

  for (int z = 0; z < opts.zones; ++z) {
    Zone& zone = zones[z];
    zone.platform = opts.mix[z % opts.mix.size()];
    // The paper's framework hardens the microkernel controllers end to
    // end: kernel-level isolation inside the box, the Fig. 1 secure
    // proxy at its network edge. The Linux baseline is deployed bare.
    zone.proxied = zone.platform != bas::Platform::kLinux;
    zone.key = mix64(opts.seed, 0x5EC5E7 + z);

    const int node = fabric.add_node(mix64(opts.seed, 1 + z));
    sim::Machine& m = fabric.machine(node);
    configure_node(m);
    zone.scenario =
        bas::make_scenario(m, zone.platform, "temp", opts.scenario);
    zone.handler = std::make_unique<ZoneGateway>(m, *zone.scenario);
    zone.gateway = std::make_unique<net::BacnetDevice>(
        kZoneIdBase + z, "zone" + std::to_string(z) + "-gw");
    zone.gateway->set_handler(zone.handler.get());
    zone.gateway->set_property("zone.setpoint",
                               opts.scenario.control.initial_setpoint_c);
    zone.gateway->set_property("zone.temp", 0.0);
    // Attach the gateway first (wires its COV notifier), then the proxy
    // under the same device id so *incoming* datagrams pass the guard.
    fabric.attach(node, *zone.gateway);
    if (zone.proxied) {
      zone.proxy = std::make_unique<net::SecureProxy>(*zone.gateway,
                                                      zone.key);
      fabric.attach(node, *zone.proxy);
    }

    // Telemetry: the gateway samples the room every 30 s; subscribed
    // consoles get the value pushed over the fabric as COV traffic. The
    // sensor.sample span roots the telemetry trace — COV link spans the
    // notifier posts chain under it, so the critical-path analyzer can
    // decompose sample -> wire latency per hop.
    m.every(sim::sec(30), sim::sec(30), [&m, &zone, tag_sample] {
      if (zone.scenario->plant() == nullptr) return;
      const std::uint64_t s = m.spans().begin(-1, m.now(), tag_sample);
      zone.gateway->set_property(
          "zone.temp", zone.scenario->plant()->room.temperature_c());
      m.spans().end(-1, m.now(), s);
    });
  }

  // Head-end boot: subscribe to every zone's temperature at t=30s.
  sim::Machine& head = fabric.machine(0);
  head.at(sim::sec(30), [&fabric, &head, &zones, tag_subscribe] {
    const std::uint64_t s =
        head.spans().begin(-1, head.now(), tag_subscribe);
    for (std::size_t z = 0; z < zones.size(); ++z) {
      net::BacnetMsg sub;
      sub.service = net::BacnetMsg::Service::kSubscribeCov;
      sub.src_device = kConsoleId;
      sub.dst_device = kZoneIdBase + static_cast<std::uint32_t>(z);
      sub.property = "zone.temp";
      fabric.post(0, sub);
    }
    head.spans().end(-1, head.now(), s);
  });

  // Operator traffic: a setpoint write to one zone every minute,
  // round-robin, sealed with the zone key where a proxy guards the zone.
  // Under an attack the operator goes quiet at attack_at, so any write a
  // zone accepts afterwards is the attacker's — the per-zone verdict.
  auto op_tick = std::make_shared<int>(0);
  head.every(sim::minutes(1), sim::minutes(1),
             [&fabric, &head, &zones, &opts, op_tick, tag_op_write] {
               if (opts.attack != FabricAttack::kNone &&
                   head.now() >= opts.attack_at) {
                 return;
               }
               const int z =
                   (*op_tick)++ % static_cast<int>(zones.size());
               Zone& zone = zones[z];
               net::BacnetMsg w;
               w.service = net::BacnetMsg::Service::kWriteProperty;
               w.src_device = kConsoleId;
               w.dst_device = kZoneIdBase + static_cast<std::uint32_t>(z);
               w.property = "zone.setpoint";
               w.value = opts.scenario.control.initial_setpoint_c +
                         1.0 + 0.5 * (*op_tick % 3);
               if (zone.proxied) {
                 w = net::SecureProxy::seal(w, zone.key,
                                            ++zone.op_sequence);
               }
               const std::uint64_t s =
                   head.spans().begin(-1, head.now(), tag_op_write);
               fabric.post(0, w);
               head.spans().end(-1, head.now(), s);
             });

  // The attacker: arbitrary code on the last zone's controller, able to
  // emit raw datagrams onto the shared BACnet/IP segment.
  const int attacker_node = opts.zones;  // zone index opts.zones - 1
  if (opts.attack == FabricAttack::kSpoofWrite) {
    fabric.machine(attacker_node)
        .at(opts.attack_at, [&fabric, &opts, attacker_node, tag_attack] {
          sim::Machine& att = fabric.machine(attacker_node);
          // Root span of the attack trace: every forged datagram's link
          // span — and any proxy rejection it provokes — chains here.
          const std::uint64_t s =
              att.spans().begin(-1, att.now(), tag_attack);
          for (int z = 0; z < opts.zones; ++z) {
            if (z + 1 == attacker_node) continue;  // already owned
            net::BacnetMsg w;
            w.service = net::BacnetMsg::Service::kWriteProperty;
            w.src_device = kConsoleId;  // forged; nothing verifies it
            w.dst_device = kZoneIdBase + static_cast<std::uint32_t>(z);
            w.property = "zone.setpoint";
            w.value = kSpoofSetpointC;
            fabric.post(attacker_node, w);
          }
          att.spans().end(-1, att.now(), s);
        });
  } else if (opts.attack == FabricAttack::kReplay) {
    fabric.machine(attacker_node)
        .at(opts.attack_at, [&fabric, attacker_node, tag_attack] {
          sim::Machine& att = fabric.machine(attacker_node);
          const std::uint64_t s =
              att.spans().begin(-1, att.now(), tag_attack);
          // The packet capture: every operator WriteProperty seen so
          // far, re-posted verbatim — sealed datagrams keep their valid
          // MAC, but their sequence numbers are now stale. The captured
          // trace context is scrubbed: the attacker re-posts bytes, so
          // the replayed frames root under the attack span instead.
          const std::vector<net::BacnetMsg> capture = fabric.sent_log();
          for (const net::BacnetMsg& msg : capture) {
            if (msg.service != net::BacnetMsg::Service::kWriteProperty) {
              continue;
            }
            net::BacnetMsg replayed = msg;
            replayed.trace_id = 0;
            replayed.parent_span = 0;
            fabric.post(attacker_node, replayed);
          }
          att.spans().end(-1, att.now(), s);
        });
  }
  // Flood state lives at function scope so the self-rescheduling
  // callback below holds no owning cycle.
  std::shared_ptr<std::function<void()>> flood_burst;
  if (opts.attack == FabricAttack::kFlood) {
    sim::Machine& att = fabric.machine(attacker_node);
    flood_burst = std::make_shared<std::function<void()>>();
    std::function<void()>* burst = flood_burst.get();
    *flood_burst = [&fabric, &att, &opts, attacker_node, burst,
                    tag_attack] {
      if (att.now() >= opts.attack_at + kFloodWindow) return;
      // 16 datagrams per millisecond: with ~5-7 ms of link latency that
      // keeps ~100 datagrams in flight towards the head-end, well past
      // the 64-deep inbox — the overflow drops ARE the DoS.
      const std::uint64_t s = att.spans().begin(-1, att.now(), tag_attack);
      for (int i = 0; i < 16; ++i) {
        net::BacnetMsg probe;
        probe.service = net::BacnetMsg::Service::kWhoIs;
        probe.src_device = kFloodSrcId;
        probe.dst_device = kConsoleId;
        fabric.post(attacker_node, probe);
      }
      att.spans().end(-1, att.now(), s);
      att.at(att.now() + sim::msec(1), *burst);
    };
    att.at(opts.attack_at, *flood_burst);
  }

  // Phase 1: lockstep to the attack instant, then snapshot how many
  // writes each zone had legitimately accepted.
  const sim::Time attack_barrier =
      opts.attack == FabricAttack::kNone
          ? opts.duration
          : std::min(opts.attack_at, opts.duration);
  fabric.run_until(attack_barrier);
  std::vector<std::uint64_t> writes_before(zones.size());
  for (std::size_t z = 0; z < zones.size(); ++z) {
    writes_before[z] = zones[z].gateway->writes_accepted();
  }
  // Phase 2: the attack window. Every attack datagram is still in the
  // future here (delivery = send + base latency >= attack_at), so the
  // snapshot cleanly separates operator writes from attacker writes.
  fabric.run_until(opts.duration);

  // Close trailing rate windows so every detector has judged the whole
  // run before any verdict is journaled — a flood that trips the inbox
  // surge detector lands in the audit journal ahead of its verdict row.
  for (std::size_t n = 0; n < fabric.node_count(); ++n) {
    fabric.machine(static_cast<int>(n)).health().flush(opts.duration);
  }

  for (std::size_t z = 0; z < zones.size(); ++z) {
    Zone& zone = zones[z];
    FabricZoneRow row;
    row.zone = static_cast<int>(z);
    row.platform = zone.platform;
    row.proxied = zone.proxied;
    row.label = std::string(bas::to_string(zone.platform)) +
                (zone.proxied ? "+proxy" : "");
    row.attack_delivered =
        opts.attack != FabricAttack::kNone &&
        zone.gateway->writes_accepted() > writes_before[z];
    row.final_setpoint_c = zone.gateway->property("zone.setpoint");
    if (zone.scenario->plant() != nullptr) {
      row.final_temp_c = zone.scenario->plant()->room.temperature_c();
    }
    if (zone.proxy != nullptr) {
      row.proxy_rejected_tag = zone.proxy->rejected_bad_tag();
      row.proxy_rejected_replay = zone.proxy->rejected_replay();
    }
    if (opts.attack != FabricAttack::kNone) {
      // Per-zone verdict into the zone's own audit journal; the merged
      // journal below carries all of them in node order.
      sim::Machine& zm = fabric.machine(static_cast<int>(z) + 1);
      zm.audit().record(
          zm.now(), zm.machine_id(), -1, "attack.verdict",
          std::string(to_string(opts.attack)) + " against " + row.label +
              ": " + (row.attack_delivered ? "DELIVERED" : "blocked"),
          zm.spans(), zm.spans().current(-1));
    }
    res.rows.push_back(row);
  }

  res.delivered = fabric.delivered();
  res.drop_loss = fabric.dropped_loss();
  res.drop_partition = fabric.dropped_partition();
  res.drop_overflow = fabric.dropped_overflow();
  res.cov_count = fabric.cov_delivered();
  res.cov_p99_us = histogram_p99(fabric.cov_latency());

  // Reductions in node order — the one order every run shares.
  obs::MetricsRegistry merged;
  obs::SpanStore merged_spans;
  obs::AuditJournal merged_audit;
  obs::SeriesStore merged_series;
  obs::HealthMonitor merged_health;
  obs::FlightRecorder merged_flight;
  std::uint64_t chain = 14695981039346656037ULL;
  for (std::size_t n = 0; n < fabric.node_count(); ++n) {
    sim::Machine& m = fabric.machine(static_cast<int>(n));
    merged.merge_from(m.metrics());
    merged_spans.merge_from(m.spans());
    merged_audit.merge_from(m.audit());
    merged_series.merge_from(m.series());
    merged_health.merge_from(m.health());
    merged_flight.merge_from(m.flight());
    chain = fnv1a(hex64(trace_hash(m.trace())), chain);
  }
  res.metrics_json = merged.to_json();
  res.trace_hash = chain;
  res.spans_json = merged_spans.to_json();
  res.audit_json = merged_audit.to_json();
  res.series_json = merged_series.to_json();
  res.health_json = merged_health.to_json();
  res.flight_json = merged_flight.to_json();
  res.health_events = merged_health.events().size();
  res.critical_path_json =
      obs::critical_path_json(merged_spans, "sensor.sample", "net.link");
  // Mean telemetry e2e from the spans themselves (leaf.end - root.start
  // over complete chains) — tests compare this against the head-end's
  // COV latency histogram.
  {
    double total = 0.0;
    std::uint64_t n_chains = 0;
    const std::uint32_t link_tag = tags.intern("net.link");
    const std::uint32_t drop_tag = tags.intern("drop");
    for (const obs::Span& s : merged_spans.spans()) {
      if (s.name != link_tag || s.abandoned || s.note == drop_tag) continue;
      const std::vector<std::uint64_t> up = merged_spans.chain(s.span_id);
      if (up.empty() || merged_spans.name_of(up.back()) != tag_sample) {
        continue;
      }
      total += static_cast<double>(s.end) -
               static_cast<double>(merged_spans.start_of(up.back()));
      ++n_chains;
    }
    if (n_chains > 0) {
      res.sample_e2e_mean_us = total / static_cast<double>(n_chains);
    }
  }

  if (opts.observe) opts.observe(fabric);
  return res;
}

std::string format_fabric_table(const FabricRunResult& r) {
  std::ostringstream os;
  auto pad = [](std::string s, std::size_t w) {
    if (s.size() < w) s.append(w - s.size(), ' ');
    return s;
  };
  os << "attack: " << to_string(r.attack) << "  zones: " << r.zones
     << "  delivered: " << r.delivered << "  drops(loss/part/ovfl): "
     << r.drop_loss << "/" << r.drop_partition << "/" << r.drop_overflow
     << "  cov p99: " << r.cov_p99_us / 1000.0 << "ms\n";
  os << pad("zone", 6) << pad("platform", 20) << pad("attack", 11)
     << pad("setpoint", 10) << pad("temp", 9) << "proxy rejects\n";
  os << std::string(72, '-') << "\n";
  for (const FabricZoneRow& row : r.rows) {
    std::ostringstream sp, tc, rej;
    sp.setf(std::ios::fixed);
    sp.precision(1);
    sp << row.final_setpoint_c << "C";
    tc.setf(std::ios::fixed);
    tc.precision(2);
    tc << row.final_temp_c << "C";
    if (row.proxied) {
      rej << row.proxy_rejected_tag << " tag, " << row.proxy_rejected_replay
          << " replay";
    } else {
      rej << "-";
    }
    os << pad(std::to_string(row.zone), 6) << pad(row.label, 20)
       << pad(r.attack == FabricAttack::kNone
                  ? "-"
                  : (row.attack_delivered ? "DELIVERED" : "blocked"),
              11)
       << pad(sp.str(), 10) << pad(tc.str(), 9) << rej.str() << "\n";
  }
  return os.str();
}

}  // namespace mkbas::core
