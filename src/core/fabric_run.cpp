#include "core/fabric_run.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "core/hash.hpp"

namespace mkbas::core {

const char* to_string(FabricAttack a) {
  switch (a) {
    case FabricAttack::kNone:
      return "none";
    case FabricAttack::kSpoofWrite:
      return "spoof-write";
    case FabricAttack::kReplay:
      return "replay";
    case FabricAttack::kFlood:
      return "flood";
  }
  return "?";
}

namespace {

constexpr std::uint32_t kConsoleId = 1;
constexpr std::uint32_t kZoneIdBase = 100;
constexpr std::uint32_t kFloorIdBase = 1000000;
constexpr double kSpoofSetpointC = 35.0;
constexpr std::uint32_t kFloodSrcId = 66;  // deliberately unattached
constexpr sim::Duration kFloodWindow = sim::sec(30);

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  // splitmix64 over the xor — enough to decorrelate derived seeds.
  std::uint64_t x = a ^ (b * 0x9e3779b97f4a7c15ULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Wires a zone's BACnet gateway device to the zone controller: writes to
/// "zone.setpoint" become HTTP POSTs against the controller's web
/// interface, reads of "zone.temp" serve the live room temperature.
class ZoneGateway : public net::PropertyHandler {
 public:
  ZoneGateway(sim::Machine& machine, bas::Scenario& scenario)
      : machine_(machine), scenario_(scenario) {}

  bool write(net::BacnetDevice&, const std::string& prop,
             double v) override {
    if (prop == "zone.setpoint") {
      char body[48];
      std::snprintf(body, sizeof body, "value=%.1f", v);
      scenario_.http().submit(machine_.now(), {"POST", "/setpoint", body});
    }
    return true;  // BACnet itself never vetoes; the proxy layer does
  }

  bool read(net::BacnetDevice&, const std::string& prop,
            double* value) override {
    if (prop != "zone.temp" || scenario_.plant() == nullptr) return false;
    *value = scenario_.plant()->room.temperature_c();
    return true;
  }

 private:
  sim::Machine& machine_;
  bas::Scenario& scenario_;
};

/// A floor head-end: absorbs the COV samples of every zone on its floor
/// and pushes one averaged "floor.agg" value upstream per flush period.
/// Aggregation happens in handle() itself — buffering each sample (the
/// cov_inbox path of the base class) would grow without bound under a
/// city's worth of telemetry.
class FloorAggregator : public net::BacnetDevice {
 public:
  FloorAggregator(std::uint32_t id, std::string name)
      : net::BacnetDevice(id, std::move(name)) {
    // Subscriptions to non-existent properties are rejected, and the
    // building console subscribes before the first flush window closes.
    set_property("floor.agg", 0.0);
  }

  net::BacnetMsg handle(const net::BacnetMsg& in) override {
    if (in.service == net::BacnetMsg::Service::kCovNotification) {
      ++absorbed_;
      ++window_count_;
      window_sum_ += in.value;
      net::BacnetMsg ack;
      ack.service = net::BacnetMsg::Service::kSimpleAck;
      ack.src_device = id();
      ack.dst_device = in.src_device;
      return ack;  // unconfirmed service: the fabric never routes this
    }
    return net::BacnetDevice::handle(in);
  }

  /// Push the window average upstream (COV to the building console).
  void flush() {
    if (window_count_ == 0) return;
    set_property("floor.agg", window_sum_ / static_cast<double>(window_count_));
    window_count_ = 0;
    window_sum_ = 0.0;
  }

  std::uint64_t absorbed() const { return absorbed_; }

 private:
  std::uint64_t window_count_ = 0;
  double window_sum_ = 0.0;
  std::uint64_t absorbed_ = 0;
};

/// Deterministic synthetic room temperature for gateway-only zones:
/// 19..23 C, a pure function of (zone, tick).
double lite_temp(int zone, int tick) {
  const std::uint32_t h = static_cast<std::uint32_t>(zone) * 2654435761u +
                          static_cast<std::uint32_t>(tick) * 40503u + 1u;
  return 19.0 + static_cast<double>(h % 4000) / 1000.0;
}

}  // namespace

FabricRunResult run_fabric(const FabricOptions& opts) {
  if (opts.zones < 1) throw std::invalid_argument("run_fabric: zones < 1");
  if (opts.mix.empty()) throw std::invalid_argument("run_fabric: empty mix");
  const bool flat = opts.topology == net::TopologySpec::Kind::kFlat;
  if (!flat && opts.topology != net::TopologySpec::Kind::kTree &&
      opts.topology != net::TopologySpec::Kind::kCampus) {
    throw std::invalid_argument(
        "run_fabric: topology must be flat, tree or campus");
  }
  const int buildings =
      opts.topology == net::TopologySpec::Kind::kCampus ? opts.buildings : 1;
  if (buildings < 1 || kConsoleId + static_cast<std::uint32_t>(buildings) >
                           kZoneIdBase) {
    throw std::invalid_argument("run_fabric: buildings out of range");
  }
  if (kZoneIdBase + static_cast<std::uint32_t>(opts.zones) >= kFloorIdBase) {
    throw std::invalid_argument("run_fabric: too many zones for the id plan");
  }

  FabricRunResult res;
  res.zones = opts.zones;
  res.attack = opts.attack;
  res.topology = to_string(opts.topology);

  net::Fabric fabric(opts.seed);
  fabric.set_default_link(opts.link);
  fabric.set_sync(opts.sync);
  fabric.set_capture(opts.capture);
  fabric.set_tracing(opts.net_trace);
  for (const net::PartitionWindow& w : opts.partitions) {
    fabric.add_partition(w);
  }

  auto& tags = sim::TagRegistry::instance();
  const std::uint32_t tag_sample = tags.intern("sensor.sample");
  const std::uint32_t tag_op_write = tags.intern("op.setpoint");
  const std::uint32_t tag_subscribe = tags.intern("head.subscribe");
  const std::uint32_t tag_attack =
      tags.intern(std::string("attack.") + to_string(opts.attack));

  auto configure_node = [&opts](sim::Machine& m) {
    m.spans().set_enabled(opts.trace_spans);
    m.audit().set_enabled(opts.trace_spans);
    m.spans().set_capacity(opts.span_capacity);
    // The series/health/flight stack rides the same observability knob:
    // the trace-off arm stays the clean A/B baseline.
    m.series().set_enabled(opts.trace_spans);
    m.health().set_enabled(opts.trace_spans);
    m.flight().set_enabled(opts.trace_spans);
  };

  // Node plan. Flat: head-end on node 0, zone z on node z + 1. Tree and
  // campus: the Topology builder lays out each building as one
  // contiguous block [building head][floor heads][zones] and the fabric
  // routes ONLY over its declared links — zone-to-zone datagrams drop
  // as unroutable (network segmentation as containment).
  net::Topology topo;
  if (!flat) {
    net::TopologySpec spec;
    spec.kind = opts.topology;
    spec.zones = opts.zones;
    spec.floors = opts.floors;
    spec.buildings = buildings;
    topo = net::Topology::build(spec);
  }
  const int node_count = flat ? opts.zones + 1 : topo.node_count();
  for (int n = 0; n < node_count; ++n) {
    fabric.add_node(mix64(opts.seed, static_cast<std::uint64_t>(n)));
    configure_node(fabric.machine(n));
  }
  if (!flat) fabric.set_topology(topo);
  fabric.set_jobs(opts.jobs);
  res.nodes = node_count;
  const net::Topology& t = fabric.topology();

  const auto zone_node = [&](int z) {
    return flat ? z + 1 : t.zone_nodes[static_cast<std::size_t>(z)];
  };
  const auto building_of_zone = [&](int z) {
    return flat ? 0 : t.zone_building[static_cast<std::size_t>(z)];
  };

  // Supervisory devices: one console per building head-end, one
  // aggregator per floor head-end.
  std::vector<std::unique_ptr<net::BacnetDevice>> consoles;
  std::vector<std::unique_ptr<FloorAggregator>> floor_aggs;
  std::map<int, std::uint32_t> floor_dev_of_node;  // floor node -> device id
  if (flat) {
    consoles.push_back(
        std::make_unique<net::BacnetDevice>(kConsoleId, "head-end"));
    fabric.attach(0, *consoles.back());
  } else {
    for (int b = 0; b < buildings; ++b) {
      consoles.push_back(std::make_unique<net::BacnetDevice>(
          kConsoleId + static_cast<std::uint32_t>(b),
          "head-end-b" + std::to_string(b)));
      fabric.attach(t.building_heads[static_cast<std::size_t>(b)],
                    *consoles.back());
    }
    std::uint32_t floor_seq = 0;
    for (int b = 0; b < buildings; ++b) {
      for (int fn : t.floor_heads[static_cast<std::size_t>(b)]) {
        const std::uint32_t id = kFloorIdBase + floor_seq;
        floor_aggs.push_back(std::make_unique<FloorAggregator>(
            id, "floor" + std::to_string(floor_seq) + "-agg"));
        floor_dev_of_node[fn] = id;
        fabric.attach(fn, *floor_aggs.back());
        // Periodic upstream push: one averaged COV per floor per period
        // instead of one per zone sample — the per-tier batching.
        FloorAggregator* agg = floor_aggs.back().get();
        fabric.machine(fn).every(opts.floor_flush, opts.floor_flush,
                                 [agg] { agg->flush(); });
        ++floor_seq;
      }
    }
  }

  struct Zone {
    bas::Platform platform;
    bool proxied;
    std::uint64_t key;
    std::unique_ptr<bas::Scenario> scenario;
    std::unique_ptr<ZoneGateway> handler;
    std::unique_ptr<net::BacnetDevice> gateway;
    std::unique_ptr<net::SecureProxy> proxy;
    std::uint64_t op_sequence = 0;
    int sample_tick = 0;
  };
  std::vector<Zone> zones(static_cast<std::size_t>(opts.zones));

  for (int z = 0; z < opts.zones; ++z) {
    Zone& zone = zones[static_cast<std::size_t>(z)];
    zone.platform = opts.mix[static_cast<std::size_t>(z) % opts.mix.size()];
    // The paper's framework hardens the microkernel controllers end to
    // end: kernel-level isolation inside the box, the Fig. 1 secure
    // proxy at its network edge. The Linux baseline is deployed bare.
    zone.proxied = zone.platform != bas::Platform::kLinux;
    zone.key = mix64(opts.seed, 0x5EC5E7 + static_cast<std::uint64_t>(z));

    const int node = zone_node(z);
    sim::Machine& m = fabric.machine(node);
    if (!opts.lite_zones) {
      zone.scenario =
          bas::make_scenario(m, zone.platform, "temp", opts.scenario);
      zone.handler = std::make_unique<ZoneGateway>(m, *zone.scenario);
    }
    zone.gateway = std::make_unique<net::BacnetDevice>(
        kZoneIdBase + static_cast<std::uint32_t>(z),
        "zone" + std::to_string(z) + "-gw");
    zone.gateway->set_handler(zone.handler.get());
    zone.gateway->set_property("zone.setpoint",
                               opts.scenario.control.initial_setpoint_c);
    zone.gateway->set_property("zone.temp", 0.0);
    // Attach the gateway first (wires its COV notifier), then the proxy
    // under the same device id so *incoming* datagrams pass the guard.
    fabric.attach(node, *zone.gateway);
    if (zone.proxied) {
      zone.proxy = std::make_unique<net::SecureProxy>(*zone.gateway,
                                                      zone.key);
      fabric.attach(node, *zone.proxy);
    }

    // Telemetry: the gateway samples the room every 30 s; subscribed
    // head-ends get the value pushed over the fabric as COV traffic. The
    // sensor.sample span roots the telemetry trace — COV link spans the
    // notifier posts chain under it, so the critical-path analyzer can
    // decompose sample -> wire latency per hop. Hierarchical layouts
    // stagger the phase per zone so a floor's worth of samples does not
    // slam its head-end inbox in one instant.
    const sim::Time phase =
        flat ? sim::sec(30)
             : sim::sec(30) + (static_cast<sim::Time>(z) % 3000) * sim::msec(9);
    Zone* zp = &zone;
    m.every(phase, sim::sec(30), [&m, zp, z, tag_sample] {
      double temp;
      if (zp->scenario != nullptr) {
        if (zp->scenario->plant() == nullptr) return;
        temp = zp->scenario->plant()->room.temperature_c();
      } else {
        temp = lite_temp(z, zp->sample_tick++);
      }
      const std::uint64_t s = m.spans().begin(-1, m.now(), tag_sample);
      zp->gateway->set_property("zone.temp", temp);
      m.spans().end(-1, m.now(), s);
    });
  }

  // Head-end boot at t=30s. Flat: the console subscribes to every zone
  // directly. Hierarchical: each floor head subscribes to its zones and
  // each building console subscribes to its floor aggregates — COV
  // traffic then climbs the tree one tier at a time.
  if (flat) {
    sim::Machine& head = fabric.machine(0);
    std::vector<Zone>* zs = &zones;
    head.at(sim::sec(30), [&fabric, &head, zs, tag_subscribe] {
      const std::uint64_t s =
          head.spans().begin(-1, head.now(), tag_subscribe);
      for (std::size_t z = 0; z < zs->size(); ++z) {
        net::BacnetMsg sub;
        sub.service = net::BacnetMsg::Service::kSubscribeCov;
        sub.src_device = kConsoleId;
        sub.dst_device = kZoneIdBase + static_cast<std::uint32_t>(z);
        sub.property = "zone.temp";
        fabric.post(0, sub);
      }
      head.spans().end(-1, head.now(), s);
    });
  } else {
    // Floor -> zone subscriptions, batched per floor.
    for (int z = 0; z < opts.zones; ++z) {
      const int fn = t.zone_floor[static_cast<std::size_t>(z)];
      const std::uint32_t floor_dev = floor_dev_of_node[fn];
      sim::Machine& fm = fabric.machine(fn);
      fm.at(sim::sec(30), [&fabric, &fm, fn, floor_dev, z, tag_subscribe] {
        const std::uint64_t s =
            fm.spans().begin(-1, fm.now(), tag_subscribe);
        net::BacnetMsg sub;
        sub.service = net::BacnetMsg::Service::kSubscribeCov;
        sub.src_device = floor_dev;
        sub.dst_device = kZoneIdBase + static_cast<std::uint32_t>(z);
        sub.property = "zone.temp";
        fabric.post(fn, sub);
        fm.spans().end(-1, fm.now(), s);
      });
    }
    // Console -> floor subscriptions.
    for (int b = 0; b < buildings; ++b) {
      const int head = t.building_heads[static_cast<std::size_t>(b)];
      sim::Machine& hm = fabric.machine(head);
      const std::uint32_t console_id =
          kConsoleId + static_cast<std::uint32_t>(b);
      std::vector<std::uint32_t> floor_devs;
      for (int fn : t.floor_heads[static_cast<std::size_t>(b)]) {
        floor_devs.push_back(floor_dev_of_node[fn]);
      }
      hm.at(sim::sec(30),
            [&fabric, &hm, head, console_id, floor_devs, tag_subscribe] {
              const std::uint64_t s =
                  hm.spans().begin(-1, hm.now(), tag_subscribe);
              for (std::uint32_t fd : floor_devs) {
                net::BacnetMsg sub;
                sub.service = net::BacnetMsg::Service::kSubscribeCov;
                sub.src_device = console_id;
                sub.dst_device = fd;
                sub.property = "floor.agg";
                fabric.post(head, sub);
              }
              hm.spans().end(-1, hm.now(), s);
            });
    }
  }

  // Operator traffic: each building's console writes a setpoint to one
  // of its zones every minute, round-robin, sealed with the zone key
  // where a proxy guards the zone. Hierarchical layouts carry the write
  // on the building -> zone management downlink; the zone's ack has no
  // return wire and drops as unroutable (the management plane is
  // deliberately one-way). Under an attack the operator goes quiet at
  // attack_at, so any write a zone accepts afterwards is the attacker's.
  for (int b = 0; b < buildings; ++b) {
    const int head =
        flat ? 0 : t.building_heads[static_cast<std::size_t>(b)];
    std::vector<int> my_zones;
    for (int z = 0; z < opts.zones; ++z) {
      if (building_of_zone(z) == b) my_zones.push_back(z);
    }
    if (my_zones.empty()) continue;
    sim::Machine& head_m = fabric.machine(head);
    auto op_tick = std::make_shared<int>(0);
    std::vector<Zone>* zs = &zones;
    fabric.machine(head).every(
        sim::minutes(1), sim::minutes(1),
        [&fabric, &head_m, zs, &opts, op_tick, tag_op_write, head,
         my_zones] {
          if (opts.attack != FabricAttack::kNone &&
              head_m.now() >= opts.attack_at) {
            return;
          }
          const int z = my_zones[static_cast<std::size_t>(
              (*op_tick)++ % static_cast<int>(my_zones.size()))];
          Zone& zone = (*zs)[static_cast<std::size_t>(z)];
          net::BacnetMsg w;
          w.service = net::BacnetMsg::Service::kWriteProperty;
          w.src_device = kConsoleId;
          w.dst_device = kZoneIdBase + static_cast<std::uint32_t>(z);
          w.property = "zone.setpoint";
          w.value = opts.scenario.control.initial_setpoint_c + 1.0 +
                    0.5 * (*op_tick % 3);
          if (zone.proxied) {
            w = net::SecureProxy::seal(w, zone.key, ++zone.op_sequence);
          }
          const std::uint64_t s =
              head_m.spans().begin(-1, head_m.now(), tag_op_write);
          fabric.post(head, w);
          head_m.spans().end(-1, head_m.now(), s);
        });
  }

  // The attacker: arbitrary code on the last zone's controller, able to
  // emit raw datagrams onto its own segment. Flat: that segment is the
  // whole building. Hierarchical: segmentation confines it to its floor
  // head-end and its own node — a spoofed write to a sibling zone has
  // no wire to travel and drops as unroutable.
  const int attacker_node = zone_node(opts.zones - 1);
  if (opts.attack == FabricAttack::kSpoofWrite) {
    fabric.machine(attacker_node)
        .at(opts.attack_at, [&fabric, &opts, attacker_node, tag_attack] {
          sim::Machine& att = fabric.machine(attacker_node);
          // Root span of the attack trace: every forged datagram's link
          // span — and any proxy rejection it provokes — chains here.
          const std::uint64_t s =
              att.spans().begin(-1, att.now(), tag_attack);
          for (int z = 0; z < opts.zones; ++z) {
            if (z == opts.zones - 1) continue;  // already owned
            net::BacnetMsg w;
            w.service = net::BacnetMsg::Service::kWriteProperty;
            w.src_device = kConsoleId;  // forged; nothing verifies it
            w.dst_device = kZoneIdBase + static_cast<std::uint32_t>(z);
            w.property = "zone.setpoint";
            w.value = kSpoofSetpointC;
            fabric.post(attacker_node, w);
          }
          att.spans().end(-1, att.now(), s);
        });
  } else if (opts.attack == FabricAttack::kReplay) {
    fabric.machine(attacker_node)
        .at(opts.attack_at, [&fabric, attacker_node, tag_attack] {
          sim::Machine& att = fabric.machine(attacker_node);
          const std::uint64_t s =
              att.spans().begin(-1, att.now(), tag_attack);
          // The packet capture: every operator WriteProperty seen so
          // far, re-posted verbatim — sealed datagrams keep their valid
          // MAC, but their sequence numbers are now stale. The captured
          // trace context is scrubbed: the attacker re-posts bytes, so
          // the replayed frames root under the attack span instead.
          const std::vector<net::BacnetMsg> capture = fabric.sent_log();
          for (const net::BacnetMsg& msg : capture) {
            if (msg.service != net::BacnetMsg::Service::kWriteProperty) {
              continue;
            }
            net::BacnetMsg replayed = msg;
            replayed.trace_id = 0;
            replayed.parent_span = 0;
            fabric.post(attacker_node, replayed);
          }
          att.spans().end(-1, att.now(), s);
        });
  }
  // Flood state lives at function scope so the self-rescheduling
  // callback below holds no owning cycle.
  std::shared_ptr<std::function<void()>> flood_burst;
  if (opts.attack == FabricAttack::kFlood) {
    sim::Machine& att = fabric.machine(attacker_node);
    // Flat: drown the head-end console. Hierarchical: the only
    // supervisory device the attacker can even reach is its own floor
    // head-end — whose per-floor surge detector is the tripwire.
    const std::uint32_t flood_dst =
        flat ? kConsoleId
             : floor_dev_of_node[t.zone_floor[static_cast<std::size_t>(
                   opts.zones - 1)]];
    flood_burst = std::make_shared<std::function<void()>>();
    std::function<void()>* burst = flood_burst.get();
    *flood_burst = [&fabric, &att, &opts, attacker_node, burst, flood_dst,
                    tag_attack] {
      if (att.now() >= opts.attack_at + kFloodWindow) return;
      // 16 datagrams per millisecond: with ~5-7 ms of link latency that
      // keeps ~100 datagrams in flight towards the head-end, well past
      // the 64-deep inbox — the overflow drops ARE the DoS.
      const std::uint64_t s = att.spans().begin(-1, att.now(), tag_attack);
      for (int i = 0; i < 16; ++i) {
        net::BacnetMsg probe;
        probe.service = net::BacnetMsg::Service::kWhoIs;
        probe.src_device = kFloodSrcId;
        probe.dst_device = flood_dst;
        fabric.post(attacker_node, probe);
      }
      att.spans().end(-1, att.now(), s);
      att.at(att.now() + sim::msec(1), *burst);
    };
    att.at(opts.attack_at, *flood_burst);
  }

  // Phase 1: run to the attack instant, then snapshot how many writes
  // each zone had legitimately accepted.
  const sim::Time attack_barrier =
      opts.attack == FabricAttack::kNone
          ? opts.duration
          : std::min(opts.attack_at, opts.duration);
  fabric.run_until(attack_barrier);
  std::vector<std::uint64_t> writes_before(zones.size());
  for (std::size_t z = 0; z < zones.size(); ++z) {
    writes_before[z] = zones[z].gateway->writes_accepted();
  }
  // Phase 2: the attack window. Every attack datagram is still in the
  // future here (delivery = send + base latency >= attack_at), so the
  // snapshot cleanly separates operator writes from attacker writes.
  fabric.run_until(opts.duration);

  // Close trailing rate windows so every detector has judged the whole
  // run before any verdict is journaled — a flood that trips the inbox
  // surge detector lands in the audit journal ahead of its verdict row.
  for (std::size_t n = 0; n < fabric.node_count(); ++n) {
    fabric.machine(static_cast<int>(n)).health().flush(opts.duration);
  }

  for (std::size_t z = 0; z < zones.size(); ++z) {
    Zone& zone = zones[z];
    FabricZoneRow row;
    row.zone = static_cast<int>(z);
    row.platform = zone.platform;
    row.proxied = zone.proxied;
    row.label = std::string(bas::to_string(zone.platform)) +
                (zone.proxied ? "+proxy" : "");
    row.attack_delivered =
        opts.attack != FabricAttack::kNone &&
        zone.gateway->writes_accepted() > writes_before[z];
    row.final_setpoint_c = zone.gateway->property("zone.setpoint");
    if (zone.scenario != nullptr && zone.scenario->plant() != nullptr) {
      row.final_temp_c = zone.scenario->plant()->room.temperature_c();
    } else {
      row.final_temp_c = zone.gateway->property("zone.temp");
    }
    if (zone.proxy != nullptr) {
      row.proxy_rejected_tag = zone.proxy->rejected_bad_tag();
      row.proxy_rejected_replay = zone.proxy->rejected_replay();
    }
    if (opts.attack != FabricAttack::kNone) {
      // Per-zone verdict into the zone's own audit journal; the merged
      // journal below carries all of them in node order.
      sim::Machine& zm = fabric.machine(zone_node(static_cast<int>(z)));
      zm.audit().record(
          zm.now(), zm.machine_id(), -1, "attack.verdict",
          std::string(to_string(opts.attack)) + " against " + row.label +
              ": " + (row.attack_delivered ? "DELIVERED" : "blocked"),
          zm.spans(), zm.spans().current(-1));
    }
    res.rows.push_back(row);
  }

  res.posted = fabric.posted();
  res.delivered = fabric.delivered();
  res.drop_loss = fabric.dropped_loss();
  res.drop_partition = fabric.dropped_partition();
  res.drop_overflow = fabric.dropped_overflow();
  res.drop_unroutable = fabric.dropped_unroutable();
  res.pending = fabric.pending();
  res.causality_violations = fabric.causality_violations();
  res.cov_count = fabric.cov_delivered();
  res.cov_p99_us = fabric.cov_p99_us();
  for (const auto& agg : floor_aggs) res.floor_covs += agg->absorbed();

  // Trace hash always: it is the cheap cross-mode replay fingerprint.
  {
    std::uint64_t chain = 14695981039346656037ULL;
    for (std::size_t n = 0; n < fabric.node_count(); ++n) {
      chain = fnv1a(hex64(trace_hash(fabric.machine(static_cast<int>(n))
                                         .trace())),
                    chain);
    }
    res.trace_hash = chain;
  }

  if (opts.collect) {
    // Reductions in node order — the one order every run shares.
    obs::MetricsRegistry merged;
    obs::SpanStore merged_spans;
    obs::AuditJournal merged_audit;
    obs::SeriesStore merged_series;
    obs::HealthMonitor merged_health;
    obs::FlightRecorder merged_flight;
    for (std::size_t n = 0; n < fabric.node_count(); ++n) {
      sim::Machine& m = fabric.machine(static_cast<int>(n));
      merged.merge_from(m.metrics());
      merged_spans.merge_from(m.spans());
      merged_audit.merge_from(m.audit());
      merged_series.merge_from(m.series());
      merged_health.merge_from(m.health());
      merged_flight.merge_from(m.flight());
    }
    res.metrics_json = merged.to_json();
    res.spans_json = merged_spans.to_json();
    res.audit_json = merged_audit.to_json();
    res.series_json = merged_series.to_json();
    res.health_json = merged_health.to_json();
    res.flight_json = merged_flight.to_json();
    res.health_events = merged_health.events().size();
    res.critical_path_json =
        obs::critical_path_json(merged_spans, "sensor.sample", "net.link");
    // Mean telemetry e2e from the spans themselves (leaf.end -
    // root.start over complete chains) — tests compare this against the
    // head-end's COV latency histogram.
    double total = 0.0;
    std::uint64_t n_chains = 0;
    const std::uint32_t link_tag = tags.intern("net.link");
    const std::uint32_t drop_tag = tags.intern("drop");
    for (const obs::Span& s : merged_spans.spans()) {
      if (s.name != link_tag || s.abandoned || s.note == drop_tag) continue;
      const std::vector<std::uint64_t> up = merged_spans.chain(s.span_id);
      if (up.empty() || merged_spans.name_of(up.back()) != tag_sample) {
        continue;
      }
      total += static_cast<double>(s.end) -
               static_cast<double>(merged_spans.start_of(up.back()));
      ++n_chains;
    }
    if (n_chains > 0) {
      res.sample_e2e_mean_us = total / static_cast<double>(n_chains);
    }
  }

  if (opts.observe) opts.observe(fabric);
  return res;
}

std::string format_fabric_table(const FabricRunResult& r) {
  std::ostringstream os;
  auto pad = [](std::string s, std::size_t w) {
    if (s.size() < w) s.append(w - s.size(), ' ');
    return s;
  };
  os << "attack: " << to_string(r.attack) << "  topology: " << r.topology
     << "  zones: " << r.zones << "  delivered: " << r.delivered
     << "  drops(loss/part/ovfl/unrt): " << r.drop_loss << "/"
     << r.drop_partition << "/" << r.drop_overflow << "/"
     << r.drop_unroutable << "  cov p99: " << r.cov_p99_us / 1000.0
     << "ms\n";
  os << pad("zone", 6) << pad("platform", 20) << pad("attack", 11)
     << pad("setpoint", 10) << pad("temp", 9) << "proxy rejects\n";
  os << std::string(72, '-') << "\n";
  for (const FabricZoneRow& row : r.rows) {
    std::ostringstream sp, tc, rej;
    sp.setf(std::ios::fixed);
    sp.precision(1);
    sp << row.final_setpoint_c << "C";
    tc.setf(std::ios::fixed);
    tc.precision(2);
    tc << row.final_temp_c << "C";
    if (row.proxied) {
      rej << row.proxy_rejected_tag << " tag, " << row.proxy_rejected_replay
          << " replay";
    } else {
      rej << "-";
    }
    os << pad(std::to_string(row.zone), 6) << pad(row.label, 20)
       << pad(r.attack == FabricAttack::kNone
                  ? "-"
                  : (row.attack_delivered ? "DELIVERED" : "blocked"),
              11)
       << pad(sp.str(), 10) << pad(tc.str(), 9) << rej.str() << "\n";
  }
  return os.str();
}

}  // namespace mkbas::core
