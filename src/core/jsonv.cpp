#include "core/jsonv.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace mkbas::core {

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool Json::is_u64() const {
  if (kind != Kind::kNumber || text.empty()) return false;
  for (char c : text) {
    if (c < '0' || c > '9') return false;  // no sign, no '.', no exponent
  }
  errno = 0;
  char* end = nullptr;
  (void)std::strtoull(text.c_str(), &end, 10);
  return errno == 0 && end == text.c_str() + text.size();
}

std::uint64_t Json::as_u64() const {
  return std::strtoull(text.c_str(), nullptr, 10);
}

const char* to_string(Json::Kind k) {
  switch (k) {
    case Json::Kind::kNull: return "null";
    case Json::Kind::kBool: return "boolean";
    case Json::Kind::kNumber: return "number";
    case Json::Kind::kString: return "string";
    case Json::Kind::kObject: return "object";
    case Json::Kind::kArray: return "array";
  }
  return "?";
}

namespace {

/// Recursive-descent parser with a single error slot; every fail() site
/// records the byte offset so request-level messages can point at the
/// offending field value.
class Parser {
 public:
  Parser(const std::string& in, std::string* err) : in_(in), err_(err) {}

  bool parse(Json* out) {
    skip_ws();
    if (!value(out, 0)) return false;
    skip_ws();
    if (pos_ != in_.size()) return fail("trailing characters after value");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& what) {
    if (err_->empty()) {
      *err_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < in_.size() &&
           (in_[pos_] == ' ' || in_[pos_] == '\t' || in_[pos_] == '\n' ||
            in_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word, std::size_t n) {
    if (in_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool value(Json* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= in_.size()) return fail("unexpected end of input");
    switch (in_[pos_]) {
      case '{': return object(out, depth);
      case '[': return array(out, depth);
      case '"':
        out->kind = Json::Kind::kString;
        return string(&out->text);
      case 't':
        out->kind = Json::Kind::kBool;
        out->boolean = true;
        return literal("true", 4) || fail("expected 'true'");
      case 'f':
        out->kind = Json::Kind::kBool;
        out->boolean = false;
        return literal("false", 5) || fail("expected 'false'");
      case 'n':
        out->kind = Json::Kind::kNull;
        return literal("null", 4) || fail("expected 'null'");
      default: return number(out);
    }
  }

  bool object(Json* out, int depth) {
    out->kind = Json::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < in_.size() && in_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= in_.size() || in_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!string(&key)) return false;
      for (const auto& [k, v] : out->members) {
        (void)v;
        if (k == key) return fail("duplicate key '" + key + "'");
      }
      skip_ws();
      if (pos_ >= in_.size() || in_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      Json v;
      if (!value(&v, depth + 1)) return false;
      out->members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= in_.size()) return fail("unterminated object");
      if (in_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (in_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(Json* out, int depth) {
    out->kind = Json::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < in_.size() && in_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      Json v;
      if (!value(&v, depth + 1)) return false;
      out->items.push_back(std::move(v));
      skip_ws();
      if (pos_ >= in_.size()) return fail("unterminated array");
      if (in_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (in_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < in_.size()) {
      const char c = in_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= in_.size()) return fail("truncated escape");
      const char e = in_[pos_ + 1];
      pos_ += 2;
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > in_.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = in_[pos_ + static_cast<std::size_t>(i)];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point (exporters only ever emit
          // \u00XX control escapes; surrogate pairs are out of scope).
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool number(Json* out) {
    const std::size_t start = pos_;
    if (pos_ < in_.size() && in_[pos_] == '-') ++pos_;
    if (pos_ >= in_.size() || !std::isdigit(static_cast<unsigned char>(in_[pos_]))) {
      pos_ = start;
      return fail("expected a value");
    }
    const std::size_t int_start = pos_;
    while (pos_ < in_.size() &&
           std::isdigit(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
    // Strict JSON: "0" is fine, "01" is not.
    if (pos_ - int_start > 1 && in_[int_start] == '0') {
      return fail("leading zero in number");
    }
    if (pos_ < in_.size() && in_[pos_] == '.') {
      ++pos_;
      if (pos_ >= in_.size() ||
          !std::isdigit(static_cast<unsigned char>(in_[pos_]))) {
        return fail("digits expected after '.'");
      }
      while (pos_ < in_.size() &&
             std::isdigit(static_cast<unsigned char>(in_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < in_.size() && (in_[pos_] == 'e' || in_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < in_.size() && (in_[pos_] == '+' || in_[pos_] == '-')) ++pos_;
      if (pos_ >= in_.size() ||
          !std::isdigit(static_cast<unsigned char>(in_[pos_]))) {
        return fail("digits expected in exponent");
      }
      while (pos_ < in_.size() &&
             std::isdigit(static_cast<unsigned char>(in_[pos_]))) {
        ++pos_;
      }
    }
    out->kind = Json::Kind::kNumber;
    out->text = in_.substr(start, pos_ - start);
    out->number = std::strtod(out->text.c_str(), nullptr);
    return true;
  }

  const std::string& in_;
  std::string* err_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_parse(const std::string& in, Json* out, std::string* err) {
  *out = Json{};
  err->clear();
  Parser p(in, err);
  if (p.parse(out)) return true;
  if (err->empty()) *err = "malformed JSON";
  return false;
}

}  // namespace mkbas::core
