#include "core/hash.hpp"

#include <cstdio>

namespace mkbas::core {

std::uint64_t fnv1a(const std::string& s, std::uint64_t h) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t trace_hash(const sim::TraceLog& log) {
  std::uint64_t h = 14695981039346656037ULL;
  char buf[128];
  for (const auto& ev : log.events()) {
    std::snprintf(buf, sizeof buf, "%lld|%d|%s|",
                  static_cast<long long>(ev.time), ev.pid,
                  sim::to_string(ev.kind));
    h = fnv1a(buf, h);
    h = fnv1a(ev.what(), h);
    h = fnv1a("|", h);
    h = fnv1a(ev.detail, h);
    std::snprintf(buf, sizeof buf, "|%.17g\n", ev.value);
    h = fnv1a(buf, h);
  }
  return h;
}

}  // namespace mkbas::core
