#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mkbas::net {

/// Supervisory tier of a fabric node. The hierarchical run_fabric wiring
/// and the per-tier COV latency histograms key off it.
enum class NodeRole : std::uint8_t { kZone = 0, kFloor = 1, kBuilding = 2 };

const char* to_string(NodeRole r);

/// Parameters for the canonical layouts Topology::build() produces.
struct TopologySpec {
  enum class Kind { kFlat, kLine, kStar, kTree, kCampus };
  Kind kind = Kind::kFlat;
  int zones = 4;      // total zone nodes, across all buildings
  int floors = 1;     // floor head-ends per building (tree/campus)
  int buildings = 1;  // independent buildings (campus)
};

bool parse_topology_kind(const std::string& s, TopologySpec::Kind* out);
const char* to_string(TopologySpec::Kind k);

/// An explicit node/link graph for net::Fabric. Node indices are fabric
/// node indices in add order; links are the directed edges the fabric
/// will route — datagrams between unlinked nodes are dropped and
/// accounted as `unroutable` (network segmentation as a defense: a
/// compromised zone cannot even address a zone on another floor's VLAN).
/// An empty topology (no nodes) keeps the legacy fully-connected segment.
struct Topology {
  struct Node {
    NodeRole role = NodeRole::kZone;
    int parent = -1;   // supervising head-end node, -1 for a building head
    int building = 0;  // campus component this node belongs to
  };

  TopologySpec spec{};
  std::vector<Node> nodes;
  std::vector<std::pair<int, int>> links;  // directed src -> dst

  // Index helpers filled in by build() for tree/campus layouts. Building
  // b occupies one contiguous node block: [head][floor heads...][zones].
  std::vector<int> building_heads;          // building -> node index
  std::vector<std::vector<int>> floor_heads;  // building -> floor nodes
  std::vector<int> zone_nodes;              // global zone -> node index
  std::vector<int> zone_floor;              // global zone -> floor head node
  std::vector<int> zone_building;           // global zone -> building

  int node_count() const { return static_cast<int>(nodes.size()); }
  int zone_count() const { return static_cast<int>(zone_nodes.size()); }

  void add_node(NodeRole role, int parent, int building) {
    nodes.push_back(Node{role, parent, building});
  }
  void add_link(int src, int dst) { links.emplace_back(src, dst); }
  void add_duplex(int a, int b) {
    add_link(a, b);
    add_link(b, a);
  }

  /// Build a canonical layout:
  ///  - kFlat:   empty topology (legacy fully-connected segment)
  ///  - kLine:   `zones` nodes in a bidirectional chain
  ///  - kStar:   node 0 the hub; every other node linked only to it
  ///  - kTree:   building head -> floor head-ends -> zones (duplex
  ///             links), plus a building -> zone management downlink
  ///  - kCampus: `buildings` independent kTree components
  static Topology build(const TopologySpec& spec);
};

}  // namespace mkbas::net
