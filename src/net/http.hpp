#pragma once

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "sim/machine.hpp"

namespace mkbas::net {

/// A minimal HTTP request, the unit of traffic the web-interface process
/// serves on port 8080 (GET and POST, as in §IV.A).
struct HttpRequest {
  std::string method;  // "GET" | "POST"
  std::string path;    // "/status", "/setpoint"
  std::string body;    // form-encoded, e.g. "value=23.5"
};

struct HttpResponse {
  int status = 0;
  std::string body;
};

/// One completed request/response pair, kept for assertions and reports.
struct HttpExchange {
  sim::Time submitted = 0;
  sim::Time answered = -1;  // -1 = no response (server dead / overloaded)
  HttpRequest request;
  HttpResponse response;
};

/// The simulated TCP listener on port 8080: the boundary between the
/// outside world (tests, operators, attackers-before-compromise) and the
/// web-interface process. The harness enqueues requests from driver
/// context; the web process polls and responds from process context.
class HttpConsole {
 public:
  static constexpr std::size_t kBacklog = 16;  // listen backlog

  /// Submit a request (driver/machine context). Returns the exchange id,
  /// or -1 when the backlog is full (connection refused under load).
  int submit(sim::Time now, HttpRequest req) {
    if (pending_.size() >= kBacklog) {
      ++refused_;
      return -1;
    }
    const int id = static_cast<int>(exchanges_.size());
    exchanges_.push_back(HttpExchange{now, -1, std::move(req), {}});
    pending_.push_back(id);
    return id;
  }

  /// Server side: take the next pending request, if any.
  std::optional<int> poll() {
    if (pending_.empty()) return std::nullopt;
    const int id = pending_.front();
    pending_.pop_front();
    return id;
  }

  const HttpRequest& request(int id) const {
    return exchanges_[static_cast<std::size_t>(id)].request;
  }

  /// Server side: answer a previously polled request.
  void respond(int id, sim::Time now, HttpResponse resp) {
    auto& ex = exchanges_[static_cast<std::size_t>(id)];
    ex.answered = now;
    ex.response = std::move(resp);
  }

  const std::vector<HttpExchange>& exchanges() const { return exchanges_; }
  const HttpExchange& exchange(int id) const {
    return exchanges_[static_cast<std::size_t>(id)];
  }
  std::size_t refused_count() const { return refused_; }
  std::size_t pending_count() const { return pending_.size(); }

 private:
  std::deque<int> pending_;
  std::vector<HttpExchange> exchanges_;
  std::size_t refused_ = 0;
};

}  // namespace mkbas::net
