#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/machine.hpp"

namespace mkbas::net {

/// A BACnet-like SCADA datagram. Faithful to the properties §I criticises:
/// there is no authentication whatsoever — the source device id is a plain
/// field any sender can forge, and messages can be captured and replayed.
struct BacnetMsg {
  enum class Service {
    kWhoIs,
    kIAm,
    kReadProperty,
    kReadPropertyAck,
    kWriteProperty,
    kSimpleAck,
    kError,
    kSubscribeCov,     // change-of-value subscription
    kCovNotification,  // pushed when a subscribed property changes
  };

  Service service = Service::kWhoIs;
  std::uint32_t src_device = 0;  // claimed, NOT verified by the network
  std::uint32_t dst_device = 0;
  std::string property;
  double value = 0.0;
  std::uint32_t invoke_id = 0;

  // Secure-proxy extension fields (ignored by plain devices):
  std::uint64_t auth_tag = 0;
  std::uint64_t sequence = 0;

  // Reserved tracing header (precedent: the proxy extension fields
  // above). Plain BACnet has no such field — carrying it models a
  // proprietary vendor extension; devices that never read it are
  // unaffected, and a zero trace_id means "no context".
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;

  /// Stamped by the fabric when the datagram is posted (virtual time on
  /// the sending node's clock); -1 for off-fabric traffic. Lets the
  /// receiver compute end-to-end latency — all fabric machines share one
  /// lockstep timeline, so cross-machine timestamps are comparable.
  sim::Time sent_at = -1;
};

const char* to_string(BacnetMsg::Service s);

class BacnetDevice;

/// Typed property callbacks: one object wires a device's properties to
/// real effects. Replaces the old single ad-hoc write hook with the three
/// interactions a BAS actually needs — veto/observe writes, serve live
/// values on read, and consume pushed COV notifications.
class PropertyHandler {
 public:
  virtual ~PropertyHandler() = default;

  /// Called before a WriteProperty is applied. Return false to veto: the
  /// device answers kError and the property map stays untouched.
  virtual bool write(BacnetDevice& dev, const std::string& property,
                     double value) {
    (void)dev, (void)property, (void)value;
    return true;
  }

  /// Dynamic reads: return true and fill *value to serve a live value
  /// instead of the stored property map (e.g. the current room temp).
  virtual bool read(BacnetDevice& dev, const std::string& property,
                    double* value) {
    (void)dev, (void)property, (void)value;
    return false;
  }

  /// A COV notification arrived at this device (console role).
  virtual void cov(BacnetDevice& dev, const BacnetMsg& msg) {
    (void)dev, (void)msg;
  }
};

/// A BACnet device: a property map plus service handling. A
/// PropertyHandler lets the BAS wire property traffic to real effects
/// (e.g. setpoint changes).
class BacnetDevice {
 public:
  static constexpr std::size_t kMaxSubscriptions = 8;

  BacnetDevice(std::uint32_t id, std::string name)
      : id_(id), name_(std::move(name)) {}
  virtual ~BacnetDevice() = default;

  std::uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }

  void set_property(const std::string& key, double v) {
    props_[key] = v;
    notify_cov(key, v);
  }
  double property(const std::string& key) const {
    const auto it = props_.find(key);
    return it == props_.end() ? 0.0 : it->second;
  }
  bool has_property(const std::string& key) const {
    return props_.count(key) != 0;
  }

  /// Attach the handler consulted for writes, reads and COV delivery.
  /// Not owned; must outlive the device. Pass nullptr to detach.
  void set_handler(PropertyHandler* handler) { handler_ = handler; }

  /// Handle an incoming message; returns the reply (kError service if the
  /// request was rejected). Plain devices accept any well-formed write —
  /// the documented BACnet weakness.
  virtual BacnetMsg handle(const BacnetMsg& in);

  std::size_t writes_accepted() const { return writes_accepted_; }
  std::size_t subscription_count() const { return subscriptions_.size(); }

  /// COV notifications this device received (when used as a console).
  const std::vector<BacnetMsg>& cov_inbox() const { return cov_inbox_; }

  /// Set by BacnetNetwork::attach: how the device pushes unsolicited
  /// datagrams (COV notifications) onto the wire.
  void set_notifier(std::function<void(BacnetMsg)> notifier) {
    notifier_ = std::move(notifier);
  }

  /// Set by the network/fabric at attach time: the machine whose span
  /// store and audit journal security decisions are charged to. May be
  /// null (detached devices in unit tests record nothing).
  void bind_machine(sim::Machine* m) { machine_ = m; }
  sim::Machine* bound_machine() const { return machine_; }

 protected:
  BacnetMsg apply_write(const BacnetMsg& in);
  BacnetMsg handle_subscribe(const BacnetMsg& in);
  void notify_cov(const std::string& property, double value);

  struct Subscription {
    std::uint32_t subscriber;
    std::string property;
  };

  std::uint32_t id_;
  std::string name_;
  std::map<std::string, double> props_;
  PropertyHandler* handler_ = nullptr;
  sim::Machine* machine_ = nullptr;
  std::function<void(BacnetMsg)> notifier_;
  std::vector<Subscription> subscriptions_;
  std::vector<BacnetMsg> cov_inbox_;
  std::size_t writes_accepted_ = 0;
};

/// The secure proxy of Fig. 1: wraps a legacy device and only forwards
/// writes that carry a valid MAC over (key, sequence, content) with a
/// strictly increasing sequence number (replay window). Reads pass
/// through: the protected asset is actuation, not observation.
class SecureProxy : public BacnetDevice {
 public:
  SecureProxy(BacnetDevice& legacy, std::uint64_t shared_key)
      : BacnetDevice(legacy.id(), legacy.name() + "+proxy"),
        legacy_(legacy),
        key_(shared_key) {}

  BacnetMsg handle(const BacnetMsg& in) override;

  /// Client-side helper: authenticate a message with the shared key and
  /// the next sequence number.
  static BacnetMsg seal(BacnetMsg msg, std::uint64_t key,
                        std::uint64_t sequence);

  /// Deterministic non-cryptographic MAC (FNV-mix); stands in for an HMAC
  /// in this simulation — the *protocol* properties (must know the key,
  /// can't replay) are what the experiment exercises.
  static std::uint64_t mac(const BacnetMsg& msg, std::uint64_t key);

  std::size_t rejected_bad_tag() const { return rejected_bad_tag_; }
  std::size_t rejected_replay() const { return rejected_replay_; }

 private:
  BacnetDevice& legacy_;
  std::uint64_t key_;
  std::uint64_t last_sequence_ = 0;
  std::size_t rejected_bad_tag_ = 0;
  std::size_t rejected_replay_ = 0;
};

/// The SCADA segment: delivers datagrams between registered devices with
/// a fixed latency, and models DoS by bounding each device's inbox.
class BacnetNetwork {
 public:
  static constexpr std::size_t kInboxDepth = 32;

  BacnetNetwork(sim::Machine& machine, sim::Duration latency = sim::msec(5))
      : machine_(machine), latency_(latency) {
    tag_link_span_ = sim::TagRegistry::instance().intern("net.link");
    tag_note_drop_ = sim::TagRegistry::instance().intern("drop");
  }

  void attach(BacnetDevice& dev) {
    devices_[dev.id()] = &dev;
    dev.set_notifier([this](BacnetMsg msg) { send(std::move(msg)); });
    dev.bind_machine(&machine_);
  }

  /// Send a datagram "from the wire": delivered (and handled) after the
  /// network latency. The reply, if any, is recorded in `replies()`.
  /// Anyone on the segment can call this — that is the point.
  void send(BacnetMsg msg);

  /// All replies devices have produced, in delivery order (the attacker's
  /// packet capture for replay attacks is `sent_log()`).
  const std::vector<BacnetMsg>& replies() const { return replies_; }
  const std::vector<BacnetMsg>& sent_log() const { return sent_log_; }
  std::size_t dropped_count() const { return dropped_; }
  std::size_t inbox_depth(std::uint32_t device) const {
    const auto it = inflight_.find(device);
    return it == inflight_.end() ? 0 : it->second;
  }

 private:
  sim::Machine& machine_;
  sim::Duration latency_;
  std::uint32_t tag_link_span_ = 0;
  std::uint32_t tag_note_drop_ = 0;
  std::map<std::uint32_t, BacnetDevice*> devices_;
  std::map<std::uint32_t, std::size_t> inflight_;
  std::vector<BacnetMsg> replies_;
  std::vector<BacnetMsg> sent_log_;
  std::size_t dropped_ = 0;
};

}  // namespace mkbas::net
