#include "net/bacnet.hpp"

namespace mkbas::net {

const char* to_string(BacnetMsg::Service s) {
  switch (s) {
    case BacnetMsg::Service::kWhoIs:
      return "WhoIs";
    case BacnetMsg::Service::kIAm:
      return "IAm";
    case BacnetMsg::Service::kReadProperty:
      return "ReadProperty";
    case BacnetMsg::Service::kReadPropertyAck:
      return "ReadPropertyAck";
    case BacnetMsg::Service::kWriteProperty:
      return "WriteProperty";
    case BacnetMsg::Service::kSimpleAck:
      return "SimpleAck";
    case BacnetMsg::Service::kError:
      return "Error";
    case BacnetMsg::Service::kSubscribeCov:
      return "SubscribeCov";
    case BacnetMsg::Service::kCovNotification:
      return "CovNotification";
  }
  return "?";
}

BacnetMsg BacnetDevice::apply_write(const BacnetMsg& in) {
  BacnetMsg reply;
  reply.src_device = id_;
  reply.dst_device = in.src_device;
  reply.invoke_id = in.invoke_id;
  if (handler_ != nullptr && !handler_->write(*this, in.property, in.value)) {
    reply.service = BacnetMsg::Service::kError;  // handler vetoed
    return reply;
  }
  props_[in.property] = in.value;
  ++writes_accepted_;
  notify_cov(in.property, in.value);
  reply.service = BacnetMsg::Service::kSimpleAck;
  return reply;
}

BacnetMsg BacnetDevice::handle(const BacnetMsg& in) {
  BacnetMsg reply;
  reply.src_device = id_;
  reply.dst_device = in.src_device;
  reply.invoke_id = in.invoke_id;
  switch (in.service) {
    case BacnetMsg::Service::kWhoIs:
      reply.service = BacnetMsg::Service::kIAm;
      return reply;
    case BacnetMsg::Service::kReadProperty: {
      double live = 0.0;
      if (handler_ != nullptr && handler_->read(*this, in.property, &live)) {
        reply.service = BacnetMsg::Service::kReadPropertyAck;
        reply.property = in.property;
        reply.value = live;
        return reply;
      }
      if (props_.count(in.property) == 0) {
        reply.service = BacnetMsg::Service::kError;
        return reply;
      }
      reply.service = BacnetMsg::Service::kReadPropertyAck;
      reply.property = in.property;
      reply.value = props_.at(in.property);
      return reply;
    }
    case BacnetMsg::Service::kWriteProperty:
      // No authentication at all: any write from anyone is applied.
      return apply_write(in);
    case BacnetMsg::Service::kSubscribeCov:
      return handle_subscribe(in);
    case BacnetMsg::Service::kCovNotification:
      // Acting as a console: record the pushed value.
      cov_inbox_.push_back(in);
      if (handler_ != nullptr) handler_->cov(*this, in);
      reply.service = BacnetMsg::Service::kSimpleAck;
      return reply;
    default:
      reply.service = BacnetMsg::Service::kError;
      return reply;
  }
}

BacnetMsg BacnetDevice::handle_subscribe(const BacnetMsg& in) {
  BacnetMsg reply;
  reply.src_device = id_;
  reply.dst_device = in.src_device;
  reply.invoke_id = in.invoke_id;
  // Bounded subscription table: a subscription flood cannot grow state
  // without limit (one small robustness nicety BACnet itself lacks).
  if (subscriptions_.size() >= kMaxSubscriptions ||
      props_.count(in.property) == 0) {
    reply.service = BacnetMsg::Service::kError;
    return reply;
  }
  // NOTE: like WriteProperty, subscription is unauthenticated — an
  // attacker can subscribe to telemetry it should not see.
  subscriptions_.push_back(Subscription{in.src_device, in.property});
  reply.service = BacnetMsg::Service::kSimpleAck;
  return reply;
}

void BacnetDevice::notify_cov(const std::string& property, double value) {
  if (!notifier_) return;
  for (const auto& sub : subscriptions_) {
    if (sub.property != property) continue;
    BacnetMsg msg;
    msg.service = BacnetMsg::Service::kCovNotification;
    msg.src_device = id_;
    msg.dst_device = sub.subscriber;
    msg.property = property;
    msg.value = value;
    notifier_(msg);
  }
}

// ---- SecureProxy ----

std::uint64_t SecureProxy::mac(const BacnetMsg& msg, std::uint64_t key) {
  // FNV-1a over the authenticated fields, mixed with the key. NOT
  // cryptographic; a stand-in exercising the protocol-level properties.
  std::uint64_t h = 1469598103934665603ULL ^ key;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  mix(static_cast<std::uint64_t>(msg.service));
  mix(msg.dst_device);
  mix(msg.sequence);
  mix(static_cast<std::uint64_t>(msg.value * 1e6));
  for (char c : msg.property) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

BacnetMsg SecureProxy::seal(BacnetMsg msg, std::uint64_t key,
                            std::uint64_t sequence) {
  msg.sequence = sequence;
  msg.auth_tag = mac(msg, key);
  return msg;
}

BacnetMsg SecureProxy::handle(const BacnetMsg& in) {
  if (in.service != BacnetMsg::Service::kWriteProperty) {
    return legacy_.handle(in);  // reads and discovery pass through
  }
  BacnetMsg err;
  err.service = BacnetMsg::Service::kError;
  err.src_device = id_;
  err.dst_device = in.src_device;
  err.invoke_id = in.invoke_id;
  if (in.auth_tag != mac(in, key_)) {
    ++rejected_bad_tag_;
    if (machine_ != nullptr) {
      machine_->audit().record(
          machine_->now(), machine_->machine_id(), -1, "proxy.tag_reject",
          "bad auth tag on write to " + name_ + " property '" + in.property +
              "' claimed src device " + std::to_string(in.src_device),
          machine_->spans(), machine_->spans().current(-1));
    }
    return err;
  }
  if (in.sequence <= last_sequence_) {
    ++rejected_replay_;  // replayed or stale datagram
    if (machine_ != nullptr) {
      machine_->audit().record(
          machine_->now(), machine_->machine_id(), -1, "proxy.replay_reject",
          "stale sequence " + std::to_string(in.sequence) + " (last " +
              std::to_string(last_sequence_) + ") on write to " + name_ +
              " property '" + in.property + "'",
          machine_->spans(), machine_->spans().current(-1));
    }
    return err;
  }
  last_sequence_ = in.sequence;
  return legacy_.handle(in);
}

// ---- BacnetNetwork ----

void BacnetNetwork::send(BacnetMsg msg) {
  // Same causal-tracing contract as Fabric::post: inherit the sender's
  // network context unless the datagram was pre-stamped, cover the wire
  // hop with a "net.link" flow span, and carry its context in the
  // reserved header fields.
  auto& spans = machine_.spans();
  obs::SpanContext parent{msg.trace_id, msg.parent_span};
  if (!parent.valid()) parent = spans.current(-1);
  const std::uint64_t span =
      spans.begin_flow(-1, machine_.now(), tag_link_span_, parent);
  const obs::SpanContext ctx = spans.context_of(span);
  msg.trace_id = ctx.trace_id;
  msg.parent_span = ctx.parent_span;
  sent_log_.push_back(msg);
  const auto dev_it = devices_.find(msg.dst_device);
  if (dev_it == devices_.end()) {
    spans.end_flow(machine_.now(), span, tag_note_drop_);
    return;
  }
  // Bounded inbox: a flood makes the device drop datagrams (DoS).
  std::size_t& depth = inflight_[msg.dst_device];
  if (depth >= kInboxDepth) {
    ++dropped_;
    machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kNetwork,
                          "bacnet.drop",
                          "inbox overflow at device " +
                              std::to_string(msg.dst_device));
    spans.end_flow(machine_.now(), span, tag_note_drop_);
    return;
  }
  ++depth;
  BacnetDevice* dev = dev_it->second;
  machine_.at(machine_.now() + latency_, [this, dev, msg, span] {
    --inflight_[msg.dst_device];
    machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kNetwork,
                          "bacnet.deliver",
                          std::string(to_string(msg.service)) + " -> " +
                              dev->name());
    auto& spans = machine_.spans();
    spans.end_flow(machine_.now(), span);
    const obs::SpanContext saved = spans.current(-1);
    spans.set_current(-1, obs::SpanContext{msg.trace_id, msg.parent_span});
    replies_.push_back(dev->handle(msg));
    spans.set_current(-1, saved);
  });
}

}  // namespace mkbas::net
