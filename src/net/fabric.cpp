#include "net/fabric.hpp"

#include <algorithm>
#include <string>

namespace mkbas::net {

namespace {

std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string link_name(int src, int dst) {
  return std::to_string(src) + "->" + std::to_string(dst);
}

}  // namespace

int Fabric::add_node(std::uint64_t machine_seed) {
  const int node = static_cast<int>(machines_.size());
  machines_.push_back(std::make_unique<sim::Machine>(machine_seed));
  // Span ids are derived from (machine id, virtual time, sequence), so
  // every node needs a distinct id for the fabric-wide merge to be
  // collision-free.
  machines_.back()->set_machine_id(node);
  inflight_.push_back(0);
  obs::MetricsRegistry& head = machines_[0]->metrics();
  if (node == 0) {
    delivered_ = head.counter("fabric.delivered");
    drop_loss_ = head.counter("fabric.drop.loss");
    drop_partition_ = head.counter("fabric.drop.partition");
    drop_overflow_ = head.counter("fabric.drop.overflow");
    // One second of virtual time covers any sane link; COV latencies are
    // a few base latencies end to end.
    cov_latency_us_ = head.log_histogram("fabric.cov.latency_us", 4, 1e6);
    cov_sig_ = machines_[0]->health().signal("fabric.cov.latency_us");
  }
  // Per-node inbox-overflow rate signal on the node being flooded: the
  // surge threshold trips within one 5s window of a flood starting,
  // long before the end-of-run attack verdicts.
  obs::DetectorConfig ov_cfg;
  ov_cfg.rate = true;
  ov_cfg.surge = 256.0;
  overflow_sig_.push_back(
      machines_.back()->health().signal("net.inbox_overflow", ov_cfg));
  inflight_gauge_.push_back(
      head.gauge("fabric.node." + std::to_string(node) + ".inflight"));
  return node;
}

void Fabric::attach(int node, BacnetDevice& dev) {
  devices_[dev.id()] = Endpoint{node, &dev};
  dev.set_notifier([this, node](BacnetMsg msg) { post(node, msg); });
  dev.bind_machine(machines_[node].get());
}

const LinkProfile& Fabric::link(int src, int dst) const {
  const auto it = links_.find({src, dst});
  return it == links_.end() ? default_link_ : it->second;
}

sim::Rng& Fabric::link_rng(int src, int dst) {
  auto it = link_rngs_.find({src, dst});
  if (it == link_rngs_.end()) {
    // Seeded from (fabric seed, src, dst) only: the stream is a property
    // of the link, independent of what any other link carries.
    std::uint64_t h = fnv1a_mix(1469598103934665603ULL, seed_);
    h = fnv1a_mix(h, static_cast<std::uint64_t>(src));
    h = fnv1a_mix(h, static_cast<std::uint64_t>(dst));
    it = link_rngs_.emplace(std::make_pair(src, dst), sim::Rng(h)).first;
  }
  return it->second;
}

obs::Counter& Fabric::link_drop_counter(int src, int dst) {
  auto it = link_drops_.find({src, dst});
  if (it == link_drops_.end()) {
    it = link_drops_
             .emplace(std::make_pair(src, dst),
                      machines_[0]->metrics().counter(
                          "fabric.link." + link_name(src, dst) + ".drop"))
             .first;
  }
  return it->second;
}

bool Fabric::partitioned(int a, int b, sim::Time at) const {
  for (const PartitionWindow& w : partitions_) {
    const bool pair = (w.node_a == a && w.node_b == b) ||
                      (w.node_a == b && w.node_b == a);
    if (pair && at >= w.from && at < w.to) return true;
  }
  return false;
}

sim::Duration Fabric::quantum() const {
  sim::Duration q = default_link_.base;
  for (const auto& [key, profile] : links_) {
    (void)key;
    q = std::min(q, profile.base);
  }
  return std::max<sim::Duration>(q, 1);
}

void Fabric::post(int src_node, BacnetMsg msg) {
  sim::Machine& src = *machines_[src_node];
  msg.sent_at = src.now();
  // Causal tracing: if the caller did not pre-stamp a context, inherit
  // whatever the posting node's network context is (pid -1 — fabric work
  // is not owned by any process). The "net.link" flow span covers the
  // wire hop; its context rides in the datagram's reserved header fields
  // so the receiving node can chain onto it.
  obs::SpanContext parent{msg.trace_id, msg.parent_span};
  if (!parent.valid()) parent = src.spans().current(-1);
  const std::uint64_t span =
      src.spans().begin_flow(-1, msg.sent_at, tag_link_span_, parent);
  const obs::SpanContext ctx = src.spans().context_of(span);
  msg.trace_id = ctx.trace_id;
  msg.parent_span = ctx.parent_span;
  sent_log_.push_back(msg);
  outbox_.push_back(OutMsg{src_node, std::move(msg), span});
}

void Fabric::run_until(sim::Time t) {
  const sim::Duration q = quantum();
  while (now_ < t) {
    const sim::Time barrier = std::min<sim::Time>(now_ + q, t);
    // Fixed node order at every barrier: the interleaving is a pure
    // function of the topology, never of host scheduling.
    for (auto& m : machines_) m->run_until(barrier);
    now_ = barrier;
    // Route everything posted during the slice. Deliveries land at
    // sent_at + base + jitter >= barrier (base >= quantum, jitter >= 0),
    // i.e. never in any machine's past.
    std::vector<OutMsg> batch;
    batch.swap(outbox_);
    for (const OutMsg& out : batch) route(out.src_node, out.msg, out.span);
  }
}

void Fabric::route(int src_node, const BacnetMsg& msg, std::uint64_t span) {
  sim::Machine& src = *machines_[src_node];
  const auto it = devices_.find(msg.dst_device);
  if (it == devices_.end()) {  // nobody claims the address
    src.spans().end_flow(now_, span, tag_note_drop_);
    return;
  }
  const Endpoint& ep = it->second;
  const int dst_node = ep.node;

  if (partitioned(src_node, dst_node, msg.sent_at)) {
    drop_partition_.inc();
    link_drop_counter(src_node, dst_node).inc();
    src.trace().emit(msg.sent_at, -1, sim::TraceKind::kNetwork,
                     "fabric.drop",
                     "partition " + link_name(src_node, dst_node));
    src.spans().end_flow(now_, span, tag_note_drop_);
    return;
  }
  const LinkProfile& profile = link(src_node, dst_node);
  if (profile.loss > 0.0 &&
      link_rng(src_node, dst_node).next_double() < profile.loss) {
    drop_loss_.inc();
    link_drop_counter(src_node, dst_node).inc();
    src.trace().emit(msg.sent_at, -1, sim::TraceKind::kNetwork,
                     "fabric.drop", "loss " + link_name(src_node, dst_node));
    src.spans().end_flow(now_, span, tag_note_drop_);
    return;
  }
  if (inflight_[dst_node] >= kInboxDepth) {
    drop_overflow_.inc();
    overflow_sig_[static_cast<std::size_t>(dst_node)].count(now_);
    link_drop_counter(src_node, dst_node).inc();
    src.trace().emit(msg.sent_at, -1, sim::TraceKind::kNetwork,
                     "fabric.drop",
                     "inbox overflow at node " + std::to_string(dst_node));
    src.spans().end_flow(now_, span, tag_note_drop_);
    return;
  }

  sim::Duration jitter = 0;
  if (profile.jitter > 0) {
    jitter = static_cast<sim::Duration>(link_rng(src_node, dst_node)
                                            .next_below(profile.jitter + 1));
  }
  const sim::Time when =
      std::max(msg.sent_at + profile.base + jitter, now_);
  deliver(src_node, dst_node, ep, msg, when, span);
}

void Fabric::deliver(int src_node, int dst_node, const Endpoint& ep,
                     const BacnetMsg& msg, sim::Time when,
                     std::uint64_t span) {
  ++inflight_[dst_node];
  inflight_gauge_[dst_node].set(static_cast<double>(inflight_[dst_node]));
  sim::Machine& dst = *machines_[dst_node];
  dst.at(when, [this, src_node, dst_node, ep, msg, when, span] {
    --inflight_[dst_node];
    inflight_gauge_[dst_node].set(static_cast<double>(inflight_[dst_node]));
    sim::Machine& m = *machines_[dst_node];
    m.trace().emit(m.now(), -1, sim::TraceKind::kNetwork, "fabric.deliver",
                   std::string(to_string(msg.service)) + " -> " +
                       ep.dev->name());
    delivered_.inc();
    if (msg.service == BacnetMsg::Service::kCovNotification &&
        msg.sent_at >= 0) {
      cov_latency_us_.record(static_cast<double>(when - msg.sent_at));
      cov_sig_.observe(when, static_cast<double>(when - msg.sent_at));
    }
    // Close the wire-hop span on the *sending* node's store. Safe and
    // deterministic: run_until advances machines in lockstep on one host
    // thread, so no other machine is touching that store right now.
    machines_[src_node]->spans().end_flow(when, span);
    // Whatever the device does while handling — COV pushes via its
    // notifier, proxy audit records, the routed reply below — chains
    // onto the datagram's carried context.
    auto& spans = m.spans();
    const obs::SpanContext saved = spans.current(-1);
    spans.set_current(-1, obs::SpanContext{msg.trace_id, msg.parent_span});
    BacnetMsg reply = ep.dev->handle(msg);
    // Route replies for request services only; COV notifications are
    // unconfirmed on the fabric, so an ack can never generate an ack.
    const bool request =
        msg.service == BacnetMsg::Service::kWhoIs ||
        msg.service == BacnetMsg::Service::kReadProperty ||
        msg.service == BacnetMsg::Service::kWriteProperty ||
        msg.service == BacnetMsg::Service::kSubscribeCov;
    if (request && devices_.count(reply.dst_device) != 0 &&
        reply.dst_device != msg.dst_device) {
      post(dst_node, reply);
    }
    spans.set_current(-1, saved);
  });
}

}  // namespace mkbas::net
