#include "net/fabric.hpp"

#include <algorithm>
#include <numeric>
#include <string>

#include "campaign/pool.hpp"

namespace mkbas::net {

namespace {

std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string link_name(int src, int dst) {
  return std::to_string(src) + "->" + std::to_string(dst);
}

}  // namespace

Fabric::Fabric(std::uint64_t seed) : seed_(seed) {
  auto& tags = sim::TagRegistry::instance();
  tag_link_span_ = tags.intern("net.link");
  tag_note_drop_ = tags.intern("drop");
}

Fabric::~Fabric() = default;

int Fabric::add_node(std::uint64_t machine_seed) {
  const int node = static_cast<int>(machines_.size());
  machines_.push_back(std::make_unique<sim::Machine>(machine_seed));
  // Span ids are derived from (machine id, virtual time, sequence), so
  // every node needs a distinct id for the fabric-wide merge to be
  // collision-free.
  machines_.back()->set_machine_id(node);

  // All fabric instrumentation lives on the node's OWN registry and is
  // merged by name at export time: counters sum, histograms add buckets.
  // That keeps every hot-path write component-local, which is what lets
  // independent components run on different pool workers with no shared
  // mutable state.
  auto ns = std::make_unique<NodeState>();
  sim::Machine& m = *machines_.back();
  ns->posted = m.metrics().counter("fabric.posted");
  ns->delivered = m.metrics().counter("fabric.delivered");
  ns->drop_loss = m.metrics().counter("fabric.drop.loss");
  ns->drop_partition = m.metrics().counter("fabric.drop.partition");
  ns->drop_overflow = m.metrics().counter("fabric.drop.overflow");
  ns->drop_unroutable = m.metrics().counter("fabric.drop.unroutable");
  // One second of virtual time covers any sane link; COV latencies are
  // a few base latencies end to end.
  ns->cov_latency_us = m.metrics().log_histogram("fabric.cov.latency_us", 4, 1e6);
  ns->backlog = m.metrics().gauge("fabric.inbox.backlog");
  ns->cov_sig = m.health().signal("fabric.cov.latency_us");
  // Inbox-overflow rate signal on the node being flooded: the surge
  // threshold trips within one 5s window of a flood starting, long
  // before the end-of-run attack verdicts.
  obs::DetectorConfig ov_cfg;
  ov_cfg.rate = true;
  ov_cfg.surge = 256.0;
  ns->overflow_sig = m.health().signal("net.inbox_overflow", ov_cfg);
  nodes_.push_back(std::move(ns));
  engines_dirty_ = true;
  return node;
}

void Fabric::attach(int node, BacnetDevice& dev) {
  devices_[dev.id()] = Endpoint{node, &dev};
  dev.set_notifier([this, node](BacnetMsg msg) { post(node, msg); });
  dev.bind_machine(machines_[node].get());
}

void Fabric::set_link(int src, int dst, LinkProfile p) {
  LinkState& ls = link_state(src, dst);
  ls.has_profile = true;
  ls.profile = p;
}

void Fabric::set_topology(Topology topo) {
  topo_ = std::move(topo);
  has_topology_ = topo_.node_count() > 0;
  allowed_links_.clear();
  engines_dirty_ = true;
  if (!has_topology_) return;
  for (const auto& [src, dst] : topo_.links) {
    allowed_links_.insert(link_key(src, dst));
    // Pre-create every declared link's state now, while single-threaded:
    // the hot path then only ever *reads* the links_ map, so sharded
    // components can draw from their own link RNGs concurrently.
    link_state(src, dst);
  }
  for (int i = 0; i < topo_.node_count() &&
                  i < static_cast<int>(nodes_.size());
       ++i) {
    NodeState& ns = *nodes_[i];
    switch (topo_.nodes[i].role) {
      case NodeRole::kZone:
        break;
      case NodeRole::kFloor:
        // A floor head-end fans in a whole floor of zones: deeper inbox,
        // faster drain than a leaf controller.
        ns.inbox_depth = 256;
        ns.inbox_service = sim::msec(1);
        ns.cov_tier_us = machines_[i]->metrics().log_histogram(
            "fabric.cov.zone_to_floor_us", 4, 1e6);
        break;
      case NodeRole::kBuilding:
        ns.inbox_depth = 512;
        ns.inbox_service = sim::msec(1);
        ns.cov_tier_us = machines_[i]->metrics().log_histogram(
            "fabric.cov.floor_to_building_us", 4, 1e6);
        break;
    }
  }
}

void Fabric::set_jobs(int jobs) {
  jobs_ = jobs < 1 ? 1 : jobs;
  pool_ = jobs_ >= 2 ? std::make_unique<campaign::WorkStealingPool>(jobs_)
                     : nullptr;
}

void Fabric::set_inbox(int node, std::size_t depth, sim::Duration service) {
  nodes_[node]->inbox_depth = depth;
  nodes_[node]->inbox_service = std::max<sim::Duration>(service, 1);
}

Fabric::LinkState& Fabric::link_state(int src, int dst) {
  return links_[link_key(src, dst)];
}

sim::Rng& Fabric::link_rng(int src, int dst, LinkState& ls) {
  if (!ls.rng_init) {
    // Seeded from (fabric seed, src, dst) only: the stream is a property
    // of the link, independent of what any other link carries and of the
    // order links first see traffic.
    std::uint64_t h = fnv1a_mix(1469598103934665603ULL, seed_);
    h = fnv1a_mix(h, static_cast<std::uint64_t>(src));
    h = fnv1a_mix(h, static_cast<std::uint64_t>(dst));
    ls.rng = sim::Rng(h);
    ls.rng_init = true;
  }
  return ls.rng;
}

obs::Counter& Fabric::link_drop_counter(int src, int dst, LinkState& ls) {
  if (!ls.drops_init) {
    // On the SOURCE node's registry: registration stays on the thread
    // that owns the component, and the by-name export merge puts every
    // link counter in the building-wide JSON regardless.
    ls.drops = machines_[src]->metrics().counter(
        "fabric.link." + link_name(src, dst) + ".drop");
    ls.drops_init = true;
  }
  return ls.drops;
}

bool Fabric::partitioned(int a, int b, sim::Time at) const {
  for (const PartitionWindow& w : partitions_) {
    const bool pair = (w.node_a == a && w.node_b == b) ||
                      (w.node_a == b && w.node_b == a);
    if (pair && at >= w.from && at < w.to) return true;
  }
  return false;
}

bool Fabric::link_allowed(int src, int dst) const {
  if (!has_topology_) return true;
  if (src == dst) return true;  // node-local hop (devices co-hosted)
  return allowed_links_.count(link_key(src, dst)) != 0;
}

sim::Duration Fabric::quantum() const {
  // Min over explicit profiles plus the default — order-independent, so
  // the unordered links_ map cannot leak iteration order into results.
  sim::Duration q = default_link_.base;
  for (const auto& [key, ls] : links_) {
    (void)key;
    if (ls.has_profile) q = std::min(q, ls.profile.base);
  }
  return std::max<sim::Duration>(q, 1);
}

void Fabric::post(int src_node, BacnetMsg msg) {
  sim::Machine& src = *machines_[src_node];
  NodeState& ns = *nodes_[src_node];
  msg.sent_at = src.now();
  // Causal tracing: if the caller did not pre-stamp a context, inherit
  // whatever the posting node's network context is (pid -1 — fabric work
  // is not owned by any process). The "net.link" flow span covers the
  // wire hop; its context rides in the datagram's reserved header fields
  // so the receiving node can chain onto it.
  obs::SpanContext parent{msg.trace_id, msg.parent_span};
  if (!parent.valid()) parent = src.spans().current(-1);
  const std::uint64_t span =
      src.spans().begin_flow(-1, msg.sent_at, tag_link_span_, parent);
  const obs::SpanContext ctx = src.spans().context_of(span);
  msg.trace_id = ctx.trace_id;
  msg.parent_span = ctx.parent_span;
  ns.posted.inc();
  if (capture_) ns.sent.push_back(SentRec{msg, ns.post_seq});
  ++ns.post_seq;
  // The wire outcome is decided NOW, from per-link state consumed in
  // src-local posting order — a pure function of (topology, seed) that
  // neither the sync mode nor the component sharding can perturb.
  route(src_node, std::move(msg), span);
}

void Fabric::route(int src_node, BacnetMsg&& msg, std::uint64_t span) {
  sim::Machine& src = *machines_[src_node];
  NodeState& sn = *nodes_[src_node];
  const sim::Time sent = msg.sent_at;

  const auto it = devices_.find(msg.dst_device);
  if (it == devices_.end() || !link_allowed(src_node, it->second.node)) {
    // Nobody claims the address, or the topology has no such wire
    // (segmentation containment: a compromised zone cannot even address
    // a device behind another head-end). No link state is touched — the
    // datagram never reached a wire.
    sn.drop_unroutable.inc();
    if (tracing_) {
      src.trace().emit(sent, -1, sim::TraceKind::kNetwork, "fabric.drop",
                       "unroutable device " + std::to_string(msg.dst_device) +
                           " from node " + std::to_string(src_node));
    }
    src.spans().end_flow(sent, span, tag_note_drop_);
    return;
  }
  const Endpoint ep = it->second;
  const int dst_node = ep.node;

  if (partitioned(src_node, dst_node, sent)) {
    sn.drop_partition.inc();
    link_drop_counter(src_node, dst_node, link_state(src_node, dst_node))
        .inc();
    if (tracing_) {
      src.trace().emit(sent, -1, sim::TraceKind::kNetwork, "fabric.drop",
                       "partition " + link_name(src_node, dst_node));
    }
    src.spans().end_flow(sent, span, tag_note_drop_);
    return;
  }

  LinkState& ls = link_state(src_node, dst_node);
  const LinkProfile& profile = profile_of(ls);
  if (profile.loss > 0.0 &&
      link_rng(src_node, dst_node, ls).next_double() < profile.loss) {
    sn.drop_loss.inc();
    link_drop_counter(src_node, dst_node, ls).inc();
    if (tracing_) {
      src.trace().emit(sent, -1, sim::TraceKind::kNetwork, "fabric.drop",
                       "loss " + link_name(src_node, dst_node));
    }
    src.spans().end_flow(sent, span, tag_note_drop_);
    return;
  }

  sim::Duration jitter = 0;
  if (profile.jitter > 0) {
    jitter = static_cast<sim::Duration>(
        link_rng(src_node, dst_node, ls).next_below(profile.jitter + 1));
  }
  // base >= 1us is the link's lookahead: the arrival is strictly after
  // the send, so it can never land in the destination's past no matter
  // how far ahead that node's clock has been allowed to run.
  const sim::Time when =
      sent + std::max<sim::Duration>(profile.base, 1) + jitter;
  // The wire hop span closes here, at route time, stamped with the
  // arrival instant. Close order == src-local post order — identical
  // under both sync modes.
  src.spans().end_flow(when, span);

  Delivery d;
  d.when = when;
  d.src_node = src_node;
  d.link_seq = ls.seq++;
  d.msg = std::move(msg);
  d.ep = ep;
  nodes_[dst_node]->pending.push(std::move(d));
  if (!component_of_.empty()) {
    Engine& eng = engines_[component_of_[dst_node]];
    // Routed links never cross components (they are the edges the
    // components were built from), so this push is always into the heap
    // of the component currently executing on THIS thread.
    if (eng.active) eng.heap.emplace(when, dst_node);
  }
}

void Fabric::execute_delivery(int dst_node, sim::Time exec, Delivery d) {
  sim::Machine& m = *machines_[dst_node];
  NodeState& ns = *nodes_[dst_node];
  // Drain-queue inbox: each admitted datagram occupies the queue until
  // its service completes; arrivals finding the queue full are shed.
  // Evaluated here, in canonical (when, src, link seq) arrival order —
  // receiver-side state no sync mode can observe differently.
  while (!ns.inbox.empty() && ns.inbox.front() <= exec) ns.inbox.pop_front();
  if (ns.inbox.size() >= ns.inbox_depth) {
    ns.drop_overflow.inc();
    ns.overflow_sig.count(exec);
    link_drop_counter(d.src_node, dst_node,
                      link_state(d.src_node, dst_node))
        .inc();
    ns.backlog.set(static_cast<double>(ns.inbox.size()));
    if (tracing_) {
      m.trace().emit(exec, -1, sim::TraceKind::kNetwork, "fabric.drop",
                     "inbox overflow at node " + std::to_string(dst_node));
    }
    return;
  }
  const sim::Time busy_until = ns.inbox.empty() ? exec : ns.inbox.back();
  ns.inbox.push_back(std::max(exec, busy_until) + ns.inbox_service);
  ns.backlog.set(static_cast<double>(ns.inbox.size()));

  // Park the delivery in the node's pool and capture only {this, slot}:
  // two words fit std::function's inline storage, so scheduling the
  // handler allocates nothing once the pool is warm.
  Exec* slot = ns.exec_pool.acquire(std::move(d), dst_node);
  m.at(exec, [this, slot]() {
    const Delivery& d = slot->d;
    const int dst_node = slot->dst_node;
    sim::Machine& dst = *machines_[dst_node];
    NodeState& dn = *nodes_[dst_node];
    const sim::Time now = dst.now();
    if (tracing_) {
      dst.trace().emit(now, -1, sim::TraceKind::kNetwork, "fabric.deliver",
                       std::string(to_string(d.msg.service)) + " -> " +
                           d.ep.dev->name());
    }
    dn.delivered.inc();
    if (d.msg.service == BacnetMsg::Service::kCovNotification &&
        d.msg.sent_at >= 0) {
      const double lat = static_cast<double>(now - d.msg.sent_at);
      dn.cov_latency_us.record(lat);
      dn.cov_sig.observe(now, lat);
      // Per-tier arrival latency: inert default handle on leaf zones,
      // real histogram on floor/building head-ends.
      dn.cov_tier_us.record(lat);
    }
    // Whatever the device does while handling — COV pushes via its
    // notifier, proxy audit records, the routed reply below — chains
    // onto the datagram's carried context.
    auto& spans = dst.spans();
    const obs::SpanContext saved = spans.current(-1);
    spans.set_current(-1, obs::SpanContext{d.msg.trace_id, d.msg.parent_span});
    BacnetMsg reply = d.ep.dev->handle(d.msg);
    // Route replies for request services only; COV notifications are
    // unconfirmed on the fabric, so an ack can never generate an ack.
    const bool request = d.msg.service == BacnetMsg::Service::kWhoIs ||
                         d.msg.service == BacnetMsg::Service::kReadProperty ||
                         d.msg.service == BacnetMsg::Service::kWriteProperty ||
                         d.msg.service == BacnetMsg::Service::kSubscribeCov;
    if (request && devices_.count(reply.dst_device) != 0 &&
        reply.dst_device != d.msg.dst_device) {
      post(dst_node, reply);
    }
    spans.set_current(-1, saved);
    dn.exec_pool.release(slot);
  });
}

sim::Time Fabric::node_key(int i) const {
  sim::Time k = machines_[i]->next_event_time();
  const NodeState& ns = *nodes_[i];
  if (!ns.pending.empty()) k = std::min(k, ns.pending.top().when);
  return k;
}

void Fabric::advance_node(int i, sim::Time t) {
  sim::Machine& m = *machines_[i];
  NodeState& ns = *nodes_[i];
  while (!ns.pending.empty() && ns.pending.top().when <= t) {
    const sim::Time w = ns.pending.top().when;
    if (w < m.now()) ++ns.violations;  // conservative sync was broken
    const sim::Time exec = std::max(w, m.now());
    // Take the whole batch at w — the heap pops it in (src, link seq)
    // order, and machine.at() preserves insertion order at one instant,
    // AFTER any local timer already due there. Both sync modes schedule
    // through this exact sequence.
    while (!ns.pending.empty() && ns.pending.top().when == w) {
      Delivery d = ns.pending.top();
      ns.pending.pop();
      execute_delivery(i, exec, std::move(d));
    }
    if (exec > m.now()) {
      m.run_until(exec);
    } else {
      // The clock already sits AT the arrival instant (it crept here
      // finishing an earlier batch): run one microsecond so the at(exec)
      // callbacks fire at the correct virtual time.
      m.run_for(1);
    }
  }
  m.run_until(t);
}

void Fabric::prepare_engines() {
  if (!engines_dirty_) return;
  const int n = static_cast<int>(machines_.size());
  component_of_.assign(static_cast<std::size_t>(n), 0);
  engines_.clear();
  if (n == 0) {
    engines_dirty_ = false;
    return;
  }
  if (!has_topology_) {
    // Fully connected segment: one component holds everyone.
    engines_.emplace_back();
    engines_.back().members.resize(static_cast<std::size_t>(n));
    std::iota(engines_.back().members.begin(), engines_.back().members.end(),
              0);
    engines_dirty_ = false;
    return;
  }
  // Union-find over the undirected closure of the declared links: nodes
  // with no possible wire between them can never exchange a datagram,
  // so they advance independently (and on different pool workers).
  std::vector<int> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&parent](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (const auto& [a, b] : topo_.links) {
    if (a >= n || b >= n) continue;
    const int ra = find(a);
    const int rb = find(b);
    if (ra != rb) parent[static_cast<std::size_t>(std::max(ra, rb))] =
        std::min(ra, rb);
  }
  // Components numbered by their lowest member: merge order is a pure
  // function of the topology.
  std::vector<int> comp_index(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    const int root = find(i);
    if (comp_index[static_cast<std::size_t>(root)] < 0) {
      comp_index[static_cast<std::size_t>(root)] =
          static_cast<int>(engines_.size());
      engines_.emplace_back();
    }
    const int c = comp_index[static_cast<std::size_t>(root)];
    component_of_[static_cast<std::size_t>(i)] = c;
    engines_[static_cast<std::size_t>(c)].members.push_back(i);
  }
  engines_dirty_ = false;
}

void Fabric::run_component(Engine& eng, sim::Time t) {
  eng.heap = {};
  for (int i : eng.members) {
    const sim::Time k = node_key(i);
    if (k < t) eng.heap.emplace(k, i);
  }
  eng.active = true;
  while (!eng.heap.empty()) {
    const auto [k, i] = eng.heap.top();
    eng.heap.pop();
    if (k >= t) break;  // heap min >= t => every node's next event >= t
    // Stale entries are DISCARDED, never re-pushed: every change of a
    // node's key already pushes the new key (route() on arrival, the
    // re-push after advance below), so the node's current key is always
    // represented and a mismatched pop is pure leftover. Re-pushing here
    // instead would keep every leftover alive through each key change —
    // quadratic in delivered datagrams under a flood.
    const sim::Time actual = node_key(i);
    if (actual != k) continue;
    sim::Machine& m = *machines_[i];
    NodeState& ns = *nodes_[i];
    const bool pinned =
        k == m.now() && (ns.pending.empty() || ns.pending.top().when > k);
    if (pinned) {
      // A ready process is parked exactly at the clock (a paused
      // run_until left it runnable). Nudge the machine one microsecond:
      // provably safe, because every other node's next event is >= k and
      // anything it posts arrives at >= k + 1.
      m.run_until(std::min<sim::Time>(k + 1, t));
    } else {
      // k is the global minimum across the component, so the batch of
      // deliveries at k (if any) is complete: nothing can still arrive
      // at or before k. Execute exactly that instant.
      advance_node(i, k);
    }
    const sim::Time nk = node_key(i);
    if (nk < t) eng.heap.emplace(nk, i);
  }
  eng.active = false;
  // Barrier: every member reaches t, in member (= node) order — the same
  // order the epoch barrier visits them, so events at exactly t
  // interleave identically in both modes.
  for (int i : eng.members) advance_node(i, t);
}

void Fabric::run_until(sim::Time t) {
  prepare_engines();
  if (sync_ == SyncMode::kEpoch) {
    const sim::Duration q = quantum();
    while (now_ < t) {
      const sim::Time barrier = std::min<sim::Time>(now_ + q, t);
      // Fixed node order at every barrier: the interleaving is a pure
      // function of the topology, never of host scheduling.
      for (int i = 0; i < static_cast<int>(machines_.size()); ++i) {
        advance_node(i, barrier);
      }
      now_ = barrier;
    }
    return;
  }
  if (pool_ && engines_.size() > 1) {
    pool_->run(engines_.size(),
               [this, t](std::size_t c) { run_component(engines_[c], t); });
  } else {
    for (Engine& eng : engines_) run_component(eng, t);
  }
  if (t > now_) now_ = t;
}

std::vector<BacnetMsg> Fabric::sent_log() const {
  struct Rec {
    sim::Time at;
    int node;
    std::uint64_t seq;
    const BacnetMsg* msg;
  };
  std::vector<Rec> all;
  std::size_t total = 0;
  for (const auto& ns : nodes_) total += ns->sent.size();
  all.reserve(total);
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    for (const SentRec& r : nodes_[static_cast<std::size_t>(i)]->sent) {
      all.push_back(Rec{r.msg.sent_at, i, r.seq, &r.msg});
    }
  }
  // Canonical capture order: (send time, posting node, per-node post
  // sequence). stable_sort for determinism; the key is already unique.
  std::stable_sort(all.begin(), all.end(), [](const Rec& a, const Rec& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.node != b.node) return a.node < b.node;
    return a.seq < b.seq;
  });
  std::vector<BacnetMsg> out;
  out.reserve(all.size());
  for (const Rec& r : all) out.push_back(*r.msg);
  return out;
}

std::uint64_t Fabric::posted() const {
  std::uint64_t n = 0;
  for (const auto& ns : nodes_) n += ns->posted.value();
  return n;
}

std::uint64_t Fabric::delivered() const {
  std::uint64_t n = 0;
  for (const auto& ns : nodes_) n += ns->delivered.value();
  return n;
}

std::uint64_t Fabric::dropped_loss() const {
  std::uint64_t n = 0;
  for (const auto& ns : nodes_) n += ns->drop_loss.value();
  return n;
}

std::uint64_t Fabric::dropped_partition() const {
  std::uint64_t n = 0;
  for (const auto& ns : nodes_) n += ns->drop_partition.value();
  return n;
}

std::uint64_t Fabric::dropped_overflow() const {
  std::uint64_t n = 0;
  for (const auto& ns : nodes_) n += ns->drop_overflow.value();
  return n;
}

std::uint64_t Fabric::dropped_unroutable() const {
  std::uint64_t n = 0;
  for (const auto& ns : nodes_) n += ns->drop_unroutable.value();
  return n;
}

std::uint64_t Fabric::pending() const {
  std::uint64_t n = 0;
  for (const auto& ns : nodes_) n += ns->pending.size();
  return n;
}

std::uint64_t Fabric::causality_violations() const {
  std::uint64_t n = 0;
  for (const auto& ns : nodes_) n += ns->violations;
  return n;
}

std::uint64_t Fabric::cov_delivered() const {
  std::uint64_t n = 0;
  for (const auto& ns : nodes_) n += ns->cov_latency_us.count();
  return n;
}

double Fabric::cov_p99_us() const {
  if (nodes_.empty()) return 0.0;
  // Every node's fabric.cov.latency_us shares one bound vector; sum the
  // buckets across nodes and walk to the 99th percentile upper bound.
  const std::vector<double>& bounds = nodes_[0]->cov_latency_us.bounds();
  std::vector<std::uint64_t> counts(bounds.size(), 0);
  std::uint64_t total = 0;
  std::uint64_t overflow = 0;
  for (const auto& ns : nodes_) {
    const obs::Histogram& h = ns->cov_latency_us;
    for (std::size_t b = 0; b < bounds.size(); ++b) {
      counts[b] += h.bucket_count(b);
    }
    total += h.count();
    overflow += h.overflow();
  }
  if (total == 0) return 0.0;
  const std::uint64_t target =
      total - total / 100;  // ceil-ish rank of the 99th percentile
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < bounds.size(); ++b) {
    seen += counts[b];
    if (seen >= target) return bounds[b];
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

}  // namespace mkbas::net
