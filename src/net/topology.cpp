#include "net/topology.hpp"

#include <stdexcept>

namespace mkbas::net {

const char* to_string(NodeRole r) {
  switch (r) {
    case NodeRole::kZone:
      return "zone";
    case NodeRole::kFloor:
      return "floor";
    case NodeRole::kBuilding:
      return "building";
  }
  return "?";
}

const char* to_string(TopologySpec::Kind k) {
  switch (k) {
    case TopologySpec::Kind::kFlat:
      return "flat";
    case TopologySpec::Kind::kLine:
      return "line";
    case TopologySpec::Kind::kStar:
      return "star";
    case TopologySpec::Kind::kTree:
      return "tree";
    case TopologySpec::Kind::kCampus:
      return "campus";
  }
  return "?";
}

bool parse_topology_kind(const std::string& s, TopologySpec::Kind* out) {
  if (s == "flat") *out = TopologySpec::Kind::kFlat;
  else if (s == "line") *out = TopologySpec::Kind::kLine;
  else if (s == "star") *out = TopologySpec::Kind::kStar;
  else if (s == "tree") *out = TopologySpec::Kind::kTree;
  else if (s == "campus") *out = TopologySpec::Kind::kCampus;
  else return false;
  return true;
}

Topology Topology::build(const TopologySpec& spec) {
  Topology t;
  t.spec = spec;
  if (spec.zones < 1) throw std::invalid_argument("topology: zones < 1");

  switch (spec.kind) {
    case TopologySpec::Kind::kFlat:
      return t;  // empty: the fabric stays fully connected

    case TopologySpec::Kind::kLine:
      for (int i = 0; i < spec.zones; ++i) {
        t.add_node(NodeRole::kZone, i == 0 ? -1 : i - 1, 0);
        if (i > 0) t.add_duplex(i - 1, i);
      }
      return t;

    case TopologySpec::Kind::kStar:
      t.add_node(NodeRole::kBuilding, -1, 0);
      t.building_heads.push_back(0);
      for (int i = 1; i <= spec.zones; ++i) {
        t.add_node(NodeRole::kZone, 0, 0);
        t.add_duplex(0, i);
        t.zone_nodes.push_back(i);
        t.zone_floor.push_back(0);
        t.zone_building.push_back(0);
      }
      return t;

    case TopologySpec::Kind::kTree:
    case TopologySpec::Kind::kCampus:
      break;
  }

  const int buildings =
      spec.kind == TopologySpec::Kind::kCampus ? spec.buildings : 1;
  if (buildings < 1) throw std::invalid_argument("topology: buildings < 1");
  const int floors = spec.floors < 1 ? 1 : spec.floors;
  t.floor_heads.resize(buildings);
  for (int b = 0; b < buildings; ++b) {
    // Distribute zones evenly; earlier buildings absorb the remainder.
    const int zb = spec.zones / buildings + (b < spec.zones % buildings);
    const int head = t.node_count();
    t.add_node(NodeRole::kBuilding, -1, b);
    t.building_heads.push_back(head);
    for (int f = 0; f < floors; ++f) {
      const int fn = t.node_count();
      t.add_node(NodeRole::kFloor, head, b);
      t.floor_heads[b].push_back(fn);
      t.add_duplex(head, fn);
    }
    for (int z = 0; z < zb; ++z) {
      const int fn = t.floor_heads[b][z % floors];
      const int zn = t.node_count();
      t.add_node(NodeRole::kZone, fn, b);
      t.add_duplex(fn, zn);
      // Management downlink: the building head-end writes setpoints
      // directly to zones; zones cannot address the head-end back.
      t.add_link(head, zn);
      t.zone_nodes.push_back(zn);
      t.zone_floor.push_back(fn);
      t.zone_building.push_back(b);
    }
  }
  return t;
}

}  // namespace mkbas::net
