#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/bacnet.hpp"
#include "sim/machine.hpp"
#include "sim/rng.hpp"

namespace mkbas::net {

/// Per-link delivery characteristics. Latency is `base + U[0, jitter]`:
/// jitter is strictly additive so a packet sent before an epoch barrier
/// can never be delivered before it (the lockstep causality invariant).
struct LinkProfile {
  sim::Duration base = sim::msec(5);
  sim::Duration jitter = sim::msec(2);
  double loss = 0.0;  // per-datagram drop probability
};

/// A scheduled network split between two nodes: datagrams sent in
/// [from, to) between node_a and node_b (either direction) are dropped;
/// the link heals at `to`.
struct PartitionWindow {
  int node_a = 0;
  int node_b = 0;
  sim::Time from = 0;
  sim::Time to = 0;
};

/// A deterministic BACnet/IP fabric connecting N sim::Machine instances —
/// one per zone controller plus a supervisory head-end (node 0 by
/// convention). The machines advance in conservative lockstep: the fabric
/// slices virtual time into epochs of one minimum link latency, advances
/// every machine to the barrier in fixed node order, then routes the
/// datagrams each node posted during the slice. Because jitter is
/// additive on top of the base latency, every delivery lands at or after
/// the barrier where it is routed, so no machine ever receives a message
/// in its past — and the whole building replays byte-identically from the
/// topology and the seed alone.
///
/// Loss and jitter draws come from one RNG stream per directed link,
/// seeded from (fabric seed, src, dst), so traffic on one link never
/// perturbs another link's draws.
class Fabric {
 public:
  /// Bounded per-node delivery queue: a flood saturates the victim's
  /// inbox and further datagrams are dropped (DoS shows up as loss).
  static constexpr std::size_t kInboxDepth = 64;

  /// `seed` salts every per-link RNG stream.
  explicit Fabric(std::uint64_t seed = 1) : seed_(seed) {
    auto& tags = sim::TagRegistry::instance();
    tag_link_span_ = tags.intern("net.link");
    tag_note_drop_ = tags.intern("drop");
  }

  /// Create the next node (index = add order) backed by its own machine.
  /// Returns the node index. Node 0 hosts the fabric-wide metrics.
  int add_node(std::uint64_t machine_seed);

  std::size_t node_count() const { return machines_.size(); }
  sim::Machine& machine(int node) { return *machines_[node]; }

  /// Register a device on a node. The device's notifier (COV pushes) is
  /// wired into the fabric; incoming datagrams addressed to its id are
  /// handled on that node's machine at delivery time.
  void attach(int node, BacnetDevice& dev);

  /// Default profile for links without an override.
  void set_default_link(LinkProfile p) { default_link_ = p; }
  /// Override one directed link (src node -> dst node).
  void set_link(int src, int dst, LinkProfile p) { links_[{src, dst}] = p; }
  void add_partition(PartitionWindow w) { partitions_.push_back(w); }

  /// Post a datagram onto the wire from `src_node`. Must be called while
  /// that node's machine is at the current epoch (i.e. from one of its
  /// callbacks, or between run_until() calls). The send time is stamped
  /// from the node's clock; routing happens at the next epoch barrier.
  void post(int src_node, BacnetMsg msg);

  /// Advance the whole building to virtual time `t` (lockstep).
  void run_until(sim::Time t);

  sim::Time now() const { return now_; }

  /// Every datagram ever posted, in routing order — the attacker's
  /// packet capture for replay attacks.
  const std::vector<BacnetMsg>& sent_log() const { return sent_log_; }

  std::uint64_t delivered() const { return delivered_.value(); }
  std::uint64_t dropped_loss() const { return drop_loss_.value(); }
  std::uint64_t dropped_partition() const { return drop_partition_.value(); }
  std::uint64_t dropped_overflow() const { return drop_overflow_.value(); }
  std::uint64_t cov_delivered() const { return cov_latency_us_.count(); }
  /// End-to-end COV latency distribution (microseconds), head-end view.
  const obs::Histogram& cov_latency() const { return cov_latency_us_; }

 private:
  struct Endpoint {
    int node = -1;
    BacnetDevice* dev = nullptr;
  };
  struct OutMsg {
    int src_node;
    BacnetMsg msg;  // msg.sent_at carries the posting node's clock
    // Open "net.link" flow span on the posting node's store; closed when
    // the datagram is delivered or dropped. Kernel-side metadata like
    // sent_at — never part of the frame the receiver parses.
    std::uint64_t span = 0;
  };

  const LinkProfile& link(int src, int dst) const;
  sim::Rng& link_rng(int src, int dst);
  bool partitioned(int a, int b, sim::Time at) const;
  sim::Duration quantum() const;
  void route(int src_node, const BacnetMsg& msg, std::uint64_t span);
  void deliver(int src_node, int dst_node, const Endpoint& ep,
               const BacnetMsg& msg, sim::Time when, std::uint64_t span);
  obs::Counter& link_drop_counter(int src, int dst);

  std::uint64_t seed_;
  std::uint32_t tag_link_span_ = 0;
  std::uint32_t tag_note_drop_ = 0;
  std::vector<std::unique_ptr<sim::Machine>> machines_;
  std::map<std::uint32_t, Endpoint> devices_;        // BACnet id -> endpoint
  std::map<std::pair<int, int>, LinkProfile> links_;
  std::map<std::pair<int, int>, sim::Rng> link_rngs_;
  std::map<std::pair<int, int>, obs::Counter> link_drops_;
  LinkProfile default_link_{};
  std::vector<PartitionWindow> partitions_;
  std::vector<OutMsg> outbox_;  // posts since the last barrier, in order
  std::vector<BacnetMsg> sent_log_;
  std::vector<std::size_t> inflight_;  // per node, scheduled undelivered
  std::vector<obs::Gauge> inflight_gauge_;
  sim::Time now_ = 0;

  // Fabric-wide metrics, registered on node 0's machine.
  obs::Counter delivered_;
  obs::Counter drop_loss_;
  obs::Counter drop_partition_;
  obs::Counter drop_overflow_;
  obs::Histogram cov_latency_us_;
  /// COV delivery-latency detector, on the head-end (subscriber) node.
  obs::HealthSignal cov_sig_;
  /// Per-node inbox-overflow rate detectors (flood DoS fires these).
  std::vector<obs::HealthSignal> overflow_sig_;
};

}  // namespace mkbas::net
