#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "net/bacnet.hpp"
#include "net/topology.hpp"
#include "sim/machine.hpp"
#include "sim/pool.hpp"
#include "sim/rng.hpp"

namespace mkbas::campaign {
class WorkStealingPool;
}

namespace mkbas::net {

/// Per-link delivery characteristics. Latency is `base + U[0, jitter]`:
/// the base latency is the link's *lookahead* — a datagram posted at t
/// can never arrive before t + base, which is what lets a receiver's
/// clock run ahead of a sender's by up to base without risking a
/// message in its past.
struct LinkProfile {
  sim::Duration base = sim::msec(5);
  sim::Duration jitter = sim::msec(2);
  double loss = 0.0;  // per-datagram drop probability
};

/// A scheduled network split between two nodes: datagrams sent in
/// [from, to) between node_a and node_b (either direction) are dropped;
/// the link heals at `to`.
struct PartitionWindow {
  int node_a = 0;
  int node_b = 0;
  sim::Time from = 0;
  sim::Time to = 0;
};

/// How the fabric synchronizes its machines.
enum class SyncMode {
  /// Per-link lookahead conservative sync: an event-driven scheduler
  /// always advances the node with the globally earliest next event
  /// (machine timer, ready process, or pending delivery). Safe because
  /// any datagram generated at or after that instant arrives at least
  /// one link base latency later. Cost scales with events, not with
  /// epochs x nodes — the city-scale mode.
  kLookahead,
  /// Legacy global lockstep: every machine advances to a barrier of one
  /// minimum link latency, in node order. Kept for the A/B property
  /// test: both modes must produce byte-identical exports.
  kEpoch,
};

/// A deterministic BACnet/IP fabric connecting N sim::Machine instances —
/// one per zone controller plus the supervisory head-ends. Datagrams are
/// routed eagerly at post() time: partition/loss verdicts and the jitter
/// draw come from one RNG stream per directed link (seeded from the
/// fabric seed and the link endpoints, consumed in per-link FIFO order),
/// so the wire outcome of every datagram is a pure function of
/// (topology, seed) regardless of sync mode or sharding. Deliveries land
/// in per-node pending queues ordered by (arrival time, source node,
/// per-link sequence) — the one canonical order both sync modes replay.
///
/// With a Topology attached, disconnected node groups are independent
/// components; run_until() can shard them across a work-stealing pool
/// (set_jobs) with byte-identical results, because no state is shared
/// between components and all exports merge in node order.
class Fabric {
 public:
  /// Bounded per-node delivery queue: a flood saturates the victim's
  /// inbox and further datagrams are dropped (DoS shows up as loss).
  static constexpr std::size_t kInboxDepth = 64;
  /// Default per-datagram service interval of the inbox drain: a node
  /// absorbs bursts of kInboxDepth, then sheds load beyond one datagram
  /// per interval. Receiver-side state, evaluated in canonical arrival
  /// order — identical under every sync mode and sharding.
  static constexpr sim::Duration kInboxService = sim::msec(5);

  /// `seed` salts every per-link RNG stream.
  explicit Fabric(std::uint64_t seed = 1);
  ~Fabric();

  /// Create the next node (index = add order) backed by its own machine.
  int add_node(std::uint64_t machine_seed);

  std::size_t node_count() const { return machines_.size(); }
  sim::Machine& machine(int node) { return *machines_[node]; }

  /// Register a device on a node. The device's notifier (COV pushes) is
  /// wired into the fabric; incoming datagrams addressed to its id are
  /// handled on that node's machine at delivery time.
  void attach(int node, BacnetDevice& dev);

  /// Default profile for links without an override.
  void set_default_link(LinkProfile p) { default_link_ = p; }
  /// Override one directed link (src node -> dst node).
  void set_link(int src, int dst, LinkProfile p);
  void add_partition(PartitionWindow w) { partitions_.push_back(w); }

  /// Restrict connectivity to the topology's declared links (posts on
  /// undeclared links drop as `unroutable`), annotate nodes with their
  /// supervisory roles, and split the fabric into independent
  /// components. Call after the nodes exist.
  void set_topology(Topology topo);
  const Topology& topology() const { return topo_; }

  void set_sync(SyncMode m) { sync_ = m; }
  SyncMode sync() const { return sync_; }

  /// Shard independent components across `jobs` workers (>= 2 enables
  /// the pool; components are always merged in node order, so the
  /// exports are --jobs invariant). Without a topology there is one
  /// component and run_until stays sequential.
  void set_jobs(int jobs);

  /// Keep (or stop keeping) the attacker-visible packet capture. Off
  /// saves memory on city-scale runs where nothing replays traffic.
  void set_capture(bool on) { capture_ = on; }
  /// Emit fabric.deliver / fabric.drop trace events (on by default;
  /// city-scale runs turn it off to keep the hot path allocation-free).
  void set_tracing(bool on) { tracing_ = on; }
  /// Override one node's inbox bound (head-end tiers take deeper queues
  /// with faster drains than leaf zones).
  void set_inbox(int node, std::size_t depth, sim::Duration service);

  /// Post a datagram onto the wire from `src_node`. Must be called while
  /// that node's machine is at its current virtual time (i.e. from one
  /// of its callbacks, or between run_until() calls). The send time is
  /// stamped from the node's clock; the wire outcome (drop/latency) is
  /// decided immediately, the delivery executes on the destination node
  /// when its clock reaches the arrival time.
  void post(int src_node, BacnetMsg msg);

  /// Advance the whole building to virtual time `t`.
  void run_until(sim::Time t);

  sim::Time now() const { return now_; }

  /// Every datagram ever posted (dropped or not), in canonical order:
  /// (send time, posting node, per-node sequence) — the attacker's
  /// packet capture for replay attacks. Identical under both sync
  /// modes. Empty when capture is off.
  std::vector<BacnetMsg> sent_log() const;

  std::uint64_t posted() const;
  std::uint64_t delivered() const;
  std::uint64_t dropped_loss() const;
  std::uint64_t dropped_partition() const;
  std::uint64_t dropped_overflow() const;
  std::uint64_t dropped_unroutable() const;
  /// Datagrams still in flight (posted, not yet delivered or dropped).
  /// posted() == delivered() + dropped_*() + pending() at all times.
  std::uint64_t pending() const;
  /// Deliveries that would have arrived in a node's past (must be 0 —
  /// the conservative-sync causality invariant).
  std::uint64_t causality_violations() const;

  std::uint64_t cov_delivered() const;
  /// p99 end-to-end COV latency in microseconds of virtual time, over
  /// every subscriber tier (bucket upper bound; 0 when no COV arrived).
  double cov_p99_us() const;

 private:
  struct Endpoint {
    int node = -1;
    BacnetDevice* dev = nullptr;
  };

  /// One datagram in flight towards a node, plus its canonical ordering
  /// key. `span` is the "net.link" flow span on the posting node's
  /// store (already closed — kept for context propagation only).
  struct Delivery {
    sim::Time when = 0;
    int src_node = 0;
    std::uint64_t link_seq = 0;
    BacnetMsg msg;
    Endpoint ep;

    bool operator>(const Delivery& o) const {
      if (when != o.when) return when > o.when;
      if (src_node != o.src_node) return src_node > o.src_node;
      return link_seq > o.link_seq;
    }
  };

  struct SentRec {
    BacnetMsg msg;
    std::uint64_t seq = 0;  // per-node post sequence
  };

  /// A delivery parked between admission and its machine.at() callback.
  /// Pooled so the callback captures two pointers (small enough for
  /// std::function's inline storage) instead of moving the ~130-byte
  /// Delivery into a heap-allocated closure on every datagram.
  struct Exec {
    Delivery d;
    int dst_node = 0;
    Exec(Delivery del, int node) : d(std::move(del)), dst_node(node) {}
  };

  /// Everything the fabric keeps per directed link, in one flat-hashed
  /// map keyed by (src << 32) | dst — the 10k-node hot path does one
  /// hash lookup instead of a red-black walk over std::pair keys.
  struct LinkState {
    bool has_profile = false;
    LinkProfile profile{};
    bool rng_init = false;
    sim::Rng rng{0};
    std::uint64_t seq = 0;  // per-link FIFO sequence (delivery tie-break)
    bool drops_init = false;
    obs::Counter drops;
  };

  /// Per-node fabric state. Counters/histograms live on the node's own
  /// machine registry (merged by name across nodes), so components
  /// never write to a shared registry while sharded.
  struct NodeState {
    obs::Counter posted;
    obs::Counter delivered;
    obs::Counter drop_loss;
    obs::Counter drop_partition;
    obs::Counter drop_overflow;
    obs::Counter drop_unroutable;
    obs::Histogram cov_latency_us;
    obs::Histogram cov_tier_us;  // per-tier arrival latency (hierarchical)
    obs::Gauge backlog;
    obs::HealthSignal cov_sig;
    obs::HealthSignal overflow_sig;
    std::size_t inbox_depth = kInboxDepth;
    sim::Duration inbox_service = kInboxService;
    std::deque<sim::Time> inbox;  // scheduled departure times
    std::priority_queue<Delivery, std::vector<Delivery>, std::greater<>>
        pending;
    std::vector<SentRec> sent;
    std::uint64_t post_seq = 0;
    std::uint64_t violations = 0;
    /// Per-node (so sharded components never share an arena): in-flight
    /// Exec records between execute_delivery and the handler firing.
    sim::FixedPool<Exec> exec_pool{64};
  };

  /// One independent node group and its event-driven scheduler state.
  struct Engine {
    std::vector<int> members;  // ascending node order
    std::priority_queue<std::pair<sim::Time, int>,
                        std::vector<std::pair<sim::Time, int>>,
                        std::greater<>>
        heap;
    bool active = false;
  };

  static std::uint64_t link_key(int src, int dst) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 32) |
           static_cast<std::uint32_t>(dst);
  }

  LinkState& link_state(int src, int dst);
  const LinkProfile& profile_of(LinkState& ls) const {
    return ls.has_profile ? ls.profile : default_link_;
  }
  sim::Rng& link_rng(int src, int dst, LinkState& ls);
  obs::Counter& link_drop_counter(int src, int dst, LinkState& ls);
  bool partitioned(int a, int b, sim::Time at) const;
  bool link_allowed(int src, int dst) const;
  sim::Duration quantum() const;
  void route(int src_node, BacnetMsg&& msg, std::uint64_t span);
  /// Inbox-drain admission for one delivery at virtual time `exec`, then
  /// either an overflow drop or the handler scheduled via machine.at().
  void execute_delivery(int dst_node, sim::Time exec, Delivery d);
  /// Earliest instant node i has work: its machine's next event or its
  /// earliest pending delivery.
  sim::Time node_key(int i) const;
  /// Advance node i to time t, interleaving pending deliveries with the
  /// machine's own timers in canonical order (local events first at any
  /// shared instant). The one primitive both sync modes are built on.
  void advance_node(int i, sim::Time t);
  void prepare_engines();
  void run_component(Engine& eng, sim::Time t);

  std::uint64_t seed_;
  std::uint32_t tag_link_span_ = 0;
  std::uint32_t tag_note_drop_ = 0;
  std::vector<std::unique_ptr<sim::Machine>> machines_;
  std::unordered_map<std::uint32_t, Endpoint> devices_;
  std::unordered_map<std::uint64_t, LinkState> links_;
  LinkProfile default_link_{};
  std::vector<PartitionWindow> partitions_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
  Topology topo_;
  bool has_topology_ = false;
  std::unordered_set<std::uint64_t> allowed_links_;
  SyncMode sync_ = SyncMode::kLookahead;
  bool capture_ = true;
  bool tracing_ = true;
  int jobs_ = 1;
  std::unique_ptr<campaign::WorkStealingPool> pool_;
  std::vector<Engine> engines_;
  std::vector<int> component_of_;
  bool engines_dirty_ = true;
  sim::Time now_ = 0;
};

}  // namespace mkbas::net
