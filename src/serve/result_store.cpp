#include "serve/result_store.hpp"

namespace mkbas::serve {

ResultStore::Submit ResultStore::submit(const core::ExperimentRequest& req) {
  const std::uint64_t key = req.cell_key();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cells_.find(key);
  if (it == cells_.end()) {
    Cell& c = cells_[key];
    c.request = req;
    ++misses_;
    return Submit::kQueued;
  }
  if (it->second.terminal) {
    ++hits_;
    return Submit::kHit;
  }
  ++coalesced_;
  return Submit::kCoalesced;
}

ResultStore::Entry ResultStore::lookup(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  const auto it = cells_.find(key);
  if (it == cells_.end()) return e;
  const Cell& c = it->second;
  e.request = c.request;
  if (!c.terminal) {
    e.state = State::kPending;
  } else if (c.bundle != nullptr) {
    e.state = State::kReady;
    e.bundle = c.bundle;
  } else {
    e.state = State::kFailed;
    e.error = c.error;
  }
  return e;
}

void ResultStore::complete(std::uint64_t key, ResultBundle bundle) {
  auto shared = std::make_shared<const ResultBundle>(std::move(bundle));
  std::lock_guard<std::mutex> lock(mu_);
  Cell& c = cells_[key];
  c.bundle = std::move(shared);
  c.error.clear();
  c.terminal = true;
  completed_order_.push_back(key);
  evict_locked();
}

void ResultStore::fail(std::uint64_t key, const std::string& error) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell& c = cells_[key];
  c.bundle = nullptr;
  c.error = error.empty() ? "execution failed" : error;
  c.terminal = true;
  completed_order_.push_back(key);
  evict_locked();
}

void ResultStore::set_capacity(std::size_t cap) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = cap;
  evict_locked();
}

void ResultStore::evict_locked() {
  if (capacity_ == 0) return;
  while (cells_.size() > capacity_ && !completed_order_.empty()) {
    const std::uint64_t victim = completed_order_.front();
    completed_order_.pop_front();
    const auto it = cells_.find(victim);
    if (it == cells_.end() || !it->second.terminal) continue;  // stale
    cells_.erase(it);
    ++evictions_;
  }
}

std::size_t ResultStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_.size();
}

}  // namespace mkbas::serve
