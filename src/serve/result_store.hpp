#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/request.hpp"

namespace mkbas::serve {

/// The cached output of one executed cell: every deterministic artifact
/// the mode produces, keyed by kind name ("summary", "metrics", ...).
/// Immutable once stored — readers hold shared_ptrs, completion swaps a
/// fresh object in, nothing is ever mutated in place.
struct ResultBundle {
  int exit_code = 0;
  std::map<std::string, std::string> artifacts;
};

/// Content-addressable store over core::ExperimentRequest::cell_key().
///
/// Cells move through exactly one lifecycle: absent -> pending (request
/// recorded, execution owed) -> ready | failed. `submit` is the only
/// entry point that creates cells, so duplicate submissions — from one
/// client retrying or many clients racing — coalesce onto the pending
/// cell and the computation runs once.
class ResultStore {
 public:
  enum class Submit {
    kHit,        // terminal (ready or failed): answer immediately
    kCoalesced,  // pending: someone else's execution will fill it
    kQueued,     // newly pending: the caller owes one execution
  };

  enum class State { kUnknown, kPending, kReady, kFailed };

  struct Entry {
    State state = State::kUnknown;
    core::ExperimentRequest request;           // valid unless kUnknown
    std::shared_ptr<const ResultBundle> bundle;  // non-null iff kReady
    std::string error;                         // non-empty iff kFailed
  };

  Submit submit(const core::ExperimentRequest& req);
  Entry lookup(std::uint64_t key) const;
  void complete(std::uint64_t key, ResultBundle bundle);
  void fail(std::uint64_t key, const std::string& error);

  /// Bound the store to `cap` cells (0 = unbounded, the default). When a
  /// completion pushes the population past the cap, the oldest terminal
  /// cells are evicted — pending cells are never touched (someone owes
  /// them an execution) — and each eviction is counted. An evicted key
  /// resubmitted later is an ordinary miss and re-executes.
  void set_capacity(std::size_t cap);
  std::size_t capacity() const { return capacity_; }
  std::uint64_t evictions() const { return evictions_; }

  std::size_t size() const;
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t coalesced() const { return coalesced_; }

 private:
  struct Cell {
    core::ExperimentRequest request;
    std::shared_ptr<const ResultBundle> bundle;
    std::string error;
    bool terminal = false;
  };

  void evict_locked();

  mutable std::mutex mu_;
  std::map<std::uint64_t, Cell> cells_;
  /// Completion order of terminal cells — the eviction queue. May hold
  /// stale keys (already evicted); evict_locked skips them.
  std::deque<std::uint64_t> completed_order_;
  std::size_t capacity_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t coalesced_ = 0;
};

}  // namespace mkbas::serve
