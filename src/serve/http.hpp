#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mkbas::serve {

/// Host wall-clock in microseconds since process start (steady clock).
/// The serve-plane tracer timestamps spans with this; it is the one
/// clock in the repo that is deliberately NOT virtual time, and its
/// readings must never leak into deterministic artifacts.
std::uint64_t host_us();

/// One parsed HTTP/1.1 request, as the epoll loop hands it to the
/// daemon. Header names are lower-cased; `client` identifies the
/// submitter for queue fairness (X-Client header when present, else the
/// peer address) — two connections sending the same X-Client share one
/// fairness queue.
struct HttpRequest {
  std::string method;  // "GET", "POST"
  std::string path;    // "/run" — target up to '?'
  std::string query;   // after '?', no decoding ("artifact=metrics")
  std::map<std::string, std::string> headers;
  std::string body;
  std::string client;
  /// host_us() when the first byte of this request was seen / when the
  /// parse completed — the ingress and parse span boundaries. Zero when
  /// the request was hand-built (in-process handle() tests).
  std::uint64_t ingress_us = 0;
  std::uint64_t parsed_us = 0;

  /// Header by lower-case name; nullptr when absent.
  const std::string* header(const std::string& name) const;
  /// First "key=value" match in the query string; "" when absent.
  std::string query_param(const std::string& key) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Streaming response (SSE): headers go out without Content-Length,
  /// `body` is the initial frame, and the connection stays open as a
  /// push channel fed by HttpServer::stream_write until the peer
  /// disconnects. The server assigns a stream id and reports it via the
  /// stream-open hook.
  bool stream = false;
  /// Non-zero: the flush observer is invoked with this token once the
  /// response bytes have fully left the socket buffer (the flush span
  /// boundary for request tracing).
  std::uint64_t trace_token = 0;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Minimal epoll HTTP/1.1 server, loopback only.
///
/// One event-loop thread, level-triggered epoll, nonblocking sockets.
/// Keep-alive is the default (HTTP/1.1 semantics; "Connection: close"
/// honoured); pipelined requests on one connection are served in order.
/// Malformed requests get a clean 400 and a close — never a silent
/// hang. The handler runs on the loop thread — it must be quick (cache
/// lookup, enqueue) or deliberately synchronous (replay); heavy
/// execution belongs on the daemon's executor thread.
///
/// Streaming: a handler returning `stream = true` turns its connection
/// into a bounded push channel. Any thread may then append frames with
/// stream_write(); the loop thread drains them into the socket. A full
/// per-stream buffer makes stream_write return false (the caller drops
/// with accounting) — a slow consumer can never block a producer.
class HttpServer {
 public:
  using StreamOpenFn = std::function<void(std::uint64_t stream_id,
                                          const HttpRequest& req)>;
  using StreamCloseFn = std::function<void(std::uint64_t stream_id)>;
  using FlushObserverFn =
      std::function<void(std::uint64_t trace_token, std::uint64_t now_us)>;

  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Stream lifecycle hooks, invoked on the loop thread. Set before
  /// start().
  void set_stream_hooks(StreamOpenFn on_open, StreamCloseFn on_close) {
    on_stream_open_ = std::move(on_open);
    on_stream_close_ = std::move(on_close);
  }
  /// Flush-completion hook for trace_token responses, invoked on the
  /// loop thread (also on connection teardown, so every token is
  /// reported exactly once). Set before start().
  void set_flush_observer(FlushObserverFn fn) {
    flush_observer_ = std::move(fn);
  }

  /// Bind 127.0.0.1:`port` (0 = any free port) and start the loop
  /// thread. False + *err on bind/listen failure.
  bool start(int port, HttpHandler handler, std::string* err);

  /// The actually-bound port (useful after start(0, ...)).
  int port() const { return port_; }

  /// Wake the loop, close every connection, join the thread. Idempotent.
  void stop();

  /// Append `data` to stream `stream_id`'s outbound buffer (any
  /// thread). False when the stream is gone or appending would push the
  /// unsent backlog past `max_buffered` — the frame is dropped, the
  /// caller accounts for it.
  bool stream_write(std::uint64_t stream_id, const std::string& data,
                    std::size_t max_buffered);

 private:
  struct Conn {
    int fd = -1;
    std::string in;    // bytes read, not yet parsed
    std::string out;   // response bytes not yet written
    std::string peer;  // "ip:port"
    bool close_after_write = false;
    bool streaming = false;       // SSE channel; inbound bytes ignored
    std::uint64_t stream_id = 0;  // valid iff streaming
    std::uint64_t ingress_us = 0;  // first byte of the request being read
    std::uint64_t sent_total = 0;  // bytes ever written to the socket
    /// (trace_token, total bytes queued when the response was rendered):
    /// the token's response has fully flushed once sent_total reaches
    /// the offset.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> tokens;
  };

  /// Outbound frames queued by stream_write, drained by the loop.
  struct StreamBuf {
    int fd = -1;
    std::string pending;
  };

  void loop();
  /// Parse-and-handle every complete request in c->in. False: the
  /// connection must close (400 already queued on protocol errors).
  bool drain_requests(Conn* c);
  void flush(Conn* c);
  void drain_streams();
  void close_conn(int fd);

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: stop() and stream_write wake the loop
  int port_ = 0;
  HttpHandler handler_;
  StreamOpenFn on_stream_open_;
  StreamCloseFn on_stream_close_;
  FlushObserverFn flush_observer_;
  std::thread thread_;
  std::map<int, Conn> conns_;
  bool running_ = false;

  std::mutex stream_mu_;
  std::map<std::uint64_t, StreamBuf> streams_;
  std::uint64_t next_stream_id_ = 1;
  bool streams_closed_ = false;  // stop() in progress: refuse writes
  std::atomic<bool> wake_armed_{false};
  /// Loop-thread stream_writes (request handlers publishing SSE frames)
  /// skip the eventfd and set this instead: the loop coalesces frames
  /// and drains streams at most once per kStreamTickUs, so a chatty
  /// event stream costs a few hundred sends per second, not one
  /// subscriber wakeup per frame. A backlog past kStreamBurstBytes
  /// forces an immediate drain instead of waiting out the tick.
  std::atomic<bool> local_stream_pending_{false};
  std::atomic<std::thread::id> loop_tid_{};
  std::uint64_t last_stream_drain_us_ = 0;  // loop thread only
  static constexpr std::uint64_t kStreamTickUs = 2000;
  static constexpr std::size_t kStreamBurstBytes = 64 * 1024;
};

}  // namespace mkbas::serve
