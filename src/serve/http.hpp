#pragma once

#include <functional>
#include <map>
#include <string>
#include <thread>

namespace mkbas::serve {

/// One parsed HTTP/1.1 request, as the epoll loop hands it to the
/// daemon. Header names are lower-cased; `client` identifies the
/// submitter for queue fairness (X-Client header when present, else the
/// peer address) — two connections sending the same X-Client share one
/// fairness queue.
struct HttpRequest {
  std::string method;  // "GET", "POST"
  std::string path;    // "/run" — target up to '?'
  std::string query;   // after '?', no decoding ("artifact=metrics")
  std::map<std::string, std::string> headers;
  std::string body;
  std::string client;

  /// Header by lower-case name; nullptr when absent.
  const std::string* header(const std::string& name) const;
  /// First "key=value" match in the query string; "" when absent.
  std::string query_param(const std::string& key) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Minimal epoll HTTP/1.1 server, loopback only.
///
/// One event-loop thread, level-triggered epoll, nonblocking sockets.
/// Keep-alive is the default (HTTP/1.1 semantics; "Connection: close"
/// honoured); pipelined requests on one connection are served in order.
/// The handler runs on the loop thread — it must be quick (cache lookup,
/// enqueue) or deliberately synchronous (replay); heavy execution
/// belongs on the daemon's executor thread.
class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Bind 127.0.0.1:`port` (0 = any free port) and start the loop
  /// thread. False + *err on bind/listen failure.
  bool start(int port, HttpHandler handler, std::string* err);

  /// The actually-bound port (useful after start(0, ...)).
  int port() const { return port_; }

  /// Wake the loop, close every connection, join the thread. Idempotent.
  void stop();

 private:
  struct Conn {
    int fd = -1;
    std::string in;    // bytes read, not yet parsed
    std::string out;   // response bytes not yet written
    std::string peer;  // "ip:port"
    bool close_after_write = false;
  };

  void loop();
  /// Parse-and-handle every complete request in c->in. False: protocol
  /// error, connection must close.
  bool drain_requests(Conn* c);
  void flush(Conn* c);

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: stop() wakes the loop
  int port_ = 0;
  HttpHandler handler_;
  std::thread thread_;
  std::map<int, Conn> conns_;
  bool running_ = false;
};

}  // namespace mkbas::serve
