#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace mkbas::serve {

HttpClient::HttpClient(int port, std::string client_id)
    : port_(port), client_id_(std::move(client_id)) {}

HttpClient::~HttpClient() { close_(); }

void HttpClient::close_() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool HttpClient::connect_(std::string* err) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (err != nullptr) *err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (err != nullptr) *err = std::string("connect: ") + std::strerror(errno);
    close_();
    return false;
  }
  return true;
}

bool HttpClient::request(const std::string& method, const std::string& target,
                         const std::string& body, HttpResponse* out,
                         std::string* err) {
  // One reconnect attempt: a keep-alive peer may have closed the idle
  // connection between round trips.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (fd_ < 0 && !connect_(err)) return false;
    std::string msg = method + " " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
    if (!client_id_.empty()) msg += "X-Client: " + client_id_ + "\r\n";
    msg += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
    msg += body;

    bool io_error = false;
    std::size_t sent = 0;
    while (sent < msg.size()) {
      const ssize_t n =
          ::send(fd_, msg.data() + sent, msg.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        io_error = true;
        break;
      }
      sent += static_cast<std::size_t>(n);
    }
    if (io_error) {
      close_();
      continue;  // stale keep-alive connection; reconnect once
    }

    std::string buf;
    std::size_t head_end = std::string::npos;
    std::size_t body_len = 0;
    char chunk[16 * 1024];
    for (;;) {
      if (head_end == std::string::npos) {
        head_end = buf.find("\r\n\r\n");
        if (head_end != std::string::npos) {
          const std::string head = buf.substr(0, head_end);
          const std::size_t cl = head.find("ontent-Length:");
          if (cl == std::string::npos) {
            if (err != nullptr) *err = "response without Content-Length";
            close_();
            return false;
          }
          body_len = std::strtoull(head.c_str() + cl + 14, nullptr, 10);
        }
      }
      if (head_end != std::string::npos &&
          buf.size() >= head_end + 4 + body_len) {
        break;
      }
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) {
        io_error = true;
        break;
      }
      buf.append(chunk, static_cast<std::size_t>(n));
    }
    if (io_error) {
      close_();
      if (buf.empty() && attempt == 0) continue;
      if (err != nullptr) *err = "connection closed mid-response";
      return false;
    }

    // "HTTP/1.1 200 OK"
    if (buf.size() < 12 || buf.compare(0, 5, "HTTP/") != 0) {
      if (err != nullptr) *err = "malformed status line";
      close_();
      return false;
    }
    out->status = std::atoi(buf.c_str() + 9);
    out->body = buf.substr(head_end + 4, body_len);
    if (buf.find("Connection: close") != std::string::npos &&
        buf.find("Connection: close") < head_end) {
      close_();
    }
    return true;
  }
  if (err != nullptr && err->empty()) *err = "send failed twice";
  return false;
}

}  // namespace mkbas::serve
