#include "serve/daemon.hpp"

#include <cstdlib>
#include <utility>
#include <vector>

#include "campaign/run_request.hpp"
#include "core/hash.hpp"
#include "obs/json.hpp"

namespace mkbas::serve {

namespace {

bool parse_key(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 16);
  return end != nullptr && *end == '\0';
}

HttpResponse json_response(int status, const std::string& body) {
  HttpResponse r;
  r.status = status;
  r.body = body;
  return r;
}

HttpResponse error_response(int status, const std::string& message) {
  return json_response(
      status, "{\"error\":\"" + obs::json_escape(message) + "\"}");
}

}  // namespace

Daemon::Daemon(const DaemonOptions& opts)
    : opts_(opts),
      pool_(opts.jobs),
      requests_(reg_.counter("serve.requests")),
      bad_requests_(reg_.counter("serve.bad_requests")),
      replays_(reg_.counter("serve.replays")),
      executions_ctr_(reg_.counter("serve.executions")),
      depth_gauge_(reg_.gauge("serve.queue_depth")) {
  if (opts_.batch < 1) opts_.batch = 1;
}

Daemon::~Daemon() { shutdown(); }

bool Daemon::start(std::string* err) {
  executor_ = std::thread([this] { executor_loop(); });
  started_ = true;
  if (!http_.start(opts_.port, [this](const HttpRequest& r) { return handle(r); },
                   err)) {
    shutdown();
    return false;
  }
  return true;
}

void Daemon::wait() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return stop_requested_ || stopping_; });
  }
  shutdown();
}

void Daemon::shutdown() {
  http_.stop();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (started_ && executor_.joinable()) executor_.join();
  started_ = false;
}

std::uint64_t Daemon::executions() const { return executions_ctr_.value(); }

void Daemon::enqueue(const std::string& client, std::uint64_t key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& q = queues_[client];
    if (q.empty()) rotation_.push_back(client);
    q.push_back(key);
    ++queue_depth_;
    depth_gauge_.set(static_cast<double>(queue_depth_));
  }
  cv_.notify_all();
}

void Daemon::executor_loop() {
  for (;;) {
    // One drain pass: walk the client rotation, taking the oldest cell
    // from each client in turn, until the batch is full or the queues
    // are dry. A client with more work re-enters the rotation at the
    // back, so interleaving is fair regardless of submission bursts.
    std::vector<std::uint64_t> keys;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || queue_depth_ > 0; });
      if (stopping_) return;
      while (static_cast<int>(keys.size()) < opts_.batch &&
             !rotation_.empty()) {
        const std::string client = rotation_.front();
        rotation_.pop_front();
        auto it = queues_.find(client);
        keys.push_back(it->second.front());
        it->second.pop_front();
        --queue_depth_;
        if (it->second.empty()) {
          queues_.erase(it);
        } else {
          rotation_.push_back(client);
        }
      }
      depth_gauge_.set(static_cast<double>(queue_depth_));
    }

    std::vector<core::ExperimentRequest> reqs(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      reqs[i] = store_.lookup(keys[i]).request;
    }
    pool_.run(keys.size(), [&](std::size_t i) {
      try {
        auto resp =
            core::run_request(reqs[i], core::all_deterministic_artifacts());
        ResultBundle bundle;
        bundle.exit_code = resp.exit_code;
        bundle.artifacts = std::move(resp.artifacts);
        store_.complete(keys[i], std::move(bundle));
      } catch (const std::exception& e) {
        store_.fail(keys[i], e.what());
      } catch (...) {
        store_.fail(keys[i], "unknown execution error");
      }
    });
    {
      std::lock_guard<std::mutex> lock(mu_);
      executions_ctr_.inc(keys.size());
    }
  }
}

HttpResponse Daemon::handle(const HttpRequest& req) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    requests_.inc();
  }
  if (req.method == "POST" && req.path == "/run") return post_run(req);
  if (req.method == "POST" && req.path == "/shutdown") {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_requested_ = true;
    }
    cv_.notify_all();
    return json_response(200, "{\"status\":\"stopping\"}");
  }
  const std::string result_prefix = "/result/";
  const std::string replay_prefix = "/replay/";
  if (req.method == "GET" && req.path == "/status") return get_status();
  if (req.method == "GET" &&
      req.path.compare(0, result_prefix.size(), result_prefix) == 0) {
    std::uint64_t key;
    if (!parse_key(req.path.substr(result_prefix.size()), &key)) {
      return error_response(400, "malformed cell key");
    }
    return get_result(key, req);
  }
  if (req.method == "GET" &&
      req.path.compare(0, replay_prefix.size(), replay_prefix) == 0) {
    std::uint64_t key;
    if (!parse_key(req.path.substr(replay_prefix.size()), &key)) {
      return error_response(400, "malformed cell key");
    }
    return get_replay(key);
  }
  return error_response(404, "no such endpoint: " + req.method + " " +
                                 req.path);
}

HttpResponse Daemon::post_run(const HttpRequest& req) {
  core::ExperimentRequest parsed;
  std::string err;
  if (!core::parse_request_json(req.body, &parsed, &err)) {
    std::lock_guard<std::mutex> lock(mu_);
    bad_requests_.inc();
    return error_response(400, err);
  }
  const std::string key_hex = parsed.cell_key_hex();
  const ResultStore::Submit s = store_.submit(parsed);
  switch (s) {
    case ResultStore::Submit::kHit: {
      const ResultStore::Entry e = store_.lookup(parsed.cell_key());
      if (e.state == ResultStore::State::kFailed) {
        return json_response(200, "{\"error\":\"" + obs::json_escape(e.error) +
                                      "\",\"key\":\"" + key_hex +
                                      "\",\"status\":\"failed\"}");
      }
      return json_response(
          200, "{\"exit_code\":" + std::to_string(e.bundle->exit_code) +
                   ",\"key\":\"" + key_hex + "\",\"status\":\"ready\"}");
    }
    case ResultStore::Submit::kCoalesced:
      return json_response(
          202, "{\"key\":\"" + key_hex + "\",\"status\":\"pending\"}");
    case ResultStore::Submit::kQueued:
      enqueue(req.client, parsed.cell_key());
      return json_response(
          202, "{\"key\":\"" + key_hex + "\",\"status\":\"queued\"}");
  }
  return error_response(500, "unreachable");
}

HttpResponse Daemon::get_result(std::uint64_t key, const HttpRequest& req) {
  const ResultStore::Entry e = store_.lookup(key);
  switch (e.state) {
    case ResultStore::State::kUnknown:
      return error_response(404, "unknown cell key: " + core::hex64(key));
    case ResultStore::State::kPending:
      return json_response(202, "{\"key\":\"" + core::hex64(key) +
                                    "\",\"status\":\"pending\"}");
    case ResultStore::State::kFailed:
      return error_response(500, e.error);
    case ResultStore::State::kReady:
      break;
  }
  std::string kind = req.query_param("artifact");
  if (kind.empty()) kind = "summary";
  const auto it = e.bundle->artifacts.find(kind);
  if (it == e.bundle->artifacts.end()) {
    std::string available;
    for (const auto& [name, text] : e.bundle->artifacts) {
      if (!available.empty()) available += ",";
      available += "\"" + name + "\"";
    }
    return json_response(404, "{\"available\":[" + available +
                                  "],\"error\":\"artifact not produced by "
                                  "this mode: " +
                                  obs::json_escape(kind) + "\"}");
  }
  return json_response(200, it->second);
}

HttpResponse Daemon::get_replay(std::uint64_t key) {
  const ResultStore::Entry e = store_.lookup(key);
  if (e.state == ResultStore::State::kUnknown) {
    return error_response(404, "unknown cell key: " + core::hex64(key));
  }
  if (e.state == ResultStore::State::kPending) {
    return json_response(202, "{\"key\":\"" + core::hex64(key) +
                                  "\",\"status\":\"pending\"}");
  }
  if (e.state == ResultStore::State::kFailed) {
    return error_response(409, "cell failed; nothing to replay: " + e.error);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    replays_.inc();
  }
  // Re-materialize the whole bundle from the stored canonical request
  // and byte-compare artifact by artifact. Any divergence is a
  // determinism bug (or a corrupted cache) worth a loud verdict.
  core::ExperimentResponse redo;
  try {
    redo = core::run_request(e.request, core::all_deterministic_artifacts());
  } catch (const std::exception& ex) {
    return error_response(500, std::string("replay execution failed: ") +
                                   ex.what());
  }
  std::string mismatched;
  std::size_t compared = 0;
  for (const auto& [name, text] : e.bundle->artifacts) {
    ++compared;
    const auto it = redo.artifacts.find(name);
    if (it == redo.artifacts.end() || it->second != text) {
      if (!mismatched.empty()) mismatched += ",";
      mismatched += "\"" + name + "\"";
    }
  }
  const bool identical =
      mismatched.empty() && redo.artifacts.size() == compared;
  return json_response(
      200, "{\"compared\":" + std::to_string(compared) +
               ",\"identical\":" + std::string(identical ? "true" : "false") +
               ",\"key\":\"" + core::hex64(key) + "\",\"mismatched\":[" +
               mismatched + "]}");
}

HttpResponse Daemon::get_status() {
  std::size_t depth;
  std::string metrics_json;
  {
    std::lock_guard<std::mutex> lock(mu_);
    depth = queue_depth_;
    metrics_json = reg_.to_json();
  }
  std::string s =
      "{\"batch\":" + std::to_string(opts_.batch) +
      ",\"coalesced\":" + std::to_string(store_.coalesced()) +
      ",\"executions\":" + std::to_string(executions_ctr_.value()) +
      ",\"hits\":" + std::to_string(store_.hits()) +
      ",\"jobs\":" + std::to_string(pool_.workers()) +
      ",\"metrics\":" + metrics_json +
      ",\"misses\":" + std::to_string(store_.misses()) +
      ",\"queue_depth\":" + std::to_string(depth) +
      ",\"replays\":" + std::to_string(replays_.value()) +
      ",\"requests\":" + std::to_string(requests_.value()) +
      ",\"schema_version\":" + std::to_string(obs::kSchemaVersion) +
      ",\"steals\":" + std::to_string(pool_.steals()) +
      ",\"store_size\":" + std::to_string(store_.size()) + "}";
  return json_response(200, s);
}

}  // namespace mkbas::serve
