#include "serve/daemon.hpp"

#include <cstdlib>
#include <utility>
#include <vector>

#include "campaign/run_request.hpp"
#include "core/hash.hpp"
#include "core/jsonv.hpp"
#include "obs/json.hpp"
#include "obs/prometheus.hpp"

namespace mkbas::serve {

namespace {

bool parse_key(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 16);
  return end != nullptr && *end == '\0';
}

HttpResponse json_response(int status, const std::string& body) {
  HttpResponse r;
  r.status = status;
  r.body = body;
  return r;
}

HttpResponse error_response(int status, const std::string& message) {
  return json_response(
      status, "{\"error\":\"" + obs::json_escape(message) + "\"}");
}

}  // namespace

Daemon::Daemon(const DaemonOptions& opts)
    : opts_(opts),
      pool_(opts.jobs),
      requests_(reg_.counter("serve.requests")),
      bad_requests_(reg_.counter("serve.bad_requests")),
      replays_(reg_.counter("serve.replays")),
      executions_ctr_(reg_.counter("serve.executions")),
      store_hits_(reg_.counter("serve.store.hits")),
      store_misses_(reg_.counter("serve.store.misses")),
      store_coalesced_(reg_.counter("serve.store.coalesced")),
      depth_gauge_(reg_.gauge("serve.queue_depth")),
      queue_wait_hist_(reg_.log_histogram("serve.queue_wait_us", 2, 1e8)),
      exec_wall_hist_(reg_.log_histogram("serve.exec_wall_us", 2, 1e9)) {
  if (opts_.batch < 1) opts_.batch = 1;
  if (opts_.slow_ms < 0) opts_.slow_ms = 0;
  tracer_.set_enabled(opts_.tracing);
  tracer_.set_slow_us(static_cast<std::uint64_t>(opts_.slow_ms) * 1000);
  store_.set_capacity(opts_.store_cap);
  hub_.set_sink([this](std::uint64_t sid, const std::string& frame,
                       std::size_t cap) {
    return http_.stream_write(sid, frame, cap);
  });
}

Daemon::~Daemon() { shutdown(); }

bool Daemon::start(std::string* err) {
  // Stream lifecycle: an accepted GET /events connection becomes an
  // EventHub subscriber for exactly as long as its socket lives. Flush
  // completions close the tracer's per-request flush span.
  http_.set_stream_hooks(
      [this](std::uint64_t sid, const HttpRequest& r) {
        if (r.path == "/events") hub_.subscribe(sid);
      },
      [this](std::uint64_t sid) { hub_.unsubscribe(sid); });
  http_.set_flush_observer([this](std::uint64_t token, std::uint64_t now_us) {
    if (token != 0) tracer_.flush_done(token, now_us);
  });
  executor_ = std::thread([this] { executor_loop(); });
  started_ = true;
  if (!http_.start(opts_.port, [this](const HttpRequest& r) { return handle(r); },
                   err)) {
    shutdown();
    return false;
  }
  return true;
}

void Daemon::wait() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return stop_requested_ || stopping_; });
  }
  shutdown();
}

void Daemon::shutdown() {
  http_.stop();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (started_ && executor_.joinable()) executor_.join();
  started_ = false;
}

std::uint64_t Daemon::executions() const { return executions_ctr_.value(); }

Daemon::RouteStats& Daemon::route_stats(const std::string& route) {
  auto it = route_stats_.find(route);
  if (it == route_stats_.end()) {
    RouteStats rs{
        reg_.log_histogram("serve.http.latency_us." + route, 2, 1e7),
        reg_.log_histogram("serve.http.resp_bytes." + route, 2, 16777216.0)};
    it = route_stats_.emplace(route, rs).first;
  }
  return it->second;
}

void Daemon::bump_client(const std::string& client) {
  // Per-client fairness accounting, bounded: at most 32 distinct client
  // counters; everyone past that shares "other" (the fairness queues
  // themselves stay exact — this caps only metric cardinality).
  std::string id = client.empty() ? "unknown" : client;
  if (client_counters_.size() >= 32 && client_counters_.count(id) == 0) {
    id = "other";
  }
  auto it = client_counters_.find(id);
  if (it == client_counters_.end()) {
    it = client_counters_
             .emplace(id, reg_.counter("serve.client." + id + ".requests"))
             .first;
  }
  it->second.inc();
}

void Daemon::enqueue(const std::string& client, std::uint64_t key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& q = queues_[client];
    if (q.empty()) rotation_.push_back(client);
    q.emplace_back(key, host_us());
    ++queue_depth_;
    depth_gauge_.set(static_cast<double>(queue_depth_));
  }
  cv_.notify_all();
}

void Daemon::publish_execution(std::uint64_t key, const ResultBundle* bundle,
                               bool failed, std::uint64_t wall_us) {
  if (!opts_.tracing || hub_.subscribers() == 0) return;
  const std::string key_hex = core::hex64(key);
  // Surface the executed cell's audit journal to live subscribers, in
  // journal order, BEFORE the execution verdict — a fabric flood's
  // health.anomaly surge is visible on /events while the run's verdict
  // (and the store completion) are still pending.
  if (bundle != nullptr) {
    const auto it = bundle->artifacts.find("audit");
    if (it != bundle->artifacts.end()) {
      core::Json doc;
      std::string err;
      if (core::json_parse(it->second, &doc, &err)) {
        const core::Json* entries = doc.find("entries");
        if (entries != nullptr &&
            entries->kind == core::Json::Kind::kArray) {
          for (const core::Json& e : entries->items) {
            if (!e.is_object()) continue;
            const core::Json* kind = e.find("kind");
            const core::Json* detail = e.find("detail");
            const core::Json* machine = e.find("machine");
            const core::Json* time = e.find("time");
            const std::string kind_s =
                kind != nullptr && kind->is_string() ? kind->text : "";
            std::string data = "{\"detail\":\"" +
                               obs::json_escape(detail != nullptr &&
                                                        detail->is_string()
                                                    ? detail->text
                                                    : "") +
                               "\",\"key\":\"" + key_hex + "\",\"kind\":\"" +
                               obs::json_escape(kind_s) + "\"";
            if (machine != nullptr && machine->is_number()) {
              data += ",\"machine\":" + machine->text;
            }
            if (time != nullptr && time->is_number()) {
              data += ",\"time\":" + time->text;
            }
            data += "}";
            hub_.publish(
                kind_s == "health.anomaly" ? "health.anomaly" : "audit",
                data);
          }
        }
      }
    }
  }
  hub_.publish("execution",
               "{\"key\":\"" + key_hex + "\",\"status\":\"" +
                   (failed ? "failed" : "ok") +
                   "\",\"wall_us\":" + std::to_string(wall_us) + "}");
}

void Daemon::executor_loop() {
  for (;;) {
    // One drain pass: walk the client rotation, taking the oldest cell
    // from each client in turn, until the batch is full or the queues
    // are dry. A client with more work re-enters the rotation at the
    // back, so interleaving is fair regardless of submission bursts.
    std::vector<std::uint64_t> keys;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || queue_depth_ > 0; });
      if (stopping_) return;
      const std::uint64_t now = host_us();
      while (static_cast<int>(keys.size()) < opts_.batch &&
             !rotation_.empty()) {
        const std::string client = rotation_.front();
        rotation_.pop_front();
        auto it = queues_.find(client);
        const auto [key, enq_us] = it->second.front();
        keys.push_back(key);
        queue_wait_hist_.record(
            static_cast<double>(now > enq_us ? now - enq_us : 0));
        it->second.pop_front();
        --queue_depth_;
        if (it->second.empty()) {
          queues_.erase(it);
        } else {
          rotation_.push_back(client);
        }
      }
      depth_gauge_.set(static_cast<double>(queue_depth_));
    }
    for (const std::uint64_t key : keys) {
      tracer_.queue_exit(key, host_us());
    }

    std::vector<core::ExperimentRequest> reqs(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      reqs[i] = store_.lookup(keys[i]).request;
    }
    std::vector<std::uint64_t> walls(keys.size(), 0);
    pool_.run(keys.size(), [&](std::size_t i) {
      const std::uint64_t t0 = host_us();
      tracer_.execute_begin(keys[i], t0);
      ResultBundle bundle;
      std::string fail_msg;
      bool failed = false;
      try {
        auto resp =
            core::run_request(reqs[i], core::all_deterministic_artifacts());
        bundle.exit_code = resp.exit_code;
        bundle.artifacts = std::move(resp.artifacts);
      } catch (const std::exception& e) {
        failed = true;
        fail_msg = e.what();
      } catch (...) {
        failed = true;
        fail_msg = "unknown execution error";
      }
      const std::uint64_t t1 = host_us();
      walls[i] = t1 - t0;
      tracer_.execute_end(keys[i], t1, failed);
      // Events go out before the store flips terminal: a subscriber
      // watching /events sees the journal surge and the execution
      // verdict strictly before any /result poll can observe "ready".
      publish_execution(keys[i], failed ? nullptr : &bundle, failed,
                        walls[i]);
      if (failed) {
        store_.fail(keys[i], fail_msg);
      } else {
        store_.complete(keys[i], std::move(bundle));
      }
      if (opts_.tracing && hub_.subscribers() != 0) {
        hub_.publish("cell", "{\"key\":\"" + core::hex64(keys[i]) +
                                 "\",\"state\":\"" +
                                 (failed ? "failed" : "ready") + "\"}");
      }
    });
    {
      std::lock_guard<std::mutex> lock(mu_);
      executions_ctr_.inc(keys.size());
      for (const std::uint64_t w : walls) {
        exec_wall_hist_.record(static_cast<double>(w));
      }
    }
  }
}

HttpResponse Daemon::handle(const HttpRequest& req) {
  const std::uint64_t t0 = host_us();
  {
    std::lock_guard<std::mutex> lock(mu_);
    requests_.inc();
    bump_client(req.client);
  }
  ServeTracer::RequestTimes times;
  times.ingress_us = req.ingress_us;
  times.parsed_us = req.parsed_us;
  std::uint64_t cell_key = 0;
  std::string route = "other";
  HttpResponse resp;

  const std::string result_prefix = "/result/";
  const std::string replay_prefix = "/replay/";
  if (req.method == "POST" && req.path == "/run") {
    route = "run";
    resp = post_run(req, &times, &cell_key);
  } else if (req.method == "POST" && req.path == "/shutdown") {
    route = "shutdown";
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_requested_ = true;
    }
    cv_.notify_all();
    times.serialize_start_us = host_us();
    resp = json_response(200, "{\"status\":\"stopping\"}");
    times.serialize_end_us = host_us();
  } else if (req.method == "GET" && req.path == "/status") {
    route = "status";
    times.serialize_start_us = host_us();
    resp = get_status();
    times.serialize_end_us = host_us();
  } else if (req.method == "GET" && req.path == "/metrics") {
    route = "metrics";
    times.serialize_start_us = host_us();
    resp = get_metrics();
    times.serialize_end_us = host_us();
  } else if (req.method == "GET" && req.path == "/trace") {
    route = "trace";
    times.serialize_start_us = host_us();
    resp = json_response(200, tracer_.trace_json());
    times.serialize_end_us = host_us();
  } else if (req.method == "GET" && req.path == "/flight") {
    route = "flight";
    times.serialize_start_us = host_us();
    resp = json_response(200, tracer_.flight_json());
    times.serialize_end_us = host_us();
  } else if (req.method == "GET" && req.path == "/events") {
    route = "events";
    times.serialize_start_us = host_us();
    resp = get_events();
    times.serialize_end_us = host_us();
  } else if (req.method == "GET" &&
             req.path.compare(0, result_prefix.size(), result_prefix) == 0) {
    route = "result";
    std::uint64_t key;
    if (!parse_key(req.path.substr(result_prefix.size()), &key)) {
      resp = error_response(400, "malformed cell key");
    } else {
      cell_key = key;
      resp = get_result(key, req, &times);
    }
  } else if (req.method == "GET" &&
             req.path.compare(0, replay_prefix.size(), replay_prefix) == 0) {
    route = "replay";
    std::uint64_t key;
    if (!parse_key(req.path.substr(replay_prefix.size()), &key)) {
      resp = error_response(400, "malformed cell key");
    } else {
      cell_key = key;
      resp = get_replay(key, &times);
    }
  } else {
    resp = error_response(404, "no such endpoint: " + req.method + " " +
                                   req.path);
  }

  if (times.serialize_end_us == 0) times.serialize_end_us = host_us();
  // Streaming responses never "finish" flushing; everything else over a
  // real socket keeps its root span open until the flush observer fires.
  const bool over_socket = req.ingress_us != 0 && !resp.stream;
  if (opts_.tracing) {
    resp.trace_token =
        tracer_.record_request(route, cell_key, times, over_socket);
  }
  const std::uint64_t base = times.ingress_us != 0 ? times.ingress_us : t0;
  // Per-request events are rate-limited publisher-side: a cache-hit
  // storm at tens of thousands of requests per second must not become
  // an SSE firehose (it would only fill subscriber buffers and tax
  // the hot path — per-request accounting lives in /metrics and
  // /trace). Suppressed events are counted, exported as a metric, and
  // the next published request event carries the count.
  const bool wants_event = opts_.tracing && hub_.subscribers() != 0;
  std::uint64_t suppressed = 0;
  bool allow = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    RouteStats& rs = route_stats(route);
    rs.latency.record(static_cast<double>(times.serialize_end_us - base));
    rs.size.record(static_cast<double>(resp.body.size()));
    if (wants_event) {
      const std::uint64_t now = times.serialize_end_us;
      if (now - req_event_window_us_ >= 1000000) {
        req_event_window_us_ = now;
        req_events_in_window_ = 0;
      }
      allow = req_events_in_window_ < kMaxRequestEventsPerSec;
      if (allow) {
        ++req_events_in_window_;
        suppressed = req_events_suppressed_;
        req_events_suppressed_ = 0;
      } else {
        ++req_events_suppressed_;
        ++req_events_suppressed_total_;
      }
    }
  }
  if (allow) {
    std::string ev;
    ev.reserve(120 + req.client.size() + req.method.size() +
               req.path.size());
    ev += "{\"client\":\"";
    ev += obs::json_escape(req.client);
    if (cell_key != 0) {
      ev += "\",\"key\":\"";
      ev += core::hex64(cell_key);
    }
    ev += "\",\"method\":\"";
    ev += obs::json_escape(req.method);
    ev += "\",\"path\":\"";
    ev += obs::json_escape(req.path);
    ev += "\",\"status\":";
    ev += std::to_string(resp.status);
    if (suppressed != 0) {
      ev += ",\"suppressed\":";
      ev += std::to_string(suppressed);
    }
    ev += '}';
    hub_.publish("request", ev);
  }
  return resp;
}

HttpResponse Daemon::post_run(const HttpRequest& req,
                              ServeTracer::RequestTimes* times,
                              std::uint64_t* cell_key) {
  core::ExperimentRequest parsed;
  std::string err;
  if (!core::parse_request_json(req.body, &parsed, &err)) {
    std::lock_guard<std::mutex> lock(mu_);
    bad_requests_.inc();
    return error_response(400, err);
  }
  const std::string key_hex = parsed.cell_key_hex();
  *cell_key = parsed.cell_key();
  times->lookup_start_us = host_us();
  const ResultStore::Submit s = store_.submit(parsed);
  switch (s) {
    case ResultStore::Submit::kHit: {
      const ResultStore::Entry e = store_.lookup(parsed.cell_key());
      times->lookup_end_us = host_us();
      {
        std::lock_guard<std::mutex> lock(mu_);
        store_hits_.inc();
      }
      times->serialize_start_us = times->lookup_end_us;
      HttpResponse r;
      if (e.state == ResultStore::State::kFailed) {
        r = json_response(200, "{\"error\":\"" + obs::json_escape(e.error) +
                                   "\",\"key\":\"" + key_hex +
                                   "\",\"status\":\"failed\"}");
      } else {
        r = json_response(
            200, "{\"exit_code\":" + std::to_string(e.bundle->exit_code) +
                     ",\"key\":\"" + key_hex + "\",\"status\":\"ready\"}");
      }
      times->serialize_end_us = host_us();
      return r;
    }
    case ResultStore::Submit::kCoalesced: {
      times->lookup_end_us = host_us();
      {
        std::lock_guard<std::mutex> lock(mu_);
        store_coalesced_.inc();
      }
      times->serialize_start_us = times->lookup_end_us;
      HttpResponse r = json_response(
          202, "{\"key\":\"" + key_hex + "\",\"status\":\"pending\"}");
      times->serialize_end_us = host_us();
      return r;
    }
    case ResultStore::Submit::kQueued: {
      times->lookup_end_us = host_us();
      {
        std::lock_guard<std::mutex> lock(mu_);
        store_misses_.inc();
      }
      if (opts_.tracing) {
        tracer_.queue_enter(parsed.cell_key(), host_us());
        if (hub_.subscribers() != 0) {
          hub_.publish("cell", "{\"key\":\"" + key_hex +
                                   "\",\"state\":\"queued\"}");
        }
      }
      enqueue(req.client, parsed.cell_key());
      times->serialize_start_us = host_us();
      HttpResponse r = json_response(
          202, "{\"key\":\"" + key_hex + "\",\"status\":\"queued\"}");
      times->serialize_end_us = host_us();
      return r;
    }
  }
  return error_response(500, "unreachable");
}

HttpResponse Daemon::get_result(std::uint64_t key, const HttpRequest& req,
                                ServeTracer::RequestTimes* times) {
  times->lookup_start_us = host_us();
  const ResultStore::Entry e = store_.lookup(key);
  times->lookup_end_us = host_us();
  times->serialize_start_us = times->lookup_end_us;
  HttpResponse r;
  switch (e.state) {
    case ResultStore::State::kUnknown:
      r = error_response(404, "unknown cell key: " + core::hex64(key));
      break;
    case ResultStore::State::kPending:
      r = json_response(202, "{\"key\":\"" + core::hex64(key) +
                                 "\",\"status\":\"pending\"}");
      break;
    case ResultStore::State::kFailed:
      r = error_response(500, e.error);
      break;
    case ResultStore::State::kReady: {
      std::string kind = req.query_param("artifact");
      if (kind.empty()) kind = "summary";
      const auto it = e.bundle->artifacts.find(kind);
      if (it == e.bundle->artifacts.end()) {
        std::string available;
        for (const auto& [name, text] : e.bundle->artifacts) {
          if (!available.empty()) available += ",";
          available += "\"" + name + "\"";
        }
        r = json_response(404, "{\"available\":[" + available +
                                   "],\"error\":\"artifact not produced by "
                                   "this mode: " +
                                   obs::json_escape(kind) + "\"}");
      } else {
        r = json_response(200, it->second);
      }
      break;
    }
  }
  times->serialize_end_us = host_us();
  return r;
}

HttpResponse Daemon::get_replay(std::uint64_t key,
                                ServeTracer::RequestTimes* times) {
  times->lookup_start_us = host_us();
  const ResultStore::Entry e = store_.lookup(key);
  times->lookup_end_us = host_us();
  if (e.state == ResultStore::State::kUnknown) {
    return error_response(404, "unknown cell key: " + core::hex64(key));
  }
  if (e.state == ResultStore::State::kPending) {
    return json_response(202, "{\"key\":\"" + core::hex64(key) +
                                  "\",\"status\":\"pending\"}");
  }
  if (e.state == ResultStore::State::kFailed) {
    return error_response(409, "cell failed; nothing to replay: " + e.error);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    replays_.inc();
  }
  // Re-materialize the whole bundle from the stored canonical request
  // and byte-compare artifact by artifact. Any divergence is a
  // determinism bug (or a corrupted cache) worth a loud verdict.
  core::ExperimentResponse redo;
  try {
    redo = core::run_request(e.request, core::all_deterministic_artifacts());
  } catch (const std::exception& ex) {
    return error_response(500, std::string("replay execution failed: ") +
                                   ex.what());
  }
  std::string mismatched;
  std::size_t compared = 0;
  for (const auto& [name, text] : e.bundle->artifacts) {
    ++compared;
    const auto it = redo.artifacts.find(name);
    if (it == redo.artifacts.end() || it->second != text) {
      if (!mismatched.empty()) mismatched += ",";
      mismatched += "\"" + name + "\"";
    }
  }
  const bool identical =
      mismatched.empty() && redo.artifacts.size() == compared;
  times->serialize_start_us = host_us();
  HttpResponse r = json_response(
      200, "{\"compared\":" + std::to_string(compared) +
               ",\"identical\":" + std::string(identical ? "true" : "false") +
               ",\"key\":\"" + core::hex64(key) + "\",\"mismatched\":[" +
               mismatched + "]}");
  times->serialize_end_us = host_us();
  return r;
}

HttpResponse Daemon::get_status() {
  std::size_t depth;
  std::string metrics_json;
  {
    std::lock_guard<std::mutex> lock(mu_);
    depth = queue_depth_;
    metrics_json = reg_.to_json();
  }
  std::string s =
      "{\"batch\":" + std::to_string(opts_.batch) +
      ",\"coalesced\":" + std::to_string(store_.coalesced()) +
      ",\"evictions\":" + std::to_string(store_.evictions()) +
      ",\"executions\":" + std::to_string(executions_ctr_.value()) +
      ",\"hits\":" + std::to_string(store_.hits()) +
      ",\"jobs\":" + std::to_string(pool_.workers()) +
      ",\"metrics\":" + metrics_json +
      ",\"misses\":" + std::to_string(store_.misses()) +
      ",\"queue_depth\":" + std::to_string(depth) +
      ",\"replays\":" + std::to_string(replays_.value()) +
      ",\"requests\":" + std::to_string(requests_.value()) +
      ",\"schema_version\":" + std::to_string(obs::kSchemaVersion) +
      ",\"steals\":" + std::to_string(pool_.steals()) +
      ",\"store_size\":" + std::to_string(store_.size()) + "}";
  return json_response(200, s);
}

HttpResponse Daemon::get_metrics() {
  // Sync the scrape-time snapshots (store, pool, hub, tracer state)
  // into the registry so one render covers everything. The gauge writes
  // happen under mu_ like every other metric update.
  {
    std::lock_guard<std::mutex> lock(mu_);
    depth_gauge_.set(static_cast<double>(queue_depth_));
    reg_.gauge("serve.store.size").set(static_cast<double>(store_.size()));
    reg_.gauge("serve.store.capacity")
        .set(static_cast<double>(store_.capacity()));
    reg_.gauge("serve.store.evictions")
        .set(static_cast<double>(store_.evictions()));
    reg_.gauge("serve.pool.steals").set(static_cast<double>(pool_.steals()));
    reg_.gauge("serve.events.subscribers")
        .set(static_cast<double>(hub_.subscribers()));
    reg_.gauge("serve.events.published")
        .set(static_cast<double>(hub_.published()));
    reg_.gauge("serve.events.delivered")
        .set(static_cast<double>(hub_.delivered()));
    reg_.gauge("serve.events.dropped")
        .set(static_cast<double>(hub_.dropped()));
    reg_.gauge("serve.events.req_suppressed")
        .set(static_cast<double>(req_events_suppressed_total_));
    reg_.gauge("serve.trace.requests")
        .set(static_cast<double>(tracer_.requests_recorded()));
    reg_.gauge("serve.trace.slow")
        .set(static_cast<double>(tracer_.slow_triggers()));
    reg_.gauge("serve.trace.rotations")
        .set(static_cast<double>(tracer_.rotations()));
  }
  HttpResponse r;
  r.status = 200;
  r.content_type = "text/plain; version=0.0.4; charset=utf-8";
  r.body = obs::prometheus_render(reg_);
  return r;
}

HttpResponse Daemon::get_events() {
  HttpResponse r;
  r.status = 200;
  r.content_type = "text/event-stream";
  r.stream = true;
  // SSE comment line: flushes the headers through buffering proxies and
  // gives curl -N something to print immediately.
  r.body = ": mkbas serve event stream\n\n";
  return r;
}

}  // namespace mkbas::serve
