#include "serve/http.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>

namespace mkbas::serve {

std::uint64_t host_us() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                            epoch)
          .count());
}

namespace {

/// Largest accepted request body — a canonical ExperimentRequest is a
/// few hundred bytes; anything near this is a client bug.
constexpr std::size_t kMaxBody = 1 << 20;
constexpr std::size_t kMaxHeader = 64 * 1024;

const char* reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string lower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

/// Parse one request if c_in holds a complete one. Returns 1 parsed,
/// 0 need more bytes, -1 protocol error. Consumed bytes are erased.
int parse_request(std::string* in, HttpRequest* req) {
  const std::size_t head_end = in->find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return in->size() > kMaxHeader ? -1 : 0;
  }
  const std::string head = in->substr(0, head_end);
  // Request line.
  const std::size_t line_end = head.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 <= sp1) return -1;
  req->method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (line.compare(sp2 + 1, std::string::npos, "HTTP/1.1") != 0 &&
      line.compare(sp2 + 1, std::string::npos, "HTTP/1.0") != 0) {
    return -1;
  }
  const std::size_t q = target.find('?');
  req->path = target.substr(0, q);
  req->query = q == std::string::npos ? "" : target.substr(q + 1);
  // Headers.
  req->headers.clear();
  std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string h = head.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = h.find(':');
    if (colon == std::string::npos) return -1;
    req->headers[lower(trim(h.substr(0, colon)))] = trim(h.substr(colon + 1));
  }
  // Body.
  std::size_t body_len = 0;
  const auto it = req->headers.find("content-length");
  if (it != req->headers.end()) {
    char* end = nullptr;
    body_len = std::strtoull(it->second.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || it->second.empty() ||
        body_len > kMaxBody) {
      return -1;
    }
  }
  const std::size_t total = head_end + 4 + body_len;
  if (in->size() < total) return 0;
  req->body = in->substr(head_end + 4, body_len);
  in->erase(0, total);
  return 1;
}

std::string render(const HttpResponse& r, bool close_after) {
  std::string out = "HTTP/1.1 " + std::to_string(r.status) + " " +
                    reason(r.status) + "\r\nContent-Type: " + r.content_type +
                    "\r\nContent-Length: " + std::to_string(r.body.size()) +
                    "\r\n";
  if (close_after) out += "Connection: close\r\n";
  out += "\r\n";
  out += r.body;
  return out;
}

/// Streaming (SSE) header block: no Content-Length — the response body
/// is open-ended and ends when the connection does.
std::string render_stream_head(const HttpResponse& r) {
  return "HTTP/1.1 " + std::to_string(r.status) + " " + reason(r.status) +
         "\r\nContent-Type: " + r.content_type +
         "\r\nCache-Control: no-cache\r\n\r\n" + r.body;
}

}  // namespace

const std::string* HttpRequest::header(const std::string& name) const {
  const auto it = headers.find(name);
  return it == headers.end() ? nullptr : &it->second;
}

std::string HttpRequest::query_param(const std::string& key) const {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    if (eq == std::string::npos && pair == key) return "";
    pos = amp + 1;
  }
  return "";
}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start(int port, HttpHandler handler, std::string* err) {
  auto fail = [&](const char* what) {
    if (err != nullptr) *err = std::string(what) + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return false;
  };

  handler_ = std::move(handler);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    return fail("bind");
  }
  socklen_t alen = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) != 0) return fail("listen");
  if (!set_nonblocking(listen_fd_)) return fail("fcntl");

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) return fail("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) return fail("eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  {
    std::lock_guard<std::mutex> lk(stream_mu_);
    streams_closed_ = false;
  }
  running_ = true;
  thread_ = std::thread([this] { loop(); });
  return true;
}

void HttpServer::stop() {
  if (!running_) return;
  running_ = false;
  {
    // Refuse further stream_write appends; the eventfd write below is
    // safe because writers only touch wake_fd_ under stream_mu_ while
    // streams_closed_ is still false.
    std::lock_guard<std::mutex> lk(stream_mu_);
    streams_closed_ = true;
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof one);
  }
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lk(stream_mu_);
    streams_.clear();
  }
  for (auto& [fd, c] : conns_) ::close(fd);
  conns_.clear();
  ::close(listen_fd_);
  ::close(epoll_fd_);
  ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
}

bool HttpServer::stream_write(std::uint64_t stream_id, const std::string& data,
                              std::size_t max_buffered) {
  std::lock_guard<std::mutex> lk(stream_mu_);
  if (streams_closed_) return false;
  const auto it = streams_.find(stream_id);
  if (it == streams_.end()) return false;
  if (it->second.pending.size() + data.size() > max_buffered) return false;
  it->second.pending += data;
  if (it->second.pending.size() <= kStreamBurstBytes &&
      std::this_thread::get_id() ==
          loop_tid_.load(std::memory_order_relaxed)) {
    // On the loop thread (a request handler publishing events) the loop
    // itself drains on its stream tick — no self-wake. A large backlog
    // falls through to the eventfd for an immediate drain.
    local_stream_pending_.store(true, std::memory_order_relaxed);
  } else if (!wake_armed_.exchange(true)) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof one);
  }
  return true;
}

void HttpServer::drain_streams() {
  std::lock_guard<std::mutex> lk(stream_mu_);
  for (auto& [id, sb] : streams_) {
    if (sb.pending.empty()) continue;
    const auto it = conns_.find(sb.fd);
    if (it == conns_.end()) {
      sb.pending.clear();
      continue;
    }
    it->second.out += sb.pending;
    sb.pending.clear();
    flush(&it->second);
  }
}

void HttpServer::flush(Conn* c) {
  while (!c->out.empty()) {
    const ssize_t n = ::send(c->fd, c->out.data(), c->out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      c->out.erase(0, static_cast<std::size_t>(n));
      c->sent_total += static_cast<std::uint64_t>(n);
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Level-triggered EPOLLOUT will call us again.
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLOUT;
      ev.data.fd = c->fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev);
      break;
    } else {
      c->close_after_write = true;
      c->out.clear();
      break;
    }
  }
  if (c->out.empty()) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = c->fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev);
  }
  // Report every tokened response whose bytes have fully left userspace.
  if (!c->tokens.empty() && flush_observer_) {
    const std::uint64_t now = host_us();
    std::size_t kept = 0;
    for (const auto& [token, off] : c->tokens) {
      if (off <= c->sent_total) {
        flush_observer_(token, now);
      } else {
        c->tokens[kept++] = {token, off};
      }
    }
    c->tokens.resize(kept);
  }
}

void HttpServer::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = it->second;
  if (c.streaming) {
    {
      std::lock_guard<std::mutex> lk(stream_mu_);
      streams_.erase(c.stream_id);
    }
    if (on_stream_close_) on_stream_close_(c.stream_id);
  }
  // A dead connection still resolves its pending flush tokens (the
  // flush "ended" when the peer went away) so trace spans never leak.
  if (!c.tokens.empty() && flush_observer_) {
    const std::uint64_t now = host_us();
    for (const auto& [token, off] : c.tokens) flush_observer_(token, now);
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(it);
}

bool HttpServer::drain_requests(Conn* c) {
  for (;;) {
    if (c->ingress_us == 0) c->ingress_us = host_us();
    HttpRequest req;
    const int r = parse_request(&c->in, &req);
    if (r == 0) return true;
    if (r < 0) {
      // Protocol error: answer 400 and close — a broken client gets a
      // diagnosis, never a hang (and never a free parse of whatever
      // follows the malformed bytes).
      HttpResponse bad;
      bad.status = 400;
      bad.body = "{\"error\":\"malformed HTTP request\"}";
      c->out += render(bad, true);
      c->close_after_write = true;
      c->in.clear();
      return true;
    }
    req.ingress_us = c->ingress_us;
    c->ingress_us = 0;  // next pipelined request stamps afresh
    req.parsed_us = host_us();
    req.client = c->peer;
    if (const std::string* id = req.header("x-client")) req.client = *id;
    const std::string* conn_hdr = req.header("connection");
    const bool close_after =
        conn_hdr != nullptr && lower(*conn_hdr) == "close";
    HttpResponse resp;
    try {
      resp = handler_(req);
    } catch (const std::exception& e) {
      resp.status = 500;
      resp.body = std::string("{\"error\":\"") + e.what() + "\"}";
      resp.stream = false;
    }
    if (resp.stream) {
      // The connection becomes a push channel: headers out now, frames
      // arrive via stream_write until the peer hangs up.
      c->streaming = true;
      c->in.clear();  // pipelined bytes after an SSE subscribe are noise
      {
        std::lock_guard<std::mutex> lk(stream_mu_);
        c->stream_id = next_stream_id_++;
        StreamBuf& sb = streams_[c->stream_id];
        sb.fd = c->fd;
      }
      c->out += render_stream_head(resp);
      if (on_stream_open_) on_stream_open_(c->stream_id, req);
      return true;
    }
    c->out += render(resp, close_after);
    if (resp.trace_token != 0) {
      c->tokens.emplace_back(resp.trace_token,
                             c->sent_total + c->out.size());
    }
    if (close_after) {
      c->close_after_write = true;
      return true;
    }
  }
}

void HttpServer::loop() {
  loop_tid_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  epoll_event events[64];
  while (running_) {
    // Coalesced stream delivery: frames queued by loop-thread handlers
    // wait out the stream tick (bounding the epoll timeout so they can
    // never starve), then go out in one send per subscriber.
    int timeout_ms = -1;
    if (local_stream_pending_.load(std::memory_order_relaxed)) {
      const std::uint64_t now = host_us();
      const std::uint64_t elapsed = now - last_stream_drain_us_;
      if (elapsed >= kStreamTickUs) {
        local_stream_pending_.store(false, std::memory_order_relaxed);
        drain_streams();
        last_stream_drain_us_ = now;
      } else {
        timeout_ms = static_cast<int>((kStreamTickUs - elapsed) / 1000) + 1;
      }
    }
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t tok;
        [[maybe_unused]] const auto r = ::read(wake_fd_, &tok, sizeof tok);
        wake_armed_.store(false);
        if (running_) {
          // An off-thread or burst wake drains everything, including
          // coalesced loop-thread frames: restart their tick.
          local_stream_pending_.store(false, std::memory_order_relaxed);
          drain_streams();
          last_stream_drain_us_ = host_us();
        }
        continue;  // running_ checked at loop top
      }
      if (fd == listen_fd_) {
        for (;;) {
          sockaddr_in peer{};
          socklen_t plen = sizeof peer;
          const int cfd = ::accept(
              listen_fd_, reinterpret_cast<sockaddr*>(&peer), &plen);
          if (cfd < 0) break;
          set_nonblocking(cfd);
          const int one = 1;
          ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
          Conn& c = conns_[cfd];
          c.fd = cfd;
          char ip[INET_ADDRSTRLEN] = "?";
          ::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof ip);
          c.peer = std::string(ip) + ":" + std::to_string(ntohs(peer.sin_port));
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.fd = cfd;
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, cfd, &ev);
        }
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Conn& c = it->second;
      bool dead = false;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) dead = true;
      if (!dead && (events[i].events & EPOLLIN) != 0) {
        const bool was_empty = c.in.empty();
        char buf[16 * 1024];
        for (;;) {
          const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
          if (r > 0) {
            c.in.append(buf, static_cast<std::size_t>(r));
          } else if (r == 0) {
            dead = true;
            break;
          } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
            break;
          } else {
            dead = true;
            break;
          }
        }
        if (was_empty && !c.in.empty() && c.ingress_us == 0) {
          c.ingress_us = host_us();
        }
        if (c.streaming) {
          c.in.clear();  // subscribers have nothing more to say
        } else if (!dead && !drain_requests(&c)) {
          dead = true;
        }
      }
      if (!dead && !c.out.empty()) flush(&c);
      if (dead || (c.close_after_write && c.out.empty())) close_conn(fd);
    }
  }
}

}  // namespace mkbas::serve
