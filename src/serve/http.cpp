#include "serve/http.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>

namespace mkbas::serve {

namespace {

/// Largest accepted request body — a canonical ExperimentRequest is a
/// few hundred bytes; anything near this is a client bug.
constexpr std::size_t kMaxBody = 1 << 20;
constexpr std::size_t kMaxHeader = 64 * 1024;

const char* reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string lower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

/// Parse one request if c_in holds a complete one. Returns 1 parsed,
/// 0 need more bytes, -1 protocol error. Consumed bytes are erased.
int parse_request(std::string* in, HttpRequest* req) {
  const std::size_t head_end = in->find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return in->size() > kMaxHeader ? -1 : 0;
  }
  const std::string head = in->substr(0, head_end);
  // Request line.
  const std::size_t line_end = head.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 <= sp1) return -1;
  req->method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (line.compare(sp2 + 1, std::string::npos, "HTTP/1.1") != 0 &&
      line.compare(sp2 + 1, std::string::npos, "HTTP/1.0") != 0) {
    return -1;
  }
  const std::size_t q = target.find('?');
  req->path = target.substr(0, q);
  req->query = q == std::string::npos ? "" : target.substr(q + 1);
  // Headers.
  req->headers.clear();
  std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string h = head.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = h.find(':');
    if (colon == std::string::npos) return -1;
    req->headers[lower(trim(h.substr(0, colon)))] = trim(h.substr(colon + 1));
  }
  // Body.
  std::size_t body_len = 0;
  const auto it = req->headers.find("content-length");
  if (it != req->headers.end()) {
    char* end = nullptr;
    body_len = std::strtoull(it->second.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || body_len > kMaxBody) return -1;
  }
  const std::size_t total = head_end + 4 + body_len;
  if (in->size() < total) return 0;
  req->body = in->substr(head_end + 4, body_len);
  in->erase(0, total);
  return 1;
}

std::string render(const HttpResponse& r, bool close_after) {
  std::string out = "HTTP/1.1 " + std::to_string(r.status) + " " +
                    reason(r.status) + "\r\nContent-Type: " + r.content_type +
                    "\r\nContent-Length: " + std::to_string(r.body.size()) +
                    "\r\n";
  if (close_after) out += "Connection: close\r\n";
  out += "\r\n";
  out += r.body;
  return out;
}

}  // namespace

const std::string* HttpRequest::header(const std::string& name) const {
  const auto it = headers.find(name);
  return it == headers.end() ? nullptr : &it->second;
}

std::string HttpRequest::query_param(const std::string& key) const {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    if (eq == std::string::npos && pair == key) return "";
    pos = amp + 1;
  }
  return "";
}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start(int port, HttpHandler handler, std::string* err) {
  auto fail = [&](const char* what) {
    if (err != nullptr) *err = std::string(what) + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return false;
  };

  handler_ = std::move(handler);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    return fail("bind");
  }
  socklen_t alen = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) != 0) return fail("listen");
  if (!set_nonblocking(listen_fd_)) return fail("fcntl");

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) return fail("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) return fail("eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  running_ = true;
  thread_ = std::thread([this] { loop(); });
  return true;
}

void HttpServer::stop() {
  if (!running_) return;
  running_ = false;
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof one);
  if (thread_.joinable()) thread_.join();
  for (auto& [fd, c] : conns_) ::close(fd);
  conns_.clear();
  ::close(listen_fd_);
  ::close(epoll_fd_);
  ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
}

void HttpServer::flush(Conn* c) {
  while (!c->out.empty()) {
    const ssize_t n = ::send(c->fd, c->out.data(), c->out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      c->out.erase(0, static_cast<std::size_t>(n));
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Level-triggered EPOLLOUT will call us again.
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLOUT;
      ev.data.fd = c->fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev);
      return;
    } else {
      c->close_after_write = true;
      c->out.clear();
      return;
    }
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = c->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev);
}

bool HttpServer::drain_requests(Conn* c) {
  for (;;) {
    HttpRequest req;
    const int r = parse_request(&c->in, &req);
    if (r == 0) return true;
    if (r < 0) return false;
    req.client = c->peer;
    if (const std::string* id = req.header("x-client")) req.client = *id;
    const std::string* conn_hdr = req.header("connection");
    const bool close_after =
        conn_hdr != nullptr && lower(*conn_hdr) == "close";
    HttpResponse resp;
    try {
      resp = handler_(req);
    } catch (const std::exception& e) {
      resp.status = 500;
      resp.body = std::string("{\"error\":\"") + e.what() + "\"}";
    }
    c->out += render(resp, close_after);
    if (close_after) {
      c->close_after_write = true;
      return true;
    }
  }
}

void HttpServer::loop() {
  epoll_event events[64];
  while (running_) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t tok;
        [[maybe_unused]] const auto r = ::read(wake_fd_, &tok, sizeof tok);
        continue;  // running_ checked at loop top
      }
      if (fd == listen_fd_) {
        for (;;) {
          sockaddr_in peer{};
          socklen_t plen = sizeof peer;
          const int cfd = ::accept(
              listen_fd_, reinterpret_cast<sockaddr*>(&peer), &plen);
          if (cfd < 0) break;
          set_nonblocking(cfd);
          const int one = 1;
          ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
          Conn& c = conns_[cfd];
          c.fd = cfd;
          char ip[INET_ADDRSTRLEN] = "?";
          ::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof ip);
          c.peer = std::string(ip) + ":" + std::to_string(ntohs(peer.sin_port));
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.fd = cfd;
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, cfd, &ev);
        }
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Conn& c = it->second;
      bool dead = false;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) dead = true;
      if (!dead && (events[i].events & EPOLLIN) != 0) {
        char buf[16 * 1024];
        for (;;) {
          const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
          if (r > 0) {
            c.in.append(buf, static_cast<std::size_t>(r));
          } else if (r == 0) {
            dead = true;
            break;
          } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
            break;
          } else {
            dead = true;
            break;
          }
        }
        if (!dead && !drain_requests(&c)) dead = true;
      }
      if (!dead && !c.out.empty()) flush(&c);
      if (dead || (c.close_after_write && c.out.empty())) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
        ::close(fd);
        conns_.erase(it);
      }
    }
  }
}

}  // namespace mkbas::serve
