#include "serve/tracer.hpp"

#include "core/hash.hpp"
#include "obs/trace_export.hpp"
#include "sim/trace.hpp"

namespace mkbas::serve {

namespace {

std::uint32_t intern(const char* s) {
  return sim::TagRegistry::instance().intern(s);
}

sim::Time t_of(std::uint64_t us) { return static_cast<sim::Time>(us); }

}  // namespace

ServeTracer::ServeTracer()
    : n_parse_(intern("serve.parse")),
      n_lookup_(intern("serve.lookup")),
      n_serialize_(intern("serve.serialize")),
      n_flush_(intern("serve.flush")),
      n_queue_wait_(intern("serve.queue_wait")),
      n_execute_(intern("serve.execute")),
      note_failed_(intern("failed")) {
  spans_.set_machine(0);
  spans_.set_capacity(kRingSpans);
  flight_.wire(nullptr, &spans_, nullptr);
}

void ServeTracer::set_enabled(bool on) {
  std::lock_guard<std::mutex> lk(mu_);
  enabled_ = on;
  spans_.set_enabled(on);
  flight_.set_enabled(on);
}

void ServeTracer::maybe_rotate_locked() {
  if (spans_.total_begun() < kEpochSpans) return;
  // Swap in a fresh store: the lineage index is the one structure that
  // grows per span minted, and a daemon serving millions of requests
  // must not carry it forever. The flight recorder's pointer stays
  // valid (same member object) and its snapshots are already-rendered
  // strings, so forensic history survives the epoch swap.
  const bool on = spans_.enabled();
  spans_ = obs::SpanStore();
  spans_.set_machine(0);
  spans_.set_capacity(kRingSpans);
  spans_.set_enabled(on);
  flushes_.clear();
  cells_.clear();
  ++rotations_;
}

std::uint64_t ServeTracer::record_request(const std::string& route,
                                          std::uint64_t cell_key,
                                          const RequestTimes& t,
                                          bool expect_flush) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!enabled_) return 0;
  maybe_rotate_locked();
  ++requests_;
  RequestTimes x = t;
  // In-process handle() calls carry no socket timestamps; collapse the
  // missing stages onto the first known boundary so the chain still
  // telescopes.
  if (x.ingress_us == 0) x.ingress_us = x.lookup_start_us;
  if (x.parsed_us == 0) x.parsed_us = x.ingress_us;
  std::uint32_t n_root;
  if (const auto rn = route_names_.find(route); rn != route_names_.end()) {
    n_root = rn->second;
  } else {
    n_root = sim::TagRegistry::instance().intern("serve.req." + route);
    route_names_.emplace(route, n_root);
  }
  const std::uint64_t root = spans_.begin_flow(
      -1, t_of(x.ingress_us), n_root, obs::SpanContext{cell_key, 0});
  const obs::SpanContext under = spans_.context_of(root);
  const std::uint64_t parse =
      spans_.begin_flow(-1, t_of(x.ingress_us), n_parse_, under);
  spans_.end_flow(t_of(x.parsed_us), parse);
  if (x.lookup_end_us >= x.lookup_start_us && x.lookup_start_us != 0) {
    const std::uint64_t lookup =
        spans_.begin_flow(-1, t_of(x.lookup_start_us), n_lookup_, under);
    spans_.end_flow(t_of(x.lookup_end_us), lookup);
  }
  if (x.serialize_end_us >= x.serialize_start_us &&
      x.serialize_start_us != 0) {
    const std::uint64_t ser =
        spans_.begin_flow(-1, t_of(x.serialize_start_us), n_serialize_, under);
    spans_.end_flow(t_of(x.serialize_end_us), ser);
  }
  if (!expect_flush) {
    spans_.end_flow(t_of(x.serialize_end_us), root);
    return 0;
  }
  PendingFlush& pf = flushes_[root];
  pf.root_id = root;
  pf.trace_id = under.trace_id;
  pf.ingress_us = x.ingress_us;
  pf.serialize_end_us = x.serialize_end_us;
  pf.route = n_root;
  return root;
}

void ServeTracer::flush_done(std::uint64_t token, std::uint64_t now_us) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = flushes_.find(token);
  if (it == flushes_.end()) return;
  const PendingFlush pf = it->second;
  flushes_.erase(it);
  const std::uint64_t fl =
      spans_.begin_flow(-1, t_of(pf.serialize_end_us), n_flush_,
                        obs::SpanContext{pf.trace_id, pf.root_id});
  spans_.end_flow(t_of(now_us), fl);
  spans_.end_flow(t_of(now_us), pf.root_id);
  const std::uint64_t total =
      now_us > pf.ingress_us ? now_us - pf.ingress_us : 0;
  if (slow_us_ == 0 || total >= slow_us_) {
    slow_locked(now_us, "serve.slow",
                "{\"key\":\"" + core::hex64(pf.trace_id) + "\",\"route\":\"" +
                    sim::TagRegistry::instance().name(pf.route) +
                    "\",\"stage\":\"flush\",\"total_us\":" +
                    std::to_string(total) + "}");
  }
}

void ServeTracer::queue_enter(std::uint64_t cell_key, std::uint64_t now_us) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!enabled_) return;
  PendingCell& pc = cells_[cell_key];
  pc.queue_span = spans_.begin_flow(-1, t_of(now_us), n_queue_wait_,
                                    obs::SpanContext{cell_key, 0});
}

void ServeTracer::queue_exit(std::uint64_t cell_key, std::uint64_t now_us) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!enabled_) return;
  const auto it = cells_.find(cell_key);
  if (it == cells_.end()) return;
  if (it->second.queue_span != 0) {
    spans_.end_flow(t_of(now_us), it->second.queue_span);
    it->second.queue_span = 0;
  }
}

void ServeTracer::execute_begin(std::uint64_t cell_key, std::uint64_t now_us) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!enabled_) return;
  PendingCell& pc = cells_[cell_key];
  pc.exec_span = spans_.begin_flow(-1, t_of(now_us), n_execute_,
                                   obs::SpanContext{cell_key, 0});
  pc.exec_start_us = now_us;
}

std::uint64_t ServeTracer::execute_end(std::uint64_t cell_key,
                                       std::uint64_t now_us, bool failed) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = cells_.find(cell_key);
  if (it == cells_.end()) return 0;
  const PendingCell pc = it->second;
  cells_.erase(it);
  if (!enabled_) return 0;
  if (pc.exec_span != 0) {
    spans_.end_flow(t_of(now_us), pc.exec_span, failed ? note_failed_ : 0);
  }
  const std::uint64_t wall =
      now_us > pc.exec_start_us ? now_us - pc.exec_start_us : 0;
  if (slow_us_ == 0 || wall >= slow_us_) {
    slow_locked(now_us, "serve.slow",
                "{\"key\":\"" + core::hex64(cell_key) +
                    "\",\"stage\":\"execute\",\"wall_us\":" +
                    std::to_string(wall) + "}");
  }
  return wall;
}

void ServeTracer::snapshot_slow(std::uint64_t now_us,
                                const std::string& reason,
                                const std::string& detail) {
  std::lock_guard<std::mutex> lk(mu_);
  slow_locked(now_us, reason, detail);
}

void ServeTracer::slow_locked(std::uint64_t now_us, const std::string& reason,
                              const std::string& detail) {
  if (!enabled_) return;
  ++slow_;
  flight_.trigger(t_of(now_us), reason, detail);
}

std::string ServeTracer::trace_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  return obs::to_span_trace_json(spans_);
}

std::string ServeTracer::flight_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  return flight_.to_json();
}

obs::SpanStore ServeTracer::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return spans_;
}

std::uint64_t ServeTracer::requests_recorded() const {
  std::lock_guard<std::mutex> lk(mu_);
  return requests_;
}

std::uint64_t ServeTracer::slow_triggers() const {
  std::lock_guard<std::mutex> lk(mu_);
  return slow_;
}

std::uint64_t ServeTracer::rotations() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rotations_;
}

std::size_t ServeTracer::open_flushes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return flushes_.size();
}

}  // namespace mkbas::serve
