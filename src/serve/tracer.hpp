#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/health.hpp"
#include "obs/span.hpp"

namespace mkbas::serve {

/// Host-time request tracer for the serve plane, built on the same
/// obs::SpanStore the simulator uses — but with host_us() timestamps
/// instead of virtual time, which is why its output is exported only
/// through the non-deterministic endpoints (GET /trace, GET /flight)
/// and never enters a cached bundle.
///
/// Every HTTP request becomes one span chain:
///
///   serve.req.<route>                 (root: ingress -> flush end)
///     serve.parse                     (ingress -> parse complete)
///     serve.lookup                    (store submit/lookup window)
///     serve.serialize                 (response body rendering)
///     serve.flush                     (queued -> bytes left the socket)
///
/// and a queued /run additionally opens, under the SAME trace id:
///
///   serve.queue_wait                  (enqueue -> executor pickup)
///   serve.execute                     (pool execution wall time)
///
/// The trace id IS the cell key, so a /run, its execution, and every
/// later /result hit for that cell join one trace — the correlation the
/// ISSUE calls for. Requests without a cell key (/status, /metrics, ...)
/// mint fresh trace ids.
///
/// The SpanStore is not thread-safe; every entry point here locks one
/// mutex (HTTP loop thread + executor + scrapers contend only briefly).
/// Lineage grows per span minted, so the store is rotated out wholesale
/// every kEpochSpans spans — cumulative counters survive rotation, the
/// Perfetto export covers the current epoch.
class ServeTracer {
 public:
  /// Closed-span ring per epoch; lineage is bounded by the epoch swap.
  static constexpr std::size_t kRingSpans = 8192;
  static constexpr std::uint64_t kEpochSpans = 1 << 18;

  ServeTracer();
  ServeTracer(const ServeTracer&) = delete;
  ServeTracer& operator=(const ServeTracer&) = delete;

  void set_enabled(bool on);
  bool enabled() const { return enabled_; }
  /// Slow-request threshold in host microseconds (0 fires on every
  /// request — the forensics tests use that).
  void set_slow_us(std::uint64_t us) { slow_us_ = us; }
  std::uint64_t slow_us() const { return slow_us_; }

  /// Per-request stage boundaries, host_us(). Zeros are tolerated
  /// (in-process handle() has no socket timestamps): a missing ingress
  /// falls back to the first known timestamp.
  struct RequestTimes {
    std::uint64_t ingress_us = 0;
    std::uint64_t parsed_us = 0;
    std::uint64_t lookup_start_us = 0;
    std::uint64_t lookup_end_us = 0;
    std::uint64_t serialize_start_us = 0;
    std::uint64_t serialize_end_us = 0;
  };

  /// Record one request's chain retrospectively (all stages already
  /// timed). With expect_flush the root stays open and the returned
  /// token must be fed to flush_done() exactly once; without it the
  /// root closes at serialize end and 0 is returned.
  std::uint64_t record_request(const std::string& route,
                               std::uint64_t cell_key, const RequestTimes& t,
                               bool expect_flush);
  /// Close the flush span + root for `token` (from the HTTP flush
  /// observer). `route` forensics fire here when the ingress-to-flush
  /// total crosses the slow threshold.
  void flush_done(std::uint64_t token, std::uint64_t now_us);

  /// Queue-wait and execution spans for a queued cell, joined to the
  /// cell's trace.
  void queue_enter(std::uint64_t cell_key, std::uint64_t now_us);
  void queue_exit(std::uint64_t cell_key, std::uint64_t now_us);
  void execute_begin(std::uint64_t cell_key, std::uint64_t now_us);
  /// Returns the execution wall time in µs (0 when tracing is off or
  /// the begin was lost to a rotation).
  std::uint64_t execute_end(std::uint64_t cell_key, std::uint64_t now_us,
                            bool failed);

  /// Manual forensics trigger (store state snapshot rides in `detail`).
  void snapshot_slow(std::uint64_t now_us, const std::string& reason,
                     const std::string& detail);

  /// Perfetto JSON of the current epoch's closed spans (GET /trace).
  std::string trace_json() const;
  /// Flight-recorder dump (GET /flight).
  std::string flight_json() const;
  /// Copy of the current epoch's span store, for test assertions.
  obs::SpanStore snapshot() const;

  std::uint64_t requests_recorded() const;
  std::uint64_t slow_triggers() const;
  std::uint64_t rotations() const;
  std::size_t open_flushes() const;

 private:
  void maybe_rotate_locked();
  void slow_locked(std::uint64_t now_us, const std::string& reason,
                   const std::string& detail);

  struct PendingFlush {
    std::uint64_t root_id = 0;
    std::uint64_t trace_id = 0;
    std::uint64_t ingress_us = 0;
    std::uint64_t serialize_end_us = 0;
    std::uint32_t route = 0;  // interned, for the slow-detail JSON
  };
  struct PendingCell {
    std::uint64_t queue_span = 0;
    std::uint64_t exec_span = 0;
    std::uint64_t exec_start_us = 0;
  };

  mutable std::mutex mu_;
  bool enabled_ = true;
  std::uint64_t slow_us_ = 250 * 1000;  // --slow-ms default: 250 ms
  obs::SpanStore spans_;
  obs::FlightRecorder flight_;
  std::map<std::uint64_t, PendingFlush> flushes_;  // token -> open root
  std::map<std::uint64_t, PendingCell> cells_;     // cell key -> queue state
  /// route -> interned "serve.req.<route>": the handful of routes are
  /// resolved once instead of paying the concat + global-registry lock
  /// on every request.
  std::unordered_map<std::string, std::uint32_t> route_names_;
  std::uint64_t requests_ = 0;
  std::uint64_t slow_ = 0;
  std::uint64_t rotations_ = 0;

  // Interned span names (resolved once; interning takes a global lock).
  std::uint32_t n_parse_, n_lookup_, n_serialize_, n_flush_;
  std::uint32_t n_queue_wait_, n_execute_;
  std::uint32_t note_failed_;
};

}  // namespace mkbas::serve
