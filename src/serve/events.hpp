#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

namespace mkbas::serve {

/// Fan-out of structured serve-plane events to SSE subscribers
/// (GET /events). The hub renders one Server-Sent-Events frame per
/// publish and offers it to every subscriber through a sink the daemon
/// wires to HttpServer::stream_write — a bounded, non-blocking append.
/// A slow consumer whose buffer is full loses the frame (the hub
/// accounts for the drop and tells the consumer with a `dropped` frame
/// once it drains); it can never block the publisher, which is the HTTP
/// loop or the executor mid-batch.
///
/// Event types published by the daemon:
///   request         one per handled HTTP request (accepted/completed)
///   cell            cell state transitions (queued, ready, failed)
///   execution       exactly one per pool execution of a cell
///   health.anomaly  health.anomaly journal entries from executed cells
///   audit           other audit-journal entries (denials, verdicts)
///   dropped         backpressure notice after a drop run (per subscriber)
class EventHub {
 public:
  /// Per-subscriber outbound cap handed to the sink: frames beyond this
  /// backlog drop.
  static constexpr std::size_t kMaxBuffered = 256 * 1024;

  /// (stream_id, frame, max_buffered) -> accepted. Set before serving.
  using SinkFn = std::function<bool(std::uint64_t, const std::string&,
                                    std::size_t)>;

  void set_sink(SinkFn sink) {
    std::lock_guard<std::mutex> lk(mu_);
    sink_ = std::move(sink);
  }

  void subscribe(std::uint64_t stream_id);
  void unsubscribe(std::uint64_t stream_id);

  /// Render "event: <type>\nid: <seq>\ndata: <json>\n\n" and offer it
  /// to every subscriber. `json` must be one line.
  void publish(const std::string& type, const std::string& json);

  /// Lock-free: request handlers poll this on every request to skip
  /// event construction entirely while nobody is listening.
  std::size_t subscribers() const {
    return nsubs_.load(std::memory_order_relaxed);
  }
  std::uint64_t published() const;
  std::uint64_t delivered() const;
  std::uint64_t dropped() const;

 private:
  struct Sub {
    std::uint64_t dropped_run = 0;  // drops since the last delivery
  };

  mutable std::mutex mu_;
  SinkFn sink_;
  std::map<std::uint64_t, Sub> subs_;
  std::atomic<std::size_t> nsubs_{0};  // mirrors subs_.size()
  std::uint64_t seq_ = 0;
  std::uint64_t published_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace mkbas::serve
