#pragma once

#include <string>

#include "serve/http.hpp"

namespace mkbas::serve {

/// Tiny blocking HTTP/1.1 client for the daemon's loopback port — what
/// the serve tests and bench_serve drive the server with (CI smoke uses
/// curl/python for an independent implementation). Keeps one keep-alive
/// connection; reconnects transparently when the server closed it.
class HttpClient {
 public:
  /// `client_id` is sent as X-Client on every request (the daemon's
  /// fairness key); empty sends no header and the peer address is used.
  explicit HttpClient(int port, std::string client_id = "");
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// One round trip. False + *err on connect/IO/parse failure.
  bool request(const std::string& method, const std::string& target,
               const std::string& body, HttpResponse* out, std::string* err);

  bool get(const std::string& target, HttpResponse* out, std::string* err) {
    return request("GET", target, "", out, err);
  }
  bool post(const std::string& target, const std::string& body,
            HttpResponse* out, std::string* err) {
    return request("POST", target, body, out, err);
  }

 private:
  bool connect_(std::string* err);
  void close_();

  int port_;
  std::string client_id_;
  int fd_ = -1;
};

}  // namespace mkbas::serve
