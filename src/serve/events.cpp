#include "serve/events.hpp"

#include <cstdio>

namespace mkbas::serve {

void EventHub::subscribe(std::uint64_t stream_id) {
  std::lock_guard<std::mutex> lk(mu_);
  subs_[stream_id];
  nsubs_.store(subs_.size(), std::memory_order_relaxed);
}

void EventHub::unsubscribe(std::uint64_t stream_id) {
  std::lock_guard<std::mutex> lk(mu_);
  subs_.erase(stream_id);
  nsubs_.store(subs_.size(), std::memory_order_relaxed);
}

void EventHub::publish(const std::string& type, const std::string& json) {
  std::lock_guard<std::mutex> lk(mu_);
  if (subs_.empty()) return;
  ++published_;
  const std::uint64_t id = ++seq_;
  char idbuf[24];
  const int idlen = std::snprintf(idbuf, sizeof idbuf, "%llu",
                                  static_cast<unsigned long long>(id));
  std::string frame;
  frame.reserve(24 + type.size() + static_cast<std::size_t>(idlen) +
                json.size());
  frame += "event: ";
  frame += type;
  frame += "\nid: ";
  frame.append(idbuf, static_cast<std::size_t>(idlen));
  frame += "\ndata: ";
  frame += json;
  frame += "\n\n";
  for (auto& [sid, sub] : subs_) {
    if (!sink_) {
      ++dropped_;
      ++sub.dropped_run;
      continue;
    }
    // A subscriber that lost frames learns how many, as soon as its
    // buffer has room again — dropped-with-accounting, end to end.
    if (sub.dropped_run > 0) {
      const std::string notice =
          "event: dropped\ndata: {\"dropped\":" +
          std::to_string(sub.dropped_run) + "}\n\n";
      if (sink_(sid, notice, kMaxBuffered)) sub.dropped_run = 0;
    }
    if (sink_(sid, frame, kMaxBuffered)) {
      ++delivered_;
    } else {
      ++dropped_;
      ++sub.dropped_run;
    }
  }
}

std::uint64_t EventHub::published() const {
  std::lock_guard<std::mutex> lk(mu_);
  return published_;
}

std::uint64_t EventHub::delivered() const {
  std::lock_guard<std::mutex> lk(mu_);
  return delivered_;
}

std::uint64_t EventHub::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

}  // namespace mkbas::serve
