#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "campaign/pool.hpp"
#include "obs/metrics.hpp"
#include "serve/events.hpp"
#include "serve/http.hpp"
#include "serve/result_store.hpp"
#include "serve/tracer.hpp"

namespace mkbas::serve {

struct DaemonOptions {
  int port = 8080;  // 0 = any free port (tests)
  int jobs = 1;     // pool workers for cache-miss batches
  int batch = 8;    // max cells drained into one pool batch
  /// Request tracing + live event publication (--no-trace turns both
  /// off; the bench A/B arm prices them).
  bool tracing = true;
  /// Slow-request forensics threshold, milliseconds: a request whose
  /// ingress-to-flush total (or a cell whose execution wall) crosses it
  /// snapshots the span chain + store state into the flight recorder.
  /// 0 = snapshot every request (tests).
  int slow_ms = 250;
  /// Result-store cell bound, 0 = unbounded (--store-cap).
  std::size_t store_cap = 0;
};

/// The experiment daemon: canonical requests in, cached bundles out.
///
///   POST /run            JSON body -> {key, status: ready|pending|queued}
///   GET  /result/<key>   ?artifact=<kind>, default summary
///   GET  /replay/<key>   re-execute, byte-compare against the cache
///   GET  /status         counters, queue depth, pool profile
///   GET  /metrics        Prometheus text exposition of the registry
///   GET  /trace          Perfetto JSON of the request span chains
///   GET  /events         SSE stream: requests, cell transitions,
///                        health.anomaly / audit entries from executions
///   GET  /flight         slow-request forensics snapshots
///   POST /shutdown       stop accepting, wake wait()
///
/// Two threads beyond the caller's: the HTTP event loop (fast paths —
/// cache hits, lookups, enqueue) and the executor. The executor drains
/// the pending queues round-robin across clients — one cell per client
/// per pass, so a client dumping 100 cells cannot starve one submitting
/// a single request — into batches of at most `batch` cells, fans each
/// batch across the work-stealing pool, and completes the store entries.
/// Every route is also reachable in-process via handle() for tests.
///
/// Observability (DESIGN.md §14): every HTTP request is traced into a
/// host-time span chain keyed by cell key (ServeTracer), every request
/// and cell transition is published to SSE subscribers (EventHub), and
/// the registry grows per-route latency/size histograms, queue-wait and
/// execution-wall histograms, per-client fairness counters and store
/// hit/coalesce/evict accounting — all host-side state, never part of a
/// cached bundle.
class Daemon {
 public:
  explicit Daemon(const DaemonOptions& opts);
  ~Daemon();

  /// Start executor + HTTP server. False + *err if the port is taken.
  bool start(std::string* err);
  /// Block until POST /shutdown or shutdown() is called.
  void wait();
  /// Stop the HTTP server and the executor (drains nothing: pending
  /// cells stay pending). Idempotent; called by the destructor.
  void shutdown();

  int port() const { return http_.port(); }

  /// Route one request exactly as the HTTP server would — the unit-test
  /// entry point (no sockets involved).
  HttpResponse handle(const HttpRequest& req);

  const ResultStore& store() const { return store_; }
  /// Cells executed through the pool (not hits, not coalesced waits).
  std::uint64_t executions() const;
  /// Test hooks into the observability plane.
  const EventHub& events() const { return hub_; }
  obs::SpanStore trace_snapshot() const { return tracer_.snapshot(); }

 private:
  struct RouteStats {
    obs::Histogram latency;  // serve.http.latency_us.<route>, host µs
    obs::Histogram size;     // serve.http.resp_bytes.<route>
  };

  void executor_loop();
  void enqueue(const std::string& client, std::uint64_t key);
  /// Parse the executed bundle's audit artifact and publish its entries
  /// (health.anomaly first-class) to SSE subscribers, then the
  /// execution event itself. No-op without subscribers.
  void publish_execution(std::uint64_t key, const ResultBundle* bundle,
                         bool failed, std::uint64_t wall_us);

  HttpResponse post_run(const HttpRequest& req,
                        ServeTracer::RequestTimes* times,
                        std::uint64_t* cell_key);
  HttpResponse get_result(std::uint64_t key, const HttpRequest& req,
                          ServeTracer::RequestTimes* times);
  HttpResponse get_replay(std::uint64_t key,
                          ServeTracer::RequestTimes* times);
  HttpResponse get_status();
  HttpResponse get_metrics();
  HttpResponse get_events();

  RouteStats& route_stats(const std::string& route);
  void bump_client(const std::string& client);

  DaemonOptions opts_;
  ResultStore store_;
  campaign::WorkStealingPool pool_;
  HttpServer http_;
  ServeTracer tracer_;
  EventHub hub_;

  std::mutex mu_;
  std::condition_variable cv_;
  /// Per-client FIFO of (pending cell key, enqueue host_us) — the second
  /// element feeds the queue-wait histogram at drain time — plus the
  /// round-robin rotation of clients with work. A client appears in
  /// rotation_ iff its queue is non-empty.
  std::map<std::string, std::deque<std::pair<std::uint64_t, std::uint64_t>>>
      queues_;
  std::deque<std::string> rotation_;
  std::size_t queue_depth_ = 0;
  bool stopping_ = false;
  bool stop_requested_ = false;  // POST /shutdown -> wait() returns

  /// Daemon metrics ride the standard obs registry (same JSON schema as
  /// every machine export); handles are updated under mu_.
  obs::MetricsRegistry reg_;
  obs::Counter requests_, bad_requests_, replays_, executions_ctr_;
  obs::Counter store_hits_, store_misses_, store_coalesced_;
  obs::Gauge depth_gauge_;
  obs::Histogram queue_wait_hist_, exec_wall_hist_;
  std::map<std::string, RouteStats> route_stats_;      // under mu_
  std::map<std::string, obs::Counter> client_counters_;  // under mu_

  /// Publisher-side rate limit on per-request SSE events (under mu_):
  /// a hit storm must not become a frame firehose. Suppressed events
  /// are accounted — the running count rides the next published request
  /// event, the cumulative one is scraped as a metric.
  static constexpr std::uint64_t kMaxRequestEventsPerSec = 500;
  std::uint64_t req_event_window_us_ = 0;
  std::uint64_t req_events_in_window_ = 0;
  std::uint64_t req_events_suppressed_ = 0;
  std::uint64_t req_events_suppressed_total_ = 0;

  std::thread executor_;
  bool started_ = false;
};

}  // namespace mkbas::serve
