#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "campaign/pool.hpp"
#include "obs/metrics.hpp"
#include "serve/http.hpp"
#include "serve/result_store.hpp"

namespace mkbas::serve {

struct DaemonOptions {
  int port = 8080;  // 0 = any free port (tests)
  int jobs = 1;     // pool workers for cache-miss batches
  int batch = 8;    // max cells drained into one pool batch
};

/// The experiment daemon: canonical requests in, cached bundles out.
///
///   POST /run            JSON body -> {key, status: ready|pending|queued}
///   GET  /result/<key>   ?artifact=<kind>, default summary
///   GET  /replay/<key>   re-execute, byte-compare against the cache
///   GET  /status         counters, queue depth, pool profile
///   POST /shutdown       stop accepting, wake wait()
///
/// Two threads beyond the caller's: the HTTP event loop (fast paths —
/// cache hits, lookups, enqueue) and the executor. The executor drains
/// the pending queues round-robin across clients — one cell per client
/// per pass, so a client dumping 100 cells cannot starve one submitting
/// a single request — into batches of at most `batch` cells, fans each
/// batch across the work-stealing pool, and completes the store entries.
/// Every route is also reachable in-process via handle() for tests.
class Daemon {
 public:
  explicit Daemon(const DaemonOptions& opts);
  ~Daemon();

  /// Start executor + HTTP server. False + *err if the port is taken.
  bool start(std::string* err);
  /// Block until POST /shutdown or shutdown() is called.
  void wait();
  /// Stop the HTTP server and the executor (drains nothing: pending
  /// cells stay pending). Idempotent; called by the destructor.
  void shutdown();

  int port() const { return http_.port(); }

  /// Route one request exactly as the HTTP server would — the unit-test
  /// entry point (no sockets involved).
  HttpResponse handle(const HttpRequest& req);

  const ResultStore& store() const { return store_; }
  /// Cells executed through the pool (not hits, not coalesced waits).
  std::uint64_t executions() const;

 private:
  void executor_loop();
  void enqueue(const std::string& client, std::uint64_t key);

  HttpResponse post_run(const HttpRequest& req);
  HttpResponse get_result(std::uint64_t key, const HttpRequest& req);
  HttpResponse get_replay(std::uint64_t key);
  HttpResponse get_status();

  DaemonOptions opts_;
  ResultStore store_;
  campaign::WorkStealingPool pool_;
  HttpServer http_;

  std::mutex mu_;
  std::condition_variable cv_;
  /// Per-client FIFO of pending cell keys, plus the round-robin rotation
  /// of clients with work. A client appears in rotation_ iff its queue
  /// is non-empty.
  std::map<std::string, std::deque<std::uint64_t>> queues_;
  std::deque<std::string> rotation_;
  std::size_t queue_depth_ = 0;
  bool stopping_ = false;
  bool stop_requested_ = false;  // POST /shutdown -> wait() returns

  /// Daemon metrics ride the standard obs registry (same JSON schema as
  /// every machine export); handles are updated under mu_.
  obs::MetricsRegistry reg_;
  obs::Counter requests_, bad_requests_, replays_, executions_ctr_;
  obs::Gauge depth_gauge_;

  std::thread executor_;
  bool started_ = false;
};

}  // namespace mkbas::serve
