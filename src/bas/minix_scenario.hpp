#pragma once

#include <functional>
#include <memory>
#include <string>

#include "aadl/compile.hpp"
#include "bas/scenario.hpp"
#include "minix/fs.hpp"
#include "minix/kernel.hpp"
#include "net/http.hpp"

namespace mkbas::bas {

/// The temperature-control scenario on security-enhanced MINIX 3 (§IV.A).
///
/// Construction mirrors the paper: the built-in AADL model is parsed and
/// compiled into an ACM; the kernel boots with that matrix; a *scenario
/// process* acts as loader, fork2()-ing the five processes with their
/// ac_ids, then sealing ac_id assignment (end of the boot period) and
/// exiting. All five bodies use only the MINIX syscall surface.
class MinixScenario : public Scenario {
 public:
  static constexpr int kLoaderAcId = 99;

  explicit MinixScenario(sim::Machine& machine, ScenarioConfig cfg = {});
  ~MinixScenario() override { machine_.shutdown(); }

  MinixScenario(const MinixScenario&) = delete;
  MinixScenario& operator=(const MinixScenario&) = delete;

  /// Arm a compromise of the web interface: `hook` runs once, inside the
  /// web process, at the first poll after `when` (arbitrary code
  /// execution in the web interface, §IV.D). Call before running.
  void arm_web_attack(sim::Time when, std::function<void(MinixScenario&)> hook) {
    attack_time_ = when;
    attack_hook_ = std::move(hook);
  }

  Platform platform() const override { return Platform::kMinix; }
  const char* variant() const override { return "temp"; }
  void arm_attack(sim::Time when, AttackHook hook) override {
    arm_web_attack(when, [hook = std::move(hook)](MinixScenario& sc) {
      hook(sc);
    });
  }
  int restarts() const override { return kernel_->restarts(); }

  minix::MinixKernel& kernel() { return *kernel_; }
  /// Non-null when config().enable_fs_log is set.
  minix::FsServer* fs() { return fs_.get(); }
  sim::Machine& machine() override { return machine_; }
  net::HttpConsole& http() override { return http_; }
  Plant* plant() override { return plant_.get(); }
  const aadl::CompiledSystem& system() const { return system_; }
  const ScenarioConfig& config() const { return cfg_; }

  /// Endpoint of a scenario process by its AADL instance name.
  minix::Endpoint endpoint_of(const std::string& instance) const {
    return kernel_->lookup(instance);
  }

 private:
  void loader_proc();
  void sensor_proc();
  void control_proc();
  void heater_proc();
  void alarm_proc();
  void web_proc();

  sim::Machine& machine_;
  ScenarioConfig cfg_;
  aadl::CompiledSystem system_;
  std::unique_ptr<Plant> plant_;
  std::unique_ptr<minix::MinixKernel> kernel_;
  std::unique_ptr<minix::FsServer> fs_;
  net::HttpConsole http_;
  sim::Time attack_time_ = -1;
  std::function<void(MinixScenario&)> attack_hook_;
};

}  // namespace mkbas::bas
