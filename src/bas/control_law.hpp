#pragma once

#include <optional>

#include "sim/time.hpp"

namespace mkbas::bas {

/// Tunables of the temperature control process (§II).
struct ControlConfig {
  double initial_setpoint_c = 22.0;
  double setpoint_min_c = 15.0;  // "within a predefined range"
  double setpoint_max_c = 30.0;
  double hysteresis_c = 0.5;
  double alarm_tolerance_c = 1.5;
  sim::Duration alarm_timeout = sim::minutes(5);  // "e.g., 5 minutes"
};

/// Snapshot of the controller's view of the environment, returned to the
/// web interface on env queries and written to the log.
struct EnvInfo {
  double last_temp_c = 0.0;
  double setpoint_c = 0.0;
  bool heater_on = false;
  bool alarm_on = false;
};

/// The control logic of the temperature control process, kept pure (no
/// IPC, no devices) so the identical law runs on MINIX 3, seL4/CAmkES and
/// Linux — mirroring the paper's "intuitive implementation [that is]
/// functionally correct".
///
/// Law: bang-bang with hysteresis around the setpoint; the alarm latches
/// on when the temperature has been outside the tolerance band
/// continuously for `alarm_timeout` (the controller "fails to achieve the
/// desired temperature within a certain time interval") and clears when
/// the band is re-entered.
class TempControlLogic {
 public:
  explicit TempControlLogic(ControlConfig cfg = {})
      : cfg_(cfg), setpoint_(cfg.initial_setpoint_c) {}

  struct Decision {
    bool heater_on = false;
    bool alarm_on = false;
  };

  /// Feed one sensor sample; returns the actuator commands to issue.
  Decision on_sample(double temp_c, sim::Time now) {
    last_temp_ = temp_c;
    // Bang-bang with hysteresis.
    if (temp_c < setpoint_ - cfg_.hysteresis_c) {
      heater_on_ = true;
    } else if (temp_c > setpoint_ + cfg_.hysteresis_c) {
      heater_on_ = false;
    }
    // Alarm timer.
    const bool in_band =
        temp_c >= setpoint_ - cfg_.alarm_tolerance_c &&
        temp_c <= setpoint_ + cfg_.alarm_tolerance_c;
    if (in_band) {
      out_of_band_since_.reset();
      alarm_on_ = false;
    } else {
      if (!out_of_band_since_.has_value()) out_of_band_since_ = now;
      if (now - *out_of_band_since_ >= cfg_.alarm_timeout) alarm_on_ = true;
    }
    return {heater_on_, alarm_on_};
  }

  /// Admin setpoint update; rejected outside the predefined range.
  bool try_set_setpoint(double sp_c, sim::Time now) {
    if (sp_c < cfg_.setpoint_min_c || sp_c > cfg_.setpoint_max_c) {
      return false;
    }
    setpoint_ = sp_c;
    // A new target restarts the settle timer rather than alarming
    // immediately for the transition period.
    out_of_band_since_ = now;
    return true;
  }

  double setpoint() const { return setpoint_; }
  bool heater_on() const { return heater_on_; }
  bool alarm_on() const { return alarm_on_; }
  EnvInfo env() const { return {last_temp_, setpoint_, heater_on_, alarm_on_}; }
  const ControlConfig& config() const { return cfg_; }

 private:
  ControlConfig cfg_;
  double setpoint_;
  double last_temp_ = 0.0;
  bool heater_on_ = false;
  bool alarm_on_ = false;
  std::optional<sim::Time> out_of_band_since_;
};

}  // namespace mkbas::bas
