#include "bas/scenario.hpp"

#include <map>
#include <stdexcept>

#include "bas/bsl3_scenario.hpp"
#include "bas/bsl3_sel4_scenario.hpp"
#include "bas/linux_scenario.hpp"
#include "bas/linux_uds_scenario.hpp"
#include "bas/minix_scenario.hpp"
#include "bas/sel4_scenario.hpp"

namespace mkbas::bas {

const char* to_string(Platform p) {
  switch (p) {
    case Platform::kMinix:
      return "MINIX3+ACM";
    case Platform::kSel4:
      return "seL4/CAmkES";
    case Platform::kLinux:
      return "Linux";
  }
  return "?";
}

namespace {

using Key = std::pair<Platform, std::string>;

/// The registry proper. Built-ins are registered on first use (a plain
/// function-local static, so there is no cross-TU initialisation-order
/// or dead-object-file hazard the way per-scenario global registrars
/// would have).
std::map<Key, ScenarioFactory>& registry() {
  static std::map<Key, ScenarioFactory> map = [] {
    std::map<Key, ScenarioFactory> m;
    m[{Platform::kMinix, "temp"}] = [](sim::Machine& mach,
                                       const ScenarioConfig& cfg)
        -> std::unique_ptr<Scenario> {
      return std::make_unique<MinixScenario>(mach, cfg);
    };
    m[{Platform::kSel4, "temp"}] = [](sim::Machine& mach,
                                      const ScenarioConfig& cfg)
        -> std::unique_ptr<Scenario> {
      return std::make_unique<Sel4Scenario>(mach, cfg);
    };
    m[{Platform::kLinux, "temp"}] = [](sim::Machine& mach,
                                       const ScenarioConfig& cfg)
        -> std::unique_ptr<Scenario> {
      return std::make_unique<LinuxScenario>(
          mach, cfg,
          cfg.linux_separate_accounts ? LinuxScenario::Accounts::kSeparate
                                      : LinuxScenario::Accounts::kShared);
    };
    m[{Platform::kLinux, "uds"}] = [](sim::Machine& mach,
                                      const ScenarioConfig& cfg)
        -> std::unique_ptr<Scenario> {
      return std::make_unique<LinuxUdsScenario>(
          mach, cfg,
          cfg.linux_separate_accounts ? LinuxUdsScenario::Accounts::kSeparate
                                      : LinuxUdsScenario::Accounts::kShared,
          cfg.uds_abstract_namespace
              ? LinuxUdsScenario::Namespace::kAbstract
              : LinuxUdsScenario::Namespace::kFilesystem);
    };
    m[{Platform::kMinix, "bsl3"}] = [](sim::Machine& mach,
                                       const ScenarioConfig& cfg)
        -> std::unique_ptr<Scenario> {
      return std::make_unique<Bsl3Scenario>(mach, cfg.bsl3, cfg.bsl3_policy);
    };
    m[{Platform::kSel4, "bsl3"}] = [](sim::Machine& mach,
                                      const ScenarioConfig& cfg)
        -> std::unique_ptr<Scenario> {
      return std::make_unique<Bsl3Sel4Scenario>(mach, cfg.bsl3);
    };
    return m;
  }();
  return map;
}

}  // namespace

void register_scenario(Platform platform, const std::string& variant,
                       ScenarioFactory factory) {
  registry()[{platform, variant}] = factory;
}

std::unique_ptr<Scenario> make_scenario(sim::Machine& machine,
                                        Platform platform,
                                        const std::string& variant,
                                        const ScenarioConfig& cfg) {
  const std::string v = variant.empty() ? "temp" : variant;
  const auto it = registry().find({platform, v});
  if (it == registry().end()) {
    throw std::invalid_argument(std::string("no scenario '") + v +
                                "' registered for platform " +
                                to_string(platform));
  }
  return it->second(machine, cfg);
}

std::vector<std::string> scenario_variants(Platform platform) {
  std::vector<std::string> out;
  for (const auto& [key, factory] : registry()) {
    (void)factory;
    if (key.first == platform) out.push_back(key.second);
  }
  return out;
}

}  // namespace mkbas::bas
