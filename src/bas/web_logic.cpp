#include "bas/web_logic.hpp"

#include <cstdio>
#include <cstdlib>

namespace mkbas::bas {

std::optional<double> parse_form_value(const std::string& body) {
  const std::string key = "value=";
  const auto pos = body.find(key);
  if (pos == std::string::npos) return std::nullopt;
  const char* start = body.c_str() + pos + key.size();
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return std::nullopt;
  return v;
}

WebAction route_request(const net::HttpRequest& req) {
  WebAction act;
  if (req.method == "GET" && req.path == "/status") {
    act.kind = WebAction::Kind::kStatus;
    return act;
  }
  if (req.method == "POST" && req.path == "/setpoint") {
    const auto v = parse_form_value(req.body);
    if (!v.has_value()) {
      act.kind = WebAction::Kind::kBadRequest;
      return act;
    }
    act.kind = WebAction::Kind::kSetSetpoint;
    act.setpoint_c = *v;
    return act;
  }
  act.kind = WebAction::Kind::kNotFound;
  return act;
}

net::HttpResponse render_status(const EnvInfo& env) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "temp=%.1f;setpoint=%.1f;heater=%s;alarm=%s",
                env.last_temp_c, env.setpoint_c,
                env.heater_on ? "on" : "off", env.alarm_on ? "on" : "off");
  return {200, buf};
}

net::HttpResponse render_setpoint_result(bool accepted) {
  return accepted ? net::HttpResponse{200, "setpoint accepted"}
                  : net::HttpResponse{422, "setpoint out of allowed range"};
}

net::HttpResponse render_bad_request() { return {400, "bad request"}; }

net::HttpResponse render_not_found() { return {404, "not found"}; }

net::HttpResponse render_unavailable() {
  return {503, "control process unavailable"};
}

}  // namespace mkbas::bas
