#pragma once

#include <functional>
#include <memory>
#include <string>

#include "bas/scenario.hpp"
#include "linuxsim/kernel.hpp"
#include "net/http.hpp"

namespace mkbas::bas {

/// The temperature-control scenario on Linux (§IV.C): POSIX message
/// queues as IPC, a scenario process spawning the five processes and
/// creating the six queues.
///
/// Two deployment variants, matching the paper's two simulations:
///  * kSharedAccount — all five processes run under one user account
///    (the paper's first simulation; "since all five processes are
///    running under the same user account, the file access control
///    mechanism allows the web interface process to read and write all
///    message queues");
///  * kSeparateAccounts — one uid per process plus tight per-queue ACLs
///    (the "well-configured" baseline that only root can defeat).
class LinuxScenario : public Scenario {
 public:
  enum class Accounts { kShared, kSeparate };

  struct Uids {
    static constexpr linuxsim::Uid kShared = 1000;
    static constexpr linuxsim::Uid kSensor = 1001;
    static constexpr linuxsim::Uid kControl = 1002;
    static constexpr linuxsim::Uid kHeater = 1003;
    static constexpr linuxsim::Uid kAlarm = 1004;
    static constexpr linuxsim::Uid kWeb = 1005;
  };

  // The six queues the scenario process creates (§IV.C).
  static constexpr const char* kQSensor = "/q_sensor";
  static constexpr const char* kQSetpoint = "/q_setpoint";
  static constexpr const char* kQEnvReq = "/q_envreq";
  static constexpr const char* kQEnv = "/q_env";
  static constexpr const char* kQHeater = "/q_heater";
  static constexpr const char* kQAlarm = "/q_alarm";

  explicit LinuxScenario(sim::Machine& machine, ScenarioConfig cfg = {},
                         Accounts accounts = Accounts::kShared);
  ~LinuxScenario() override { machine_.shutdown(); }

  LinuxScenario(const LinuxScenario&) = delete;
  LinuxScenario& operator=(const LinuxScenario&) = delete;

  /// Arm a compromise of the web interface (same contract as the other
  /// platforms). The hook runs inside the web process; escalate to root
  /// via kernel().exploit_escalate_to_root() for the second simulation.
  void arm_web_attack(sim::Time when,
                      std::function<void(LinuxScenario&)> hook) {
    attack_time_ = when;
    attack_hook_ = std::move(hook);
  }

  Platform platform() const override { return Platform::kLinux; }
  const char* variant() const override { return "temp"; }
  void arm_attack(sim::Time when, AttackHook hook) override {
    arm_web_attack(when, [hook = std::move(hook)](LinuxScenario& sc) {
      hook(sc);
    });
  }

  linuxsim::LinuxKernel& kernel() { return *kernel_; }
  sim::Machine& machine() override { return machine_; }
  net::HttpConsole& http() override { return http_; }
  Plant* plant() override { return plant_.get(); }
  Accounts accounts() const { return accounts_; }
  const ScenarioConfig& config() const { return cfg_; }

  /// pid of a scenario process by name ("tempProc" etc.), -1 if dead.
  int pid_of(const std::string& name) const { return kernel_->find_pid(name); }

  // Wire-format helpers shared with the attack module.
  static std::string encode_temp(double t);
  static std::string encode_setpoint(double sp);
  static std::string encode_cmd(bool on);
  static std::string encode_env(const EnvInfo& env);
  static bool decode_temp(const std::string& s, double* out);
  static bool decode_setpoint(const std::string& s, double* out);
  static bool decode_cmd(const std::string& s, bool* out);
  static bool decode_env(const std::string& s, EnvInfo* out);

 private:
  void scenario_proc();
  void sensor_proc();
  void control_proc();
  void heater_proc();
  void alarm_proc();
  void web_proc();

  sim::Machine& machine_;
  ScenarioConfig cfg_;
  Accounts accounts_;
  std::unique_ptr<Plant> plant_;
  std::unique_ptr<linuxsim::LinuxKernel> kernel_;
  net::HttpConsole http_;
  sim::Time attack_time_ = -1;
  std::function<void(LinuxScenario&)> attack_hook_;
};

}  // namespace mkbas::bas
