#include "bas/minix_scenario.hpp"

#include <cstdio>
#include <stdexcept>

#include "aadl/parser.hpp"
#include "aadl/scenario_model.hpp"
#include "bas/web_logic.hpp"

namespace mkbas::bas {

using aadl::ScenarioMTypes;
using minix::Endpoint;
using minix::IpcResult;
using minix::Message;
using minix::MinixKernel;

namespace {

aadl::CompiledSystem compile_builtin() {
  aadl::Parser parser(aadl::temp_control_aadl());
  const aadl::Model model = parser.parse();
  std::vector<aadl::Diagnostic> diags;
  auto sys = aadl::compile(model, "TempControl.impl", diags);
  if (!sys.has_value()) {
    throw std::runtime_error("builtin scenario model failed to compile: " +
                             (diags.empty() ? "?" : diags[0].message));
  }
  return *sys;
}

}  // namespace

MinixScenario::MinixScenario(sim::Machine& machine, ScenarioConfig cfg)
    : machine_(machine), cfg_(cfg), system_(compile_builtin()) {
  plant_ = std::make_unique<Plant>(machine_, cfg_);

  aadl::AcmGenOptions opts;
  opts.enable_quotas = cfg_.enable_quotas;
  // The kill syscall is addressable by everyone (as on real MINIX); the
  // kill matrix inside PM still denies every pair — so a blocked kill
  // is an audited PM decision whose journal entry carries the full
  // causal chain (web.compromised -> minix.ipc -> pm.audit ->
  // acm.kill_deny), not a silent edge drop.
  opts.open_kill_syscall = true;
  minix::AcmPolicy acm = aadl::generate_acm(system_, opts);
  // The scenario loader needs fork/exit edges to PM (it is not part of
  // the AADL model proper; a real system's init server plays this role).
  acm.allow(kLoaderAcId, MinixKernel::kPmAcId,
            {aadl::kAckMType, minix::PmProtocol::kFork,
             minix::PmProtocol::kExit});
  acm.allow(MinixKernel::kPmAcId, kLoaderAcId, {aadl::kAckMType});

  if (cfg_.enable_fs_log) {
    // The control process talks to the FS server for its log file.
    const int ctl = aadl::ScenarioAcIds::kTempControl;
    acm.allow_mask(ctl, minix::FsServer::kFsAcId, ~0ULL);
    acm.allow(minix::FsServer::kFsAcId, ctl, {aadl::kAckMType});
  }

  kernel_ = std::make_unique<MinixKernel>(machine_, std::move(acm));
  if (cfg_.enable_fs_log) {
    fs_ = std::make_unique<minix::FsServer>(*kernel_);
  }
  if (cfg_.enable_reincarnation) kernel_->enable_reincarnation();
  kernel_->srv_fork2("scenario", kLoaderAcId, [this] { loader_proc(); },
                     /*priority=*/3);
}

void MinixScenario::loader_proc() {
  auto& k = *kernel_;
  // fork2 each process with the ac_id from the AADL specification
  // ("tells kernel each process's ac_id, and loads the correct binaries").
  struct Row {
    const char* name;
    int ac;
    void (MinixScenario::*body)();
    int prio;
  };
  const Row rows[] = {
      {"tempProc", aadl::ScenarioAcIds::kTempControl,
       &MinixScenario::control_proc, 6},
      {"heaterActProc", aadl::ScenarioAcIds::kHeaterActuator,
       &MinixScenario::heater_proc, 5},
      {"alarmProc", aadl::ScenarioAcIds::kAlarmActuator,
       &MinixScenario::alarm_proc, 5},
      {"tempSensProc", aadl::ScenarioAcIds::kTempSensor,
       &MinixScenario::sensor_proc, 5},
      {"webInterface", aadl::ScenarioAcIds::kWebInterface,
       &MinixScenario::web_proc, 8},
  };
  for (const Row& row : rows) {
    const auto res =
        k.fork2(row.name, row.ac, [this, row] { (this->*row.body)(); },
                row.prio);
    if (res.status != IpcResult::kOk) {
      machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kProcess,
                            "scenario.load_failed", row.name);
    }
  }
  k.seal_ac_assignment();  // boot period over: ac_ids are now fixed
  k.pm_exit(0);
}

void MinixScenario::sensor_proc() {
  auto& k = *kernel_;
  auto& spans = machine_.spans();
  const std::uint32_t tag_sample =
      sim::TagRegistry::instance().intern("sensor.sample");
  const int self = machine_.current()->pid();
  Endpoint ctl = k.wait_lookup("tempProc");
  for (;;) {
    // Root of the control-loop trace: the IPC hop to the controller (and
    // everything the controller does with this sample) chains under it.
    const std::uint64_t s = spans.begin(self, machine_.now(), tag_sample);
    const double t = plant_->sensor.read_temperature_c();
    machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kDevice,
                          "sensor.sample", "", t);
    Message m;
    m.m_type = ScenarioMTypes::kSensorData;
    m.put_f64(WireFormat::kTempOff, t);
    // "sends the fresh data using nonblocking send" — a busy controller
    // simply misses this sample and catches the next one. A *dead*
    // controller may have been reincarnated: re-resolve by name.
    if (k.ipc_sendnb(ctl, m) == IpcResult::kDeadSrcDst) {
      const Endpoint fresh = k.lookup("tempProc");
      if (fresh.valid()) ctl = fresh;
    }
    spans.end(self, machine_.now(), s);
    machine_.sleep_for(cfg_.sensor_period);
  }
}

void MinixScenario::control_proc() {
  auto& k = *kernel_;
  auto& spans = machine_.spans();
  const std::uint32_t tag_compute =
      sim::TagRegistry::instance().intern("ctl.compute");
  const int self = machine_.current()->pid();
  Endpoint heater = k.wait_lookup("heaterActProc");
  Endpoint alarm = k.wait_lookup("alarmProc");
  Endpoint sensor_ep = k.wait_lookup("tempSensProc");
  TempControlLogic logic(cfg_.control);
  // Control-quality metrics: deviation of the realised sample interval
  // from the nominal sensor period, and every actuator command issued.
  auto jitter = machine_.metrics().log_histogram("minix.ctl.jitter", 4, 1e6);
  auto jitter_sig = machine_.health().signal("minix.ctl.jitter");
  auto actuations = machine_.metrics().counter("minix.ctl.actuations");
  sim::Time last_sample_t = -1;

  // "At the end of the while loop, environment information will be
  // written in a log file" — through the user-mode FS server.
  int log_fd = -1;
  std::unique_ptr<minix::FsClient> fs_client;
  if (fs_ != nullptr) {
    fs_client = std::make_unique<minix::FsClient>(k, fs_->endpoint());
    log_fd = fs_client->open("/var/log/tempctl.log", /*create=*/true);
  }
  auto log_env = [&] {
    if (log_fd < 0) return;
    const EnvInfo env = logic.env();
    char line[96];
    std::snprintf(line, sizeof line, "t=%lld temp=%.2f sp=%.1f h=%d a=%d\n",
                  static_cast<long long>(machine_.now() / sim::sec(1)),
                  env.last_temp_c, env.setpoint_c, env.heater_on ? 1 : 0,
                  env.alarm_on ? 1 : 0);
    fs_client->write(log_fd, line);
  };

  // Drivers may be restarted by the reincarnation server under a new
  // endpoint; on a dead-destination error, re-resolve by name and retry.
  auto command = [&](Endpoint& actuator, const char* name, bool on) {
    actuations.inc();
    Message m;
    m.m_type = ScenarioMTypes::kActuatorCmd;
    m.put_i32(WireFormat::kCmdOff, on ? 1 : 0);
    if (k.ipc_send(actuator, m) == IpcResult::kDeadSrcDst) {
      const Endpoint fresh = k.lookup(name);
      if (fresh.valid()) {
        actuator = fresh;
        k.ipc_send(actuator, m);
      }
    }
  };

  for (;;) {
    Message m;
    if (k.ipc_receive(Endpoint::any(), m) != IpcResult::kOk) continue;
    switch (m.m_type) {
      case ScenarioMTypes::kSensorData: {
        // Defence in depth: the ACM already guarantees only the sensor
        // can send this type, but a correct implementation checks anyway.
        if (m.source() != sensor_ep) {
          // The sensor may have been reincarnated under a new endpoint.
          const Endpoint fresh = k.lookup("tempSensProc");
          if (fresh.valid()) sensor_ep = fresh;
          if (m.source() != sensor_ep) break;
        }
        // Opened only after source validation so a rejected message never
        // leaks an open span. The IPC delivery path has already set this
        // pid's current context to the sensor's hop, so the compute span
        // (and both actuator commands issued inside it) chain under the
        // sample that triggered them.
        const std::uint64_t cs = spans.begin(self, machine_.now(), tag_compute);
        const auto d =
            logic.on_sample(m.get_f64(WireFormat::kTempOff), machine_.now());
        command(heater, "heaterActProc", d.heater_on);
        command(alarm, "alarmProc", d.alarm_on);
        machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kControl,
                              "ctl.sample", "", logic.env().last_temp_c);
        if (last_sample_t >= 0) {
          const sim::Duration dt = machine_.now() - last_sample_t;
          const sim::Duration nominal = cfg_.sensor_period;
          const auto dev = static_cast<double>(
              dt > nominal ? dt - nominal : nominal - dt);
          jitter.record(dev);
          jitter_sig.observe(machine_.now(), dev);
        }
        last_sample_t = machine_.now();
        log_env();
        spans.end(self, machine_.now(), cs);
        break;
      }
      case ScenarioMTypes::kSetpoint: {
        const bool ok = logic.try_set_setpoint(
            m.get_f64(WireFormat::kSetpointOff), machine_.now());
        machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kControl,
                              ok ? "ctl.setpoint" : "ctl.setpoint_rejected",
                              "", m.get_f64(WireFormat::kSetpointOff));
        Message reply;
        reply.m_type = ScenarioMTypes::kAck;
        reply.put_i32(WireFormat::kOkOff, ok ? 1 : 0);
        k.ipc_senda(m.source(), reply);  // async: never block on clients
        break;
      }
      case ScenarioMTypes::kEnvQuery: {
        const EnvInfo env = logic.env();
        Message reply;
        reply.m_type = ScenarioMTypes::kAck;
        reply.put_f64(WireFormat::kEnvTempOff, env.last_temp_c);
        reply.put_f64(WireFormat::kEnvSpOff, env.setpoint_c);
        reply.put_i32(WireFormat::kEnvHeaterOff, env.heater_on ? 1 : 0);
        reply.put_i32(WireFormat::kEnvAlarmOff, env.alarm_on ? 1 : 0);
        k.ipc_senda(m.source(), reply);
        break;
      }
      default:
        break;  // unknown type: drop (the ACM should have stopped it)
    }
  }
}

void MinixScenario::heater_proc() {
  auto& k = *kernel_;
  auto& spans = machine_.spans();
  const std::uint32_t tag_apply =
      sim::TagRegistry::instance().intern("act.apply");
  const std::uint32_t tag_sample =
      sim::TagRegistry::instance().intern("sensor.sample");
  auto e2e = machine_.metrics().log_histogram("minix.ctl.e2e_us", 4, 1e6);
  auto e2e_sig = machine_.health().signal("minix.ctl.e2e_us");
  const int self = machine_.current()->pid();
  for (;;) {
    Message m;
    if (k.ipc_receive(Endpoint::any(), m) != IpcResult::kOk) continue;
    if (m.m_type != ScenarioMTypes::kActuatorCmd) continue;
    const std::uint64_t s = spans.begin(self, machine_.now(), tag_apply);
    plant_->heater.set_on(m.get_i32(WireFormat::kCmdOff) != 0,
                          machine_.now());
    // Sensor-to-actuation latency measured on the span chain itself, so
    // the histogram and the critical-path export agree exactly. The root
    // check filters commands that were not triggered by a sample (e.g.
    // spoofed frames, which root under an attack span instead).
    const std::uint64_t root = spans.root_of(s);
    if (root != 0 && spans.name_of(root) == tag_sample) {
      const sim::Time t0 = spans.start_of(root);
      if (t0 >= 0) {
        e2e.record(static_cast<double>(machine_.now() - t0));
        e2e_sig.observe(machine_.now(),
                        static_cast<double>(machine_.now() - t0));
      }
    }
    spans.end(self, machine_.now(), s);
  }
}

void MinixScenario::alarm_proc() {
  auto& k = *kernel_;
  auto& spans = machine_.spans();
  const std::uint32_t tag_apply =
      sim::TagRegistry::instance().intern("act.apply");
  const std::uint32_t tag_sample =
      sim::TagRegistry::instance().intern("sensor.sample");
  auto e2e = machine_.metrics().log_histogram("minix.ctl.e2e_us", 4, 1e6);
  auto e2e_sig = machine_.health().signal("minix.ctl.e2e_us");
  const int self = machine_.current()->pid();
  for (;;) {
    Message m;
    if (k.ipc_receive(Endpoint::any(), m) != IpcResult::kOk) continue;
    if (m.m_type != ScenarioMTypes::kActuatorCmd) continue;
    const std::uint64_t s = spans.begin(self, machine_.now(), tag_apply);
    plant_->alarm.set_on(m.get_i32(WireFormat::kCmdOff) != 0,
                         machine_.now());
    const std::uint64_t root = spans.root_of(s);
    if (root != 0 && spans.name_of(root) == tag_sample) {
      const sim::Time t0 = spans.start_of(root);
      if (t0 >= 0) {
        e2e.record(static_cast<double>(machine_.now() - t0));
        e2e_sig.observe(machine_.now(),
                        static_cast<double>(machine_.now() - t0));
      }
    }
    spans.end(self, machine_.now(), s);
  }
}

void MinixScenario::web_proc() {
  auto& k = *kernel_;
  Endpoint ctl = k.wait_lookup("tempProc");
  bool attacked = false;
  for (;;) {
    // Refresh a stale endpoint after a controller reincarnation.
    if (!k.is_live(ctl)) {
      const Endpoint fresh = k.lookup("tempProc");
      if (fresh.valid()) ctl = fresh;
    }
    if (attack_hook_ && !attacked && attack_time_ >= 0 &&
        machine_.now() >= attack_time_) {
      attacked = true;
      machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kAttack,
                            "web.compromised", "minix");
      attack_hook_(*this);
    }
    while (auto id = http_.poll()) {
      const WebAction act = route_request(http_.request(*id));
      switch (act.kind) {
        case WebAction::Kind::kStatus: {
          Message m;
          m.m_type = ScenarioMTypes::kEnvQuery;
          if (k.ipc_sendrec(ctl, m) != IpcResult::kOk) {
            http_.respond(*id, machine_.now(), render_unavailable());
            break;
          }
          EnvInfo env;
          env.last_temp_c = m.get_f64(WireFormat::kEnvTempOff);
          env.setpoint_c = m.get_f64(WireFormat::kEnvSpOff);
          env.heater_on = m.get_i32(WireFormat::kEnvHeaterOff) != 0;
          env.alarm_on = m.get_i32(WireFormat::kEnvAlarmOff) != 0;
          http_.respond(*id, machine_.now(), render_status(env));
          break;
        }
        case WebAction::Kind::kSetSetpoint: {
          Message m;
          m.m_type = ScenarioMTypes::kSetpoint;
          m.put_f64(WireFormat::kSetpointOff, act.setpoint_c);
          if (k.ipc_sendrec(ctl, m) != IpcResult::kOk) {
            http_.respond(*id, machine_.now(), render_unavailable());
            break;
          }
          http_.respond(*id, machine_.now(),
                        render_setpoint_result(
                            m.get_i32(WireFormat::kOkOff) != 0));
          break;
        }
        case WebAction::Kind::kBadRequest:
          http_.respond(*id, machine_.now(), render_bad_request());
          break;
        case WebAction::Kind::kNotFound:
          http_.respond(*id, machine_.now(), render_not_found());
          break;
      }
    }
    machine_.sleep_for(cfg_.web_poll);
  }
}

}  // namespace mkbas::bas
