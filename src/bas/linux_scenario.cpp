#include "bas/linux_scenario.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bas/web_logic.hpp"

namespace mkbas::bas {

using linuxsim::Errno;
using linuxsim::LinuxKernel;
using linuxsim::Mode;
using linuxsim::MqMessage;

// ---- wire format ----

std::string LinuxScenario::encode_temp(double t) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "temp=%.3f", t);
  return buf;
}
std::string LinuxScenario::encode_setpoint(double sp) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "setpoint=%.3f", sp);
  return buf;
}
std::string LinuxScenario::encode_cmd(bool on) {
  return on ? "cmd=1" : "cmd=0";
}
std::string LinuxScenario::encode_env(const EnvInfo& env) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "temp=%.3f;sp=%.3f;heater=%d;alarm=%d",
                env.last_temp_c, env.setpoint_c, env.heater_on ? 1 : 0,
                env.alarm_on ? 1 : 0);
  return buf;
}

namespace {
bool parse_double_field(const std::string& s, const char* key, double* out) {
  const auto pos = s.find(key);
  if (pos == std::string::npos) return false;
  const char* start = s.c_str() + pos + std::strlen(key);
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return false;
  *out = v;
  return true;
}
}  // namespace

bool LinuxScenario::decode_temp(const std::string& s, double* out) {
  return parse_double_field(s, "temp=", out);
}
bool LinuxScenario::decode_setpoint(const std::string& s, double* out) {
  return parse_double_field(s, "setpoint=", out);
}
bool LinuxScenario::decode_cmd(const std::string& s, bool* out) {
  double v = 0;
  if (!parse_double_field(s, "cmd=", &v)) return false;
  *out = v != 0.0;
  return true;
}
bool LinuxScenario::decode_env(const std::string& s, EnvInfo* out) {
  double heater = 0, alarm = 0;
  if (!parse_double_field(s, "temp=", &out->last_temp_c)) return false;
  if (!parse_double_field(s, "sp=", &out->setpoint_c)) return false;
  if (!parse_double_field(s, "heater=", &heater)) return false;
  if (!parse_double_field(s, "alarm=", &alarm)) return false;
  out->heater_on = heater != 0.0;
  out->alarm_on = alarm != 0.0;
  return true;
}

// ---- scenario ----

LinuxScenario::LinuxScenario(sim::Machine& machine, ScenarioConfig cfg,
                             Accounts accounts)
    : machine_(machine), cfg_(cfg), accounts_(accounts) {
  plant_ = std::make_unique<Plant>(machine_, cfg_);
  kernel_ = std::make_unique<LinuxKernel>(machine_);
  const linuxsim::Uid scenario_uid =
      accounts_ == Accounts::kShared ? Uids::kShared : linuxsim::kRootUid;
  kernel_->spawn_process("scenario", scenario_uid,
                         [this] { scenario_proc(); }, /*priority=*/3);
}

void LinuxScenario::scenario_proc() {
  auto& k = *kernel_;
  const bool shared = accounts_ == Accounts::kShared;

  // "The scenario process in Linux spawns all other processes and creates
  // 6 message queues that are needed for various communications."
  auto make_queue = [&](const char* name, linuxsim::Uid writer,
                        linuxsim::Uid reader) {
    Mode mode = Mode::rw_owner_only();
    if (!shared) {
      // Well-configured: exactly the producing and consuming accounts.
      mode.owner_read = mode.owner_write = false;  // root owns; no DAC use
      mode.grant(writer, /*read=*/false, /*write=*/true);
      mode.grant(reader, /*read=*/true, /*write=*/false);
    }
    const int fd = k.mq_open(name, /*create=*/true, mode);
    if (fd >= 0) k.mq_close(fd);
  };
  make_queue(kQSensor, Uids::kSensor, Uids::kControl);
  make_queue(kQSetpoint, Uids::kWeb, Uids::kControl);
  make_queue(kQEnvReq, Uids::kWeb, Uids::kControl);
  make_queue(kQEnv, Uids::kControl, Uids::kWeb);
  make_queue(kQHeater, Uids::kControl, Uids::kHeater);
  make_queue(kQAlarm, Uids::kControl, Uids::kAlarm);

  auto uid_for = [&](linuxsim::Uid separate) {
    return shared ? Uids::kShared : separate;
  };
  k.spawn_process("tempProc", uid_for(Uids::kControl),
                  [this] { control_proc(); }, 6);
  k.spawn_process("heaterActProc", uid_for(Uids::kHeater),
                  [this] { heater_proc(); }, 5);
  k.spawn_process("alarmProc", uid_for(Uids::kAlarm),
                  [this] { alarm_proc(); }, 5);
  k.spawn_process("tempSensProc", uid_for(Uids::kSensor),
                  [this] { sensor_proc(); }, 5);
  k.spawn_process("webInterface", uid_for(Uids::kWeb),
                  [this] { web_proc(); }, 8);
  k.sys_exit(0);
}

void LinuxScenario::sensor_proc() {
  auto& k = *kernel_;
  auto& spans = machine_.spans();
  const std::uint32_t tag_sample =
      sim::TagRegistry::instance().intern("sensor.sample");
  const int self = machine_.current()->pid();
  const int fd = k.mq_open(kQSensor, false);
  if (fd < 0) return;
  for (;;) {
    // Root of the control-loop trace (see the MINIX scenario).
    const std::uint64_t s = spans.begin(self, machine_.now(), tag_sample);
    const double t = plant_->sensor.read_temperature_c();
    machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kDevice,
                          "sensor.sample", "", t);
    // Non-blocking, like the other platforms: stale samples are dropped.
    k.mq_send(fd, {encode_temp(t), 0}, /*blocking=*/false);
    spans.end(self, machine_.now(), s);
    machine_.sleep_for(cfg_.sensor_period);
  }
}

void LinuxScenario::control_proc() {
  auto& k = *kernel_;
  const int fd_sensor = k.mq_open(kQSensor, false);
  const int fd_setpoint = k.mq_open(kQSetpoint, false);
  const int fd_envreq = k.mq_open(kQEnvReq, false);
  const int fd_env = k.mq_open(kQEnv, false);
  const int fd_heater = k.mq_open(kQHeater, false);
  const int fd_alarm = k.mq_open(kQAlarm, false);
  const int fd_log =
      k.open_file("/var/log/tempctl.log", true, Mode::rw_owner_only());
  if (fd_sensor < 0 || fd_heater < 0 || fd_alarm < 0) return;

  TempControlLogic logic(cfg_.control);
  auto& spans = machine_.spans();
  const std::uint32_t tag_compute =
      sim::TagRegistry::instance().intern("ctl.compute");
  const int self = machine_.current()->pid();
  // Control-quality metrics (see the MINIX scenario for the definition).
  auto jitter = machine_.metrics().log_histogram("linux.ctl.jitter", 4, 1e6);
  auto jitter_sig = machine_.health().signal("linux.ctl.jitter");
  auto actuations = machine_.metrics().counter("linux.ctl.actuations");
  sim::Time last_sample_t = -1;
  for (;;) {
    // The paper's loop: wait for new sensor data ...
    MqMessage msg;
    if (k.mq_receive(fd_sensor, msg) != Errno::kOk) return;
    double t = 0;
    if (decode_temp(msg.data, &t)) {
      // Chains under the sensor's mq hop (delivery set this pid's current
      // context); both actuator sends below chain under it in turn.
      const std::uint64_t cs = spans.begin(self, machine_.now(), tag_compute);
      // NOTE the structural weakness: nothing authenticates that this
      // message came from the sensor process.
      const auto d = logic.on_sample(t, machine_.now());
      k.mq_send(fd_heater, {encode_cmd(d.heater_on), 0}, false);
      actuations.inc();
      k.mq_send(fd_alarm, {encode_cmd(d.alarm_on), 0}, false);
      actuations.inc();
      machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kControl,
                            "ctl.sample", "", t);
      if (last_sample_t >= 0) {
        const sim::Duration dt = machine_.now() - last_sample_t;
        const sim::Duration nominal = cfg_.sensor_period;
        const auto dev = static_cast<double>(
            dt > nominal ? dt - nominal : nominal - dt);
        jitter.record(dev);
        jitter_sig.observe(machine_.now(), dev);
      }
      last_sample_t = machine_.now();
      spans.end(self, machine_.now(), cs);
    }
    // ... then check for pending setpoint updates from the web interface,
    MqMessage sp_msg;
    while (fd_setpoint >= 0 &&
           k.mq_receive(fd_setpoint, sp_msg, false) == Errno::kOk) {
      double sp = 0;
      if (decode_setpoint(sp_msg.data, &sp)) {
        const bool ok = logic.try_set_setpoint(sp, machine_.now());
        machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kControl,
                              ok ? "ctl.setpoint" : "ctl.setpoint_rejected",
                              "", sp);
      }
    }
    // ... answer environment queries,
    MqMessage req;
    while (fd_envreq >= 0 &&
           k.mq_receive(fd_envreq, req, false) == Errno::kOk) {
      if (fd_env >= 0) {
        k.mq_send(fd_env, {encode_env(logic.env()), 0}, false);
      }
    }
    // ... and write environment information to the log file.
    if (fd_log >= 0) {
      k.write_file(fd_log, "t=" + std::to_string(machine_.now()) + " " +
                               encode_env(logic.env()) + "\n");
    }
  }
}

void LinuxScenario::heater_proc() {
  auto& k = *kernel_;
  auto& spans = machine_.spans();
  const std::uint32_t tag_apply =
      sim::TagRegistry::instance().intern("act.apply");
  const std::uint32_t tag_sample =
      sim::TagRegistry::instance().intern("sensor.sample");
  auto e2e = machine_.metrics().log_histogram("linux.ctl.e2e_us", 4, 1e6);
  auto e2e_sig = machine_.health().signal("linux.ctl.e2e_us");
  const int self = machine_.current()->pid();
  const int fd = k.mq_open(kQHeater, false);
  if (fd < 0) return;
  for (;;) {
    MqMessage msg;
    if (k.mq_receive(fd, msg) != Errno::kOk) return;
    bool on = false;
    if (!decode_cmd(msg.data, &on)) continue;
    const std::uint64_t s = spans.begin(self, machine_.now(), tag_apply);
    plant_->heater.set_on(on, machine_.now());
    // Sensor-to-actuation latency measured on the span chain itself (see
    // the MINIX scenario for why the root check matters).
    const std::uint64_t root = spans.root_of(s);
    if (root != 0 && spans.name_of(root) == tag_sample) {
      const sim::Time t0 = spans.start_of(root);
      if (t0 >= 0) {
        e2e.record(static_cast<double>(machine_.now() - t0));
        e2e_sig.observe(machine_.now(),
                        static_cast<double>(machine_.now() - t0));
      }
    }
    spans.end(self, machine_.now(), s);
  }
}

void LinuxScenario::alarm_proc() {
  auto& k = *kernel_;
  auto& spans = machine_.spans();
  const std::uint32_t tag_apply =
      sim::TagRegistry::instance().intern("act.apply");
  const std::uint32_t tag_sample =
      sim::TagRegistry::instance().intern("sensor.sample");
  auto e2e = machine_.metrics().log_histogram("linux.ctl.e2e_us", 4, 1e6);
  auto e2e_sig = machine_.health().signal("linux.ctl.e2e_us");
  const int self = machine_.current()->pid();
  const int fd = k.mq_open(kQAlarm, false);
  if (fd < 0) return;
  for (;;) {
    MqMessage msg;
    if (k.mq_receive(fd, msg) != Errno::kOk) return;
    bool on = false;
    if (!decode_cmd(msg.data, &on)) continue;
    const std::uint64_t s = spans.begin(self, machine_.now(), tag_apply);
    plant_->alarm.set_on(on, machine_.now());
    const std::uint64_t root = spans.root_of(s);
    if (root != 0 && spans.name_of(root) == tag_sample) {
      const sim::Time t0 = spans.start_of(root);
      if (t0 >= 0) {
        e2e.record(static_cast<double>(machine_.now() - t0));
        e2e_sig.observe(machine_.now(),
                        static_cast<double>(machine_.now() - t0));
      }
    }
    spans.end(self, machine_.now(), s);
  }
}

void LinuxScenario::web_proc() {
  auto& k = *kernel_;
  const int fd_setpoint = k.mq_open(kQSetpoint, false);
  const int fd_envreq = k.mq_open(kQEnvReq, false);
  const int fd_env = k.mq_open(kQEnv, false);
  bool attacked = false;

  auto fetch_env = [&](EnvInfo* env) -> bool {
    if (fd_envreq < 0 || fd_env < 0) return false;
    if (k.mq_send(fd_envreq, {"envreq", 0}, false) != Errno::kOk) {
      return false;
    }
    // The reply arrives after the controller's next loop iteration.
    for (int tries = 0; tries < 30; ++tries) {
      MqMessage msg;
      if (k.mq_receive(fd_env, msg, false) == Errno::kOk) {
        return decode_env(msg.data, env);
      }
      machine_.sleep_for(sim::msec(100));
    }
    return false;
  };

  for (;;) {
    if (attack_hook_ && !attacked && attack_time_ >= 0 &&
        machine_.now() >= attack_time_) {
      attacked = true;
      machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kAttack,
                            "web.compromised", "linux");
      attack_hook_(*this);
    }
    while (auto id = http_.poll()) {
      const WebAction act = route_request(http_.request(*id));
      switch (act.kind) {
        case WebAction::Kind::kStatus: {
          EnvInfo env;
          if (fetch_env(&env)) {
            http_.respond(*id, machine_.now(), render_status(env));
          } else {
            http_.respond(*id, machine_.now(), render_unavailable());
          }
          break;
        }
        case WebAction::Kind::kSetSetpoint: {
          if (fd_setpoint < 0 ||
              k.mq_send(fd_setpoint, {encode_setpoint(act.setpoint_c), 0},
                        false) != Errno::kOk) {
            http_.respond(*id, machine_.now(), render_unavailable());
            break;
          }
          // POSIX queues carry no reply; report acceptance optimistically
          // (range rejection is visible via /status).
          http_.respond(*id, machine_.now(), render_setpoint_result(true));
          break;
        }
        case WebAction::Kind::kBadRequest:
          http_.respond(*id, machine_.now(), render_bad_request());
          break;
        case WebAction::Kind::kNotFound:
          http_.respond(*id, machine_.now(), render_not_found());
          break;
      }
    }
    machine_.sleep_for(cfg_.web_poll);
  }
}

}  // namespace mkbas::bas
