#pragma once

#include <optional>
#include <string>

#include "bas/control_law.hpp"
#include "net/http.hpp"

namespace mkbas::bas {

/// What an HTTP request asks the web interface to do. Kept pure so the
/// same parsing/rendering runs on every platform and can be unit-tested
/// without a kernel.
struct WebAction {
  enum class Kind { kStatus, kSetSetpoint, kBadRequest, kNotFound };
  Kind kind = Kind::kBadRequest;
  double setpoint_c = 0.0;
};

/// Parse "value=23.5"-style form bodies.
std::optional<double> parse_form_value(const std::string& body);

/// Route an HTTP request: GET /status, POST /setpoint.
WebAction route_request(const net::HttpRequest& req);

/// Render responses.
net::HttpResponse render_status(const EnvInfo& env);
net::HttpResponse render_setpoint_result(bool accepted);
net::HttpResponse render_bad_request();
net::HttpResponse render_not_found();
net::HttpResponse render_unavailable();  // control process unreachable

}  // namespace mkbas::bas
