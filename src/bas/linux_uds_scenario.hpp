#pragma once

#include <functional>
#include <memory>
#include <string>

#include "bas/scenario.hpp"
#include "linuxsim/kernel.hpp"
#include "net/http.hpp"

namespace mkbas::bas {

/// The temperature-control scenario on Linux over **Unix domain sockets**
/// — the other IPC §III names ("the IPC options are either Unix domain
/// sockets or message queues"). The control process is a socket server;
/// the sensor and the web interface are its clients; the actuator drivers
/// are servers the control process connects to.
///
/// Two namespace variants, matching the misuse study the paper cites [10]:
///  * kFilesystem — sockets bound at /run/... and guarded by mode
///    bits/ACLs at connect time (the well-configured deployment);
///  * kAbstract — sockets bound to abstract names with NO permission
///    model at all: whoever binds first owns the name, enabling the
///    squatting/hijack attacks of the Android CVEs.
class LinuxUdsScenario : public Scenario {
 public:
  enum class Accounts { kShared, kSeparate };
  enum class Namespace { kFilesystem, kAbstract };

  struct Uids {
    static constexpr linuxsim::Uid kShared = 1000;
    static constexpr linuxsim::Uid kSensor = 1001;
    static constexpr linuxsim::Uid kControl = 1002;
    static constexpr linuxsim::Uid kHeater = 1003;
    static constexpr linuxsim::Uid kAlarm = 1004;
    static constexpr linuxsim::Uid kWeb = 1005;
  };

  // Socket names (paths in the filesystem namespace, bare names in the
  // abstract one).
  static constexpr const char* kCtlSock = "/run/tempctl.sock";
  static constexpr const char* kHeaterSock = "/run/heater.sock";
  static constexpr const char* kAlarmSock = "/run/alarm.sock";
  static constexpr const char* kCtlAbstract = "tempctl";
  static constexpr const char* kHeaterAbstract = "heater";
  static constexpr const char* kAlarmAbstract = "alarm";

  LinuxUdsScenario(sim::Machine& machine, ScenarioConfig cfg = {},
                   Accounts accounts = Accounts::kShared,
                   Namespace ns = Namespace::kFilesystem);
  ~LinuxUdsScenario() override { machine_.shutdown(); }

  LinuxUdsScenario(const LinuxUdsScenario&) = delete;
  LinuxUdsScenario& operator=(const LinuxUdsScenario&) = delete;

  void arm_web_attack(sim::Time when,
                      std::function<void(LinuxUdsScenario&)> hook) {
    attack_time_ = when;
    attack_hook_ = std::move(hook);
  }

  Platform platform() const override { return Platform::kLinux; }
  const char* variant() const override { return "uds"; }
  void arm_attack(sim::Time when, AttackHook hook) override {
    arm_web_attack(when, [hook = std::move(hook)](LinuxUdsScenario& sc) {
      hook(sc);
    });
  }

  linuxsim::LinuxKernel& kernel() { return *kernel_; }
  sim::Machine& machine() override { return machine_; }
  net::HttpConsole& http() override { return http_; }
  Plant* plant() override { return plant_.get(); }
  Accounts accounts() const { return accounts_; }
  Namespace ns() const { return ns_; }
  const ScenarioConfig& config() const { return cfg_; }
  int pid_of(const std::string& name) const { return kernel_->find_pid(name); }

  /// Connect to a scenario service the way its clients do (used by the
  /// attack scripts): returns fd or negative Errno.
  int connect_service(const char* fs_path, const char* abstract_name);

 private:
  void scenario_proc();
  void sensor_proc();
  void control_proc();
  void actuator_proc(const char* fs_path, const char* abstract_name,
                     std::function<void(bool)> apply);
  void web_proc();
  int bind_service(const char* fs_path, const char* abstract_name,
                   linuxsim::Mode mode);

  sim::Machine& machine_;
  ScenarioConfig cfg_;
  Accounts accounts_;
  Namespace ns_;
  std::unique_ptr<Plant> plant_;
  std::unique_ptr<linuxsim::LinuxKernel> kernel_;
  net::HttpConsole http_;
  sim::Time attack_time_ = -1;
  std::function<void(LinuxUdsScenario&)> attack_hook_;
};

}  // namespace mkbas::bas
