#pragma once

#include <functional>
#include <memory>

#include "aadl/compile.hpp"
#include "bas/bsl3_scenario.hpp"  // Bsl3Config, Bsl3Safety, devices
#include "camkes/camkes.hpp"
#include "net/http.hpp"

namespace mkbas::bas {

/// The BSL-3 containment suite on seL4 via CAmkES: the same AADL model as
/// the MINIX build, translated by the AADL→CAmkES path, with the
/// untrusted management component holding capabilities only to its two
/// connections into the containment controller.
class Bsl3Sel4Scenario : public Scenario {
 public:
  explicit Bsl3Sel4Scenario(sim::Machine& machine, Bsl3Config cfg = {});
  ~Bsl3Sel4Scenario() override { machine_.shutdown(); }

  Bsl3Sel4Scenario(const Bsl3Sel4Scenario&) = delete;
  Bsl3Sel4Scenario& operator=(const Bsl3Sel4Scenario&) = delete;

  /// Compromise the management component at `when` (arbitrary code with
  /// exactly that component's capabilities).
  void arm_mgmt_attack(
      sim::Time when,
      std::function<void(Bsl3Sel4Scenario&, camkes::Runtime&)> hook) {
    attack_time_ = when;
    attack_hook_ = std::move(hook);
  }

  Platform platform() const override { return Platform::kSel4; }
  const char* variant() const override { return "bsl3"; }
  void arm_attack(sim::Time when, AttackHook hook) override {
    arm_mgmt_attack(when, [hook = std::move(hook)](Bsl3Sel4Scenario& sc,
                                                   camkes::Runtime& rt) {
      sc.attack_runtime_ = &rt;
      hook(sc);
      sc.attack_runtime_ = nullptr;
    });
  }
  int restarts() const override { return camkes_->restarts(); }
  /// Non-null only while a generic arm_attack hook is executing.
  camkes::Runtime* attack_runtime() { return attack_runtime_; }

  camkes::CamkesSystem& camkes() { return *camkes_; }
  sel4::Sel4Kernel& kernel() { return camkes_->kernel(); }
  sim::Machine& machine() override { return machine_; }
  net::HttpConsole& http() override { return http_; }
  physics::ContainmentModel& model() { return model_; }
  devices::ExhaustFan& fan() { return fan_; }
  const std::vector<devices::ContainmentSample>& history() const {
    return coupler_->history();
  }
  const Bsl3Config& config() const { return cfg_; }

 private:
  void sensor_body(camkes::Runtime& rt);
  void control_body(camkes::Runtime& rt);
  void fan_body(camkes::Runtime& rt);
  void door_body(camkes::Runtime& rt);
  void alarm_body(camkes::Runtime& rt);
  void mgmt_body(camkes::Runtime& rt);

  sim::Machine& machine_;
  Bsl3Config cfg_;
  physics::ContainmentModel model_;
  devices::ExhaustFan fan_;
  devices::DoorLatch inner_{"inner"};
  devices::DoorLatch outer_{"outer"};
  bool alarm_on_ = false;
  std::unique_ptr<devices::ContainmentCoupler> coupler_;
  std::unique_ptr<camkes::CamkesSystem> camkes_;
  net::HttpConsole http_;
  sim::Time attack_time_ = -1;
  std::function<void(Bsl3Sel4Scenario&, camkes::Runtime&)> attack_hook_;
  camkes::Runtime* attack_runtime_ = nullptr;
};

}  // namespace mkbas::bas
