#include "bas/linux_uds_scenario.hpp"

#include <vector>

#include "bas/linux_scenario.hpp"  // wire-format helpers
#include "bas/web_logic.hpp"

namespace mkbas::bas {

using linuxsim::Errno;
using linuxsim::LinuxKernel;
using linuxsim::Mode;

LinuxUdsScenario::LinuxUdsScenario(sim::Machine& machine, ScenarioConfig cfg,
                                   Accounts accounts, Namespace ns)
    : machine_(machine), cfg_(cfg), accounts_(accounts), ns_(ns) {
  plant_ = std::make_unique<Plant>(machine_, cfg_);
  kernel_ = std::make_unique<LinuxKernel>(machine_);
  const linuxsim::Uid scenario_uid =
      accounts_ == Accounts::kShared ? Uids::kShared : linuxsim::kRootUid;
  kernel_->spawn_process("scenario", scenario_uid,
                         [this] { scenario_proc(); }, /*priority=*/3);
}

void LinuxUdsScenario::scenario_proc() {
  auto& k = *kernel_;
  const bool shared = accounts_ == Accounts::kShared;
  auto uid_for = [&](linuxsim::Uid separate) {
    return shared ? Uids::kShared : separate;
  };
  // Servers first so clients find the names, then clients.
  k.spawn_process("heaterActProc", uid_for(Uids::kHeater), [this] {
    actuator_proc(kHeaterSock, kHeaterAbstract, [this](bool on) {
      plant_->heater.set_on(on, machine_.now());
    });
  }, 5);
  k.spawn_process("alarmProc", uid_for(Uids::kAlarm), [this] {
    actuator_proc(kAlarmSock, kAlarmAbstract, [this](bool on) {
      plant_->alarm.set_on(on, machine_.now());
    });
  }, 5);
  k.spawn_process("tempProc", uid_for(Uids::kControl),
                  [this] { control_proc(); }, 6);
  k.spawn_process("tempSensProc", uid_for(Uids::kSensor),
                  [this] { sensor_proc(); }, 5);
  k.spawn_process("webInterface", uid_for(Uids::kWeb),
                  [this] { web_proc(); }, 8);
  k.sys_exit(0);
}

int LinuxUdsScenario::bind_service(const char* fs_path,
                                   const char* abstract_name, Mode mode) {
  auto& k = *kernel_;
  for (;;) {
    const int s = k.sock_socket();
    const Errno r = ns_ == Namespace::kFilesystem
                        ? k.sock_bind(s, fs_path, mode)
                        : k.sock_bind_abstract(s, abstract_name);
    if (r == Errno::kOk) {
      k.sock_listen(s, 8);
      return s;
    }
    // Name still held (e.g. by a dying predecessor — or a squatter).
    k.sock_close(s);
    machine_.sleep_for(sim::msec(200));
  }
}

int LinuxUdsScenario::connect_service(const char* fs_path,
                                      const char* abstract_name) {
  return ns_ == Namespace::kFilesystem
             ? kernel_->sock_connect(fs_path)
             : kernel_->sock_connect_abstract(abstract_name);
}

namespace {

/// Retry a connect until it succeeds or the budget runs out (services
/// come up in arbitrary order).
int connect_retry(LinuxUdsScenario& sc, const char* fs_path,
                  const char* abstract_name, int tries = 50) {
  for (int i = 0; i < tries; ++i) {
    const int fd = sc.connect_service(fs_path, abstract_name);
    if (fd >= 0) return fd;
    sc.machine().sleep_for(sim::msec(100));
  }
  return -1;
}

}  // namespace

void LinuxUdsScenario::actuator_proc(const char* fs_path,
                                     const char* abstract_name,
                                     std::function<void(bool)> apply) {
  auto& k = *kernel_;
  Mode mode = Mode::rw_owner_only();
  if (accounts_ == Accounts::kSeparate) {
    // Only the control account may connect (connect requires write).
    mode.owner_read = mode.owner_write = false;
    mode.grant(Uids::kControl, false, true);
  }
  const int server = bind_service(fs_path, abstract_name, mode);
  std::vector<int> conns;
  for (;;) {
    // Multiplex all connections: like any Unix service daemon, the driver
    // serves whoever managed to connect — the permission check happened
    // (or didn't) at connect time.
    const int fresh = k.sock_accept(server, /*blocking=*/false);
    if (fresh >= 0) conns.push_back(fresh);
    for (auto it = conns.begin(); it != conns.end();) {
      std::string msg;
      const Errno r = k.sock_recv(*it, &msg, /*blocking=*/false);
      if (r == Errno::kOk) {
        bool on = false;
        if (LinuxScenario::decode_cmd(msg, &on)) apply(on);
        ++it;
      } else if (r == Errno::kEAGAIN) {
        ++it;
      } else {
        k.sock_close(*it);
        it = conns.erase(it);
      }
    }
    machine_.sleep_for(sim::msec(50));
  }
}

void LinuxUdsScenario::control_proc() {
  auto& k = *kernel_;
  Mode mode = Mode::rw_owner_only();
  if (accounts_ == Accounts::kSeparate) {
    mode.owner_read = mode.owner_write = false;
    mode.grant(Uids::kSensor, false, true);
    mode.grant(Uids::kWeb, false, true);
  }
  const int server = bind_service(kCtlSock, kCtlAbstract, mode);
  int heater = connect_retry(*this, kHeaterSock, kHeaterAbstract);
  int alarm = connect_retry(*this, kAlarmSock, kAlarmAbstract);
  TempControlLogic logic(cfg_.control);
  std::vector<int> clients;

  auto command = [&](int* fd, const char* fs, const char* ab, bool on) {
    if (*fd < 0) return;
    if (k.sock_send(*fd, LinuxScenario::encode_cmd(on), false) ==
        Errno::kEPIPE) {
      k.sock_close(*fd);
      *fd = connect_retry(*this, fs, ab, 3);
    }
  };

  for (;;) {
    // Multiplex: accept any new client, then poll every open connection.
    const int fresh = k.sock_accept(server, /*blocking=*/false);
    if (fresh >= 0) clients.push_back(fresh);
    for (auto it = clients.begin(); it != clients.end();) {
      std::string msg;
      const Errno r = k.sock_recv(*it, &msg, /*blocking=*/false);
      if (r == Errno::kEOF || r == Errno::kEBADF) {
        k.sock_close(*it);
        it = clients.erase(it);
        continue;
      }
      if (r == Errno::kOk) {
        double v = 0;
        // NOTE the §III weakness carried over: nothing here authenticates
        // which client sent what (SO_PEERCRED exists but, as in the apps
        // of [10], nobody calls it — and with a shared account it would
        // not help anyway).
        if (LinuxScenario::decode_temp(msg, &v)) {
          const auto d = logic.on_sample(v, machine_.now());
          command(&heater, kHeaterSock, kHeaterAbstract, d.heater_on);
          command(&alarm, kAlarmSock, kAlarmAbstract, d.alarm_on);
          machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kControl,
                                "ctl.sample", "", v);
        } else if (LinuxScenario::decode_setpoint(msg, &v)) {
          const bool ok = logic.try_set_setpoint(v, machine_.now());
          machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kControl,
                                ok ? "ctl.setpoint" : "ctl.setpoint_rejected",
                                "", v);
        } else if (msg == "envreq") {
          k.sock_send(*it, LinuxScenario::encode_env(logic.env()), false);
        }
      }
      ++it;
    }
    machine_.sleep_for(sim::msec(50));
  }
}

void LinuxUdsScenario::sensor_proc() {
  auto& k = *kernel_;
  int conn = connect_retry(*this, kCtlSock, kCtlAbstract);
  for (;;) {
    const double t = plant_->sensor.read_temperature_c();
    machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kDevice,
                          "sensor.sample", "", t);
    if (conn >= 0) {
      if (k.sock_send(conn, LinuxScenario::encode_temp(t), false) ==
          Errno::kEPIPE) {
        k.sock_close(conn);
        conn = -1;
      }
    }
    if (conn < 0) conn = connect_retry(*this, kCtlSock, kCtlAbstract, 2);
    machine_.sleep_for(cfg_.sensor_period);
  }
}

void LinuxUdsScenario::web_proc() {
  auto& k = *kernel_;
  int conn = connect_retry(*this, kCtlSock, kCtlAbstract);
  bool attacked = false;

  auto fetch_env = [&](EnvInfo* env) -> bool {
    if (conn < 0) return false;
    if (k.sock_send(conn, "envreq", false) != Errno::kOk) return false;
    for (int tries = 0; tries < 30; ++tries) {
      std::string msg;
      const Errno r = k.sock_recv(conn, &msg, false);
      if (r == Errno::kOk) return LinuxScenario::decode_env(msg, env);
      if (r != Errno::kEAGAIN) return false;
      machine_.sleep_for(sim::msec(100));
    }
    return false;
  };

  for (;;) {
    if (conn < 0) conn = connect_retry(*this, kCtlSock, kCtlAbstract, 2);
    if (attack_hook_ && !attacked && attack_time_ >= 0 &&
        machine_.now() >= attack_time_) {
      attacked = true;
      machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kAttack,
                            "web.compromised", "linux-uds");
      attack_hook_(*this);
    }
    while (auto id = http_.poll()) {
      const WebAction act = route_request(http_.request(*id));
      switch (act.kind) {
        case WebAction::Kind::kStatus: {
          EnvInfo env;
          if (fetch_env(&env)) {
            http_.respond(*id, machine_.now(), render_status(env));
          } else {
            http_.respond(*id, machine_.now(), render_unavailable());
          }
          break;
        }
        case WebAction::Kind::kSetSetpoint: {
          if (conn < 0 ||
              k.sock_send(conn,
                          LinuxScenario::encode_setpoint(act.setpoint_c),
                          false) != Errno::kOk) {
            http_.respond(*id, machine_.now(), render_unavailable());
            break;
          }
          http_.respond(*id, machine_.now(), render_setpoint_result(true));
          break;
        }
        case WebAction::Kind::kBadRequest:
          http_.respond(*id, machine_.now(), render_bad_request());
          break;
        case WebAction::Kind::kNotFound:
          http_.respond(*id, machine_.now(), render_not_found());
          break;
      }
    }
    machine_.sleep_for(cfg_.web_poll);
  }
}

}  // namespace mkbas::bas
