#pragma once

#include <memory>

#include "bas/control_law.hpp"
#include "devices/devices.hpp"
#include "net/http.hpp"
#include "physics/room.hpp"
#include "sim/machine.hpp"

namespace mkbas::bas {

/// Configuration shared by all three platform scenarios (§IV).
struct ScenarioConfig {
  ControlConfig control{};
  sim::Duration sensor_period = sim::sec(1);
  sim::Duration web_poll = sim::msec(100);
  double heater_power_w = 3000.0;
  double outdoor_c = 10.0;
  physics::RoomModel::Params room{};
  double sensor_noise_sigma_c = 0.05;
  /// MINIX only: enable the ACM syscall-quota extension (fork-bomb
  /// mitigation the paper proposes as future work).
  bool enable_quotas = false;
  /// MINIX only: boot the reincarnation server, which respawns crashed
  /// or killed drivers (MINIX's "self-repairing" behaviour).
  bool enable_reincarnation = false;
  /// MINIX only: boot the FS server and have the control process append
  /// environment information to /var/log/tempctl.log each cycle ("at the
  /// end of the while loop, environment information will be written in a
  /// log file", §IV.A).
  bool enable_fs_log = false;
};

/// The simulated testbed of Fig. 4: room + BMP180 + heater(fan) + LED,
/// coupled to a machine's virtual clock.
class Plant {
 public:
  Plant(sim::Machine& machine, const ScenarioConfig& cfg)
      : room(cfg.room),
        heater(cfg.heater_power_w),
        sensor(room, machine.rng(), cfg.sensor_noise_sigma_c) {
    room.set_outdoor_profile(physics::constant_outdoor(cfg.outdoor_c));
    coupler = std::make_unique<devices::PlantCoupler>(machine, room, heater,
                                                      alarm);
  }

  physics::RoomModel room;
  devices::HeaterActuator heater;
  devices::AlarmLed alarm;
  devices::Bmp180Sensor sensor;
  std::unique_ptr<devices::PlantCoupler> coupler;
};

/// Payload layouts shared by the MINIX and Linux wire formats.
struct WireFormat {
  // Offsets within a MINIX message payload:
  static constexpr std::size_t kTempOff = 0;       // f64 (sensor data)
  static constexpr std::size_t kSetpointOff = 0;   // f64 (setpoint update)
  static constexpr std::size_t kCmdOff = 0;        // i32 (actuator on/off)
  static constexpr std::size_t kOkOff = 0;         // i32 (setpoint ack)
  // Env-info reply layout:
  static constexpr std::size_t kEnvTempOff = 0;    // f64
  static constexpr std::size_t kEnvSpOff = 8;      // f64
  static constexpr std::size_t kEnvHeaterOff = 16; // i32
  static constexpr std::size_t kEnvAlarmOff = 20;  // i32
};

}  // namespace mkbas::bas
