#pragma once

#include <functional>
#include <memory>
#include <string>

#include "bas/control_law.hpp"
#include "devices/devices.hpp"
#include "net/http.hpp"
#include "physics/pressure.hpp"
#include "physics/room.hpp"
#include "sim/machine.hpp"

namespace mkbas::bas {

/// The three platforms of the paper's comparison. Lives in bas (not core)
/// so the scenario registry and the attack drivers can dispatch on it
/// without a layering cycle; core aliases it.
enum class Platform { kMinix, kSel4, kLinux };

const char* to_string(Platform p);

/// Tunables of the BSL-3 containment controller (EXT1). Part of the
/// shared ScenarioConfig so the registry can build the "bsl3" variant
/// from the same configuration object as the temperature scenarios.
struct Bsl3Config {
  double target_lab_pa = -30.0;      // design negative pressure
  double breach_threshold_pa = -5.0; // "loss of containment" line
  sim::Duration alarm_delay = sim::sec(30);
  sim::Duration sample_period = sim::sec(1);
  sim::Duration door_open_time = sim::sec(10);
  physics::ContainmentModel::Params model{};
};

/// Policy ablation: the ACM generated from the model, or a permissive
/// matrix standing in for a legacy flat controller (everything may talk
/// to everything) — the "before" picture of the paper's framework.
enum class Bsl3Policy { kAcmEnforced, kPermissive };

/// Configuration shared by every scenario the registry can build (§IV).
struct ScenarioConfig {
  ControlConfig control{};
  sim::Duration sensor_period = sim::sec(1);
  sim::Duration web_poll = sim::msec(100);
  double heater_power_w = 3000.0;
  double outdoor_c = 10.0;
  physics::RoomModel::Params room{};
  double sensor_noise_sigma_c = 0.05;
  /// MINIX only: enable the ACM syscall-quota extension (fork-bomb
  /// mitigation the paper proposes as future work).
  bool enable_quotas = false;
  /// MINIX only: boot the reincarnation server, which respawns crashed
  /// or killed drivers (MINIX's "self-repairing" behaviour).
  bool enable_reincarnation = false;
  /// MINIX only: boot the FS server and have the control process append
  /// environment information to /var/log/tempctl.log each cycle ("at the
  /// end of the while loop, environment information will be written in a
  /// log file", §IV.A).
  bool enable_fs_log = false;
  /// Linux only: one uid per process plus tight per-queue/socket ACLs
  /// (the "well-configured" baseline of the paper's second simulation).
  bool linux_separate_accounts = false;
  /// Linux "uds" variant only: bind the sockets to abstract names (no
  /// permission model) instead of filesystem paths.
  bool uds_abstract_namespace = false;
  /// "bsl3" variant only.
  Bsl3Config bsl3{};
  Bsl3Policy bsl3_policy = Bsl3Policy::kAcmEnforced;
};

/// The simulated testbed of Fig. 4: room + BMP180 + heater(fan) + LED,
/// coupled to a machine's virtual clock.
class Plant {
 public:
  Plant(sim::Machine& machine, const ScenarioConfig& cfg)
      : room(cfg.room),
        heater(cfg.heater_power_w),
        sensor(room, machine.rng(), cfg.sensor_noise_sigma_c) {
    room.set_outdoor(physics::OutdoorSpec::constant(cfg.outdoor_c));
    coupler = std::make_unique<devices::PlantCoupler>(machine, room, heater,
                                                      alarm);
  }

  physics::RoomModel room;
  devices::HeaterActuator heater;
  devices::AlarmLed alarm;
  devices::Bmp180Sensor sensor;
  std::unique_ptr<devices::PlantCoupler> coupler;
};

/// Payload layouts shared by the MINIX and Linux wire formats.
struct WireFormat {
  // Offsets within a MINIX message payload:
  static constexpr std::size_t kTempOff = 0;       // f64 (sensor data)
  static constexpr std::size_t kSetpointOff = 0;   // f64 (setpoint update)
  static constexpr std::size_t kCmdOff = 0;        // i32 (actuator on/off)
  static constexpr std::size_t kOkOff = 0;         // i32 (setpoint ack)
  // Env-info reply layout:
  static constexpr std::size_t kEnvTempOff = 0;    // f64
  static constexpr std::size_t kEnvSpOff = 8;      // f64
  static constexpr std::size_t kEnvHeaterOff = 16; // i32
  static constexpr std::size_t kEnvAlarmOff = 20;  // i32
};

class Scenario;

/// A compromise of the scenario's untrusted process (web interface or
/// management console). The hook runs *inside* that process, with exactly
/// its authority — the paper's threat model. Platform-specific payloads
/// downcast to the concrete scenario type (attack::make_attack builds
/// them); callers that only drive the run never need the concrete type.
using AttackHook = std::function<void(Scenario&)>;

/// What every platform scenario looks like from the outside: one machine,
/// one plant (temperature variants; null for containment), one HTTP
/// console, and an armable compromise of its untrusted process. The
/// experiment drivers, the campaign engine and the network fabric attach
/// zones through this interface only — no switch-casing on platform.
class Scenario {
 public:
  virtual ~Scenario() = default;

  virtual Platform platform() const = 0;
  /// Registry variant this scenario was built as ("temp", "uds", "bsl3").
  virtual const char* variant() const = 0;
  virtual sim::Machine& machine() = 0;
  virtual net::HttpConsole& http() = 0;
  /// The temperature plant, or nullptr for variants with different
  /// physics (bsl3).
  virtual Plant* plant() { return nullptr; }
  /// Arm a compromise of the untrusted process at `when` (once).
  virtual void arm_attack(sim::Time when, AttackHook hook) = 0;
  /// Reincarnation-server / restart-from-spec respawns so far (0 on
  /// platforms without a recovery mechanism).
  virtual int restarts() const { return 0; }
};

/// Factory signature a registry entry provides.
using ScenarioFactory = std::unique_ptr<Scenario> (*)(sim::Machine&,
                                                      const ScenarioConfig&);

/// Register a (platform, variant) scenario constructor. The six built-in
/// scenarios are pre-registered; extensions may add their own variants
/// before the first make_scenario call that needs them.
void register_scenario(Platform platform, const std::string& variant,
                       ScenarioFactory factory);

/// Build a scenario on `machine`. Variant "" means "temp". Throws
/// std::invalid_argument for a (platform, variant) pair nobody
/// registered (e.g. "uds" on MINIX).
std::unique_ptr<Scenario> make_scenario(sim::Machine& machine,
                                        Platform platform,
                                        const std::string& variant,
                                        const ScenarioConfig& cfg = {});

/// Variants registered for `platform`, sorted (for usage/error messages).
std::vector<std::string> scenario_variants(Platform platform);

}  // namespace mkbas::bas
