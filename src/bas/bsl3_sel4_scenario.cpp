#include "bas/bsl3_sel4_scenario.hpp"

#include <cstdio>
#include <stdexcept>

#include "aadl/parser.hpp"

namespace mkbas::bas {

using camkes::Runtime;
using sel4::Sel4Error;
using sel4::Sel4Msg;

namespace {

aadl::CompiledSystem compile_bsl3() {
  aadl::Parser parser(bsl3_aadl());
  const aadl::Model model = parser.parse();
  std::vector<aadl::Diagnostic> diags;
  auto sys = aadl::compile(model, "Bsl3.impl", diags);
  if (!sys.has_value()) {
    throw std::runtime_error("bsl3 model failed to compile: " +
                             (diags.empty() ? "?" : diags[0].message));
  }
  return *sys;
}

}  // namespace

Bsl3Sel4Scenario::Bsl3Sel4Scenario(sim::Machine& machine, Bsl3Config cfg)
    : machine_(machine), cfg_(cfg), model_(cfg.model) {
  coupler_ = std::make_unique<devices::ContainmentCoupler>(
      machine_, model_, fan_, inner_, outer_, &alarm_on_);
  camkes_ = std::make_unique<camkes::CamkesSystem>(machine_);

  std::map<std::string, std::function<void(Runtime&)>> bodies;
  bodies["presSensProc"] = [this](Runtime& rt) { sensor_body(rt); };
  bodies["contCtlProc"] = [this](Runtime& rt) { control_body(rt); };
  bodies["exhaustFanProc"] = [this](Runtime& rt) { fan_body(rt); };
  bodies["doorCtlProc"] = [this](Runtime& rt) { door_body(rt); };
  bodies["alarmProc"] = [this](Runtime& rt) { alarm_body(rt); };
  bodies["mgmtProc"] = [this](Runtime& rt) { mgmt_body(rt); };
  const std::map<std::string, int> priorities = {
      {"presSensProc", 5}, {"contCtlProc", 6}, {"exhaustFanProc", 5},
      {"doorCtlProc", 5},  {"alarmProc", 5},   {"mgmtProc", 8},
  };
  camkes_->load_compiled_system(compile_bsl3(), bodies, priorities);
  camkes_->instantiate();
}

void Bsl3Sel4Scenario::sensor_body(Runtime& rt) {
  devices::PressureSensor lab(model_, devices::PressureSensor::Tap::kLab,
                              machine_.rng());
  devices::PressureSensor ante(
      model_, devices::PressureSensor::Tap::kAnteroom, machine_.rng());
  for (;;) {
    Sel4Msg msg;
    msg.push_f64(lab.read_pa());
    msg.push_f64(ante.read_pa());
    rt.rpc_call("presOut", msg);
    machine_.sleep_for(cfg_.sample_period);
  }
}

void Bsl3Sel4Scenario::control_body(Runtime& rt) {
  double fan_speed = 0.6;
  bool alarm = false;
  sim::Time breach_since = -1;
  sim::Time inner_open_until = -1, outer_open_until = -1;
  double last_lab = 0.0, last_ante = 0.0;

  auto command_door = [&](int door, bool open) {
    Sel4Msg cmd;
    cmd.push(static_cast<std::uint64_t>(door));
    cmd.push(open ? 1 : 0);
    rt.rpc_call("doorCmd", cmd);
  };

  for (;;) {
    auto in = rt.await();
    if (in.status != Sel4Error::kOk) continue;
    const sim::Time now = machine_.now();
    if (in.iface == "presIn") {
      last_lab = in.msg.mr_f64(0);
      last_ante = in.msg.mr_f64(1);
      rt.reply(Sel4Msg{});  // release the sensor before actuating
      const double err = last_lab - cfg_.target_lab_pa;
      if (err > 1.0) {
        fan_speed = std::min(1.0, fan_speed + 0.05);
      } else if (err < -1.0) {
        fan_speed = std::max(0.3, fan_speed - 0.05);
      }
      Sel4Msg fan_cmd;
      fan_cmd.push_f64(fan_speed);
      rt.rpc_call("fanCmd", fan_cmd);
      if (last_lab > cfg_.breach_threshold_pa) {
        if (breach_since < 0) breach_since = now;
        if (now - breach_since >= cfg_.alarm_delay) alarm = true;
      } else {
        breach_since = -1;
        if (last_lab < cfg_.breach_threshold_pa - 2.0) alarm = false;
      }
      Sel4Msg alarm_cmd;
      alarm_cmd.push(alarm ? 1 : 0);
      rt.rpc_call("alarmCmd", alarm_cmd);
      if (inner_open_until >= 0 && now >= inner_open_until) {
        command_door(0, false);
        inner_open_until = -1;
      }
      if (outer_open_until >= 0 && now >= outer_open_until) {
        command_door(1, false);
        outer_open_until = -1;
      }
      machine_.trace().emit(now, -1, sim::TraceKind::kControl,
                            "bsl3.sample", "", last_lab);
    } else if (in.iface == "doorReqIn") {
      const int door = static_cast<int>(in.msg.mr(0));
      const bool other_busy =
          door == 0 ? outer_open_until >= 0 : inner_open_until >= 0;
      const bool granted = !other_busy && (door == 0 || door == 1);
      machine_.trace().emit(now, -1, sim::TraceKind::kControl,
                            granted ? "bsl3.door_granted"
                                    : "bsl3.door_denied",
                            door == 0 ? "inner" : "outer");
      Sel4Msg reply;
      reply.push(granted ? 1 : 0);
      rt.reply(reply);
      if (granted) {
        command_door(door, true);
        (door == 0 ? inner_open_until : outer_open_until) =
            now + cfg_.door_open_time;
      }
    } else if (in.iface == "envIn") {
      Sel4Msg reply;
      reply.push_f64(last_lab);
      reply.push_f64(last_ante);
      reply.push_f64(fan_speed);
      reply.push(alarm ? 1 : 0);
      rt.reply(reply);
    } else {
      rt.reply(Sel4Msg{});
    }
  }
}

void Bsl3Sel4Scenario::fan_body(Runtime& rt) {
  for (;;) {
    auto in = rt.await();
    if (in.status != Sel4Error::kOk) continue;
    fan_.set_speed(in.msg.mr_f64(0), machine_.now());
    rt.reply(Sel4Msg{});
  }
}

void Bsl3Sel4Scenario::door_body(Runtime& rt) {
  for (;;) {
    auto in = rt.await();
    if (in.status != Sel4Error::kOk) continue;
    devices::DoorLatch& door = in.msg.mr(0) == 0 ? inner_ : outer_;
    door.set_open(in.msg.mr(1) != 0, machine_.now());
    rt.reply(Sel4Msg{});
  }
}

void Bsl3Sel4Scenario::alarm_body(Runtime& rt) {
  for (;;) {
    auto in = rt.await();
    if (in.status != Sel4Error::kOk) continue;
    alarm_on_ = in.msg.mr(0) != 0;
    rt.reply(Sel4Msg{});
  }
}

void Bsl3Sel4Scenario::mgmt_body(Runtime& rt) {
  bool attacked = false;
  for (;;) {
    if (attack_hook_ && !attacked && attack_time_ >= 0 &&
        machine_.now() >= attack_time_) {
      attacked = true;
      machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kAttack,
                            "mgmt.compromised", "bsl3-sel4");
      attack_hook_(*this, rt);
    }
    while (auto id = http_.poll()) {
      const net::HttpRequest& req = http_.request(*id);
      if (req.method == "GET" && req.path == "/status") {
        Sel4Msg msg;
        if (rt.rpc_call("envQuery", msg) != Sel4Error::kOk) {
          http_.respond(*id, machine_.now(), {503, "control unavailable"});
          continue;
        }
        char buf[128];
        std::snprintf(buf, sizeof buf,
                      "lab=%.1fPa;ante=%.1fPa;fan=%.2f;alarm=%s",
                      msg.mr_f64(0), msg.mr_f64(1), msg.mr_f64(2),
                      msg.mr(3) != 0 ? "on" : "off");
        http_.respond(*id, machine_.now(), {200, buf});
      } else if (req.method == "POST" && req.path == "/door") {
        const int door = req.body == "door=inner" ? 0
                         : req.body == "door=outer" ? 1
                                                    : -1;
        if (door < 0) {
          http_.respond(*id, machine_.now(), {400, "bad door"});
          continue;
        }
        Sel4Msg msg;
        msg.push(static_cast<std::uint64_t>(door));
        if (rt.rpc_call("doorReq", msg) != Sel4Error::kOk) {
          http_.respond(*id, machine_.now(), {503, "control unavailable"});
          continue;
        }
        http_.respond(*id, machine_.now(),
                      msg.mr(0) != 0
                          ? net::HttpResponse{200, "door released"}
                          : net::HttpResponse{409, "interlock engaged"});
      } else {
        http_.respond(*id, machine_.now(), {404, "not found"});
      }
    }
    machine_.sleep_for(sim::msec(100));
  }
}

}  // namespace mkbas::bas
