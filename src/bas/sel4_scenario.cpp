#include "bas/sel4_scenario.hpp"

#include <stdexcept>

#include "aadl/parser.hpp"
#include "aadl/scenario_model.hpp"
#include "bas/web_logic.hpp"

namespace mkbas::bas {

using camkes::Runtime;
using sel4::Sel4Error;
using sel4::Sel4Msg;

namespace {

aadl::CompiledSystem compile_builtin() {
  aadl::Parser parser(aadl::temp_control_aadl());
  const aadl::Model model = parser.parse();
  std::vector<aadl::Diagnostic> diags;
  auto sys = aadl::compile(model, "TempControl.impl", diags);
  if (!sys.has_value()) {
    throw std::runtime_error("builtin scenario model failed to compile: " +
                             (diags.empty() ? "?" : diags[0].message));
  }
  return *sys;
}

}  // namespace

Sel4Scenario::Sel4Scenario(sim::Machine& machine, ScenarioConfig cfg)
    : machine_(machine), cfg_(cfg), system_(compile_builtin()) {
  plant_ = std::make_unique<Plant>(machine_, cfg_);
  camkes_ = std::make_unique<camkes::CamkesSystem>(machine_);

  std::map<std::string, std::function<void(Runtime&)>> bodies;
  bodies["tempSensProc"] = [this](Runtime& rt) { sensor_body(rt); };
  bodies["tempProc"] = [this](Runtime& rt) { control_body(rt); };
  bodies["heaterActProc"] = [this](Runtime& rt) { heater_body(rt); };
  bodies["alarmProc"] = [this](Runtime& rt) { alarm_body(rt); };
  bodies["webInterface"] = [this](Runtime& rt) { web_body(rt); };
  const std::map<std::string, int> priorities = {
      {"tempSensProc", 5}, {"tempProc", 6},     {"heaterActProc", 5},
      {"alarmProc", 5},    {"webInterface", 8},
  };
  camkes_->load_compiled_system(system_, bodies, priorities);

  // "We also added two additional timer driver processes for
  // demonstration purposes" (§IV.B): a periodic tick source and a
  // consumer, wired with the seL4Notification connector. They exercise
  // the event path without touching the control loop.
  camkes_->add_component("timerA", [this](camkes::Runtime& rt) {
    for (;;) {
      machine_.sleep_for(sim::sec(1));
      rt.emit("tickOut");
    }
  }, 7);
  camkes_->add_component("timerB", [this](camkes::Runtime& rt) {
    for (;;) {
      if (rt.wait_event("tickIn", nullptr) != sel4::Sel4Error::kOk) return;
      ++timer_ticks_;
    }
  }, 7);
  camkes_->connect_event("c_timer", "timerA", "tickOut", "timerB",
                         "tickIn");

  // The seL4/CAmkES analogue of MINIX reincarnation: restart-from-spec.
  if (cfg_.enable_reincarnation) camkes_->enable_restart();

  camkes_->instantiate();
}

void Sel4Scenario::sensor_body(Runtime& rt) {
  auto& spans = machine_.spans();
  const std::uint32_t tag_sample =
      sim::TagRegistry::instance().intern("sensor.sample");
  const int self = machine_.current()->pid();
  for (;;) {
    // Root of the control-loop trace (see the MINIX scenario).
    const std::uint64_t s = spans.begin(self, machine_.now(), tag_sample);
    const double t = plant_->sensor.read_temperature_c();
    machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kDevice,
                          "sensor.sample", "", t);
    Sel4Msg msg;
    msg.push_f64(t);
    rt.rpc_call("sensorOut", msg);  // server acks promptly
    spans.end(self, machine_.now(), s);
    machine_.sleep_for(cfg_.sensor_period);
  }
}

void Sel4Scenario::control_body(Runtime& rt) {
  auto& spans = machine_.spans();
  const std::uint32_t tag_compute =
      sim::TagRegistry::instance().intern("ctl.compute");
  const int self = machine_.current()->pid();
  TempControlLogic logic(cfg_.control);
  // Control-quality metrics (see the MINIX scenario for the definition).
  auto jitter = machine_.metrics().log_histogram("sel4.ctl.jitter", 4, 1e6);
  auto jitter_sig = machine_.health().signal("sel4.ctl.jitter");
  auto actuations = machine_.metrics().counter("sel4.ctl.actuations");
  sim::Time last_sample_t = -1;
  for (;;) {
    auto in = rt.await();
    if (in.status != Sel4Error::kOk) continue;
    if (in.iface == "sensorIn") {
      // Chains under the sensor's endpoint hop (delivery set this pid's
      // current context); the actuator RPCs below chain under it in turn.
      const std::uint64_t cs = spans.begin(self, machine_.now(), tag_compute);
      const auto d = logic.on_sample(in.msg.mr_f64(0), machine_.now());
      rt.reply(Sel4Msg{});  // release the sensor before actuating
      Sel4Msg heater;
      heater.push(d.heater_on ? 1 : 0);
      rt.rpc_call("heaterCmd", heater);
      actuations.inc();
      Sel4Msg alarm;
      alarm.push(d.alarm_on ? 1 : 0);
      rt.rpc_call("alarmCmd", alarm);
      actuations.inc();
      machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kControl,
                            "ctl.sample", "", logic.env().last_temp_c);
      if (last_sample_t >= 0) {
        const sim::Duration dt = machine_.now() - last_sample_t;
        const sim::Duration nominal = cfg_.sensor_period;
        const auto dev = static_cast<double>(
            dt > nominal ? dt - nominal : nominal - dt);
        jitter.record(dev);
        jitter_sig.observe(machine_.now(), dev);
      }
      last_sample_t = machine_.now();
      spans.end(self, machine_.now(), cs);
    } else if (in.iface == "setpointIn") {
      const double sp = in.msg.mr_f64(0);
      const bool ok = logic.try_set_setpoint(sp, machine_.now());
      machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kControl,
                            ok ? "ctl.setpoint" : "ctl.setpoint_rejected",
                            "", sp);
      Sel4Msg rep;
      rep.push(ok ? 1 : 0);
      rt.reply(rep);
    } else if (in.iface == "envIn") {
      const EnvInfo env = logic.env();
      Sel4Msg rep;
      rep.push_f64(env.last_temp_c);
      rep.push_f64(env.setpoint_c);
      rep.push(env.heater_on ? 1 : 0);
      rep.push(env.alarm_on ? 1 : 0);
      rt.reply(rep);
    } else {
      rt.reply(Sel4Msg{});  // unknown interface: ack and ignore
    }
  }
}

void Sel4Scenario::heater_body(Runtime& rt) {
  auto& spans = machine_.spans();
  const std::uint32_t tag_apply =
      sim::TagRegistry::instance().intern("act.apply");
  const std::uint32_t tag_sample =
      sim::TagRegistry::instance().intern("sensor.sample");
  auto e2e = machine_.metrics().log_histogram("sel4.ctl.e2e_us", 4, 1e6);
  auto e2e_sig = machine_.health().signal("sel4.ctl.e2e_us");
  const int self = machine_.current()->pid();
  for (;;) {
    auto in = rt.await();
    if (in.status != Sel4Error::kOk) continue;
    const std::uint64_t s = spans.begin(self, machine_.now(), tag_apply);
    plant_->heater.set_on(in.msg.mr(0) != 0, machine_.now());
    // Sensor-to-actuation latency measured on the span chain itself (see
    // the MINIX scenario for why the root check matters).
    const std::uint64_t root = spans.root_of(s);
    if (root != 0 && spans.name_of(root) == tag_sample) {
      const sim::Time t0 = spans.start_of(root);
      if (t0 >= 0) {
        e2e.record(static_cast<double>(machine_.now() - t0));
        e2e_sig.observe(machine_.now(),
                        static_cast<double>(machine_.now() - t0));
      }
    }
    spans.end(self, machine_.now(), s);
    rt.reply(Sel4Msg{});
  }
}

void Sel4Scenario::alarm_body(Runtime& rt) {
  auto& spans = machine_.spans();
  const std::uint32_t tag_apply =
      sim::TagRegistry::instance().intern("act.apply");
  const std::uint32_t tag_sample =
      sim::TagRegistry::instance().intern("sensor.sample");
  auto e2e = machine_.metrics().log_histogram("sel4.ctl.e2e_us", 4, 1e6);
  auto e2e_sig = machine_.health().signal("sel4.ctl.e2e_us");
  const int self = machine_.current()->pid();
  for (;;) {
    auto in = rt.await();
    if (in.status != Sel4Error::kOk) continue;
    const std::uint64_t s = spans.begin(self, machine_.now(), tag_apply);
    plant_->alarm.set_on(in.msg.mr(0) != 0, machine_.now());
    const std::uint64_t root = spans.root_of(s);
    if (root != 0 && spans.name_of(root) == tag_sample) {
      const sim::Time t0 = spans.start_of(root);
      if (t0 >= 0) {
        e2e.record(static_cast<double>(machine_.now() - t0));
        e2e_sig.observe(machine_.now(),
                        static_cast<double>(machine_.now() - t0));
      }
    }
    spans.end(self, machine_.now(), s);
    rt.reply(Sel4Msg{});
  }
}

void Sel4Scenario::web_body(Runtime& rt) {
  bool attacked = false;
  for (;;) {
    if (attack_hook_ && !attacked && attack_time_ >= 0 &&
        machine_.now() >= attack_time_) {
      attacked = true;
      machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kAttack,
                            "web.compromised", "sel4");
      attack_hook_(*this, rt);
    }
    while (auto id = http_.poll()) {
      const WebAction act = route_request(http_.request(*id));
      switch (act.kind) {
        case WebAction::Kind::kStatus: {
          Sel4Msg msg;
          if (rt.rpc_call("envQuery", msg) != Sel4Error::kOk) {
            http_.respond(*id, machine_.now(), render_unavailable());
            break;
          }
          EnvInfo env;
          env.last_temp_c = msg.mr_f64(0);
          env.setpoint_c = msg.mr_f64(1);
          env.heater_on = msg.mr(2) != 0;
          env.alarm_on = msg.mr(3) != 0;
          http_.respond(*id, machine_.now(), render_status(env));
          break;
        }
        case WebAction::Kind::kSetSetpoint: {
          Sel4Msg msg;
          msg.push_f64(act.setpoint_c);
          if (rt.rpc_call("setpointOut", msg) != Sel4Error::kOk) {
            http_.respond(*id, machine_.now(), render_unavailable());
            break;
          }
          http_.respond(*id, machine_.now(),
                        render_setpoint_result(msg.mr(0) != 0));
          break;
        }
        case WebAction::Kind::kBadRequest:
          http_.respond(*id, machine_.now(), render_bad_request());
          break;
        case WebAction::Kind::kNotFound:
          http_.respond(*id, machine_.now(), render_not_found());
          break;
      }
    }
    machine_.sleep_for(cfg_.web_poll);
  }
}

}  // namespace mkbas::bas
