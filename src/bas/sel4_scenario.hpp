#pragma once

#include <functional>
#include <memory>

#include "aadl/compile.hpp"
#include "bas/scenario.hpp"
#include "camkes/camkes.hpp"
#include "net/http.hpp"

namespace mkbas::bas {

/// The temperature-control scenario on seL4 via CAmkES (§IV.B).
///
/// The built-in AADL model is translated to a CAmkES assembly (the
/// source-to-source step the paper began and we complete); the generated
/// bootstrap distributes exactly the CapDL-specified capabilities and
/// resumes the components. Every connection is an RPC (seL4RPCCall), with
/// the untrusted web interface strictly a client of the control process.
class Sel4Scenario : public Scenario {
 public:
  explicit Sel4Scenario(sim::Machine& machine, ScenarioConfig cfg = {});
  ~Sel4Scenario() override { machine_.shutdown(); }

  Sel4Scenario(const Sel4Scenario&) = delete;
  Sel4Scenario& operator=(const Sel4Scenario&) = delete;

  /// Arm a compromise of the web interface (arbitrary code execution in
  /// the web component, §IV.D.3). The hook receives this scenario plus
  /// the component's own CAmkES runtime — exactly the authority a real
  /// attacker in that component would hold.
  void arm_web_attack(
      sim::Time when,
      std::function<void(Sel4Scenario&, camkes::Runtime&)> hook) {
    attack_time_ = when;
    attack_hook_ = std::move(hook);
  }

  Platform platform() const override { return Platform::kSel4; }
  const char* variant() const override { return "temp"; }
  void arm_attack(sim::Time when, AttackHook hook) override {
    arm_web_attack(when, [hook = std::move(hook)](Sel4Scenario& sc,
                                                  camkes::Runtime& rt) {
      sc.attack_runtime_ = &rt;
      hook(sc);
      sc.attack_runtime_ = nullptr;
    });
  }
  int restarts() const override { return camkes_->restarts(); }
  /// The compromised component's runtime, non-null only while a generic
  /// arm_attack hook is executing (attack payloads downcast and use it).
  camkes::Runtime* attack_runtime() { return attack_runtime_; }

  camkes::CamkesSystem& camkes() { return *camkes_; }
  sel4::Sel4Kernel& kernel() { return camkes_->kernel(); }
  sim::Machine& machine() override { return machine_; }
  net::HttpConsole& http() override { return http_; }
  Plant* plant() override { return plant_.get(); }
  const aadl::CompiledSystem& system() const { return system_; }
  const ScenarioConfig& config() const { return cfg_; }
  /// Ticks observed by the demonstration timer pair (§IV.B).
  long timer_ticks() const { return timer_ticks_; }

 private:
  void sensor_body(camkes::Runtime& rt);
  void control_body(camkes::Runtime& rt);
  void heater_body(camkes::Runtime& rt);
  void alarm_body(camkes::Runtime& rt);
  void web_body(camkes::Runtime& rt);

  sim::Machine& machine_;
  ScenarioConfig cfg_;
  aadl::CompiledSystem system_;
  std::unique_ptr<Plant> plant_;
  std::unique_ptr<camkes::CamkesSystem> camkes_;
  net::HttpConsole http_;
  long timer_ticks_ = 0;
  sim::Time attack_time_ = -1;
  std::function<void(Sel4Scenario&, camkes::Runtime&)> attack_hook_;
  camkes::Runtime* attack_runtime_ = nullptr;
};

}  // namespace mkbas::bas
