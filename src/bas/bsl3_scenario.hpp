#pragma once

#include <functional>
#include <memory>

#include "bas/scenario.hpp"
#include "devices/containment.hpp"
#include "minix/kernel.hpp"
#include "net/http.hpp"
#include "physics/pressure.hpp"

namespace mkbas::bas {

// Bsl3Config and Bsl3Policy live in bas/scenario.hpp (part of the shared
// ScenarioConfig the registry builds every variant from).

/// The suite's mini-AADL model (shared by the MINIX and seL4 builds).
const char* bsl3_aadl();

/// Safety verdict for a containment run, judged on ground truth.
struct Bsl3Safety {
  bool control_alive = false;
  /// Lab pressure above the breach line for an extended period (beyond
  /// door-opening transients) after the system settled.
  bool containment_breach = false;
  /// Both doors stood open simultaneously at any instant.
  bool interlock_violation = false;
  /// A sustained breach without the critical alarm.
  bool alarm_violation = false;
  double max_lab_pa = -1e9;

  bool compromised() const {
    return !control_alive || containment_breach || interlock_violation ||
           alarm_violation;
  }
  std::string summary() const;
};

/// The BSL-3 suite scenario on security-enhanced MINIX 3: the richer
/// sibling of the temperature scenario, extracted from the same
/// Biosecurity Research Institute case study the paper's Fig. 1 points at
/// ("Biosafety Level 3 Lab"). Six processes:
///
///   presSensProc  — differential pressure transmitters (lab + anteroom)
///   contCtlProc   — containment controller: fan speed law, door
///                   interlock, critical alarm
///   exhaustFanProc, doorCtlProc, alarmProc — actuator drivers
///   mgmtProc      — untrusted management interface (HTTP console):
///                   status queries and door-open requests only
///
/// Safety obligations: the lab stays below the breach line (transient
/// door openings aside), the two doors are never open together, and a
/// sustained breach raises the critical alarm.
class Bsl3Scenario : public Scenario {
 public:
  struct AcIds {
    static constexpr int kSensor = 110;
    static constexpr int kControl = 111;
    static constexpr int kFan = 112;
    static constexpr int kDoors = 113;
    static constexpr int kAlarm = 114;
    static constexpr int kMgmt = 115;
  };
  struct MTypes {
    static constexpr int kAck = 0;
    static constexpr int kData = 1;      // sensor data / actuator commands
    static constexpr int kDoorReq = 2;   // mgmt -> ctl
    static constexpr int kEnvQuery = 3;  // mgmt -> ctl
  };
  static constexpr int kLoaderAcId = 109;

  explicit Bsl3Scenario(sim::Machine& machine, Bsl3Config cfg = {},
                        Bsl3Policy policy = Bsl3Policy::kAcmEnforced);
  ~Bsl3Scenario() override { machine_.shutdown(); }

  Bsl3Scenario(const Bsl3Scenario&) = delete;
  Bsl3Scenario& operator=(const Bsl3Scenario&) = delete;

  /// Compromise the management interface at `when` (same contract as the
  /// temperature scenario's web attack).
  void arm_mgmt_attack(sim::Time when,
                       std::function<void(Bsl3Scenario&)> hook) {
    attack_time_ = when;
    attack_hook_ = std::move(hook);
  }

  Platform platform() const override { return Platform::kMinix; }
  const char* variant() const override { return "bsl3"; }
  void arm_attack(sim::Time when, AttackHook hook) override {
    arm_mgmt_attack(when, [hook = std::move(hook)](Bsl3Scenario& sc) {
      hook(sc);
    });
  }
  int restarts() const override { return kernel_->restarts(); }

  minix::MinixKernel& kernel() { return *kernel_; }
  sim::Machine& machine() override { return machine_; }
  net::HttpConsole& http() override { return http_; }
  physics::ContainmentModel& model() { return model_; }
  devices::ExhaustFan& fan() { return fan_; }
  devices::DoorLatch& inner_door() { return inner_; }
  devices::DoorLatch& outer_door() { return outer_; }
  const std::vector<devices::ContainmentSample>& history() const {
    return coupler_->history();
  }
  minix::Endpoint endpoint_of(const std::string& name) const {
    return kernel_->lookup(name);
  }
  const Bsl3Config& config() const { return cfg_; }

  /// Judge a finished run.
  static Bsl3Safety check_safety(
      const std::vector<devices::ContainmentSample>& history,
      const sim::TraceLog& trace, const Bsl3Config& cfg, sim::Time run_end);

 private:
  void loader_proc();
  void sensor_proc();
  void control_proc();
  void fan_proc();
  void door_proc();
  void alarm_proc();
  void mgmt_proc();

  sim::Machine& machine_;
  Bsl3Config cfg_;
  physics::ContainmentModel model_;
  devices::ExhaustFan fan_;
  devices::DoorLatch inner_{"inner"};
  devices::DoorLatch outer_{"outer"};
  bool alarm_on_ = false;
  std::unique_ptr<devices::ContainmentCoupler> coupler_;
  std::unique_ptr<minix::MinixKernel> kernel_;
  net::HttpConsole http_;
  sim::Time attack_time_ = -1;
  std::function<void(Bsl3Scenario&)> attack_hook_;
};

}  // namespace mkbas::bas
