#include "bas/bsl3_scenario.hpp"

#include <sstream>
#include <stdexcept>

#include "aadl/compile.hpp"
#include "aadl/parser.hpp"

namespace mkbas::bas {

using minix::Endpoint;
using minix::IpcResult;
using minix::Message;
using minix::MinixKernel;

/// The suite's AADL model, compiled into the ACM exactly like the
/// temperature scenario's (and into the CAmkES assembly for the seL4
/// build).
const char* bsl3_aadl() {
  return R"AADL(
process PresSensProcess
  features presOut : out event data port Pressure;
end PresSensProcess;

process ContCtlProcess
  features
    presIn    : in event data port Pressure;
    fanCmd    : out event data port FanSpeed;
    doorCmd   : out event data port DoorCmd;
    alarmCmd  : out event data port AlarmCmd;
    doorReqIn : in event data port DoorReq;
    envIn     : in event data port EnvQuery;
end ContCtlProcess;

process ExhaustFanProcess
  features cmdIn : in event data port FanSpeed;
end ExhaustFanProcess;

process DoorCtlProcess
  features cmdIn : in event data port DoorCmd;
end DoorCtlProcess;

process AlarmProcess
  features cmdIn : in event data port AlarmCmd;
end AlarmProcess;

process MgmtProcess
  features
    doorReq  : out event data port DoorReq;
    envQuery : out event data port EnvQuery;
end MgmtProcess;

process implementation PresSensProcess.imp
  properties MKBAS::ac_id => 110;
end PresSensProcess.imp;
process implementation ContCtlProcess.imp
  properties MKBAS::ac_id => 111;
end ContCtlProcess.imp;
process implementation ExhaustFanProcess.imp
  properties MKBAS::ac_id => 112;
end ExhaustFanProcess.imp;
process implementation DoorCtlProcess.imp
  properties MKBAS::ac_id => 113;
end DoorCtlProcess.imp;
process implementation AlarmProcess.imp
  properties MKBAS::ac_id => 114;
end AlarmProcess.imp;
process implementation MgmtProcess.imp
  properties MKBAS::ac_id => 115;
end MgmtProcess.imp;

system Bsl3 end Bsl3;
system implementation Bsl3.impl
  subcomponents
    presSensProc   : process PresSensProcess.imp;
    contCtlProc    : process ContCtlProcess.imp;
    exhaustFanProc : process ExhaustFanProcess.imp;
    doorCtlProc    : process DoorCtlProcess.imp;
    alarmProc      : process AlarmProcess.imp;
    mgmtProc       : process MgmtProcess.imp;
  connections
    c_pres  : port presSensProc.presOut -> contCtlProc.presIn
              { MKBAS::m_type => 1; };
    c_fan   : port contCtlProc.fanCmd -> exhaustFanProc.cmdIn
              { MKBAS::m_type => 1; };
    c_door  : port contCtlProc.doorCmd -> doorCtlProc.cmdIn
              { MKBAS::m_type => 1; };
    c_alarm : port contCtlProc.alarmCmd -> alarmProc.cmdIn
              { MKBAS::m_type => 1; };
    c_req   : port mgmtProc.doorReq -> contCtlProc.doorReqIn
              { MKBAS::m_type => 2; };
    c_env   : port mgmtProc.envQuery -> contCtlProc.envIn
              { MKBAS::m_type => 3; };
end Bsl3.impl;
)AADL";
}

namespace {

minix::AcmPolicy make_policy(Bsl3Policy mode) {
  if (mode == Bsl3Policy::kPermissive) {
    // The legacy flat controller: every process may send anything to
    // anyone (and kill anyone) — the "before" of the paper's framework.
    minix::AcmPolicy acm;
    const int acs[] = {Bsl3Scenario::kLoaderAcId,
                       Bsl3Scenario::AcIds::kSensor,
                       Bsl3Scenario::AcIds::kControl,
                       Bsl3Scenario::AcIds::kFan,
                       Bsl3Scenario::AcIds::kDoors,
                       Bsl3Scenario::AcIds::kAlarm,
                       Bsl3Scenario::AcIds::kMgmt};
    for (int a : acs) {
      for (int b : acs) {
        acm.allow_mask(a, b, ~0ULL);
        acm.allow_kill(a, b);
      }
      acm.allow_mask(a, MinixKernel::kPmAcId, ~0ULL);
      acm.allow_mask(MinixKernel::kPmAcId, a, ~0ULL);
    }
    return acm;
  }
  aadl::Parser parser(bsl3_aadl());
  const aadl::Model model = parser.parse();
  std::vector<aadl::Diagnostic> diags;
  auto sys = aadl::compile(model, "Bsl3.impl", diags);
  if (!sys.has_value()) {
    throw std::runtime_error("bsl3 model failed to compile: " +
                             (diags.empty() ? "?" : diags[0].message));
  }
  minix::AcmPolicy acm = aadl::generate_acm(*sys);
  acm.allow(Bsl3Scenario::kLoaderAcId, MinixKernel::kPmAcId,
            {aadl::kAckMType, minix::PmProtocol::kFork,
             minix::PmProtocol::kExit});
  acm.allow(MinixKernel::kPmAcId, Bsl3Scenario::kLoaderAcId,
            {aadl::kAckMType});
  return acm;
}

}  // namespace

Bsl3Scenario::Bsl3Scenario(sim::Machine& machine, Bsl3Config cfg,
                           Bsl3Policy policy)
    : machine_(machine), cfg_(cfg), model_(cfg.model) {
  coupler_ = std::make_unique<devices::ContainmentCoupler>(
      machine_, model_, fan_, inner_, outer_, &alarm_on_);
  kernel_ = std::make_unique<MinixKernel>(machine_, make_policy(policy));
  kernel_->srv_fork2("bsl3-scenario", kLoaderAcId, [this] { loader_proc(); },
                     /*priority=*/3);
}

void Bsl3Scenario::loader_proc() {
  auto& k = *kernel_;
  struct Row {
    const char* name;
    int ac;
    void (Bsl3Scenario::*body)();
    int prio;
  };
  const Row rows[] = {
      {"contCtlProc", AcIds::kControl, &Bsl3Scenario::control_proc, 6},
      {"exhaustFanProc", AcIds::kFan, &Bsl3Scenario::fan_proc, 5},
      {"doorCtlProc", AcIds::kDoors, &Bsl3Scenario::door_proc, 5},
      {"alarmProc", AcIds::kAlarm, &Bsl3Scenario::alarm_proc, 5},
      {"presSensProc", AcIds::kSensor, &Bsl3Scenario::sensor_proc, 5},
      {"mgmtProc", AcIds::kMgmt, &Bsl3Scenario::mgmt_proc, 8},
  };
  for (const Row& row : rows) {
    k.fork2(row.name, row.ac, [this, row] { (this->*row.body)(); },
            row.prio);
  }
  k.seal_ac_assignment();
  k.pm_exit(0);
}

void Bsl3Scenario::sensor_proc() {
  auto& k = *kernel_;
  devices::PressureSensor lab(model_, devices::PressureSensor::Tap::kLab,
                              machine_.rng());
  devices::PressureSensor ante(
      model_, devices::PressureSensor::Tap::kAnteroom, machine_.rng());
  Endpoint ctl = k.wait_lookup("contCtlProc");
  for (;;) {
    Message m;
    m.m_type = MTypes::kData;
    m.put_f64(0, lab.read_pa());
    m.put_f64(8, ante.read_pa());
    if (k.ipc_sendnb(ctl, m) == IpcResult::kDeadSrcDst) {
      const Endpoint fresh = k.lookup("contCtlProc");
      if (fresh.valid()) ctl = fresh;
    }
    machine_.sleep_for(cfg_.sample_period);
  }
}

void Bsl3Scenario::control_proc() {
  auto& k = *kernel_;
  Endpoint fan_ep = k.wait_lookup("exhaustFanProc");
  Endpoint door_ep = k.wait_lookup("doorCtlProc");
  Endpoint alarm_ep = k.wait_lookup("alarmProc");
  const Endpoint sensor_ep = k.wait_lookup("presSensProc");

  double fan_speed = 0.6;
  bool alarm = false;
  sim::Time breach_since = -1;
  sim::Time inner_open_until = -1, outer_open_until = -1;
  double last_lab = 0.0, last_ante = 0.0;

  auto send_cmd = [&](Endpoint& ep, const char* name, auto fill) {
    Message m;
    m.m_type = MTypes::kData;
    fill(m);
    if (k.ipc_send(ep, m) == IpcResult::kDeadSrcDst) {
      const Endpoint fresh = k.lookup(name);
      if (fresh.valid()) {
        ep = fresh;
        k.ipc_send(ep, m);
      }
    }
  };
  auto command_door = [&](int door, bool open) {
    send_cmd(door_ep, "doorCtlProc", [&](Message& m) {
      m.put_i32(0, door);
      m.put_i32(4, open ? 1 : 0);
    });
  };

  for (;;) {
    Message m;
    if (k.ipc_receive(Endpoint::any(), m) != IpcResult::kOk) continue;
    const sim::Time now = machine_.now();
    switch (m.m_type) {
      case MTypes::kData: {
        if (m.source() != sensor_ep) break;  // defence in depth
        last_lab = m.get_f64(0);
        last_ante = m.get_f64(8);
        // Incremental fan law toward the target pressure.
        const double err = last_lab - cfg_.target_lab_pa;
        if (err > 1.0) {
          fan_speed = std::min(1.0, fan_speed + 0.05);
        } else if (err < -1.0) {
          fan_speed = std::max(0.3, fan_speed - 0.05);
        }
        send_cmd(fan_ep, "exhaustFanProc",
                 [&](Message& c) { c.put_f64(0, fan_speed); });
        // Critical alarm on sustained breach.
        if (last_lab > cfg_.breach_threshold_pa) {
          if (breach_since < 0) breach_since = now;
          if (now - breach_since >= cfg_.alarm_delay) alarm = true;
        } else {
          breach_since = -1;
          if (last_lab < cfg_.breach_threshold_pa - 2.0) alarm = false;
        }
        send_cmd(alarm_ep, "alarmProc",
                 [&](Message& c) { c.put_i32(0, alarm ? 1 : 0); });
        // Door auto-close deadlines.
        if (inner_open_until >= 0 && now >= inner_open_until) {
          command_door(0, false);
          inner_open_until = -1;
        }
        if (outer_open_until >= 0 && now >= outer_open_until) {
          command_door(1, false);
          outer_open_until = -1;
        }
        machine_.trace().emit(now, -1, sim::TraceKind::kControl,
                              "bsl3.sample", "", last_lab);
        break;
      }
      case MTypes::kDoorReq: {
        const int door = m.get_i32(0);  // 0 inner, 1 outer
        // Interlock: grant only while the other door is shut.
        const bool other_busy =
            door == 0 ? outer_open_until >= 0 : inner_open_until >= 0;
        const bool granted = !other_busy && (door == 0 || door == 1);
        if (granted) {
          command_door(door, true);
          (door == 0 ? inner_open_until : outer_open_until) =
              now + cfg_.door_open_time;
        }
        machine_.trace().emit(now, -1, sim::TraceKind::kControl,
                              granted ? "bsl3.door_granted"
                                      : "bsl3.door_denied",
                              door == 0 ? "inner" : "outer");
        Message reply;
        reply.m_type = MTypes::kAck;
        reply.put_i32(0, granted ? 1 : 0);
        k.ipc_senda(m.source(), reply);
        break;
      }
      case MTypes::kEnvQuery: {
        Message reply;
        reply.m_type = MTypes::kAck;
        reply.put_f64(0, last_lab);
        reply.put_f64(8, last_ante);
        reply.put_f64(16, fan_speed);
        reply.put_i32(24, alarm ? 1 : 0);
        k.ipc_senda(m.source(), reply);
        break;
      }
      default:
        break;
    }
  }
}

void Bsl3Scenario::fan_proc() {
  auto& k = *kernel_;
  for (;;) {
    Message m;
    if (k.ipc_receive(Endpoint::any(), m) != IpcResult::kOk) continue;
    if (m.m_type != MTypes::kData) continue;
    fan_.set_speed(m.get_f64(0), machine_.now());
  }
}

void Bsl3Scenario::door_proc() {
  auto& k = *kernel_;
  for (;;) {
    Message m;
    if (k.ipc_receive(Endpoint::any(), m) != IpcResult::kOk) continue;
    if (m.m_type != MTypes::kData) continue;
    devices::DoorLatch& door = m.get_i32(0) == 0 ? inner_ : outer_;
    door.set_open(m.get_i32(4) != 0, machine_.now());
  }
}

void Bsl3Scenario::alarm_proc() {
  auto& k = *kernel_;
  for (;;) {
    Message m;
    if (k.ipc_receive(Endpoint::any(), m) != IpcResult::kOk) continue;
    if (m.m_type != MTypes::kData) continue;
    alarm_on_ = m.get_i32(0) != 0;
  }
}

void Bsl3Scenario::mgmt_proc() {
  auto& k = *kernel_;
  Endpoint ctl = k.wait_lookup("contCtlProc");
  bool attacked = false;
  for (;;) {
    if (!k.is_live(ctl)) {
      const Endpoint fresh = k.lookup("contCtlProc");
      if (fresh.valid()) ctl = fresh;
    }
    if (attack_hook_ && !attacked && attack_time_ >= 0 &&
        machine_.now() >= attack_time_) {
      attacked = true;
      machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kAttack,
                            "mgmt.compromised", "bsl3");
      attack_hook_(*this);
    }
    while (auto id = http_.poll()) {
      const net::HttpRequest& req = http_.request(*id);
      if (req.method == "GET" && req.path == "/status") {
        Message m;
        m.m_type = MTypes::kEnvQuery;
        if (k.ipc_sendrec(ctl, m) != IpcResult::kOk) {
          http_.respond(*id, machine_.now(), {503, "control unavailable"});
          continue;
        }
        char buf[128];
        std::snprintf(buf, sizeof buf,
                      "lab=%.1fPa;ante=%.1fPa;fan=%.2f;alarm=%s",
                      m.get_f64(0), m.get_f64(8), m.get_f64(16),
                      m.get_i32(24) != 0 ? "on" : "off");
        http_.respond(*id, machine_.now(), {200, buf});
      } else if (req.method == "POST" && req.path == "/door") {
        const int door = req.body == "door=inner" ? 0
                         : req.body == "door=outer" ? 1
                                                    : -1;
        if (door < 0) {
          http_.respond(*id, machine_.now(), {400, "bad door"});
          continue;
        }
        Message m;
        m.m_type = MTypes::kDoorReq;
        m.put_i32(0, door);
        if (k.ipc_sendrec(ctl, m) != IpcResult::kOk) {
          http_.respond(*id, machine_.now(), {503, "control unavailable"});
          continue;
        }
        http_.respond(*id, machine_.now(),
                      m.get_i32(0) != 0
                          ? net::HttpResponse{200, "door released"}
                          : net::HttpResponse{409, "interlock engaged"});
      } else {
        http_.respond(*id, machine_.now(), {404, "not found"});
      }
    }
    machine_.sleep_for(sim::msec(100));
  }
}

// ---- safety analysis ----

Bsl3Safety Bsl3Scenario::check_safety(
    const std::vector<devices::ContainmentSample>& history,
    const sim::TraceLog& trace, const Bsl3Config& cfg, sim::Time run_end) {
  Bsl3Safety r;
  if (history.empty()) return r;

  sim::Time last_sample = -1;
  for (const auto& ev : trace.events()) {
    if (ev.what() == "bsl3.sample") last_sample = ev.time;
  }
  r.control_alive =
      last_sample >= 0 && run_end - last_sample <= 5 * cfg.sample_period;

  const sim::Duration kSettle = sim::minutes(5);
  // Longer than a door transient (10 s open + recovery), far longer than
  // sensor noise:
  const sim::Duration kBreachHold = sim::minutes(2);
  const sim::Duration kAlarmSlack = sim::sec(45);

  sim::Time breach_since = -1;
  for (const auto& s : history) {
    r.max_lab_pa = std::max(r.max_lab_pa, s.lab_pa);
    if (s.inner_open && s.outer_open) r.interlock_violation = true;
    if (s.time < kSettle) continue;
    if (s.lab_pa > cfg.breach_threshold_pa + 0.5) {
      if (breach_since < 0) breach_since = s.time;
      if (s.time - breach_since > kBreachHold) r.containment_breach = true;
      if (s.time - breach_since > cfg.alarm_delay + kAlarmSlack &&
          !s.alarm_on) {
        r.alarm_violation = true;
      }
    } else {
      breach_since = -1;
    }
  }
  return r;
}

std::string Bsl3Safety::summary() const {
  std::ostringstream os;
  os << (compromised() ? "COMPROMISED" : "contained") << " [";
  os << (control_alive ? "ctl-alive" : "CTL-DEAD");
  if (containment_breach) os << ", CONTAINMENT-BREACH";
  if (interlock_violation) os << ", INTERLOCK-VIOLATION";
  if (alarm_violation) os << ", ALARM-SILENCED";
  char buf[48];
  std::snprintf(buf, sizeof buf, ", max lab %.1f Pa", max_lab_pa);
  os << buf << "]";
  return os.str();
}

}  // namespace mkbas::bas
