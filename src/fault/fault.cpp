#include "fault/fault.hpp"

#include <limits>
#include <sstream>

namespace mkbas::fault {

namespace {

sim::Process* find_by_name(sim::Machine& m, const std::string& name) {
  // for_each_live visits in place; live_processes() would build a fresh
  // vector for every injection attempt, including the per-tick hang retry.
  sim::Process* found = nullptr;
  m.for_each_live([&](sim::Process& p) {
    if (found == nullptr && p.name() == name) found = &p;
  });
  return found;
}

constexpr sim::Time kForever = std::numeric_limits<sim::Time>::max();

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kHang:
      return "hang";
    case FaultKind::kMsgDrop:
      return "msg-drop";
    case FaultKind::kMsgDelay:
      return "msg-delay";
    case FaultKind::kMsgCorrupt:
      return "msg-corrupt";
    case FaultKind::kSensorStuckAt:
      return "sensor-stuck-at";
    case FaultKind::kSensorDrift:
      return "sensor-drift";
    case FaultKind::kClockJitter:
      return "clock-jitter";
  }
  return "?";
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << "plan '" << name_ << "' seed=" << seed_ << "\n";
  for (const auto& ev : events_) {
    os << "  t=" << sim::to_seconds(ev.at) << "s " << to_string(ev.kind);
    if (!ev.target.empty()) os << " target=" << ev.target;
    if (!ev.dst.empty()) os << " dst=" << ev.dst;
    if (ev.duration > 0) os << " window=" << sim::to_seconds(ev.duration) << "s";
    if (ev.duration2 > 0) os << " amount=" << ev.duration2 << "us";
    if (ev.value != 0.0) os << " value=" << ev.value;
    os << "\n";
  }
  return os.str();
}

FaultPlan reference_sensor_crash_plan(sim::Time sensor_crash_at) {
  FaultPlan plan("reference-sensor-crash", 1);
  plan.crash(sensor_crash_at, "tempSensProc");
  // Ten seconds later, crash the attacker-facing web interface: the
  // restarted instance must come back with its original restricted ACM
  // row, not a fresh permissive one.
  plan.crash(sensor_crash_at + sim::sec(10), "webInterface");
  return plan;
}

FaultInjector::FaultInjector(sim::Machine& machine, FaultPlan plan)
    : machine_(machine),
      plan_(std::move(plan)),
      rng_(plan_.seed() * 0x9e3779b97f4a7c15ULL + 0xfa0172ULL),
      crash_ctr_(machine.metrics().counter("fault.crash")),
      hang_ctr_(machine.metrics().counter("fault.hang")),
      drop_ctr_(machine.metrics().counter("fault.msg_drop")),
      delay_ctr_(machine.metrics().counter("fault.msg_delay")),
      corrupt_ctr_(machine.metrics().counter("fault.msg_corrupt")),
      sensor_ctr_(machine.metrics().counter("fault.sensor")),
      clock_ctr_(machine.metrics().counter("fault.clock")) {
  obs::DetectorConfig cfg;
  cfg.rate = true;
  cfg.surge = 16.0;  // a fault storm, not an isolated injection
  activity_sig_ = machine_.health().signal("fault.activity", cfg);
}

FaultInjector::~FaultInjector() {
  if (filter_installed_) machine_.set_msg_filter({});
}

void FaultInjector::note(const char* tag, const std::string& detail,
                         double value) {
  machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kFault, tag,
                        detail, value);
  // Every injection that actually landed (misses excluded) counts on the
  // fault-activity rate signal and snapshots the moment in the flight
  // recorder.
  if (std::string(tag) != "fault.miss") {
    activity_sig_.count(machine_.now());
    machine_.flight().trigger(machine_.now(), tag, detail);
  }
}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  for (const auto& ev : plan_.events()) arm_event(ev);
  if (!windows_.empty()) {
    machine_.set_msg_filter(
        [this](const std::string& src, const std::string& dst) {
          sim::MsgFaultAction act;
          const sim::Time now = machine_.now();
          for (const auto& w : windows_) {
            if (now < w.from || now >= w.to) continue;
            if (!w.src.empty() && w.src != src) continue;
            if (!w.dst.empty() && w.dst != dst) continue;
            switch (w.kind) {
              case FaultKind::kMsgDrop:
                act.drop = true;
                break;
              case FaultKind::kMsgDelay:
                act.delay += w.delay;
                break;
              case FaultKind::kMsgCorrupt:
                act.corrupt = true;
                break;
              default:
                break;
            }
          }
          // Drop dominates: a dropped message is never also delayed or
          // corrupted, and consumes no corruption entropy.
          if (act.drop) {
            act.corrupt = false;
            act.delay = 0;
            drop_ctr_.inc();
        ++injected_;
            note("fault.msg_drop", src + "->" + dst);
            return act;
          }
          if (act.corrupt) {
            act.corrupt_seed = rng_.next_u64();
            corrupt_ctr_.inc();
        ++injected_;
            note("fault.msg_corrupt", src + "->" + dst,
                 static_cast<double>(act.corrupt_seed >> 32));
          }
          if (act.delay > 0) {
            delay_ctr_.inc();
        ++injected_;
            note("fault.msg_delay", src + "->" + dst,
                 static_cast<double>(act.delay));
          }
          return act;
        });
    filter_installed_ = true;
  }
}

void FaultInjector::arm_event(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::kCrash:
      machine_.at(ev.at, [this, name = ev.target] {
        sim::Process* p = find_by_name(machine_, name);
        if (p == nullptr) {
          note("fault.miss", "crash: no live process '" + name + "'");
          return;
        }
        crash_ctr_.inc();
        ++injected_;
        note("fault.crash", name, p->pid());
        machine_.kill(p);
      });
      break;

    case FaultKind::kHang: {
      // suspend() requires the target not to be the running process; a
      // driver callback can fire mid-charge while the target runs, so the
      // attempt reschedules itself one tick later until it lands.
      auto attempt = std::make_shared<std::function<void()>>();
      hang_attempts_.push_back(attempt);
      *attempt = [this, name = ev.target, dur = ev.duration,
                  fn = attempt.get()] {
        sim::Process* p = find_by_name(machine_, name);
        if (p == nullptr) {
          note("fault.miss", "hang: no live process '" + name + "'");
          return;
        }
        if (p->state() == sim::ProcState::kRunning) {
          machine_.at(machine_.now() + 1, *fn);
          return;
        }
        hang_ctr_.inc();
        ++injected_;
        note("fault.hang", name, sim::to_seconds(dur));
        machine_.suspend(p);
        machine_.at(machine_.now() + dur, [this, pid = p->pid(), name] {
          sim::Process* q = machine_.find_process(pid);
          if (q == nullptr) return;  // killed while hung
          note("fault.resume", name);
          machine_.resume(q);
        });
      };
      machine_.at(ev.at, [fn = attempt.get()] { (*fn)(); });
      break;
    }

    case FaultKind::kMsgDrop:
    case FaultKind::kMsgDelay:
    case FaultKind::kMsgCorrupt: {
      const sim::Time to =
          ev.duration > 0 ? ev.at + ev.duration : kForever;
      windows_.push_back(
          {ev.at, to, ev.kind, ev.target, ev.dst, ev.duration2});
      break;
    }

    case FaultKind::kSensorStuckAt:
      machine_.at(ev.at, [this, c = ev.value] {
        if (sensor_ == nullptr) {
          note("fault.miss", "sensor-stuck-at: no sensor registered");
          return;
        }
        sensor_ctr_.inc();
        ++injected_;
        note("fault.sensor_stuck", "", c);
        sensor_->fault_stuck_at(c);
      });
      if (ev.duration > 0) {
        machine_.at(ev.at + ev.duration, [this] {
          if (sensor_ == nullptr) return;
          note("fault.sensor_clear", "");
          sensor_->clear_fault();
        });
      }
      break;

    case FaultKind::kSensorDrift: {
      // every() callbacks cannot be cancelled, so drift is a finite chain
      // of one-shot steps: each adds (rate * step) of calibration offset.
      const sim::Duration step = sim::msec(500);
      const auto n = static_cast<int>(ev.duration / step);
      const double per_step =
          ev.value * (static_cast<double>(step) / 1e6);
      for (int i = 1; i <= n; ++i) {
        machine_.at(ev.at + i * step, [this, per_step] {
          if (sensor_ == nullptr) return;
          sensor_ctr_.inc();
        ++injected_;
          note("fault.sensor_drift", "", per_step);
          sensor_->add_fault_offset(per_step);
        });
      }
      break;
    }

    case FaultKind::kClockJitter:
      machine_.at(ev.at, [this, amp = ev.duration2] {
        clock_ctr_.inc();
        ++injected_;
        note("fault.clock_jitter", "on", static_cast<double>(amp));
        machine_.set_clock_jitter(amp);
      });
      if (ev.duration > 0) {
        machine_.at(ev.at + ev.duration, [this] {
          note("fault.clock_jitter", "off", 0.0);
          machine_.set_clock_jitter(0);
        });
      }
      break;
  }
}

}  // namespace mkbas::fault
