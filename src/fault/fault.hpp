#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "devices/devices.hpp"
#include "sim/machine.hpp"
#include "sim/time.hpp"

namespace mkbas::fault {

/// What kind of component failure a FaultEvent injects. These model the
/// disturbance vocabulary of ICS fault-injection testbeds (ICSSIM-style):
/// process failures, channel failures, sensor failures, timing failures.
enum class FaultKind {
  kCrash,         // kill the target process (abnormal exit)
  kHang,          // suspend the target for `duration`, then resume
  kMsgDrop,       // drop messages matching target->dst during the window
  kMsgDelay,      // add `duration` in-transit latency during the window
  kMsgCorrupt,    // flip payload bytes in transit during the window
  kSensorStuckAt, // sensor reports `value` C regardless of the room
  kSensorDrift,   // sensor gains `value` C/s of calibration drift
  kClockJitter,   // perturb all sleep deadlines by +/- `duration`
};

const char* to_string(FaultKind kind);

/// One timed injection. Which fields matter depends on `kind`:
///  - kCrash/kHang: `target` = process name; kHang also uses `duration`.
///  - kMsg*: `target` = sender name ("" = any), `dst` = receiver name
///    ("" = any); active for [at, at+duration). kMsgDelay adds `duration2`
///    of latency per message.
///  - kSensorStuckAt: `value` = stuck reading (C), window [at, at+duration)
///    with duration 0 meaning "forever".
///  - kSensorDrift: `value` = drift rate (C per second) applied over
///    [at, at+duration).
///  - kClockJitter: amplitude `duration2`, window [at, at+duration).
struct FaultEvent {
  sim::Time at = 0;
  FaultKind kind = FaultKind::kCrash;
  std::string target;
  std::string dst;
  sim::Duration duration = 0;
  sim::Duration duration2 = 0;
  double value = 0.0;
};

/// A named, seeded script of fault injections. The seed drives only the
/// *fault engine's* private RNG (corruption bytes, per-message coin flips),
/// never the machine RNG, so adding a fault plan perturbs the simulation
/// solely through the faults themselves.
class FaultPlan {
 public:
  explicit FaultPlan(std::string name = "plan", std::uint64_t seed = 1)
      : name_(std::move(name)), seed_(seed) {}

  const std::string& name() const { return name_; }
  std::uint64_t seed() const { return seed_; }
  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  // Chainable builders.
  FaultPlan& crash(sim::Time at, std::string process) {
    events_.push_back({at, FaultKind::kCrash, std::move(process), "", 0, 0, 0});
    return *this;
  }
  FaultPlan& hang(sim::Time at, std::string process, sim::Duration for_) {
    events_.push_back(
        {at, FaultKind::kHang, std::move(process), "", for_, 0, 0});
    return *this;
  }
  /// Drop all src->dst messages during [at, at+window). Empty src/dst match
  /// any sender/receiver.
  FaultPlan& drop_messages(sim::Time at, sim::Duration window, std::string src,
                           std::string dst) {
    events_.push_back({at, FaultKind::kMsgDrop, std::move(src), std::move(dst),
                       window, 0, 0});
    return *this;
  }
  FaultPlan& delay_messages(sim::Time at, sim::Duration window,
                            std::string src, std::string dst,
                            sim::Duration by) {
    events_.push_back({at, FaultKind::kMsgDelay, std::move(src),
                       std::move(dst), window, by, 0});
    return *this;
  }
  FaultPlan& corrupt_messages(sim::Time at, sim::Duration window,
                              std::string src, std::string dst) {
    events_.push_back({at, FaultKind::kMsgCorrupt, std::move(src),
                       std::move(dst), window, 0, 0});
    return *this;
  }
  /// duration 0 = stuck until the end of the run.
  FaultPlan& sensor_stuck_at(sim::Time at, double celsius,
                             sim::Duration for_ = 0) {
    events_.push_back(
        {at, FaultKind::kSensorStuckAt, "", "", for_, 0, celsius});
    return *this;
  }
  FaultPlan& sensor_drift(sim::Time at, sim::Duration over,
                          double c_per_second) {
    events_.push_back(
        {at, FaultKind::kSensorDrift, "", "", over, 0, c_per_second});
    return *this;
  }
  FaultPlan& clock_jitter(sim::Time at, sim::Duration window,
                          sim::Duration amplitude) {
    events_.push_back(
        {at, FaultKind::kClockJitter, "", "", window, amplitude, 0});
    return *this;
  }

  /// One line per event, for logs and bench output.
  std::string describe() const;

 private:
  std::string name_;
  std::uint64_t seed_;
  std::vector<FaultEvent> events_;
};

/// The reference campaign from the issue: crash the sensor driver at t=30s
/// (control loses its input), then crash the attacker-facing web interface
/// at t=40s (its ACM row must survive reincarnation).
FaultPlan reference_sensor_crash_plan(sim::Time sensor_crash_at = sim::sec(30));

/// Arms a FaultPlan against a Machine: schedules crash/hang timers,
/// installs the message filter, and drives sensor/clock faults. Every
/// injection lands in the trace (kind kFault, tags "fault.*") and bumps a
/// counter, so a campaign is fully reconstructible from the exports.
///
/// Lifetime: keep the injector alive for the whole run; its destructor
/// uninstalls the message filter.
class FaultInjector {
 public:
  FaultInjector(sim::Machine& machine, FaultPlan plan);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Point sensor faults at a device (optional; sensor events are skipped
  /// with a trace note when no sensor is registered).
  void register_sensor(devices::Bmp180Sensor* sensor) { sensor_ = sensor; }

  /// Schedule everything. Call once, before machine.run*().
  void arm();

  const FaultPlan& plan() const { return plan_; }
  std::uint64_t injected() const { return injected_; }

 private:
  struct MsgWindow {
    sim::Time from, to;
    FaultKind kind;
    std::string src, dst;  // empty = wildcard
    sim::Duration delay;
  };

  void arm_event(const FaultEvent& ev);
  void note(const char* tag, const std::string& detail, double value = 0.0);

  sim::Machine& machine_;
  obs::HealthSignal activity_sig_;  // rate of landed injections
  FaultPlan plan_;
  sim::Rng rng_;  // plan-seeded; independent of the machine stream
  devices::Bmp180Sensor* sensor_ = nullptr;
  std::vector<MsgWindow> windows_;
  // Keeps hang-retry closures alive; they reschedule themselves until the
  // target is off-CPU and suspendable.
  std::vector<std::shared_ptr<std::function<void()>>> hang_attempts_;
  bool armed_ = false;
  bool filter_installed_ = false;
  std::uint64_t injected_ = 0;
  obs::Counter crash_ctr_, hang_ctr_, drop_ctr_, delay_ctr_, corrupt_ctr_,
      sensor_ctr_, clock_ctr_;
};

}  // namespace mkbas::fault
