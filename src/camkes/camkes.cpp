#include "camkes/camkes.hpp"

#include <cassert>
#include <sstream>

namespace mkbas::camkes {

using sel4::CapRights;
using sel4::ObjType;
using sel4::Sel4Error;
using sel4::Sel4Msg;

// ---- Runtime (glue code) ----

sel4::Sel4Error Runtime::rpc_call(const std::string& iface,
                                  sel4::Sel4Msg& inout) {
  const auto it = uses_.find(iface);
  if (it == uses_.end()) return Sel4Error::kEmptySlot;
  return kernel_->call(it->second.slot, inout);
}

sel4::Sel4Error Runtime::rpc_send_nb(const std::string& iface,
                                     const sel4::Sel4Msg& msg) {
  const auto it = uses_.find(iface);
  if (it == uses_.end()) return Sel4Error::kEmptySlot;
  return kernel_->nbsend(it->second.slot, msg);
}

Runtime::Incoming Runtime::await() {
  Incoming in;
  if (serve_slot < 0) {
    in.status = Sel4Error::kEmptySlot;
    return in;
  }
  const auto rr = kernel_->recv(serve_slot, in.msg);
  in.status = rr.status;
  if (rr.status == Sel4Error::kOk) {
    const auto it = serves_.find(rr.badge);
    if (it != serves_.end()) {
      in.iface = it->second.iface;
      in.from = it->second.peer;
    }
  }
  return in;
}

Runtime::Incoming Runtime::await_nb() {
  Incoming in;
  if (serve_slot < 0) {
    in.status = Sel4Error::kEmptySlot;
    return in;
  }
  const auto rr = kernel_->nbrecv(serve_slot, in.msg);
  in.status = rr.status;
  if (rr.status == Sel4Error::kOk) {
    const auto it = serves_.find(rr.badge);
    if (it != serves_.end()) {
      in.iface = it->second.iface;
      in.from = it->second.peer;
    }
  }
  return in;
}

sel4::Sel4Error Runtime::reply(const sel4::Sel4Msg& msg) {
  return kernel_->reply(msg);
}

sel4::Sel4Error Runtime::emit(const std::string& iface) {
  const auto it = events_out_.find(iface);
  if (it == events_out_.end()) return Sel4Error::kEmptySlot;
  return kernel_->signal(it->second);
}

sel4::Sel4Error Runtime::wait_event(const std::string& iface,
                                    std::uint64_t* bits) {
  const auto it = events_in_.find(iface);
  if (it == events_in_.end()) return Sel4Error::kEmptySlot;
  return kernel_->wait(it->second, bits);
}

sel4::Sel4Error Runtime::dataport_write(const std::string& iface,
                                        std::size_t offset, const void* src,
                                        std::size_t len) {
  const auto it = dataports_.find(iface);
  if (it == dataports_.end()) return Sel4Error::kEmptySlot;
  return kernel_->frame_write(it->second, offset,
                              static_cast<const std::uint8_t*>(src), len);
}

sel4::Sel4Error Runtime::dataport_read(const std::string& iface,
                                       std::size_t offset, void* dst,
                                       std::size_t len) {
  const auto it = dataports_.find(iface);
  if (it == dataports_.end()) return Sel4Error::kEmptySlot;
  return kernel_->frame_read(it->second, offset,
                             static_cast<std::uint8_t*>(dst), len);
}

std::vector<int> Runtime::enumerate_own_caps() {
  std::vector<int> found;
  const int n = kernel_->cspace_slots();
  for (int s = 0; s < n; ++s) {
    if (kernel_->probe_own_slot(s)) found.push_back(s);
  }
  return found;
}

// ---- CapDlSpec ----

std::string CapDlSpec::to_text() const {
  std::ostringstream os;
  os << "objects {\n";
  for (const auto& o : objects) os << "    " << o << "\n";
  os << "}\ncaps {\n";
  std::string cur;
  for (const auto& p : placements) {
    if (p.component != cur) {
      if (!cur.empty()) os << "    }\n";
      os << "    cnode_" << p.component << " {\n";
      cur = p.component;
    }
    os << "        " << p.slot << ": " << p.object << " (";
    bool first = true;
    auto right = [&](bool have, const char* n) {
      if (!have) return;
      if (!first) os << ", ";
      os << n;
      first = false;
    };
    right(p.read, "R");
    right(p.write, "W");
    right(p.grant, "G");
    if (p.badge != 0) os << ", badge: " << p.badge;
    os << ")\n";
  }
  if (!cur.empty()) os << "    }\n";
  os << "}\n";
  return os.str();
}

// ---- CamkesSystem ----

CamkesSystem::CamkesSystem(sim::Machine& machine)
    : machine_(machine), kernel_(machine) {}

void CamkesSystem::add_component(const std::string& name,
                                 std::function<void(Runtime&)> body,
                                 int priority) {
  Component c;
  c.name = name;
  c.body = std::move(body);
  c.priority = priority;
  c.runtime = std::make_shared<Runtime>();
  components_.push_back(std::move(c));
}

void CamkesSystem::connect(const std::string& conn_name,
                           const std::string& from,
                           const std::string& from_iface,
                           const std::string& to,
                           const std::string& to_iface) {
  connections_.push_back(Connection{conn_name, from, from_iface, to,
                                    to_iface, ConnKind::kRpc, 0, -1});
}

void CamkesSystem::connect_event(const std::string& conn_name,
                                 const std::string& from,
                                 const std::string& from_iface,
                                 const std::string& to,
                                 const std::string& to_iface) {
  connections_.push_back(Connection{conn_name, from, from_iface, to,
                                    to_iface, ConnKind::kEvent, 0, -1});
}

void CamkesSystem::connect_dataport(const std::string& conn_name,
                                    const std::string& from,
                                    const std::string& from_iface,
                                    const std::string& to,
                                    const std::string& to_iface) {
  connections_.push_back(Connection{conn_name, from, from_iface, to,
                                    to_iface, ConnKind::kDataport, 0, -1});
}

void CamkesSystem::load_compiled_system(
    const aadl::CompiledSystem& sys,
    const std::map<std::string, std::function<void(Runtime&)>>& bodies,
    const std::map<std::string, int>& priorities) {
  for (const auto& inst : sys.instances) {
    const auto body_it = bodies.find(inst.name);
    std::function<void(Runtime&)> body =
        body_it != bodies.end() ? body_it->second : [](Runtime&) {};
    const auto pr_it = priorities.find(inst.name);
    add_component(inst.name, std::move(body),
                  pr_it != priorities.end()
                      ? pr_it->second
                      : sim::Machine::kDefaultPriority);
  }
  for (const auto& conn : sys.connections) {
    switch (conn.kind) {
      case aadl::PortKind::kEventData:
        connect(conn.name, conn.src, conn.src_port, conn.dst,
                conn.dst_port);
        break;
      case aadl::PortKind::kEvent:
        connect_event(conn.name, conn.src, conn.src_port, conn.dst,
                      conn.dst_port);
        break;
      case aadl::PortKind::kData:
        connect_dataport(conn.name, conn.src, conn.src_port, conn.dst,
                         conn.dst_port);
        break;
    }
  }
}

void CamkesSystem::instantiate() {
  assert(!instantiated_);
  instantiated_ = true;

  // Assign badges and compute the CapDL spec deterministically up front;
  // the bootstrap then realises exactly this plan. The slot-assignment
  // traversal here and in bootstrap() must match exactly — the
  // verification pass would catch any drift.
  std::uint64_t next_badge = 1;
  for (auto& conn : connections_) conn.badge = next_badge++;

  for (auto& comp : components_) {
    for (const auto& conn : connections_) {
      if (conn.kind == ConnKind::kRpc && conn.to == comp.name) {
        comp.is_server = true;
      }
    }
    if (comp.is_server) {
      capdl_.objects.push_back("ep_" + comp.name + " = ep");
    }
    capdl_.objects.push_back("tcb_" + comp.name + " = tcb");
    capdl_.objects.push_back("cnode_" + comp.name + " = cnode");
  }
  for (const auto& conn : connections_) {
    if (conn.kind == ConnKind::kEvent) {
      capdl_.objects.push_back("ntfn_" + conn.name + " = notification");
    } else if (conn.kind == ConnKind::kDataport) {
      capdl_.objects.push_back("frame_" + conn.name + " = frame (4k)");
    }
  }
  for (auto& comp : components_) {
    if (comp.is_server) {
      capdl_.placements.push_back(
          {comp.name, 2, "ep_" + comp.name, true, false, false, 0});
    }
    int next_slot = 3;
    for (const auto& conn : connections_) {
      if (conn.kind == ConnKind::kRpc && conn.from == comp.name) {
        capdl_.placements.push_back({comp.name, next_slot++,
                                     "ep_" + conn.to, false, true, true,
                                     conn.badge});
      } else if (conn.kind == ConnKind::kEvent && conn.from == comp.name) {
        capdl_.placements.push_back({comp.name, next_slot++,
                                     "ntfn_" + conn.name, false, true,
                                     false, conn.badge});
      } else if (conn.kind == ConnKind::kEvent && conn.to == comp.name) {
        capdl_.placements.push_back({comp.name, next_slot++,
                                     "ntfn_" + conn.name, true, false,
                                     false, 0});
      } else if (conn.kind == ConnKind::kDataport &&
                 conn.from == comp.name) {
        capdl_.placements.push_back({comp.name, next_slot++,
                                     "frame_" + conn.name, true, true,
                                     false, 0});
      } else if (conn.kind == ConnKind::kDataport && conn.to == comp.name) {
        capdl_.placements.push_back({comp.name, next_slot++,
                                     "frame_" + conn.name, true, false,
                                     false, 0});
      }
    }
  }

  // The bootstrap runs as the seL4 root server at the highest priority so
  // capability distribution completes before any component executes.
  kernel_.boot_root([this] { bootstrap(); }, /*priority=*/0);
}

void CamkesSystem::bootstrap() {
  auto& k = kernel_;
  int next = 10;

  for (auto& comp : components_) {
    if (comp.is_server) {
      comp.ep_slot = next++;
      const Sel4Error r =
          k.retype(sel4::Sel4Kernel::kRootUntypedSlot, ObjType::kEndpoint,
                   comp.ep_slot);
      assert(r == Sel4Error::kOk);
      (void)r;
    }
  }
  for (auto& conn : connections_) {
    if (conn.kind == ConnKind::kEvent) {
      conn.root_slot = next++;
      const Sel4Error r = k.retype(sel4::Sel4Kernel::kRootUntypedSlot,
                                   ObjType::kNotification, conn.root_slot);
      assert(r == Sel4Error::kOk);
      (void)r;
    } else if (conn.kind == ConnKind::kDataport) {
      conn.root_slot = next++;
      const Sel4Error r = k.retype(sel4::Sel4Kernel::kRootUntypedSlot,
                                   ObjType::kFrame, conn.root_slot);
      assert(r == Sel4Error::kOk);
      (void)r;
    }
  }
  for (auto& comp : components_) {
    comp.tcb_slot = next++;
    comp.cnode_slot = next++;
    Runtime* rt = comp.runtime.get();
    auto body = comp.body;
    const Sel4Error r = k.create_thread(
        sel4::Sel4Kernel::kRootUntypedSlot, comp.name,
        [rt, body] { body(*rt); }, comp.priority, comp.tcb_slot,
        comp.cnode_slot);
    assert(r == Sel4Error::kOk);
    (void)r;
  }

  for (auto& comp : components_) {
    install_component_caps(comp);
  }

  // Machine-verify the distribution against the CapDL spec before
  // releasing the components (formally verified initialisation, [14]).
  verified_ = true;
  for (const auto& p : capdl_.placements) {
    const Component* comp = nullptr;
    for (const auto& c : components_) {
      if (c.name == p.component) comp = &c;
    }
    sel4::Sel4Kernel::CapInfo info;
    if (comp == nullptr ||
        k.cnode_inspect(comp->cnode_slot, p.slot, info) != Sel4Error::kOk ||
        !info.present || info.rights.read != p.read ||
        info.rights.write != p.write || info.rights.grant != p.grant ||
        info.badge != p.badge) {
      verified_ = false;
    }
  }
  machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kSecurity,
                        verified_ ? "capdl.verified" : "capdl.mismatch",
                        "bootstrap capability distribution check");

  for (auto& comp : components_) {
    const Sel4Error r = k.tcb_resume(comp.tcb_slot);
    assert(r == Sel4Error::kOk);
    (void)r;
  }

  // Restart-from-spec monitor: the root server keeps running, watching
  // every component's TCB. A dead component is rebuilt in place from the
  // same deterministic cap-distribution plan the bootstrap used.
  if (restart_enabled_) {
    for (;;) {
      machine_.sleep_for(restart_period_);
      for (auto& comp : components_) {
        if (!kernel_.tcb_alive(comp.tcb_slot)) restart_component(comp);
      }
    }
  }
}

void CamkesSystem::install_component_caps(Component& comp) {
  auto& k = kernel_;
  Runtime& rt = *comp.runtime;
  rt.name_ = comp.name;
  rt.kernel_ = &kernel_;
  if (comp.is_server) {
    const Sel4Error r = k.cnode_copy_into(comp.cnode_slot, comp.ep_slot,
                                          2, CapRights::r());
    assert(r == Sel4Error::kOk);
    (void)r;
    rt.serve_slot = 2;
  }
  int next_child_slot = 3;
  for (const auto& conn : connections_) {
    if (conn.kind == ConnKind::kRpc && conn.from == comp.name) {
      Component* target = nullptr;
      for (auto& c : components_) {
        if (c.name == conn.to) target = &c;
      }
      assert(target != nullptr && target->ep_slot >= 0);
      const int slot = next_child_slot++;
      const Sel4Error r =
          k.cnode_copy_into(comp.cnode_slot, target->ep_slot, slot,
                            CapRights::wg(), conn.badge);
      assert(r == Sel4Error::kOk);
      (void)r;
      rt.uses_[conn.from_iface] =
          Runtime::ConnInfo{conn.from_iface, conn.to, conn.badge, slot};
    } else if (conn.kind == ConnKind::kEvent && conn.from == comp.name) {
      const int slot = next_child_slot++;
      const Sel4Error r =
          k.cnode_copy_into(comp.cnode_slot, conn.root_slot, slot,
                            CapRights::w(), conn.badge);
      assert(r == Sel4Error::kOk);
      (void)r;
      rt.events_out_[conn.from_iface] = slot;
    } else if (conn.kind == ConnKind::kEvent && conn.to == comp.name) {
      const int slot = next_child_slot++;
      const Sel4Error r = k.cnode_copy_into(comp.cnode_slot,
                                            conn.root_slot, slot,
                                            CapRights::r());
      assert(r == Sel4Error::kOk);
      (void)r;
      rt.events_in_[conn.to_iface] = slot;
    } else if (conn.kind == ConnKind::kDataport &&
               conn.from == comp.name) {
      const int slot = next_child_slot++;
      const Sel4Error r = k.cnode_copy_into(comp.cnode_slot,
                                            conn.root_slot, slot,
                                            CapRights::rw());
      assert(r == Sel4Error::kOk);
      (void)r;
      rt.dataports_[conn.from_iface] = slot;
    } else if (conn.kind == ConnKind::kDataport && conn.to == comp.name) {
      const int slot = next_child_slot++;
      const Sel4Error r = k.cnode_copy_into(comp.cnode_slot,
                                            conn.root_slot, slot,
                                            CapRights::r());
      assert(r == Sel4Error::kOk);
      (void)r;
      rt.dataports_[conn.to_iface] = slot;
    }
    if (conn.kind == ConnKind::kRpc && conn.to == comp.name) {
      rt.serves_[conn.badge] =
          Runtime::ConnInfo{conn.to_iface, conn.from, conn.badge, -1};
    }
  }
}

void CamkesSystem::enable_restart(sim::Duration check_period) {
  assert(!instantiated_ && "enable_restart must precede instantiate()");
  restart_enabled_ = true;
  restart_period_ = check_period;
}

void CamkesSystem::restart_component(Component& comp) {
  auto& k = kernel_;
  machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kProcess,
                        "camkes.death_noticed", comp.name);
  // Drop the root's caps to the dead TCB and CSpace, then rebuild into
  // the SAME slots so the deterministic cap-distribution walk (and the
  // Runtime's slot maps) stay valid. The server endpoint object is
  // untouched — clients' badged caps keep working across the restart.
  k.cnode_delete(comp.tcb_slot);
  k.cnode_delete(comp.cnode_slot);
  Runtime& rt = *comp.runtime;
  rt.uses_.clear();
  rt.serves_.clear();
  rt.events_out_.clear();
  rt.events_in_.clear();
  rt.dataports_.clear();
  rt.serve_slot = -1;
  Runtime* rtp = comp.runtime.get();
  auto body = comp.body;
  const Sel4Error r = k.create_thread(
      sel4::Sel4Kernel::kRootUntypedSlot, comp.name,
      [rtp, body] { body(*rtp); }, comp.priority, comp.tcb_slot,
      comp.cnode_slot);
  if (r != Sel4Error::kOk) {
    machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kProcess,
                          "camkes.restart_fail", comp.name);
    return;
  }
  install_component_caps(comp);
  k.tcb_resume(comp.tcb_slot);
  ++restarts_;
  machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kProcess,
                        "camkes.restart", comp.name);
}

bool CamkesSystem::verify_distribution() const { return verified_; }

}  // namespace mkbas::camkes
