#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aadl/compile.hpp"
#include "sel4/kernel.hpp"
#include "sim/machine.hpp"

namespace mkbas::camkes {

/// CAmkES connector families (§III.D / §IV.B: "data ports and RPC
/// connections are allowed in both" AADL and CAmkES).
enum class ConnKind {
  kRpc,       // seL4RPCCall: Call/Reply over a badged endpoint
  kEvent,     // seL4Notification: signal/wait
  kDataport,  // seL4SharedData: a shared frame, writer RW / reader R
};

/// Runtime ("glue code") handed to every component body. This is what
/// CAmkES generates from the assembly description: RPC stubs that hide
/// capabilities and slots from the component developer (§III.D).
class Runtime {
 public:
  /// Client side of a seL4RPCCall connection: invoke the remote procedure
  /// through the `uses` interface. Blocks until the server replies.
  sel4::Sel4Error rpc_call(const std::string& iface, sel4::Sel4Msg& inout);

  /// Non-blocking event-style send on a uses interface (drops when the
  /// server is not waiting).
  sel4::Sel4Error rpc_send_nb(const std::string& iface,
                              const sel4::Sel4Msg& msg);

  /// Server side: wait for the next incoming call on any provided
  /// interface of this component.
  struct Incoming {
    sel4::Sel4Error status = sel4::Sel4Error::kOk;
    std::string iface;          // which provides interface was invoked
    std::string from;           // peer component (from the connection spec)
    sel4::Sel4Msg msg;
  };
  Incoming await();
  Incoming await_nb();

  /// Reply to the call most recently returned by await().
  sel4::Sel4Error reply(const sel4::Sel4Msg& msg);

  /// Event connector: raise the event on an outgoing `emits` interface.
  sel4::Sel4Error emit(const std::string& iface);
  /// Block until the event on a `consumes` interface fires.
  sel4::Sel4Error wait_event(const std::string& iface,
                             std::uint64_t* bits = nullptr);

  /// Dataport connector: write into / read from the shared frame.
  sel4::Sel4Error dataport_write(const std::string& iface,
                                 std::size_t offset, const void* src,
                                 std::size_t len);
  sel4::Sel4Error dataport_read(const std::string& iface, std::size_t offset,
                                void* dst, std::size_t len);

  const std::string& name() const { return name_; }
  sel4::Sel4Kernel& kernel() { return *kernel_; }
  sim::Machine& machine() { return kernel_->machine(); }

  /// Attack-surface introspection: the slots this component can reach.
  std::vector<int> enumerate_own_caps();

 private:
  friend class CamkesSystem;

  struct ConnInfo {
    std::string iface;
    std::string peer;
    std::uint64_t badge = 0;  // badge the peer's calls carry (server side)
    int slot = -1;            // slot of the send cap (client side)
  };

  std::string name_;
  sel4::Sel4Kernel* kernel_ = nullptr;
  int serve_slot = -1;                       // receive cap (servers only)
  std::map<std::string, ConnInfo> uses_;     // iface -> client info
  std::map<std::uint64_t, ConnInfo> serves_; // badge -> server info
  std::map<std::string, int> events_out_;    // emits iface -> slot
  std::map<std::string, int> events_in_;     // consumes iface -> slot
  std::map<std::string, int> dataports_;     // dataport iface -> slot
};

/// CapDL-style record of the capability distribution the bootstrap will
/// establish; attackers in §IV.D.3 are assumed to know this file, and
/// tests verify the live system matches it.
struct CapDlSpec {
  struct Placement {
    std::string component;
    int slot;
    std::string object;  // "ep_<connection>"
    bool read = false, write = false, grant = false;
    std::uint64_t badge = 0;
  };
  std::vector<std::string> objects;
  std::vector<Placement> placements;

  std::string to_text() const;
};

/// A CAmkES assembly: components plus seL4RPCCall connections, executed on
/// the seL4 personality via a generated bootstrap process.
///
/// Implementation strategy: one endpoint per server component shared by
/// all of its provided interfaces; each client connection gets a badged
/// (write+grant) capability to that endpoint, so the server demultiplexes
/// by badge. The bootstrap (the moral equivalent of the CapDL-generated
/// initialiser [13,14]) retypes all objects, installs exactly the caps in
/// the CapDlSpec, and resumes the components.
class CamkesSystem {
 public:
  explicit CamkesSystem(sim::Machine& machine);

  /// Components' bodies reference this object's runtimes; tear the
  /// machine down before any member is released.
  ~CamkesSystem() { machine_.shutdown(); }

  CamkesSystem(const CamkesSystem&) = delete;
  CamkesSystem& operator=(const CamkesSystem&) = delete;

  /// Define a component. The body runs once the system is instantiated.
  void add_component(const std::string& name,
                     std::function<void(Runtime&)> body,
                     int priority = sim::Machine::kDefaultPriority);

  /// Declare a seL4RPCCall connection from `from.from_iface` (uses) to
  /// `to.to_iface` (provides).
  void connect(const std::string& conn_name, const std::string& from,
               const std::string& from_iface, const std::string& to,
               const std::string& to_iface);

  /// Declare a seL4Notification connection (emits -> consumes).
  void connect_event(const std::string& conn_name, const std::string& from,
                     const std::string& from_iface, const std::string& to,
                     const std::string& to_iface);

  /// Declare a seL4SharedData connection: `from` maps the frame
  /// read-write, `to` read-only (one-directional dataport).
  void connect_dataport(const std::string& conn_name, const std::string& from,
                        const std::string& from_iface, const std::string& to,
                        const std::string& to_iface);

  /// Populate components/connections from a compiled AADL system, mapping
  /// instance names to bodies (the manual translation step of §IV.B,
  /// automated).
  void load_compiled_system(
      const aadl::CompiledSystem& sys,
      const std::map<std::string, std::function<void(Runtime&)>>& bodies,
      const std::map<std::string, int>& priorities = {});

  /// Build the CapDL spec and run the bootstrap. Components start running.
  void instantiate();

  /// Restart-from-spec (the CAmkES equivalent of MINIX's reincarnation
  /// server, CompartOS-style compartment recovery): after instantiate()
  /// the root server stays alive, polls every component's TCB each
  /// `check_period`, and rebuilds dead ones — same slots, same CSpace
  /// contents, re-derived from the CapDL spec. Must be called BEFORE
  /// instantiate(). Server endpoints survive the restart, so client caps
  /// (and their badges) remain valid; the reborn component gets exactly
  /// its original authority, nothing more.
  void enable_restart(sim::Duration check_period = sim::msec(200));
  bool restart_enabled() const { return restart_enabled_; }
  int restarts() const { return restarts_; }

  const CapDlSpec& capdl() const { return capdl_; }
  sel4::Sel4Kernel& kernel() { return kernel_; }
  sim::Machine& machine() { return machine_; }

  /// Post-boot check that every component's CSpace holds exactly the caps
  /// the CapDL spec names (formally verified initialisation, modelled).
  bool verify_distribution() const;

 private:
  struct Component {
    std::string name;
    std::function<void(Runtime&)> body;
    int priority;
    std::shared_ptr<Runtime> runtime;
    int tcb_slot = -1;    // in the root server's CSpace
    int cnode_slot = -1;
    int ep_slot = -1;     // root's cap to this component's endpoint
    bool is_server = false;
  };
  struct Connection {
    std::string name;
    std::string from, from_iface;
    std::string to, to_iface;
    ConnKind kind = ConnKind::kRpc;
    std::uint64_t badge = 0;
    int root_slot = -1;  // where the backing object's cap lives in root
  };

  void bootstrap();  // runs inside the seL4 root server
  /// Populate one component's CSpace (and its Runtime slot maps) from the
  /// connection list — shared by the initial bootstrap and restarts.
  void install_component_caps(Component& comp);
  /// Tear down and re-create a dead component in its original slots.
  void restart_component(Component& comp);

  sim::Machine& machine_;
  sel4::Sel4Kernel kernel_;
  std::vector<Component> components_;
  std::vector<Connection> connections_;
  CapDlSpec capdl_;
  bool instantiated_ = false;
  bool verified_ = false;
  bool restart_enabled_ = false;
  sim::Duration restart_period_ = sim::msec(200);
  int restarts_ = 0;
};

}  // namespace mkbas::camkes
