#include "physics/room.hpp"

#include <algorithm>
#include <cmath>

namespace mkbas::physics {

void RoomModel::step(sim::Duration dt, double heater_w, sim::Time now) {
  if (dt <= 0) return;
  double remaining = sim::to_seconds(dt);
  // Stability bound for forward Euler: h < 2*C/k. Stay well inside it.
  const double max_h =
      std::max(0.01, 0.1 * params_.capacitance_j_per_k / params_.loss_w_per_k);
  // The profile is a pure function of `now`, which is constant across the
  // sub-steps — evaluate once.
  const double t_out = outdoor_temp_c(now);
  while (remaining > 0.0) {
    const double h = std::min(remaining, max_h);
    const double dq = -params_.loss_w_per_k * (temp_c_ - t_out) + heater_w +
                      disturbance_w_;
    temp_c_ += h * dq / params_.capacitance_j_per_k;
    remaining -= h;
  }
}

RoomModel::OutdoorProfile constant_outdoor(double temp_c) {
  return make_profile(OutdoorSpec::constant(temp_c));
}

RoomModel::OutdoorProfile diurnal_outdoor(double mean_c, double swing_c) {
  return make_profile(OutdoorSpec::diurnal(mean_c, swing_c));
}

RoomModel::OutdoorProfile make_profile(OutdoorSpec spec) {
  return [spec](sim::Time t) { return spec.eval(t); };
}

std::size_t RoomBank::add(const RoomModel::Params& params,
                          OutdoorSpec outdoor) {
  cap_.push_back(params.capacitance_j_per_k);
  loss_.push_back(params.loss_w_per_k);
  temp_.push_back(params.initial_temp_c);
  heater_.push_back(0.0);
  disturbance_.push_back(0.0);
  // Same bound, computed the same way, as the scalar step.
  const double max_h = std::max(
      0.01, 0.1 * params.capacitance_j_per_k / params.loss_w_per_k);
  max_h_.push_back(max_h);
  min_max_h_ = min_max_h_ == 0.0 ? max_h : std::min(min_max_h_, max_h);
  outdoor_.push_back(outdoor);
  tout_.push_back(0.0);
  return temp_.size() - 1;
}

void RoomBank::step_all(sim::Duration dt, sim::Time now) {
  if (dt <= 0) return;
  const std::size_t n = temp_.size();
  if (n == 0) return;
  const double seconds = sim::to_seconds(dt);

  // Profile evaluation is hoisted out of the numeric loop either way:
  // it's the only part with a branch (and, for diurnal, a libm call).
  for (std::size_t i = 0; i < n; ++i) tout_[i] = outdoor_[i].eval(now);

  if (seconds <= min_max_h_) {
    // Every room absorbs dt in a single Euler sub-step (the normal
    // control tick): one flat pass over the arrays, no branches, which
    // the compiler vectorises. h == std::min(seconds, max_h) == seconds
    // for every room, so this is bit-identical to the general path.
    const double* __restrict cap = cap_.data();
    const double* __restrict loss = loss_.data();
    const double* __restrict heat = heater_.data();
    const double* __restrict dist = disturbance_.data();
    const double* __restrict tout = tout_.data();
    double* __restrict temp = temp_.data();
    for (std::size_t i = 0; i < n; ++i) {
      const double dq = -loss[i] * (temp[i] - tout[i]) + heat[i] + dist[i];
      temp[i] += seconds * dq / cap[i];
    }
    return;
  }

  // Large step: per-room sub-step loop, identical to RoomModel::step.
  for (std::size_t i = 0; i < n; ++i) {
    double remaining = seconds;
    const double max_h = max_h_[i];
    const double t_out = tout_[i];
    double t = temp_[i];
    while (remaining > 0.0) {
      const double h = std::min(remaining, max_h);
      const double dq = -loss_[i] * (t - t_out) + heater_[i] + disturbance_[i];
      t += h * dq / cap_[i];
      remaining -= h;
    }
    temp_[i] = t;
  }
}

}  // namespace mkbas::physics
