#include "physics/room.hpp"

#include <algorithm>
#include <cmath>

namespace mkbas::physics {

void RoomModel::step(sim::Duration dt, double heater_w, sim::Time now) {
  if (dt <= 0) return;
  double remaining = sim::to_seconds(dt);
  // Stability bound for forward Euler: h < 2*C/k. Stay well inside it.
  const double max_h =
      std::max(0.01, 0.1 * params_.capacitance_j_per_k / params_.loss_w_per_k);
  while (remaining > 0.0) {
    const double h = std::min(remaining, max_h);
    const double t_out = outdoor_temp_c(now);
    const double dq = -params_.loss_w_per_k * (temp_c_ - t_out) + heater_w +
                      disturbance_w_;
    temp_c_ += h * dq / params_.capacitance_j_per_k;
    remaining -= h;
  }
}

RoomModel::OutdoorProfile constant_outdoor(double temp_c) {
  return [temp_c](sim::Time) { return temp_c; };
}

RoomModel::OutdoorProfile diurnal_outdoor(double mean_c, double swing_c) {
  return [mean_c, swing_c](sim::Time t) {
    constexpr double kDay = 24.0 * 3600.0;
    const double phase = 2.0 * 3.14159265358979323846 *
                         std::fmod(sim::to_seconds(t), kDay) / kDay;
    return mean_c + swing_c * std::sin(phase);
  };
}

}  // namespace mkbas::physics
