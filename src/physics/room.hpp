#pragma once

#include <functional>

#include "sim/time.hpp"

namespace mkbas::physics {

/// First-order lumped thermal model of a single room.
///
///   C * dT/dt = -k * (T - T_out(t)) + q_heater + q_disturbance
///
/// where C is the thermal capacitance [J/K], k the envelope loss
/// coefficient [W/K], q_heater the actuator's heat input [W] and
/// q_disturbance any injected load (occupants, a manually heated testbed,
/// an opened window modelled as negative watts).
///
/// The paper's testbed manually heated a BMP180 sensor next to a fan; this
/// model is the standard simulation equivalent: it exposes the same
/// cause-and-effect the attacks must influence (actuator state changes the
/// measured temperature over time).
class RoomModel {
 public:
  struct Params {
    double capacitance_j_per_k = 2.0e5;  // ~ a small, well-sealed room
    double loss_w_per_k = 80.0;
    double initial_temp_c = 18.0;
  };

  /// Returns the outdoor temperature [C] at a simulated time.
  using OutdoorProfile = std::function<double(sim::Time)>;

  RoomModel() : RoomModel(Params{}) {}
  explicit RoomModel(Params params)
      : params_(params), temp_c_(params.initial_temp_c) {}

  /// Advance the model by `dt` of simulated time with the given heat
  /// inputs. Uses forward Euler with internal sub-steps small enough to be
  /// stable for any plausible dt.
  void step(sim::Duration dt, double heater_w, sim::Time now);

  double temperature_c() const { return temp_c_; }
  void set_temperature_c(double t) { temp_c_ = t; }

  /// Persistent extra thermal load [W]; positive heats, negative cools.
  void set_disturbance_w(double w) { disturbance_w_ = w; }
  double disturbance_w() const { return disturbance_w_; }

  void set_outdoor_profile(OutdoorProfile p) { outdoor_ = std::move(p); }
  double outdoor_temp_c(sim::Time now) const {
    return outdoor_ ? outdoor_(now) : 10.0;
  }

  /// Steady-state temperature for a constant heater input (useful for
  /// tests: where the plant settles if nothing changes).
  double steady_state_c(double heater_w, sim::Time now) const {
    return outdoor_temp_c(now) +
           (heater_w + disturbance_w_) / params_.loss_w_per_k;
  }

  const Params& params() const { return params_; }

 private:
  Params params_;
  double temp_c_;
  double disturbance_w_ = 0.0;
  OutdoorProfile outdoor_;
};

/// Constant outdoor temperature profile.
RoomModel::OutdoorProfile constant_outdoor(double temp_c);

/// Sinusoidal diurnal profile: mean +/- swing over a 24h simulated period.
RoomModel::OutdoorProfile diurnal_outdoor(double mean_c, double swing_c);

}  // namespace mkbas::physics
