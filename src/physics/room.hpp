#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.hpp"

namespace mkbas::physics {

/// Outdoor-temperature profile as plain data, evaluated inline. The two
/// shapes every scenario uses — constant and sinusoidal diurnal — fit in
/// three words, so the per-sub-step evaluation inside the thermal model
/// is a branch and some arithmetic instead of a std::function indirect
/// call (which also blocked vectorising the batched RoomBank step).
/// Arbitrary profiles still exist through the std::function adapter on
/// RoomModel (set_outdoor_profile / make_profile).
struct OutdoorSpec {
  enum class Kind : std::uint8_t { kConstant, kDiurnal };

  Kind kind = Kind::kConstant;
  double mean_c = 10.0;  // constant value, or diurnal mean
  double swing_c = 0.0;  // diurnal half-amplitude

  double eval(sim::Time t) const {
    if (kind == Kind::kConstant) return mean_c;
    constexpr double kDay = 24.0 * 3600.0;
    const double phase = 2.0 * 3.14159265358979323846 *
                         std::fmod(sim::to_seconds(t), kDay) / kDay;
    return mean_c + swing_c * std::sin(phase);
  }

  static OutdoorSpec constant(double temp_c) {
    return {Kind::kConstant, temp_c, 0.0};
  }
  static OutdoorSpec diurnal(double mean_c, double swing_c) {
    return {Kind::kDiurnal, mean_c, swing_c};
  }
};

/// First-order lumped thermal model of a single room.
///
///   C * dT/dt = -k * (T - T_out(t)) + q_heater + q_disturbance
///
/// where C is the thermal capacitance [J/K], k the envelope loss
/// coefficient [W/K], q_heater the actuator's heat input [W] and
/// q_disturbance any injected load (occupants, a manually heated testbed,
/// an opened window modelled as negative watts).
///
/// The paper's testbed manually heated a BMP180 sensor next to a fan; this
/// model is the standard simulation equivalent: it exposes the same
/// cause-and-effect the attacks must influence (actuator state changes the
/// measured temperature over time).
class RoomModel {
 public:
  struct Params {
    double capacitance_j_per_k = 2.0e5;  // ~ a small, well-sealed room
    double loss_w_per_k = 80.0;
    double initial_temp_c = 18.0;
  };

  /// Returns the outdoor temperature [C] at a simulated time. Legacy
  /// adapter type: custom profiles only — the built-in shapes are
  /// OutdoorSpec, evaluated without the indirect call.
  using OutdoorProfile = std::function<double(sim::Time)>;

  RoomModel() : RoomModel(Params{}) {}
  explicit RoomModel(Params params)
      : params_(params), temp_c_(params.initial_temp_c) {}

  /// Advance the model by `dt` of simulated time with the given heat
  /// inputs. Uses forward Euler with internal sub-steps small enough to be
  /// stable for any plausible dt.
  void step(sim::Duration dt, double heater_w, sim::Time now);

  double temperature_c() const { return temp_c_; }
  void set_temperature_c(double t) { temp_c_ = t; }

  /// Persistent extra thermal load [W]; positive heats, negative cools.
  void set_disturbance_w(double w) { disturbance_w_ = w; }
  double disturbance_w() const { return disturbance_w_; }

  /// Use a plain-data outdoor profile (the fast path). Clears any custom
  /// std::function profile.
  void set_outdoor(OutdoorSpec spec) {
    outdoor_spec_ = spec;
    outdoor_custom_ = nullptr;
  }
  const OutdoorSpec& outdoor_spec() const { return outdoor_spec_; }

  /// Adapter for arbitrary profiles. An empty function falls back to the
  /// current OutdoorSpec (default: constant 10 C, as always).
  void set_outdoor_profile(OutdoorProfile p) { outdoor_custom_ = std::move(p); }

  double outdoor_temp_c(sim::Time now) const {
    return outdoor_custom_ ? outdoor_custom_(now) : outdoor_spec_.eval(now);
  }

  /// Steady-state temperature for a constant heater input (useful for
  /// tests: where the plant settles if nothing changes).
  double steady_state_c(double heater_w, sim::Time now) const {
    return outdoor_temp_c(now) +
           (heater_w + disturbance_w_) / params_.loss_w_per_k;
  }

  const Params& params() const { return params_; }

 private:
  Params params_;
  double temp_c_;
  double disturbance_w_ = 0.0;
  OutdoorSpec outdoor_spec_{};     // default: constant 10 C
  OutdoorProfile outdoor_custom_;  // overrides the spec when non-empty
};

/// Constant outdoor temperature profile (std::function adapter over
/// OutdoorSpec, for call sites that want the legacy interface).
RoomModel::OutdoorProfile constant_outdoor(double temp_c);

/// Sinusoidal diurnal profile: mean +/- swing over a 24h simulated period.
RoomModel::OutdoorProfile diurnal_outdoor(double mean_c, double swing_c);

/// Wrap any OutdoorSpec in the legacy std::function interface.
RoomModel::OutdoorProfile make_profile(OutdoorSpec spec);

/// Struct-of-arrays batch of room thermal models, stepped in one pass.
///
/// Semantically a vector<RoomModel> with OutdoorSpec profiles: add() a
/// room with its parameters, poke per-room inputs, call step_all() once
/// per control tick. Results are bit-identical to stepping each scalar
/// RoomModel in a loop (the equivalence test sweeps dt and parameters),
/// but the state lives in parallel arrays — when every room can take the
/// whole dt in one Euler sub-step (the common control-tick case), the
/// update is a single flat loop over doubles the compiler can vectorise,
/// with no per-room indirect call and no allocation.
class RoomBank {
 public:
  /// Append a room; returns its index.
  std::size_t add(const RoomModel::Params& params, OutdoorSpec outdoor = {});

  std::size_t size() const { return temp_.size(); }

  double temperature_c(std::size_t i) const { return temp_[i]; }
  void set_temperature_c(std::size_t i, double t) { temp_[i] = t; }
  void set_heater_w(std::size_t i, double w) { heater_[i] = w; }
  double heater_w(std::size_t i) const { return heater_[i]; }
  void set_disturbance_w(std::size_t i, double w) { disturbance_[i] = w; }
  double disturbance_w(std::size_t i) const { return disturbance_[i]; }
  void set_outdoor(std::size_t i, OutdoorSpec spec) { outdoor_[i] = spec; }

  /// Advance every room by `dt` with its current heater/disturbance
  /// inputs. Same sub-stepped forward Euler as RoomModel::step.
  void step_all(sim::Duration dt, sim::Time now);

 private:
  std::vector<double> cap_;          // capacitance_j_per_k
  std::vector<double> loss_;         // loss_w_per_k
  std::vector<double> temp_;         // current temperature [C]
  std::vector<double> heater_;       // heater input [W]
  std::vector<double> disturbance_;  // extra load [W]
  std::vector<double> max_h_;        // per-room Euler stability bound [s]
  std::vector<OutdoorSpec> outdoor_;
  std::vector<double> tout_;  // scratch: outdoor temp this step
  double min_max_h_ = 0.0;    // min over max_h_ (0 when empty)
};

}  // namespace mkbas::physics
