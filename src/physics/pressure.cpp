#include "physics/pressure.hpp"

#include <algorithm>

namespace mkbas::physics {

void ContainmentModel::step(sim::Duration dt, double fan_speed,
                            bool inner_door_open, bool outer_door_open) {
  if (dt <= 0) return;
  fan_speed = std::clamp(fan_speed, 0.0, 1.0);
  double remaining = sim::to_seconds(dt);
  const double max_h = 0.2;  // stability for the stiff door-open case
  while (remaining > 0.0) {
    const double h = std::min(remaining, max_h);

    const double exhaust = params_.exhaust_max_flow * fan_speed;
    // Lab <-> anteroom coupling through the inner door.
    const double inner_coeff =
        inner_door_open ? params_.door_coeff : params_.leak_coeff;
    const double q_inner = inner_coeff * (ante_pa_ - lab_pa_);
    // Anteroom <-> corridor (pressure 0) through the outer door.
    const double outer_coeff =
        outer_door_open ? params_.door_coeff : params_.leak_coeff;
    const double q_outer = outer_coeff * (0.0 - ante_pa_);
    // Lab <-> corridor direct envelope leakage.
    const double q_lab_leak = params_.leak_coeff * (0.0 - lab_pa_);

    const double d_lab = params_.supply_flow - exhaust + q_inner +
                         q_lab_leak + fault_inflow_;
    const double d_ante = q_outer - q_inner;

    lab_pa_ += h * d_lab * params_.lab_capacitance / 60.0;
    ante_pa_ += h * d_ante * params_.ante_capacitance / 60.0;
    remaining -= h;
  }
}

double ContainmentModel::steady_state_lab_pa(double fan_speed) const {
  // Doors closed: 0 = supply - exhaust + k*(ante-lab) + k*(0-lab),
  //               0 = k*(0-ante) - k*(ante-lab)  =>  ante = lab/2.
  const double exhaust =
      params_.exhaust_max_flow * std::clamp(fan_speed, 0.0, 1.0);
  const double net = params_.supply_flow - exhaust + fault_inflow_;
  // net + k*(lab/2 - lab) - k*lab = 0  =>  lab = net / (1.5 k)
  return net / (1.5 * params_.leak_coeff);
}

}  // namespace mkbas::physics
