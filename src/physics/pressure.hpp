#pragma once

#include "sim/time.hpp"

namespace mkbas::physics {

/// Negative-pressure containment model for a BSL-3 suite: a lab room and
/// its anteroom, both held below corridor pressure by an exhaust fan so
/// air always flows *into* the containment zone (the core engineering
/// control of a biosafety lab).
///
/// Per-room balance (pressures relative to the corridor, in Pa):
///
///   C * dP/dt = Q_supply - Q_exhaust + Q_leak + Q_door
///
/// with leakage Q_leak = -k_leak * P (air pushes in through cracks while
/// the room is negative) and door flow a much larger version of the same
/// when a door stands open. The exhaust fan serves the lab; the anteroom
/// couples to the lab through the inner door and to the corridor through
/// the outer door.
class ContainmentModel {
 public:
  struct Params {
    double lab_capacitance = 60.0;        // Pa units per (m^3/s) balance
    double ante_capacitance = 30.0;
    double leak_coeff = 0.02;             // (m^3/s) per Pa
    double door_coeff = 0.8;              // open door: 40x the leakage
    double supply_flow = 0.5;             // m^3/s constant supply to lab
    double exhaust_max_flow = 1.4;        // m^3/s at fan speed 1.0
    double initial_lab_pa = 0.0;
    double initial_ante_pa = 0.0;
  };

  ContainmentModel() : ContainmentModel(Params{}) {}
  explicit ContainmentModel(Params p)
      : params_(p), lab_pa_(p.initial_lab_pa), ante_pa_(p.initial_ante_pa) {}

  /// Advance by `dt` given the exhaust fan speed [0,1] and door states.
  void step(sim::Duration dt, double fan_speed, bool inner_door_open,
            bool outer_door_open);

  double lab_pressure_pa() const { return lab_pa_; }
  double anteroom_pressure_pa() const { return ante_pa_; }

  /// Extra in-leakage (e.g. a filter breach or damper failure), m^3/s.
  void set_fault_inflow(double flow) { fault_inflow_ = flow; }
  double fault_inflow() const { return fault_inflow_; }

  /// Steady-state lab pressure for a constant fan speed, doors closed.
  double steady_state_lab_pa(double fan_speed) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
  double lab_pa_;
  double ante_pa_;
  double fault_inflow_ = 0.0;
};

}  // namespace mkbas::physics
