#include "attack/attacks.hpp"

#include "aadl/scenario_model.hpp"

namespace mkbas::attack {

using aadl::ScenarioMTypes;
using sel4::Sel4Msg;

const char* to_string(AttackKind k) {
  switch (k) {
    case AttackKind::kSpoofSensor:
      return "spoof-sensor-data";
    case AttackKind::kSpoofActuator:
      return "spoof-actuator-cmd";
    case AttackKind::kKillControl:
      return "kill-control-proc";
    case AttackKind::kForkBomb:
      return "fork-bomb";
    case AttackKind::kCapBruteForce:
      return "cap-brute-force";
    case AttackKind::kIpcFlood:
      return "ipc-flood";
  }
  return "?";
}

const char* to_string(Privilege p) {
  return p == Privilege::kCodeExec ? "code-exec" : "root";
}

namespace {

void trace_attack(sim::Machine& m, const std::string& what,
                  const std::string& detail) {
  m.trace().emit(m.now(), -1, sim::TraceKind::kAttack, what, detail);
}

/// Roots the attack's causal trace at the compromised web endpoint:
/// every syscall the payload makes — and every denial it provokes —
/// chains under a "web.compromised" span on the web process. finish()
/// writes the attack verdict into the audit journal under the same
/// context, so `--audit-out` reconstructs endpoint -> IPC -> denial ->
/// verdict end to end.
class AttackSpan {
 public:
  explicit AttackSpan(sim::Machine& m)
      : m_(m),
        pid_(m.current() != nullptr ? m.current()->pid() : -1),
        span_(m.spans().begin(
            pid_, m.now(),
            sim::TagRegistry::instance().intern("web.compromised"))) {}

  void finish(const AttackOutcome& out) {
    m_.audit().record(m_.now(), m_.machine_id(), pid_, "attack.verdict",
                      std::string(to_string(out.kind)) +
                          (out.primitive_succeeded ? " SUCCEEDED: "
                                                   : " blocked: ") +
                          out.detail,
                      m_.spans(), m_.spans().current(pid_));
    m_.spans().end(pid_, m_.now(), span_);
  }

 private:
  sim::Machine& m_;
  int pid_;
  std::uint64_t span_;
};

}  // namespace

// ---- MINIX 3 ----

std::function<void(bas::MinixScenario&)> minix_attack(AttackKind kind,
                                                      Privilege priv,
                                                      AttackOutcome* out) {
  out->kind = kind;
  out->privilege = priv;
  // MINIX note (§IV.D.2): "user privilege is not directly tied with
  // access control and IPC", so kRoot changes nothing on this platform —
  // the same hook runs and the same checks apply.
  return [kind, out](bas::MinixScenario& sc) {
    auto& k = sc.kernel();
    auto& m = sc.machine();
    out->attempted = true;
    AttackSpan aspan(m);
    const minix::Endpoint ctl = sc.endpoint_of("tempProc");
    const minix::Endpoint heater = sc.endpoint_of("heaterActProc");
    const minix::Endpoint alarm = sc.endpoint_of("alarmProc");

    switch (kind) {
      case AttackKind::kSpoofSensor: {
        const sim::Time until = m.now() + kInjectionDuration;
        while (m.now() < until) {
          minix::Message msg;
          msg.m_type = ScenarioMTypes::kSensorData;
          // Forge the kernel-stamped source field too — it is ignored.
          msg.m_source = sc.endpoint_of("tempSensProc").raw();
          msg.put_f64(0, 5.0);  // "the room is freezing": force heating
          ++out->attempts;
          if (k.ipc_sendnb(ctl, msg) == minix::IpcResult::kOk) {
            ++out->successes;
            out->primitive_succeeded = true;
          }
          m.sleep_for(kInjectionPeriod);
        }
        out->primitive_succeeded = out->successes > 0;
        out->detail = "sensor-data injections accepted: " +
                      std::to_string(out->successes) + "/" +
                      std::to_string(out->attempts);
        trace_attack(m, "attack.spoof_sensor", out->detail);
        break;
      }
      case AttackKind::kSpoofActuator: {
        const sim::Time until = m.now() + kInjectionDuration;
        while (m.now() < until) {
          minix::Message on;
          on.m_type = ScenarioMTypes::kActuatorCmd;
          on.put_i32(0, 1);  // heater on
          ++out->attempts;
          if (k.ipc_sendnb(heater, on) == minix::IpcResult::kOk) {
            ++out->successes;
            out->primitive_succeeded = true;
          }
          minix::Message off;
          off.m_type = ScenarioMTypes::kActuatorCmd;
          off.put_i32(0, 0);  // silence the alarm
          ++out->attempts;
          if (k.ipc_sendnb(alarm, off) == minix::IpcResult::kOk) {
            ++out->successes;
            out->primitive_succeeded = true;
          }
          m.sleep_for(kInjectionPeriod);
        }
        out->primitive_succeeded = out->successes > 0;
        out->detail = "actuator commands accepted: " +
                      std::to_string(out->successes) + "/" +
                      std::to_string(out->attempts);
        trace_attack(m, "attack.spoof_actuator", out->detail);
        break;
      }
      case AttackKind::kKillControl: {
        ++out->attempts;
        const auto r = k.pm_kill(ctl);
        out->primitive_succeeded = (r == minix::IpcResult::kOk);
        if (out->primitive_succeeded) ++out->successes;
        out->detail = std::string("pm_kill(tempProc) -> ") +
                      minix::to_string(r);
        trace_attack(m, "attack.kill", out->detail);
        break;
      }
      case AttackKind::kForkBomb: {
        for (int i = 0; i < minix::MinixKernel::kNumSlots + 16; ++i) {
          ++out->attempts;
          auto res = k.fork2("bomb", aadl::ScenarioAcIds::kWebInterface,
                             [&m] { m.sleep_for(sim::minutes(30)); });
          if (res.status != minix::IpcResult::kOk) {
            out->detail = std::string("stopped by ") +
                          minix::to_string(res.status) + " after " +
                          std::to_string(out->successes) + " forks";
            break;
          }
          ++out->successes;
        }
        // A bomb "succeeds" if it spawned enough children to matter.
        out->primitive_succeeded = out->successes > 16;
        trace_attack(m, "attack.fork_bomb", out->detail);
        break;
      }
      case AttackKind::kCapBruteForce: {
        // No capability system on MINIX; probe endpoints instead: try
        // every slot/generation nearby and see who accepts a forged
        // sensor-data message. PM is skipped: its endpoint and protocol
        // are public API the web interface already legitimately holds
        // (message type 1 to PM is a fork request, not a spoof).
        int reachable = 0;
        for (int slot = 0; slot < minix::MinixKernel::kNumSlots; ++slot) {
          for (int gen = 1; gen <= 2; ++gen) {
            const auto ep = minix::Endpoint::make(slot, gen);
            if (ep == k.pm_endpoint()) continue;
            minix::Message msg;
            msg.m_type = ScenarioMTypes::kSensorData;
            ++out->attempts;
            if (k.ipc_sendnb(ep, msg) == minix::IpcResult::kOk) {
              ++reachable;
            }
          }
        }
        out->successes = reachable;
        out->primitive_succeeded = reachable > 0;
        out->detail = "endpoints accepting forged sensor data: " +
                      std::to_string(reachable);
        trace_attack(m, "attack.endpoint_scan", out->detail);
        break;
      }
      case AttackKind::kIpcFlood: {
        // A DoS through the channel the web interface legitimately holds:
        // setpoint updates at 1 kHz. The ACM allows them all — the
        // question is whether the control loop degrades.
        const sim::Time until = m.now() + kFloodDuration;
        while (m.now() < until) {
          minix::Message msg;
          msg.m_type = ScenarioMTypes::kSetpoint;
          msg.put_f64(0, 22.0);
          ++out->attempts;
          if (k.ipc_sendnb(ctl, msg) == minix::IpcResult::kOk) {
            ++out->successes;
          }
          m.sleep_for(kFloodPeriod);
        }
        // Delivery succeeding is expected (it is an allowed edge);
        // success of the *attack* means physical disruption, which the
        // safety checker judges.
        out->primitive_succeeded = false;
        out->detail = "flood delivered " + std::to_string(out->successes) +
                      "/" + std::to_string(out->attempts) +
                      " legal setpoint msgs; control absorbed it";
        trace_attack(m, "attack.ipc_flood", out->detail);
        break;
      }
    }
    aspan.finish(*out);
  };
}

// ---- seL4 / CAmkES ----

std::function<void(bas::Sel4Scenario&, camkes::Runtime&)> sel4_attack(
    AttackKind kind, Privilege priv, AttackOutcome* out) {
  out->kind = kind;
  out->privilege = priv;
  // "the seL4 kernel and CAmkES generated code have no concept of user or
  // root" (§IV.D.3): privilege level is meaningless here by construction.
  return [kind, out](bas::Sel4Scenario& sc, camkes::Runtime& rt) {
    auto& k = sc.kernel();
    auto& m = sc.machine();
    out->attempted = true;
    AttackSpan aspan(m);

    switch (kind) {
      case AttackKind::kSpoofSensor: {
        // The web component holds caps only to its own two connections.
        // Per the CapDL file the attacker knows this; it still tries to
        // reach the sensor interface by name and by raw sends with a
        // forged label on every capability it can find.
        Sel4Msg fake;
        fake.label = 1;
        fake.push_f64(5.0);
        ++out->attempts;
        if (rt.rpc_call("sensorOut", fake) == sel4::Sel4Error::kOk) {
          ++out->successes;  // cannot happen: no such interface
        }
        const sim::Time until = m.now() + kInjectionDuration;
        while (m.now() < until) {
          for (int slot : rt.enumerate_own_caps()) {
            Sel4Msg msg;
            msg.label = 1;  // pretend to be sensor data
            msg.push_f64(5.0);
            ++out->attempts;
            // The send lands at the control process *badged as the web
            // connection*, so it is interpreted as a (range-checked)
            // setpoint/env request — never as sensor data.
            if (k.nbsend(slot, msg) == sel4::Sel4Error::kOk) {
              ++out->successes;
            }
          }
          m.sleep_for(kInjectionPeriod);
        }
        // Delivered-but-harmless sends are not sensor spoofing; the
        // primitive is judged by whether forged *sensor data* reached the
        // controller, which the safety checker confirms it did not.
        out->primitive_succeeded = false;
        out->detail = "no path to the sensor interface; " +
                      std::to_string(out->successes) +
                      " sends landed on own (badged) connections only";
        trace_attack(m, "attack.spoof_sensor", out->detail);
        break;
      }
      case AttackKind::kSpoofActuator: {
        Sel4Msg on;
        on.push(1);
        ++out->attempts;
        if (rt.rpc_call("heaterCmd", on) == sel4::Sel4Error::kOk) {
          ++out->successes;  // cannot happen: the web has no such cap
          out->primitive_succeeded = true;
        }
        out->primitive_succeeded = out->successes > 0;
        out->detail = "no capability to any actuator endpoint";
        trace_attack(m, "attack.spoof_actuator", out->detail);
        break;
      }
      case AttackKind::kKillControl: {
        // Killing requires a TCB capability; enumerate everything we hold
        // and check whether any of it is a TCB we could suspend.
        const auto caps = rt.enumerate_own_caps();
        ++out->attempts;
        out->successes = 0;
        out->primitive_succeeded = false;
        out->detail = "holds " + std::to_string(caps.size()) +
                      " caps, none of them TCBs; no kill primitive exists";
        trace_attack(m, "attack.kill", out->detail);
        break;
      }
      case AttackKind::kForkBomb: {
        // Thread creation needs an Untyped capability; the web component
        // was given none, so it cannot create so much as one thread.
        ++out->attempts;
        const auto r = k.retype(0, sel4::ObjType::kEndpoint, 20);
        out->primitive_succeeded = (r == sel4::Sel4Error::kOk);
        out->detail = std::string("retype via slot 0 -> ") +
                      sel4::to_string(r) + "; no untyped memory held";
        trace_attack(m, "attack.fork_bomb", out->detail);
        break;
      }
      case AttackKind::kCapBruteForce: {
        // §IV.D.3's brute-force program, verbatim in spirit: enumerate
        // every slot of our CSpace.
        const auto caps = rt.enumerate_own_caps();
        out->attempts = k.cspace_slots();
        out->successes = static_cast<int>(caps.size());
        // The CapDL plan gives the web exactly two caps (slots 3 and 4).
        out->primitive_succeeded = caps.size() > 2;
        std::string slots;
        for (int s : caps) slots += std::to_string(s) + " ";
        out->detail = "found " + std::to_string(caps.size()) +
                      " caps at slots: " + slots;
        trace_attack(m, "attack.bruteforce", out->detail);
        break;
      }
      case AttackKind::kIpcFlood: {
        const sim::Time until = m.now() + kFloodDuration;
        while (m.now() < until) {
          Sel4Msg msg;
          msg.push_f64(22.0);
          ++out->attempts;
          // Each call is served and replied by the control component.
          if (rt.rpc_call("setpointOut", msg) == sel4::Sel4Error::kOk) {
            ++out->successes;
          }
          m.sleep_for(kFloodPeriod);
        }
        out->primitive_succeeded = false;
        out->detail = "flood made " + std::to_string(out->successes) +
                      " legal setpoint RPCs; control absorbed it";
        trace_attack(m, "attack.ipc_flood", out->detail);
        break;
      }
    }
    aspan.finish(*out);
  };
}

// ---- Linux ----

std::function<void(bas::LinuxScenario&)> linux_attack(AttackKind kind,
                                                      Privilege priv,
                                                      AttackOutcome* out) {
  out->kind = kind;
  out->privilege = priv;
  return [kind, priv, out](bas::LinuxScenario& sc) {
    auto& k = sc.kernel();
    auto& m = sc.machine();
    out->attempted = true;
    AttackSpan aspan(m);
    if (priv == Privilege::kRoot) k.exploit_escalate_to_root();

    switch (kind) {
      case AttackKind::kSpoofSensor: {
        const int fd = k.mq_open(bas::LinuxScenario::kQSensor, false);
        if (fd < 0) {
          out->detail = "mq_open(/q_sensor) denied (EACCES)";
          out->primitive_succeeded = false;
          trace_attack(m, "attack.spoof_sensor", out->detail);
          break;
        }
        const sim::Time until = m.now() + kInjectionDuration;
        while (m.now() < until) {
          ++out->attempts;
          if (k.mq_send(fd, {bas::LinuxScenario::encode_temp(5.0), 9},
                        false) == linuxsim::Errno::kOk) {
            ++out->successes;
            out->primitive_succeeded = true;
          }
          m.sleep_for(kInjectionPeriod);
        }
        out->primitive_succeeded = out->successes > 0;
        out->detail = "fake sensor messages queued: " +
                      std::to_string(out->successes) + "/" +
                      std::to_string(out->attempts);
        trace_attack(m, "attack.spoof_sensor", out->detail);
        break;
      }
      case AttackKind::kSpoofActuator: {
        const int fd_h = k.mq_open(bas::LinuxScenario::kQHeater, false);
        const int fd_a = k.mq_open(bas::LinuxScenario::kQAlarm, false);
        if (fd_h < 0 && fd_a < 0) {
          out->detail = "mq_open on actuator queues denied";
          out->primitive_succeeded = false;
          trace_attack(m, "attack.spoof_actuator", out->detail);
          break;
        }
        const sim::Time until = m.now() + kInjectionDuration;
        while (m.now() < until) {
          if (fd_h >= 0) {
            ++out->attempts;
            if (k.mq_send(fd_h, {bas::LinuxScenario::encode_cmd(true), 9},
                          false) == linuxsim::Errno::kOk) {
              ++out->successes;
              out->primitive_succeeded = true;
            }
          }
          if (fd_a >= 0) {
            ++out->attempts;
            if (k.mq_send(fd_a, {bas::LinuxScenario::encode_cmd(false), 9},
                          false) == linuxsim::Errno::kOk) {
              ++out->successes;
              out->primitive_succeeded = true;
            }
          }
          m.sleep_for(kInjectionPeriod);
        }
        out->primitive_succeeded = out->successes > 0;
        out->detail = "forged actuator commands queued: " +
                      std::to_string(out->successes) + "/" +
                      std::to_string(out->attempts);
        trace_attack(m, "attack.spoof_actuator", out->detail);
        break;
      }
      case AttackKind::kKillControl: {
        const int pid = sc.pid_of("tempProc");
        ++out->attempts;
        const auto r = k.sys_kill(pid);
        out->primitive_succeeded = (r == linuxsim::Errno::kOk);
        if (out->primitive_succeeded) ++out->successes;
        out->detail = std::string("kill(tempProc) -> ") +
                      linuxsim::to_string(r);
        trace_attack(m, "attack.kill", out->detail);
        break;
      }
      case AttackKind::kForkBomb: {
        for (int i = 0; i < sim::Machine::kMaxProcs + 16; ++i) {
          ++out->attempts;
          if (k.fork_process("bomb",
                             [&m] { m.sleep_for(sim::minutes(30)); }) < 0) {
            out->detail = "process table exhausted after " +
                          std::to_string(out->successes) + " forks";
            break;
          }
          ++out->successes;
        }
        out->primitive_succeeded = out->successes > 16;
        trace_attack(m, "attack.fork_bomb", out->detail);
        break;
      }
      case AttackKind::kCapBruteForce: {
        // No capability space on Linux; the analogous probe is opening
        // every queue in the namespace.
        const char* queues[] = {
            bas::LinuxScenario::kQSensor, bas::LinuxScenario::kQSetpoint,
            bas::LinuxScenario::kQEnvReq, bas::LinuxScenario::kQEnv,
            bas::LinuxScenario::kQHeater, bas::LinuxScenario::kQAlarm};
        for (const char* q : queues) {
          ++out->attempts;
          if (k.mq_open(q, false) >= 0) ++out->successes;
        }
        out->primitive_succeeded = out->successes > 2;
        out->detail = "queues openable: " + std::to_string(out->successes) +
                      "/" + std::to_string(out->attempts);
        trace_attack(m, "attack.queue_scan", out->detail);
        break;
      }
      case AttackKind::kIpcFlood: {
        const int fd = k.mq_open(bas::LinuxScenario::kQSetpoint, false);
        if (fd < 0) {
          out->detail = "mq_open(/q_setpoint) denied";
          break;
        }
        const sim::Time until = m.now() + kFloodDuration;
        while (m.now() < until) {
          ++out->attempts;
          if (k.mq_send(fd, {bas::LinuxScenario::encode_setpoint(22.0), 0},
                        false) == linuxsim::Errno::kOk) {
            ++out->successes;
          }
          m.sleep_for(kFloodPeriod);
        }
        out->primitive_succeeded = false;
        out->detail = "flood queued " + std::to_string(out->successes) +
                      "/" + std::to_string(out->attempts) +
                      " legal setpoint msgs (bounded queue drops the rest)";
        trace_attack(m, "attack.ipc_flood", out->detail);
        break;
      }
    }
    aspan.finish(*out);
  };
}

bas::AttackHook make_attack(bas::Platform platform, AttackKind kind,
                            Privilege priv, AttackOutcome* out) {
  switch (platform) {
    case bas::Platform::kMinix:
      return [hook = minix_attack(kind, priv, out), out](bas::Scenario& sc) {
        if (auto* minix = dynamic_cast<bas::MinixScenario*>(&sc)) {
          hook(*minix);
        } else if (out != nullptr) {
          out->detail = "payload does not target scenario variant";
        }
      };
    case bas::Platform::kSel4:
      return [hook = sel4_attack(kind, priv, out), out](bas::Scenario& sc) {
        auto* sel4 = dynamic_cast<bas::Sel4Scenario*>(&sc);
        if (sel4 != nullptr && sel4->attack_runtime() != nullptr) {
          hook(*sel4, *sel4->attack_runtime());
        } else if (out != nullptr) {
          out->detail = "payload does not target scenario variant";
        }
      };
    case bas::Platform::kLinux:
      return [hook = linux_attack(kind, priv, out), out](bas::Scenario& sc) {
        if (auto* lnx = dynamic_cast<bas::LinuxScenario*>(&sc)) {
          hook(*lnx);
        } else if (out != nullptr) {
          out->detail = "payload does not target scenario variant";
        }
      };
  }
  return [](bas::Scenario&) {};
}

}  // namespace mkbas::attack
