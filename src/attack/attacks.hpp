#pragma once

#include <functional>
#include <string>

#include "bas/linux_scenario.hpp"
#include "bas/minix_scenario.hpp"
#include "bas/sel4_scenario.hpp"

namespace mkbas::attack {

/// The attack vocabulary of §IV.D.
enum class AttackKind {
  kSpoofSensor,    // impersonate the sensor: fake temperature data
  kSpoofActuator,  // command the heater directly and silence the alarm
  kKillControl,    // terminate the temperature control process
  kForkBomb,       // exhaust the process table
  kCapBruteForce,  // enumerate capability slots (seL4)
  kIpcFlood,       // DoS through the web's *legitimate* channel: flood
                   // the control process with setpoint messages
};

/// The attacker's starting privilege. kCodeExec = arbitrary code in the
/// web interface (first simulation); kRoot additionally assumes a
/// successful privilege-escalation exploit (second simulation).
enum class Privilege { kCodeExec, kRoot };

const char* to_string(AttackKind k);
const char* to_string(Privilege p);

/// What the attack primitive itself achieved, independent of physical
/// consequences (the safety checker judges those separately).
struct AttackOutcome {
  AttackKind kind = AttackKind::kSpoofSensor;
  Privilege privilege = Privilege::kCodeExec;
  bool attempted = false;
  /// Did the injection/kill/fork primitive succeed at the syscall level?
  bool primitive_succeeded = false;
  int attempts = 0;
  int successes = 0;
  std::string detail;
};

/// How long injection-style attacks keep sending (simulated time).
inline constexpr sim::Duration kInjectionDuration = sim::minutes(10);
inline constexpr sim::Duration kInjectionPeriod = sim::msec(200);
/// The flood attack sends far faster, for a shorter window.
inline constexpr sim::Duration kFloodDuration = sim::minutes(2);
inline constexpr sim::Duration kFloodPeriod = sim::msec(1);

/// Build a web-compromise hook for each platform. The hook runs inside
/// the (compromised) web-interface process and only uses the syscall
/// surface that process legitimately has — exactly the paper's threat
/// model. Results are accumulated into *out, which must outlive the run.
std::function<void(bas::MinixScenario&)> minix_attack(AttackKind kind,
                                                      Privilege priv,
                                                      AttackOutcome* out);

std::function<void(bas::Sel4Scenario&, camkes::Runtime&)> sel4_attack(
    AttackKind kind, Privilege priv, AttackOutcome* out);

std::function<void(bas::LinuxScenario&)> linux_attack(AttackKind kind,
                                                      Privilege priv,
                                                      AttackOutcome* out);

/// Platform-generic builder: the same payloads, wrapped behind the
/// bas::Scenario interface so experiment drivers, the campaign engine and
/// the fabric never switch-case on platform. The downcast to the concrete
/// scenario type lives here, once. Arming against a scenario variant the
/// payload does not understand (e.g. "bsl3") records an unattempted
/// outcome instead of crashing.
bas::AttackHook make_attack(bas::Platform platform, AttackKind kind,
                            Privilege priv, AttackOutcome* out);

}  // namespace mkbas::attack
