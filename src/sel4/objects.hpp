#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

namespace mkbas::sel4 {

/// Kernel object types, the subset of seL4's object zoo that the paper's
/// scenario exercises (plus Untyped/CNode needed to build anything at all).
enum class ObjType {
  kUntyped,
  kTcb,
  kEndpoint,
  kNotification,
  kCNode,
  kFrame,  // shared-memory page (CAmkES dataports map these)
};

const char* to_string(ObjType t);

/// Access rights carried by a capability. seL4 defines read, write and
/// grant (§III.C): read = may receive, write = may send, grant = may
/// transfer capabilities across this endpoint (and receive a reply cap
/// from seL4_Call).
struct CapRights {
  bool read = false;
  bool write = false;
  bool grant = false;

  static constexpr CapRights rw() { return {true, true, false}; }
  static constexpr CapRights rwg() { return {true, true, true}; }
  static constexpr CapRights r() { return {true, false, false}; }
  static constexpr CapRights w() { return {false, true, false}; }
  static constexpr CapRights wg() { return {false, true, true}; }
  static constexpr CapRights all() { return {true, true, true}; }

  /// Rights derivation may only ever shrink (no amplification).
  CapRights masked_by(CapRights m) const {
    return {read && m.read, write && m.write, grant && m.grant};
  }
  bool subset_of(CapRights o) const {
    return (!read || o.read) && (!write || o.write) && (!grant || o.grant);
  }
};

/// A capability: an unforgeable token referencing a kernel object with a
/// set of rights and an optional badge. User code never holds these
/// directly — only slot indices into its CSpace; the kernel dereferences.
struct Capability {
  int object = -1;  // index into the kernel's object table
  ObjType type = ObjType::kEndpoint;
  CapRights rights;
  std::uint64_t badge = 0;

  bool valid() const { return object >= 0; }
};

/// seL4-style IPC message: a label (like MessageInfo) plus message
/// registers, and optionally one capability to transfer (requires grant).
struct Sel4Msg {
  static constexpr std::size_t kMaxMrs = 64;

  std::uint64_t label = 0;
  std::vector<std::uint64_t> mrs;
  /// Slot (in the SENDER's CSpace) of a capability to transfer; -1 = none.
  int transfer_cap_slot = -1;

  void push(std::uint64_t v) {
    if (mrs.size() < kMaxMrs) mrs.push_back(v);
  }
  std::uint64_t mr(std::size_t i) const { return i < mrs.size() ? mrs[i] : 0; }

  // Doubles are routinely shuttled through MRs by glue code.
  void push_f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    push(bits);
  }
  double mr_f64(std::size_t i) const {
    const std::uint64_t bits = mr(i);
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
};

/// Results of seL4 invocations in this model.
enum class Sel4Error {
  kOk = 0,
  kBadSlot,           // slot index out of CSpace range
  kEmptySlot,         // no capability in that slot
  kWrongType,         // capability references the wrong object type
  kNoRights,          // missing read/write/grant for the operation
  kDeleted,           // peer/object vanished while blocked
  kNotReady,          // non-blocking variant found nobody waiting
  kNoReplyCap,        // seL4_Reply without a pending reply capability
  kUntypedExhausted,  // retype budget exceeded
  kSlotOccupied,      // destination slot already holds a capability
  kTableFull,         // out of kernel objects / processes
  kTruncated,         // message exceeded kMaxMrs
};

const char* to_string(Sel4Error e);

}  // namespace mkbas::sel4
