#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <variant>

#include "sel4/objects.hpp"
#include "sim/machine.hpp"

namespace mkbas::sel4 {

/// Result of a receive: error status plus the badge of the capability the
/// sender used (how seL4 servers identify clients).
struct RecvResult {
  Sel4Error status = Sel4Error::kOk;
  std::uint64_t badge = 0;
};

/// The seL4 personality (§III.C): a capability-based microkernel model.
///
/// All authority is capabilities held in per-thread CSpaces; the kernel
/// has no concept of users or root. The kernel hands all initial authority
/// (one large Untyped plus the root CNode) to the bootstrap thread, which
/// retypes objects and distributes capabilities — policy lives entirely in
/// user space, as the seL4 designers intended (§III.C, [11]).
///
/// Faithful properties this model preserves:
///  * capabilities are unforgeable (user code only holds slot indices);
///  * rights derivation only shrinks (copy/mint mask rights);
///  * send requires write, receive requires read;
///  * capability transfer over an endpoint requires grant on the sender's
///    endpoint cap AND an explicitly designated receive slot;
///  * seL4_Call attaches a one-time reply capability; seL4_Reply consumes
///    it; callers of dead servers unblock with an error;
///  * there is no operation to enumerate or steal another thread's
///    capabilities — brute-forcing one's own CSpace only finds what the
///    bootstrap put there (§IV.D.3).
class Sel4Kernel {
 public:
  using Slot = int;

  static constexpr int kDefaultCNodeSlots = 64;
  static constexpr std::size_t kInitialUntypedBytes = 1 << 22;  // 4 MiB

  explicit Sel4Kernel(sim::Machine& machine);
  ~Sel4Kernel() { machine_.shutdown(); }

  Sel4Kernel(const Sel4Kernel&) = delete;
  Sel4Kernel& operator=(const Sel4Kernel&) = delete;

  // ---- Boot ----

  /// Start the bootstrap thread. It receives the root CNode with slot 0 =
  /// cap to its own CNode and slot 1 = the initial Untyped.
  sim::Process* boot_root(std::function<void()> body,
                          int priority = 2);
  static constexpr Slot kRootCNodeSlot = 0;
  static constexpr Slot kRootUntypedSlot = 1;

  // ---- Object creation (requires an Untyped capability) ----

  /// Retype part of an untyped into a new object; a full-rights cap to it
  /// is written into `dest_slot` of the caller's CSpace.
  Sel4Error retype(Slot untyped_slot, ObjType type, Slot dest_slot,
                   int cnode_slots = kDefaultCNodeSlots);

  /// Create a new thread (TCB + its own CSpace) from untyped memory. A cap
  /// to the child's TCB goes to `tcb_dest`, and a cap to the child's root
  /// CNode goes to `cnode_dest` so the creator can install capabilities.
  /// The thread starts only on tcb_resume().
  Sel4Error create_thread(Slot untyped_slot, const std::string& name,
                          std::function<void()> body, int priority,
                          Slot tcb_dest, Slot cnode_dest,
                          int cnode_slots = kDefaultCNodeSlots);

  /// Start a not-yet-started thread, or resume a suspended one.
  Sel4Error tcb_resume(Slot tcb_slot);

  /// Suspend a thread (TCB_Suspend): it stops being scheduled and any
  /// wakeup is deferred until tcb_resume. Requires holding its TCB cap —
  /// which is exactly what the compromised web component lacks.
  Sel4Error tcb_suspend(Slot tcb_slot);

  /// True iff the thread behind the TCB cap at `tcb_slot` has been started
  /// and its process is still live. The CAmkES restart monitor polls this
  /// to detect crashed components.
  bool tcb_alive(Slot tcb_slot);

  // ---- CNode operations ----

  /// Copy a cap within the caller's own CSpace, masking rights.
  Sel4Error cnode_copy(Slot src, Slot dst, CapRights mask);
  /// Copy + set a badge (endpoint identification for servers).
  Sel4Error cnode_mint(Slot src, Slot dst, CapRights mask,
                       std::uint64_t badge);
  Sel4Error cnode_move(Slot src, Slot dst);
  Sel4Error cnode_delete(Slot slot);

  /// Revoke: delete every capability in the system referencing the same
  /// object as `slot` (the slot itself included). Models revoking a
  /// master capability together with all copies derived from it; threads
  /// blocked on the object wake with kDeleted.
  Sel4Error cnode_revoke(Slot slot);

  /// Install a cap from the caller's CSpace into another CNode the caller
  /// holds a cap to (bootstrap uses this to populate children).
  Sel4Error cnode_copy_into(Slot target_cnode, Slot src, Slot dest_in_target,
                            CapRights mask, std::uint64_t badge = 0);

  /// Walk a chain of CNode caps (multi-level CSpace addressing); returns
  /// kOk iff a capability exists at the end of the path. Used by the
  /// capability-lookup-depth benchmark (T4).
  ///
  /// Resolutions are served from a pre-resolved path cache: the first walk
  /// of a (CSpace root, path) pair pays the full chain, repeats are one
  /// hash probe. Any operation that writes a capability slot or destroys
  /// an object (delete, revoke, move, mint, retype, cap transfer, thread
  /// death — i.e. also a CAmkES restart-from-spec) bumps an epoch that
  /// invalidates the whole cache, so a cached verdict can never outlive
  /// the capability topology it was derived from.
  Sel4Error probe_path(const std::vector<Slot>& path);

  /// Path-cache observability (tests and bench T4).
  std::uint64_t path_cache_hits() const { return path_cache_hits_; }
  std::uint64_t path_cache_misses() const { return path_cache_misses_; }
  /// Benchmark/test hook: disable the cache to measure the raw walk.
  void set_path_cache_enabled(bool on) {
    path_cache_enabled_ = on;
    if (!on) path_cache_.clear();
  }

  // ---- IPC ----

  Sel4Error send(Slot ep_slot, const Sel4Msg& msg);
  Sel4Error nbsend(Slot ep_slot, const Sel4Msg& msg);
  RecvResult recv(Slot ep_slot, Sel4Msg& out);
  RecvResult nbrecv(Slot ep_slot, Sel4Msg& out);
  /// Atomic send + wait-for-reply; requires grant (a one-time reply cap
  /// travels with the message).
  Sel4Error call(Slot ep_slot, Sel4Msg& inout);
  /// Reply through the pending one-time reply capability.
  Sel4Error reply(const Sel4Msg& msg);

  /// seL4_ReplyRecv: reply to the pending caller and atomically wait for
  /// the next message — the hot loop of every seL4 server.
  RecvResult reply_recv(Slot ep_slot, const Sel4Msg& reply_msg,
                        Sel4Msg& out);

  /// Designate a slot of the caller's CSpace to receive transferred caps.
  void set_receive_slot(Slot slot);

  // ---- Notifications ----

  Sel4Error signal(Slot ntfn_slot);
  Sel4Error wait(Slot ntfn_slot, std::uint64_t* bits_out);

  // ---- Frames (shared memory; CAmkES dataports) ----
  //
  // A mapped page with MMU-enforced rights: writes through a read-only
  // capability fail the way a fault would.

  static constexpr std::size_t kFrameBytes = 4096;

  Sel4Error frame_write(Slot frame_slot, std::size_t offset,
                        const std::uint8_t* src, std::size_t len);
  Sel4Error frame_read(Slot frame_slot, std::size_t offset,
                       std::uint8_t* dst, std::size_t len);

  // ---- Introspection (within one's own authority only) ----

  /// True iff the caller's CSpace holds a capability at `slot`. This is
  /// what a brute-forcing attacker can learn — nothing about other
  /// threads' CSpaces (used by the §IV.D.3 attack simulation).
  bool probe_own_slot(Slot slot);
  int cspace_slots();

  /// Inspect a slot of a CNode the caller holds a capability to. This is
  /// legitimate authority (you can always read CNodes you own); the
  /// bootstrap uses it to machine-verify the capability distribution
  /// against the CapDL spec, as in [14].
  struct CapInfo {
    bool present = false;
    ObjType type = ObjType::kEndpoint;
    CapRights rights;
    std::uint64_t badge = 0;
    int object = -1;
  };
  Sel4Error cnode_inspect(Slot cnode_cap, Slot slot_in_target, CapInfo& out);

  sim::Machine& machine() { return machine_; }

 private:
  struct WaitingSender {
    int tcb;  // object id
    Sel4Msg msg;
    std::uint64_t badge;
    bool is_call;
    bool can_grant;
    sim::Time enqueued = 0;  // when the send syscall reached the endpoint
  };
  struct EndpointObj {
    std::deque<WaitingSender> senders;
    std::deque<int> receivers;  // tcb object ids
  };
  struct NotificationObj {
    std::uint64_t word = 0;
    std::deque<int> waiters;
  };
  struct FrameObj {
    std::vector<std::uint8_t> data;
  };
  struct CNodeObj {
    std::vector<Capability> slots;
  };
  struct UntypedObj {
    std::size_t bytes_left = 0;
  };
  struct TcbObj {
    std::string name;
    sim::Process* proc = nullptr;
    int cnode = -1;  // object id of root CNode
    bool started = false;
    std::function<void()> body;
    int priority = sim::Machine::kDefaultPriority;

    // IPC rendezvous state while blocked:
    Sel4Msg* recv_buf = nullptr;
    std::uint64_t recv_badge = 0;
    Sel4Error ipc_status = Sel4Error::kOk;
    Slot receive_slot = -1;     // where transferred caps land
    int reply_to_tcb = -1;      // pending one-time reply cap (server side)
    int waiting_reply_from = -1;  // caller side: which tcb owes us a reply
    bool can_receive_grant = false;  // sender used a grant cap (for call)
    /// Open "sel4.ipc" flow span of this thread's in-flight send. The
    /// causal context rides kernel-side, like the badge — the message
    /// registers never carry tracing metadata.
    std::uint64_t out_span = 0;
  };

  struct Object {
    ObjType type = ObjType::kUntyped;
    std::variant<std::monostate, UntypedObj, TcbObj, EndpointObj,
                 NotificationObj, CNodeObj, FrameObj>
        payload;
    int refcount = 0;
  };

  static std::size_t object_cost(ObjType t, int cnode_slots);
  int alloc_object(ObjType t, int cnode_slots);
  void unref_object(int id);
  Object& obj(int id) { return objects_[static_cast<std::size_t>(id)]; }

  TcbObj& current_tcb();
  int current_tcb_id();
  CNodeObj& cspace_of(TcbObj& t);
  Capability* cap_at(CNodeObj& cs, Slot slot);
  /// Resolve a slot of the CURRENT thread expecting a type; nullptr with
  /// `err` set otherwise.
  Capability* resolve(Slot slot, ObjType want, Sel4Error& err);

  void deliver_to_receiver(TcbObj& receiver, int receiver_id,
                           const WaitingSender& ws);
  /// Record the server->caller reply as a zero-length flow span and hand
  /// its context to the caller.
  void reply_hop_span(TcbObj& server, TcbObj& caller);
  void transfer_cap_if_any(TcbObj& sender, TcbObj& receiver,
                           const Sel4Msg& msg, bool can_grant);
  Sel4Error do_send(Slot ep_slot, const Sel4Msg& msg, bool blocking,
                    bool is_call);
  RecvResult do_recv(Slot ep_slot, Sel4Msg& out, bool blocking);
  void on_thread_gone(int tcb_id);
  void trace_sec(const std::string& what, const std::string& detail);

  /// Capability topology changed: invalidate every cached path resolution.
  void touch_caps() { ++cap_epoch_; }

  /// Pre-resolved handles ("sel4.*" namespace); no string lookups on the
  /// IPC path.
  struct Metrics {
    obs::Counter sc_send, sc_nbsend, sc_recv, sc_nbrecv, sc_call, sc_reply;
    obs::Counter sc_reply_recv, sc_signal, sc_wait, sc_retype;
    obs::Counter sc_create_thread, sc_cnode, sc_frame, sc_tcb;
    obs::Counter cap_denied;
    obs::Histogram ipc_latency;  // send->deliver, virtual microseconds
  };

  sim::Machine& machine_;
  Metrics met_;
  obs::HealthSignal denial_sig_;  // rate detector over cap denials
  /// Interned once at construction; the IPC path never touches the
  /// tag registry's string table.
  std::uint32_t tag_ipc_span_ = 0;
  // deque: object references must stay valid across blocking syscalls
  // while other threads allocate objects.
  std::deque<Object> objects_;
  std::unordered_map<int, int> pid_to_tcb_;

  // Pre-resolved CNode-path cache: FNV-1a over (CSpace root, slots) ->
  // walk verdict. Coarse epoch invalidation keeps correctness trivial:
  // the cache only has to survive the hot steady state between topology
  // changes, which is exactly when T4-style lookups repeat.
  static constexpr std::size_t kPathCacheMax = 1024;
  std::unordered_map<std::uint64_t, Sel4Error> path_cache_;
  std::uint64_t cap_epoch_ = 0;
  std::uint64_t path_cache_epoch_ = 0;
  std::uint64_t path_cache_hits_ = 0;
  bool path_cache_enabled_ = true;
  std::uint64_t path_cache_misses_ = 0;
};

}  // namespace mkbas::sel4
