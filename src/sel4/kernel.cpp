#include "sel4/kernel.hpp"

#include <cassert>

namespace mkbas::sel4 {

const char* to_string(ObjType t) {
  switch (t) {
    case ObjType::kUntyped:
      return "untyped";
    case ObjType::kTcb:
      return "tcb";
    case ObjType::kEndpoint:
      return "endpoint";
    case ObjType::kNotification:
      return "notification";
    case ObjType::kCNode:
      return "cnode";
    case ObjType::kFrame:
      return "frame";
  }
  return "?";
}

const char* to_string(Sel4Error e) {
  switch (e) {
    case Sel4Error::kOk:
      return "OK";
    case Sel4Error::kBadSlot:
      return "BadSlot";
    case Sel4Error::kEmptySlot:
      return "EmptySlot";
    case Sel4Error::kWrongType:
      return "WrongType";
    case Sel4Error::kNoRights:
      return "NoRights";
    case Sel4Error::kDeleted:
      return "Deleted";
    case Sel4Error::kNotReady:
      return "NotReady";
    case Sel4Error::kNoReplyCap:
      return "NoReplyCap";
    case Sel4Error::kUntypedExhausted:
      return "UntypedExhausted";
    case Sel4Error::kSlotOccupied:
      return "SlotOccupied";
    case Sel4Error::kTableFull:
      return "TableFull";
    case Sel4Error::kTruncated:
      return "Truncated";
  }
  return "?";
}

Sel4Kernel::Sel4Kernel(sim::Machine& machine) : machine_(machine) {
  auto& mx = machine_.metrics();
  met_.sc_send = mx.counter("sel4.syscall.send");
  met_.sc_nbsend = mx.counter("sel4.syscall.nbsend");
  met_.sc_recv = mx.counter("sel4.syscall.recv");
  met_.sc_nbrecv = mx.counter("sel4.syscall.nbrecv");
  met_.sc_call = mx.counter("sel4.syscall.call");
  met_.sc_reply = mx.counter("sel4.syscall.reply");
  met_.sc_reply_recv = mx.counter("sel4.syscall.reply_recv");
  met_.sc_signal = mx.counter("sel4.syscall.signal");
  met_.sc_wait = mx.counter("sel4.syscall.wait");
  met_.sc_retype = mx.counter("sel4.syscall.retype");
  met_.sc_create_thread = mx.counter("sel4.syscall.create_thread");
  met_.sc_cnode = mx.counter("sel4.syscall.cnode_op");
  met_.sc_frame = mx.counter("sel4.syscall.frame_op");
  met_.sc_tcb = mx.counter("sel4.syscall.tcb_op");
  met_.cap_denied = mx.counter("sel4.cap.denied");
  met_.ipc_latency = mx.log_histogram("sel4.ipc.latency", 4, 1e7);
  // Denial-rate health signal (see MinixKernel: surge fires without
  // warmup, CUSUM catches slow probing).
  obs::DetectorConfig denial_cfg;
  denial_cfg.rate = true;
  denial_cfg.surge = 64.0;
  denial_sig_ = machine_.health().signal("sel4.cap.denied", denial_cfg);
  tag_ipc_span_ = sim::TagRegistry::instance().intern("sel4.ipc");
}

void Sel4Kernel::trace_sec(const std::string& what,
                           const std::string& detail) {
  // Single emission point for capability denials: the counter stays in
  // exact agreement with the trace tag counts.
  const bool deny = what.find("deny") != std::string::npos;
  if (deny) {
    met_.cap_denied.inc();
    denial_sig_.count(machine_.now());
  }
  sim::Process* p = machine_.current();
  const int pid = p ? p->pid() : -1;
  machine_.trace().emit(machine_.now(), pid, sim::TraceKind::kSecurity, what,
                        detail);
  if (deny) {
    machine_.audit().record(machine_.now(), machine_.machine_id(), pid, what,
                            detail, machine_.spans(),
                            machine_.spans().current(pid));
  }
}

// ---- Object management ----

std::size_t Sel4Kernel::object_cost(ObjType t, int cnode_slots) {
  switch (t) {
    case ObjType::kTcb:
      return 1024;
    case ObjType::kEndpoint:
    case ObjType::kNotification:
      return 16;
    case ObjType::kCNode:
      return static_cast<std::size_t>(cnode_slots) * 16;
    case ObjType::kFrame:
      return kFrameBytes;
    case ObjType::kUntyped:
      return 0;  // sub-untypeds not modelled
  }
  return 0;
}

int Sel4Kernel::alloc_object(ObjType t, int cnode_slots) {
  Object o;
  o.type = t;
  switch (t) {
    case ObjType::kUntyped:
      o.payload = UntypedObj{};
      break;
    case ObjType::kTcb:
      o.payload = TcbObj{};
      break;
    case ObjType::kEndpoint:
      o.payload = EndpointObj{};
      break;
    case ObjType::kNotification:
      o.payload = NotificationObj{};
      break;
    case ObjType::kCNode: {
      CNodeObj c;
      c.slots.resize(static_cast<std::size_t>(cnode_slots));
      o.payload = std::move(c);
      break;
    }
    case ObjType::kFrame: {
      FrameObj f;
      f.data.resize(kFrameBytes, 0);
      o.payload = std::move(f);
      break;
    }
  }
  objects_.push_back(std::move(o));
  return static_cast<int>(objects_.size()) - 1;
}

void Sel4Kernel::unref_object(int id) {
  if (id < 0) return;
  Object& o = obj(id);
  if (--o.refcount > 0) return;
  touch_caps();
  // Last capability gone: blocked threads on this object wake with an
  // error so authority revocation is visible, not a silent hang.
  if (o.type == ObjType::kEndpoint) {
    auto& ep = std::get<EndpointObj>(o.payload);
    for (auto& ws : ep.senders) {
      TcbObj& t = std::get<TcbObj>(obj(ws.tcb).payload);
      t.ipc_status = Sel4Error::kDeleted;
      if (t.proc != nullptr) machine_.make_ready(t.proc);
    }
    ep.senders.clear();
    for (int r : ep.receivers) {
      TcbObj& t = std::get<TcbObj>(obj(r).payload);
      t.ipc_status = Sel4Error::kDeleted;
      if (t.proc != nullptr) machine_.make_ready(t.proc);
    }
    ep.receivers.clear();
  } else if (o.type == ObjType::kNotification) {
    auto& n = std::get<NotificationObj>(o.payload);
    for (int w : n.waiters) {
      TcbObj& t = std::get<TcbObj>(obj(w).payload);
      t.ipc_status = Sel4Error::kDeleted;
      if (t.proc != nullptr) machine_.make_ready(t.proc);
    }
    n.waiters.clear();
  }
}

// ---- CSpace plumbing ----

int Sel4Kernel::current_tcb_id() {
  sim::Process* p = machine_.current();
  if (p == nullptr) {
    throw std::logic_error("seL4 syscall outside process context");
  }
  const auto it = pid_to_tcb_.find(p->pid());
  if (it == pid_to_tcb_.end()) {
    throw std::logic_error("caller is not an seL4 thread");
  }
  return it->second;
}

Sel4Kernel::TcbObj& Sel4Kernel::current_tcb() {
  return std::get<TcbObj>(obj(current_tcb_id()).payload);
}

Sel4Kernel::CNodeObj& Sel4Kernel::cspace_of(TcbObj& t) {
  return std::get<CNodeObj>(obj(t.cnode).payload);
}

Capability* Sel4Kernel::cap_at(CNodeObj& cs, Slot slot) {
  if (slot < 0 || static_cast<std::size_t>(slot) >= cs.slots.size()) {
    return nullptr;
  }
  return &cs.slots[static_cast<std::size_t>(slot)];
}

Capability* Sel4Kernel::resolve(Slot slot, ObjType want, Sel4Error& err) {
  CNodeObj& cs = cspace_of(current_tcb());
  Capability* cap = cap_at(cs, slot);
  if (cap == nullptr) {
    err = Sel4Error::kBadSlot;
    return nullptr;
  }
  if (!cap->valid()) {
    err = Sel4Error::kEmptySlot;
    return nullptr;
  }
  if (cap->type != want) {
    err = Sel4Error::kWrongType;
    return nullptr;
  }
  err = Sel4Error::kOk;
  return cap;
}

// ---- Boot ----

sim::Process* Sel4Kernel::boot_root(std::function<void()> body,
                                    int priority) {
  const int cnode = alloc_object(ObjType::kCNode, kDefaultCNodeSlots);
  const int tcb = alloc_object(ObjType::kTcb, 0);
  const int untyped = alloc_object(ObjType::kUntyped, 0);
  std::get<UntypedObj>(obj(untyped).payload).bytes_left =
      kInitialUntypedBytes;

  auto& cs = std::get<CNodeObj>(obj(cnode).payload);
  cs.slots[kRootCNodeSlot] =
      Capability{cnode, ObjType::kCNode, CapRights::all(), 0};
  cs.slots[kRootUntypedSlot] =
      Capability{untyped, ObjType::kUntyped, CapRights::all(), 0};
  obj(cnode).refcount = 1;
  obj(untyped).refcount = 1;
  obj(tcb).refcount = 1;
  touch_caps();

  TcbObj& t = std::get<TcbObj>(obj(tcb).payload);
  t.name = "rootserver";
  t.cnode = cnode;
  t.started = true;
  sim::Process* proc = machine_.spawn("rootserver", std::move(body), priority);
  if (proc == nullptr) return nullptr;
  t.proc = proc;
  pid_to_tcb_[proc->pid()] = tcb;
  proc->add_exit_hook([this, tcb](sim::Process&) { on_thread_gone(tcb); });
  return proc;
}

// ---- Object creation ----

Sel4Error Sel4Kernel::retype(Slot untyped_slot, ObjType type, Slot dest_slot,
                             int cnode_slots) {
  machine_.enter_kernel();
  met_.sc_retype.inc();
  Sel4Error err;
  Capability* ucap = resolve(untyped_slot, ObjType::kUntyped, err);
  if (ucap == nullptr) return err;
  if (type == ObjType::kUntyped || type == ObjType::kTcb) {
    return Sel4Error::kWrongType;  // TCBs are made via create_thread
  }
  CNodeObj& cs = cspace_of(current_tcb());
  Capability* dest = cap_at(cs, dest_slot);
  if (dest == nullptr) return Sel4Error::kBadSlot;
  if (dest->valid()) return Sel4Error::kSlotOccupied;

  auto& ut = std::get<UntypedObj>(obj(ucap->object).payload);
  const std::size_t cost = object_cost(type, cnode_slots);
  if (ut.bytes_left < cost) return Sel4Error::kUntypedExhausted;
  ut.bytes_left -= cost;

  const int id = alloc_object(type, cnode_slots);
  // objects_ may have reallocated: re-fetch the destination pointer.
  dest = cap_at(cspace_of(current_tcb()), dest_slot);
  *dest = Capability{id, type, CapRights::all(), 0};
  obj(id).refcount = 1;
  touch_caps();
  return Sel4Error::kOk;
}

Sel4Error Sel4Kernel::create_thread(Slot untyped_slot, const std::string& name,
                                    std::function<void()> body, int priority,
                                    Slot tcb_dest, Slot cnode_dest,
                                    int cnode_slots) {
  machine_.enter_kernel();
  met_.sc_create_thread.inc();
  Sel4Error err;
  Capability* ucap = resolve(untyped_slot, ObjType::kUntyped, err);
  if (ucap == nullptr) return err;
  CNodeObj* cs = &cspace_of(current_tcb());
  Capability* d1 = cap_at(*cs, tcb_dest);
  Capability* d2 = cap_at(*cs, cnode_dest);
  if (d1 == nullptr || d2 == nullptr) return Sel4Error::kBadSlot;
  if (d1->valid() || d2->valid()) return Sel4Error::kSlotOccupied;

  auto& ut = std::get<UntypedObj>(obj(ucap->object).payload);
  const std::size_t cost = object_cost(ObjType::kTcb, 0) +
                           object_cost(ObjType::kCNode, cnode_slots);
  if (ut.bytes_left < cost) return Sel4Error::kUntypedExhausted;
  ut.bytes_left -= cost;

  const int cnode = alloc_object(ObjType::kCNode, cnode_slots);
  const int tcb = alloc_object(ObjType::kTcb, 0);
  TcbObj& t = std::get<TcbObj>(obj(tcb).payload);
  t.name = name;
  t.cnode = cnode;
  t.body = std::move(body);
  t.priority = priority;
  obj(cnode).refcount = 1;  // the TCB itself references its CSpace
  obj(tcb).refcount = 1;

  cs = &cspace_of(current_tcb());  // re-fetch after possible realloc
  cs->slots[static_cast<std::size_t>(tcb_dest)] =
      Capability{tcb, ObjType::kTcb, CapRights::all(), 0};
  cs->slots[static_cast<std::size_t>(cnode_dest)] =
      Capability{cnode, ObjType::kCNode, CapRights::all(), 0};
  obj(tcb).refcount++;
  obj(cnode).refcount++;
  touch_caps();
  machine_.trace().emit(machine_.now(), -1, sim::TraceKind::kProcess,
                        "sel4.create_thread", name);
  return Sel4Error::kOk;
}

Sel4Error Sel4Kernel::tcb_resume(Slot tcb_slot) {
  machine_.enter_kernel();
  met_.sc_tcb.inc();
  Sel4Error err;
  Capability* cap = resolve(tcb_slot, ObjType::kTcb, err);
  if (cap == nullptr) return err;
  const int tcb_id = cap->object;
  TcbObj& t = std::get<TcbObj>(obj(tcb_id).payload);
  if (t.started) {
    // Already running: resume from suspension if applicable.
    if (t.proc != nullptr) machine_.resume(t.proc);
    return Sel4Error::kOk;
  }
  if (!t.body) return Sel4Error::kWrongType;
  t.started = true;
  sim::Process* proc =
      machine_.spawn(t.name, std::move(t.body), t.priority);
  if (proc == nullptr) return Sel4Error::kTableFull;
  t.proc = proc;
  pid_to_tcb_[proc->pid()] = tcb_id;
  proc->add_exit_hook(
      [this, tcb_id](sim::Process&) { on_thread_gone(tcb_id); });
  return Sel4Error::kOk;
}

bool Sel4Kernel::tcb_alive(Slot tcb_slot) {
  machine_.enter_kernel();
  met_.sc_tcb.inc();
  Sel4Error err;
  Capability* cap = resolve(tcb_slot, ObjType::kTcb, err);
  if (cap == nullptr) return false;
  TcbObj& t = std::get<TcbObj>(obj(cap->object).payload);
  return t.started && t.proc != nullptr;
}

Sel4Error Sel4Kernel::tcb_suspend(Slot tcb_slot) {
  machine_.enter_kernel();
  met_.sc_tcb.inc();
  Sel4Error err;
  Capability* cap = resolve(tcb_slot, ObjType::kTcb, err);
  if (cap == nullptr) return err;
  TcbObj& t = std::get<TcbObj>(obj(cap->object).payload);
  if (t.proc == nullptr) return Sel4Error::kDeleted;
  machine_.suspend(t.proc);
  trace_sec("tcb.suspend", current_tcb().name + " suspended " + t.name);
  return Sel4Error::kOk;
}

// ---- CNode operations ----

Sel4Error Sel4Kernel::cnode_copy(Slot src, Slot dst, CapRights mask) {
  return cnode_mint(src, dst, mask, /*badge=*/0);
}

Sel4Error Sel4Kernel::cnode_mint(Slot src, Slot dst, CapRights mask,
                                 std::uint64_t badge) {
  machine_.enter_kernel();
  met_.sc_cnode.inc();
  CNodeObj& cs = cspace_of(current_tcb());
  Capability* s = cap_at(cs, src);
  Capability* d = cap_at(cs, dst);
  if (s == nullptr || d == nullptr) return Sel4Error::kBadSlot;
  if (!s->valid()) return Sel4Error::kEmptySlot;
  if (d->valid()) return Sel4Error::kSlotOccupied;
  *d = *s;
  d->rights = s->rights.masked_by(mask);  // derivation can only shrink
  if (badge != 0) d->badge = badge;
  obj(d->object).refcount++;
  touch_caps();
  return Sel4Error::kOk;
}

Sel4Error Sel4Kernel::cnode_move(Slot src, Slot dst) {
  machine_.enter_kernel();
  met_.sc_cnode.inc();
  CNodeObj& cs = cspace_of(current_tcb());
  Capability* s = cap_at(cs, src);
  Capability* d = cap_at(cs, dst);
  if (s == nullptr || d == nullptr) return Sel4Error::kBadSlot;
  if (!s->valid()) return Sel4Error::kEmptySlot;
  if (d->valid()) return Sel4Error::kSlotOccupied;
  *d = *s;
  *s = Capability{};
  touch_caps();
  return Sel4Error::kOk;
}

Sel4Error Sel4Kernel::cnode_delete(Slot slot) {
  machine_.enter_kernel();
  met_.sc_cnode.inc();
  CNodeObj& cs = cspace_of(current_tcb());
  Capability* s = cap_at(cs, slot);
  if (s == nullptr) return Sel4Error::kBadSlot;
  if (!s->valid()) return Sel4Error::kEmptySlot;
  const int id = s->object;
  *s = Capability{};
  unref_object(id);
  touch_caps();
  return Sel4Error::kOk;
}

Sel4Error Sel4Kernel::cnode_revoke(Slot slot) {
  machine_.enter_kernel();
  met_.sc_cnode.inc();
  CNodeObj& cs = cspace_of(current_tcb());
  Capability* s = cap_at(cs, slot);
  if (s == nullptr) return Sel4Error::kBadSlot;
  if (!s->valid()) return Sel4Error::kEmptySlot;
  const int target = s->object;
  // Sweep every CSpace in the system; each cleared cap drops a reference
  // and the final unref wakes any blocked threads with kDeleted.
  for (auto& o : objects_) {
    if (o.type != ObjType::kCNode) continue;
    auto& cnode = std::get<CNodeObj>(o.payload);
    for (auto& cap : cnode.slots) {
      if (cap.valid() && cap.object == target) {
        cap = Capability{};
        unref_object(target);
      }
    }
  }
  touch_caps();
  trace_sec("cap.revoke",
            current_tcb().name + " revoked object " + std::to_string(target));
  return Sel4Error::kOk;
}

Sel4Error Sel4Kernel::cnode_copy_into(Slot target_cnode, Slot src,
                                      Slot dest_in_target, CapRights mask,
                                      std::uint64_t badge) {
  machine_.enter_kernel();
  met_.sc_cnode.inc();
  Sel4Error err;
  Capability* cn = resolve(target_cnode, ObjType::kCNode, err);
  if (cn == nullptr) return err;
  const int cnode_obj_id = cn->object;
  CNodeObj& own = cspace_of(current_tcb());
  Capability* s = cap_at(own, src);
  if (s == nullptr) return Sel4Error::kBadSlot;
  if (!s->valid()) return Sel4Error::kEmptySlot;
  CNodeObj& target = std::get<CNodeObj>(obj(cnode_obj_id).payload);
  Capability* d = cap_at(target, dest_in_target);
  if (d == nullptr) return Sel4Error::kBadSlot;
  if (d->valid()) return Sel4Error::kSlotOccupied;
  *d = *s;
  d->rights = s->rights.masked_by(mask);
  if (badge != 0) d->badge = badge;
  obj(d->object).refcount++;
  touch_caps();
  return Sel4Error::kOk;
}

Sel4Error Sel4Kernel::probe_path(const std::vector<Slot>& path) {
  machine_.enter_kernel();
  met_.sc_cnode.inc();
  if (path.empty()) return Sel4Error::kBadSlot;
  const int root = current_tcb().cnode;

  std::uint64_t h = 0;
  if (path_cache_enabled_) {
    // Cached verdicts are valid only for the capability layout they were
    // computed against: any slot write or object destruction bumps
    // cap_epoch_, and a stale cache is dropped wholesale here.
    if (path_cache_epoch_ != cap_epoch_) {
      path_cache_.clear();
      path_cache_epoch_ = cap_epoch_;
    }
    // FNV-1a over the caller's root CNode id and the slot sequence, so
    // threads with different CSpaces never share an entry.
    h = 14695981039346656037ULL;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(root)));
    for (Slot s : path) {
      mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(s)));
    }
    if (const auto it = path_cache_.find(h); it != path_cache_.end()) {
      ++path_cache_hits_;
      return it->second;
    }
    ++path_cache_misses_;
  }

  Sel4Error verdict = Sel4Error::kOk;
  int cnode_id = root;
  for (std::size_t i = 0; i < path.size(); ++i) {
    CNodeObj& cs = std::get<CNodeObj>(obj(cnode_id).payload);
    Capability* cap = cap_at(cs, path[i]);
    if (cap == nullptr) {
      verdict = Sel4Error::kBadSlot;
      break;
    }
    if (!cap->valid()) {
      verdict = Sel4Error::kEmptySlot;
      break;
    }
    if (i + 1 == path.size()) break;
    if (cap->type != ObjType::kCNode) {
      verdict = Sel4Error::kWrongType;
      break;
    }
    cnode_id = cap->object;
  }
  if (path_cache_enabled_) {
    if (path_cache_.size() >= kPathCacheMax) path_cache_.clear();
    path_cache_.emplace(h, verdict);
  }
  return verdict;
}

// ---- IPC ----

void Sel4Kernel::transfer_cap_if_any(TcbObj& sender, TcbObj& receiver,
                                     const Sel4Msg& msg, bool can_grant) {
  if (msg.transfer_cap_slot < 0) return;
  if (!can_grant) {
    trace_sec("cap.transfer_deny", sender.name + ": no grant right");
    return;
  }
  if (receiver.receive_slot < 0) {
    trace_sec("cap.transfer_drop", receiver.name + ": no receive slot");
    return;
  }
  CNodeObj& scs = std::get<CNodeObj>(obj(sender.cnode).payload);
  Capability* src = cap_at(scs, msg.transfer_cap_slot);
  if (src == nullptr || !src->valid()) return;
  CNodeObj& rcs = std::get<CNodeObj>(obj(receiver.cnode).payload);
  Capability* dst = cap_at(rcs, receiver.receive_slot);
  if (dst == nullptr || dst->valid()) return;
  *dst = *src;
  obj(dst->object).refcount++;
  touch_caps();
  trace_sec("cap.transfer",
            sender.name + " -> " + receiver.name + " obj=" +
                std::to_string(src->object));
}

void Sel4Kernel::reply_hop_span(TcbObj& server, TcbObj& caller) {
  // A reply is a synchronous hop: the span opens and closes in the same
  // instant, but it still links the caller's continuation to the
  // server's handling in the causal graph.
  auto& spans = machine_.spans();
  const int spid = server.proc != nullptr ? server.proc->pid() : -1;
  const std::uint64_t span = spans.begin_flow(
      spid, machine_.now(), tag_ipc_span_, spans.current(spid));
  if (span != 0 && caller.proc != nullptr) {
    spans.set_current(caller.proc->pid(), spans.context_of(span));
  }
  spans.end_flow(machine_.now(), span);
}

void Sel4Kernel::deliver_to_receiver(TcbObj& receiver, int receiver_id,
                                     const WaitingSender& ws) {
  (void)receiver_id;
  assert(receiver.recv_buf != nullptr);
  met_.ipc_latency.record(static_cast<double>(machine_.now() - ws.enqueued));
  *receiver.recv_buf = ws.msg;
  receiver.recv_buf->transfer_cap_slot = -1;
  receiver.recv_badge = ws.badge;
  receiver.ipc_status = Sel4Error::kOk;
  TcbObj& sender = std::get<TcbObj>(obj(ws.tcb).payload);
  // Close the hop span and hand its context to the receiver, which now
  // continues the sender's trace.
  if (sender.out_span != 0) {
    auto& spans = machine_.spans();
    if (receiver.proc != nullptr) {
      spans.set_current(receiver.proc->pid(),
                        spans.context_of(sender.out_span));
    }
    spans.end_flow(machine_.now(), sender.out_span);
    sender.out_span = 0;
  }
  transfer_cap_if_any(sender, receiver, ws.msg, ws.can_grant);
  if (ws.is_call) {
    receiver.reply_to_tcb = ws.tcb;  // one-time reply capability
  }
  machine_.trace().emit(machine_.now(),
                        sender.proc ? sender.proc->pid() : -1,
                        sim::TraceKind::kIpc, "sel4.deliver",
                        sender.name + " -> " + receiver.name + " label=" +
                            std::to_string(ws.msg.label));
}

Sel4Error Sel4Kernel::do_send(Slot ep_slot, const Sel4Msg& msg, bool blocking,
                              bool is_call) {
  Sel4Error err;
  Capability* cap = resolve(ep_slot, ObjType::kEndpoint, err);
  if (cap == nullptr) return err;
  if (!cap->rights.write) {
    trace_sec("cap.deny", current_tcb().name + ": send without write");
    return Sel4Error::kNoRights;
  }
  if (is_call && !cap->rights.grant) {
    // seL4_Call needs grant to attach the one-time reply capability.
    trace_sec("cap.deny", current_tcb().name + ": call without grant");
    return Sel4Error::kNoRights;
  }
  if (msg.mrs.size() > Sel4Msg::kMaxMrs) return Sel4Error::kTruncated;

  // Fault injection: in-transit drop/delay/corrupt, applied after the
  // rights checks. Calls are never dropped — the caller would block
  // forever on a reply that cannot come; plans model lost requests as a
  // server crash instead. The receiver identity is only known when a
  // thread is already parked on the endpoint; wildcard-dst windows match
  // either way.
  bool fault_corrupt = false;
  std::uint64_t fault_seed = 0;
  if (const auto& filt = machine_.msg_filter()) {
    std::string dst_name;
    {
      auto& ep0 = std::get<EndpointObj>(obj(cap->object).payload);
      if (!ep0.receivers.empty()) {
        dst_name =
            std::get<TcbObj>(obj(ep0.receivers.front()).payload).name;
      }
    }
    const sim::MsgFaultAction act = filt(current_tcb().name, dst_name);
    if (act.drop && !is_call) return Sel4Error::kOk;
    fault_corrupt = act.corrupt;
    fault_seed = act.corrupt_seed;
    if (act.delay > 0) {
      machine_.charge(act.delay);
      cap = resolve(ep_slot, ObjType::kEndpoint, err);  // may be revoked
      if (cap == nullptr) return err;
    }
  }

  const int self_id = current_tcb_id();
  const int ep_id = cap->object;
  WaitingSender ws{self_id, msg, cap->badge, is_call, cap->rights.grant,
                   machine_.now()};
  if (fault_corrupt && !ws.msg.mrs.empty()) {
    sim::corrupt_bytes(reinterpret_cast<std::uint8_t*>(ws.msg.mrs.data()),
                       ws.msg.mrs.size() * sizeof(std::uint64_t),
                       fault_seed);
  }
  {
    // The endpoint hop is a flow span from the send syscall to delivery;
    // its context rides in the sender's TCB, never in the registers.
    auto& spans = machine_.spans();
    sim::Process* sp = machine_.current();
    const int spid = sp ? sp->pid() : -1;
    std::get<TcbObj>(obj(self_id).payload).out_span = spans.begin_flow(
        spid, machine_.now(), tag_ipc_span_, spans.current(spid));
  }

  auto& ep = std::get<EndpointObj>(obj(ep_id).payload);
  if (!ep.receivers.empty()) {
    const int recv_id = ep.receivers.front();
    ep.receivers.pop_front();
    TcbObj& receiver = std::get<TcbObj>(obj(recv_id).payload);
    deliver_to_receiver(receiver, recv_id, ws);
    machine_.make_ready(receiver.proc);
    if (is_call) {
      TcbObj& self = current_tcb();
      self.waiting_reply_from = recv_id;
      self.ipc_status = Sel4Error::kOk;
      machine_.block_current("sel4.await_reply");
      return self.ipc_status;
    }
    return Sel4Error::kOk;
  }
  if (!blocking) {
    TcbObj& self = current_tcb();
    machine_.spans().end_flow(machine_.now(), self.out_span);
    self.out_span = 0;
    return Sel4Error::kNotReady;
  }

  TcbObj& self = current_tcb();
  self.ipc_status = Sel4Error::kOk;
  ep.senders.push_back(std::move(ws));
  machine_.block_current(is_call ? "sel4.call" : "sel4.send");
  if (self.out_span != 0) {
    // The send never delivered (endpoint revoked / receiver gone): the
    // hop ends here.
    machine_.spans().end_flow(machine_.now(), self.out_span);
    self.out_span = 0;
  }
  return self.ipc_status;
}

RecvResult Sel4Kernel::do_recv(Slot ep_slot, Sel4Msg& out, bool blocking) {
  Sel4Error err;
  Capability* cap = resolve(ep_slot, ObjType::kEndpoint, err);
  if (cap == nullptr) return {err, 0};
  if (!cap->rights.read) {
    trace_sec("cap.deny", current_tcb().name + ": recv without read");
    return {Sel4Error::kNoRights, 0};
  }
  const int ep_id = cap->object;
  const int self_id = current_tcb_id();
  TcbObj& self = current_tcb();
  self.recv_buf = &out;

  auto& ep = std::get<EndpointObj>(obj(ep_id).payload);
  if (!ep.senders.empty()) {
    WaitingSender ws = std::move(ep.senders.front());
    ep.senders.pop_front();
    deliver_to_receiver(self, self_id, ws);
    self.recv_buf = nullptr;
    if (!ws.is_call) {
      // Plain senders unblock on delivery; callers stay blocked for reply.
      TcbObj& sender = std::get<TcbObj>(obj(ws.tcb).payload);
      sender.ipc_status = Sel4Error::kOk;
      if (sender.proc != nullptr) machine_.make_ready(sender.proc);
    } else {
      TcbObj& sender = std::get<TcbObj>(obj(ws.tcb).payload);
      sender.waiting_reply_from = self_id;
    }
    return {Sel4Error::kOk, self.recv_badge};
  }
  if (!blocking) {
    self.recv_buf = nullptr;
    return {Sel4Error::kNotReady, 0};
  }
  self.ipc_status = Sel4Error::kOk;
  ep.receivers.push_back(self_id);
  machine_.block_current("sel4.recv");
  self.recv_buf = nullptr;
  return {self.ipc_status, self.recv_badge};
}

Sel4Error Sel4Kernel::send(Slot ep_slot, const Sel4Msg& msg) {
  machine_.enter_kernel();
  met_.sc_send.inc();
  return do_send(ep_slot, msg, /*blocking=*/true, /*is_call=*/false);
}

Sel4Error Sel4Kernel::nbsend(Slot ep_slot, const Sel4Msg& msg) {
  machine_.enter_kernel();
  met_.sc_nbsend.inc();
  const Sel4Error r =
      do_send(ep_slot, msg, /*blocking=*/false, /*is_call=*/false);
  // seL4_NBSend silently drops when nobody is waiting; we surface the
  // status for tests but treat kNotReady as a non-error.
  return r;
}

RecvResult Sel4Kernel::recv(Slot ep_slot, Sel4Msg& out) {
  machine_.enter_kernel();
  met_.sc_recv.inc();
  return do_recv(ep_slot, out, /*blocking=*/true);
}

RecvResult Sel4Kernel::nbrecv(Slot ep_slot, Sel4Msg& out) {
  machine_.enter_kernel();
  met_.sc_nbrecv.inc();
  return do_recv(ep_slot, out, /*blocking=*/false);
}

Sel4Error Sel4Kernel::call(Slot ep_slot, Sel4Msg& inout) {
  machine_.enter_kernel();
  met_.sc_call.inc();
  TcbObj& self = current_tcb();
  self.recv_buf = &inout;  // the reply lands here
  const Sel4Error r = do_send(ep_slot, inout, /*blocking=*/true,
                              /*is_call=*/true);
  self.recv_buf = nullptr;
  return r;
}

Sel4Error Sel4Kernel::reply(const Sel4Msg& msg) {
  machine_.enter_kernel();
  met_.sc_reply.inc();
  TcbObj& self = current_tcb();
  if (self.reply_to_tcb < 0) return Sel4Error::kNoReplyCap;
  const int caller_id = self.reply_to_tcb;
  self.reply_to_tcb = -1;  // one-time: consumed
  TcbObj& caller = std::get<TcbObj>(obj(caller_id).payload);
  if (caller.proc == nullptr || caller.waiting_reply_from < 0) {
    return Sel4Error::kDeleted;
  }
  if (caller.recv_buf != nullptr) {
    *caller.recv_buf = msg;
    caller.recv_buf->transfer_cap_slot = -1;
  }
  caller.waiting_reply_from = -1;
  caller.ipc_status = Sel4Error::kOk;
  reply_hop_span(self, caller);
  machine_.make_ready(caller.proc);
  machine_.trace().emit(machine_.now(),
                        self.proc ? self.proc->pid() : -1,
                        sim::TraceKind::kIpc, "sel4.reply",
                        self.name + " -> " + caller.name);
  return Sel4Error::kOk;
}

RecvResult Sel4Kernel::reply_recv(Slot ep_slot, const Sel4Msg& reply_msg,
                                  Sel4Msg& out) {
  machine_.enter_kernel();
  met_.sc_reply_recv.inc();
  TcbObj& self = current_tcb();
  if (self.reply_to_tcb >= 0) {
    const int caller_id = self.reply_to_tcb;
    self.reply_to_tcb = -1;
    TcbObj& caller = std::get<TcbObj>(obj(caller_id).payload);
    if (caller.proc != nullptr && caller.waiting_reply_from >= 0) {
      if (caller.recv_buf != nullptr) {
        *caller.recv_buf = reply_msg;
        caller.recv_buf->transfer_cap_slot = -1;
      }
      caller.waiting_reply_from = -1;
      caller.ipc_status = Sel4Error::kOk;
      reply_hop_span(current_tcb(), caller);
      machine_.make_ready(caller.proc);
    }
  }
  return do_recv(ep_slot, out, /*blocking=*/true);
}

void Sel4Kernel::set_receive_slot(Slot slot) {
  machine_.enter_kernel();
  current_tcb().receive_slot = slot;
}

// ---- Notifications ----

Sel4Error Sel4Kernel::signal(Slot ntfn_slot) {
  machine_.enter_kernel();
  met_.sc_signal.inc();
  Sel4Error err;
  Capability* cap = resolve(ntfn_slot, ObjType::kNotification, err);
  if (cap == nullptr) return err;
  if (!cap->rights.write) return Sel4Error::kNoRights;
  // Notifications are a bit-OR into a single word: no room for causal
  // context, so the trace deliberately breaks here (protocol limit),
  // exactly like MINIX notify bits.
  auto& n = std::get<NotificationObj>(obj(cap->object).payload);
  n.word |= (cap->badge != 0 ? cap->badge : 1);
  if (!n.waiters.empty()) {
    const int tcb_id = n.waiters.front();
    n.waiters.pop_front();
    TcbObj& t = std::get<TcbObj>(obj(tcb_id).payload);
    t.ipc_status = Sel4Error::kOk;
    if (t.proc != nullptr) machine_.make_ready(t.proc);
  }
  return Sel4Error::kOk;
}

Sel4Error Sel4Kernel::wait(Slot ntfn_slot, std::uint64_t* bits_out) {
  machine_.enter_kernel();
  met_.sc_wait.inc();
  Sel4Error err;
  Capability* cap = resolve(ntfn_slot, ObjType::kNotification, err);
  if (cap == nullptr) return err;
  if (!cap->rights.read) return Sel4Error::kNoRights;
  const int obj_id = cap->object;
  auto* n = &std::get<NotificationObj>(obj(obj_id).payload);
  if (n->word == 0) {
    TcbObj& self = current_tcb();
    self.ipc_status = Sel4Error::kOk;
    n->waiters.push_back(current_tcb_id());
    machine_.block_current("sel4.wait");
    if (self.ipc_status != Sel4Error::kOk) return self.ipc_status;
    n = &std::get<NotificationObj>(obj(obj_id).payload);
  }
  if (bits_out != nullptr) *bits_out = n->word;
  n->word = 0;
  return Sel4Error::kOk;
}

// ---- Frames ----

Sel4Error Sel4Kernel::frame_write(Slot frame_slot, std::size_t offset,
                                  const std::uint8_t* src, std::size_t len) {
  machine_.enter_kernel();
  met_.sc_frame.inc();
  Sel4Error err;
  Capability* cap = resolve(frame_slot, ObjType::kFrame, err);
  if (cap == nullptr) return err;
  if (!cap->rights.write) {
    trace_sec("cap.deny", current_tcb().name + ": frame write without W");
    return Sel4Error::kNoRights;
  }
  auto& frame = std::get<FrameObj>(obj(cap->object).payload);
  if (offset > frame.data.size() || len > frame.data.size() - offset) {
    return Sel4Error::kTruncated;
  }
  std::copy(src, src + len, frame.data.begin() + static_cast<long>(offset));
  return Sel4Error::kOk;
}

Sel4Error Sel4Kernel::frame_read(Slot frame_slot, std::size_t offset,
                                 std::uint8_t* dst, std::size_t len) {
  machine_.enter_kernel();
  met_.sc_frame.inc();
  Sel4Error err;
  Capability* cap = resolve(frame_slot, ObjType::kFrame, err);
  if (cap == nullptr) return err;
  if (!cap->rights.read) {
    trace_sec("cap.deny", current_tcb().name + ": frame read without R");
    return Sel4Error::kNoRights;
  }
  auto& frame = std::get<FrameObj>(obj(cap->object).payload);
  if (offset > frame.data.size() || len > frame.data.size() - offset) {
    return Sel4Error::kTruncated;
  }
  std::copy(frame.data.begin() + static_cast<long>(offset),
            frame.data.begin() + static_cast<long>(offset + len), dst);
  return Sel4Error::kOk;
}

// ---- Introspection ----

Sel4Error Sel4Kernel::cnode_inspect(Slot cnode_cap, Slot slot_in_target,
                                    CapInfo& out) {
  machine_.enter_kernel();
  Sel4Error err;
  Capability* cn = resolve(cnode_cap, ObjType::kCNode, err);
  if (cn == nullptr) return err;
  CNodeObj& target = std::get<CNodeObj>(obj(cn->object).payload);
  Capability* cap = cap_at(target, slot_in_target);
  if (cap == nullptr) return Sel4Error::kBadSlot;
  out = CapInfo{cap->valid(), cap->type, cap->rights, cap->badge,
                cap->object};
  return Sel4Error::kOk;
}

bool Sel4Kernel::probe_own_slot(Slot slot) {
  machine_.enter_kernel();
  CNodeObj& cs = cspace_of(current_tcb());
  Capability* cap = cap_at(cs, slot);
  return cap != nullptr && cap->valid();
}

int Sel4Kernel::cspace_slots() {
  machine_.enter_kernel();
  return static_cast<int>(cspace_of(current_tcb()).slots.size());
}

// ---- Thread death ----

void Sel4Kernel::on_thread_gone(int tcb_id) {
  TcbObj& dead = std::get<TcbObj>(obj(tcb_id).payload);
  // Purge from every endpoint and notification queue.
  for (auto& o : objects_) {
    if (o.type == ObjType::kEndpoint) {
      auto& ep = std::get<EndpointObj>(o.payload);
      for (auto it = ep.senders.begin(); it != ep.senders.end();) {
        it = (it->tcb == tcb_id) ? ep.senders.erase(it) : std::next(it);
      }
      for (auto it = ep.receivers.begin(); it != ep.receivers.end();) {
        it = (*it == tcb_id) ? ep.receivers.erase(it) : std::next(it);
      }
    } else if (o.type == ObjType::kNotification) {
      auto& n = std::get<NotificationObj>(o.payload);
      for (auto it = n.waiters.begin(); it != n.waiters.end();) {
        it = (*it == tcb_id) ? n.waiters.erase(it) : std::next(it);
      }
    } else if (o.type == ObjType::kTcb) {
      auto& t = std::get<TcbObj>(o.payload);
      // Callers waiting on a reply from the dead server unblock with an
      // error instead of hanging forever.
      if (t.waiting_reply_from == tcb_id && t.proc != nullptr) {
        t.waiting_reply_from = -1;
        t.ipc_status = Sel4Error::kDeleted;
        machine_.make_ready(t.proc);
      }
      if (t.reply_to_tcb == tcb_id) t.reply_to_tcb = -1;
    }
  }
  if (dead.proc != nullptr) pid_to_tcb_.erase(dead.proc->pid());
  dead.proc = nullptr;
  dead.recv_buf = nullptr;
  dead.reply_to_tcb = -1;
  dead.waiting_reply_from = -1;
  dead.out_span = 0;  // the machine abandons the pid's open spans
}

}  // namespace mkbas::sel4
