#pragma once

#include <map>
#include <string>
#include <vector>

namespace mkbas::aadl {

/// Direction of an AADL port.
enum class PortDir { kIn, kOut };

/// Port category. The paper models IPC as "AADL data and event ports".
enum class PortKind { kData, kEvent, kEventData };

const char* to_string(PortDir d);
const char* to_string(PortKind k);

/// A feature (port) of a process type:
///   sensorOut : out event data port TempReading;
struct Port {
  std::string name;
  PortDir dir = PortDir::kOut;
  PortKind kind = PortKind::kEventData;
  std::string data_type;  // optional
  int line = 0;
};

/// `process <Name> ... end <Name>;` — the component type with its ports.
struct ProcessType {
  std::string name;
  std::vector<Port> ports;
  int line = 0;

  const Port* find_port(const std::string& n) const {
    for (const auto& p : ports) {
      if (p.name == n) return &p;
    }
    return nullptr;
  }
};

/// `process implementation <Type>.<impl>` with MKBAS properties. The
/// paper annotates each implementation with its unique ac_id
/// ("TempSensorProcess.imp is 100, TempControlProcess.imp is 101 etc.").
struct ProcessImpl {
  std::string full_name;  // "TempSensorProcess.imp"
  std::string type_name;  // "TempSensorProcess"
  int ac_id = -1;
  std::vector<std::string> may_kill;  // instance names this impl may kill
  int fork_quota = -1;                // -1 = unlimited
  int line = 0;
};

/// `tempSensProc : process TempSensorProcess.imp;`
struct Subcomponent {
  std::string instance;
  std::string impl_name;
  int line = 0;
};

/// `c1 : port tempSensProc.sensorOut -> tempProc.sensorIn
///        { MKBAS::m_type => 1; };`
struct Connection {
  std::string name;
  std::string src_comp, src_port;
  std::string dst_comp, dst_port;
  int m_type = -1;  // assigned automatically if unspecified
  int line = 0;
};

/// `system implementation <Name>.impl` with subcomponents + connections.
struct SystemImpl {
  std::string full_name;
  std::string type_name;
  std::vector<Subcomponent> subcomponents;
  std::vector<Connection> connections;
  int line = 0;

  const Subcomponent* find_sub(const std::string& inst) const {
    for (const auto& s : subcomponents) {
      if (s.instance == inst) return &s;
    }
    return nullptr;
  }
};

/// A parsed AADL package: all declarations in one source text.
struct Model {
  std::map<std::string, ProcessType> process_types;
  std::map<std::string, ProcessImpl> process_impls;  // by full name
  std::map<std::string, std::string> system_types;   // name -> name (decl)
  std::map<std::string, SystemImpl> system_impls;

  const ProcessImpl* impl_of_instance(const SystemImpl& sys,
                                      const std::string& inst) const {
    const Subcomponent* sub = sys.find_sub(inst);
    if (sub == nullptr) return nullptr;
    const auto it = process_impls.find(sub->impl_name);
    return it == process_impls.end() ? nullptr : &it->second;
  }
};

/// A diagnostic produced by the parser or semantic analysis.
struct Diagnostic {
  int line = 0;
  std::string message;
};

}  // namespace mkbas::aadl
