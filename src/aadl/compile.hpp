#pragma once

#include <optional>
#include <string>
#include <vector>

#include "aadl/ast.hpp"
#include "minix/acm.hpp"

namespace mkbas::aadl {

/// One process instance of the compiled system.
struct CompiledInstance {
  std::string name;       // subcomponent instance name
  std::string impl_name;  // "TempSensorProcess.imp"
  int ac_id = -1;
  std::vector<std::string> may_kill;  // resolved instance names
  int fork_quota = -1;
};

/// One resolved connection; m_type is always assigned after compilation.
/// The port kind decides the CAmkES connector family: `event data` ports
/// become RPC connections, pure `event` ports seL4Notification events,
/// pure `data` ports seL4SharedData dataports (§IV.B).
struct CompiledConnection {
  std::string name;
  std::string src, src_port;
  std::string dst, dst_port;
  int m_type = -1;
  PortKind kind = PortKind::kEventData;
};

/// Semantic-checked, resolved system: the input to all code generators and
/// to the scenario builders.
struct CompiledSystem {
  std::string name;
  std::vector<CompiledInstance> instances;
  std::vector<CompiledConnection> connections;

  const CompiledInstance* find(const std::string& inst) const {
    for (const auto& i : instances) {
      if (i.name == inst) return &i;
    }
    return nullptr;
  }
  int ac_of(const std::string& inst) const {
    const CompiledInstance* i = find(inst);
    return i == nullptr ? -1 : i->ac_id;
  }
};

/// Message type 0 is the reserved acknowledgment (paper Fig. 3).
inline constexpr int kAckMType = 0;

/// Semantic analysis and resolution of a parsed model:
///  * every subcomponent references an existing implementation and type;
///  * every implementation in the system carries a unique ac_id >= 2
///    (ac_id 1 is reserved for the PM server);
///  * connection endpoints exist, src is an out port, dst an in port,
///    kinds match and data types agree when both are given;
///  * explicit m_types are in [1, 63] and unique per (src, dst) edge;
///    unspecified ones are auto-assigned the smallest free type;
///  * may_kill lists resolve to instances of this system.
std::optional<CompiledSystem> compile(const Model& model,
                                      const std::string& system_full_name,
                                      std::vector<Diagnostic>& diags);

/// Non-fatal lints on a compiled system: currently, ports declared on an
/// instance's type that no connection references (dead interfaces are a
/// common modelling slip and would silently get no ACM edge).
std::vector<Diagnostic> lint(const Model& model, const SystemImpl& sys);
std::vector<Diagnostic> lint(const Model& model,
                             const std::string& system_full_name);

/// Options for the ACM generator.
struct AcmGenOptions {
  int pm_ac_id = 1;
  bool allow_fork = true;   // every process may ask PM to fork
  bool allow_exit = true;   // every process may notify PM of exit
  /// Let every process *reach* PM's kill service (as on real MINIX,
  /// where the syscall exists for everyone); whether a given target may
  /// actually be killed is still decided by the per-pair kill matrix
  /// inside PM. With this off, processes without a may_kill list cannot
  /// even address the service — the denial then happens silently at the
  /// IPC edge instead of as an audited pm-side ACM decision.
  bool open_kill_syscall = false;
  bool enable_quotas = false;
  int pm_fork_mtype = 1;    // mirrors minix::PmProtocol
  int pm_exit_mtype = 3;
  int pm_kill_mtype = 2;
};

/// The core of the paper's AADL-to-C compiler: "traverse AADL models,
/// extract various processes and their unique ac_id, generate the matrix
/// data structure ... based on the specified connections." Produces the
/// in-memory policy the MINIX kernel enforces. Per Fig. 3, acknowledgment
/// messages (type 0) are allowed in both directions of every connection.
minix::AcmPolicy generate_acm(const CompiledSystem& sys,
                              const AcmGenOptions& opts = {});

/// Emit the generated matrix as C source text (what the paper compiles
/// together with the kernel binary).
std::string emit_acm_c_source(const CompiledSystem& sys,
                              const AcmGenOptions& opts = {});

/// Emit a CAmkES assembly description (the paper's in-progress
/// AADL-to-CAmkES source-to-source compiler, completed here). All
/// connections use seL4RPCCall as in §IV.B.
std::string emit_camkes_assembly(const CompiledSystem& sys);

/// Emit a CapDL-style description of the capability distribution the
/// bootstrap establishes (§III.D).
std::string emit_capdl(const CompiledSystem& sys);

}  // namespace mkbas::aadl
