#include "aadl/compile.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace mkbas::aadl {

namespace {

std::string upper_snake(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '.' || c == '-') {
      out += '_';
    } else {
      out += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  return out;
}

}  // namespace

std::optional<CompiledSystem> compile(const Model& model,
                                      const std::string& system_full_name,
                                      std::vector<Diagnostic>& diags) {
  const auto sys_it = model.system_impls.find(system_full_name);
  if (sys_it == model.system_impls.end()) {
    diags.push_back({0, "unknown system implementation " + system_full_name});
    return std::nullopt;
  }
  const SystemImpl& sys = sys_it->second;
  CompiledSystem out;
  out.name = sys.full_name;

  std::set<int> seen_ac;
  for (const Subcomponent& sub : sys.subcomponents) {
    const auto impl_it = model.process_impls.find(sub.impl_name);
    if (impl_it == model.process_impls.end()) {
      diags.push_back({sub.line, "subcomponent '" + sub.instance +
                                     "' references unknown implementation " +
                                     sub.impl_name});
      continue;
    }
    const ProcessImpl& impl = impl_it->second;
    if (model.process_types.count(impl.type_name) == 0) {
      diags.push_back({impl.line, "implementation " + impl.full_name +
                                      " references unknown type " +
                                      impl.type_name});
      continue;
    }
    if (impl.ac_id < 2) {
      diags.push_back({impl.line,
                       impl.full_name +
                           ": MKBAS::ac_id must be assigned and >= 2 "
                           "(1 is reserved for the PM server)"});
      continue;
    }
    if (!seen_ac.insert(impl.ac_id).second) {
      diags.push_back({impl.line, impl.full_name + ": duplicate ac_id " +
                                      std::to_string(impl.ac_id)});
      continue;
    }
    CompiledInstance ci;
    ci.name = sub.instance;
    ci.impl_name = impl.full_name;
    ci.ac_id = impl.ac_id;
    ci.may_kill = impl.may_kill;
    ci.fork_quota = impl.fork_quota;
    out.instances.push_back(std::move(ci));
  }

  // Resolve may_kill targets against instance names.
  for (const auto& inst : out.instances) {
    for (const auto& target : inst.may_kill) {
      if (out.find(target) == nullptr) {
        diags.push_back({0, inst.name + ": may_kill target '" + target +
                                "' is not an instance of " + sys.full_name});
      }
    }
  }

  // Connections: direction/kind/type checks plus m_type assignment.
  std::map<std::pair<std::string, std::string>, std::set<int>> used_types;
  std::vector<const Connection*> todo_auto;
  for (const Connection& conn : sys.connections) {
    const Subcomponent* src_sub = sys.find_sub(conn.src_comp);
    const Subcomponent* dst_sub = sys.find_sub(conn.dst_comp);
    if (src_sub == nullptr || dst_sub == nullptr) {
      diags.push_back({conn.line, "connection " + conn.name +
                                      " references unknown component"});
      continue;
    }
    const ProcessImpl* src_impl = model.impl_of_instance(sys, conn.src_comp);
    const ProcessImpl* dst_impl = model.impl_of_instance(sys, conn.dst_comp);
    if (src_impl == nullptr || dst_impl == nullptr) continue;  // reported
    const auto& src_type = model.process_types.at(src_impl->type_name);
    const auto& dst_type = model.process_types.at(dst_impl->type_name);
    const Port* sp = src_type.find_port(conn.src_port);
    const Port* dp = dst_type.find_port(conn.dst_port);
    if (sp == nullptr) {
      diags.push_back({conn.line, conn.name + ": no port '" + conn.src_port +
                                      "' on " + src_type.name});
      continue;
    }
    if (dp == nullptr) {
      diags.push_back({conn.line, conn.name + ": no port '" + conn.dst_port +
                                      "' on " + dst_type.name});
      continue;
    }
    if (sp->dir != PortDir::kOut) {
      diags.push_back(
          {conn.line, conn.name + ": source port must be an out port"});
      continue;
    }
    if (dp->dir != PortDir::kIn) {
      diags.push_back(
          {conn.line, conn.name + ": destination port must be an in port"});
      continue;
    }
    if (sp->kind != dp->kind) {
      diags.push_back({conn.line, conn.name + ": port kinds differ (" +
                                      std::string(to_string(sp->kind)) +
                                      " vs " + to_string(dp->kind) + ")"});
      continue;
    }
    if (!sp->data_type.empty() && !dp->data_type.empty() &&
        sp->data_type != dp->data_type) {
      diags.push_back({conn.line, conn.name + ": data types differ (" +
                                      sp->data_type + " vs " + dp->data_type +
                                      ")"});
      continue;
    }
    CompiledConnection cc;
    cc.name = conn.name;
    cc.src = conn.src_comp;
    cc.src_port = conn.src_port;
    cc.dst = conn.dst_comp;
    cc.dst_port = conn.dst_port;
    cc.m_type = conn.m_type;
    cc.kind = sp->kind;
    if (conn.m_type >= 0) {
      if (conn.m_type < 1 || conn.m_type > minix::AcmPolicy::kMaxMessageType) {
        diags.push_back({conn.line,
                         conn.name + ": m_type must be in [1, 63] "
                                     "(0 is the reserved acknowledgment)"});
        continue;
      }
      auto& used = used_types[{conn.src_comp, conn.dst_comp}];
      if (!used.insert(conn.m_type).second) {
        diags.push_back({conn.line, conn.name + ": duplicate m_type " +
                                        std::to_string(conn.m_type) +
                                        " on edge " + conn.src_comp + " -> " +
                                        conn.dst_comp});
        continue;
      }
    }
    out.connections.push_back(std::move(cc));
  }

  // Auto-assign the smallest free m_type per edge.
  for (auto& cc : out.connections) {
    if (cc.m_type >= 0) continue;
    auto& used = used_types[{cc.src, cc.dst}];
    int t = 1;
    while (used.count(t) != 0) ++t;
    if (t > minix::AcmPolicy::kMaxMessageType) {
      diags.push_back({0, cc.name + ": no free m_type left on edge"});
      continue;
    }
    used.insert(t);
    cc.m_type = t;
  }

  if (!diags.empty()) return std::nullopt;
  return out;
}

std::vector<Diagnostic> lint(const Model& model, const SystemImpl& sys) {
  std::vector<Diagnostic> warnings;
  for (const Subcomponent& sub : sys.subcomponents) {
    const ProcessImpl* impl = model.impl_of_instance(sys, sub.instance);
    if (impl == nullptr) continue;
    const auto type_it = model.process_types.find(impl->type_name);
    if (type_it == model.process_types.end()) continue;
    for (const Port& port : type_it->second.ports) {
      bool used = false;
      for (const Connection& conn : sys.connections) {
        if ((conn.src_comp == sub.instance && conn.src_port == port.name) ||
            (conn.dst_comp == sub.instance && conn.dst_port == port.name)) {
          used = true;
          break;
        }
      }
      if (!used) {
        warnings.push_back(
            {port.line, "warning: port '" + port.name + "' of instance '" +
                            sub.instance + "' is unconnected (no ACM edge "
                            "will be generated for it)"});
      }
    }
  }
  return warnings;
}

std::vector<Diagnostic> lint(const Model& model,
                             const std::string& system_full_name) {
  const auto it = model.system_impls.find(system_full_name);
  if (it == model.system_impls.end()) return {};
  return lint(model, it->second);
}

minix::AcmPolicy generate_acm(const CompiledSystem& sys,
                              const AcmGenOptions& opts) {
  minix::AcmPolicy acm;
  for (const auto& conn : sys.connections) {
    const int src_ac = sys.ac_of(conn.src);
    const int dst_ac = sys.ac_of(conn.dst);
    acm.allow(src_ac, dst_ac, {conn.m_type});
    // Acknowledgments flow both ways on every connection (Fig. 3).
    acm.allow(src_ac, dst_ac, {kAckMType});
    acm.allow(dst_ac, src_ac, {kAckMType});
  }
  bool any_quota = false;
  for (const auto& inst : sys.instances) {
    if (opts.allow_fork) {
      acm.allow(inst.ac_id, opts.pm_ac_id, {opts.pm_fork_mtype});
    }
    if (opts.allow_exit) {
      acm.allow(inst.ac_id, opts.pm_ac_id, {opts.pm_exit_mtype});
    }
    acm.allow(inst.ac_id, opts.pm_ac_id, {kAckMType});
    acm.allow(opts.pm_ac_id, inst.ac_id, {kAckMType});
    if (!inst.may_kill.empty() || opts.open_kill_syscall) {
      acm.allow(inst.ac_id, opts.pm_ac_id, {opts.pm_kill_mtype});
    }
    for (const auto& target : inst.may_kill) {
      acm.allow_kill(inst.ac_id, sys.ac_of(target));
    }
    if (inst.fork_quota >= 0) {
      acm.set_fork_quota(inst.ac_id, inst.fork_quota);
      any_quota = true;
    }
  }
  acm.set_quotas_enabled(opts.enable_quotas && any_quota);
  return acm;
}

std::string emit_acm_c_source(const CompiledSystem& sys,
                              const AcmGenOptions& opts) {
  const minix::AcmPolicy acm = generate_acm(sys, opts);
  std::ostringstream os;
  os << "/* Access control matrix for system " << sys.name << ".\n"
     << " * Generated by mkbas-aadlc; compiled together with the kernel\n"
     << " * binary -- DO NOT EDIT. */\n\n"
     << "#include \"kernel/acm.h\"\n\n";
  for (const auto& inst : sys.instances) {
    os << "#define AC_" << upper_snake(inst.name) << " " << inst.ac_id
       << "\n";
  }
  os << "#define AC_PM " << opts.pm_ac_id << "\n\n";
  os << "const struct acm_entry ACM_TABLE[] = {\n";
  std::size_t rows = 0;
  auto emit_row = [&](const std::string& s, int sa, const std::string& d,
                      int da) {
    const std::uint64_t mask = acm.mask(sa, da);
    if (mask == 0) return;
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(mask));
    os << "    { AC_" << upper_snake(s) << ", AC_" << upper_snake(d) << ", "
       << buf << "ULL },  /* " << s << " -> " << d << " */\n";
    ++rows;
  };
  for (const auto& a : sys.instances) {
    for (const auto& b : sys.instances) {
      if (a.ac_id != b.ac_id) emit_row(a.name, a.ac_id, b.name, b.ac_id);
    }
    emit_row(a.name, a.ac_id, "PM", opts.pm_ac_id);
    emit_row("PM", opts.pm_ac_id, a.name, a.ac_id);
  }
  os << "};\n"
     << "const unsigned ACM_TABLE_LEN = " << rows << ";\n\n";

  os << "const struct acm_kill_entry ACM_KILL_TABLE[] = {\n";
  std::size_t kills = 0;
  for (const auto& inst : sys.instances) {
    for (const auto& target : inst.may_kill) {
      os << "    { AC_" << upper_snake(inst.name) << ", AC_"
         << upper_snake(target) << " },\n";
      ++kills;
    }
  }
  os << "};\n"
     << "const unsigned ACM_KILL_TABLE_LEN = " << kills << ";\n";
  return os.str();
}

std::string emit_camkes_assembly(const CompiledSystem& sys) {
  std::ostringstream os;
  os << "/* CAmkES assembly for system " << sys.name << ".\n"
     << " * Generated by mkbas-aadlc (AADL -> CAmkES). */\n\n"
     << "import <std_connector.camkes>;\n\n";

  // One component definition per instance. Port kinds map to CAmkES
  // feature kinds: event data -> uses/provides (RPC), event ->
  // emits/consumes, data -> dataport.
  std::map<std::string, std::vector<std::string>> uses, provides, emits,
      consumes, dataports;
  for (const auto& conn : sys.connections) {
    switch (conn.kind) {
      case PortKind::kEventData:
        uses[conn.src].push_back(conn.src_port);
        provides[conn.dst].push_back(conn.dst_port);
        break;
      case PortKind::kEvent:
        emits[conn.src].push_back(conn.src_port);
        consumes[conn.dst].push_back(conn.dst_port);
        break;
      case PortKind::kData:
        dataports[conn.src].push_back(conn.src_port);
        dataports[conn.dst].push_back(conn.dst_port);
        break;
    }
  }
  for (const auto& inst : sys.instances) {
    os << "component " << inst.impl_name.substr(0, inst.impl_name.find('.'))
       << " {\n    control;\n";
    for (const auto& p : uses[inst.name]) {
      os << "    uses MkbasIface " << p << ";\n";
    }
    for (const auto& p : provides[inst.name]) {
      os << "    provides MkbasIface " << p << ";\n";
    }
    for (const auto& p : emits[inst.name]) {
      os << "    emits MkbasEvent " << p << ";\n";
    }
    for (const auto& p : consumes[inst.name]) {
      os << "    consumes MkbasEvent " << p << ";\n";
    }
    for (const auto& p : dataports[inst.name]) {
      os << "    dataport Buf " << p << ";\n";
    }
    os << "}\n\n";
  }

  os << "assembly {\n    composition {\n";
  for (const auto& inst : sys.instances) {
    os << "        component "
       << inst.impl_name.substr(0, inst.impl_name.find('.')) << " "
       << inst.name << ";\n";
  }
  for (const auto& conn : sys.connections) {
    const char* connector = "seL4RPCCall";
    if (conn.kind == PortKind::kEvent) connector = "seL4Notification";
    if (conn.kind == PortKind::kData) connector = "seL4SharedData";
    os << "        connection " << connector << " " << conn.name << "(from "
       << conn.src << "." << conn.src_port << ", to " << conn.dst << "."
       << conn.dst_port << ");\n";
  }
  os << "    }\n}\n";
  return os.str();
}

std::string emit_capdl(const CompiledSystem& sys) {
  std::ostringstream os;
  os << "-- CapDL capability distribution for system " << sys.name << "\n"
     << "-- Generated by mkbas-aadlc; machine-checkable against the\n"
     << "-- bootstrap (cf. formally verified system initialisation [14]).\n\n"
     << "objects {\n";
  for (const auto& inst : sys.instances) {
    os << "    tcb_" << inst.name << " = tcb\n";
    os << "    cnode_" << inst.name << " = cnode (8 bits)\n";
  }
  for (const auto& conn : sys.connections) {
    os << "    ep_" << conn.name << " = ep\n";
  }
  os << "}\n\ncaps {\n";
  // Slot assignment mirrors camkes::Bootstrap: per instance, slots from 2
  // upward in connection declaration order (uses first, then provides).
  for (const auto& inst : sys.instances) {
    os << "    cnode_" << inst.name << " {\n";
    int slot = 2;
    for (const auto& conn : sys.connections) {
      if (conn.src == inst.name) {
        os << "        " << slot++ << ": ep_" << conn.name
           << " (W, G, badge: " << sys.ac_of(inst.name) << ")\n";
      }
    }
    for (const auto& conn : sys.connections) {
      if (conn.dst == inst.name) {
        os << "        " << slot++ << ": ep_" << conn.name << " (R)\n";
      }
    }
    os << "    }\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace mkbas::aadl
