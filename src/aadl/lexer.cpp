#include "aadl/lexer.hpp"

#include <cctype>

namespace mkbas::aadl {

const char* to_string(TokKind k) {
  switch (k) {
    case TokKind::kIdent:
      return "identifier";
    case TokKind::kInt:
      return "integer";
    case TokKind::kColon:
      return "':'";
    case TokKind::kSemi:
      return "';'";
    case TokKind::kComma:
      return "','";
    case TokKind::kDot:
      return "'.'";
    case TokKind::kArrow:
      return "'->'";
    case TokKind::kFatArrow:
      return "'=>'";
    case TokKind::kLParen:
      return "'('";
    case TokKind::kRParen:
      return "')'";
    case TokKind::kLBrace:
      return "'{'";
    case TokKind::kRBrace:
      return "'}'";
    case TokKind::kColonColon:
      return "'::'";
    case TokKind::kEof:
      return "end of input";
  }
  return "?";
}

Lexer::Lexer(std::string source) : src_(std::move(source)) {}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src_.size();

  auto push = [&](TokKind k, std::string text) {
    out.push_back(Token{k, std::move(text), 0, line});
  };

  while (i < n) {
    const char c = src_[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // AADL comment: -- to end of line.
    if (c == '-' && i + 1 < n && src_[i + 1] == '-') {
      while (i < n && src_[i] != '\n') ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && src_[i + 1] == '>') {
      push(TokKind::kArrow, "->");
      i += 2;
      continue;
    }
    if (c == '=' && i + 1 < n && src_[i + 1] == '>') {
      push(TokKind::kFatArrow, "=>");
      i += 2;
      continue;
    }
    if (c == ':' && i + 1 < n && src_[i + 1] == ':') {
      push(TokKind::kColonColon, "::");
      i += 2;
      continue;
    }
    switch (c) {
      case ':':
        push(TokKind::kColon, ":");
        ++i;
        continue;
      case ';':
        push(TokKind::kSemi, ";");
        ++i;
        continue;
      case ',':
        push(TokKind::kComma, ",");
        ++i;
        continue;
      case '.':
        push(TokKind::kDot, ".");
        ++i;
        continue;
      case '(':
        push(TokKind::kLParen, "(");
        ++i;
        continue;
      case ')':
        push(TokKind::kRParen, ")");
        ++i;
        continue;
      case '{':
        push(TokKind::kLBrace, "{");
        ++i;
        continue;
      case '}':
        push(TokKind::kRBrace, "}");
        ++i;
        continue;
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(src_[i]))) ++i;
      Token t;
      t.kind = TokKind::kInt;
      t.text = src_.substr(start, i - start);
      t.int_value = std::stoll(t.text);
      t.line = line;
      out.push_back(std::move(t));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(src_[i])) ||
                       src_[i] == '_')) {
        ++i;
      }
      push(TokKind::kIdent, src_.substr(start, i - start));
      continue;
    }
    error_ = std::string("unexpected character '") + c + "'";
    error_line_ = line;
    break;
  }
  out.push_back(Token{TokKind::kEof, "", 0, line});
  return out;
}

}  // namespace mkbas::aadl
