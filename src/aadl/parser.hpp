#pragma once

#include <optional>
#include <string>
#include <vector>

#include "aadl/ast.hpp"
#include "aadl/lexer.hpp"

namespace mkbas::aadl {

/// Recursive-descent parser for the mini-AADL subset used by the paper's
/// modeling step (§IV): process types with data/event ports, process
/// implementations carrying MKBAS property annotations (ac_id, may_kill,
/// fork_quota), and system implementations with subcomponents and port
/// connections (optionally annotated with an m_type).
///
/// Grammar sketch:
///   process <Name> [features <port>;*] end <Name>;
///   process implementation <Name>.<impl>
///     [properties <MKBAS::prop => value>;*] end <Name>.<impl>;
///   system <Name> end <Name>;
///   system implementation <Name>.<impl>
///     [subcomponents <inst> : process <Name>.<impl>;*]
///     [connections <cn> : port a.p -> b.q [{ props }];*]
///   end <Name>.<impl>;
class Parser {
 public:
  explicit Parser(const std::string& source);

  /// Parse the whole source. Returns the model; check ok()/diagnostics().
  Model parse();

  bool ok() const { return diagnostics_.empty(); }
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

 private:
  const Token& peek(int ahead = 0) const;
  const Token& advance();
  bool check_ident(const std::string& kw) const;
  bool accept_ident(const std::string& kw);
  bool expect_ident(const std::string& kw);
  bool expect(TokKind k, const char* what);
  void error(const std::string& msg);
  void sync_to_semi();

  void parse_decl(Model& model);
  void parse_process(Model& model);
  void parse_system(Model& model);
  std::optional<Port> parse_feature();
  void parse_properties_block(ProcessImpl& impl);
  void parse_connection_properties(Connection& conn);
  std::optional<Subcomponent> parse_subcomponent();
  std::optional<Connection> parse_connection();

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace mkbas::aadl
