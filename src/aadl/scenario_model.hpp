#pragma once

namespace mkbas::aadl {

/// The paper's temperature-control scenario (Fig. 2) as mini-AADL source:
/// five processes, the five connections of the figure, and the ac_id
/// assignment from §IV ("TempSensorProcess.imp is 100, and
/// TempControlProcess.imp is 101 etc.").
///
/// The web interface is the untrusted component: it may only send
/// setpoint updates (m_type 2) to the control process — it holds no path
/// to the drivers and no kill permission, which is exactly the policy the
/// §IV.D attacks probe.
inline const char* temp_control_aadl() {
  return R"AADL(
-- Temperature control scenario, Biosecurity Research Institute case study.

process TempSensorProcess
  features
    sensorOut : out event data port TempReading;
end TempSensorProcess;

process TempControlProcess
  features
    sensorIn   : in event data port TempReading;
    heaterCmd  : out event data port ActuatorCmd;
    alarmCmd   : out event data port ActuatorCmd;
    setpointIn : in event data port Setpoint;
    envIn      : in event data port EnvQuery;
end TempControlProcess;

process HeaterActuatorProcess
  features
    cmdIn : in event data port ActuatorCmd;
end HeaterActuatorProcess;

process AlarmActuatorProcess
  features
    cmdIn : in event data port ActuatorCmd;
end AlarmActuatorProcess;

process WebInterfaceProcess
  features
    setpointOut : out event data port Setpoint;
    envQuery    : out event data port EnvQuery;
end WebInterfaceProcess;

process implementation TempSensorProcess.imp
  properties
    MKBAS::ac_id => 100;
end TempSensorProcess.imp;

process implementation TempControlProcess.imp
  properties
    MKBAS::ac_id => 101;
end TempControlProcess.imp;

process implementation HeaterActuatorProcess.imp
  properties
    MKBAS::ac_id => 102;
end HeaterActuatorProcess.imp;

process implementation AlarmActuatorProcess.imp
  properties
    MKBAS::ac_id => 103;
end AlarmActuatorProcess.imp;

process implementation WebInterfaceProcess.imp
  properties
    MKBAS::ac_id => 104;
    MKBAS::fork_quota => 4;
end WebInterfaceProcess.imp;

system TempControl
end TempControl;

system implementation TempControl.impl
  subcomponents
    tempSensProc  : process TempSensorProcess.imp;
    tempProc      : process TempControlProcess.imp;
    heaterActProc : process HeaterActuatorProcess.imp;
    alarmProc     : process AlarmActuatorProcess.imp;
    webInterface  : process WebInterfaceProcess.imp;
  connections
    c_sensor   : port tempSensProc.sensorOut -> tempProc.sensorIn
                 { MKBAS::m_type => 1; };
    c_heater   : port tempProc.heaterCmd -> heaterActProc.cmdIn
                 { MKBAS::m_type => 1; };
    c_alarm    : port tempProc.alarmCmd -> alarmProc.cmdIn
                 { MKBAS::m_type => 1; };
    c_setpoint : port webInterface.setpointOut -> tempProc.setpointIn
                 { MKBAS::m_type => 2; };
    -- Environment info flows control -> web (Fig. 2), but the *request*
    -- is web -> control: on every platform the untrusted web interface is
    -- a pure client of the control process, so it can never block a
    -- control thread (the asymmetric-trust rationale of §IV.B).
    c_env      : port webInterface.envQuery -> tempProc.envIn
                 { MKBAS::m_type => 3; };
end TempControl.impl;
)AADL";
}

/// Canonical ac_ids of the scenario (§IV).
struct ScenarioAcIds {
  static constexpr int kTempSensor = 100;
  static constexpr int kTempControl = 101;
  static constexpr int kHeaterActuator = 102;
  static constexpr int kAlarmActuator = 103;
  static constexpr int kWebInterface = 104;
};

/// Message types on the scenario's edges.
struct ScenarioMTypes {
  static constexpr int kAck = 0;
  static constexpr int kSensorData = 1;   // tempSensProc -> tempProc
  static constexpr int kActuatorCmd = 1;  // tempProc -> heater/alarm
  static constexpr int kSetpoint = 2;  // webInterface -> tempProc
  static constexpr int kEnvQuery = 3;  // webInterface -> tempProc (reply
                                       // carries the environment info)
};

}  // namespace mkbas::aadl
