#include "aadl/parser.hpp"

namespace mkbas::aadl {

const char* to_string(PortDir d) {
  return d == PortDir::kIn ? "in" : "out";
}

const char* to_string(PortKind k) {
  switch (k) {
    case PortKind::kData:
      return "data";
    case PortKind::kEvent:
      return "event";
    case PortKind::kEventData:
      return "event data";
  }
  return "?";
}

Parser::Parser(const std::string& source) {
  Lexer lex(source);
  toks_ = lex.tokenize();
  if (!lex.error().empty()) {
    diagnostics_.push_back({lex.error_line(), lex.error()});
  }
}

const Token& Parser::peek(int ahead) const {
  const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
  return i < toks_.size() ? toks_[i] : toks_.back();
}

const Token& Parser::advance() {
  const Token& t = peek();
  if (pos_ + 1 < toks_.size()) ++pos_;
  return t;
}

bool Parser::check_ident(const std::string& kw) const {
  return peek().kind == TokKind::kIdent && peek().text == kw;
}

bool Parser::accept_ident(const std::string& kw) {
  if (!check_ident(kw)) return false;
  advance();
  return true;
}

bool Parser::expect_ident(const std::string& kw) {
  if (accept_ident(kw)) return true;
  error("expected '" + kw + "', found '" + peek().text + "'");
  return false;
}

bool Parser::expect(TokKind k, const char* what) {
  if (peek().kind == k) {
    advance();
    return true;
  }
  error(std::string("expected ") + what + ", found '" + peek().text + "'");
  return false;
}

void Parser::error(const std::string& msg) {
  diagnostics_.push_back({peek().line, msg});
}

void Parser::sync_to_semi() {
  while (peek().kind != TokKind::kSemi && peek().kind != TokKind::kEof) {
    advance();
  }
  if (peek().kind == TokKind::kSemi) advance();
}

Model Parser::parse() {
  Model model;
  while (peek().kind != TokKind::kEof) {
    const std::size_t before = pos_;
    parse_decl(model);
    if (pos_ == before) advance();  // never loop forever on junk
  }
  return model;
}

void Parser::parse_decl(Model& model) {
  if (check_ident("process")) {
    parse_process(model);
  } else if (check_ident("system")) {
    parse_system(model);
  } else {
    error("expected 'process' or 'system' declaration, found '" +
          peek().text + "'");
    sync_to_semi();
  }
}

// process <Name> ... | process implementation <Name>.<impl> ...
void Parser::parse_process(Model& model) {
  const int line = peek().line;
  expect_ident("process");
  if (accept_ident("implementation")) {
    ProcessImpl impl;
    impl.line = line;
    const Token& type_tok = peek();
    if (!expect(TokKind::kIdent, "process type name")) return sync_to_semi();
    impl.type_name = type_tok.text;
    if (!expect(TokKind::kDot, "'.'")) return sync_to_semi();
    const Token& impl_tok = peek();
    if (!expect(TokKind::kIdent, "implementation name")) return sync_to_semi();
    impl.full_name = impl.type_name + "." + impl_tok.text;

    if (accept_ident("properties")) parse_properties_block(impl);

    expect_ident("end");
    expect(TokKind::kIdent, "type name");
    expect(TokKind::kDot, "'.'");
    expect(TokKind::kIdent, "implementation name");
    expect(TokKind::kSemi, "';'");
    if (model.process_impls.count(impl.full_name) != 0) {
      diagnostics_.push_back(
          {line, "duplicate process implementation " + impl.full_name});
      return;
    }
    model.process_impls[impl.full_name] = std::move(impl);
    return;
  }

  ProcessType type;
  type.line = line;
  const Token& name_tok = peek();
  if (!expect(TokKind::kIdent, "process type name")) return sync_to_semi();
  type.name = name_tok.text;
  if (accept_ident("features")) {
    while (!check_ident("end") && peek().kind != TokKind::kEof) {
      auto port = parse_feature();
      if (port.has_value()) type.ports.push_back(std::move(*port));
    }
  }
  expect_ident("end");
  expect(TokKind::kIdent, "type name");
  expect(TokKind::kSemi, "';'");
  if (model.process_types.count(type.name) != 0) {
    diagnostics_.push_back({line, "duplicate process type " + type.name});
    return;
  }
  model.process_types[type.name] = std::move(type);
}

// <pname> : in|out [event] [data] port [DataType] ;
std::optional<Port> Parser::parse_feature() {
  Port port;
  port.line = peek().line;
  const Token& name_tok = peek();
  if (!expect(TokKind::kIdent, "port name")) {
    sync_to_semi();
    return std::nullopt;
  }
  port.name = name_tok.text;
  if (!expect(TokKind::kColon, "':'")) {
    sync_to_semi();
    return std::nullopt;
  }
  if (accept_ident("in")) {
    port.dir = PortDir::kIn;
  } else if (accept_ident("out")) {
    port.dir = PortDir::kOut;
  } else {
    error("expected 'in' or 'out'");
    sync_to_semi();
    return std::nullopt;
  }
  const bool is_event = accept_ident("event");
  const bool is_data = accept_ident("data");
  if (is_event && is_data) {
    port.kind = PortKind::kEventData;
  } else if (is_event) {
    port.kind = PortKind::kEvent;
  } else if (is_data) {
    port.kind = PortKind::kData;
  } else {
    error("expected 'event', 'data' or 'event data'");
    sync_to_semi();
    return std::nullopt;
  }
  if (!expect_ident("port")) {
    sync_to_semi();
    return std::nullopt;
  }
  if (peek().kind == TokKind::kIdent) {
    port.data_type = advance().text;
  }
  expect(TokKind::kSemi, "';'");
  return port;
}

// properties MKBAS::ac_id => 100; MKBAS::may_kill => (a, b); ...
void Parser::parse_properties_block(ProcessImpl& impl) {
  while (check_ident("MKBAS")) {
    advance();
    if (!expect(TokKind::kColonColon, "'::'")) return sync_to_semi();
    const Token& prop = peek();
    if (!expect(TokKind::kIdent, "property name")) return sync_to_semi();
    if (!expect(TokKind::kFatArrow, "'=>'")) return sync_to_semi();
    if (prop.text == "ac_id") {
      const Token& v = peek();
      if (!expect(TokKind::kInt, "integer ac_id")) return sync_to_semi();
      impl.ac_id = static_cast<int>(v.int_value);
    } else if (prop.text == "fork_quota") {
      const Token& v = peek();
      if (!expect(TokKind::kInt, "integer quota")) return sync_to_semi();
      impl.fork_quota = static_cast<int>(v.int_value);
    } else if (prop.text == "may_kill") {
      if (!expect(TokKind::kLParen, "'('")) return sync_to_semi();
      while (peek().kind == TokKind::kIdent) {
        impl.may_kill.push_back(advance().text);
        if (peek().kind != TokKind::kComma) break;
        advance();
      }
      if (!expect(TokKind::kRParen, "')'")) return sync_to_semi();
    } else {
      error("unknown MKBAS property '" + prop.text + "'");
      sync_to_semi();
      continue;
    }
    expect(TokKind::kSemi, "';'");
  }
}

// { MKBAS::m_type => 2; }
void Parser::parse_connection_properties(Connection& conn) {
  while (check_ident("MKBAS")) {
    advance();
    if (!expect(TokKind::kColonColon, "'::'")) return sync_to_semi();
    const Token& prop = peek();
    if (!expect(TokKind::kIdent, "property name")) return sync_to_semi();
    if (!expect(TokKind::kFatArrow, "'=>'")) return sync_to_semi();
    if (prop.text == "m_type") {
      const Token& v = peek();
      if (!expect(TokKind::kInt, "integer m_type")) return sync_to_semi();
      conn.m_type = static_cast<int>(v.int_value);
    } else {
      error("unknown connection property '" + prop.text + "'");
      sync_to_semi();
      continue;
    }
    expect(TokKind::kSemi, "';'");
  }
}

void Parser::parse_system(Model& model) {
  const int line = peek().line;
  expect_ident("system");
  if (accept_ident("implementation")) {
    SystemImpl sys;
    sys.line = line;
    const Token& type_tok = peek();
    if (!expect(TokKind::kIdent, "system type name")) return sync_to_semi();
    sys.type_name = type_tok.text;
    if (!expect(TokKind::kDot, "'.'")) return sync_to_semi();
    const Token& impl_tok = peek();
    if (!expect(TokKind::kIdent, "implementation name")) return sync_to_semi();
    sys.full_name = sys.type_name + "." + impl_tok.text;

    if (accept_ident("subcomponents")) {
      while (!check_ident("connections") && !check_ident("end") &&
             peek().kind != TokKind::kEof) {
        auto sub = parse_subcomponent();
        if (sub.has_value()) sys.subcomponents.push_back(std::move(*sub));
      }
    }
    if (accept_ident("connections")) {
      while (!check_ident("end") && peek().kind != TokKind::kEof) {
        auto conn = parse_connection();
        if (conn.has_value()) sys.connections.push_back(std::move(*conn));
      }
    }
    expect_ident("end");
    expect(TokKind::kIdent, "type name");
    expect(TokKind::kDot, "'.'");
    expect(TokKind::kIdent, "implementation name");
    expect(TokKind::kSemi, "';'");
    if (model.system_impls.count(sys.full_name) != 0) {
      diagnostics_.push_back(
          {line, "duplicate system implementation " + sys.full_name});
      return;
    }
    model.system_impls[sys.full_name] = std::move(sys);
    return;
  }

  const Token& name_tok = peek();
  if (!expect(TokKind::kIdent, "system name")) return sync_to_semi();
  expect_ident("end");
  expect(TokKind::kIdent, "system name");
  expect(TokKind::kSemi, "';'");
  model.system_types[name_tok.text] = name_tok.text;
}

// <inst> : process <Type>.<impl> ;
std::optional<Subcomponent> Parser::parse_subcomponent() {
  Subcomponent sub;
  sub.line = peek().line;
  const Token& inst = peek();
  if (!expect(TokKind::kIdent, "instance name")) {
    sync_to_semi();
    return std::nullopt;
  }
  sub.instance = inst.text;
  if (!expect(TokKind::kColon, "':'") || !expect_ident("process")) {
    sync_to_semi();
    return std::nullopt;
  }
  const Token& type_tok = peek();
  if (!expect(TokKind::kIdent, "process type")) {
    sync_to_semi();
    return std::nullopt;
  }
  if (!expect(TokKind::kDot, "'.'")) {
    sync_to_semi();
    return std::nullopt;
  }
  const Token& impl_tok = peek();
  if (!expect(TokKind::kIdent, "implementation name")) {
    sync_to_semi();
    return std::nullopt;
  }
  sub.impl_name = type_tok.text + "." + impl_tok.text;
  expect(TokKind::kSemi, "';'");
  return sub;
}

// <cn> : port a.p -> b.q [{ MKBAS::m_type => N; }] ;
std::optional<Connection> Parser::parse_connection() {
  Connection conn;
  conn.line = peek().line;
  const Token& name_tok = peek();
  if (!expect(TokKind::kIdent, "connection name")) {
    sync_to_semi();
    return std::nullopt;
  }
  conn.name = name_tok.text;
  if (!expect(TokKind::kColon, "':'") || !expect_ident("port")) {
    sync_to_semi();
    return std::nullopt;
  }
  auto qualified = [&](std::string& comp, std::string& port) -> bool {
    const Token& c = peek();
    if (!expect(TokKind::kIdent, "component name")) return false;
    comp = c.text;
    if (!expect(TokKind::kDot, "'.'")) return false;
    const Token& p = peek();
    if (!expect(TokKind::kIdent, "port name")) return false;
    port = p.text;
    return true;
  };
  if (!qualified(conn.src_comp, conn.src_port)) {
    sync_to_semi();
    return std::nullopt;
  }
  if (!expect(TokKind::kArrow, "'->'")) {
    sync_to_semi();
    return std::nullopt;
  }
  if (!qualified(conn.dst_comp, conn.dst_port)) {
    sync_to_semi();
    return std::nullopt;
  }
  if (peek().kind == TokKind::kLBrace) {
    advance();
    parse_connection_properties(conn);
    expect(TokKind::kRBrace, "'}'");
  }
  expect(TokKind::kSemi, "';'");
  return conn;
}

}  // namespace mkbas::aadl
