#pragma once

#include <string>
#include <vector>

namespace mkbas::aadl {

enum class TokKind {
  kIdent,
  kInt,
  kColon,       // :
  kSemi,        // ;
  kComma,       // ,
  kDot,         // .
  kArrow,       // ->
  kFatArrow,    // =>
  kLParen,      // (
  kRParen,      // )
  kLBrace,      // {
  kRBrace,      // }
  kColonColon,  // ::
  kEof,
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;
  long long int_value = 0;
  int line = 1;
};

const char* to_string(TokKind k);

/// Tokenizes a mini-AADL source. `--` starts a comment to end of line
/// (AADL comment syntax). Identifiers are case-sensitive; keywords are
/// recognised by the parser, not the lexer.
class Lexer {
 public:
  explicit Lexer(std::string source);

  /// Tokenize the whole input. On a bad character, emits an kEof token and
  /// sets error().
  std::vector<Token> tokenize();

  const std::string& error() const { return error_; }
  int error_line() const { return error_line_; }

 private:
  std::string src_;
  std::string error_;
  int error_line_ = 0;
};

}  // namespace mkbas::aadl
