#include "obs/series.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace mkbas::obs {

namespace {

bool g_dummy_enabled = false;

Series::Cell& dummy_cell() {
  static Series::Cell cell = [] {
    Series::Cell c;
    c.ring.resize(1);
    return c;
  }();
  return cell;
}

// log2 bucket of a sample: 0 for v <= 1, else ceil(log2(v)), clamped to
// the top bucket (which therefore holds all overflow).
std::size_t bucket_of(double v) {
  if (!(v > 1.0)) return 0;  // also catches NaN
  int e = std::ilogb(v);
  if (std::ldexp(1.0, e) < v) ++e;
  if (e < 0) return 0;
  return std::min<std::size_t>(static_cast<std::size_t>(e),
                               SeriesWindow::kBuckets - 1);
}

}  // namespace

// ---- SeriesWindow ----

void SeriesWindow::reset(std::int64_t idx) {
  index = idx;
  count = 0;
  sum = 0.0;
  min = std::numeric_limits<double>::infinity();
  max = -std::numeric_limits<double>::infinity();
  buckets.fill(0);
}

void SeriesWindow::add(double v) {
  ++count;
  sum += v;
  if (v < min) min = v;
  if (v > max) max = v;
  ++buckets[bucket_of(v)];
}

double SeriesWindow::quantile(double q) const {
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cum += buckets[b];
    if (static_cast<double>(cum) >= target) {
      // Bucket upper bound, clamped to the exact max so a one-sample
      // window reports its sample, not the next power of two.
      return std::min(std::ldexp(1.0, static_cast<int>(b)), max);
    }
  }
  return max;
}

// ---- Series ----

Series::Series() : cell_(&dummy_cell()), enabled_(&g_dummy_enabled) {}

void Series::record(sim::Time t, double v) {
  if (*enabled_) cell_->record(t, v);
}

std::uint64_t Series::samples() const { return cell_->samples; }

// ---- Series::Cell ----

void Series::Cell::record(sim::Time t, double v) {
  ++samples;
  const std::int64_t idx = t / width;
  if (idx == newest) {  // hot path: samples land in the live window
    slot(live - 1).add(v);
    return;
  }
  if (idx > newest) {
    advance_to(idx);
    slot(live - 1).add(v);
    return;
  }
  // Older window: still in the ring (merge or out-of-order feed), or
  // gone for good.
  if (idx >= oldest()) {
    slot(static_cast<std::size_t>(idx - oldest())).add(v);
  } else {
    ++late_dropped;
  }
}

void Series::Cell::advance_to(std::int64_t idx) {
  if (idx <= newest) return;
  const std::size_t cap = ring.size();
  if (newest < 0 ||
      idx - newest >= static_cast<std::int64_t>(cap)) {
    // Fresh start, or a gap wider than the whole ring: everything live
    // is evicted in one step.
    for (std::size_t i = 0; i < live; ++i) {
      ++evicted_windows;
      evicted_samples += slot(i).count;
    }
    head = 0;
    live = 1;
    ring[0].reset(idx);
    newest = idx;
    return;
  }
  // Step forward one window at a time, materialising intermediate empty
  // windows so downstream rate math sees gaps as zeros, not absence.
  while (newest < idx) {
    if (live == cap) {
      ++evicted_windows;
      evicted_samples += ring[head].count;
      ring[head].reset(newest + 1);
      head = (head + 1) % cap;
    } else {
      ++live;
      slot(live - 1).reset(newest + 1);
    }
    ++newest;
  }
}

// ---- SeriesStore ----

Series SeriesStore::series(const std::string& name, sim::Duration width,
                           std::size_t windows) {
  const auto key = std::make_pair(machine_, name);
  auto it = cells_.find(key);
  if (it == cells_.end()) {
    cell_storage_.emplace_back();
    Series::Cell& cell = cell_storage_.back();
    cell.width = width > 0 ? width : kDefaultSeriesWidth;
    cell.ring.resize(windows > 0 ? windows : 1);
    it = cells_.emplace(key, &cell).first;
  }
  return Series(it->second, &enabled_);
}

std::uint64_t SeriesStore::evicted_windows() const {
  std::uint64_t n = 0;
  for (const auto& [key, cell] : cells_) n += cell->evicted_windows;
  return n;
}

std::uint64_t SeriesStore::evicted_samples() const {
  std::uint64_t n = 0;
  for (const auto& [key, cell] : cells_) n += cell->evicted_samples;
  return n;
}

std::uint64_t SeriesStore::late_dropped() const {
  std::uint64_t n = 0;
  for (const auto& [key, cell] : cells_) n += cell->late_dropped;
  return n;
}

std::uint64_t SeriesStore::total_samples() const {
  std::uint64_t n = 0;
  for (const auto& [key, cell] : cells_) n += cell->samples;
  return n;
}

std::uint64_t SeriesStore::live_samples() const {
  std::uint64_t n = 0;
  for (const auto& [key, cell] : cells_) {
    for (std::size_t i = 0; i < cell->live; ++i) n += cell->slot(i).count;
  }
  return n;
}

void SeriesStore::merge_from(const SeriesStore& other) {
  if (&other == this) return;
  for (const auto& [key, ocell] : other.cells_) {
    auto it = cells_.find(key);
    if (it == cells_.end()) {
      cell_storage_.emplace_back();
      Series::Cell& fresh = cell_storage_.back();
      fresh.width = ocell->width;
      fresh.ring.resize(ocell->ring.size());
      it = cells_.emplace(key, &fresh).first;
    }
    Series::Cell& dst = *it->second;
    for (std::size_t i = 0; i < ocell->live; ++i) {
      const SeriesWindow& w = ocell->slot(i);
      if (w.index > dst.newest) dst.advance_to(w.index);
      if (w.index < dst.oldest()) {
        // Window predates everything this ring still holds.
        ++dst.evicted_windows;
        dst.evicted_samples += w.count;
        continue;
      }
      SeriesWindow& d =
          dst.slot(static_cast<std::size_t>(w.index - dst.oldest()));
      d.count += w.count;
      d.sum += w.sum;
      if (w.min < d.min) d.min = w.min;
      if (w.max > d.max) d.max = w.max;
      for (std::size_t b = 0; b < SeriesWindow::kBuckets; ++b) {
        d.buckets[b] += w.buckets[b];
      }
    }
    dst.samples += ocell->samples;
    dst.evicted_windows += ocell->evicted_windows;
    dst.evicted_samples += ocell->evicted_samples;
    dst.late_dropped += ocell->late_dropped;
  }
}

void SeriesStore::append_series_map(std::ostream& os,
                                    std::size_t max_windows) const {
  // Re-key lexically so the JSON keeps "keys sorted at every level".
  std::map<std::string, const Series::Cell*> by_name;
  for (const auto& [key, cell] : cells_) {
    by_name.emplace(key.second + "@m" + std::to_string(key.first), cell);
  }
  os << '{';
  bool first = true;
  for (const auto& [name, cell] : by_name) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name)
       << "\":{\"evicted_samples\":" << cell->evicted_samples
       << ",\"evicted_windows\":" << cell->evicted_windows
       << ",\"late_dropped\":" << cell->late_dropped
       << ",\"samples\":" << cell->samples
       << ",\"width_us\":" << cell->width << ",\"windows\":[";
    std::size_t begin = 0;
    if (max_windows > 0 && cell->live > max_windows) {
      begin = cell->live - max_windows;
    }
    bool wfirst = true;
    for (std::size_t i = begin; i < cell->live; ++i) {
      const SeriesWindow& w = cell->slot(i);
      if (w.count == 0) continue;  // elide empty windows
      if (!wfirst) os << ',';
      wfirst = false;
      os << "{\"count\":" << w.count << ",\"max\":" << json_double(w.max)
         << ",\"min\":" << json_double(w.min)
         << ",\"p95\":" << json_double(w.quantile(0.95))
         << ",\"start\":" << w.index * cell->width
         << ",\"sum\":" << json_double(w.sum) << '}';
    }
    os << "]}";
  }
  os << '}';
}

std::string SeriesStore::to_json() const {
  std::ostringstream os;
  os << "{\"schema_version\":" << kSchemaVersion << ",\"series\":";
  append_series_map(os, 0);
  os << '}';
  return os.str();
}

std::string SeriesStore::recent_json(std::size_t max_windows) const {
  std::ostringstream os;
  append_series_map(os, max_windows == 0 ? 1 : max_windows);
  return os.str();
}

}  // namespace mkbas::obs
