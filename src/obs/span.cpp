#include "obs/span.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/json.hpp"  // json_escape, json_hex64, kSchemaVersion

namespace mkbas::obs {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

// ---- SpanLog ----

void SpanLog::drop_front(std::size_t n) {
  if (n >= size_) {
    buf_.clear();
    head_ = 0;
    size_ = 0;
    return;
  }
  std::vector<Span> keep;
  keep.reserve(size_ - n);
  for (std::size_t i = n; i < size_; ++i) keep.push_back((*this)[i]);
  buf_ = std::move(keep);
  head_ = 0;
  size_ -= n;
}

// ---- SpanStore ----

void SpanStore::set_capacity(std::size_t cap) {
  capacity_ = cap;
  if (capacity_ > 0 && done_.size() > capacity_) {
    const std::size_t n = done_.size() - capacity_;
    done_.drop_front(n);
    dropped_ += n;
  }
}

std::uint64_t SpanStore::next_id(sim::Time now) {
  // [tag16 | machine8 | seq40]. Still a pure function of (machine,
  // virtual time, sequence) — the deterministic simulation history,
  // never wall clock or memory layout. The embedded sequence makes the
  // lineage index a dense array; the splitmix64 tag folds the virtual
  // start time in, so an id minted by a different history that aliases
  // this (machine, seq) is recognised and treated as never-seen.
  ++seq_;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(machine_))
       << 32) ^
      seq_;
  std::uint64_t tag =
      splitmix64(key ^ splitmix64(static_cast<std::uint64_t>(now))) >> 48;
  if (tag == 0) tag = 1;  // tag 0 marks an empty lineage slot
  return (tag << 48) |
         (static_cast<std::uint64_t>(machine_ & 0xff) << kSeqBits) |
         (seq_ & kSeqMask);
}

SpanContext* SpanStore::current_slot(int pid) {
  // Index pid + 1: slot 0 is the kernel's pid -1. Unknown pids below
  // that never carry context.
  if (pid < -1) return nullptr;
  const std::size_t idx = static_cast<std::size_t>(pid + 1);
  if (idx >= current_.size()) current_.resize(idx + 1);
  return &current_[idx];
}

SpanStore::Opened SpanStore::open_span(int pid, sim::Time now,
                                       std::uint32_t name,
                                       SpanContext parent) {
  Span s;
  s.span_id = next_id(now);
  if (parent.valid()) {
    s.trace_id = parent.trace_id;
    s.parent_span = parent.parent_span;
  } else {
    // Root of a fresh trace; derive the trace id from the span id so
    // one counter drives both.
    s.trace_id = splitmix64(s.span_id ^ 0x7261636564ULL);
    if (s.trace_id == 0) s.trace_id = 1;
  }
  s.name = name;
  s.machine = machine_;
  s.pid = pid;
  s.start = now;
  ++total_begun_;
  lineage_.insert(s.span_id,
                  Lineage{s.parent_span, s.trace_id, s.name, s.start});
  const Opened o{s.span_id, s.trace_id};
  open_.push_back(s);
  return o;
}

std::uint64_t SpanStore::begin(int pid, sim::Time now,
                               const std::string& name) {
  if (!enabled_) return 0;
  return begin(pid, now, sim::TagRegistry::instance().intern(name));
}

std::uint64_t SpanStore::begin(int pid, sim::Time now, std::uint32_t name) {
  if (!enabled_) return 0;
  const Opened o = open_span(pid, now, name, current(pid));
  if (SpanContext* slot = current_slot(pid)) *slot = {o.trace, o.id};
  return o.id;
}

std::uint64_t SpanStore::begin_flow(int pid, sim::Time now,
                                    std::uint32_t name, SpanContext parent) {
  if (!enabled_) return 0;
  return open_span(pid, now, name, parent).id;
}

int SpanStore::find_open(std::uint64_t span_id) const {
  for (std::size_t i = open_.size(); i-- > 0;) {
    if (open_[i].span_id == span_id) return static_cast<int>(i);
  }
  return -1;
}

void SpanStore::close_at(std::size_t idx, sim::Time now, std::uint32_t note,
                         bool abandoned) {
  // Patch the record in place and copy it into the done ring once;
  // only then swap-remove from the open list (one 64-byte copy saved
  // per close on the IPC hot path).
  Span& s = open_[idx];
  s.end = now;
  s.note = note;
  s.abandoned = abandoned;
  if (abandoned) {
    ++total_abandoned_;
  } else {
    ++total_ended_;
  }
  push_done(s);
  open_[idx] = open_.back();
  open_.pop_back();
}

void SpanStore::close_span(sim::Time now, std::uint64_t span_id,
                           std::uint32_t note, bool abandoned) {
  const int idx = find_open(span_id);
  if (idx < 0) return;
  close_at(static_cast<std::size_t>(idx), now, note, abandoned);
}

void SpanStore::end(int pid, sim::Time now, std::uint64_t span_id,
                    std::uint32_t note) {
  if (span_id == 0) return;
  const int idx = find_open(span_id);
  if (idx < 0) return;
  // Restore the owner's context to this span's parent.
  const Span& s = open_[static_cast<std::size_t>(idx)];
  if (SpanContext* slot = current_slot(pid)) {
    *slot = s.parent_span != 0 ? SpanContext{s.trace_id, s.parent_span}
                               : SpanContext{};
  }
  close_at(static_cast<std::size_t>(idx), now, note, /*abandoned=*/false);
}

void SpanStore::end_flow(sim::Time now, std::uint64_t span_id,
                         std::uint32_t note) {
  if (span_id == 0) return;
  close_span(now, span_id, note, /*abandoned=*/false);
}

SpanContext SpanStore::current(int pid) const {
  if (!enabled_ || pid < -1) return {};
  const std::size_t idx = static_cast<std::size_t>(pid + 1);
  return idx < current_.size() ? current_[idx] : SpanContext{};
}

void SpanStore::set_current(int pid, SpanContext ctx) {
  if (!enabled_) return;
  if (SpanContext* slot = current_slot(pid)) {
    *slot = ctx.valid() ? ctx : SpanContext{};
  }
}

SpanContext SpanStore::context_of(std::uint64_t span_id) const {
  const LineageIndex::Entry* lin = lineage_.find(span_id);
  return lin == nullptr ? SpanContext{} : SpanContext{lin->trace, span_id};
}

void SpanStore::process_gone(int pid, sim::Time now) {
  if (SpanContext* slot = current_slot(pid)) *slot = {};
  // Collect first: close_span swap-removes from open_. The open list's
  // order depends on close history, so sort oldest-first by (start,
  // span id) to keep the done_ order deterministic.
  std::vector<std::pair<sim::Time, std::uint64_t>> mine;
  for (const Span& s : open_) {
    if (s.pid == pid) mine.emplace_back(s.start, s.span_id);
  }
  std::sort(mine.begin(), mine.end());
  for (const auto& [start, id] : mine) {
    close_span(now, id, 0, /*abandoned=*/true);
  }
}

std::vector<std::uint64_t> SpanStore::chain(std::uint64_t span_id) const {
  std::vector<std::uint64_t> out;
  std::uint64_t cur = span_id;
  while (cur != 0 && out.size() < 256) {  // cycle guard
    const LineageIndex::Entry* lin = lineage_.find(cur);
    if (lin == nullptr) break;  // remote parent: protocol limit
    out.push_back(cur);
    cur = lin->parent;
  }
  return out;
}

std::uint32_t SpanStore::name_of(std::uint64_t span_id) const {
  const LineageIndex::Entry* lin = lineage_.find(span_id);
  return lin == nullptr ? 0 : lin->name;
}

sim::Time SpanStore::start_of(std::uint64_t span_id) const {
  const LineageIndex::Entry* lin = lineage_.find(span_id);
  return lin == nullptr ? -1 : lin->start;
}

std::uint64_t SpanStore::root_of(std::uint64_t span_id) const {
  const auto c = chain(span_id);
  return c.empty() ? 0 : c.back();
}

void SpanStore::push_done(const Span& s) {
  if (capacity_ > 0 && done_.size() >= capacity_) {
    // Ring steady state: overwrite the oldest slot in place — no
    // allocation, no element shuffle (this is the IPC hot path).
    done_.push_wrap(s);
    ++dropped_;
    return;
  }
  done_.push_back(s);
}

void SpanStore::merge_from(const SpanStore& other) {
  if (&other == this) return;
  const auto& lanes = other.lineage_.lanes();
  for (std::size_t mach = 0; mach < lanes.size(); ++mach) {
    for (std::size_t i = 0; i < lanes[mach].size(); ++i) {
      const LineageIndex::Entry& e = lanes[mach][i];
      if (e.tag == 0) continue;
      const std::uint64_t id =
          (static_cast<std::uint64_t>(e.tag) << 48) |
          (static_cast<std::uint64_t>(mach) << kSeqBits) | (i + 1);
      lineage_.insert(id, Lineage{e.parent, e.trace, e.name, e.start});
    }
  }
  for (const Span& s : other.done_) {
    push_done(s);
  }
  total_begun_ += other.total_begun_;
  total_ended_ += other.total_ended_;
  total_abandoned_ += other.total_abandoned_;
  dropped_ += other.dropped_;
}

std::string SpanStore::to_json() const {
  auto& tags = sim::TagRegistry::instance();
  std::ostringstream os;
  os << "{\"dropped\":" << dropped_
     << ",\"schema_version\":" << kSchemaVersion << ",\"spans\":[";
  bool first = true;
  for (const Span& s : done_) {
    if (!first) os << ',';
    first = false;
    os << "{\"abandoned\":" << (s.abandoned ? "true" : "false")
       << ",\"end\":" << s.end << ",\"machine\":" << s.machine
       << ",\"name\":\"" << json_escape(tags.name(s.name)) << "\"";
    if (s.note != 0) {
      os << ",\"note\":\"" << json_escape(tags.name(s.note)) << "\"";
    }
    os << ",\"parent\":\"" << json_hex64(s.parent_span) << "\",\"pid\":"
       << s.pid << ",\"span\":\"" << json_hex64(s.span_id) << "\",\"start\":"
       << s.start << ",\"trace\":\"" << json_hex64(s.trace_id) << "\"}";
  }
  os << "],\"total_abandoned\":" << total_abandoned_
     << ",\"total_begun\":" << total_begun_
     << ",\"total_ended\":" << total_ended_ << "}";
  return os.str();
}

// ---- AuditJournal ----

void AuditJournal::record(sim::Time time, int machine, int pid,
                          std::uint32_t kind, std::string detail,
                          const SpanStore& spans, SpanContext at) {
  if (!enabled_) return;
  AuditEntry e;
  e.time = time;
  e.machine = machine;
  e.pid = pid;
  e.kind = kind;
  e.detail = std::move(detail);
  e.trace_id = at.trace_id;
  // Snapshot now: the chain must survive ring eviction and the death
  // of every process involved.
  e.chain = spans.chain(at.parent_span);
  e.chain_names.reserve(e.chain.size());
  for (std::uint64_t id : e.chain) {
    e.chain_names.push_back(spans.name_of(id));
  }
  entries_.push_back(std::move(e));
  if (on_record_) on_record_(entries_.back());
}

void AuditJournal::record(sim::Time time, int machine, int pid,
                          const std::string& kind, std::string detail,
                          const SpanStore& spans, SpanContext at) {
  if (!enabled_) return;
  record(time, machine, pid, sim::TagRegistry::instance().intern(kind),
         std::move(detail), spans, at);
}

std::vector<AuditEntry> AuditJournal::with_kind(
    const std::string& kind) const {
  std::vector<AuditEntry> out;
  std::uint32_t tag = 0;
  if (!sim::TagRegistry::instance().try_lookup(kind, &tag)) return out;
  for (const AuditEntry& e : entries_) {
    if (e.kind == tag) out.push_back(e);
  }
  return out;
}

void AuditJournal::merge_from(const AuditJournal& other) {
  if (&other == this) return;
  entries_.insert(entries_.end(), other.entries_.begin(),
                  other.entries_.end());
}

std::string AuditJournal::to_json() const {
  auto& tags = sim::TagRegistry::instance();
  std::ostringstream os;
  os << "{\"entries\":[";
  bool first = true;
  for (const AuditEntry& e : entries_) {
    if (!first) os << ',';
    first = false;
    os << "{\"chain\":[";
    for (std::size_t i = 0; i < e.chain.size(); ++i) {
      if (i > 0) os << ',';
      os << "{\"name\":\"" << json_escape(tags.name(e.chain_names[i]))
         << "\",\"span\":\"" << json_hex64(e.chain[i]) << "\"}";
    }
    os << "],\"detail\":\"" << json_escape(e.detail) << "\",\"kind\":\""
       << json_escape(tags.name(e.kind)) << "\",\"machine\":" << e.machine
       << ",\"pid\":" << e.pid << ",\"time\":" << e.time
       << ",\"trace\":\"" << json_hex64(e.trace_id) << "\"}";
  }
  os << "],\"schema_version\":" << kSchemaVersion << "}";
  return os.str();
}

// ---- critical path ----

std::string critical_path_json(const SpanStore& store,
                               const std::string& root_name,
                               const std::string& leaf_name) {
  auto& tags = sim::TagRegistry::instance();
  std::uint32_t root_tag = 0;
  std::uint32_t leaf_tag = 0;
  const bool have_root = tags.try_lookup(root_name, &root_tag);
  const bool have_leaf = tags.try_lookup(leaf_name, &leaf_tag);

  struct PathAgg {
    std::vector<std::uint32_t> names;  // root -> leaf
    std::vector<double> hop_total_us;
    double e2e_total_us = 0;
    std::uint64_t traces = 0;
  };
  // Keyed by signature string for deterministic output order.
  std::map<std::string, PathAgg> paths;

  if (have_root && have_leaf) {
    for (const Span& leaf : store.spans()) {
      if (leaf.name != leaf_tag || leaf.abandoned) continue;
      std::vector<std::uint64_t> up = store.chain(leaf.span_id);
      if (up.empty()) continue;
      if (store.name_of(up.back()) != root_tag) continue;
      std::reverse(up.begin(), up.end());  // root -> leaf

      std::vector<std::uint32_t> names;
      std::vector<double> hops;
      bool complete = true;
      for (std::size_t i = 0; i < up.size(); ++i) {
        const sim::Time start = store.start_of(up[i]);
        if (start < 0) {
          complete = false;
          break;
        }
        names.push_back(store.name_of(up[i]));
        // Telescoping decomposition: hop i runs to the next hop's
        // start; the leaf runs to its own end. Sums (and thus means)
        // add up to leaf.end - root.start exactly.
        const sim::Time until =
            i + 1 < up.size() ? store.start_of(up[i + 1]) : leaf.end;
        hops.push_back(static_cast<double>(until - start));
      }
      if (!complete) continue;

      std::string sig;
      for (std::uint32_t n : names) {
        if (!sig.empty()) sig += '>';
        sig += tags.name(n);
      }
      PathAgg& agg = paths[sig];
      if (agg.traces == 0) {
        agg.names = names;
        agg.hop_total_us.assign(hops.size(), 0.0);
      }
      for (std::size_t i = 0; i < hops.size(); ++i) {
        agg.hop_total_us[i] += hops[i];
      }
      agg.e2e_total_us +=
          static_cast<double>(leaf.end) -
          static_cast<double>(store.start_of(up.front()));
      ++agg.traces;
    }
  }

  auto fmt = [](double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.6f", v);
    return std::string(buf);
  };

  std::ostringstream os;
  os << "{\"leaf\":\"" << json_escape(leaf_name) << "\",\"paths\":[";
  bool first = true;
  for (const auto& [sig, agg] : paths) {
    if (!first) os << ',';
    first = false;
    const double n = static_cast<double>(agg.traces);
    os << "{\"e2e_mean_us\":" << fmt(agg.e2e_total_us / n)
       << ",\"hops\":[";
    for (std::size_t i = 0; i < agg.names.size(); ++i) {
      if (i > 0) os << ',';
      os << "{\"mean_us\":" << fmt(agg.hop_total_us[i] / n)
         << ",\"name\":\"" << json_escape(tags.name(agg.names[i]))
         << "\",\"total_us\":" << fmt(agg.hop_total_us[i]) << "}";
    }
    os << "],\"signature\":\"" << json_escape(sig)
       << "\",\"traces\":" << agg.traces << "}";
  }
  os << "],\"root\":\"" << json_escape(root_name)
     << "\",\"schema_version\":" << kSchemaVersion << "}";
  return os.str();
}

}  // namespace mkbas::obs
