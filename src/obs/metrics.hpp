#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"  // json_escape/json_double, kSchemaVersion

namespace mkbas::obs {

/// First-class instrumentation for the simulated machine and the kernel
/// personalities running on it.
///
/// Design goals, in order:
///  1. Cheap on the hot path. Handles are resolved from names ONCE (at
///     kernel construction time); every increment afterwards is a pointer
///     dereference plus an add. No strings, no hashing, no locks.
///  2. Uniform naming across personalities: `<personality>.<subsystem>.<name>`
///     (e.g. `minix.ipc.latency`, `sel4.acm.denied`, `sim.context_switches`).
///  3. Machine-readable export: `MetricsRegistry::to_json()` emits one
///     deterministic (name-sorted) JSON object suitable for BENCH_*.json
///     trajectories and for diffing across runs.
///
/// Concurrency: the simulator hands out a single execution baton, so at most
/// one simulated process (or the driver) runs at any instant. Registration
/// takes a mutex anyway (it is cold); recording does not.

/// Monotonically increasing event count.
class Counter {
 public:
  Counter();  // unregistered: records into a shared dummy cell, always off
  void inc(std::uint64_t n = 1) {
    if (*enabled_) *cell_ += n;
  }
  std::uint64_t value() const { return *cell_; }

 private:
  friend class MetricsRegistry;
  Counter(std::uint64_t* cell, const bool* enabled)
      : cell_(cell), enabled_(enabled) {}
  std::uint64_t* cell_;
  const bool* enabled_;
};

/// Last-written value (queue depths, temperatures, water levels).
class Gauge {
 public:
  Gauge();
  void set(double v) {
    if (*enabled_) *cell_ = v;
  }
  void add(double d) {
    if (*enabled_) *cell_ += d;
  }
  double value() const { return *cell_; }

 private:
  friend class MetricsRegistry;
  Gauge(double* cell, const bool* enabled) : cell_(cell), enabled_(enabled) {}
  double* cell_;
  const bool* enabled_;
};

/// Bucketed distribution. Bucket `i` counts samples `v` with
/// `bounds[i-1] < v <= bounds[i]` (first bucket: `v <= bounds[0]`);
/// samples above the last bound land in a separate overflow cell, so the
/// configured range is never silently stretched. Count/sum/min/max are
/// tracked exactly regardless of bucketing.
class Histogram {
 public:
  struct Cell {
    std::shared_ptr<const std::vector<double>> bounds;
    std::vector<std::uint64_t> counts;  // one per bound
    std::uint64_t count = 0;
    std::uint64_t overflow = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };

  Histogram();
  void record(double v);
  std::uint64_t count() const { return cell_->count; }
  std::uint64_t overflow() const { return cell_->overflow; }
  double sum() const { return cell_->sum; }
  /// Count in bucket `i` (v <= bounds()[i], above the previous bound).
  std::uint64_t bucket_count(std::size_t i) const { return cell_->counts[i]; }
  const std::vector<double>& bounds() const { return *cell_->bounds; }

 private:
  friend class MetricsRegistry;
  Histogram(Cell* cell, const bool* enabled)
      : cell_(cell), enabled_(enabled) {}
  Cell* cell_;
  const bool* enabled_;
};

/// Owns every metric cell; hands out cheap handles. Get-or-create by name,
/// so two subsystems asking for the same counter share one cell. Cells live
/// in deques: registering new metrics never invalidates existing handles.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);

  /// Explicit bucket upper bounds (must be strictly increasing).
  Histogram histogram(const std::string& name, std::vector<double> bounds);

  /// HDR-style log-linear buckets: each power-of-two octave between 1 and
  /// `max` is split into `sub_buckets` linear buckets, giving a bounded
  /// relative error over many orders of magnitude with a handful of
  /// buckets per octave. Suits virtual-time latencies (microseconds).
  Histogram log_histogram(const std::string& name, int sub_buckets,
                          double max);

  /// Master switch: disabled handles are no-ops (used by the overhead
  /// benchmarks to price the instrumentation itself).
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Fold `other`'s metrics into this registry: counters add, gauges take
  /// `other`'s value (last-merged-wins), histograms add counts/sum/overflow
  /// and widen min/max. Metrics absent here are created. Merging the same
  /// registries in the same order always yields the same state (and thus
  /// byte-identical to_json()), which is what lets a parallel campaign
  /// reduce per-cell registries in deterministic cell order. Histograms
  /// with the same name must have identical bounds (throws otherwise).
  void merge_from(const MetricsRegistry& other);

  /// One JSON object, keys sorted at every level (metric names and the
  /// fields inside each histogram object alike):
  /// {"counters":{...},"gauges":{...},"histograms":{"n":{
  ///  "buckets":[{"count":..,"le":..},...],"count":..,"max":..,
  ///  "min":..,"overflow":..,"sum":..}},"schema_version":N}
  /// Zero-count histogram buckets are elided.
  std::string to_json() const;

  /// Log-linear bound generation, exposed for tests.
  static std::vector<double> log_bounds(int sub_buckets, double max);

 private:
  /// obs/prometheus.cpp: text-exposition rendering walks the cell maps
  /// under mu_ without widening the public surface.
  friend std::string prometheus_render(const MetricsRegistry&);

  mutable std::mutex mu_;
  bool enabled_ = true;
  std::deque<std::uint64_t> counter_cells_;
  std::deque<double> gauge_cells_;
  std::deque<Histogram::Cell> histogram_cells_;
  std::map<std::string, std::uint64_t*> counters_;
  std::map<std::string, double*> gauges_;
  std::map<std::string, Histogram::Cell*> histograms_;
};

}  // namespace mkbas::obs
