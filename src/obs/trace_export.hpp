#pragma once

#include <iosfwd>
#include <string>

#include "obs/span.hpp"
#include "sim/trace.hpp"

namespace mkbas::obs {

/// Serialize a simulation trace as Chrome trace-event JSON (the "JSON Array
/// Format"), loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
///
/// Mapping:
///  * every simulated process becomes one track (trace pid == sim pid, with
///    a `process_name` metadata record taken from its `proc.spawn` event;
///    machine-level events with sim pid -1 go to track 0, "machine");
///  * ordinary events become 1us complete ("X") slices named by tag, with
///    the TraceKind as the category and detail/value in args;
///  * security *denials* (any kSecurity tag containing "deny") and all
///    kAttack events become instant ("i") events, so they stand out as
///    markers when scrubbing a long run.
///
/// Virtual time is microseconds, which is exactly the `ts` unit the format
/// expects — timestamps pass through untranslated.
void write_chrome_trace(std::ostream& os, const sim::TraceLog& log);
std::string to_chrome_trace_json(const sim::TraceLog& log);

/// Serialize a span store as Chrome trace-event JSON with flow events.
///
/// Mapping:
///  * trace pid = machine (fabric node), tid = sim pid, so an N-zone
///    building renders as N process groups;
///  * every closed span becomes a complete ("X") slice named by its
///    span name, with trace/span/parent ids in args (abandoned spans
///    get "abandoned":true so a reincarnation gap is visible);
///  * every parent->child edge that crosses a (machine, pid) boundary
///    becomes a flow ("s" at the parent slice, "f" with bp:"e" at the
///    child), which Perfetto renders as the cross-machine arrows the
///    flow graph is about. The flow id is the child span id.
void write_span_trace(std::ostream& os, const SpanStore& spans);
std::string to_span_trace_json(const SpanStore& spans);

}  // namespace mkbas::obs
