#pragma once

#include <iosfwd>
#include <string>

#include "sim/trace.hpp"

namespace mkbas::obs {

/// Serialize a simulation trace as Chrome trace-event JSON (the "JSON Array
/// Format"), loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
///
/// Mapping:
///  * every simulated process becomes one track (trace pid == sim pid, with
///    a `process_name` metadata record taken from its `proc.spawn` event;
///    machine-level events with sim pid -1 go to track 0, "machine");
///  * ordinary events become 1us complete ("X") slices named by tag, with
///    the TraceKind as the category and detail/value in args;
///  * security *denials* (any kSecurity tag containing "deny") and all
///    kAttack events become instant ("i") events, so they stand out as
///    markers when scrubbing a long run.
///
/// Virtual time is microseconds, which is exactly the `ts` unit the format
/// expects — timestamps pass through untranslated.
void write_chrome_trace(std::ostream& os, const sim::TraceLog& log);
std::string to_chrome_trace_json(const sim::TraceLog& log);

}  // namespace mkbas::obs
