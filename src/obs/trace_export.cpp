#include "obs/trace_export.hpp"

#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "obs/json.hpp"  // json_escape, json_hex64

namespace mkbas::obs {

namespace {

// pid -1 (machine-level events) renders as track 0; real sim pids start
// at 1, so the tracks never collide.
int track_of(int sim_pid) { return sim_pid < 0 ? 0 : sim_pid; }

bool is_denial(const sim::TraceEvent& ev, const std::string& tag_name) {
  return ev.kind == sim::TraceKind::kSecurity &&
         tag_name.find("deny") != std::string::npos;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const sim::TraceLog& log) {
  auto& tags = sim::TagRegistry::instance();

  // Track names: the machine emits "proc.spawn" with detail == process
  // name. Processes spawned before a ring buffer evicted their spawn event
  // fall back to "pid<N>".
  std::map<int, std::string> names;
  names[0] = "machine";
  std::uint32_t spawn_tag = 0;
  const bool have_spawn = tags.try_lookup("proc.spawn", &spawn_tag);
  for (const auto& ev : log.events()) {
    if (have_spawn && ev.tag == spawn_tag && ev.pid >= 0) {
      names[track_of(ev.pid)] = ev.detail;
    } else {
      names.emplace(track_of(ev.pid), "pid" + std::to_string(track_of(ev.pid)));
    }
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [pid, name] : names) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
  }
  for (const auto& ev : log.events()) {
    const std::string& tag_name = tags.name(ev.tag);
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(tag_name) << "\",\"cat\":\""
       << sim::to_string(ev.kind) << "\",\"ts\":" << ev.time
       << ",\"pid\":" << track_of(ev.pid) << ",\"tid\":0,";
    if (is_denial(ev, tag_name)) {
      os << "\"ph\":\"i\",\"s\":\"p\",";  // process-scoped denial marker
    } else if (ev.kind == sim::TraceKind::kAttack) {
      os << "\"ph\":\"i\",\"s\":\"g\",";  // global attack marker
    } else {
      os << "\"ph\":\"X\",\"dur\":1,";
    }
    os << "\"args\":{\"detail\":\"" << json_escape(ev.detail)
       << "\",\"value\":" << ev.value << "}}";
  }
  os << "]}";
}

std::string to_chrome_trace_json(const sim::TraceLog& log) {
  std::ostringstream os;
  write_chrome_trace(os, log);
  return os.str();
}

namespace {

void hex16(std::ostream& os, std::uint64_t v) { os << json_hex64(v); }

}  // namespace

void write_span_trace(std::ostream& os, const SpanStore& spans) {
  auto& tags = sim::TagRegistry::instance();

  // Where each closed span ran, for the cross-machine flow arrows.
  struct Site {
    int machine;
    int pid;
    sim::Time start;
  };
  std::unordered_map<std::uint64_t, Site> sites;
  for (const Span& s : spans.spans()) {
    sites.emplace(s.span_id, Site{s.machine, s.pid, s.start});
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Span& s : spans.spans()) {
    if (!first) os << ',';
    first = false;
    const sim::Duration dur = s.end > s.start ? s.end - s.start : 1;
    os << "{\"name\":\"" << json_escape(tags.name(s.name))
       << "\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":" << s.start
       << ",\"dur\":" << dur << ",\"pid\":" << s.machine
       << ",\"tid\":" << (s.pid < 0 ? 0 : s.pid) << ",\"args\":{"
       << "\"trace\":\"";
    hex16(os, s.trace_id);
    os << "\",\"span\":\"";
    hex16(os, s.span_id);
    os << "\",\"parent\":\"";
    hex16(os, s.parent_span);
    os << "\"";
    if (s.abandoned) os << ",\"abandoned\":true";
    if (s.note != 0) {
      os << ",\"note\":\"" << json_escape(tags.name(s.note)) << "\"";
    }
    os << "}}";

    // Arrow from the parent's slice when the edge crosses a machine or
    // process boundary — intra-process nesting is visible as-is.
    auto it = sites.find(s.parent_span);
    if (it != sites.end() &&
        (it->second.machine != s.machine || it->second.pid != s.pid)) {
      os << ",{\"name\":\"" << json_escape(tags.name(s.name))
         << "\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":\"";
      hex16(os, s.span_id);
      os << "\",\"ts\":" << it->second.start
         << ",\"pid\":" << it->second.machine
         << ",\"tid\":" << (it->second.pid < 0 ? 0 : it->second.pid)
         << "},{\"name\":\"" << json_escape(tags.name(s.name))
         << "\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":\"";
      hex16(os, s.span_id);
      os << "\",\"ts\":" << s.start << ",\"pid\":" << s.machine
         << ",\"tid\":" << (s.pid < 0 ? 0 : s.pid) << "}";
    }
  }
  os << "]}";
}

std::string to_span_trace_json(const SpanStore& spans) {
  std::ostringstream os;
  write_span_trace(os, spans);
  return os.str();
}

}  // namespace mkbas::obs
