#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace mkbas::obs {

/// Version stamped into every JSON artifact this repo emits (metrics,
/// spans, audit journal, critical path, series, health, flight recorder,
/// campaign profile) as a "schema_version" field. The experiment daemon's
/// content-addressed cache validates artifacts against it before reuse;
/// bump it on any backwards-incompatible field change.
inline constexpr int kSchemaVersion = 1;

/// Minimal JSON string escaping, shared by every exporter.
std::string json_escape(const std::string& s);

/// Print doubles without trailing noise: integers as integers, the rest
/// with enough digits to round-trip. Shared by every exporter so the same
/// value always renders to the same bytes (the campaign determinism tests
/// cmp artifacts produced by different code paths).
inline std::string json_double(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Fixed-width (16 hex digit) id rendering, so diffs of span/trace ids
/// align column-for-column.
inline std::string json_hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace mkbas::obs
