#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace mkbas::obs {

/// Windowed time-series engine: the continuous-telemetry counterpart of
/// MetricsRegistry's whole-run aggregates.
///
/// Every series chops virtual time into fixed-width windows and keeps a
/// bounded ring of the most recent ones. Each window holds count / sum /
/// min / max plus a small log2 bucket sketch from which quantiles (p95)
/// are read at export time. Like every artifact in this repo the state
/// is a pure function of the simulation history: windows are indexed by
/// virtual time (window i covers [i*width, (i+1)*width)), never by wall
/// clock, so a replay reproduces the store byte-for-byte and a parallel
/// campaign can merge per-cell stores in cell order.
///
/// Hot-path contract (mirrors Counter/Histogram/SpanStore): handles are
/// resolved once; record() into the live window is index math plus a few
/// adds, and the ring is preallocated at registration, so the steady
/// state allocates nothing. bench_obs prices the whole stack (series +
/// detectors) against a disabled run and CI gates the overhead at 5%.

inline constexpr sim::Duration kDefaultSeriesWidth = sim::sec(30);
inline constexpr std::size_t kDefaultSeriesWindows = 64;

/// One closed or live window of a series.
struct SeriesWindow {
  /// log2 sketch: bucket b counts samples v with 2^(b-1) < v <= 2^b
  /// (bucket 0: v <= 1). 40 octaves cover 1us..~550 virtual years.
  static constexpr std::size_t kBuckets = 40;

  std::int64_t index = -1;  // window start = index * width; -1 = empty
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::array<std::uint32_t, kBuckets> buckets{};

  void reset(std::int64_t idx);
  void add(double v);
  /// Upper bound of the smallest bucket prefix holding >= q of the
  /// samples (0 for an empty window), clamped to the exact max — the
  /// exported p~quantile.
  double quantile(double q) const;
};

class SeriesStore;

/// Cheap recording handle, resolved once (like Counter). A default-
/// constructed handle records into a shared dummy cell that is always
/// disabled.
class Series {
 public:
  struct Cell;

  Series();
  void record(sim::Time t, double v);
  /// Total samples ever recorded (including ones whose windows the ring
  /// has since evicted).
  std::uint64_t samples() const;

 private:
  friend class SeriesStore;
  Series(Cell* cell, const bool* enabled) : cell_(cell), enabled_(enabled) {}
  Cell* cell_;
  const bool* enabled_;
};

/// Ring of windows for one series.
struct Series::Cell {
  sim::Duration width = kDefaultSeriesWidth;
  std::vector<SeriesWindow> ring;  // preallocated, size == capacity
  std::size_t head = 0;            // slot of the oldest live window
  std::size_t live = 0;            // live windows in the ring
  std::int64_t newest = -1;        // newest live window index, -1 none
  std::uint64_t samples = 0;
  std::uint64_t evicted_windows = 0;
  std::uint64_t evicted_samples = 0;
  std::uint64_t late_dropped = 0;

  SeriesWindow& slot(std::size_t i) { return ring[(head + i) % ring.size()]; }
  const SeriesWindow& slot(std::size_t i) const {
    return ring[(head + i) % ring.size()];
  }
  std::int64_t oldest() const {
    return newest - static_cast<std::int64_t>(live) + 1;
  }
  void record(sim::Time t, double v);
  /// Make window `idx` the newest live window, evicting from the front
  /// as needed (no-op when idx <= newest).
  void advance_to(std::int64_t idx);
};

/// Owns every series ring; one per sim::Machine (merged stores hold the
/// series of many machines, keyed by (machine, name)).
///
/// Eviction accounting, checked by tests and bench_obs:
///   total_samples() == live window counts + evicted_samples() +
///   late_dropped()
/// — a window the ring evicts gives up its samples to evicted_samples, a
/// sample older than the whole ring is late_dropped, nothing vanishes
/// silently.
class SeriesStore {
 public:
  SeriesStore() = default;
  SeriesStore(const SeriesStore&) = delete;
  SeriesStore& operator=(const SeriesStore&) = delete;

  /// Get-or-create by name; width/windows are fixed by the first caller
  /// (later callers share the existing ring regardless of arguments).
  Series series(const std::string& name,
                sim::Duration width = kDefaultSeriesWidth,
                std::size_t windows = kDefaultSeriesWindows);

  /// Master switch (overhead A/B benchmark). Disabled stores record
  /// nothing.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Fabric node index; stamped on series registered from now on, so a
  /// merged store keeps per-zone series apart. Set before the scenario
  /// registers anything (same contract as SpanStore::set_machine).
  void set_machine(int id) { machine_ = id; }
  int machine() const { return machine_; }

  std::size_t size() const { return cells_.size(); }
  std::uint64_t evicted_windows() const;
  std::uint64_t evicted_samples() const;
  std::uint64_t late_dropped() const;
  std::uint64_t total_samples() const;
  /// Sum of sample counts across all live windows.
  std::uint64_t live_samples() const;

  /// Fold `other`'s series into this store, aligning windows by index:
  /// same-index windows combine, newer windows advance the ring (with
  /// normal eviction accounting), windows older than the ring are
  /// counted evicted. Same stores merged in the same order yield the
  /// same state — the campaign's cell-order reduction.
  void merge_from(const SeriesStore& other);

  /// {"schema_version":N,"series":{"<name>@m<machine>":{
  ///  "evicted_samples":..,"evicted_windows":..,"late_dropped":..,
  ///  "samples":..,"width_us":..,"windows":[{"count":..,"max":..,
  ///  "min":..,"p95":..,"start":..,"sum":..},...]}}} — keys sorted at
  /// every level; empty windows in the ring are elided from the export
  /// but still occupy ring slots.
  std::string to_json() const;

  /// Bare {"<name>@m<machine>":{...}} object holding only the newest
  /// `max_windows` windows of every series — the flight recorder's
  /// bounded "recent telemetry" block.
  std::string recent_json(std::size_t max_windows) const;

 private:
  friend class Series;

  void append_series_map(std::ostream& os, std::size_t max_windows) const;

  bool enabled_ = true;
  int machine_ = 0;
  std::deque<Series::Cell> cell_storage_;  // stable addresses for handles
  /// Keyed (machine, name); map order is the deterministic merge order,
  /// export keys "<name>@m<machine>" are re-sorted lexically at export.
  std::map<std::pair<int, std::string>, Series::Cell*> cells_;
};

}  // namespace mkbas::obs
