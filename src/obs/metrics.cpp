#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace mkbas::obs {

namespace {

// Default-constructed handles write here: always-off, never exported.
bool g_dummy_enabled = false;
std::uint64_t g_dummy_counter = 0;
double g_dummy_gauge = 0.0;

Histogram::Cell& dummy_histogram_cell() {
  static Histogram::Cell cell = [] {
    Histogram::Cell c;
    c.bounds = std::make_shared<const std::vector<double>>(
        std::vector<double>{1.0});
    c.counts.assign(1, 0);
    return c;
  }();
  return cell;
}

}  // namespace

Counter::Counter() : cell_(&g_dummy_counter), enabled_(&g_dummy_enabled) {}
Gauge::Gauge() : cell_(&g_dummy_gauge), enabled_(&g_dummy_enabled) {}
Histogram::Histogram()
    : cell_(&dummy_histogram_cell()), enabled_(&g_dummy_enabled) {}

void Histogram::record(double v) {
  if (!*enabled_) return;
  Cell& c = *cell_;
  ++c.count;
  c.sum += v;
  if (v < c.min) c.min = v;
  if (v > c.max) c.max = v;
  const auto& b = *c.bounds;
  auto it = std::lower_bound(b.begin(), b.end(), v);
  if (it == b.end()) {
    ++c.overflow;
  } else {
    ++c.counts[static_cast<std::size_t>(it - b.begin())];
  }
}

Counter MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counter_cells_.push_back(0);
    it = counters_.emplace(name, &counter_cells_.back()).first;
  }
  return Counter(it->second, &enabled_);
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauge_cells_.push_back(0.0);
    it = gauges_.emplace(name, &gauge_cells_.back()).first;
  }
  return Gauge(it->second, &enabled_);
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     std::vector<double> bounds) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    Histogram::Cell cell;
    if (bounds.empty()) bounds.push_back(1.0);
    cell.counts.assign(bounds.size(), 0);
    cell.bounds =
        std::make_shared<const std::vector<double>>(std::move(bounds));
    histogram_cells_.push_back(std::move(cell));
    it = histograms_.emplace(name, &histogram_cells_.back()).first;
  }
  return Histogram(it->second, &enabled_);
}

std::vector<double> MetricsRegistry::log_bounds(int sub_buckets, double max) {
  if (sub_buckets < 1) sub_buckets = 1;
  if (max < 2.0) max = 2.0;
  std::vector<double> bounds;
  bounds.push_back(1.0);
  for (double lo = 1.0; lo < max; lo *= 2.0) {
    for (int i = 1; i <= sub_buckets; ++i) {
      double b = lo + lo * static_cast<double>(i) /
                          static_cast<double>(sub_buckets);
      if (b <= bounds.back()) continue;
      bounds.push_back(b);
      if (b >= max) return bounds;
    }
  }
  return bounds;
}

Histogram MetricsRegistry::log_histogram(const std::string& name,
                                         int sub_buckets, double max) {
  return histogram(name, log_bounds(sub_buckets, max));
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  if (&other == this) return;
  std::scoped_lock lk(mu_, other.mu_);
  for (const auto& [name, cell] : other.counters_) {
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      counter_cells_.push_back(0);
      it = counters_.emplace(name, &counter_cells_.back()).first;
    }
    *it->second += *cell;
  }
  for (const auto& [name, cell] : other.gauges_) {
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      gauge_cells_.push_back(0.0);
      it = gauges_.emplace(name, &gauge_cells_.back()).first;
    }
    *it->second = *cell;  // a gauge is "last written": merge order decides
  }
  for (const auto& [name, cell] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      Histogram::Cell fresh;
      fresh.bounds = cell->bounds;  // share the immutable bounds vector
      fresh.counts.assign(cell->counts.size(), 0);
      histogram_cells_.push_back(std::move(fresh));
      it = histograms_.emplace(name, &histogram_cells_.back()).first;
    }
    Histogram::Cell& dst = *it->second;
    if (*dst.bounds != *cell->bounds) {
      throw std::invalid_argument("merge_from: histogram '" + name +
                                  "' has mismatched bounds");
    }
    for (std::size_t i = 0; i < dst.counts.size(); ++i) {
      dst.counts[i] += cell->counts[i];
    }
    dst.count += cell->count;
    dst.overflow += cell->overflow;
    dst.sum += cell->sum;
    if (cell->min < dst.min) dst.min = cell->min;
    if (cell->max > dst.max) dst.max = cell->max;
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, cell] : counters_) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << *cell;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, cell] : gauges_) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << json_double(*cell);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, cell] : histograms_) {
    if (!first) os << ',';
    first = false;
    // Keys sorted at every level, so cmp-based determinism tests and
    // CI diffs stay stable.
    os << '"' << json_escape(name) << "\":{\"buckets\":[";
    bool bfirst = true;
    const auto& bounds = *cell->bounds;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (cell->counts[i] == 0) continue;  // elide empty buckets
      if (!bfirst) os << ',';
      bfirst = false;
      os << "{\"count\":" << cell->counts[i]
         << ",\"le\":" << json_double(bounds[i]) << '}';
    }
    os << "],\"count\":" << cell->count;
    if (cell->count > 0) {
      os << ",\"max\":" << json_double(cell->max)
         << ",\"min\":" << json_double(cell->min);
    } else {
      os << ",\"max\":0,\"min\":0";
    }
    os << ",\"overflow\":" << cell->overflow
       << ",\"sum\":" << json_double(cell->sum) << "}";
  }
  os << "},\"schema_version\":" << kSchemaVersion << "}";
  return os.str();
}

}  // namespace mkbas::obs
