#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace mkbas::obs {

/// Causal context carried alongside a message (kernel-side, or in a
/// reserved BACnet header field — never in user payload bytes). Two
/// words: the trace this operation belongs to and the span it happens
/// under. trace_id == 0 means "no context" — a personality or protocol
/// that cannot carry the field simply forwards the zero, which models
/// the real protocol limit.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;

  bool valid() const { return trace_id != 0; }
};

/// One completed (or abandoned) span: a named interval attributed to a
/// (machine, pid), linked to its parent by id. Names and notes are
/// interned through the process-wide sim::TagRegistry, so a span is
/// four words of ids plus two timestamps.
struct Span {
  std::uint64_t span_id = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;  // 0 == root of its trace
  std::uint32_t name = 0;         // interned tag
  std::uint32_t note = 0;         // interned annotation ("restart", ...)
  int machine = 0;
  int pid = -1;
  sim::Time start = 0;
  sim::Time end = 0;
  bool abandoned = false;  // closed administratively (process death)

  const std::string& what() const {
    return sim::TagRegistry::instance().name(name);
  }
};

/// Append-only log of closed spans backed by one contiguous buffer.
/// Unbounded mode appends; ring mode overwrites the oldest slot in
/// place, so the steady-state push — which sits on the kernel IPC hot
/// path via SpanStore — allocates nothing. Iteration yields insertion
/// order (oldest first), like the deque it replaces.
class SpanLog {
 public:
  std::size_t size() const { return size_; }
  const Span& operator[](std::size_t i) const {
    return buf_[wrap(head_ + i)];
  }

  /// Append (caller has already decided there is room).
  void push_back(const Span& s) {
    buf_.push_back(s);
    ++size_;
  }
  /// Overwrite the oldest entry with `s` (ring at capacity).
  void push_wrap(const Span& s) {
    buf_[head_] = s;
    head_ = wrap(head_ + 1);
  }
  /// Drop the oldest `n` entries, compacting the buffer. Only called
  /// from set_capacity — never on the hot path.
  void drop_front(std::size_t n);

  /// Pre-size the backing buffer so the next `n` appends never reallocate.
  void reserve(std::size_t n) { buf_.reserve(n); }

  class const_iterator {
   public:
    const_iterator(const SpanLog* log, std::size_t i) : log_(log), i_(i) {}
    const Span& operator*() const { return (*log_)[i_]; }
    const Span* operator->() const { return &(*log_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }

   private:
    const SpanLog* log_;
    std::size_t i_;
  };
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size_}; }

 private:
  std::size_t wrap(std::size_t i) const {
    return i >= buf_.size() ? i - buf_.size() : i;
  }

  std::vector<Span> buf_;
  std::size_t head_ = 0;  // index of the oldest entry
  std::size_t size_ = 0;
};

/// Deterministic causal tracer owned by one sim::Machine.
///
/// A span id packs [16-bit splitmix64 tag][8-bit machine][40-bit
/// sequence] — a pure function of (machine id, virtual start time,
/// per-store sequence counter), never of wall clock or memory layout,
/// so a replay produces byte-identical stores and a parallel campaign
/// can hash them. The sequence field makes the lineage index a dense
/// per-machine array (appended sequentially on the IPC hot path); the
/// tag detects id aliasing when stores from unrelated histories are
/// merged (same machine byte + sequence, different virtual time).
///
/// Two kinds of span:
///  * scoped spans (`begin`/`end`) nest on the calling process: the
///    parent is the process's current context and the current context
///    follows begin/end like a stack;
///  * flow spans (`begin_flow`/`end_flow`) have an explicit parent and
///    touch nobody's current context — kernel IPC hops and network
///    link hops, which start on the sender and end at delivery.
///
/// Accounting distinguishes *dropped* span records (closed spans the
/// ring buffer evicted — the TraceLog notion of dropped) from
/// *abandoned* spans (opened but never properly ended, e.g. the owner
/// died mid-operation). Invariants, checked by tests:
///   total_begun() == open_count() + total_ended() + total_abandoned()
///   total_ended() + total_abandoned() == size() + dropped()
class SpanStore {
 public:
  /// Fabric node index (single machines keep 0). Part of the span-id
  /// derivation, so set it before any span begins.
  void set_machine(int id) { machine_ = id; }
  int machine() const { return machine_; }

  /// Master switch for the overhead A/B benchmark. Disabled stores
  /// hand out id 0 and record nothing.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// 0 = unbounded (default). N > 0 = keep only the newest N closed
  /// spans, evicting oldest-first. Open spans are never evicted.
  void set_capacity(std::size_t cap);
  std::size_t capacity() const { return capacity_; }

  /// Pre-size every hot-path container for a run expected to mint up to
  /// `spans` ids on this machine: the closed-span buffer (bounded by the
  /// ring capacity when one is set), this machine's lineage lane — the
  /// one append that otherwise reallocates forever, since lineage
  /// survives ring eviction — and the open/current scratch sets. After
  /// this, a steady-state window within the budget allocates nothing.
  void reserve(std::size_t spans) {
    done_.reserve(capacity_ > 0 ? std::min(capacity_, spans) : spans);
    lineage_.reserve_lane(static_cast<std::size_t>(machine_) & 0xff, spans);
    if (open_.capacity() < 64) open_.reserve(64);
    if (current_.capacity() < 256) current_.reserve(256);
  }

  // ---- recording ----

  /// Open a scoped span on `pid`: parent is the pid's current context
  /// (a fresh trace is minted when there is none) and the current
  /// context becomes this span. Returns the span id (0 when disabled).
  std::uint64_t begin(int pid, sim::Time now, const std::string& name);
  std::uint64_t begin(int pid, sim::Time now, std::uint32_t name);

  /// Close a scoped span and restore the pid's current context to the
  /// span's parent. Unknown / already-closed ids are ignored.
  void end(int pid, sim::Time now, std::uint64_t span_id,
           std::uint32_t note = 0);

  /// Open a span under an explicit parent context without touching any
  /// process's current context. A fresh trace is minted when `parent`
  /// is invalid.
  std::uint64_t begin_flow(int pid, sim::Time now, std::uint32_t name,
                           SpanContext parent);
  /// Close a flow span.
  void end_flow(sim::Time now, std::uint64_t span_id,
                std::uint32_t note = 0);

  /// The context a message sent by `pid` right now should carry.
  SpanContext current(int pid) const;
  /// Adopt `ctx` as `pid`'s current context (message delivery: the
  /// receiver continues the sender's trace). Invalid contexts clear it.
  void set_current(int pid, SpanContext ctx);

  /// Context naming span `span_id` within its trace — what a child
  /// started under that span should carry.
  SpanContext context_of(std::uint64_t span_id) const;

  /// Abandon every open span owned by `pid` and clear its current
  /// context. Called when a process is retired; the spans close with
  /// end == now and abandoned == true.
  void process_gone(int pid, sim::Time now);

  // ---- queries ----

  const SpanLog& spans() const { return done_; }
  std::size_t size() const { return done_.size(); }
  std::size_t open_count() const { return open_.size(); }
  /// Number of distinct span ids this store knows lineage for.
  std::size_t lineage_size() const { return lineage_.size(); }
  std::uint64_t total_begun() const { return total_begun_; }
  std::uint64_t total_ended() const { return total_ended_; }
  std::uint64_t total_abandoned() const { return total_abandoned_; }
  /// Closed spans evicted by the ring buffer since construction.
  std::uint64_t dropped() const { return dropped_; }

  /// Walk parent links from `span_id` to its root using the lineage
  /// index (which survives ring eviction). Returns ids leaf-first;
  /// stops at spans this store has never seen (e.g. a remote parent
  /// whose machine was not merged in).
  std::vector<std::uint64_t> chain(std::uint64_t span_id) const;
  /// Interned name of a span this store has seen, 0 otherwise.
  std::uint32_t name_of(std::uint64_t span_id) const;
  /// Start time of a span this store has seen, -1 otherwise.
  sim::Time start_of(std::uint64_t span_id) const;
  /// Root span id of the trace containing `span_id` (leaf-first walk).
  std::uint64_t root_of(std::uint64_t span_id) const;

  /// Append `other`'s closed spans (in `other`'s order) and fold its
  /// lineage and accounting in. Merging the same stores in the same
  /// order yields identical state — the campaign's cell-order
  /// reduction. Open spans in `other` are not carried (cells merge
  /// quiesced, post-run snapshots).
  void merge_from(const SpanStore& other);

  /// All closed spans as one JSON object, keys sorted at every level:
  /// {"dropped":..,"spans":[{"abandoned":..,"end":..,...}],...}.
  /// Ids render as fixed-width hex so diffs align.
  std::string to_json() const;

 private:
  struct Lineage {
    std::uint64_t parent = 0;
    std::uint64_t trace = 0;
    std::uint32_t name = 0;
    sim::Time start = 0;
  };

  // Span-id bit layout (see next_id): [tag16 | machine8 | seq40].
  static constexpr std::uint64_t kSeqMask = (1ULL << 40) - 1;
  static constexpr int kSeqBits = 40;
  static constexpr int kMachBits = 8;

  /// (id -> Lineage) index exploiting the id layout: the 40-bit
  /// sequence field indexes a dense per-machine lane, so the one write
  /// per span begun — which sits on the kernel IPC hot path — is a
  /// sequential vector append, not a random probe into a multi-MB hash
  /// table (the dominant tracing cost before this layout; see
  /// bench_obs). A lookup re-checks the id's 16-bit tag against the
  /// stored one; a mismatch means "never seen here" — an id from an
  /// unrelated history aliasing this (machine, seq), which chain()
  /// already treats as the protocol limit.
  class LineageIndex {
   public:
    /// Lineage fields flattened so `tag` lands in the padding hole
    /// after `name`: 32 bytes per span instead of 40. The lanes are
    /// the only structure that grows for the whole run, so every byte
    /// here is a byte of fresh (uncached, demand-faulted) memory
    /// written per span on the IPC hot path.
    struct Entry {
      std::uint64_t parent = 0;
      std::uint64_t trace = 0;
      std::uint32_t name = 0;
      std::uint16_t tag = 0;  // 0 = empty (next_id never mints tag 0)
      sim::Time start = 0;
    };
    static_assert(sizeof(Entry) <= 32, "lineage entry packs to 32 bytes");

    void insert(std::uint64_t id, const Lineage& lin) {
      const std::uint64_t seq = id & kSeqMask;
      if (seq == 0) return;
      const std::size_t mach =
          static_cast<std::size_t>((id >> kSeqBits) & 0xff);
      if (mach >= lanes_.size()) lanes_.resize(mach + 1);
      std::vector<Entry>& lane = lanes_[mach];
      const std::size_t idx = static_cast<std::size_t>(seq) - 1;
      const Entry e{lin.parent, lin.trace, lin.name,
                    static_cast<std::uint16_t>(id >> 48), lin.start};
      if (idx == lane.size()) {  // hot path: own ids arrive in order
        lane.push_back(e);
        ++count_;
        return;
      }
      if (idx >= lane.size()) lane.resize(idx + 1);
      if (lane[idx].tag == 0) {  // merges are first-wins
        lane[idx] = e;
        ++count_;
      }
    }

    const Entry* find(std::uint64_t id) const {
      const std::uint64_t seq = id & kSeqMask;
      const std::size_t mach =
          static_cast<std::size_t>((id >> kSeqBits) & 0xff);
      if (seq == 0 || mach >= lanes_.size()) return nullptr;
      const std::vector<Entry>& lane = lanes_[mach];
      if (seq > lane.size()) return nullptr;
      const Entry& e = lane[static_cast<std::size_t>(seq) - 1];
      if (e.tag != static_cast<std::uint16_t>(id >> 48)) return nullptr;
      return &e;
    }

    std::size_t size() const { return count_; }
    /// Per-machine lanes; lane m, slot i holds the span with sequence
    /// i + 1 on machine byte m (tag 0 = empty).
    const std::vector<std::vector<Entry>>& lanes() const { return lanes_; }

    /// Pre-size lane `mach` for `n` entries.
    void reserve_lane(std::size_t mach, std::size_t n) {
      if (mach >= lanes_.size()) lanes_.resize(mach + 1);
      lanes_[mach].reserve(n);
    }

   private:
    std::vector<std::vector<Entry>> lanes_;
    std::size_t count_ = 0;
  };

  std::uint64_t next_id(sim::Time now);
  /// Mint + register a new open span; returns {span id, trace id}.
  struct Opened {
    std::uint64_t id = 0;
    std::uint64_t trace = 0;
  };
  Opened open_span(int pid, sim::Time now, std::uint32_t name,
                   SpanContext parent);
  /// Index into open_ of `span_id`, -1 if not open. Scans backwards:
  /// scoped spans close LIFO and the set is small (in-flight IPC only).
  int find_open(std::uint64_t span_id) const;
  void close_at(std::size_t idx, sim::Time now, std::uint32_t note,
                bool abandoned);
  void close_span(sim::Time now, std::uint64_t span_id, std::uint32_t note,
                  bool abandoned);
  void push_done(const Span& s);
  /// current_ slot for `pid` (index pid + 1; the kernel records on -1).
  SpanContext* current_slot(int pid);

  bool enabled_ = true;
  int machine_ = 0;
  std::size_t capacity_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t total_begun_ = 0;
  std::uint64_t total_ended_ = 0;
  std::uint64_t total_abandoned_ = 0;
  std::uint64_t dropped_ = 0;
  SpanLog done_;
  /// Open spans, unordered (closed by swap-remove). Kept flat: the set
  /// is small and the begin/end pair sits on the kernel IPC hot path,
  /// where a node-allocating map shows up directly as IPC overhead
  /// (bench_obs gates the spans-on arm at 5%).
  std::vector<Span> open_;
  /// Current context per pid, indexed pid + 1 (slot 0 = the kernel's
  /// pid -1). Flat for the same hot-path reason.
  std::vector<SpanContext> current_;
  /// Parent/name/start of every span ever begun or merged — the
  /// causal index audit chains and the critical-path analyzer walk.
  LineageIndex lineage_;
};

/// One security-relevant decision with the causal chain that led to it,
/// snapshotted at record time (so it survives ring eviction and
/// process death).
struct AuditEntry {
  sim::Time time = 0;
  int machine = 0;
  int pid = -1;
  std::uint32_t kind = 0;  // interned: "acm.deny", "cap.deny", ...
  std::string detail;
  std::uint64_t trace_id = 0;
  /// Span ids leaf-first back to the originating endpoint.
  std::vector<std::uint64_t> chain;
  /// Interned names, parallel to `chain`.
  std::vector<std::uint32_t> chain_names;
};

/// Structured security audit journal: every ACM denial, capability
/// denial, PM kill audit, proxy tag/sequence rejection and attack
/// verdict, each with its full causal chain. Append-only; merged in
/// cell order like every other campaign artifact.
class AuditJournal {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Record a decision made by `pid` under context `at`. The chain is
  /// resolved against `spans` immediately.
  void record(sim::Time time, int machine, int pid, std::uint32_t kind,
              std::string detail, const SpanStore& spans, SpanContext at);
  void record(sim::Time time, int machine, int pid, const std::string& kind,
              std::string detail, const SpanStore& spans, SpanContext at);

  const std::vector<AuditEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

  /// Observer invoked synchronously after every recorded entry — the
  /// machine wires the flight recorder here so a security denial
  /// snapshots the telemetry around it. Not called on merge_from: a
  /// merge replays history, it does not re-decide anything.
  void set_on_record(std::function<void(const AuditEntry&)> fn) {
    on_record_ = std::move(fn);
  }

  /// Entries whose kind equals `kind` (never interns).
  std::vector<AuditEntry> with_kind(const std::string& kind) const;

  void merge_from(const AuditJournal& other);

  /// {"entries":[{"chain":[{"name":..,"span":..},...],...}]} with keys
  /// sorted at every level.
  std::string to_json() const;

 private:
  bool enabled_ = true;
  std::vector<AuditEntry> entries_;
  std::function<void(const AuditEntry&)> on_record_;
};

/// Critical-path analysis over completed spans: for every trace whose
/// root is named `root_name` and which contains a leaf span named
/// `leaf_name`, decompose end-to-end latency (leaf.end - root.start)
/// into per-hop components along the root->leaf parent chain. Hop i
/// lasts from its own start to the next hop's start (the leaf: to its
/// own end), so the components telescope and their sums — and means —
/// add up to the end-to-end figure exactly.
///
/// Traces are grouped by path signature (the hop-name sequence); the
/// JSON reports each signature with per-hop mean/total microseconds,
/// keys sorted at every level.
std::string critical_path_json(const SpanStore& store,
                               const std::string& root_name,
                               const std::string& leaf_name);

}  // namespace mkbas::obs
