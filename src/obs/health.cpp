#include "obs/health.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/json.hpp"

namespace mkbas::obs {

const char* to_string(HealthEventKind k) {
  switch (k) {
    case HealthEventKind::kEwma:
      return "ewma";
    case HealthEventKind::kCusumHigh:
      return "cusum_high";
    case HealthEventKind::kCusumLow:
      return "cusum_low";
    case HealthEventKind::kSurge:
      return "surge";
  }
  return "?";
}

// ---- HealthSignal ----

void HealthSignal::observe(sim::Time t, double v) {
  if (mon_ != nullptr && mon_->enabled()) mon_->observe_value(*cell_, t, v);
}

void HealthSignal::count(sim::Time t, std::uint64_t n) {
  if (mon_ != nullptr && mon_->enabled()) mon_->count_events(*cell_, t, n);
}

// ---- HealthMonitor ----

void HealthMonitor::wire(SeriesStore* series, AuditJournal* audit,
                         const SpanStore* spans) {
  series_ = series;
  audit_ = audit;
  spans_ = spans;
}

HealthSignal HealthMonitor::signal(const std::string& name,
                                   const DetectorConfig& cfg) {
  const auto key = std::make_pair(machine_, name);
  auto it = cells_.find(key);
  if (it == cells_.end()) {
    cell_storage_.emplace_back();
    HealthSignal::Cell& cell = cell_storage_.back();
    cell.name = sim::TagRegistry::instance().intern(name);
    cell.machine = machine_;
    cell.cfg = cfg;
    if (series_ != nullptr) {
      // In rate mode one closed rate window is one series window.
      cell.series = series_->series(
          name, cfg.rate ? cfg.rate_window : kDefaultSeriesWidth);
    }
    it = cells_.emplace(key, &cell).first;
    machines_.insert(machine_);
  }
  return HealthSignal(it->second, this);
}

void HealthMonitor::observe_value(HealthSignal::Cell& c, sim::Time t,
                                  double v) {
  c.series.record(t, v);
  detect(c, t, v);
}

void HealthMonitor::count_events(HealthSignal::Cell& c, sim::Time t,
                                 std::uint64_t n) {
  const std::int64_t idx = t / c.cfg.rate_window;
  if (c.cur_win < 0) {
    c.cur_win = idx;
  } else if (idx != c.cur_win) {
    close_rate_window(c, idx);
  }
  c.cur_count += static_cast<double>(n);
}

void HealthMonitor::close_rate_window(HealthSignal::Cell& c,
                                      std::int64_t up_to) {
  if (c.cur_win < 0 || up_to <= c.cur_win) return;
  const sim::Duration w = c.cfg.rate_window;
  c.series.record(c.cur_win * w, c.cur_count);
  detect(c, (c.cur_win + 1) * w, c.cur_count);
  // Feed a few zero windows so the detectors see the silence after a
  // burst — capped, so a long idle gap does not replay thousands of
  // empty windows (still deterministic: the cap depends only on the
  // gap, which is virtual time).
  const std::int64_t gap = up_to - c.cur_win - 1;
  const std::int64_t fed = std::min<std::int64_t>(gap, 4);
  for (std::int64_t g = 0; g < fed; ++g) {
    const std::int64_t win = c.cur_win + 1 + g;
    c.series.record(win * w, 0.0);
    detect(c, (win + 1) * w, 0.0);
  }
  c.cur_win = up_to;
  c.cur_count = 0.0;
}

void HealthMonitor::flush(sim::Time t) {
  if (!enabled_) return;
  for (auto& [key, cell] : cells_) {
    if (cell->cfg.rate) close_rate_window(*cell, t / cell->cfg.rate_window);
  }
}

void HealthMonitor::detect(HealthSignal::Cell& c, sim::Time t, double x) {
  const DetectorConfig& cfg = c.cfg;
  bool fired = false;
  if (cfg.rate && cfg.surge > 0.0 && x > cfg.surge) {
    emit(c, t, HealthEventKind::kSurge, x, c.mean, cfg.surge);
    fired = true;
  }
  if (c.n >= cfg.warmup) {
    const double sd = std::max(std::sqrt(c.var), cfg.min_sd);
    const double band = cfg.ewma_k * sd;
    if (std::abs(x - c.mean) > band) {
      emit(c, t, HealthEventKind::kEwma, x, c.mean, band);
      fired = true;
    }
    const double z = (x - c.mean) / sd;
    c.s_hi = std::max(0.0, c.s_hi + z - cfg.cusum_k);
    if (c.s_hi > cfg.cusum_h) {
      emit(c, t, HealthEventKind::kCusumHigh, x, c.mean, cfg.cusum_h);
      c.s_hi = 0.0;
      fired = true;
    }
    if (!cfg.rate) {  // a quiet rate signal is healthy, not anomalous
      c.s_lo = std::max(0.0, c.s_lo - z - cfg.cusum_k);
      if (c.s_lo > cfg.cusum_h) {
        emit(c, t, HealthEventKind::kCusumLow, x, c.mean, cfg.cusum_h);
        c.s_lo = 0.0;
        fired = true;
      }
    }
  }
  if (!fired) {
    // Baseline freezes while a signal is alarming, so a sustained
    // attack cannot teach the detector that the anomaly is normal.
    const double d = x - c.mean;
    c.mean += cfg.ewma_alpha * d;
    c.var = (1.0 - cfg.ewma_alpha) * (c.var + cfg.ewma_alpha * d * d);
    ++c.n;
  }
}

void HealthMonitor::emit(const HealthSignal::Cell& c, sim::Time t,
                         HealthEventKind kind, double value, double baseline,
                         double threshold) {
  HealthEvent e;
  e.time = t;
  e.machine = c.machine;
  e.signal = c.name;
  e.kind = kind;
  e.value = value;
  e.baseline = baseline;
  e.threshold = threshold;
  machines_.insert(c.machine);
  if (events_.size() < kMaxEvents) {
    events_.push_back(e);
  } else {
    ++suppressed_;
  }
  if (audit_ != nullptr && spans_ != nullptr) {
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "%s %s value=%.6g baseline=%.6g threshold=%.6g",
                  sim::TagRegistry::instance().name(c.name).c_str(),
                  to_string(kind), value, baseline, threshold);
    audit_->record(t, c.machine, -1, "health.anomaly", buf, *spans_,
                   spans_->current(-1));
  }
  if (on_event_) on_event_(e);
}

std::size_t HealthMonitor::events_for(int machine) const {
  std::size_t n = 0;
  for (const HealthEvent& e : events_) {
    if (e.machine == machine) ++n;
  }
  return n;
}

namespace {

double penalty_of(HealthEventKind k) {
  switch (k) {
    case HealthEventKind::kSurge:
      return 25.0;
    case HealthEventKind::kCusumHigh:
    case HealthEventKind::kCusumLow:
      return 15.0;
    case HealthEventKind::kEwma:
      return 5.0;
  }
  return 5.0;
}

}  // namespace

double HealthMonitor::score(int machine) const {
  double penalty = 0.0;
  for (const HealthEvent& e : events_) {
    if (e.machine == machine) penalty += penalty_of(e.kind);
  }
  return std::max(0.0, 100.0 - penalty);
}

void HealthMonitor::merge_from(const HealthMonitor& other) {
  if (&other == this) return;
  // Detector cells stay per-machine (they are live state, not an
  // artifact); the merged monitor aggregates events and scores only.
  for (const HealthEvent& e : other.events_) {
    if (events_.size() < kMaxEvents) {
      events_.push_back(e);
    } else {
      ++suppressed_;
    }
    machines_.insert(e.machine);
  }
  suppressed_ += other.suppressed_;
  machines_.insert(other.machines_.begin(), other.machines_.end());
}

namespace {

void append_events(std::ostream& os, const std::vector<HealthEvent>& events,
                   std::size_t begin) {
  auto& tags = sim::TagRegistry::instance();
  os << '[';
  for (std::size_t i = begin; i < events.size(); ++i) {
    const HealthEvent& e = events[i];
    if (i > begin) os << ',';
    os << "{\"baseline\":" << json_double(e.baseline) << ",\"kind\":\""
       << to_string(e.kind) << "\",\"machine\":" << e.machine
       << ",\"signal\":\"" << json_escape(tags.name(e.signal))
       << "\",\"threshold\":" << json_double(e.threshold)
       << ",\"time\":" << e.time << ",\"value\":" << json_double(e.value)
       << '}';
  }
  os << ']';
}

void append_scores(std::ostream& os, const HealthMonitor& mon,
                   const std::set<int>& machines) {
  std::map<std::string, double> scores;
  for (int m : machines) {
    scores.emplace("m" + std::to_string(m), mon.score(m));
  }
  os << '{';
  bool first = true;
  for (const auto& [name, s] : scores) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":" << json_double(s);
  }
  os << '}';
}

}  // namespace

std::string HealthMonitor::to_json() const {
  std::ostringstream os;
  os << "{\"events\":";
  append_events(os, events_, 0);
  os << ",\"schema_version\":" << kSchemaVersion << ",\"scores\":";
  append_scores(os, *this, machines_);
  os << ",\"suppressed\":" << suppressed_ << '}';
  return os.str();
}

std::string HealthMonitor::recent_json(std::size_t max_events) const {
  std::ostringstream os;
  const std::size_t begin =
      events_.size() > max_events ? events_.size() - max_events : 0;
  os << "{\"events\":";
  append_events(os, events_, begin);
  os << ",\"scores\":";
  append_scores(os, *this, machines_);
  os << '}';
  return os.str();
}

// ---- FlightRecorder ----

void FlightRecorder::wire(const SeriesStore* series, const SpanStore* spans,
                          const HealthMonitor* health) {
  series_ = series;
  spans_ = spans;
  health_ = health;
}

void FlightRecorder::trigger(sim::Time t, const std::string& reason,
                             const std::string& detail) {
  ++triggers_;
  if (!enabled_) return;
  auto it = last_by_reason_.find(reason);
  if (it != last_by_reason_.end() && t - it->second < kCooldown) {
    ++suppressed_;
    return;
  }
  last_by_reason_[reason] = t;
  if (snapshots_.size() >= kMaxSnapshots) {
    ++suppressed_;
    return;
  }

  auto& tags = sim::TagRegistry::instance();
  std::ostringstream os;
  os << "{\"detail\":\"" << json_escape(detail) << "\",\"health\":"
     << (health_ != nullptr ? health_->recent_json(kRecentEvents) : "{}")
     << ",\"machine\":" << (spans_ != nullptr ? spans_->machine() : 0)
     << ",\"reason\":\"" << json_escape(reason) << "\",\"series\":"
     << (series_ != nullptr ? series_->recent_json(kRecentWindows) : "{}")
     << ",\"spans\":[";
  if (spans_ != nullptr) {
    const SpanLog& log = spans_->spans();
    const std::size_t begin =
        log.size() > kRecentSpans ? log.size() - kRecentSpans : 0;
    for (std::size_t i = begin; i < log.size(); ++i) {
      const Span& s = log[i];
      if (i > begin) os << ',';
      os << "{\"end\":" << s.end << ",\"machine\":" << s.machine
         << ",\"name\":\"" << json_escape(tags.name(s.name))
         << "\",\"pid\":" << s.pid << ",\"span\":\""
         << json_hex64(s.span_id) << "\",\"start\":" << s.start << '}';
    }
  }
  os << "],\"time\":" << t << '}';
  snapshots_.push_back(Snapshot{t, os.str()});
}

void FlightRecorder::merge_from(const FlightRecorder& other) {
  if (&other == this) return;
  for (const Snapshot& s : other.snapshots_) {
    if (snapshots_.size() < kMaxSnapshots) {
      snapshots_.push_back(s);
    } else {
      ++suppressed_;
    }
  }
  triggers_ += other.triggers_;
  suppressed_ += other.suppressed_;
}

std::string FlightRecorder::to_json() const {
  std::ostringstream os;
  os << "{\"schema_version\":" << kSchemaVersion << ",\"snapshots\":[";
  for (std::size_t i = 0; i < snapshots_.size(); ++i) {
    if (i > 0) os << ',';
    os << snapshots_[i].json;
  }
  os << "],\"suppressed\":" << suppressed_ << ",\"triggers\":" << triggers_
     << '}';
  return os.str();
}

}  // namespace mkbas::obs
