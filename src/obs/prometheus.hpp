#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mkbas::obs {

class MetricsRegistry;

/// Prometheus text exposition (version 0.0.4) over the standard metrics
/// registry. Two producers share one renderer so a scrape of the serve
/// daemon and the `--metrics-prom-out` CLI artifact are the same bytes
/// for the same metric state:
///
///  * the daemon renders its live MetricsRegistry directly
///    (`prometheus_render(reg)`);
///  * the CLI path re-derives a PromSnapshot from the deterministic
///    metrics JSON artifact (campaign/run_request.cpp) and renders that.
///
/// Mapping: counters append the conventional `_total` suffix; gauges
/// pass through; histograms flatten to cumulative `_bucket{le="..."}`
/// samples plus `_sum`/`_count`, with `le="+Inf"` equal to the total
/// count (overflow included, so the configured bucket range is honest).
/// Bucket lines whose cumulative count equals the previous rendered one
/// are elided — the same empty-bucket elision the JSON export applies —
/// which keeps both producers byte-identical and the scrape compact.

/// One histogram flattened to render-ready form. `bounds`/`cumulative`
/// are parallel and hold only the bounds worth a `_bucket` line (the
/// renderer still appends `+Inf`).
struct PromHistogram {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> cumulative;
  std::uint64_t count = 0;  // total observations == the +Inf bucket
  double sum = 0.0;
};

/// Registry state flattened for rendering. Entries must be name-sorted
/// (std::map iteration and the sorted-key JSON artifact both are).
struct PromSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<PromHistogram> histograms;
};

/// Sanitize a registry name ("serve.http.latency_us") into a valid
/// Prometheus metric name ("serve_http_latency_us"): [a-zA-Z0-9_:] only,
/// leading digit prefixed with '_'.
std::string prometheus_name(const std::string& raw);

std::string prometheus_render(const PromSnapshot& snap);
std::string prometheus_render(const MetricsRegistry& reg);

}  // namespace mkbas::obs
