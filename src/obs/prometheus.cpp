#include "obs/prometheus.hpp"

#include <mutex>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace mkbas::obs {

std::string prometheus_name(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 1);
  for (char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty()) out = "_";
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

namespace {

void render_histogram(std::string* out, const PromHistogram& h) {
  const std::string name = prometheus_name(h.name);
  *out += "# TYPE " + name + " histogram\n";
  std::uint64_t prev = 0;
  const std::size_t n =
      h.bounds.size() < h.cumulative.size() ? h.bounds.size()
                                            : h.cumulative.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (h.cumulative[i] == prev) continue;  // elide empty buckets
    prev = h.cumulative[i];
    *out += name + "_bucket{le=\"" + json_double(h.bounds[i]) + "\"} " +
            std::to_string(h.cumulative[i]) + "\n";
  }
  *out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
  *out += name + "_sum " + json_double(h.sum) + "\n";
  *out += name + "_count " + std::to_string(h.count) + "\n";
}

}  // namespace

std::string prometheus_render(const PromSnapshot& snap) {
  std::string out;
  out.reserve(256 + snap.counters.size() * 48 + snap.gauges.size() * 48 +
              snap.histograms.size() * 512);
  for (const auto& [raw, v] : snap.counters) {
    const std::string name = prometheus_name(raw) + "_total";
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(v) + "\n";
  }
  for (const auto& [raw, v] : snap.gauges) {
    const std::string name = prometheus_name(raw);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + json_double(v) + "\n";
  }
  for (const auto& h : snap.histograms) render_histogram(&out, h);
  return out;
}

std::string prometheus_render(const MetricsRegistry& reg) {
  PromSnapshot snap;
  {
    std::lock_guard<std::mutex> lk(reg.mu_);
    snap.counters.reserve(reg.counters_.size());
    for (const auto& [name, cell] : reg.counters_) {
      snap.counters.emplace_back(name, *cell);
    }
    snap.gauges.reserve(reg.gauges_.size());
    for (const auto& [name, cell] : reg.gauges_) {
      snap.gauges.emplace_back(name, *cell);
    }
    snap.histograms.reserve(reg.histograms_.size());
    for (const auto& [name, cell] : reg.histograms_) {
      PromHistogram h;
      h.name = name;
      const auto& bounds = *cell->bounds;
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < bounds.size(); ++i) {
        if (cell->counts[i] == 0) continue;  // mirror to_json's elision
        cum += cell->counts[i];
        h.bounds.push_back(bounds[i]);
        h.cumulative.push_back(cum);
      }
      h.count = cell->count;
      h.sum = cell->sum;
      snap.histograms.push_back(std::move(h));
    }
  }
  return prometheus_render(snap);
}

}  // namespace mkbas::obs
