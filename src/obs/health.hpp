#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/series.hpp"
#include "obs/span.hpp"
#include "sim/time.hpp"

namespace mkbas::obs {

/// Online anomaly detection over the windowed series engine: every
/// HealthSignal runs an EWMA band detector (|x - mean| > k sigma after a
/// warmup) and a standardized CUSUM (slack k, decision threshold h) on
/// its observations, entirely in virtual time. Signals come in two
/// modes:
///
///  * value signals observe a measurement per call (control-loop jitter,
///    e2e latency, COV delivery latency);
///  * rate signals count events (ACM/cap denials, inbox overflows,
///    fault injections); counts are folded into fixed windows and the
///    detectors run on the per-window totals when a window closes. Rate
///    signals additionally support a `surge` threshold that fires
///    without warmup — a security denial storm must alarm on the first
///    closed window, not after the detector has learned a baseline.
///
/// Every firing emits a structured HealthEvent into the monitor (bounded
/// list), the machine's AuditJournal (kind "health.anomaly", with the
/// causal chain active at detection time) and the on_event observer the
/// machine wires to the flight recorder. Detector state is a pure
/// function of the observation history, so events are byte-identically
/// replayable and campaign merges reduce in cell order.

struct DetectorConfig {
  double ewma_alpha = 0.25;  // EW mean/variance update weight
  double ewma_k = 6.0;       // band half-width, in sigmas
  double cusum_k = 0.5;      // CUSUM slack, in sigmas
  double cusum_h = 10.0;     // CUSUM decision threshold, in sigmas
  std::uint64_t warmup = 8;  // samples before EWMA/CUSUM arm
  double min_sd = 1e-6;      // variance floor (exactly periodic inputs)

  bool rate = false;                         // rate mode (count())
  sim::Duration rate_window = sim::sec(5);   // rate fold width
  double surge = 0.0;  // rate mode: window count > surge fires
                       // immediately, no warmup (0 = off)
};

enum class HealthEventKind : std::uint8_t {
  kEwma,       // outside the EWMA band
  kCusumHigh,  // sustained upward drift
  kCusumLow,   // sustained downward drift (value signals only)
  kSurge,      // rate signal exceeded its absolute surge threshold
};

const char* to_string(HealthEventKind k);

/// One detector firing. `signal` is interned via sim::TagRegistry.
struct HealthEvent {
  sim::Time time = 0;
  int machine = 0;
  std::uint32_t signal = 0;
  HealthEventKind kind = HealthEventKind::kEwma;
  double value = 0.0;      // the observation that fired
  double baseline = 0.0;   // EWMA mean (or surge threshold) at firing
  double threshold = 0.0;  // band / decision threshold that was crossed
};

class HealthMonitor;

/// Cheap handle (resolved once, like Counter/Series). Default-constructed
/// handles are inert.
class HealthSignal {
 public:
  HealthSignal() = default;
  /// Value mode: one measurement.
  void observe(sim::Time t, double v);
  /// Rate mode: count `n` events at time t.
  void count(sim::Time t, std::uint64_t n = 1);

 private:
  friend class HealthMonitor;
  struct Cell;
  HealthSignal(Cell* cell, HealthMonitor* mon) : cell_(cell), mon_(mon) {}
  Cell* cell_ = nullptr;
  HealthMonitor* mon_ = nullptr;
};

struct HealthSignal::Cell {
  std::uint32_t name = 0;  // interned
  int machine = 0;
  DetectorConfig cfg;
  Series series;  // observations (value) / per-window counts (rate)
  // EWMA state
  double mean = 0.0;
  double var = 0.0;
  std::uint64_t n = 0;
  // CUSUM accumulators (standardized)
  double s_hi = 0.0;
  double s_lo = 0.0;
  // rate-mode fold
  std::int64_t cur_win = -1;
  double cur_count = 0.0;
};

/// Per-machine health: owns the signals, scores machines from the events
/// they raised. One per sim::Machine; campaign/fabric reductions merge
/// monitors in cell/node order.
class HealthMonitor {
 public:
  /// Events kept verbatim; later firings only bump suppressed(). Big
  /// enough for any interesting run, small enough that a misbehaving
  /// detector cannot turn the monitor into the unbounded log this layer
  /// exists to avoid.
  static constexpr std::size_t kMaxEvents = 256;

  HealthMonitor() = default;
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Wire the sinks (done by sim::Machine): per-signal windowed series
  /// land in `series`, events are journaled into `audit` with the chain
  /// resolved against `spans`. Any pointer may be null (that sink is
  /// skipped).
  void wire(SeriesStore* series, AuditJournal* audit,
            const SpanStore* spans);

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }
  void set_machine(int id) { machine_ = id; }
  int machine() const { return machine_; }

  /// Observer invoked synchronously on every event (the machine wires
  /// the flight recorder here).
  void set_on_event(std::function<void(const HealthEvent&)> fn) {
    on_event_ = std::move(fn);
  }

  /// Get-or-create by name. The signal's series uses the rate window as
  /// its series window in rate mode, so one closed rate window is one
  /// series window.
  HealthSignal signal(const std::string& name,
                      const DetectorConfig& cfg = {});

  /// Close every open rate window up to (excluding) the one containing
  /// `t`. Run before exporting so trailing activity is detected
  /// deterministically; idempotent for a fixed t.
  void flush(sim::Time t);

  const std::vector<HealthEvent>& events() const { return events_; }
  std::uint64_t suppressed() const { return suppressed_; }
  /// Events raised by `machine`, any signal.
  std::size_t events_for(int machine) const;

  /// 0..100: 100 minus a per-event penalty (surge 25, CUSUM 15, EWMA 5),
  /// floored at 0. A machine with no events scores 100.
  double score(int machine) const;

  void merge_from(const HealthMonitor& other);

  /// {"events":[{"baseline":..,"kind":..,"machine":..,"signal":..,
  ///  "threshold":..,"time":..,"value":..},...],"schema_version":N,
  ///  "scores":{"m<id>":..},"suppressed":N} — keys sorted at every
  /// level, events in emission (merge) order.
  std::string to_json() const;
  /// Bare {"events":[last `max_events`],"scores":{...}} block for the
  /// flight recorder.
  std::string recent_json(std::size_t max_events) const;

 private:
  friend class HealthSignal;

  void observe_value(HealthSignal::Cell& c, sim::Time t, double v);
  void count_events(HealthSignal::Cell& c, sim::Time t, std::uint64_t n);
  /// Run the detectors on one observation (a value, or a closed rate
  /// window's count).
  void detect(HealthSignal::Cell& c, sim::Time t, double x);
  void close_rate_window(HealthSignal::Cell& c, std::int64_t up_to);
  void emit(const HealthSignal::Cell& c, sim::Time t, HealthEventKind kind,
            double value, double baseline, double threshold);

  bool enabled_ = true;
  int machine_ = 0;
  SeriesStore* series_ = nullptr;
  AuditJournal* audit_ = nullptr;
  const SpanStore* spans_ = nullptr;
  std::function<void(const HealthEvent&)> on_event_;
  std::deque<HealthSignal::Cell> cell_storage_;
  std::map<std::pair<int, std::string>, HealthSignal::Cell*> cells_;
  std::vector<HealthEvent> events_;
  std::uint64_t suppressed_ = 0;
  std::set<int> machines_;  // every machine that ever owned a signal
};

/// Always-on bounded flight recorder: when something interesting happens
/// (a detector fires, a security denial is journaled, a fault injection
/// lands) it renders a small self-contained JSON snapshot of the moment
/// — the newest series windows, the last closed spans, recent health
/// events and scores — instead of relying on a full-run dump. Snapshots
/// are rate-limited per reason (virtual-time cooldown) and capped in
/// number; every trigger is counted either way.
class FlightRecorder {
 public:
  static constexpr std::size_t kMaxSnapshots = 8;
  static constexpr std::size_t kRecentWindows = 4;
  static constexpr std::size_t kRecentSpans = 24;
  static constexpr std::size_t kRecentEvents = 4;
  static constexpr sim::Duration kCooldown = sim::sec(10);

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void wire(const SeriesStore* series, const SpanStore* spans,
            const HealthMonitor* health);

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Snapshot now (subject to cooldown and the snapshot cap).
  void trigger(sim::Time t, const std::string& reason,
               const std::string& detail);

  std::uint64_t triggers() const { return triggers_; }
  std::uint64_t suppressed() const { return suppressed_; }
  std::size_t size() const { return snapshots_.size(); }

  void merge_from(const FlightRecorder& other);

  /// {"schema_version":N,"snapshots":[{"detail":..,"health":{...},
  ///  "machine":..,"reason":..,"series":{...},"spans":[...],"time":..},
  ///  ...],"suppressed":N,"triggers":N} — snapshot bodies are rendered
  /// at trigger time from virtual-time state only, so the export is
  /// replayable byte-for-byte.
  std::string to_json() const;

 private:
  struct Snapshot {
    sim::Time time = 0;
    std::string json;  // rendered at trigger time
  };

  bool enabled_ = true;
  const SeriesStore* series_ = nullptr;
  const SpanStore* spans_ = nullptr;
  const HealthMonitor* health_ = nullptr;
  std::vector<Snapshot> snapshots_;
  std::map<std::string, sim::Time> last_by_reason_;
  std::uint64_t triggers_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace mkbas::obs
