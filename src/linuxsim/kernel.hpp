#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/machine.hpp"

namespace mkbas::linuxsim {

/// User id. Root (uid 0) bypasses every permission check — the crux of the
/// paper's second attack simulation (§IV.D.1).
using Uid = int;
inline constexpr Uid kRootUid = 0;

enum class Errno {
  kOk = 0,
  kEACCES,  // permission denied by mode bits
  kEPERM,   // operation not permitted (kill/setuid rules)
  kENOENT,  // no such file / queue / process
  kEEXIST,  // already exists (O_EXCL semantics)
  kEAGAIN,  // would block (non-blocking op)
  kESRCH,   // no such pid
  kEBADF,   // bad descriptor
  kEINVAL,
  kECONNREFUSED,  // connect to a dead / full / non-listening socket
  kEPIPE,         // send after the peer closed
  kEOF,           // orderly end-of-stream on recv
};

const char* to_string(Errno e);

/// Simplified POSIX permission bits: read/write for owner and other, plus
/// optional per-uid ACL entries (setfacl-style). ACLs model the paper's
/// "message queue specifically configured to only allow the correct user
/// account" — the well-configured baseline that root still defeats.
struct Mode {
  bool owner_read = true;
  bool owner_write = true;
  bool other_read = false;
  bool other_write = false;
  std::map<Uid, std::pair<bool, bool>> acl;  // uid -> (read, write)

  static Mode rw_owner_only() { return {true, true, false, false, {}}; }
  static Mode rw_everyone() { return {true, true, true, true, {}}; }
  Mode& grant(Uid uid, bool read, bool write) {
    acl[uid] = {read, write};
    return *this;
  }
};

/// A POSIX message-queue message: payload bytes plus a priority. The
/// kernel stamps `enqueued_at` on mq_send so delivery can record the true
/// send->receive latency; user code can ignore the field.
struct MqMessage {
  std::string data;
  unsigned priority = 0;
  sim::Time enqueued_at = 0;
  /// Open "linux.mq" flow span of this queue hop — kernel metadata on
  /// the queue entry (like enqueued_at), never payload bytes.
  std::uint64_t span = 0;
};

/// The monolithic-kernel (Linux) personality used as the paper's baseline.
///
/// Faithful to the properties the paper's attacks exploit (§II, §IV.C/D.1):
///  * IPC is POSIX message queues, implemented through the virtual file
///    system and therefore guarded only by file mode bits;
///  * messages carry no kernel-verified sender identity — any process that
///    can open a queue for writing can impersonate anyone;
///  * uid 0 bypasses all permission checks: a root process can open any
///    queue and kill any process;
///  * kill() is permitted for root or a matching uid.
class LinuxKernel {
 public:
  static constexpr int kMaxQueues = 64;
  static constexpr int kDefaultMaxMsg = 10;

  explicit LinuxKernel(sim::Machine& machine);
  ~LinuxKernel() { machine_.shutdown(); }

  LinuxKernel(const LinuxKernel&) = delete;
  LinuxKernel& operator=(const LinuxKernel&) = delete;

  // ---- Processes ----

  /// Loader-side spawn (the scenario process uses this). Returns pid or -1.
  int spawn_process(const std::string& name, Uid uid,
                    std::function<void()> body,
                    int priority = sim::Machine::kDefaultPriority);

  /// fork-and-exec style: child inherits the caller's uid.
  int fork_process(const std::string& name, std::function<void()> body,
                   int priority = sim::Machine::kDefaultPriority);

  // Signal numbers (the relevant subset).
  static constexpr int kSigKill = 9;   // uncatchable, unconditional
  static constexpr int kSigUsr1 = 10;  // default: ignored
  static constexpr int kSigTerm = 15;  // catchable; default: terminate

  /// kill(2) with SIGKILL: root may kill anyone; others only processes
  /// of the same uid.
  Errno sys_kill(int pid) { return sys_kill_sig(pid, kSigKill); }

  /// kill(2) with an explicit signal. SIGKILL is unconditional; SIGTERM
  /// runs the target's handler if installed (delivered at the target's
  /// next syscall or blocking-point wakeup) or terminates it; SIGUSR1
  /// without a handler is ignored.
  Errno sys_kill_sig(int pid, int sig);

  /// signal(2)/sigaction(2): install a handler for the calling task.
  /// The handler runs in the target's own context. SIGKILL cannot be
  /// caught.
  Errno install_signal_handler(int sig, std::function<void()> handler);

  [[noreturn]] void sys_exit(int code);

  Uid getuid();
  int getpid();
  int find_pid(const std::string& name) const;  // pgrep-style helper
  bool is_alive(int pid) const;
  Uid uid_of(int pid) const;

  /// setuid(2): only root may change identity.
  Errno sys_setuid(Uid uid);

  /// Models a successful privilege-escalation exploit (the paper's second
  /// simulation assumes one): flips the caller's uid to root and records
  /// the event in the attack trace.
  void exploit_escalate_to_root();

  // ---- POSIX message queues (mq_overview(7)) ----

  /// mq_open: create or open. Permission checks against mode bits unless
  /// the caller is root. Returns fd (>=0) or a negative Errno.
  int mq_open(const std::string& name, bool create, Mode mode = {},
              int maxmsg = kDefaultMaxMsg);

  Errno mq_close(int fd);
  Errno mq_unlink(const std::string& name);

  /// Blocking when the queue is full (non-blocking variant returns EAGAIN).
  Errno mq_send(int fd, const MqMessage& msg, bool blocking = true);
  /// Blocking when empty. Highest priority first, FIFO within priority.
  Errno mq_receive(int fd, MqMessage& out, bool blocking = true);

  std::size_t mq_depth(const std::string& name) const;  // introspection

  // ---- Unix domain sockets (§III: "the IPC options are either Unix
  //      domain sockets or message queues") ----
  //
  // Stream sockets in two namespaces, matching Linux semantics:
  //  * filesystem namespace: the bound path is a VFS node guarded by
  //    mode bits/ACLs at connect time;
  //  * abstract namespace ("@name"): no filesystem node and therefore
  //    NO permission check at all — first binder wins. This is the
  //    misuse surface of the Android CVEs the paper cites [10]: any
  //    process can squat a well-known abstract name and impersonate the
  //    service.

  int sock_socket();
  Errno sock_bind(int fd, const std::string& path, Mode mode = {});
  Errno sock_bind_abstract(int fd, const std::string& name);
  Errno sock_listen(int fd, int backlog = 8);
  /// Accept a pending connection; returns new fd (>=0) or negative Errno.
  int sock_accept(int fd, bool blocking = true);
  /// Connect to a filesystem-bound socket (checked against mode bits).
  int sock_connect(const std::string& path);
  /// Connect to an abstract-namespace socket (no checks).
  int sock_connect_abstract(const std::string& name);
  Errno sock_send(int fd, const std::string& data, bool blocking = true);
  Errno sock_recv(int fd, std::string* out, bool blocking = true);
  Errno sock_close(int fd);
  /// Peer credentials (SO_PEERCRED): uid of the peer, or -1. The one
  /// authenticity primitive Unix sockets do offer — if services use it.
  Uid sock_peer_uid(int fd);

  // ---- Flat files (for the control process's log) ----

  int open_file(const std::string& name, bool create, Mode mode = {});
  Errno write_file(int fd, const std::string& data);
  Errno read_file(int fd, std::string& out);
  const std::string* file_contents(const std::string& name) const;

  sim::Machine& machine() { return machine_; }

 private:
  struct Node {  // a VFS entry: message queue or flat file
    enum class Type { kMqueue, kFile } type = Type::kMqueue;
    std::string name;
    Uid owner = 0;
    Mode mode;
    bool unlinked = false;
    int open_count = 0;
    // mqueue payload
    std::deque<MqMessage> queue;
    int maxmsg = kDefaultMaxMsg;
    std::vector<sim::Process*> send_waiters;
    std::vector<sim::Process*> recv_waiters;
    // file payload
    std::string contents;
  };

  struct Datagram {  // one buffered stream chunk plus its enqueue time
    std::string data;
    sim::Time enqueued = 0;
  };

  struct Connection {  // one established stream, two directions
    std::deque<Datagram> to_server, to_client;
    static constexpr std::size_t kBufDepth = 64;
    bool server_closed = false, client_closed = false;
    Uid server_uid = -1, client_uid = -1;
    std::vector<sim::Process*> server_waiters, client_waiters;
  };

  struct Listener {  // a bound, listening socket
    std::string name;
    bool abstract = false;
    Uid owner = -1;
    Mode mode;  // meaningful only in the filesystem namespace
    bool listening = false;
    int backlog = 8;
    std::deque<std::shared_ptr<Connection>> pending;
    std::vector<sim::Process*> accept_waiters;
    bool closed = false;
  };

  struct FileDesc {
    std::shared_ptr<Node> node;
    bool readable = false;
    bool writable = false;
    // Socket roles (a descriptor is exactly one of: node, listener, conn)
    std::shared_ptr<Listener> listener;
    std::shared_ptr<Connection> conn;
    bool conn_is_server_side = false;
    bool is_unbound_socket = false;
  };

  struct Task {
    int pid = 0;
    std::string name;
    Uid uid = 0;
    sim::Process* proc = nullptr;
    std::map<int, FileDesc> fds;
    int next_fd = 3;
    std::map<int, std::function<void()>> sig_handlers;
    std::deque<int> pending_signals;
    bool delivering_signals = false;
  };

  Task& current_task();
  const Task* task_by_pid(int pid) const;
  Task* task_by_pid(int pid);
  void close_desc(FileDesc& desc);
  void wake_conn(Connection& conn);
  /// Kernel entry for Linux syscalls: charge + deliver pending signals.
  void enter_linux();
  void deliver_pending_signals(Task& task);
  bool may_read(const Task& t, const Node& n) const;
  bool may_write(const Task& t, const Node& n) const;
  FileDesc* fd_of(Task& t, int fd);
  void wake_all(std::vector<sim::Process*>& waiters);
  int do_spawn(const std::string& name, Uid uid, std::function<void()> body,
               int priority);

  /// Pre-resolved handles ("linux.*" namespace); no string lookups on the
  /// IPC path.
  struct Metrics {
    obs::Counter sc_kill, sc_signal, sc_spawn, sc_exit, sc_setuid;
    obs::Counter sc_mq_open, sc_mq_send, sc_mq_receive;
    obs::Counter sc_sock_connect, sc_sock_accept, sc_sock_send, sc_sock_recv;
    obs::Counter sc_file;
    obs::Counter perm_denied;
    obs::Histogram ipc_latency;  // mq/uds send->receive, virtual usec
  };

  /// Interned once at construction; the IPC path never touches the tag
  /// registry's string table.
  std::uint32_t tag_mq_span_ = 0;

  sim::Machine& machine_;
  Metrics met_;
  std::unordered_map<std::string, std::shared_ptr<Node>> namespace_;
  std::unordered_map<std::string, std::shared_ptr<Listener>> fs_sockets_;
  std::unordered_map<std::string, std::shared_ptr<Listener>>
      abstract_sockets_;  // no permission metadata: that is the point
  std::unordered_map<int, std::unique_ptr<Task>> tasks_;  // by pid
  std::unordered_map<int, int> pid_alias_;  // sim pid == linux pid here
};

}  // namespace mkbas::linuxsim
